// FIG-2: Gateway virus scan — varying the signature activation delay.
//
// Reproduces Figure 2: Virus 1 against an MMS-gateway signature scan
// whose new-signature turnaround is 6, 12 or 24 hours after the virus
// becomes detectable. Shape claims: 6 h delay contains the infection to
// ~5% of baseline; even 24 h contains it to ~25%; the scan fully halts
// further spread once active. Also checks the §5.2 side-claims that
// Viruses 2 and 4 behave like Virus 1 and that Virus 3 is unaffected.
#include "bench_common.h"

using namespace mvsim;
using namespace mvsim::bench;

int main() {
  std::cout << "mvsim FIG-2: gateway virus scan, activation delay sweep (Figure 2)\n";
  Harness harness("fig2_virus_scan");
  std::vector<NamedRun> runs;
  runs.push_back(run_labelled(harness, "Baseline", core::baseline_scenario(virus::virus1())));
  for (double hours : {6.0, 12.0, 24.0}) {
    runs.push_back(run_labelled(harness, fmt(hours, 0) + "-Hour Delay",
                                core::fig2_scan_scenario(SimTime::hours(hours))));
  }
  print_figure("Figure 2: Virus Scan, Varying the Activation Time Delay (Virus 1)", runs,
               SimTime::hours(8.0));

  double base = runs[0].result.final_infections.mean();
  std::cout << "-- paper-vs-measured --\n";
  report("6-hour delay: infection reaches only ~5% of the baseline level",
         fmt(100.0 * runs[1].result.final_infections.mean() / base) + "% of baseline (" +
             fmt(runs[1].result.final_infections.mean()) + " phones)");
  report("24-hour delay: spread still contained to ~25% of baseline",
         fmt(100.0 * runs[3].result.final_infections.mean() / base) + "% of baseline (" +
             fmt(runs[3].result.final_infections.mean()) + " phones)");

  // Side-claims: similar containment for Viruses 2 and 4; none for 3.
  auto side_run = [&](const virus::VirusProfile& profile) {
    core::ScenarioConfig with_scan = core::baseline_scenario(profile);
    response::GatewayScanConfig scan;
    scan.activation_delay = SimTime::hours(6.0);
    with_scan.responses.gateway_scan = scan;
    core::ExperimentResult scanned =
        run_experiment_case(harness, profile.name + " + 6h scan", with_scan);
    core::ExperimentResult baseline =
        run_experiment_case(harness, profile.name + " baseline", core::baseline_scenario(profile));
    return 100.0 * scanned.final_infections.mean() / baseline.final_infections.mean();
  };
  report("results with the gateway scan look similar for Viruses 1, 2 and 4",
         "6h-delay final as % of baseline: Virus 2 = " + fmt(side_run(virus::virus2())) +
             "%, Virus 4 = " + fmt(side_run(virus::virus4())) + "%");
  report("the gateway scan is completely ineffectual against rapid Virus 3",
         "Virus 3 with 6h-delay scan reaches " + fmt(side_run(virus::virus3())) +
             "% of its baseline penetration");
  harness.write_report();
  return 0;
}
