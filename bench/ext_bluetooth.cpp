// EXT-BT: Bluetooth-worm extension (paper §6 future work).
//
// The paper closes by noting the same modeling approach applies to
// viruses "that spread using the Bluetooth interface on a phone".
// This bench runs that study: a Cabir-style proximity worm over a
// mobility grid, and the subset of the six response mechanisms that
// still function when there is no MMS gateway in the loop.
//
// Headline finding: the provider's entire reception- and
// dissemination-point arsenal (signature scan, detection algorithm,
// monitoring, blacklisting) is structurally blind to Bluetooth
// traffic; only the infection-point mechanisms — user education and
// handset patching — remain, which inverts the paper's §5.3 ranking
// for fast viruses.
#include "bench_common.h"

#include "mobility/bluetooth.h"

using namespace mvsim;
using namespace mvsim::bench;

namespace {

// Bluetooth experiments expose no event counter, so their harness cases
// report wall-clock only (events = 0).
mobility::BluetoothExperimentResult run_bt(Harness& harness, const std::string& label,
                                           const mobility::BluetoothScenarioConfig& config) {
  std::optional<mobility::BluetoothExperimentResult> result;
  harness.run_case(label, [&config, &result] {
    result.emplace(mobility::run_bluetooth_experiment(config, core::replications_from_env(10),
                                                      0xB1'0E'00'07ULL));
    return std::uint64_t{0};
  });
  return std::move(*result);
}

}  // namespace

int main() {
  std::cout << "mvsim EXT-BT: Bluetooth proximity worm (paper section 6 extension)\n";
  Harness harness("ext_bluetooth");

  mobility::BluetoothScenarioConfig base;  // 1000 phones, 16x16 grid
  mobility::BluetoothExperimentResult baseline = run_bt(harness, "Baseline", base);

  mobility::BluetoothScenarioConfig educated = base;
  response::UserEducationConfig education;
  education.eventual_acceptance = 0.20;
  educated.user_education = education;
  mobility::BluetoothExperimentResult with_education =
      run_bt(harness, "User education 0.20", educated);

  mobility::BluetoothScenarioConfig patched = base;
  patched.immunization = mobility::BluetoothImmunizationConfig{};  // 24h detect + 24h dev + 6h
  mobility::BluetoothExperimentResult with_patches = run_bt(harness, "Patch 24h+24h+6h", patched);

  mobility::BluetoothScenarioConfig fast_patched = base;
  mobility::BluetoothImmunizationConfig fast;
  fast.detection_time = SimTime::hours(12.0);
  fast.development_time = SimTime::hours(12.0);
  fast.deployment_duration = SimTime::hours(1.0);
  fast_patched.immunization = fast;
  mobility::BluetoothExperimentResult with_fast_patches =
      run_bt(harness, "Patch 12h+12h+1h", fast_patched);

  std::cout << "== Bluetooth worm: infection curves ==\n";
  std::cout << "Hours,Baseline,User Education 0.20,Patch 24h+24h+6h,Patch 12h+12h+1h\n";
  for (SimTime t = SimTime::zero(); t <= base.horizon; t += SimTime::hours(6.0)) {
    std::cout << fmt(t.to_hours()) << ',' << fmt(baseline.curve.mean_at(t)) << ','
              << fmt(with_education.curve.mean_at(t)) << ','
              << fmt(with_patches.curve.mean_at(t)) << ','
              << fmt(with_fast_patches.curve.mean_at(t)) << '\n';
  }

  std::cout << "-- findings --\n";
  double base_final = baseline.final_infections.mean();
  report("MMS-only mechanisms (scan/detection/monitoring/blacklist) see no Bluetooth traffic",
         "structural: the worm never transits a gateway, so those four cannot engage");
  report("the consent plateau carries over from the MMS model (1000 x 0.8 x 0.40 = 320)",
         "baseline final = " + fmt(base_final) + " infected");
  report("user education remains universally effective (paper section 5.2)",
         "eventual acceptance 0.20 -> final " + fmt(with_education.final_infections.mean()) +
             " (" + fmt(100.0 * with_education.final_infections.mean() / base_final) +
             "% of baseline)");
  report("handset patching remains effective and its delay dominates (as in Figure 5)",
         "48h+6h cycle -> " + fmt(with_patches.final_infections.mean()) + "; 24h+1h cycle -> " +
             fmt(with_fast_patches.final_infections.mean()));

  // Density sweep: proximity spread is gated by encounters, a knob MMS
  // propagation does not have.
  std::cout << "-- density sweep (phones per cell) --\n";
  std::cout << "grid,phones_per_cell,final_infected,half_plateau_hours\n";
  for (std::uint32_t side : {8u, 16u, 32u}) {
    mobility::BluetoothScenarioConfig config = base;
    config.grid_width = side;
    config.grid_height = side;
    mobility::BluetoothExperimentResult result =
        run_bt(harness, "Density " + std::to_string(side) + "x" + std::to_string(side), config);
    SimTime half = result.curve.mean_first_time_at_or_above(160.0);
    std::cout << side << "x" << side << ","
              << fmt(1000.0 / (static_cast<double>(side) * side), 2) << ","
              << fmt(result.final_infections.mean()) << ","
              << fmt(half.is_finite() ? half.to_hours() : -1.0) << "\n";
  }
  report("a proximity worm is density-limited (no analogue in MMS propagation)",
         "sparser grids spread strictly slower at equal population (table above)");
  harness.write_report();
  return 0;
}
