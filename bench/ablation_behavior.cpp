// ABL-2: behavioral-constant ablation.
//
// Two constants the paper leaves unspecified are knobs in mvsim (see
// DESIGN.md substitutions):
//   * the user's read delay (inbox -> accept/reject decision), and
//   * the detectability threshold (infected messages the gateways must
//     see before scan/detection/immunization clocks start).
// This bench quantifies how sensitive the headline results are to each.
#include "bench_common.h"

using namespace mvsim;
using namespace mvsim::bench;

int main() {
  std::cout << "mvsim ABL-2: behavioral-constant ablation\n";
  Harness harness("ablation_behavior");

  // --- Read-delay sweep: Virus 1 baseline growth speed. ---
  std::cout << "-- read delay (Virus 1 baseline) --\n";
  std::cout << "read_delay_mean_min,final_infected,half_plateau_hours\n";
  for (double minutes : {15.0, 30.0, 60.0, 120.0, 240.0}) {
    core::ScenarioConfig config = core::baseline_scenario(virus::virus1());
    config.read_delay_mean = SimTime::minutes(minutes);
    core::ExperimentResult result =
        run_experiment_case(harness, "read_delay " + fmt(minutes, 0) + "min", config);
    SimTime half = result.curve.mean_first_time_at_or_above(160.0);
    std::cout << fmt(minutes, 0) << "," << fmt(result.final_infections.mean()) << ","
              << fmt(half.is_finite() ? half.to_hours() : -1.0) << "\n";
  }
  report("plateau is read-delay invariant; growth speed shifts by at most hours",
         "see table above: finals stable near 320, half-plateau times shift modestly");

  // --- Detectability-threshold sweep: gateway scan vs Virus 1. ---
  std::cout << "-- detectability threshold (Virus 1 + 6h gateway scan) --\n";
  std::cout << "detect_threshold_msgs,final_infected,detected_at_hours\n";
  for (std::uint64_t threshold : {1ull, 5ull, 20ull, 50ull}) {
    core::ScenarioConfig config = core::fig2_scan_scenario(SimTime::hours(6.0));
    config.responses.detectability_threshold = threshold;
    core::RunnerOptions options = default_options();
    options.keep_replications = true;
    core::ExperimentResult result = run_experiment_case(
        harness, "detect_threshold " + std::to_string(threshold), config, options);
    stats::Accumulator detected_at;
    for (const auto& rep : result.replications) {
      if (rep.detected_at.is_finite()) detected_at.add(rep.detected_at.to_hours());
    }
    std::cout << threshold << "," << fmt(result.final_infections.mean()) << ","
              << fmt(detected_at.mean()) << "\n";
  }
  report("containment depends on response delay measured from detectability",
         "raising the threshold delays detection and raises the final level accordingly");

  // --- Legit-traffic rate: Virus 4's only free constant. ---
  std::cout << "-- legitimate-traffic gap (Virus 4 baseline) --\n";
  std::cout << "legit_gap_mean_hours,final_infected,half_plateau_hours\n";
  for (double hours : {1.0, 2.0, 4.0}) {
    core::ScenarioConfig config = core::baseline_scenario(virus::virus4());
    config.virus.legit_traffic_gap_mean = SimTime::hours(hours);
    core::ExperimentResult result =
        run_experiment_case(harness, "legit_gap " + fmt(hours, 0) + "h", config);
    SimTime half = result.curve.mean_first_time_at_or_above(160.0);
    std::cout << fmt(hours, 0) << "," << fmt(result.final_infections.mean()) << ","
              << fmt(half.is_finite() ? half.to_hours() : -1.0) << "\n";
  }
  report("Virus 4's time scale tracks the legitimate-traffic rate it hides behind",
         "halving the gap roughly halves the half-plateau time; plateau unchanged");
  harness.write_report();
  return 0;
}
