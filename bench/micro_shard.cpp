// MICRO: sharded-engine sweep — shards {1, 2, 4, 8} x population ladder.
//
// Not a paper figure — this guards the parallel engine's scaling story
// (docs/parallelism.md). Each rung runs ONE replication of the
// market-share epidemic (share 0.50, so the outbreak reliably ignites
// and the run measures event throughput, not graph construction) at
// every shard count. Shards == 1 is the serial engine the runner would
// pick; shards >= 2 run the windowed engine with one worker thread per
// shard.
//
// The report's notes carry the parallel-efficiency summary the sweep
// exists for: speedup_shards<K>@<pop> = serial wall / sharded wall, and
// efficiency_shards<K>@<pop> = speedup / K. Expect efficiency well
// below 1 at small populations (windows are barrier-dominated) and
// climbing with population; the 10^6-phone acceptance gate lives in
// scaling_population, not here.
//
// MVSIM_SHARD_MAX_POP caps the ladder (CI stops at 10^5; the default
// climbs no higher — raise it to 10^6 on a dev machine to reproduce
// the scaling_population headline locally).
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

#include "bench_common.h"
#include "core/sharded_simulation.h"
#include "core/simulation.h"

using namespace mvsim;
using namespace mvsim::bench;

namespace {

constexpr std::uint64_t kSeed = 1;  // single replication, fixed seed

graph::PhoneId max_ladder_population() {
  constexpr unsigned long kDefault = 100'000ul;
  const char* raw = std::getenv("MVSIM_SHARD_MAX_POP");
  if (raw == nullptr || *raw == '\0') return kDefault;
  char* end = nullptr;
  unsigned long value = std::strtoul(raw, &end, 10);
  if (end == raw || *end != '\0' || value == 0ul) return kDefault;
  return static_cast<graph::PhoneId>(std::min(value, 1'000'000ul));
}

core::ScenarioConfig ladder_scenario(graph::PhoneId population) {
  core::ScenarioConfig config = core::market_share_scenario(0.50, population);
  config.name = "shard/ladder";
  config.horizon = SimTime::days(5.0);
  return config;
}

/// One serial replication; returns events executed.
std::uint64_t run_serial(const core::ScenarioConfig& config, std::uint64_t& infected) {
  core::Simulation sim(config, kSeed);
  core::ReplicationResult rep = sim.run();
  infected = rep.total_infected;
  return rep.metrics.counter_value("des.events_executed");
}

/// One sharded replication (one worker thread per shard); returns
/// events executed across all shards.
std::uint64_t run_sharded(const core::ScenarioConfig& config, std::uint32_t shards,
                          std::uint64_t& infected) {
  core::ShardingOptions options;
  options.shards = shards;
  options.worker_threads = 0;  // one per shard
  core::ShardedSimulation sim(config, kSeed, options);
  core::ReplicationResult rep = sim.run();
  infected = rep.total_infected;
  return rep.metrics.counter_value("des.events_executed");
}

double median_wall(const Harness& harness, const std::string& name) {
  for (const auto& c : harness.cases()) {
    if (c.name == name) return sample_quantile(c.wall_seconds, 0.5);
  }
  return 0.0;
}

}  // namespace

int main() {
  std::cout << "mvsim MICRO: sharded engine sweep (shards x population)\n";
  Harness harness("micro_shard", {.warmup = 0, .repeat = 3});

  const unsigned cores = std::thread::hardware_concurrency();
  std::cout << "host cores: " << cores
            << " (speedup above this shard count is concurrency-capped)\n";
  harness.set_note("host_cores", static_cast<double>(cores));

  const graph::PhoneId cap = max_ladder_population();
  std::cout << "population,shards,final_infected,events,median_wall_s,speedup,efficiency\n";

  for (graph::PhoneId population : {20'000u, 100'000u, 1'000'000u}) {
    if (population > cap) {
      std::cout << "# skipped " << population << " (MVSIM_SHARD_MAX_POP)\n";
      continue;
    }
    const core::ScenarioConfig config = ladder_scenario(population);
    double serial_wall = 0.0;
    for (std::uint32_t shards : {1u, 2u, 4u, 8u}) {
      std::uint64_t infected = 0;
      const std::string label =
          "epidemic @" + std::to_string(population) + " x" + std::to_string(shards);
      harness.run_case(label, [&config, shards, &infected] {
        return shards == 1 ? run_serial(config, infected)
                           : run_sharded(config, shards, infected);
      });
      const double wall = median_wall(harness, label);
      if (shards == 1) serial_wall = wall;
      const double speedup = wall > 0.0 ? serial_wall / wall : 0.0;
      const double efficiency = speedup / static_cast<double>(shards);
      std::cout << population << "," << shards << "," << infected << ","
                << harness.cases().back().events << "," << fmt(wall, 3) << ","
                << fmt(speedup, 2) << "," << fmt(efficiency, 2) << "\n";
      if (shards > 1) {
        const std::string suffix =
            "_shards" + std::to_string(shards) + "@" + std::to_string(population);
        harness.set_note("speedup" + suffix, speedup);
        harness.set_note("efficiency" + suffix, efficiency);
      }
    }
  }

  std::cout << "\nParallel efficiency falls out of the window protocol: every\n"
               "window is a full barrier, so small populations (few events per\n"
               "window) are barrier-dominated while large ones amortize the\n"
               "synchronization. See docs/parallelism.md.\n";

  harness.write_report();
  return 0;
}
