// MICRO: engine microbenchmarks (google-benchmark).
//
// Not a paper figure — these guard the substrate's performance so the
// figure benches stay fast: scheduler throughput, graph generation,
// consent math, and whole-replication cost for each virus preset.
#include <benchmark/benchmark.h>

#include "core/presets.h"
#include "core/simulation.h"
#include "des/scheduler.h"
#include "graph/generators.h"
#include "phone/consent.h"
#include "rng/stream.h"

namespace {

using namespace mvsim;

void BM_SchedulerScheduleFire(benchmark::State& state) {
  for (auto _ : state) {
    des::Scheduler sched;
    for (int i = 0; i < 1000; ++i) {
      sched.schedule_at(SimTime::minutes(static_cast<double>(i % 97)), [] {});
    }
    sched.run_to_quiescence();
    benchmark::DoNotOptimize(sched.executed_count());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerScheduleFire);

void BM_SchedulerCancelHeavy(benchmark::State& state) {
  for (auto _ : state) {
    des::Scheduler sched;
    std::vector<des::EventHandle> handles;
    handles.reserve(1000);
    for (int i = 0; i < 1000; ++i) {
      handles.push_back(
          sched.schedule_at(SimTime::minutes(static_cast<double>(i)), [] {}));
    }
    for (std::size_t i = 0; i < handles.size(); i += 2) sched.cancel(handles[i]);
    sched.run_to_quiescence();
    benchmark::DoNotOptimize(sched.cancelled_count());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerCancelHeavy);

void BM_PowerLawGraph(benchmark::State& state) {
  auto n = static_cast<graph::PhoneId>(state.range(0));
  rng::Stream stream(42);
  graph::PowerLawConfig config;
  config.node_count = n;
  config.target_mean_degree = 80.0;
  for (auto _ : state) {
    graph::ContactGraph g = graph::generate_power_law(config, stream);
    benchmark::DoNotOptimize(g.edge_count());
  }
}
BENCHMARK(BM_PowerLawGraph)->Arg(1000)->Arg(2000)->Arg(4000);

void BM_ConsentSolver(benchmark::State& state) {
  for (auto _ : state) {
    double af = phone::ConsentModel::solve_acceptance_factor(0.40);
    benchmark::DoNotOptimize(af);
  }
}
BENCHMARK(BM_ConsentSolver);

void BM_FullReplication(benchmark::State& state) {
  const auto suite = virus::paper_virus_suite();
  const auto& profile = suite[static_cast<std::size_t>(state.range(0))];
  core::ScenarioConfig config = core::baseline_scenario(profile);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    core::Simulation sim(config, seed++);
    core::ReplicationResult r = sim.run();
    benchmark::DoNotOptimize(r.total_infected);
  }
  state.SetLabel(profile.name);
}
BENCHMARK(BM_FullReplication)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
