// MICRO: engine microbenchmarks.
//
// Not a paper figure — these guard the substrate's performance so the
// figure benches stay fast: scheduler throughput, graph generation,
// consent math, and whole-replication cost for each virus preset.
// Each case runs a fixed inner iteration count and reports the unit
// count as its events figure, so events/sec is directly comparable
// across BENCH reports.
#include <cstdint>

#include "harness.h"
#include "core/presets.h"
#include "core/sharded_simulation.h"
#include "core/simulation.h"
#include "des/scheduler.h"
#include "graph/generators.h"
#include "phone/consent.h"
#include "rng/stream.h"

namespace {

using namespace mvsim;

// Keeps a computed value alive so the optimizer cannot delete the work.
volatile std::uint64_t g_sink = 0;

std::uint64_t scheduler_schedule_fire() {
  constexpr int kRounds = 200;
  std::uint64_t executed = 0;
  for (int round = 0; round < kRounds; ++round) {
    des::Scheduler sched;
    for (int i = 0; i < 1000; ++i) {
      sched.schedule_at(SimTime::minutes(static_cast<double>(i % 97)), [] {});
    }
    sched.run_to_quiescence();
    executed += sched.executed_count();
  }
  g_sink = executed;
  return executed;
}

std::uint64_t scheduler_cancel_heavy() {
  constexpr int kRounds = 200;
  std::uint64_t scheduled = 0;
  for (int round = 0; round < kRounds; ++round) {
    des::Scheduler sched;
    std::vector<des::EventHandle> handles;
    handles.reserve(1000);
    for (int i = 0; i < 1000; ++i) {
      handles.push_back(sched.schedule_at(SimTime::minutes(static_cast<double>(i)), [] {}));
    }
    for (std::size_t i = 0; i < handles.size(); i += 2) sched.cancel(handles[i]);
    sched.run_to_quiescence();
    scheduled += 1000;
    g_sink = sched.cancelled_count();
  }
  return scheduled;
}

std::uint64_t power_law_graph(graph::PhoneId node_count) {
  constexpr int kRounds = 10;
  rng::Stream stream(42);
  graph::PowerLawConfig config;
  config.node_count = node_count;
  config.target_mean_degree = 80.0;
  std::uint64_t edges = 0;
  for (int round = 0; round < kRounds; ++round) {
    graph::ContactGraph g = graph::generate_power_law(config, stream);
    edges += g.edge_count();
  }
  g_sink = edges;
  return edges;
}

std::uint64_t consent_solver() {
  constexpr int kRounds = 1000;
  double sum = 0.0;
  for (int round = 0; round < kRounds; ++round) {
    sum += phone::ConsentModel::solve_acceptance_factor(0.40);
  }
  g_sink = static_cast<std::uint64_t>(sum);
  return kRounds;
}

std::uint64_t full_replication(const virus::VirusProfile& profile) {
  core::ScenarioConfig config = core::baseline_scenario(profile);
  core::Simulation sim(config, 1);
  core::ReplicationResult result = sim.run();
  g_sink = result.total_infected;
  return result.metrics.counter_value("des.events_executed");
}

// The windowed parallel engine at --shards 4 on the 1000-phone baseline.
// At this population the run is barrier-dominated, which is the point:
// the case guards the fixed per-window cost (pool wakeup, mailbox
// exchange, detectability scan), not the scaling story — that lives in
// micro_shard and scaling_population.
std::uint64_t full_replication_sharded(const virus::VirusProfile& profile) {
  core::ScenarioConfig config = core::baseline_scenario(profile);
  core::ShardingOptions options;
  options.shards = 4;
  core::ShardedSimulation sim(config, 1, options);
  core::ReplicationResult result = sim.run();
  g_sink = result.total_infected;
  return result.metrics.counter_value("des.events_executed");
}

}  // namespace

int main() {
  bench::Harness harness("micro_engine", {.warmup = 1, .repeat = 5});

  harness.run_case("scheduler_schedule_fire", scheduler_schedule_fire);
  harness.run_case("scheduler_cancel_heavy", scheduler_cancel_heavy);
  for (graph::PhoneId n : {1000u, 2000u, 4000u}) {
    harness.run_case("power_law_graph/" + std::to_string(n), [n] { return power_law_graph(n); });
  }
  harness.run_case("consent_solver", consent_solver);
  for (const auto& profile : virus::paper_virus_suite()) {
    harness.run_case("full_replication/" + profile.name,
                     [&profile] { return full_replication(profile); });
  }
  harness.run_case("full_replication_shards4/virus1",
                   [] { return full_replication_sharded(virus::virus1()); });

  harness.write_report();
  return 0;
}
