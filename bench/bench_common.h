// Shared helpers for the figure-reproduction benches.
//
// Every fig*_ binary runs a sweep of scenarios, prints the series the
// corresponding paper figure plots (Hours vs mean infection count, one
// column per configuration), then prints the shape metrics the paper's
// prose quotes next to what we measured. Replication count defaults to
// 10 and can be overridden with MVSIM_REPS; worker-thread count
// defaults to all cores and can be pinned with MVSIM_THREADS.
#pragma once

#include <cstdio>
#include <iostream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/presets.h"
#include "core/runner.h"
#include "harness.h"
#include "stats/summary.h"

namespace mvsim::bench {

struct NamedRun {
  std::string label;
  core::ExperimentResult result;
};

inline core::RunnerOptions default_options() {
  core::RunnerOptions options;
  options.replications = core::replications_from_env(10);
  options.master_seed = 0xD5A7'2007ULL;  // fixed: benches are reproducible
  options.keep_replications = false;
  // Replications parallelize; results are thread-count-invariant.
  options.threads = core::threads_from_env(0);
  return options;
}

/// Runs the experiment as a harness case (timed, in the BENCH report;
/// the case's throughput unit is engine events executed) and hands the
/// result back for the figure tables. With repeat > 1 the runs are
/// identical (fixed seed) and the last result is returned.
inline core::ExperimentResult run_experiment_case(Harness& harness, const std::string& label,
                                                  const core::ScenarioConfig& config,
                                                  const core::RunnerOptions& options) {
  std::optional<core::ExperimentResult> result;
  harness.run_case(label, [&config, &options, &result] {
    result.emplace(core::run_experiment(config, options));
    return result->metrics.counter_value("des.events_executed");
  });
  return std::move(*result);
}

inline core::ExperimentResult run_experiment_case(Harness& harness, const std::string& label,
                                                  const core::ScenarioConfig& config) {
  return run_experiment_case(harness, label, config, default_options());
}

inline NamedRun run_labelled(Harness& harness, std::string label,
                             const core::ScenarioConfig& config) {
  core::ExperimentResult result = run_experiment_case(harness, label, config);
  return NamedRun{std::move(label), std::move(result)};
}

/// Prints the figure table plus per-curve summaries and an engine
/// throughput line per run (events processed and events/sec, from the
/// run telemetry — wall-clock figures are machine-dependent).
inline void print_figure(const std::string& title, const std::vector<NamedRun>& runs,
                         SimTime row_step) {
  std::vector<stats::LabelledSeries> curves;
  curves.reserve(runs.size());
  for (const auto& r : runs) curves.push_back({r.label, &r.result.curve});
  stats::print_figure_table(std::cout, title, curves, row_step);
  std::cout << "-- curve summaries --\n";
  stats::print_curve_summaries(std::cout, curves);
  std::cout << "-- engine throughput --\n";
  for (const auto& r : runs) {
    const metrics::Snapshot& m = r.result.metrics;
    auto events = static_cast<double>(m.counter_value("des.events_executed"));
    double wall_ms = 0.0;
    if (const metrics::HistogramSample* h = m.find_histogram("timing.replication_wall_ms")) {
      wall_ms = h->sum;
    }
    char line[160];
    std::snprintf(line, sizeof line, "  %-24s %.0f events, %.2fs cpu, %.0f events/s\n",
                  r.label.c_str(), events, wall_ms / 1000.0,
                  wall_ms > 0.0 ? events / (wall_ms / 1000.0) : 0.0);
    std::cout << line;
  }
}

/// One "paper says X, we measured Y" line.
inline void report(const std::string& claim, const std::string& measured) {
  std::cout << "  paper: " << claim << "\n    ours: " << measured << "\n";
}

inline std::string fmt(double v, int precision = 1) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

inline std::string fmt_hours(SimTime t) {
  if (!t.is_finite()) return "never";
  return fmt(t.to_hours()) + " h";
}

}  // namespace mvsim::bench
