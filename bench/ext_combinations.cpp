// EXT-COMBO: combinations of response mechanisms (paper §6 future work).
//
// "This work can be extended with an evaluation of combinations of
// reaction mechanisms, particularly when a response mechanism that
// only slows virus propagation requires a secondary mechanism to
// completely halt virus spread." This bench performs that evaluation
// against Virus 3 — the virus that defeats every single slow-to-
// activate mechanism on its own — over all strategies of up to two
// mechanisms drawn from the full six-mechanism kit, then prints the
// Pareto front over (mechanism count, final infections).
#include "bench_common.h"

#include "analysis/strategy.h"

using namespace mvsim;
using namespace mvsim::bench;

int main() {
  std::cout << "mvsim EXT-COMBO: combination strategies vs Virus 3 (paper section 6)\n";

  core::ScenarioConfig base = core::baseline_scenario(virus::virus3());

  // The kit: each mechanism at its paper-default configuration.
  response::ResponseSuiteConfig kit;
  kit.gateway_scan = response::GatewayScanConfig{};            // 6 h signature
  kit.gateway_detection = response::GatewayDetectionConfig{};  // 0.95, 6 h analysis
  kit.user_education = response::UserEducationConfig{};        // acceptance 0.20
  kit.immunization = response::ImmunizationConfig{};           // 24 h dev + 6 h rollout
  kit.monitoring = response::MonitoringConfig{};               // 30 min forced wait
  kit.blacklist = response::BlacklistConfig{};                 // 10 messages

  core::RunnerOptions options = default_options();
  Harness harness("ext_combinations");
  std::optional<analysis::StrategyStudy> study_opt;
  harness.run_case("evaluate_strategies <=2 of 6", [&] {
    study_opt.emplace(analysis::evaluate_strategies(base, kit, 2, options));
    return std::uint64_t{0};
  });
  analysis::StrategyStudy study = std::move(*study_opt);

  std::cout << "strategy,mechanisms,final_infected,containment\n";
  for (const analysis::StrategyOutcome& outcome : study.outcomes) {
    std::cout << outcome.name << ',' << outcome.mechanisms << ','
              << fmt(outcome.final_infections) << ',' << fmt(100.0 * outcome.containment)
              << "%\n";
  }

  std::cout << "-- Pareto front (cheapest nondominated strategies) --\n";
  for (std::size_t index : study.pareto) {
    const analysis::StrategyOutcome& outcome = study.outcomes[index];
    std::cout << "  " << outcome.mechanisms << " mechanism(s): " << outcome.name << " -> "
              << fmt(outcome.final_infections) << " infected ("
              << fmt(100.0 * outcome.containment) << "% contained)\n";
  }

  // The paper's specific motivating pattern: slower+halting beats both.
  auto find = [&](const char* name) -> const analysis::StrategyOutcome* {
    for (const auto& outcome : study.outcomes) {
      if (outcome.name == name) return &outcome;
    }
    return nullptr;
  };
  const auto* monitor = find("monitor");
  const auto* scan = find("scan");
  const auto* combo = find("scan+monitor");
  if (monitor != nullptr && scan != nullptr && combo != nullptr) {
    std::cout << "-- paper-vs-measured --\n";
    report("a mechanism that only slows the virus needs a second one to halt it (section 6)",
           "monitoring alone " + fmt(monitor->final_infections) + ", scan alone " +
               fmt(scan->final_infections) + ", monitoring+scan " +
               fmt(combo->final_infections) + " infected");
  }
  harness.write_report();
  return 0;
}
