#include "harness.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "core/runner.h"
#include "util/json.h"

// Stamped by the build (bench/CMakeLists.txt, `git rev-parse`) so two
// BENCH files can be attributed to the commits that produced them.
#ifndef MVSIM_GIT_SHA
#define MVSIM_GIT_SHA "unknown"
#endif

namespace mvsim::bench {

namespace {

int int_from_env(const char* name, int fallback, long lo, long hi) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  long value = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return static_cast<int>(std::clamp(value, lo, hi));
}

json::Object summarize(const std::vector<double>& values) {
  json::Object out;
  out.set("p50", json::Value(sample_quantile(values, 0.50)));
  out.set("p90", json::Value(sample_quantile(values, 0.90)));
  out.set("min", json::Value(values.empty() ? 0.0 : *std::min_element(values.begin(), values.end())));
  out.set("max", json::Value(values.empty() ? 0.0 : *std::max_element(values.begin(), values.end())));
  return out;
}

}  // namespace

double sample_quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  q = std::clamp(q, 0.0, 1.0);
  const auto n = static_cast<double>(values.size());
  auto rank = static_cast<std::size_t>(std::ceil(q * n));
  if (rank > 0) --rank;  // ceil(q*n)-th order statistic, 0-based
  return values[std::min(rank, values.size() - 1)];
}

Harness::Harness(std::string name, HarnessOptions defaults)
    : name_(std::move(name)), options_(defaults) {
  options_.warmup = int_from_env("MVSIM_BENCH_WARMUP", options_.warmup, 0L, 100L);
  options_.repeat = int_from_env("MVSIM_BENCH_REPEAT", options_.repeat, 1L, 1000L);
}

void Harness::run_case(const std::string& label, const std::function<std::uint64_t()>& fn) {
  CaseResult result;
  result.name = label;
  result.wall_seconds.reserve(static_cast<std::size_t>(options_.repeat));
  for (int i = 0; i < options_.warmup; ++i) (void)fn();
  for (int i = 0; i < options_.repeat; ++i) {
    const auto started = std::chrono::steady_clock::now();
    result.events = fn();
    result.wall_seconds.push_back(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - started).count());
  }

  const double p50 = sample_quantile(result.wall_seconds, 0.50);
  char line[256];
  if (result.events > 0 && p50 > 0.0) {
    std::snprintf(line, sizeof line, "[bench] %-32s p50 %10.2f ms  %12.0f events/s  (x%d)\n",
                  label.c_str(), p50 * 1000.0, static_cast<double>(result.events) / p50,
                  options_.repeat);
  } else {
    std::snprintf(line, sizeof line, "[bench] %-32s p50 %10.2f ms  (x%d)\n", label.c_str(),
                  p50 * 1000.0, options_.repeat);
  }
  std::fputs(line, stderr);
  cases_.push_back(std::move(result));
}

void Harness::set_note(const std::string& key, double value) {
  for (auto& note : notes_) {
    if (note.first == key) {
      note.second = value;
      return;
    }
  }
  notes_.emplace_back(key, value);
}

std::string Harness::to_json() const {
  json::Object root;
  root.set("type", json::Value("mvsim-bench"));
  root.set("bench_schema_version", json::Value(1));
  root.set("bench", json::Value(name_));
  root.set("git_sha", json::Value(MVSIM_GIT_SHA));
  root.set("warmup", json::Value(options_.warmup));
  root.set("repeat", json::Value(options_.repeat));
  // The experiment-shape knobs the measured numbers depend on.
  root.set("replications", json::Value(core::replications_from_env(10)));
  root.set("threads", json::Value(core::threads_from_env(0)));

  json::Array cases;
  for (const CaseResult& c : cases_) {
    json::Object entry;
    entry.set("name", json::Value(c.name));
    entry.set("events", json::Value(c.events));
    entry.set("wall_seconds", json::Value(summarize(c.wall_seconds)));
    if (c.events > 0) {
      std::vector<double> rates;
      rates.reserve(c.wall_seconds.size());
      for (double seconds : c.wall_seconds) {
        if (seconds > 0.0) rates.push_back(static_cast<double>(c.events) / seconds);
      }
      entry.set("events_per_sec", json::Value(summarize(rates)));
    }
    cases.emplace_back(std::move(entry));
  }
  root.set("cases", json::Value(std::move(cases)));
  if (!notes_.empty()) {
    json::Object notes;
    for (const auto& [key, value] : notes_) notes.set(key, json::Value(value));
    root.set("notes", json::Value(std::move(notes)));
  }
  return json::stringify(json::Value(std::move(root)), 2) + "\n";
}

std::string Harness::write_report() const {
  const char* dir = std::getenv("MVSIM_BENCH_DIR");
  std::string path;
  if (dir != nullptr && *dir != '\0') {
    path = std::string(dir);
    if (path.back() != '/') path += '/';
  }
  path += "BENCH_" + name_ + ".json";
  std::ofstream file(path);
  file << to_json();
  file.flush();
  if (!file) throw std::runtime_error("harness: cannot write '" + path + "'");
  std::fprintf(stderr, "[bench] wrote %s (%zu case(s))\n", path.c_str(), cases_.size());
  return path;
}

}  // namespace mvsim::bench
