// ABL-1: topology ablation.
//
// The paper argues a power-law contact graph (per NGCE / email
// address-book studies) is the right topology. This ablation asks how
// much the choice matters: Virus 1 on power-law vs Erdős–Rényi vs
// k-regular-ring contact lists of the same mean degree. Expected:
// hub-heavy power-law graphs seed super-spreaders and accelerate early
// growth; the ring's high clustering slows the spread to a crawl; the
// plateau is topology-invariant (it is fixed by the consent model).
#include "bench_common.h"

#include "graph/generators.h"
#include "graph/graph_stats.h"
#include "rng/stream.h"

using namespace mvsim;
using namespace mvsim::bench;

int main() {
  std::cout << "mvsim ABL-1: contact-list topology ablation (Virus 1)\n";
  Harness harness("ablation_topology");

  // Structural profile of each generator at the paper's scale.
  std::cout << "-- generated topologies (n=1000, mean degree 80) --\n";
  std::cout << "topology,mean_degree,max_degree,degree_stddev,clustering,largest_component\n";
  for (auto kind :
       {core::TopologyConfig::Kind::kPowerLaw, core::TopologyConfig::Kind::kErdosRenyi,
        core::TopologyConfig::Kind::kBarabasiAlbert, core::TopologyConfig::Kind::kRegularRing}) {
    rng::Stream stream(7);
    graph::ContactGraph g = [&] {
      switch (kind) {
        case core::TopologyConfig::Kind::kPowerLaw: {
          graph::PowerLawConfig config;
          config.node_count = 1000;
          config.target_mean_degree = 80.0;
          return graph::generate_power_law(config, stream);
        }
        case core::TopologyConfig::Kind::kErdosRenyi:
          return graph::generate_erdos_renyi(1000, 80.0, stream);
        case core::TopologyConfig::Kind::kBarabasiAlbert:
          return graph::generate_barabasi_albert(1000, 40, stream);
        case core::TopologyConfig::Kind::kRegularRing:
        default:
          return graph::generate_regular_ring(1000, 80);
      }
    }();
    auto degrees = graph::degree_stats(g);
    auto components = graph::component_stats(g);
    std::cout << core::to_string(kind) << "," << fmt(degrees.mean) << "," << degrees.max << ","
              << fmt(degrees.stddev) << "," << fmt(graph::global_clustering_coefficient(g), 3)
              << "," << fmt(100.0 * components.largest_fraction) << "%\n";
  }

  std::vector<NamedRun> runs;
  for (auto kind :
       {core::TopologyConfig::Kind::kPowerLaw, core::TopologyConfig::Kind::kErdosRenyi,
        core::TopologyConfig::Kind::kBarabasiAlbert, core::TopologyConfig::Kind::kRegularRing}) {
    core::ScenarioConfig config = core::baseline_scenario(virus::virus1());
    config.topology.kind = kind;
    runs.push_back(run_labelled(harness, core::to_string(kind), config));
  }
  print_figure("Ablation: Virus 1 baseline across contact-list topologies", runs,
               SimTime::hours(16.0));

  // Locality/clustering sweep: does forcing extra triadic overlap into
  // the power-law graph change the epidemic? (Finding: no — at mean
  // degree 80 the hub structure already gives clustering ~0.24 and the
  // curves are insensitive to the knob.)
  std::cout << "-- locality_jitter sweep (Virus 1, power-law) --\n";
  std::cout << "locality_jitter,clustering,final_infected,half_plateau_hours\n";
  for (double jitter : {0.0, 0.05, 0.1, 0.2}) {
    rng::Stream stream(9);
    graph::PowerLawConfig plc;
    plc.locality_jitter = jitter;
    graph::ContactGraph g = graph::generate_power_law(plc, stream);
    core::ScenarioConfig config = core::baseline_scenario(virus::virus1());
    config.topology.locality_jitter = jitter;
    core::ExperimentResult result =
        run_experiment_case(harness, "locality_jitter " + fmt(jitter, 2), config);
    SimTime half = result.curve.mean_first_time_at_or_above(160.0);
    std::cout << fmt(jitter, 2) << "," << fmt(graph::global_clustering_coefficient(g), 3) << ","
              << fmt(result.final_infections.mean()) << ","
              << fmt(half.is_finite() ? half.to_hours() : -1.0) << "\n";
  }

  std::cout << "-- findings --\n";
  for (const auto& r : runs) {
    SimTime half = r.result.curve.mean_first_time_at_or_above(160.0);
    std::cout << "  " << r.label << ": final = " << fmt(r.result.final_infections.mean())
              << ", half-plateau at " << fmt_hours(half) << "\n";
  }
  std::cout << "  The plateau is set by the consent model, not the topology; the topology\n"
               "  shifts the growth-phase timing, so the paper's power-law choice mainly\n"
               "  affects *when* response mechanisms must activate, not the end state.\n";
  harness.write_report();
  return 0;
}
