// ANA-DR: per-mechanism diminishing-returns analysis (paper §5.3).
//
// "The results of our experiments are useful for locating the point of
// diminishing returns for each individual response mechanism, the
// point where implementing a faster or more accurate response
// mechanism does not much improve the success rate." This bench runs
// that analysis for the four mechanisms with a natural strength axis,
// each against the virus its paper figure uses, and marks every
// strengthening step as "worth it" or "diminishing".
#include "bench_common.h"

#include "analysis/diminishing_returns.h"
#include "analysis/sweep.h"

using namespace mvsim;
using namespace mvsim::bench;

namespace {

double baseline_final(Harness& harness, const virus::VirusProfile& profile) {
  return run_experiment_case(harness, profile.name + " baseline",
                             core::baseline_scenario(profile))
      .final_infections.mean();
}

analysis::SweepResult sweep_case(Harness& harness, const std::string& label,
                                 const std::function<analysis::SweepResult()>& fn) {
  std::optional<analysis::SweepResult> sweep;
  harness.run_case(label, [&fn, &sweep] {
    sweep.emplace(fn());
    std::uint64_t events = 0;
    for (const analysis::SweepPoint& point : sweep->points) {
      events += point.result.metrics.counter_value("des.events_executed");
    }
    return events;
  });
  return std::move(*sweep);
}

void run_study(const std::string& title, const analysis::SweepResult& sweep, double baseline) {
  std::cout << "== " << title << " ==\n";
  analysis::DiminishingReturnsReport report =
      analysis::analyze_diminishing_returns(sweep, baseline);
  std::cout << analysis::to_table(report);
  if (report.has_knee()) {
    const analysis::MarginalGain& knee = report.gains[report.knee_index];
    std::cout << "  knee: strengthening beyond " << fmt(knee.from_parameter, 2)
              << " buys little (" << fmt(knee.infections_avoided)
              << " infections for that step)\n";
  } else if (report.returns_still_increasing()) {
    std::cout << "  returns still increasing at the strongest setting studied: this\n"
                 "  mechanism only starts biting near its top end — buy strength\n";
  } else {
    std::cout << "  no knee inside the studied range: every step still pays\n";
  }
  std::cout << '\n';
}

}  // namespace

int main() {
  std::cout << "mvsim ANA-DR: diminishing returns per mechanism (paper section 5.3)\n\n";
  core::RunnerOptions options = default_options();
  Harness harness("analysis_diminishing_returns");

  // Gateway scan vs Virus 1: strength = response speed. Parameterize by
  // -delay so "stronger" is increasing (faster signature turnaround).
  run_study("gateway scan vs Virus 1 (parameter: -activation delay, hours)",
            sweep_case(harness, "sweep scan speed",
                       [&options] {
                         return analysis::run_sweep(
                             "scan speed (-delay h)", {-48.0, -24.0, -12.0, -6.0, -3.0},
                             [](double negative_delay) {
                               return core::fig2_scan_scenario(SimTime::hours(-negative_delay));
                             },
                             options);
                       }),
            baseline_final(harness, virus::virus1()));

  // Detection accuracy vs Virus 2: outcome at day 10 via final level.
  run_study("gateway detection vs Virus 2 (parameter: accuracy)",
            sweep_case(harness, "sweep detection accuracy",
                       [&options] {
                         return analysis::run_sweep(
                             "accuracy", {0.80, 0.85, 0.90, 0.95, 0.99},
                             [](double accuracy) { return core::fig3_detection_scenario(accuracy); },
                             options);
                       }),
            baseline_final(harness, virus::virus2()));

  // Immunization rollout speed vs Virus 4 (24 h development fixed).
  run_study("immunization rollout vs Virus 4 (parameter: -rollout hours)",
            sweep_case(harness, "sweep immunization rollout",
                       [&options] {
                         return analysis::run_sweep(
                             "rollout speed (-h)", {-48.0, -24.0, -6.0, -1.0},
                             [](double negative_hours) {
                               return core::fig5_immunization_scenario(
                                   SimTime::hours(24.0), SimTime::hours(-negative_hours));
                             },
                             options);
                       }),
            baseline_final(harness, virus::virus4()));

  // Blacklist threshold vs Virus 3: strength = -threshold.
  run_study("blacklist vs Virus 3 (parameter: -threshold messages)",
            sweep_case(harness, "sweep blacklist threshold",
                       [&options] {
                         return analysis::run_sweep(
                             "tightening (-threshold)", {-40.0, -30.0, -20.0, -10.0},
                             [](double negative_threshold) {
                               return core::fig7_blacklist_scenario(
                                   static_cast<std::uint32_t>(-negative_threshold));
                             },
                             options);
                       }),
            baseline_final(harness, virus::virus3()));

  std::cout << "Reading: a 'diminishing' row is capacity the provider can skip buying —\n"
               "e.g. signature turnaround faster than ~6 h, or detector accuracy beyond\n"
               "the low nineties, no longer moves the outcome much (cf. paper section 5.3).\n";
  harness.write_report();
  return 0;
}
