// FIG-3: Gateway detection algorithm — varying detection accuracy.
//
// Reproduces Figure 3: Virus 2 against a behavioral detector that,
// once its analysis period ends, stops each infected message with
// probability 0.80/0.85/0.90/0.95/0.99. Shape claims: the detector
// slows but never stops the spread; at 0.95 accuracy the 135-infection
// mark moves from ~2 days (baseline) to ~9 days.
#include "bench_common.h"

using namespace mvsim;
using namespace mvsim::bench;

int main() {
  std::cout << "mvsim FIG-3: gateway detection algorithm, accuracy sweep (Figure 3)\n";
  Harness harness("fig3_detection");
  std::vector<NamedRun> runs;
  runs.push_back(run_labelled(harness, "Baseline", core::baseline_scenario(virus::virus2())));
  for (double accuracy : {0.99, 0.95, 0.90, 0.85, 0.80}) {
    runs.push_back(run_labelled(harness, fmt(accuracy, 2) + " Accuracy",
                                core::fig3_detection_scenario(accuracy)));
  }
  print_figure("Figure 3: Virus Detection Algorithm, Varying Detection Accuracy (Virus 2)", runs,
               SimTime::hours(8.0));

  std::cout << "-- paper-vs-measured --\n";
  SimTime t_base = runs[0].result.curve.mean_first_time_at_or_above(135.0);
  SimTime t_95 = runs[2].result.curve.mean_first_time_at_or_above(135.0);
  report("baseline Virus 2 infects 135 phones after ~2 days of propagation",
         "135-infection mark at " + fmt_hours(t_base) + " (" + fmt(t_base.to_days()) + " days)");
  report("at 0.95 accuracy the 135-infection mark is pushed to ~9 days",
         "135-infection mark at " + fmt_hours(t_95) +
             (t_95.is_finite() ? " (" + fmt(t_95.to_days()) + " days)" : ""));
  report("the detection algorithm slows the spread but does not stop it",
         "0.99-accuracy final = " + fmt(runs[1].result.final_infections.mean()) +
             " and still rising vs baseline " + fmt(runs[0].result.final_infections.mean()));

  // Ordering check: lower accuracy => faster spread, monotonically.
  std::cout << "  accuracy -> final infections at day 10: ";
  for (std::size_t i = 1; i < runs.size(); ++i) {
    std::cout << runs[i].label << "=" << fmt(runs[i].result.final_infections.mean()) << " ";
  }
  std::cout << "\n";
  harness.write_report();
  return 0;
}
