// FIG-7: Blacklisting phones suspected of infection — varying the
// activation threshold.
//
// Reproduces Figure 7: Virus 3 against the blacklist mechanism, which
// cuts MMS service entirely after 10/20/30/40 suspected-infected
// messages. Shape claims: blacklisting is most effective against the
// random-dialing virus because invalid-number messages count toward
// the threshold (threshold 30 vs random dialing ~ threshold 10 vs
// contact-list propagation); blacklisting at threshold 10 restricts
// Viruses 1/4 to ~60% of baseline; Virus 2 evades any threshold.
#include "bench_common.h"

using namespace mvsim;
using namespace mvsim::bench;

int main() {
  std::cout << "mvsim FIG-7: blacklisting, threshold sweep (Figure 7)\n";
  Harness harness("fig7_blacklist");
  std::vector<NamedRun> runs;
  runs.push_back(run_labelled(harness, "Baseline", core::baseline_scenario(virus::virus3())));
  for (std::uint32_t threshold : {10u, 20u, 30u, 40u}) {
    runs.push_back(run_labelled(harness, std::to_string(threshold) + " Messages",
                                core::fig7_blacklist_scenario(threshold)));
  }
  print_figure("Figure 7: Blacklisting, Varying the Activation Threshold (Virus 3)", runs,
               SimTime::hours(1.0));

  std::cout << "-- paper-vs-measured --\n";
  double base = runs[0].result.final_infections.mean();
  report("low thresholds strongly restrict the random-dialing virus",
         "finals as % of baseline: 10msg = " +
             fmt(100.0 * runs[1].result.final_infections.mean() / base) + "%, 20msg = " +
             fmt(100.0 * runs[2].result.final_infections.mean() / base) + "%, 30msg = " +
             fmt(100.0 * runs[3].result.final_infections.mean() / base) + "%, 40msg = " +
             fmt(100.0 * runs[4].result.final_infections.mean() / base) + "%");

  // Equivalence claim: threshold 30 vs random dialing ~ threshold 10 vs
  // contact-list propagation (only 1/3 of dialed numbers are valid).
  core::ScenarioConfig v1_bl10 = core::baseline_scenario(virus::virus1());
  response::BlacklistConfig bl10;
  bl10.message_threshold = 10;
  v1_bl10.responses.blacklist = bl10;
  core::ExperimentResult v1_blacklisted =
      run_experiment_case(harness, "Virus 1 + blacklist@10", v1_bl10);
  core::ExperimentResult v1_base =
      run_experiment_case(harness, "Virus 1 baseline", core::baseline_scenario(virus::virus1()));
  double v1_ratio = v1_blacklisted.final_infections.mean() / v1_base.final_infections.mean();
  double v3_ratio30 = runs[3].result.final_infections.mean() / base;
  report("threshold 30 vs random dialing is equivalent to threshold 10 vs contact lists",
         "Virus 3 @30 reaches " + fmt(100.0 * v3_ratio30) + "% of baseline; Virus 1 @10 reaches " +
             fmt(100.0 * v1_ratio) + "%");
  report("blacklisting at threshold 10 restricts Viruses 1/4 to ~60% of baseline penetration",
         "Virus 1 @10: " + fmt(100.0 * v1_ratio) + "% of baseline");

  // Evasion claim: Virus 2's multi-recipient messages defeat counting.
  core::ScenarioConfig v2_bl = core::baseline_scenario(virus::virus2());
  v2_bl.responses.blacklist = bl10;
  core::ExperimentResult v2_blacklisted =
      run_experiment_case(harness, "Virus 2 + blacklist@10", v2_bl);
  core::ExperimentResult v2_base =
      run_experiment_case(harness, "Virus 2 baseline", core::baseline_scenario(virus::virus2()));
  report("blacklisting is completely ineffective for Virus 2 at any threshold",
         "Virus 2 @10 reaches " +
             fmt(100.0 * v2_blacklisted.final_infections.mean() /
                 v2_base.final_infections.mean()) +
             "% of its baseline");
  harness.write_report();
  return 0;
}
