// EXT-DUAL: dual-vector virus — MMS plus Bluetooth (paper §6).
//
// The real CommWarrior (the paper's model for Virus 1) spread over
// BOTH MMS and Bluetooth. This bench runs Virus 1 with the proximity
// channel enabled and asks how the paper's §5.3 "optimal response
// strategy" changes when the virus has a second vector the provider
// cannot see: the gateway scan that contains single-vector Virus 1 to
// a few phones now only amputates the MMS arm, while the infection
// keeps crawling through radio range. Only infection-point mechanisms
// (education, patching) close the gap.
#include "bench_common.h"

using namespace mvsim;
using namespace mvsim::bench;

namespace {

core::ScenarioConfig dual_vector_base() {
  core::ScenarioConfig config = core::baseline_scenario(virus::virus1());
  config.name = "dual-vector/Virus 1 + Bluetooth";
  config.proximity = core::ProximityChannelConfig{};  // 16x16 grid, 60 min scans
  return config;
}

}  // namespace

int main() {
  std::cout << "mvsim EXT-DUAL: dual-vector Virus 1 (MMS + Bluetooth, paper section 6)\n";

  Harness harness("ext_dual_vector");
  std::vector<NamedRun> runs;
  runs.push_back(
      run_labelled(harness, "MMS-only baseline", core::baseline_scenario(virus::virus1())));
  runs.push_back(run_labelled(harness, "Dual-vector baseline", dual_vector_base()));

  core::ScenarioConfig scanned_single = core::fig2_scan_scenario(SimTime::hours(6.0));
  runs.push_back(run_labelled(harness, "MMS-only + 6h scan", scanned_single));

  core::ScenarioConfig scanned_dual = dual_vector_base();
  response::GatewayScanConfig scan;
  scan.activation_delay = SimTime::hours(6.0);
  scanned_dual.responses.gateway_scan = scan;
  runs.push_back(run_labelled(harness, "Dual-vector + 6h scan", scanned_dual));

  core::ScenarioConfig patched_dual = dual_vector_base();
  patched_dual.responses.immunization = response::ImmunizationConfig{};
  runs.push_back(run_labelled(harness, "Dual-vector + patching", patched_dual));

  core::ScenarioConfig educated_dual = dual_vector_base();
  educated_dual.responses.user_education = response::UserEducationConfig{};
  runs.push_back(run_labelled(harness, "Dual-vector + education 0.20", educated_dual));

  print_figure("Dual-vector Virus 1: infection curves", runs, SimTime::hours(16.0));

  std::cout << "-- findings --\n";
  double single_base = runs[0].result.final_infections.mean();
  double dual_base = runs[1].result.final_infections.mean();
  double single_scan = runs[2].result.final_infections.mean();
  double dual_scan = runs[3].result.final_infections.mean();
  report("adding the Bluetooth vector leaves the consent plateau unchanged",
         "finals " + fmt(single_base) + " (MMS-only) vs " + fmt(dual_base) + " (dual)");
  report("the gateway scan contains single-vector Virus 1 to a few phones (Figure 2)",
         "MMS-only + 6h scan -> " + fmt(single_scan) + " infected (" +
             fmt(100.0 * single_scan / single_base) + "% of baseline)");
  report("against the dual-vector virus the same scan only amputates the MMS arm",
         "dual + 6h scan -> " + fmt(dual_scan) + " infected (" +
             fmt(100.0 * dual_scan / dual_base) + "% of its baseline); Bluetooth pushes/rep = " +
             fmt(runs[3].result.bluetooth_push_attempts.mean()));
  report("infection-point mechanisms still work: they protect the phone, not the channel",
         "dual + patching -> " + fmt(runs[4].result.final_infections.mean()) +
             ", dual + education -> " + fmt(runs[5].result.final_infections.mean()));
  harness.write_report();
  return 0;
}
