// MICRO: tracing-overhead microbenchmarks.
//
// Not a paper figure — these quantify the cost of the opt-in causal
// event trace so "observation-only" stays cheap in wall-clock terms
// too: raw record() throughput, whole-replication cost with tracing
// off / bounded / unbounded, and exporter throughput for both on-disk
// formats. Each case reports the number of trace events (or simulator
// events) it pushed through as its events figure.
#include <cstdint>
#include <sstream>

#include "harness.h"
#include "core/presets.h"
#include "core/simulation.h"
#include "trace/analysis.h"
#include "trace/export.h"
#include "trace/trace.h"

namespace {

using namespace mvsim;

volatile std::uint64_t g_sink = 0;

core::ScenarioConfig bench_scenario() {
  core::ScenarioConfig config = core::baseline_scenario(virus::virus1());
  config.population = 500;
  config.topology.mean_degree = 40.0;
  config.horizon = SimTime::days(3.0);
  return config;
}

trace::Event sample_event(std::uint64_t i) {
  trace::Event event;
  event.time = SimTime::minutes(static_cast<double>(i));
  event.kind = trace::EventKind::kMessageDelivered;
  event.phone = static_cast<trace::PhoneId>(i % 997);
  event.peer = static_cast<trace::PhoneId>((i * 31) % 997);
  event.message = i;
  return event;
}

std::uint64_t trace_record() {
  constexpr std::uint64_t kRecords = 1u << 20;
  trace::TraceBuffer buffer = trace::TraceBuffer::unbounded();
  for (std::uint64_t i = 0; i < kRecords; ++i) {
    buffer.record(sample_event(i));
  }
  g_sink = buffer.events().size();
  return kRecords;
}

std::uint64_t trace_record_saturated() {
  // Past the cap, record() only bumps the drop counter — the cost every
  // event pays once a bounded capture fills up.
  constexpr std::uint64_t kRecords = 1u << 20;
  trace::TraceBuffer buffer(1);
  for (std::uint64_t i = 0; i < kRecords; ++i) {
    buffer.record(sample_event(i));
  }
  g_sink = buffer.recorded();
  return kRecords;
}

/// Whole-replication cost: mode selects tracing off (0), bounded to
/// 4096 events (1), or unbounded (2). Comparing the three isolates the
/// end-to-end overhead of instrumentation.
std::uint64_t replication_traced(int mode) {
  core::ScenarioConfig config = bench_scenario();
  trace::TraceBuffer buffer = mode == 1 ? trace::TraceBuffer(4096) : trace::TraceBuffer::unbounded();
  trace::TraceBuffer* trace = mode == 0 ? nullptr : &buffer;
  core::Simulation sim(config, 42, trace);
  core::ReplicationResult result = sim.run();
  g_sink = result.total_infected;
  return result.metrics.counter_value("des.events_executed");
}

trace::TraceBuffer recorded_replication() {
  trace::TraceBuffer buffer = trace::TraceBuffer::unbounded();
  core::Simulation sim(bench_scenario(), 42, &buffer);
  (void)sim.run();
  return buffer;
}

}  // namespace

int main() {
  bench::Harness harness("micro_trace", {.warmup = 1, .repeat = 5});

  harness.run_case("trace_record", trace_record);
  harness.run_case("trace_record_saturated", trace_record_saturated);
  for (int mode : {0, 1, 2}) {
    // mode 0 = off, 1 = bounded(4096), 2 = unbounded
    harness.run_case("replication_traced/mode" + std::to_string(mode),
                     [mode] { return replication_traced(mode); });
  }

  const trace::TraceBuffer buffer = recorded_replication();
  harness.run_case("export_jsonl", [&buffer] {
    std::ostringstream out;
    trace::write_jsonl(buffer, out);
    g_sink = out.str().size();
    return static_cast<std::uint64_t>(buffer.events().size());
  });
  harness.run_case("export_chrome_trace", [&buffer] {
    std::ostringstream out;
    trace::write_chrome_trace(buffer, out);
    g_sink = out.str().size();
    return static_cast<std::uint64_t>(buffer.events().size());
  });
  harness.run_case("analyze_tree", [&buffer] {
    trace::TreeStats stats = trace::analyze(buffer.events());
    g_sink = stats.infections;
    return static_cast<std::uint64_t>(buffer.events().size());
  });

  harness.write_report();
  return 0;
}
