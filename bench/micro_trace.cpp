// MICRO: tracing-overhead microbenchmarks (google-benchmark).
//
// Not a paper figure — these quantify the cost of the opt-in causal
// event trace so "observation-only" stays cheap in wall-clock terms
// too: raw record() throughput, whole-replication cost with tracing
// off / bounded / unbounded, and exporter throughput for both on-disk
// formats.
#include <benchmark/benchmark.h>

#include <sstream>

#include "core/presets.h"
#include "core/simulation.h"
#include "trace/analysis.h"
#include "trace/export.h"
#include "trace/trace.h"

namespace {

using namespace mvsim;

core::ScenarioConfig bench_scenario() {
  core::ScenarioConfig config = core::baseline_scenario(virus::virus1());
  config.population = 500;
  config.topology.mean_degree = 40.0;
  config.horizon = SimTime::days(3.0);
  return config;
}

trace::Event sample_event(std::uint64_t i) {
  trace::Event event;
  event.time = SimTime::minutes(static_cast<double>(i));
  event.kind = trace::EventKind::kMessageDelivered;
  event.phone = static_cast<trace::PhoneId>(i % 997);
  event.peer = static_cast<trace::PhoneId>((i * 31) % 997);
  event.message = i;
  return event;
}

void BM_TraceRecord(benchmark::State& state) {
  trace::TraceBuffer buffer = trace::TraceBuffer::unbounded();
  std::uint64_t i = 0;
  for (auto _ : state) {
    buffer.record(sample_event(i++));
    if (buffer.events().size() >= (1u << 20)) buffer.clear();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceRecord);

void BM_TraceRecordSaturated(benchmark::State& state) {
  // Past the cap, record() only bumps the drop counter — the cost every
  // event pays once a bounded capture fills up.
  trace::TraceBuffer buffer(1);
  buffer.record(sample_event(0));
  std::uint64_t i = 0;
  for (auto _ : state) {
    buffer.record(sample_event(i++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceRecordSaturated);

/// Whole-replication cost: range(0) selects tracing off (0), bounded
/// to 4096 events (1), or unbounded (2). Comparing the three isolates
/// the end-to-end overhead of instrumentation.
void BM_ReplicationTraced(benchmark::State& state) {
  core::ScenarioConfig config = bench_scenario();
  std::uint64_t seed = 42;
  std::uint64_t events = 0;
  for (auto _ : state) {
    trace::TraceBuffer buffer =
        state.range(0) == 1 ? trace::TraceBuffer(4096) : trace::TraceBuffer::unbounded();
    trace::TraceBuffer* trace = state.range(0) == 0 ? nullptr : &buffer;
    core::Simulation sim(config, seed++, trace);
    core::ReplicationResult result = sim.run();
    benchmark::DoNotOptimize(result.total_infected);
    events += buffer.recorded();
  }
  state.counters["traced_events"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ReplicationTraced)->Arg(0)->Arg(1)->Arg(2)
    ->ArgNames({"mode"})  // 0 = off, 1 = bounded(4096), 2 = unbounded
    ->Unit(benchmark::kMillisecond);

trace::TraceBuffer recorded_replication() {
  trace::TraceBuffer buffer = trace::TraceBuffer::unbounded();
  core::Simulation sim(bench_scenario(), 42, &buffer);
  (void)sim.run();
  return buffer;
}

void BM_ExportJsonl(benchmark::State& state) {
  trace::TraceBuffer buffer = recorded_replication();
  for (auto _ : state) {
    std::ostringstream out;
    trace::write_jsonl(buffer, out);
    benchmark::DoNotOptimize(out.str().size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(buffer.events().size()));
}
BENCHMARK(BM_ExportJsonl)->Unit(benchmark::kMillisecond);

void BM_ExportChromeTrace(benchmark::State& state) {
  trace::TraceBuffer buffer = recorded_replication();
  for (auto _ : state) {
    std::ostringstream out;
    trace::write_chrome_trace(buffer, out);
    benchmark::DoNotOptimize(out.str().size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(buffer.events().size()));
}
BENCHMARK(BM_ExportChromeTrace)->Unit(benchmark::kMillisecond);

void BM_AnalyzeTree(benchmark::State& state) {
  trace::TraceBuffer buffer = recorded_replication();
  for (auto _ : state) {
    trace::TreeStats stats = trace::analyze(buffer.events());
    benchmark::DoNotOptimize(stats.infections);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(buffer.events().size()));
}
BENCHMARK(BM_AnalyzeTree);

}  // namespace

BENCHMARK_MAIN();
