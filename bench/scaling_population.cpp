// SCALE: population-size scaling check (paper §5.3).
//
// "Although the results presented here use a population size of 1000
// phones, additional experiments with a 2000-phone population
// demonstrate that our results scale nicely to larger population
// sizes." This bench runs every virus at 1000 and 2000 phones and
// compares penetration fractions and half-plateau times.
#include "bench_common.h"

using namespace mvsim;
using namespace mvsim::bench;

int main() {
  std::cout << "mvsim SCALE: population scaling (paper section 5.3)\n";
  Harness harness("scaling_population");
  std::cout << "virus,population,final_infected,penetration_of_susceptible,half_plateau_hours\n";
  for (const auto& profile : virus::paper_virus_suite()) {
    double fractions[2] = {0.0, 0.0};
    int slot = 0;
    for (graph::PhoneId population : {1000u, 2000u}) {
      core::ScenarioConfig config = core::baseline_scenario(profile);
      config.population = population;
      core::ExperimentResult result = run_experiment_case(
          harness, profile.name + " @" + std::to_string(population), config);
      double susceptible = static_cast<double>(population) * config.susceptible_fraction;
      double fraction = result.final_infections.mean() / susceptible;
      fractions[slot++] = fraction;
      SimTime half = result.curve.mean_first_time_at_or_above(
          config.expected_unrestrained_plateau() / 2.0);
      std::cout << profile.name << "," << population << ","
                << fmt(result.final_infections.mean()) << "," << fmt(100.0 * fraction) << "%,"
                << fmt(half.is_finite() ? half.to_hours() : -1.0) << "\n";
    }
    report(profile.name + ": results scale nicely to larger population sizes",
           "penetration " + fmt(100.0 * fractions[0]) + "% at 1000 phones vs " +
               fmt(100.0 * fractions[1]) + "% at 2000 phones");
  }
  harness.write_report();
  return 0;
}
