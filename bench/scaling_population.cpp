// SCALE: population-size scaling (paper §5.3 plus two extensions).
//
// Part 1 — the paper's own check: "Although the results presented here
// use a population size of 1000 phones, additional experiments with a
// 2000-phone population demonstrate that our results scale nicely to
// larger population sizes." Every virus runs at 1000 and 2000 phones
// and we compare penetration fractions and half-plateau times.
//
// Part 2 — memory ladder: single replications at 10^4, 10^5 and 10^6
// phones on the sparse market-share topology, reporting the
// struct-of-arrays population footprint (phone::PhoneTable), the CSR
// graph footprint, bytes-per-phone against the retired 64 B/phone
// array-of-Phone layout, and the process peak RSS. MVSIM_SCALE_MAX_POP
// caps the ladder (CI stops at 10^5; the default climbs to 10^6).
//
// Part 3 — market-share sweep: final penetration as a function of the
// targeted platform's market share on one shared contact graph. Below
// the percolation threshold of the susceptible subgraph the outbreak
// dies in patient zero's neighborhood; above it the epidemic reaches
// the giant component, so penetration jumps discontinuously.
//
// Part 4 — shard speedup: the ladder's largest rung re-run on the
// windowed parallel engine (--shards 4, one worker per shard; see
// docs/parallelism.md). The headline note is speedup_shards4; the
// target is >= 2x at the uncapped 10^6-phone rung. CI runs capped at
// 10^5 where the window barriers bite harder, so the note is
// informative there, not a gate.
#include <sys/resource.h>

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "bench_common.h"
#include "core/sharded_simulation.h"
#include "core/simulation.h"

using namespace mvsim;
using namespace mvsim::bench;

namespace {

/// Peak resident set size of this process, in bytes (Linux reports
/// ru_maxrss in KiB). Monotone over the process lifetime, so sample it
/// right after the workload of interest.
double peak_rss_bytes() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) * 1024.0;
}

graph::PhoneId max_ladder_population() {
  constexpr unsigned long kDefault = 1'000'000ul;
  const char* raw = std::getenv("MVSIM_SCALE_MAX_POP");
  if (raw == nullptr || *raw == '\0') return kDefault;
  char* end = nullptr;
  unsigned long value = std::strtoul(raw, &end, 10);
  if (end == raw || *end != '\0' || value == 0ul) return kDefault;
  return static_cast<graph::PhoneId>(std::min(value, kDefault));
}

void run_paper_scaling(Harness& harness) {
  std::cout << "== part 1: paper section 5.3 (1000 vs 2000 phones) ==\n";
  std::cout << "virus,population,final_infected,penetration_of_susceptible,half_plateau_hours\n";
  for (const auto& profile : virus::paper_virus_suite()) {
    double fractions[2] = {0.0, 0.0};
    int slot = 0;
    for (graph::PhoneId population : {1000u, 2000u}) {
      core::ScenarioConfig config = core::baseline_scenario(profile);
      config.population = population;
      core::ExperimentResult result = run_experiment_case(
          harness, profile.name + " @" + std::to_string(population), config);
      double susceptible = static_cast<double>(population) * config.susceptible_fraction;
      double fraction = result.final_infections.mean() / susceptible;
      fractions[slot++] = fraction;
      SimTime half = result.curve.mean_first_time_at_or_above(
          config.expected_unrestrained_plateau() / 2.0);
      std::cout << profile.name << "," << population << ","
                << fmt(result.final_infections.mean()) << "," << fmt(100.0 * fraction) << "%,"
                << fmt(half.is_finite() ? half.to_hours() : -1.0) << "\n";
    }
    report(profile.name + ": results scale nicely to larger population sizes",
           "penetration " + fmt(100.0 * fractions[0]) + "% at 1000 phones vs " +
               fmt(100.0 * fractions[1]) + "% at 2000 phones");
  }
}

void run_memory_ladder(Harness& harness) {
  const graph::PhoneId cap = max_ladder_population();
  std::cout << "\n== part 2: memory ladder (single replication, 10 day horizon, cap "
            << cap << ") ==\n";
  std::cout << "population,final_infected,events,phone_table_MB,phone_B_per_phone,"
               "graph_MB,graph_B_per_phone,peak_rss_MB\n";

  constexpr double kOldBytesPerPhone = 64.0;  // retired array-of-Phone layout
  double last_phone_bpp = 0.0;
  graph::PhoneId last_population = 0;

  for (graph::PhoneId population : {10'000u, 100'000u, 1'000'000u}) {
    if (population > cap) {
      std::cout << "# skipped " << population << " (MVSIM_SCALE_MAX_POP)\n";
      continue;
    }
    // Share 0.50 ignites reliably, so the ladder exercises a real
    // epidemic (event throughput at scale), not just graph + table
    // construction; 10 days bounds the largest rung's wall-clock.
    core::ScenarioConfig config = core::market_share_scenario(0.50, population);
    config.name = "scale/ladder";
    config.horizon = SimTime::days(10.0);

    std::uint64_t final_infected = 0;
    double phone_bytes = 0.0;
    double graph_bytes = 0.0;
    harness.run_case("ladder @" + std::to_string(population), [&] {
      core::Simulation sim(config, /*replication_seed=*/1);
      core::ReplicationResult rep = sim.run();
      final_infected = rep.total_infected;
      phone_bytes = static_cast<double>(sim.phones().memory_bytes());
      graph_bytes = static_cast<double>(sim.contact_graph().memory_bytes());
      return rep.metrics.counter_value("des.events_executed");
    });

    const double n = static_cast<double>(population);
    const double mb = 1024.0 * 1024.0;
    last_phone_bpp = phone_bytes / n;
    last_population = population;
    std::cout << population << "," << final_infected << ","
              << harness.cases().back().events << "," << fmt(phone_bytes / mb, 2) << ","
              << fmt(phone_bytes / n, 2) << "," << fmt(graph_bytes / mb, 2) << ","
              << fmt(graph_bytes / n, 2) << "," << fmt(peak_rss_bytes() / mb, 1) << "\n";
  }

  report("population state fits in under half the old 64 B/phone layout",
         fmt(last_phone_bpp, 2) + " B/phone at " + std::to_string(last_population) +
             " phones (budget " + fmt(kOldBytesPerPhone / 2.0, 0) + " B) — " +
             (last_phone_bpp < kOldBytesPerPhone / 2.0 ? "within budget" : "OVER BUDGET"));

  harness.set_note("ladder_max_population", static_cast<double>(last_population));
  harness.set_note("phone_state_bytes_per_phone", last_phone_bpp);
  harness.set_note("old_phone_bytes_per_phone", kOldBytesPerPhone);
  harness.set_note("peak_rss_mb", peak_rss_bytes() / (1024.0 * 1024.0));
}

void run_market_share_sweep(Harness& harness) {
  std::cout << "\n== part 3: market-share penetration (shared graph, virus 1) ==\n";
  std::cout << "share,final_infected,penetration_of_susceptible,ignition_fraction\n";

  core::RunnerOptions options = default_options();
  options.replications = core::replications_from_env(6);
  options.keep_replications = true;  // for the per-replication ignition count

  const double shares[] = {0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.40, 0.50};
  double previous_ignition = 0.0;
  double max_jump = 0.0;  // largest step of the ignition order parameter
  double jump_at = 0.0;
  bool first = true;
  for (double share : shares) {
    core::ScenarioConfig config = core::market_share_scenario(share);
    core::ExperimentResult result =
        run_experiment_case(harness, "share " + fmt(share, 2), config, options);
    double susceptible = static_cast<double>(config.population) * share;
    double penetration = result.final_infections.mean() / susceptible;
    // A replication "ignited" when the outbreak escaped the seeds'
    // neighborhoods (>= 1% of the susceptible subpopulation). The
    // ignition fraction is the percolation order parameter: ~0 below
    // the critical share, ~1 above it.
    int ignited = 0;
    for (const auto& rep : result.replications) {
      if (static_cast<double>(rep.total_infected) >= 0.01 * susceptible) ++ignited;
    }
    double ignition = result.replications.empty()
                          ? 0.0
                          : static_cast<double>(ignited) /
                                static_cast<double>(result.replications.size());
    std::cout << fmt(share, 2) << "," << fmt(result.final_infections.mean()) << ","
              << fmt(100.0 * penetration) << "%," << fmt(ignition, 2) << "\n";
    if (!first && ignition - previous_ignition > max_jump) {
      max_jump = ignition - previous_ignition;
      jump_at = share;
    }
    previous_ignition = ignition;
    first = false;
  }

  report("penetration is discontinuous in market share (percolation threshold)",
         "ignition probability jumps +" + fmt(max_jump, 2) + " crossing share " +
             fmt(jump_at, 2));
  harness.set_note("market_share_ignition_jump", max_jump);
  harness.set_note("market_share_jump_at", jump_at);
}

void run_shard_speedup(Harness& harness) {
  const graph::PhoneId population = max_ladder_population();
  constexpr std::uint32_t kShards = 4;
  std::cout << "\n== part 4: shard speedup (--shards 4, largest ladder rung " << population
            << ") ==\n";
  std::cout << "engine,final_infected,events,median_wall_s\n";

  // Same scenario family as the memory ladder so the serial rung is
  // directly comparable; single replication keeps the uncapped rung's
  // wall-clock bounded.
  core::ScenarioConfig config = core::market_share_scenario(0.50, population);
  config.name = "scale/shards";
  config.horizon = SimTime::days(10.0);

  auto median_wall = [&harness](const std::string& name) {
    for (const auto& c : harness.cases()) {
      if (c.name == name) return sample_quantile(c.wall_seconds, 0.5);
    }
    return 0.0;
  };

  std::uint64_t infected = 0;
  const std::string serial_label = "shard-speedup x1 @" + std::to_string(population);
  harness.run_case(serial_label, [&config, &infected] {
    core::Simulation sim(config, /*replication_seed=*/1);
    core::ReplicationResult rep = sim.run();
    infected = rep.total_infected;
    return rep.metrics.counter_value("des.events_executed");
  });
  const double serial_wall = median_wall(serial_label);
  std::cout << "serial," << infected << "," << harness.cases().back().events << ","
            << fmt(serial_wall, 3) << "\n";

  const std::string sharded_label =
      "shard-speedup x" + std::to_string(kShards) + " @" + std::to_string(population);
  double barrier_wait_s = 0.0;
  harness.run_case(sharded_label, [&config, &infected, &barrier_wait_s] {
    core::ShardingOptions options;
    options.shards = kShards;
    options.worker_threads = 0;  // one per shard
    // The window is part of the model (cross-shard latency floor); 10
    // simulated minutes is still tiny against the hour-scale read
    // delays that set the epidemic's tempo, and cuts the 10-day run
    // from 14400 barriers to 1440 so synchronization cost does not
    // swamp the measurement.
    options.window = SimTime::minutes(10.0);
    core::ShardedSimulation sim(config, /*replication_seed=*/1, options);
    core::ReplicationResult rep = sim.run();
    infected = rep.total_infected;
    if (const metrics::HistogramSample* h =
            rep.metrics.find_histogram("shard.barrier_wait_ms")) {
      barrier_wait_s = h->sum / 1000.0;
    }
    return rep.metrics.counter_value("des.events_executed");
  });
  const double sharded_wall = median_wall(sharded_label);
  const double speedup = sharded_wall > 0.0 ? serial_wall / sharded_wall : 0.0;
  std::cout << "shards=" << kShards << "," << infected << ","
            << harness.cases().back().events << "," << fmt(sharded_wall, 3) << "\n";

  const bool uncapped = population >= 1'000'000u;
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores != 0 && cores < kShards) {
    // The host cannot run the workers concurrently, so the measured
    // ratio is ~1x by construction. The barrier-wait series is the
    // shard-parallel portion of the wall (the coordinator blocked while
    // workers ran), so Amdahl gives what a host with >= kShards cores
    // would see; report it clearly labelled as a projection.
    const double parallel_s = std::min(barrier_wait_s, sharded_wall);
    const double projected_wall = sharded_wall - parallel_s + parallel_s / kShards;
    const double projected = projected_wall > 0.0 ? serial_wall / projected_wall : 0.0;
    report("one replication parallelizes across graph partitions",
           fmt(speedup, 2) + "x measured on a " + std::to_string(cores) +
               "-core host (concurrency-capped); Amdahl projection at >= " +
               std::to_string(kShards) + " cores: " + fmt(projected, 2) + "x" +
               (uncapped ? (projected >= 2.0 ? " — meets the 2x target"
                                             : " — BELOW the 2x target")
                         : " (capped rung; the 2x target applies at 10^6)"));
    harness.set_note("speedup_shards4_projected", projected);
  } else {
    report("one replication parallelizes across graph partitions",
           fmt(speedup, 2) + "x at --shards " + std::to_string(kShards) + " on " +
               std::to_string(population) + " phones" +
               (uncapped ? (speedup >= 2.0 ? " — meets the 2x target" : " — BELOW the 2x target")
                         : " (capped rung; the 2x target applies at 10^6)"));
  }
  harness.set_note("speedup_shards4", speedup);
  harness.set_note("speedup_shards4_population", static_cast<double>(population));
  harness.set_note("shard_barrier_wait_seconds", barrier_wait_s);
}

}  // namespace

int main() {
  std::cout << "mvsim SCALE: population scaling (paper section 5.3 + million-phone ladder)\n";
  Harness harness("scaling_population");
  run_paper_scaling(harness);
  run_memory_ladder(harness);
  run_market_share_sweep(harness);
  run_shard_speedup(harness);
  harness.write_report();
  return 0;
}
