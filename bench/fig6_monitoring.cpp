// FIG-6: Monitoring for anomalous behavior — varying the forced wait.
//
// Reproduces Figure 6: Virus 3 against the monitoring mechanism, which
// flags phones exceeding the outgoing-message threshold and imposes a
// forced 15/30/60-minute wait between their messages. Shape claims:
// baseline Virus 3 infects 150 phones in ~2.5 h; with even a 15-minute
// wait the infection stays under 150 for up to ~20 h; monitoring buys
// time but does not stop the spread. Side-claim: monitoring is
// ineffectual against the self-throttled Viruses 1, 2 and 4.
#include "bench_common.h"

using namespace mvsim;
using namespace mvsim::bench;

int main() {
  std::cout << "mvsim FIG-6: monitoring, forced-wait sweep (Figure 6)\n";
  Harness harness("fig6_monitoring");
  std::vector<NamedRun> runs;
  runs.push_back(run_labelled(harness, "Baseline", core::baseline_scenario(virus::virus3())));
  for (double minutes : {15.0, 30.0, 60.0}) {
    runs.push_back(run_labelled(harness, fmt(minutes, 0) + "-Minute Wait",
                                core::fig6_monitoring_scenario(SimTime::minutes(minutes))));
  }
  print_figure("Figure 6: Monitoring, Varying the Wait Time for Suspicious Phones (Virus 3)",
               runs, SimTime::hours(1.0));

  std::cout << "-- paper-vs-measured --\n";
  report("baseline Virus 3 can infect 150 phones in about 2.5 hours",
         "150-infection mark at " +
             fmt_hours(runs[0].result.curve.mean_first_time_at_or_above(150.0)));
  report("a 15-minute forced wait constrains the infection to under 150 phones for up to 20 h",
         "15-min-wait curve crosses 150 at " +
             fmt_hours(runs[1].result.curve.mean_first_time_at_or_above(150.0)) +
             "; level at 20 h = " + fmt(runs[1].result.curve.mean_at(SimTime::hours(20.0))));
  report("longer forced waits slow the virus more",
         "levels at 12 h: baseline " + fmt(runs[0].result.curve.mean_at(SimTime::hours(12.0))) +
             ", 15-min " + fmt(runs[1].result.curve.mean_at(SimTime::hours(12.0))) + ", 30-min " +
             fmt(runs[2].result.curve.mean_at(SimTime::hours(12.0))) + ", 60-min " +
             fmt(runs[3].result.curve.mean_at(SimTime::hours(12.0))));

  // Side-claim: no effect on the stealthy viruses.
  std::cout << "  monitoring vs self-throttled viruses (final as % of each baseline):\n";
  for (const auto& profile : {virus::virus1(), virus::virus2(), virus::virus4()}) {
    core::ScenarioConfig monitored = core::baseline_scenario(profile);
    monitored.responses.monitoring = response::MonitoringConfig{};
    core::ExperimentResult with =
        run_experiment_case(harness, profile.name + " + monitoring", monitored);
    core::ExperimentResult base =
        run_experiment_case(harness, profile.name + " baseline", core::baseline_scenario(profile));
    std::cout << "    " << profile.name << ": "
              << fmt(100.0 * with.final_infections.mean() / base.final_infections.mean())
              << "% (phones flagged: " << fmt(with.phones_flagged.mean()) << ")\n";
  }
  harness.write_report();
  return 0;
}
