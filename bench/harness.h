// Unified bench harness: every bench binary (figure reproductions,
// scaling studies, microbenchmarks) registers its workloads as cases
// and ends with write_report(), so each run leaves behind one
// machine-readable BENCH_<name>.json with median-of-N wall-clock and
// events/sec per case. tools/bench_compare.py diffs two such files and
// fails past a regression threshold; docs/observability.md documents
// the schema.
//
// Control knobs (environment):
//   MVSIM_BENCH_WARMUP  discarded runs per case (default: the binary's)
//   MVSIM_BENCH_REPEAT  measured runs per case  (default: the binary's)
//   MVSIM_BENCH_DIR     where BENCH_<name>.json lands (default: cwd)
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace mvsim::bench {

struct HarnessOptions {
  /// Discarded runs before measurement starts (cache/page warmup).
  int warmup = 0;
  /// Measured runs; the report summarizes their distribution.
  int repeat = 1;
};

struct CaseResult {
  std::string name;
  /// Throughput units one run processes (engine events for simulation
  /// cases); 0 marks a wall-clock-only case with no events/sec series.
  std::uint64_t events = 0;
  std::vector<double> wall_seconds;  ///< one entry per measured run
};

/// Exact order-statistic quantile (q in [0,1]) of a small sample;
/// 0 for an empty one. Benches repeat a handful of times, so exact
/// beats interpolation here.
[[nodiscard]] double sample_quantile(std::vector<double> values, double q);

class Harness {
 public:
  /// `name` names the report file (BENCH_<name>.json); `defaults` are
  /// the binary's warmup/repeat, overridable via MVSIM_BENCH_WARMUP /
  /// MVSIM_BENCH_REPEAT.
  explicit Harness(std::string name, HarnessOptions defaults = {});

  /// Runs `fn` warmup+repeat times and records the measured runs.
  /// `fn` returns the number of throughput units that one run
  /// processed (0 = wall-clock only). Prints a one-line summary per
  /// case on stderr, keeping stdout for the bench's own tables.
  void run_case(const std::string& label, const std::function<std::uint64_t()>& fn);

  /// Attaches a scalar fact to the report (emitted under "notes", e.g.
  /// peak RSS or bytes-per-phone). Notes carry capacity/memory facts
  /// that are not wall-clock series; bench_compare ignores them.
  /// Setting an existing key overwrites it.
  void set_note(const std::string& key, double value);

  [[nodiscard]] int warmup() const { return options_.warmup; }
  [[nodiscard]] int repeat() const { return options_.repeat; }
  [[nodiscard]] const std::vector<CaseResult>& cases() const { return cases_; }

  /// The BENCH document as a JSON string (schema-versioned; see
  /// docs/observability.md).
  [[nodiscard]] std::string to_json() const;

  /// Writes BENCH_<name>.json into MVSIM_BENCH_DIR (default: the
  /// working directory) and returns the path written. Throws
  /// std::runtime_error when the file cannot be written.
  std::string write_report() const;

 private:
  std::string name_;
  HarnessOptions options_;
  std::vector<CaseResult> cases_;
  std::vector<std::pair<std::string, double>> notes_;  // insertion-ordered
};

}  // namespace mvsim::bench
