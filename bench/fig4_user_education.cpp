// FIG-4: Phone user education — lowering the acceptance probability.
//
// Reproduces Figure 4: every virus with the baseline eventual
// acceptance (0.40) and with education campaigns lowering it to 0.20
// and 0.10. Shape claims: education is the one mechanism effective
// against all four viruses; halving the acceptance roughly halves the
// plateau (the paper's own prose says one-half, then its Figure 4
// caption says 80 phones = 25% — an internal inconsistency; see
// EXPERIMENTS.md).
#include "bench_common.h"

using namespace mvsim;
using namespace mvsim::bench;

int main() {
  std::cout << "mvsim FIG-4: phone user education, acceptance sweep (Figure 4)\n";
  Harness harness("fig4_user_education");
  std::vector<NamedRun> runs;
  for (const auto& profile : virus::paper_virus_suite()) {
    core::ScenarioConfig base = core::baseline_scenario(profile);
    base.horizon = SimTime::hours(400.0);
    base.sample_step = SimTime::hours(1.0);
    runs.push_back(run_labelled(harness, profile.name, base));
    for (double acceptance : {0.20, 0.10}) {
      core::ScenarioConfig educated = core::fig4_education_scenario(profile, acceptance);
      educated.horizon = SimTime::hours(400.0);
      educated.sample_step = SimTime::hours(1.0);
      runs.push_back(run_labelled(harness, profile.name + " Ed" + fmt(acceptance, 2), educated));
    }
  }
  print_figure("Figure 4: Phone User Education, Effective for All Viruses", runs,
               SimTime::hours(16.0));

  std::cout << "-- paper-vs-measured --\n";
  for (std::size_t v = 0; v < 4; ++v) {
    double base = runs[v * 3].result.final_infections.mean();
    double half = runs[v * 3 + 1].result.final_infections.mean();
    double quarter = runs[v * 3 + 2].result.final_infections.mean();
    report(runs[v * 3].label +
               ": acceptance 0.20 halves the final level; 0.10 quarters it",
           "final " + fmt(base) + " -> " + fmt(half) + " (" + fmt(100.0 * half / base) +
               "%) -> " + fmt(quarter) + " (" + fmt(100.0 * quarter / base) + "%)");
  }
  report("education both slows and eventually stops the virus spread (plateau reduced)",
         "all educated curves plateau below their baselines");
  harness.write_report();
  return 0;
}
