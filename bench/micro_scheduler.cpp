// MICRO: scheduler-internals microbenchmarks — wheel vs heap A/B.
//
// Not a paper figure. Where micro_engine measures the scheduler as the
// simulation uses it (fresh scheduler, modest queue), these cases pit
// the calendar queue directly against the legacy binary heap on the
// workloads where their asymptotics diverge:
//
//   churn/*        steady-state schedule+fire cycles at a held queue
//                  depth D. The heap pays O(log D) per pop (a cache-
//                  missing sift at large D); the wheel pays O(1), so
//                  the ratio widens with depth.
//   cancel_churn/* schedule-then-cancel rounds that never fire. The
//                  wheel unlinks and recycles eagerly; the heap can
//                  only discard stale entries at pop time, so its
//                  queue (and per-op cost) grows with every round.
//   arena_cycle    the schedule→fire→recycle loop on one long-lived
//                  scheduler, with a hard zero-allocation witness:
//                  the run aborts if the arena grows a chunk or any
//                  callback spills to the heap after warmup.
//   rng/*          batched Stream draws vs single-draw engine calls.
//
// After the cases run, a wheel-vs-heap speedup table (p50 ratios) is
// printed on stdout; the per-case numbers land in
// BENCH_micro_scheduler.json like every other bench.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <queue>

#include "harness.h"
#include "des/calendar_queue.h"
#include "des/scheduler.h"
#include "rng/stream.h"

namespace {

using namespace mvsim;

// Keeps a computed value alive so the optimizer cannot delete the work.
volatile std::uint64_t g_sink = 0;

constexpr std::uint64_t kLcgMul = 6364136223846793005ULL;
constexpr std::uint64_t kLcgAdd = 1442695040888963407ULL;

/// Shared state for the self-replacing churn event. The callback is a
/// trivially copyable 8-byte struct, so it rides EventFn's inline
/// trivial fast path — exactly like the simulation's own hot events.
struct ChurnCtx {
  des::Scheduler* sched;
  std::uint64_t state;
  std::uint64_t remaining;
  std::uint64_t delay_span;  // replacement delays uniform in [1, span]
};

struct ChurnTick {
  ChurnCtx* ctx;
  void operator()() const {
    if (ctx->remaining == 0) return;
    --ctx->remaining;
    ctx->state = ctx->state * kLcgMul + kLcgAdd;
    double delay = static_cast<double>((ctx->state >> 33) % ctx->delay_span) + 1.0;
    ctx->sched->schedule_after(SimTime::minutes(delay), ChurnTick{ctx});
  }
};

/// The classic hold model: keep `depth` events pending, pop the
/// earliest, push a replacement a uniform-random delay ahead — for
/// `churn_ops` pairs, then drain. Replacement delays span `depth`
/// minutes so the pending set stays uniformly spread at every depth;
/// every executed event is one pop plus (until the quota runs out) one
/// push, so events/sec ≈ sustained pair throughput.
std::uint64_t churn_at_depth(des::QueueImpl impl, std::uint64_t depth, std::uint64_t churn_ops) {
  des::Scheduler sched(impl);
  ChurnCtx ctx{&sched, 0x9e3779b97f4a7c15ULL, churn_ops, depth};
  for (std::uint64_t i = 0; i < depth; ++i) {
    ctx.state = ctx.state * kLcgMul + kLcgAdd;
    double at = static_cast<double>((ctx.state >> 33) % depth) + 1.0;
    sched.schedule_at(SimTime::minutes(at), ChurnTick{&ctx});
  }
  sched.run_to_quiescence();
  g_sink = sched.executed_count();
  return sched.executed_count();
}

/// Rounds of (schedule a burst, cancel the whole burst). Nothing ever
/// fires, so the measured cost is pure queue bookkeeping. Under the
/// heap the stale entries pile up across rounds; the reported events
/// count schedules + cancels.
std::uint64_t cancel_churn(des::QueueImpl impl, int rounds, int burst) {
  des::Scheduler sched(impl);
  std::vector<des::EventHandle> handles;
  handles.reserve(static_cast<std::size_t>(burst));
  std::uint64_t state = 0x2545f4914f6cdd1dULL;
  for (int round = 0; round < rounds; ++round) {
    handles.clear();
    for (int i = 0; i < burst; ++i) {
      state = state * kLcgMul + kLcgAdd;
      double at = static_cast<double>((state >> 33) % 4096) + 1.0;
      handles.push_back(sched.schedule_at(SimTime::minutes(at), [] {}));
    }
    for (des::EventHandle h : handles) sched.cancel(h);
  }
  // Surface the deferred cost: the wheel already reclaimed everything
  // at cancel() time, while the heap still holds every stale entry and
  // must sift each one to the top to discard it.
  sched.run_to_quiescence();
  g_sink = sched.cancelled_reclaimed_count();
  return sched.cancelled_count() * 2;
}

/// Steady-state schedule→fire→recycle on one long-lived scheduler.
/// Aborts the bench if the cycle allocates after warmup — this is the
/// executable form of the "zero heap allocations per event in steady
/// state" contract.
std::uint64_t arena_cycle(des::QueueImpl impl) {
  des::Scheduler sched(impl);
  constexpr int kWarmupRounds = 4;
  constexpr int kRounds = 400;
  constexpr int kBurst = 512;
  auto one_round = [&sched] {
    for (int i = 0; i < kBurst; ++i) {
      sched.schedule_after(SimTime::minutes(static_cast<double>(i % 97) + 1.0), [] {});
    }
    sched.run_to_quiescence();
  };
  for (int round = 0; round < kWarmupRounds; ++round) one_round();
  const std::size_t warm_chunks = sched.arena_chunk_count();
  for (int round = 0; round < kRounds; ++round) one_round();
  if (sched.arena_chunk_count() != warm_chunks || sched.callback_heap_fallback_count() != 0) {
    std::fprintf(stderr,
                 "arena_cycle: steady state allocated (chunks %zu -> %zu, heap fallbacks %llu)\n",
                 warm_chunks, sched.arena_chunk_count(),
                 static_cast<unsigned long long>(sched.callback_heap_fallback_count()));
    std::abort();
  }
  g_sink = sched.arena_recycled_count();
  return sched.executed_count();
}

/// The legacy scheduler's queue, reproduced standalone: a binary
/// min-heap of (time, seq) entries. Used by the queue_only/* cases to
/// measure the data structures themselves, with the arena, EventFn and
/// dispatch costs (identical under both impls) stripped away.
struct BareHeapEntry {
  double at;
  std::uint64_t seq;
  std::uint32_t id;
  std::uint64_t generation;  // the real HeapEntry carries one too
  friend bool operator<(const BareHeapEntry& a, const BareHeapEntry& b) {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;
  }
};

/// Hold model on the bare queues: pop the minimum, push a replacement
/// a uniform-random delay (spanning `depth` minutes) ahead. This is
/// where the O(1)-vs-O(log n) gap shows undiluted.
std::uint64_t queue_only_wheel(std::uint64_t depth, std::uint64_t ops) {
  des::CalendarQueue q;
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  std::uint64_t seq = 0;
  for (std::uint64_t i = 0; i < depth; ++i) {
    state = state * kLcgMul + kLcgAdd;
    q.insert(static_cast<double>((state >> 33) % depth) + 1.0, seq, static_cast<std::uint32_t>(seq));
    ++seq;
  }
  double checksum = 0.0;
  for (std::uint64_t i = 0; i < ops; ++i) {
    const des::CalendarQueue::Entry* top = q.peek();
    double now = top->at;
    checksum += now;
    q.pop_front();
    state = state * kLcgMul + kLcgAdd;
    q.insert(now + static_cast<double>((state >> 33) % depth) + 1.0, seq,
             static_cast<std::uint32_t>(seq));
    ++seq;
  }
  while (q.size() > 0) q.pop_front();
  g_sink = static_cast<std::uint64_t>(checksum);
  return ops + depth;
}

std::uint64_t queue_only_heap(std::uint64_t depth, std::uint64_t ops) {
  std::priority_queue<BareHeapEntry> q;
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  std::uint64_t seq = 0;
  for (std::uint64_t i = 0; i < depth; ++i) {
    state = state * kLcgMul + kLcgAdd;
    q.push({static_cast<double>((state >> 33) % depth) + 1.0, seq,
            static_cast<std::uint32_t>(seq), seq});
    ++seq;
  }
  double checksum = 0.0;
  for (std::uint64_t i = 0; i < ops; ++i) {
    double now = q.top().at;
    checksum += now;
    q.pop();
    state = state * kLcgMul + kLcgAdd;
    q.push({now + static_cast<double>((state >> 33) % depth) + 1.0, seq,
            static_cast<std::uint32_t>(seq), seq});
    ++seq;
  }
  while (!q.empty()) q.pop();
  g_sink = static_cast<std::uint64_t>(checksum);
  return ops + depth;
}

constexpr std::uint64_t kRngDraws = 20'000'000;

/// Stream's buffered path: one bulk engine fill per 64 draws.
std::uint64_t rng_batched() {
  rng::Stream stream(1234);
  double sum = 0.0;
  for (std::uint64_t i = 0; i < kRngDraws; ++i) sum += stream.uniform01();
  g_sink = static_cast<std::uint64_t>(sum);
  return kRngDraws;
}

/// The pre-batching shape: one counted engine call per draw.
std::uint64_t rng_unbatched() {
  rng::Xoshiro256 engine(1234);
  double sum = 0.0;
  for (std::uint64_t i = 0; i < kRngDraws; ++i) {
    sum += static_cast<double>(engine() >> 11) * 0x1.0p-53;
  }
  g_sink = static_cast<std::uint64_t>(sum);
  return kRngDraws;
}

double case_p50(const std::vector<bench::CaseResult>& cases, const std::string& name) {
  for (const bench::CaseResult& c : cases) {
    if (c.name == name) return bench::sample_quantile(c.wall_seconds, 0.5);
  }
  return 0.0;
}

}  // namespace

int main() {
  bench::Harness harness("micro_scheduler", {.warmup = 1, .repeat = 5});

  const std::uint64_t kChurnOps = 200'000;
  const std::vector<std::uint64_t> depths = {1'000, 10'000, 100'000};
  const std::vector<std::uint64_t> bare_depths = {1'000, 10'000, 100'000, 1'000'000};
  for (std::uint64_t depth : depths) {
    for (auto [impl, tag] : {std::pair{des::QueueImpl::kWheel, "wheel"},
                             std::pair{des::QueueImpl::kHeap, "heap"}}) {
      harness.run_case("churn/" + std::string(tag) + "/depth_" + std::to_string(depth),
                       [impl, depth, kChurnOps] { return churn_at_depth(impl, depth, kChurnOps); });
    }
  }
  const std::uint64_t kBareOps = 1'000'000;
  for (std::uint64_t depth : bare_depths) {
    std::string suffix = "/depth_" + std::to_string(depth);
    harness.run_case("queue_only/wheel" + suffix,
                     [depth, kBareOps] { return queue_only_wheel(depth, kBareOps); });
    harness.run_case("queue_only/heap" + suffix,
                     [depth, kBareOps] { return queue_only_heap(depth, kBareOps); });
  }
  for (auto [impl, tag] : {std::pair{des::QueueImpl::kWheel, "wheel"},
                           std::pair{des::QueueImpl::kHeap, "heap"}}) {
    harness.run_case("cancel_churn/" + std::string(tag),
                     [impl] { return cancel_churn(impl, 200, 1000); });
  }
  harness.run_case("arena_cycle", [] { return arena_cycle(des::QueueImpl::kWheel); });
  harness.run_case("rng/batched", rng_batched);
  harness.run_case("rng/unbatched", rng_unbatched);

  // Wheel-vs-heap p50 speedups, the headline numbers for this bench.
  std::printf("\n%-28s %12s %12s %8s\n", "workload", "wheel p50 s", "heap p50 s", "speedup");
  for (std::uint64_t depth : depths) {
    std::string suffix = "/depth_" + std::to_string(depth);
    double wheel = case_p50(harness.cases(), "churn/wheel" + suffix);
    double heap = case_p50(harness.cases(), "churn/heap" + suffix);
    std::printf("%-28s %12.6f %12.6f %7.2fx\n", ("churn" + suffix).c_str(), wheel, heap,
                wheel > 0.0 ? heap / wheel : 0.0);
  }
  for (std::uint64_t depth : bare_depths) {
    std::string suffix = "/depth_" + std::to_string(depth);
    double wheel = case_p50(harness.cases(), "queue_only/wheel" + suffix);
    double heap = case_p50(harness.cases(), "queue_only/heap" + suffix);
    std::printf("%-28s %12.6f %12.6f %7.2fx\n", ("queue_only" + suffix).c_str(), wheel, heap,
                wheel > 0.0 ? heap / wheel : 0.0);
  }
  {
    double wheel = case_p50(harness.cases(), "cancel_churn/wheel");
    double heap = case_p50(harness.cases(), "cancel_churn/heap");
    std::printf("%-28s %12.6f %12.6f %7.2fx\n", "cancel_churn", wheel, heap,
                wheel > 0.0 ? heap / wheel : 0.0);
  }
  {
    double batched = case_p50(harness.cases(), "rng/batched");
    double unbatched = case_p50(harness.cases(), "rng/unbatched");
    std::printf("%-28s %12.6f %12.6f %7.2fx\n", "rng (batched vs not)", batched, unbatched,
                batched > 0.0 ? unbatched / batched : 0.0);
  }

  harness.write_report();
  return 0;
}
