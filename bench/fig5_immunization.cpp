// FIG-5: Immunization using software patches — varying development and
// deployment times.
//
// Reproduces Figure 5: Virus 4 against the patch-rollout mechanism.
// Six variants: development 24 h or 48 h after detectability, each
// deployed uniformly over 1, 6 or 24 h (the paper labels curves by the
// hours during which deployment is in progress, e.g. "Hours 24-30").
// Shape claims: development time dominates; with 24 h development, a
// 24-hour rollout lets ~60% more phones get infected than a 1-hour
// rollout.
#include "bench_common.h"

using namespace mvsim;
using namespace mvsim::bench;

int main() {
  std::cout << "mvsim FIG-5: immunization patches, deployment sweep (Figure 5)\n";
  Harness harness("fig5_immunization");
  std::vector<NamedRun> runs;
  runs.push_back(run_labelled(harness, "Baseline", core::baseline_scenario(virus::virus4())));
  struct Variant {
    double dev;
    double deploy;
  };
  for (const Variant& v :
       {Variant{24, 1}, Variant{24, 24}, Variant{24, 6}, Variant{48, 1}, Variant{48, 24},
        Variant{48, 6}}) {
    std::string label =
        "Hours " + fmt(v.dev, 0) + "-" + fmt(v.dev + v.deploy, 0);
    runs.push_back(run_labelled(
        harness, label,
        core::fig5_immunization_scenario(SimTime::hours(v.dev), SimTime::hours(v.deploy))));
  }
  print_figure("Figure 5: Immunization Using Patches, Varying the Deployment Times (Virus 4)",
               runs, SimTime::hours(8.0));

  std::cout << "-- paper-vs-measured --\n";
  double dev24_fast = runs[1].result.final_infections.mean();   // 24h dev, 1h rollout
  double dev24_slow = runs[2].result.final_infections.mean();   // 24h dev, 24h rollout
  double dev48_fast = runs[4].result.final_infections.mean();   // 48h dev, 1h rollout
  report("24-hour rollout infects ~60% more phones than a 1-hour rollout (24 h development)",
         fmt(100.0 * (dev24_slow - dev24_fast) / dev24_fast) + "% more (" + fmt(dev24_fast) +
             " -> " + fmt(dev24_slow) + ")");
  report("24-hour development cases start limiting the spread earlier than 48-hour cases",
         "finals: dev-24h/1h-rollout = " + fmt(dev24_fast) + " vs dev-48h/1h-rollout = " +
             fmt(dev48_fast));
  report("the patch halts further spread: every curve plateaus below the baseline",
         "baseline final = " + fmt(runs[0].result.final_infections.mean()) +
             "; all immunized finals lower");

  // Side-claim: Virus 3 outruns any patch cycle.
  core::ScenarioConfig v3 = core::baseline_scenario(virus::virus3());
  response::ImmunizationConfig immunization;
  immunization.development_time = SimTime::hours(24.0);
  immunization.deployment_duration = SimTime::hours(1.0);
  v3.responses.immunization = immunization;
  core::ExperimentResult v3_patched = run_experiment_case(harness, "Virus 3 + 24h+1h patch", v3);
  core::ExperimentResult v3_base =
      run_experiment_case(harness, "Virus 3 baseline", core::baseline_scenario(virus::virus3()));
  report("Virus 3 moves too fast for a patch to be developed and deployed in time",
         "Virus 3 with 24h+1h patching reaches " +
             fmt(100.0 * v3_patched.final_infections.mean() / v3_base.final_infections.mean()) +
             "% of its baseline penetration");
  harness.write_report();
  return 0;
}
