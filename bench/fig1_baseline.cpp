// FIG-1: Baseline infection curves without response mechanisms.
//
// Reproduces Figure 1 of the paper: the four illustrative viruses
// spreading unconstrained through 1000 phones (800 susceptible). All
// four plateau near 800 x 0.40 = 320; Virus 3 saturates within a day,
// Virus 2 shows the step-like curve, Viruses 1 and 4 take ~2 weeks.
//
// Each virus is simulated over its own paper horizon, then reported on
// the common 0-400 h axis of Figure 1 (Virus 3's curve is flat after
// its first day, exactly as in the paper).
#include "bench_common.h"

using namespace mvsim;
using namespace mvsim::bench;

int main() {
  std::cout << "mvsim FIG-1: baseline infection curves (Figure 1)\n";
  Harness harness("fig1_baseline");
  std::vector<NamedRun> runs;
  for (const auto& profile : virus::paper_virus_suite()) {
    core::ScenarioConfig config = core::baseline_scenario(profile);
    // Common axis so the four curves print as one table.
    config.horizon = SimTime::hours(400.0);
    config.sample_step = SimTime::hours(1.0);
    runs.push_back(run_labelled(harness, profile.name, config));
  }
  print_figure("Figure 1: Baseline Infection Curves without Response Mechanisms", runs,
               SimTime::hours(8.0));

  std::cout << "-- paper-vs-measured --\n";
  report("peak number of infected phones is 320 for all four virus scenarios",
         "finals = " + fmt(runs[0].result.final_infections.mean()) + " / " +
             fmt(runs[1].result.final_infections.mean()) + " / " +
             fmt(runs[2].result.final_infections.mean()) + " / " +
             fmt(runs[3].result.final_infections.mean()));
  report("Virus 3 travels so quickly that 24 hours suffice to observe its spread",
         "Virus 3 reaches half-plateau at " +
             fmt_hours(runs[2].result.curve.mean_first_time_at_or_above(160.0)));
  report("Virus 2 progression tracked over 10 days; curve resembles a step function",
         "Virus 2 gains at day boundaries: level at 24h/25h = " +
             fmt(runs[1].result.curve.mean_at(SimTime::hours(24.0))) + " -> " +
             fmt(runs[1].result.curve.mean_at(SimTime::hours(27.0))) + ", at 47h/49h = " +
             fmt(runs[1].result.curve.mean_at(SimTime::hours(47.0))) + " -> " +
             fmt(runs[1].result.curve.mean_at(SimTime::hours(50.0))));
  report("Viruses 1 and 4 examined over an 18-day period",
         "half-plateau at " + fmt_hours(runs[0].result.curve.mean_first_time_at_or_above(160.0)) +
             " (Virus 1) and " +
             fmt_hours(runs[3].result.curve.mean_first_time_at_or_above(160.0)) + " (Virus 4)");
  harness.write_report();
  return 0;
}
