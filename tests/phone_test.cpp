// Unit tests for src/phone: consent math and the phone state machine.
#include <gtest/gtest.h>

#include "des/scheduler.h"
#include "phone/consent.h"
#include "phone/phone.h"
#include "phone/phone_table.h"
#include "rng/stream.h"

namespace mvsim::phone {
namespace {

TEST(ConsentModel, PaperFactorYieldsPointFourEventual) {
  // The paper's central identity: AF = 0.468 => eventual acceptance 0.40.
  ConsentModel model(kPaperAcceptanceFactor);
  EXPECT_NEAR(model.eventual_acceptance_probability(), kPaperEventualAcceptance, 0.001);
}

TEST(ConsentModel, PerMessageProbabilityHalves) {
  ConsentModel model(0.468);
  EXPECT_NEAR(model.acceptance_probability(1), 0.234, 1e-9);
  EXPECT_NEAR(model.acceptance_probability(2), 0.117, 1e-9);
  EXPECT_NEAR(model.acceptance_probability(3), 0.0585, 1e-9);
  for (int n = 1; n < 20; ++n) {
    EXPECT_DOUBLE_EQ(model.acceptance_probability(n + 1), model.acceptance_probability(n) / 2.0);
  }
}

TEST(ConsentModel, LargeIndexProbabilityVanishes) {
  ConsentModel model(0.468);
  EXPECT_LT(model.acceptance_probability(60), 1e-15);
  EXPECT_DOUBLE_EQ(model.acceptance_probability(2000), 0.0);
}

TEST(ConsentModel, RejectsBadArguments) {
  EXPECT_THROW(ConsentModel(-0.1), std::invalid_argument);
  EXPECT_THROW(ConsentModel(1.0), std::invalid_argument);
  ConsentModel model(0.3);
  EXPECT_THROW((void)model.acceptance_probability(0), std::invalid_argument);
  EXPECT_THROW((void)model.negligible_after(0.0), std::invalid_argument);
}

TEST(ConsentModel, ZeroFactorNeverAccepts) {
  ConsentModel model(0.0);
  EXPECT_DOUBLE_EQ(model.acceptance_probability(1), 0.0);
  EXPECT_DOUBLE_EQ(model.eventual_acceptance_probability(), 0.0);
}

TEST(ConsentModel, NegligibleAfterFindsCutoff) {
  ConsentModel model(0.468);
  int cutoff = model.negligible_after(1e-6);
  EXPECT_GT(cutoff, 10);
  EXPECT_LT(cutoff, 30);
  EXPECT_LT(model.acceptance_probability(cutoff), 1e-6);
  EXPECT_GE(model.acceptance_probability(cutoff - 1), 1e-6);
}

TEST(ConsentModel, SolverInvertsEventualAcceptance) {
  for (double target : {0.05, 0.10, 0.20, 0.40, 0.60}) {
    double af = ConsentModel::solve_acceptance_factor(target);
    ConsentModel model(af);
    EXPECT_NEAR(model.eventual_acceptance_probability(), target, 1e-9) << "target " << target;
  }
}

TEST(ConsentModel, SolverRecoversPaperFactor) {
  double af = ConsentModel::solve_acceptance_factor(0.40);
  EXPECT_NEAR(af, kPaperAcceptanceFactor, 0.002)
      << "the paper's AF=0.468 should fall out of inverting 0.40";
}

TEST(ConsentModel, SolverRejectsInfeasibleTargets) {
  EXPECT_THROW((void)ConsentModel::solve_acceptance_factor(0.9), std::invalid_argument);
  EXPECT_THROW((void)ConsentModel::solve_acceptance_factor(-0.1), std::invalid_argument);
  EXPECT_DOUBLE_EQ(ConsentModel::solve_acceptance_factor(0.0), 0.0);
}

TEST(ConsentModel, EventualAcceptanceMonotoneInFactor) {
  double last = -1.0;
  for (double af = 0.0; af < 1.0; af += 0.05) {
    ConsentModel model(af);
    double eventual = model.eventual_acceptance_probability();
    EXPECT_GT(eventual, last);
    last = eventual;
  }
}

// ---- Phone state machine (struct-of-arrays table) ----

struct PhoneFixture : InfectionListener {
  des::Scheduler scheduler;
  rng::Stream user_stream{55};
  ConsentModel consent{0.468};
  PhoneEnvironment env;
  std::vector<PhoneId> infected_ids;
  std::vector<InfectionSource> sources;

  PhoneFixture() {
    env.scheduler = &scheduler;
    env.user_stream = &user_stream;
    env.consent = &consent;
    env.read_delay_mean = SimTime::minutes(30.0);
    env.decision_cutoff = 40;
    env.listener = this;
  }

  void on_phone_infected(PhoneId id, const InfectionSource& source) override {
    infected_ids.push_back(id);
    sources.push_back(source);
  }
};

TEST(PhoneTable, StartsHealthy) {
  PhoneFixture fx;
  PhoneTable phones(5, &fx.env);
  phones.set_susceptible(3, true);
  EXPECT_EQ(phones.size(), 5u);
  EXPECT_TRUE(phones.susceptible(3));
  EXPECT_FALSE(phones.susceptible(2));
  EXPECT_EQ(phones.state(3), HealthState::kHealthy);
  EXPECT_FALSE(phones.infected(3));
  EXPECT_EQ(phones.infected_messages_received(3), 0);
  EXPECT_FALSE(phones.propagation_stopped(3));
}

TEST(PhoneTable, RequiresCompleteEnvironment) {
  PhoneEnvironment empty;
  EXPECT_THROW(PhoneTable(1, &empty), std::invalid_argument);
  EXPECT_THROW(PhoneTable(1, nullptr), std::invalid_argument);
}

TEST(PhoneTable, ForceInfectFiresListenerOnce) {
  PhoneFixture fx;
  PhoneTable phones(2, &fx.env);
  phones.set_susceptible(1, true);
  EXPECT_TRUE(phones.force_infect(1));
  EXPECT_FALSE(phones.force_infect(1)) << "already infected";
  EXPECT_EQ(fx.infected_ids, (std::vector<PhoneId>{1}));
  ASSERT_EQ(fx.sources.size(), 1u);
  EXPECT_EQ(fx.sources[0].channel, InfectionChannel::kSeed);
  EXPECT_EQ(fx.sources[0].sender, kInvalidPhoneId);
}

TEST(PhoneTable, NonSusceptibleCannotBeInfected) {
  PhoneFixture fx;
  PhoneTable phones(2, &fx.env);
  EXPECT_FALSE(phones.force_infect(1));
  // Even a flood of accepted messages cannot infect the wrong platform.
  for (int i = 0; i < 50; ++i) phones.receive_infected_message(1);
  fx.scheduler.run_to_quiescence();
  EXPECT_EQ(phones.state(1), HealthState::kHealthy);
  EXPECT_TRUE(fx.infected_ids.empty());
}

TEST(PhoneTable, ReceiveCountsMessagesAndSchedulesDecision) {
  PhoneFixture fx;
  PhoneTable phones(2, &fx.env);
  phones.set_susceptible(1, true);
  phones.receive_infected_message(1);
  EXPECT_EQ(phones.infected_messages_received(1), 1);
  EXPECT_EQ(phones.pending_decisions(1), 1);
  EXPECT_EQ(fx.scheduler.pending_count(), 1u);
  fx.scheduler.run_to_quiescence();
  EXPECT_EQ(phones.pending_decisions(1), 0);
}

TEST(PhoneTable, EnoughMessagesEventuallyInfectSusceptible) {
  PhoneFixture fx;
  constexpr PhoneId kPhones = 100;
  PhoneTable phones(kPhones, &fx.env);
  for (PhoneId id = 0; id < kPhones; ++id) phones.set_susceptible(id, true);
  for (PhoneId id = 0; id < kPhones; ++id) {
    for (int i = 0; i < 30; ++i) phones.receive_infected_message(id);
  }
  fx.scheduler.run_to_quiescence();
  int infected = 0;
  for (PhoneId id = 0; id < kPhones; ++id) infected += phones.infected(id) ? 1 : 0;
  // Eventual acceptance 0.40: expect ~40 of 100, allow generous margin.
  EXPECT_GT(infected, 20);
  EXPECT_LT(infected, 60);
}

TEST(PhoneTable, DecisionCutoffSkipsDecisionEvents) {
  PhoneFixture fx;
  fx.env.decision_cutoff = 3;
  PhoneTable phones(2, &fx.env);
  phones.set_susceptible(1, true);
  for (int i = 0; i < 10; ++i) phones.receive_infected_message(1);
  EXPECT_EQ(phones.infected_messages_received(1), 10)
      << "count keeps growing past the cutoff";
  EXPECT_EQ(phones.pending_decisions(1), 3) << "only the first 3 schedule decisions";
}

TEST(PhoneTable, PatchImmunizesHealthyPhone) {
  PhoneFixture fx;
  PhoneTable phones(2, &fx.env);
  phones.set_susceptible(1, true);
  phones.apply_patch(1);
  EXPECT_EQ(phones.state(1), HealthState::kImmunized);
  EXPECT_TRUE(phones.patched(1));
  EXPECT_FALSE(phones.force_infect(1)) << "immunized phones cannot be infected";
  for (int i = 0; i < 40; ++i) phones.receive_infected_message(1);
  fx.scheduler.run_to_quiescence();
  EXPECT_EQ(phones.state(1), HealthState::kImmunized);
}

TEST(PhoneTable, PatchOnInfectedPhoneStopsPropagationOnly) {
  PhoneFixture fx;
  PhoneTable phones(2, &fx.env);
  phones.set_susceptible(1, true);
  phones.force_infect(1);
  phones.apply_patch(1);
  EXPECT_EQ(phones.state(1), HealthState::kInfected) << "patch does not disinfect";
  EXPECT_TRUE(phones.propagation_stopped(1));
}

TEST(PhoneTable, PatchIsIdempotent) {
  PhoneFixture fx;
  PhoneTable phones(2, &fx.env);
  phones.set_susceptible(1, true);
  phones.apply_patch(1);
  phones.apply_patch(1);
  EXPECT_EQ(phones.state(1), HealthState::kImmunized);
}

TEST(PhoneTable, HealthStateNames) {
  EXPECT_STREQ(to_string(HealthState::kHealthy), "healthy");
  EXPECT_STREQ(to_string(HealthState::kInfected), "infected");
  EXPECT_STREQ(to_string(HealthState::kImmunized), "immunized");
}

TEST(PhoneTable, DecisionUsesIndexAtArrivalTime) {
  // A message's acceptance probability is fixed by how many infected
  // messages had arrived when it did, even if decisions resolve later
  // in a different order. We can't observe probabilities directly, but
  // we can verify the count snapshot: after two receives, the count is
  // 2 while both decisions are still pending.
  PhoneFixture fx;
  PhoneTable phones(2, &fx.env);
  phones.set_susceptible(1, true);
  phones.receive_infected_message(1);
  phones.receive_infected_message(1);
  EXPECT_EQ(phones.infected_messages_received(1), 2);
  EXPECT_EQ(phones.pending_decisions(1), 2);
}

TEST(PhoneTable, ListenerReceivesMmsProvenance) {
  PhoneFixture fx;
  fx.consent = ConsentModel(0.99);  // near-certain acceptance of message 1
  PhoneTable phones(3, &fx.env);
  phones.set_susceptible(2, true);
  for (int attempt = 0; attempt < 64 && fx.infected_ids.empty(); ++attempt) {
    phones.receive_infected_message(2, {1, 7u, InfectionChannel::kMms});
    fx.scheduler.run_to_quiescence();
  }
  ASSERT_FALSE(fx.sources.empty()) << "AF 0.99 should accept within 64 offers";
  EXPECT_EQ(fx.infected_ids[0], 2u);
  EXPECT_EQ(fx.sources[0].sender, 1u);
  EXPECT_EQ(fx.sources[0].message, 7u);
  EXPECT_EQ(fx.sources[0].channel, InfectionChannel::kMms);
}

TEST(PhoneTable, MemoryBytesMatchesBudget) {
  PhoneFixture fx;
  PhoneTable phones(1000, &fx.env);
  // Dense per-phone budget: 9 bytes (1 flag + 4 received + 4 pending);
  // capacities may round up, so allow slack but require the right
  // order of magnitude (the old layout was 64 bytes per phone).
  EXPECT_GE(phones.memory_bytes(), 1000 * PhoneTable::kBytesPerPhone);
  EXPECT_LT(phones.memory_bytes(), 1000 * 2 * PhoneTable::kBytesPerPhone);
}

}  // namespace
}  // namespace mvsim::phone
