// Unit tests for src/phone: consent math and the phone state machine.
#include <gtest/gtest.h>

#include "des/scheduler.h"
#include "phone/consent.h"
#include "phone/phone.h"
#include "rng/stream.h"

namespace mvsim::phone {
namespace {

TEST(ConsentModel, PaperFactorYieldsPointFourEventual) {
  // The paper's central identity: AF = 0.468 => eventual acceptance 0.40.
  ConsentModel model(kPaperAcceptanceFactor);
  EXPECT_NEAR(model.eventual_acceptance_probability(), kPaperEventualAcceptance, 0.001);
}

TEST(ConsentModel, PerMessageProbabilityHalves) {
  ConsentModel model(0.468);
  EXPECT_NEAR(model.acceptance_probability(1), 0.234, 1e-9);
  EXPECT_NEAR(model.acceptance_probability(2), 0.117, 1e-9);
  EXPECT_NEAR(model.acceptance_probability(3), 0.0585, 1e-9);
  for (int n = 1; n < 20; ++n) {
    EXPECT_DOUBLE_EQ(model.acceptance_probability(n + 1), model.acceptance_probability(n) / 2.0);
  }
}

TEST(ConsentModel, LargeIndexProbabilityVanishes) {
  ConsentModel model(0.468);
  EXPECT_LT(model.acceptance_probability(60), 1e-15);
  EXPECT_DOUBLE_EQ(model.acceptance_probability(2000), 0.0);
}

TEST(ConsentModel, RejectsBadArguments) {
  EXPECT_THROW(ConsentModel(-0.1), std::invalid_argument);
  EXPECT_THROW(ConsentModel(1.0), std::invalid_argument);
  ConsentModel model(0.3);
  EXPECT_THROW((void)model.acceptance_probability(0), std::invalid_argument);
  EXPECT_THROW((void)model.negligible_after(0.0), std::invalid_argument);
}

TEST(ConsentModel, ZeroFactorNeverAccepts) {
  ConsentModel model(0.0);
  EXPECT_DOUBLE_EQ(model.acceptance_probability(1), 0.0);
  EXPECT_DOUBLE_EQ(model.eventual_acceptance_probability(), 0.0);
}

TEST(ConsentModel, NegligibleAfterFindsCutoff) {
  ConsentModel model(0.468);
  int cutoff = model.negligible_after(1e-6);
  EXPECT_GT(cutoff, 10);
  EXPECT_LT(cutoff, 30);
  EXPECT_LT(model.acceptance_probability(cutoff), 1e-6);
  EXPECT_GE(model.acceptance_probability(cutoff - 1), 1e-6);
}

TEST(ConsentModel, SolverInvertsEventualAcceptance) {
  for (double target : {0.05, 0.10, 0.20, 0.40, 0.60}) {
    double af = ConsentModel::solve_acceptance_factor(target);
    ConsentModel model(af);
    EXPECT_NEAR(model.eventual_acceptance_probability(), target, 1e-9) << "target " << target;
  }
}

TEST(ConsentModel, SolverRecoversPaperFactor) {
  double af = ConsentModel::solve_acceptance_factor(0.40);
  EXPECT_NEAR(af, kPaperAcceptanceFactor, 0.002)
      << "the paper's AF=0.468 should fall out of inverting 0.40";
}

TEST(ConsentModel, SolverRejectsInfeasibleTargets) {
  EXPECT_THROW((void)ConsentModel::solve_acceptance_factor(0.9), std::invalid_argument);
  EXPECT_THROW((void)ConsentModel::solve_acceptance_factor(-0.1), std::invalid_argument);
  EXPECT_DOUBLE_EQ(ConsentModel::solve_acceptance_factor(0.0), 0.0);
}

TEST(ConsentModel, EventualAcceptanceMonotoneInFactor) {
  double last = -1.0;
  for (double af = 0.0; af < 1.0; af += 0.05) {
    ConsentModel model(af);
    double eventual = model.eventual_acceptance_probability();
    EXPECT_GT(eventual, last);
    last = eventual;
  }
}

// ---- Phone state machine ----

struct PhoneFixture {
  des::Scheduler scheduler;
  rng::Stream user_stream{55};
  ConsentModel consent{0.468};
  PhoneEnvironment env;
  std::vector<PhoneId> infected_ids;

  PhoneFixture() {
    env.scheduler = &scheduler;
    env.user_stream = &user_stream;
    env.consent = &consent;
    env.read_delay_mean = SimTime::minutes(30.0);
    env.decision_cutoff = 40;
    env.on_infected = [this](PhoneId id) { infected_ids.push_back(id); };
  }
};

TEST(Phone, StartsHealthy) {
  PhoneFixture fx;
  Phone phone(3, true, &fx.env);
  EXPECT_EQ(phone.id(), 3u);
  EXPECT_TRUE(phone.susceptible());
  EXPECT_EQ(phone.state(), HealthState::kHealthy);
  EXPECT_FALSE(phone.infected());
  EXPECT_EQ(phone.infected_messages_received(), 0);
  EXPECT_FALSE(phone.propagation_stopped());
}

TEST(Phone, RequiresCompleteEnvironment) {
  PhoneEnvironment empty;
  EXPECT_THROW(Phone(0, true, &empty), std::invalid_argument);
  EXPECT_THROW(Phone(0, true, nullptr), std::invalid_argument);
}

TEST(Phone, ForceInfectFiresCallbackOnce) {
  PhoneFixture fx;
  Phone phone(1, true, &fx.env);
  EXPECT_TRUE(phone.force_infect());
  EXPECT_FALSE(phone.force_infect()) << "already infected";
  EXPECT_EQ(fx.infected_ids, (std::vector<PhoneId>{1}));
  EXPECT_EQ(phone.infected_at(), SimTime::zero());
}

TEST(Phone, NonSusceptibleCannotBeInfected) {
  PhoneFixture fx;
  Phone phone(1, false, &fx.env);
  EXPECT_FALSE(phone.force_infect());
  // Even a flood of accepted messages cannot infect the wrong platform.
  for (int i = 0; i < 50; ++i) phone.receive_infected_message();
  fx.scheduler.run_to_quiescence();
  EXPECT_EQ(phone.state(), HealthState::kHealthy);
  EXPECT_TRUE(fx.infected_ids.empty());
}

TEST(Phone, ReceiveCountsMessagesAndSchedulesDecision) {
  PhoneFixture fx;
  Phone phone(1, true, &fx.env);
  phone.receive_infected_message();
  EXPECT_EQ(phone.infected_messages_received(), 1);
  EXPECT_EQ(phone.pending_decisions(), 1);
  EXPECT_EQ(fx.scheduler.pending_count(), 1u);
  fx.scheduler.run_to_quiescence();
  EXPECT_EQ(phone.pending_decisions(), 0);
}

TEST(Phone, EnoughMessagesEventuallyInfectSusceptible) {
  PhoneFixture fx;
  Phone phone(1, true, &fx.env);
  // 200 messages: P(no acceptance) = 0.60 per the eventual-acceptance
  // math, so run several phones to see at least one infection.
  int infected = 0;
  constexpr int kPhones = 100;
  std::vector<Phone> phones;
  phones.reserve(kPhones);
  for (PhoneId id = 0; id < kPhones; ++id) phones.emplace_back(id, true, &fx.env);
  for (auto& p : phones) {
    for (int i = 0; i < 30; ++i) p.receive_infected_message();
  }
  fx.scheduler.run_to_quiescence();
  for (auto& p : phones) infected += p.infected() ? 1 : 0;
  // Eventual acceptance 0.40: expect ~40 of 100, allow generous margin.
  EXPECT_GT(infected, 20);
  EXPECT_LT(infected, 60);
}

TEST(Phone, DecisionCutoffSkipsDecisionEvents) {
  PhoneFixture fx;
  fx.env.decision_cutoff = 3;
  Phone phone(1, true, &fx.env);
  for (int i = 0; i < 10; ++i) phone.receive_infected_message();
  EXPECT_EQ(phone.infected_messages_received(), 10) << "count keeps growing past the cutoff";
  EXPECT_EQ(phone.pending_decisions(), 3) << "only the first 3 schedule decisions";
}

TEST(Phone, PatchImmunizesHealthyPhone) {
  PhoneFixture fx;
  Phone phone(1, true, &fx.env);
  phone.apply_patch();
  EXPECT_EQ(phone.state(), HealthState::kImmunized);
  EXPECT_TRUE(phone.patched());
  EXPECT_FALSE(phone.force_infect()) << "immunized phones cannot be infected";
  for (int i = 0; i < 40; ++i) phone.receive_infected_message();
  fx.scheduler.run_to_quiescence();
  EXPECT_EQ(phone.state(), HealthState::kImmunized);
}

TEST(Phone, PatchOnInfectedPhoneStopsPropagationOnly) {
  PhoneFixture fx;
  Phone phone(1, true, &fx.env);
  phone.force_infect();
  phone.apply_patch();
  EXPECT_EQ(phone.state(), HealthState::kInfected) << "patch does not disinfect";
  EXPECT_TRUE(phone.propagation_stopped());
}

TEST(Phone, PatchIsIdempotent) {
  PhoneFixture fx;
  Phone phone(1, true, &fx.env);
  phone.apply_patch();
  phone.apply_patch();
  EXPECT_EQ(phone.state(), HealthState::kImmunized);
}

TEST(Phone, HealthStateNames) {
  EXPECT_STREQ(to_string(HealthState::kHealthy), "healthy");
  EXPECT_STREQ(to_string(HealthState::kInfected), "infected");
  EXPECT_STREQ(to_string(HealthState::kImmunized), "immunized");
}

TEST(Phone, DecisionUsesIndexAtArrivalTime) {
  // A message's acceptance probability is fixed by how many infected
  // messages had arrived when it did, even if decisions resolve later
  // in a different order. We can't observe probabilities directly, but
  // we can verify the count snapshot: after two receives, the count is
  // 2 while both decisions are still pending.
  PhoneFixture fx;
  Phone phone(1, true, &fx.env);
  phone.receive_infected_message();
  phone.receive_infected_message();
  EXPECT_EQ(phone.infected_messages_received(), 2);
  EXPECT_EQ(phone.pending_decisions(), 2);
}

}  // namespace
}  // namespace mvsim::phone
