// Tests for src/metrics and the observability surface end to end:
// registry arithmetic, snapshot merging (the thread-invariance
// property the runner relies on), JSON/CSV report round-trips, and the
// three-way contract between metrics::schema(), the names a run
// actually emits, and docs/observability.md.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/presets.h"
#include "core/runner.h"
#include "core/simulation.h"
#include "metrics/registry.h"
#include "metrics/report.h"
#include "util/json.h"
#include "virus/profile.h"

namespace mvsim::metrics {
namespace {

// ---- Registry arithmetic ------------------------------------------------

TEST(MetricsRegistry, CounterAddsAndDefaultsToOne) {
  Registry reg;
  reg.counter("a").add();
  reg.counter("a").add(41);
  EXPECT_EQ(reg.counter("a").value(), 42u);
  EXPECT_EQ(reg.counter("b").value(), 0u);
}

TEST(MetricsRegistry, GaugeTracksPeak) {
  Registry reg;
  Gauge& g = reg.gauge("depth");
  g.set(7);
  g.set(3);
  EXPECT_EQ(g.value(), 3u);
  EXPECT_EQ(g.peak(), 7u);
}

TEST(MetricsRegistry, HistogramPlacesValuesIntoBuckets) {
  Registry reg;
  const std::vector<double> bounds = {1.0, 10.0, 100.0};
  Histogram& h = reg.histogram("h", bounds);
  h.record(0.5);    // <= 1
  h.record(1.0);    // <= 1 (bound is inclusive)
  h.record(5.0);    // <= 10
  h.record(100.0);  // <= 100
  h.record(1e9);    // overflow
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 1e9);
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
}

TEST(MetricsRegistry, EmptyHistogramReportsZeroMinMax) {
  Registry reg;
  const std::vector<double> bounds = {1.0};
  Histogram& h = reg.histogram("h", bounds);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(MetricsRegistry, HistogramRejectsNonIncreasingBounds) {
  Registry reg;
  const std::vector<double> bad = {10.0, 10.0};
  EXPECT_THROW(reg.histogram("h", bad), std::invalid_argument);
}

TEST(MetricsRegistry, HistogramReregistrationMustMatchBounds) {
  Registry reg;
  const std::vector<double> bounds = {1.0, 2.0};
  reg.histogram("h", bounds);
  EXPECT_NO_THROW(reg.histogram("h", bounds));
  const std::vector<double> other = {1.0, 3.0};
  EXPECT_THROW(reg.histogram("h", other), std::invalid_argument);
}

TEST(MetricsRegistry, InstrumentReferencesAreStable) {
  Registry reg;
  Counter& a = reg.counter("a");
  for (int i = 0; i < 100; ++i) reg.counter("c" + std::to_string(i));
  a.add(5);
  EXPECT_EQ(reg.counter("a").value(), 5u);
}

TEST(MetricsRegistry, SnapshotIsSortedByName) {
  Registry reg;
  reg.counter("z").add(1);
  reg.counter("a").add(2);
  reg.counter("m").add(3);
  Snapshot s = reg.snapshot();
  ASSERT_EQ(s.counters.size(), 3u);
  EXPECT_EQ(s.counters[0].name, "a");
  EXPECT_EQ(s.counters[1].name, "m");
  EXPECT_EQ(s.counters[2].name, "z");
}

// ---- Snapshot merging ---------------------------------------------------

Snapshot make_snapshot(std::uint64_t c, std::uint64_t g, double sample) {
  Registry reg;
  reg.counter("c").add(c);
  reg.gauge("g").set(g);
  const std::vector<double> bounds = {10.0, 100.0};
  reg.histogram("h", bounds).record(sample);
  return reg.snapshot();
}

TEST(MetricsSnapshot, MergeAddsCountersMaxesGaugesAddsBuckets) {
  Snapshot a = make_snapshot(3, 7, 5.0);
  Snapshot b = make_snapshot(4, 2, 50.0);
  a.merge(b);
  EXPECT_EQ(a.counter_value("c"), 7u);
  EXPECT_EQ(a.find_gauge("g")->value, 7u);
  EXPECT_EQ(a.find_gauge("g")->peak, 7u);
  const HistogramSample* h = a.find_histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2u);
  EXPECT_DOUBLE_EQ(h->sum, 55.0);
  EXPECT_DOUBLE_EQ(h->min, 5.0);
  EXPECT_DOUBLE_EQ(h->max, 50.0);
  EXPECT_EQ(h->bucket_counts[0], 1u);
  EXPECT_EQ(h->bucket_counts[1], 1u);
}

TEST(MetricsSnapshot, MergeIsOrderInvariant) {
  Snapshot forward = make_snapshot(1, 10, 1.0);
  forward.merge(make_snapshot(2, 20, 2.0));
  forward.merge(make_snapshot(3, 30, 3.0));

  Snapshot backward = make_snapshot(3, 30, 3.0);
  backward.merge(make_snapshot(2, 20, 2.0));
  backward.merge(make_snapshot(1, 10, 1.0));

  EXPECT_EQ(forward, backward);
}

TEST(MetricsSnapshot, MergeHandlesDisjointNames) {
  Registry ra;
  ra.counter("only_a").add(1);
  Registry rb;
  rb.counter("only_b").add(2);
  Snapshot a = ra.snapshot();
  a.merge(rb.snapshot());
  EXPECT_EQ(a.counter_value("only_a"), 1u);
  EXPECT_EQ(a.counter_value("only_b"), 2u);
  EXPECT_EQ(a.counter_value("absent"), 0u);
}

TEST(MetricsSnapshot, MergeRejectsMismatchedHistogramBounds) {
  Registry ra;
  const std::vector<double> b1 = {1.0};
  ra.histogram("h", b1);
  Registry rb;
  const std::vector<double> b2 = {2.0};
  rb.histogram("h", b2);
  Snapshot a = ra.snapshot();
  EXPECT_THROW(a.merge(rb.snapshot()), std::logic_error);
}

// ---- JSON / CSV reports -------------------------------------------------

TEST(MetricsReport, SnapshotJsonRoundTripsExactly) {
  Registry reg;
  reg.counter("x.count").add(123);
  reg.gauge("x.depth").set(9);
  reg.gauge("x.depth").set(4);
  const std::vector<double> bounds = {1.0, 5.0, 25.0};
  Histogram& h = reg.histogram("x.wall", bounds);
  h.record(0.25);
  h.record(80.0);
  Snapshot original = reg.snapshot();

  Snapshot reloaded = snapshot_from_json(snapshot_to_json(original));
  EXPECT_EQ(original, reloaded);
}

TEST(MetricsReport, ReportJsonCarriesRunInfoAndDerivedThroughput) {
  Registry reg;
  reg.counter("des.events_executed").add(1000);
  const std::vector<double> bounds = {1.0, 100.0};
  reg.histogram("timing.replication_wall_ms", bounds).record(500.0);
  ReportInfo info;
  info.scenario = "unit";
  info.replications = 1;
  info.threads = 2;
  info.master_seed = 99;

  json::Value doc = report_to_json(info, reg.snapshot());
  const json::Object& root = doc.as_object();
  EXPECT_EQ(root.at("schema_version").as_number(), 1.0);
  EXPECT_EQ(root.at("scenario").as_string(), "unit");
  EXPECT_EQ(root.at("threads").as_number(), 2.0);
  const json::Object& derived = root.at("derived").as_object();
  EXPECT_EQ(derived.at("events_processed").as_number(), 1000.0);
  // 1000 events over 500 ms of replication wall time = 2000 events/s.
  EXPECT_DOUBLE_EQ(derived.at("events_per_second_aggregate").as_number(), 2000.0);
}

TEST(MetricsReport, CsvReportListsEveryScalar) {
  Registry reg;
  reg.counter("c").add(5);
  reg.gauge("g").set(2);
  const std::vector<double> bounds = {1.0, 1000000.0};
  reg.histogram("h", bounds).record(3.0);
  ReportInfo info;
  info.scenario = "unit";
  info.replications = 1;
  info.threads = 1;

  std::ostringstream out;
  write_report_csv(info, reg.snapshot(), out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("metric,kind,field,value\n"), std::string::npos);
  EXPECT_NE(csv.find("c,counter,value,5"), std::string::npos);
  EXPECT_NE(csv.find("g,gauge,peak,2"), std::string::npos);
  EXPECT_NE(csv.find("h,histogram,le_1,0"), std::string::npos);
  EXPECT_NE(csv.find("h,histogram,le_1e+06,1"), std::string::npos);
  EXPECT_NE(csv.find("h,histogram,le_inf,0"), std::string::npos);
}

// ---- Schema -------------------------------------------------------------

TEST(MetricsSchema, IsSortedAndFindable) {
  auto catalogue = schema();
  ASSERT_FALSE(catalogue.empty());
  for (std::size_t i = 1; i < catalogue.size(); ++i) {
    EXPECT_LT(std::string_view(catalogue[i - 1].name), std::string_view(catalogue[i].name))
        << "schema out of order at " << catalogue[i].name;
  }
  EXPECT_NE(schema_find("des.events_executed"), nullptr);
  EXPECT_EQ(schema_find("no.such.metric"), nullptr);
  EXPECT_EQ(schema_find("des.events_executed")->kind, MetricKind::kCounter);
}

TEST(MetricsSchema, OnlyTimingAndProfilingValuesAreMachineDependent) {
  for (const MetricDescriptor& d : schema()) {
    bool is_wall_clock = (std::string_view(d.name).starts_with("timing.") &&
                          std::string_view(d.name) != "timing.replications") ||
                         std::string_view(d.name).starts_with("prof.") ||
                         std::string_view(d.name) == "shard.barrier_wait_ms";
    EXPECT_EQ(d.machine_dependent, is_wall_clock) << d.name;
  }
}

// ---- End-to-end against real simulations --------------------------------

core::ScenarioConfig small_scenario() {
  core::ScenarioConfig config = core::baseline_scenario(virus::virus1());
  config.name = "metrics-test";
  config.population = 200;
  config.topology.mean_degree = 16;
  config.horizon = SimTime::hours(48.0);
  return config;
}

core::ScenarioConfig full_suite_scenario() {
  core::ScenarioConfig config = small_scenario();
  config.responses.gateway_scan.emplace();
  config.responses.gateway_detection.emplace();
  config.responses.user_education.emplace();
  config.responses.immunization.emplace();
  config.responses.monitoring.emplace();
  config.responses.blacklist.emplace();
  config.responses.rate_limiter.emplace();
  return config;
}

std::set<std::string> emitted_names(const Snapshot& snapshot) {
  std::set<std::string> names;
  for (const auto& c : snapshot.counters) names.insert(c.name);
  for (const auto& g : snapshot.gauges) names.insert(g.name);
  for (const auto& h : snapshot.histograms) names.insert(h.name);
  return names;
}

TEST(MetricsEndToEnd, FullSuiteRunEmitsExactlyTheSchemaCatalogue) {
  // No single run can emit the whole catalogue: shard.* requires
  // shards >= 2, while the serial engine covers the Bluetooth-capable
  // paths a sharded run rejects. The union of a serial-profiled run
  // and a sharded-profiled run covers it, and each run must emit only
  // schema names.
  core::RunnerOptions options;
  options.replications = 2;
  options.threads = 1;
  // Profiling must be on so the prof.* histograms (eagerly registered by
  // the profiler) are part of the emitted set.
  options.profile = true;
  core::ExperimentResult profiled = core::run_experiment(full_suite_scenario(), options);

  core::RunnerOptions sharded_options;
  sharded_options.replications = 2;
  sharded_options.threads = 1;
  sharded_options.shards = 2;
  // Sharded profiling additionally fills prof.shard.window_us.
  sharded_options.profile = true;
  core::ExperimentResult sharded = core::run_experiment(full_suite_scenario(), sharded_options);

  std::set<std::string> expected;
  for (const MetricDescriptor& d : schema()) expected.insert(d.name);
  // timing.events_per_sec only materializes for timeable replications,
  // which is not guaranteed on a coarse clock; everything else must
  // match the catalogue exactly.
  std::set<std::string> emitted = emitted_names(profiled.metrics);
  for (const std::string& name : emitted_names(sharded.metrics)) emitted.insert(name);
  emitted.insert("timing.events_per_sec");
  EXPECT_EQ(emitted, expected);
}

TEST(MetricsEndToEnd, ReplicationSnapshotsMatchReplicationResults) {
  core::Simulation sim(small_scenario(), 1234);
  core::ReplicationResult result = sim.run();
  const Snapshot& m = result.metrics;
  EXPECT_EQ(m.counter_value("core.infections"), result.total_infected);
  EXPECT_EQ(m.counter_value("net.messages_submitted"), result.gateway.messages_submitted);
  EXPECT_EQ(m.counter_value("net.recipients_delivered"), result.gateway.recipients_delivered);
  EXPECT_GT(m.counter_value("des.events_executed"), 0u);
  EXPECT_GE(m.counter_value("des.events_scheduled"), m.counter_value("des.events_executed"));
  EXPECT_GT(m.counter_value("rng.draws"), 0u);
  const GaugeSample* depth = m.find_gauge("des.queue_depth_peak");
  ASSERT_NE(depth, nullptr);
  EXPECT_GT(depth->peak, 0u);
}

TEST(MetricsEndToEnd, NonTimingMetricsAreDeterministicAndThreadInvariant) {
  core::ScenarioConfig config = full_suite_scenario();
  core::RunnerOptions options;
  options.replications = 4;
  options.threads = 1;
  core::ExperimentResult serial = core::run_experiment(config, options);
  options.threads = 4;
  core::ExperimentResult parallel = core::run_experiment(config, options);

  auto strip_timing = [](const Snapshot& snapshot) {
    Snapshot stripped;
    for (const auto& c : snapshot.counters) {
      if (!c.name.starts_with("timing.")) stripped.counters.push_back(c);
    }
    for (const auto& g : snapshot.gauges) {
      if (!g.name.starts_with("timing.")) stripped.gauges.push_back(g);
    }
    for (const auto& h : snapshot.histograms) {
      if (!h.name.starts_with("timing.")) stripped.histograms.push_back(h);
    }
    return stripped;
  };
  EXPECT_EQ(strip_timing(serial.metrics), strip_timing(parallel.metrics));
  EXPECT_EQ(serial.metrics.counter_value("timing.replications"), 4u);
  EXPECT_EQ(parallel.metrics.counter_value("timing.replications"), 4u);
}

TEST(MetricsEndToEnd, MergedCountersEqualSumOfReplications) {
  core::RunnerOptions options;
  options.replications = 3;
  options.threads = 1;
  options.keep_replications = true;
  core::ExperimentResult result = core::run_experiment(small_scenario(), options);
  ASSERT_EQ(result.replications.size(), 3u);
  std::uint64_t sum = 0;
  for (const auto& rep : result.replications) {
    sum += rep.metrics.counter_value("des.events_executed");
  }
  EXPECT_EQ(result.metrics.counter_value("des.events_executed"), sum);
}

// ---- Documentation contract ---------------------------------------------

TEST(MetricsDocs, EveryScheduledMetricIsDocumented) {
#ifndef MVSIM_SOURCE_DIR
  GTEST_SKIP() << "MVSIM_SOURCE_DIR not defined";
#else
  std::ifstream file(std::string(MVSIM_SOURCE_DIR) + "/docs/observability.md");
  ASSERT_TRUE(file.is_open()) << "docs/observability.md missing";
  std::stringstream buffer;
  buffer << file.rdbuf();
  const std::string doc = buffer.str();
  for (const MetricDescriptor& d : schema()) {
    EXPECT_NE(doc.find("`" + std::string(d.name) + "`"), std::string::npos)
        << d.name << " is in metrics::schema() but not documented in docs/observability.md";
  }
#endif
}

}  // namespace
}  // namespace mvsim::metrics
