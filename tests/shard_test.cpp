// Tests for the sharded single-run engine and its building blocks:
// graph partitioning (src/graph/partition.*), cross-shard mailboxes
// (src/net/shard_mailbox.*), and the ShardedSimulation window protocol
// (src/core/sharded_simulation.*) — including the determinism contract
// docs/parallelism.md promises: fixed (config, seed, shards, window)
// means bit-identical results at ANY worker-thread count.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/presets.h"
#include "core/runner.h"
#include "core/sharded_simulation.h"
#include "graph/generators.h"
#include "graph/partition.h"
#include "metrics/registry.h"
#include "net/shard_mailbox.h"
#include "obs/stats_stream.h"
#include "rng/stream.h"
#include "trace/export.h"
#include "trace/trace.h"
#include "virus/profile.h"

namespace mvsim {
namespace {

// ---- Partition ----------------------------------------------------------

graph::ContactGraph power_law_graph(graph::PhoneId nodes, double mean_degree, double alpha) {
  graph::PowerLawConfig config;
  config.node_count = nodes;
  config.target_mean_degree = mean_degree;
  config.alpha = alpha;
  rng::Stream stream(0x9a47'1710'5eedULL);
  return graph::generate_power_law(config, stream);
}

TEST(Partition, UniformSplitsEvenly) {
  graph::Partition p = graph::Partition::uniform(100, 4);
  EXPECT_EQ(p.shard_count(), 4u);
  EXPECT_EQ(p.node_count(), 100u);
  for (std::uint32_t s = 0; s < 4; ++s) EXPECT_EQ(p.range(s).size(), 25u);
}

TEST(Partition, RangesAreContiguousAndCoverEveryNode) {
  graph::ContactGraph graph = power_law_graph(500, 8.0, 2.0);
  graph::Partition p = graph::Partition::degree_balanced(graph, 7);
  ASSERT_EQ(p.shard_count(), 7u);
  EXPECT_EQ(p.bounds().front(), 0u);
  EXPECT_EQ(p.bounds().back(), graph.node_count());
  graph::PhoneId previous_end = 0;
  for (std::uint32_t s = 0; s < p.shard_count(); ++s) {
    graph::Partition::Range r = p.range(s);
    EXPECT_EQ(r.begin, previous_end) << "gap or overlap before shard " << s;
    EXPECT_GT(r.size(), 0u) << "empty shard " << s;
    previous_end = r.end;
  }
  EXPECT_EQ(previous_end, graph.node_count());
}

TEST(Partition, ShardOfAgreesWithRanges) {
  graph::ContactGraph graph = power_law_graph(300, 6.0, 2.5);
  graph::Partition p = graph::Partition::degree_balanced(graph, 5);
  for (graph::PhoneId id = 0; id < graph.node_count(); ++id) {
    std::uint32_t s = p.shard_of(id);
    EXPECT_GE(id, p.range(s).begin);
    EXPECT_LT(id, p.range(s).end);
  }
}

TEST(Partition, DegreeBalancedBeatsNaiveSplitUnderSkew) {
  // Heavily skewed degrees: a uniform cut would load the hub-rich
  // prefix onto one shard; the degree-balanced cut must stay close to
  // even by the same work estimate it minimizes.
  graph::ContactGraph graph = power_law_graph(2000, 10.0, 1.8);
  graph::Partition balanced = graph::Partition::degree_balanced(graph, 8);
  EXPECT_LT(balanced.max_imbalance(graph), 1.5);
  EXPECT_LE(graph::Partition::degree_balanced(graph, 8).max_imbalance(graph),
            graph::Partition::uniform(graph.node_count(), 8).max_imbalance(graph) + 1e-9);
}

TEST(Partition, IsDeterministic) {
  graph::ContactGraph graph = power_law_graph(400, 8.0, 2.0);
  EXPECT_EQ(graph::Partition::degree_balanced(graph, 6).bounds(),
            graph::Partition::degree_balanced(graph, 6).bounds());
}

TEST(Partition, RejectsZeroAndOversizedShardCounts) {
  graph::ContactGraph graph(10);
  EXPECT_THROW(graph::Partition::degree_balanced(graph, 0), std::invalid_argument);
  EXPECT_THROW(graph::Partition::degree_balanced(graph, 11), std::invalid_argument);
  EXPECT_NO_THROW(graph::Partition::degree_balanced(graph, 10));
}

// ---- ShardMailboxGrid ---------------------------------------------------

net::CrossShardDelivery delivery(SimTime at, net::PhoneId recipient, std::uint64_t sequence) {
  net::CrossShardDelivery d;
  d.at = at;
  d.recipient = recipient;
  d.sender = 0;
  d.sequence = sequence;
  d.infected = true;
  return d;
}

TEST(ShardMailbox, DrainsInSourceOrderThenFifo) {
  net::ShardMailboxGrid grid(3);
  grid.push(2, 0, delivery(SimTime::minutes(5.0), 10, 1));
  grid.push(1, 0, delivery(SimTime::minutes(3.0), 11, 2));
  grid.push(1, 0, delivery(SimTime::minutes(1.0), 12, 3));
  grid.push(1, 2, delivery(SimTime::minutes(2.0), 13, 4));  // other destination

  std::vector<std::uint64_t> seen;
  grid.drain_to(0, [&seen](const net::CrossShardDelivery& d) { seen.push_back(d.sequence); });
  // Ascending source (1 before 2), FIFO within a source — NOT sorted by
  // timestamp: ordering is deterministic, scheduling re-sorts by time.
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{2, 3, 1}));
  EXPECT_FALSE(grid.empty());  // (1 -> 2) still pending
  grid.drain_to(2, [](const net::CrossShardDelivery&) {});
  EXPECT_TRUE(grid.empty());
  EXPECT_EQ(grid.pushed_total(), 4u);
  EXPECT_EQ(grid.drained_total(), 4u);
}

TEST(ShardMailbox, DrainedBoxesAreReusable) {
  net::ShardMailboxGrid grid(2);
  for (int round = 0; round < 3; ++round) {
    grid.push(0, 1, delivery(SimTime::minutes(1.0), 1, static_cast<std::uint64_t>(round)));
    std::uint64_t last = 999;
    grid.drain_to(1, [&last](const net::CrossShardDelivery& d) { last = d.sequence; });
    EXPECT_EQ(last, static_cast<std::uint64_t>(round));
  }
  EXPECT_EQ(grid.pushed_total(), 3u);
  EXPECT_EQ(grid.drained_total(), 3u);
}

TEST(ShardMailbox, RejectsZeroShards) {
  EXPECT_THROW(net::ShardMailboxGrid(0), std::invalid_argument);
}

// ---- ShardedSimulation --------------------------------------------------

core::ScenarioConfig small_scenario() {
  core::ScenarioConfig config = core::baseline_scenario(virus::virus1());
  config.name = "shard-test";
  config.population = 400;
  config.horizon = SimTime::hours(72.0);
  return config;
}

/// Compact fingerprint of everything a replication reports (infection
/// steps, counters, detection time) — any divergence shows up here.
std::uint64_t fingerprint(const core::ReplicationResult& r) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (const auto& point : r.infections.points()) {
    mix(static_cast<std::uint64_t>(point.time.to_minutes() * 64.0));
    mix(static_cast<std::uint64_t>(point.value));
  }
  mix(r.total_infected);
  mix(r.gateway.messages_submitted);
  mix(r.gateway.recipients_delivered);
  mix(r.metrics.counter_value("rng.draws"));
  mix(static_cast<std::uint64_t>(r.detected_at.is_finite() ? r.detected_at.to_minutes() : -1.0));
  return h;
}

core::ReplicationResult run_sharded(const core::ScenarioConfig& config, std::uint32_t shards,
                                    int workers, SimTime window = SimTime::zero()) {
  core::ShardingOptions options;
  options.shards = shards;
  options.worker_threads = workers;
  options.window = window;
  core::ShardedSimulation sim(config, 0x5eedULL, options);
  return sim.run();
}

TEST(ShardedSimulation, ResultsAreIdenticalForAnyWorkerThreadCount) {
  // The determinism contract's core clause: the worker-thread count is
  // an execution detail, never part of the model. Inline (1), partial
  // (2) and one-thread-per-shard (3) execution of a 3-shard run must
  // agree on every infection step and every RNG draw count.
  core::ScenarioConfig config = small_scenario();
  core::ReplicationResult inline_run = run_sharded(config, 3, 1);
  core::ReplicationResult two_workers = run_sharded(config, 3, 2);
  core::ReplicationResult per_shard = run_sharded(config, 3, 0);
  EXPECT_EQ(fingerprint(inline_run), fingerprint(two_workers));
  EXPECT_EQ(fingerprint(inline_run), fingerprint(per_shard));
  EXPECT_EQ(inline_run.metrics.counter_value("rng.draws"),
            per_shard.metrics.counter_value("rng.draws"));
  EXPECT_GT(inline_run.total_infected, 1u);
}

TEST(ShardedSimulation, RepeatedRunsAreBitIdentical) {
  core::ScenarioConfig config = small_scenario();
  EXPECT_EQ(fingerprint(run_sharded(config, 4, 0)), fingerprint(run_sharded(config, 4, 0)));
}

TEST(ShardedSimulation, WindowWidthIsPartOfTheModel) {
  // Unlike worker threads, the window changes cross-shard latency and
  // therefore results (both runs are valid samples of the model).
  core::ScenarioConfig config = small_scenario();
  core::ReplicationResult narrow = run_sharded(config, 2, 1, SimTime::minutes(1.0));
  core::ReplicationResult wide = run_sharded(config, 2, 1, SimTime::minutes(30.0));
  EXPECT_NE(fingerprint(narrow), fingerprint(wide));
  EXPECT_GT(narrow.total_infected, 1u);
  EXPECT_GT(wide.total_infected, 1u);
}

TEST(ShardedSimulation, WindowWiderThanHorizonCompletesInOneWindow) {
  core::ScenarioConfig config = small_scenario();
  core::ReplicationResult r = run_sharded(config, 2, 1, config.horizon + SimTime::hours(1.0));
  EXPECT_GT(r.total_infected, 1u);
  EXPECT_EQ(r.metrics.counter_value("shard.windows"), 1u);
}

TEST(ShardedSimulation, MailboxSentEqualsReceived) {
  core::ReplicationResult r = run_sharded(small_scenario(), 4, 0);
  EXPECT_GT(r.metrics.counter_value("shard.mailbox.sent"), 0u);
  EXPECT_EQ(r.metrics.counter_value("shard.mailbox.sent"),
            r.metrics.counter_value("shard.mailbox.received"));
}

TEST(ShardedSimulation, DetectabilityIsQuantizedToWindowBarriers) {
  // The global detectability decision is made at barriers, so the
  // detection timestamp must sit on a window boundary.
  core::ScenarioConfig config = core::fig2_scan_scenario(SimTime::hours(6.0));
  const SimTime window = SimTime::minutes(2.0);
  core::ReplicationResult r = run_sharded(config, 2, 1, window);
  ASSERT_TRUE(r.detected_at.is_finite());
  const double windows = r.detected_at / window;
  EXPECT_NEAR(windows, std::round(windows), 1e-9);
}

TEST(ShardedSimulation, SingleShardRunsMatchThemselvesAndInfect) {
  // shards == 1 through the class is legal (the runner routes 1 to the
  // serial engine; the class itself degenerates to one shard and no
  // cross-shard traffic).
  core::ReplicationResult r = run_sharded(small_scenario(), 1, 1);
  EXPECT_GT(r.total_infected, 1u);
  EXPECT_EQ(r.metrics.counter_value("shard.mailbox.sent"), 0u);
}

TEST(ShardedSimulation, RejectsProximityScenarios) {
  core::ScenarioConfig config = small_scenario();
  config.proximity = core::ProximityChannelConfig{};
  core::ShardingOptions options;
  options.shards = 2;
  EXPECT_THROW(core::ShardedSimulation(config, 1, options), std::invalid_argument);
}

TEST(ShardedRunner, ExperimentMatchesAcrossReplicationThreadCounts) {
  // Runner-level determinism: replication threads on top of sharding
  // still aggregate in replication order.
  core::ScenarioConfig config = small_scenario();
  core::RunnerOptions options;
  options.replications = 4;
  options.master_seed = 0x90147ULL;
  options.shards = 2;
  options.shard_workers = 1;
  options.threads = 1;
  core::ExperimentResult serial = core::run_experiment(config, options);
  options.threads = 4;
  core::ExperimentResult parallel = core::run_experiment(config, options);
  ASSERT_EQ(serial.replications.size(), parallel.replications.size());
  for (std::size_t i = 0; i < serial.replications.size(); ++i) {
    EXPECT_EQ(fingerprint(serial.replications[i]), fingerprint(parallel.replications[i]));
  }
}

TEST(ShardedRunner, RejectsProximityAndBadShardCounts) {
  core::ScenarioConfig config = small_scenario();
  core::RunnerOptions options;
  options.replications = 1;
  options.shards = 2;

  core::ScenarioConfig proximity_config = config;
  proximity_config.proximity = core::ProximityChannelConfig{};
  EXPECT_THROW(core::run_experiment(proximity_config, options), std::invalid_argument);

  core::RunnerOptions zero_shards = options;
  zero_shards.shards = 0;
  EXPECT_THROW(core::run_experiment(config, zero_shards), std::invalid_argument);

  core::RunnerOptions too_many = options;
  too_many.shards = config.population + 1;
  EXPECT_THROW(core::run_experiment(config, too_many), std::invalid_argument);
}

// ---- Shard-aware observability ------------------------------------------

std::string sharded_trace_jsonl(const core::ScenarioConfig& config, std::uint32_t shards,
                                int workers) {
  trace::TraceBuffer buffer = trace::TraceBuffer::unbounded();
  core::ShardingOptions options;
  options.shards = shards;
  options.worker_threads = workers;
  options.trace = &buffer;
  core::ShardedSimulation sim(config, 0x5eedULL, options);
  (void)sim.run();
  std::ostringstream out;
  trace::write_jsonl(buffer, out);
  return out.str();
}

TEST(ShardedTrace, MergedTraceIsByteIdenticalForAnyWorkerCount) {
  // The merge contract: per-shard buffers are worker-count-invariant
  // and the (time, shard) merge is a total order, so the merged JSONL
  // is byte-identical whether shards run inline, on two workers or one
  // thread per shard.
  core::ScenarioConfig config = small_scenario();
  std::string inline_trace = sharded_trace_jsonl(config, 3, 1);
  EXPECT_FALSE(inline_trace.empty());
  EXPECT_EQ(inline_trace, sharded_trace_jsonl(config, 3, 2));
  EXPECT_EQ(inline_trace, sharded_trace_jsonl(config, 3, 0));
}

TEST(ShardedTrace, EventsCarryShardsAndNamespacedMessageIds) {
  core::ScenarioConfig config = small_scenario();
  trace::TraceBuffer buffer = trace::TraceBuffer::unbounded();
  core::ShardingOptions options;
  options.shards = 4;
  options.worker_threads = 1;
  options.trace = &buffer;
  core::ShardedSimulation sim(config, 0x5eedULL, options);
  core::ReplicationResult result = sim.run();
  ASSERT_GT(result.total_infected, 1u);

  const graph::Partition& partition = sim.partition();
  std::uint64_t cross_shard_deliveries = 0;
  SimTime last = SimTime::zero();
  for (const trace::Event& e : buffer.events()) {
    ASSERT_GE(e.time, last) << "merged trace must be time-ordered";
    last = e.time;
    if (e.phone != trace::kInvalidPhoneId) {
      ASSERT_NE(e.shard, trace::kNoShard);
      EXPECT_EQ(e.shard, partition.shard_of(e.phone))
          << "phone " << e.phone << " recorded by the wrong shard";
    }
    if (e.message == trace::kInvalidMessageId) continue;
    // Message ids are namespaced by origin shard; a delivery recorded
    // on a different shard than the id's origin is a cross-shard hop.
    const std::uint64_t origin = e.message / trace::kShardMessageStride;
    EXPECT_LT(origin, 4u);
    if (e.kind == trace::EventKind::kMessageSent) {
      EXPECT_EQ(origin, e.shard) << "senders submit through their own shard's gateway";
    }
    if (e.kind == trace::EventKind::kMessageDelivered && origin != e.shard) {
      ++cross_shard_deliveries;
    }
  }
  // Every executed cross-shard delivery surfaces in the trace; the
  // mailbox count may run slightly ahead because entries drained at the
  // last barrier with a delivery time past the horizon never execute.
  EXPECT_GT(cross_shard_deliveries, 0u);
  EXPECT_LE(cross_shard_deliveries, result.metrics.counter_value("shard.mailbox.received"));
}

TEST(ShardedRunner, ComposesTraceProfileAndStatsStreamWithoutPerturbingResults) {
  // The observability tentpole's composition clause: --shards with
  // trace + profile + stats stream all at once must run, populate each
  // sink, and leave the results bit-identical to a bare run.
  core::ScenarioConfig config = small_scenario();
  core::RunnerOptions bare;
  bare.replications = 2;
  bare.master_seed = 0x90147ULL;
  bare.shards = 2;
  bare.shard_workers = 1;
  core::ExperimentResult plain = core::run_experiment(config, bare);

  trace::TraceBuffer buffer = trace::TraceBuffer::unbounded();
  std::ostringstream stream_text;
  obs::RunStream stream(stream_text);
  stream.write_header({config.name, "", 2, 2});
  core::RunnerOptions observed = bare;
  observed.trace = &buffer;
  observed.trace_replication = 1;
  observed.profile = true;
  observed.stats_stream = &stream;
  observed.stats_period = SimTime::minutes(60.0);
  core::ExperimentResult instrumented = core::run_experiment(config, observed);

  ASSERT_EQ(plain.replications.size(), instrumented.replications.size());
  for (std::size_t i = 0; i < plain.replications.size(); ++i) {
    EXPECT_EQ(fingerprint(plain.replications[i]), fingerprint(instrumented.replications[i]));
  }
  EXPECT_GT(buffer.events().size(), 0u);
  EXPECT_GT(stream.samples_written(), 0u);
  const metrics::HistogramSample* windows =
      instrumented.metrics.find_histogram("prof.shard.window_us");
  ASSERT_NE(windows, nullptr);
  EXPECT_GT(windows->count, 0u)
      << "sharded profiling must fill the per-window straggler histogram";
  const metrics::HistogramSample* delivery =
      instrumented.metrics.find_histogram("prof.event.message_delivery");
  ASSERT_NE(delivery, nullptr);
  EXPECT_GT(delivery->count, 0u);
}

TEST(ShardedRunner, WindowProgressTicksCarryFractionAndShards) {
  core::ScenarioConfig config = small_scenario();
  core::RunnerOptions options;
  options.replications = 1;
  options.shards = 2;
  options.shard_workers = 1;
  options.threads = 1;
  int window_ticks = 0;
  int completion_ticks = 0;
  options.progress = [&](const core::ProgressUpdate& update) {
    EXPECT_EQ(update.shards, 2);
    if (update.window_fraction > 0.0) {
      ++window_ticks;
      EXPECT_LE(update.window_fraction, 1.0);
      EXPECT_GT(update.window_events, 0u);
    } else {
      ++completion_ticks;
    }
  };
  (void)core::run_experiment(config, options);
  EXPECT_EQ(completion_ticks, 1);
  // Window ticks are wall-clock throttled, so tiny runs may emit none;
  // the invariant is only that any emitted tick is well-formed.
  EXPECT_GE(window_ticks, 0);
}

}  // namespace
}  // namespace mvsim
