// Unit + integration tests for src/analysis: sweeps, the §5.3
// diminishing-returns analysis, §6 strategy combinations, sensitivity.
#include <gtest/gtest.h>

#include "analysis/diminishing_returns.h"
#include "analysis/sensitivity.h"
#include "analysis/strategy.h"
#include "analysis/sweep.h"
#include "core/presets.h"

namespace mvsim::analysis {
namespace {

/// Small fast scenario: 200 phones, Virus 3 (quick horizon).
core::ScenarioConfig small_v3() {
  core::ScenarioConfig config = core::baseline_scenario(virus::virus3());
  config.population = 200;
  config.topology.mean_degree = 20.0;
  return config;
}

core::RunnerOptions fast_options() {
  core::RunnerOptions options;
  options.replications = 3;
  options.master_seed = 808;
  options.keep_replications = false;
  return options;
}

TEST(Sweep, RunsEveryValueInOrder) {
  SweepResult sweep = run_sweep(
      "blacklist threshold", {10.0, 20.0, 40.0},
      [](double threshold) {
        core::ScenarioConfig config = small_v3();
        response::BlacklistConfig blacklist;
        blacklist.message_threshold = static_cast<std::uint32_t>(threshold);
        config.responses.blacklist = blacklist;
        return config;
      },
      fast_options());
  ASSERT_EQ(sweep.points.size(), 3u);
  EXPECT_DOUBLE_EQ(sweep.points[0].parameter, 10.0);
  EXPECT_DOUBLE_EQ(sweep.points[2].parameter, 40.0);
  EXPECT_EQ(sweep.parameter_name, "blacklist threshold");
  // Lower thresholds contain more.
  EXPECT_LT(sweep.points[0].result.final_infections.mean(),
            sweep.points[2].result.final_infections.mean());
}

TEST(Sweep, RejectsEmptyInput) {
  EXPECT_THROW((void)run_sweep("x", {}, [](double) { return small_v3(); }), std::invalid_argument);
  EXPECT_THROW((void)run_sweep("x", {1.0}, nullptr), std::invalid_argument);
}

/// Builds a sweep point with a given final level (the curve is unused
/// by the analysis, so a 1-cell grid suffices).
SweepPoint make_point(double parameter, double final_level) {
  core::ExperimentResult result(
      stats::AggregatedSeries(SimTime::hours(1.0), SimTime::hours(1.0)));
  result.final_infections.add(final_level);
  return SweepPoint{parameter, std::move(result)};
}

TEST(DiminishingReturns, SyntheticSweepFindsTheKnee) {
  // Hand-built sweep: strengthening from 0 to 3 buys 100, 50 then 2
  // infections per unit — the knee is the third step.
  SweepResult sweep;
  sweep.parameter_name = "strength";
  sweep.points.push_back(make_point(0.0, 300.0));
  sweep.points.push_back(make_point(1.0, 200.0));
  sweep.points.push_back(make_point(2.0, 150.0));
  sweep.points.push_back(make_point(3.0, 148.0));

  DiminishingReturnsReport report = analyze_diminishing_returns(sweep, 320.0);
  ASSERT_EQ(report.gains.size(), 3u);
  EXPECT_DOUBLE_EQ(report.gains[0].infections_avoided, 100.0);
  EXPECT_DOUBLE_EQ(report.gains[1].avoided_per_unit, 50.0);
  EXPECT_TRUE(report.has_knee());
  EXPECT_EQ(report.knee_index, 2u) << "the 2-infection step is past the knee";
  std::string table = to_table(report);
  EXPECT_NE(table.find("diminishing"), std::string::npos);
  EXPECT_NE(table.find("worth it"), std::string::npos);
}

TEST(DiminishingReturns, AllStepsWorthItMeansNoKnee) {
  SweepResult sweep;
  sweep.parameter_name = "strength";
  for (int i = 0; i < 4; ++i) {
    sweep.points.push_back(make_point(i, 300.0 - 80.0 * i));
  }
  DiminishingReturnsReport report = analyze_diminishing_returns(sweep, 320.0);
  EXPECT_FALSE(report.has_knee());
}

TEST(DiminishingReturns, RampUpShapeHasNoFalseKnee) {
  // Convex response (the fig-3 detector shape): early steps buy almost
  // nothing, the last step buys the most. No step after the peak is
  // weak, so there is no knee — returns are still increasing.
  SweepResult sweep;
  sweep.parameter_name = "accuracy";
  sweep.points.push_back(make_point(0.80, 330.0));
  sweep.points.push_back(make_point(0.85, 325.0));  // rate 100
  sweep.points.push_back(make_point(0.90, 315.0));  // rate 200
  sweep.points.push_back(make_point(0.95, 270.0));  // rate 900
  sweep.points.push_back(make_point(0.99, 70.0));   // rate 5000 (peak, last)
  DiminishingReturnsReport report = analyze_diminishing_returns(sweep, 330.0);
  EXPECT_EQ(report.peak_index, 3u);
  EXPECT_FALSE(report.has_knee()) << "weak steps before the peak are ramp-up, not a knee";
  EXPECT_TRUE(report.returns_still_increasing());
  std::string table = to_table(report);
  EXPECT_NE(table.find("ramp-up"), std::string::npos);
  EXPECT_EQ(table.find("diminishing"), std::string::npos);
}

TEST(DiminishingReturns, KneeAfterPeakStillDetected) {
  // Classic concave shape with a weak tail after a mid-sweep peak.
  SweepResult sweep;
  sweep.parameter_name = "strength";
  sweep.points.push_back(make_point(0.0, 300.0));
  sweep.points.push_back(make_point(1.0, 120.0));  // rate 180 (peak)
  sweep.points.push_back(make_point(2.0, 100.0));  // rate 20
  sweep.points.push_back(make_point(3.0, 99.0));   // rate 1
  DiminishingReturnsReport report = analyze_diminishing_returns(sweep, 320.0);
  EXPECT_EQ(report.peak_index, 0u);
  ASSERT_TRUE(report.has_knee());
  EXPECT_EQ(report.knee_index, 1u);
  EXPECT_FALSE(report.returns_still_increasing());
}

TEST(DiminishingReturns, Validation) {
  SweepResult sweep;
  sweep.points.push_back(make_point(0.0, 100.0));
  EXPECT_THROW((void)analyze_diminishing_returns(sweep, 320.0), std::invalid_argument);
  sweep.points.push_back(make_point(1.0, 90.0));
  EXPECT_THROW((void)analyze_diminishing_returns(sweep, 320.0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)analyze_diminishing_returns(sweep, 320.0, 1.0), std::invalid_argument);
}

TEST(DiminishingReturns, RealBlacklistSweepHasEarlyKnee) {
  // Against Virus 3, tightening the threshold 40 -> 30 buys little;
  // 20 -> 10 buys a lot. Sweep strongest-last ordering: 40,30,20,10.
  SweepResult sweep = run_sweep(
      "blacklist tightening", {40.0, 30.0, 20.0, 10.0},
      [](double threshold) {
        core::ScenarioConfig config = small_v3();
        response::BlacklistConfig blacklist;
        blacklist.message_threshold = static_cast<std::uint32_t>(threshold);
        config.responses.blacklist = blacklist;
        return config;
      },
      fast_options());
  double baseline = core::run_experiment(small_v3(), fast_options()).final_infections.mean();
  DiminishingReturnsReport report = analyze_diminishing_returns(sweep, baseline);
  ASSERT_EQ(report.gains.size(), 3u);
  // Every step tightens containment (monotone finals).
  EXPECT_GE(report.gains[0].from_final, report.gains[2].to_final);
}

TEST(Strategy, NamesAndCounts) {
  EXPECT_EQ(strategy_name(0), "none");
  EXPECT_EQ(strategy_name(kGatewayScan), "scan");
  EXPECT_EQ(strategy_name(kGatewayScan | kMonitoring), "scan+monitor");
  EXPECT_EQ(strategy_name(kAllMechanisms),
            "scan+detect+educate+patch+monitor+blacklist");
  EXPECT_EQ(mechanism_count(0), 0);
  EXPECT_EQ(mechanism_count(kAllMechanisms), 6);
  EXPECT_EQ(mechanism_count(kUserEducation | kBlacklist), 2);
}

TEST(Strategy, SelectMechanismsHonorsMaskAndKit) {
  response::ResponseSuiteConfig kit;
  kit.gateway_scan = response::GatewayScanConfig{};
  kit.monitoring = response::MonitoringConfig{};
  kit.detectability_threshold = 9;

  response::ResponseSuiteConfig chosen = select_mechanisms(kit, kGatewayScan | kBlacklist);
  EXPECT_TRUE(chosen.gateway_scan.has_value());
  EXPECT_FALSE(chosen.monitoring.has_value());
  EXPECT_FALSE(chosen.blacklist.has_value()) << "blacklist not in the kit";
  EXPECT_EQ(chosen.detectability_threshold, 9u);
}

TEST(Strategy, EvaluateStrategiesFindsTheLayeredWin) {
  // The paper's motivating §6 case: monitoring alone slows, scan alone
  // is too late, together they contain Virus 3.
  core::ScenarioConfig base = small_v3();
  response::ResponseSuiteConfig kit;
  kit.gateway_scan = response::GatewayScanConfig{};
  kit.monitoring = response::MonitoringConfig{};

  StrategyStudy study = evaluate_strategies(base, kit, 2, fast_options());
  ASSERT_EQ(study.outcomes.size(), 4u);  // none, scan, monitor, scan+monitor
  EXPECT_EQ(study.outcomes[0].name, "none");
  EXPECT_DOUBLE_EQ(study.outcomes[0].containment, 0.0);
  const StrategyOutcome* combo = nullptr;
  for (const auto& outcome : study.outcomes) {
    if (outcome.name == "scan+monitor") combo = &outcome;
  }
  ASSERT_NE(combo, nullptr);
  for (const auto& outcome : study.outcomes) {
    if (outcome.mechanisms <= 1) {
      EXPECT_LE(combo->final_infections, outcome.final_infections)
          << "the pair dominates every single mechanism against Virus 3";
    }
  }
  EXPECT_GT(combo->containment, 0.5);
}

TEST(Strategy, ParetoFrontIsNondominatedAndOrdered) {
  core::ScenarioConfig base = small_v3();
  response::ResponseSuiteConfig kit;
  kit.gateway_scan = response::GatewayScanConfig{};
  kit.monitoring = response::MonitoringConfig{};
  kit.blacklist = response::BlacklistConfig{};

  StrategyStudy study = evaluate_strategies(base, kit, 3, fast_options());
  EXPECT_EQ(study.outcomes.size(), 8u);
  ASSERT_FALSE(study.pareto.empty());
  // The empty strategy is always on the front (fewest mechanisms).
  EXPECT_EQ(study.outcomes[study.pareto.front()].mechanisms, 0);
  // Front members must be mutually nondominated.
  for (std::size_t a : study.pareto) {
    for (std::size_t b : study.pareto) {
      if (a == b) continue;
      const auto& oa = study.outcomes[a];
      const auto& ob = study.outcomes[b];
      bool dominates = oa.mechanisms <= ob.mechanisms &&
                       oa.final_infections <= ob.final_infections &&
                       (oa.mechanisms < ob.mechanisms ||
                        oa.final_infections < ob.final_infections);
      EXPECT_FALSE(dominates) << oa.name << " dominates " << ob.name;
    }
  }
}

TEST(Strategy, Validation) {
  core::ScenarioConfig base = small_v3();
  response::ResponseSuiteConfig empty_kit;
  EXPECT_THROW((void)evaluate_strategies(base, empty_kit, 2, fast_options()),
               std::invalid_argument);
  response::ResponseSuiteConfig kit;
  kit.blacklist = response::BlacklistConfig{};
  EXPECT_THROW((void)evaluate_strategies(base, kit, -1, fast_options()),
               std::invalid_argument);
}

TEST(Strategy, MaxZeroMeansBaselineOnly) {
  core::ScenarioConfig base = small_v3();
  response::ResponseSuiteConfig kit;
  kit.blacklist = response::BlacklistConfig{};
  StrategyStudy study = evaluate_strategies(base, kit, 0, fast_options());
  ASSERT_EQ(study.outcomes.size(), 1u);
  EXPECT_EQ(study.outcomes[0].name, "none");
}

TEST(Sensitivity, StandardKnobsCoverTheScenario) {
  core::ScenarioConfig v1 = core::baseline_scenario(virus::virus1());
  auto knobs = standard_perturbations(v1);
  // read delay, delivery delay, degree, min gap, extra gap (no
  // piggyback knob for Virus 1).
  EXPECT_EQ(knobs.size(), 5u);
  core::ScenarioConfig v4 = core::baseline_scenario(virus::virus4());
  EXPECT_EQ(standard_perturbations(v4).size(), 5u)
      << "Virus 4 swaps extra-gap (zero) for the legit-traffic knob";
}

TEST(Sensitivity, OatReportsPlateauInsensitivity) {
  core::ScenarioConfig base = small_v3();
  base.horizon = SimTime::hours(25.0);
  std::vector<Perturbation> knobs = {
      {"read_delay_mean",
       [](core::ScenarioConfig& c, double f) { c.read_delay_mean = c.read_delay_mean * f; }},
  };
  auto rows = one_at_a_time(base, knobs, fast_options());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].parameter, "read_delay_mean");
  // Virus 3 saturates within the horizon regardless of read delay in
  // the halved/doubled band: final levels stay near the plateau.
  EXPECT_NEAR(rows[0].low_final, rows[0].high_final, 0.25 * rows[0].base_final);
  EXPECT_NEAR(rows[0].elasticity, 0.0, 0.3);
  std::string table = to_table(rows);
  EXPECT_NE(table.find("read_delay_mean"), std::string::npos);
}

TEST(Sensitivity, Validation) {
  core::ScenarioConfig base = small_v3();
  EXPECT_THROW((void)one_at_a_time(base, {}, fast_options()), std::invalid_argument);
  std::vector<Perturbation> broken = {{"x", nullptr}};
  EXPECT_THROW((void)one_at_a_time(base, broken, fast_options()), std::invalid_argument);
}

}  // namespace
}  // namespace mvsim::analysis
