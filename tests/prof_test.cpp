// Tests for the hot-path profiler (src/prof): metric-name catalogue,
// scoped phase timers, merge commutativity, scheduler integration and
// the profile document writer. The observation-only guarantee itself
// (profiling does not perturb results) is pinned by golden_test.cpp.
#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>

#include "des/scheduler.h"
#include "metrics/report.h"
#include "prof/profile_io.h"
#include "prof/profiler.h"

namespace mvsim {
namespace {

// ---- Names and eager registration ---------------------------------------

TEST(Profiler, MetricNamesCoverEveryEventTypeAndPhase) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < des::kEventTypeCount; ++i) {
    std::string name = prof::event_metric_name(static_cast<des::EventType>(i));
    EXPECT_TRUE(name.starts_with("prof.event.")) << name;
    names.insert(name);
  }
  EXPECT_EQ(names.size(), des::kEventTypeCount) << "duplicate event metric name";
  for (std::size_t i = 0; i < prof::kPhaseCount; ++i) {
    std::string name = prof::phase_metric_name(static_cast<prof::Phase>(i));
    EXPECT_TRUE(name.starts_with("prof.phase.")) << name;
    names.insert(name);
  }
  EXPECT_EQ(names.size(), des::kEventTypeCount + prof::kPhaseCount);
}

TEST(Profiler, EagerlyRegistersExactlyTheSchemaProfCatalogue) {
  // A fresh profiler's snapshot must carry every prof.* name the schema
  // declares — zero-count histograms included — so merged profiles are
  // structurally identical no matter which events actually fired.
  std::set<std::string> emitted;
  for (const auto& h : prof::Profiler().snapshot().histograms) {
    emitted.insert(h.name);
    EXPECT_EQ(h.count, 0u) << h.name;
  }
  std::set<std::string> declared;
  for (const metrics::MetricDescriptor& d : metrics::schema()) {
    if (std::string_view(d.name).starts_with("prof.")) declared.insert(std::string(d.name));
  }
  EXPECT_EQ(emitted, declared);
}

// ---- Recording ----------------------------------------------------------

TEST(Profiler, RecordEventLandsInTheTypedHistogram) {
  prof::Profiler profiler;
  profiler.record_event(des::EventType::kVirusSend, 3.0);
  profiler.record_event(des::EventType::kVirusSend, 5.0);
  profiler.record_event(des::EventType::kPhoneRead, 7.0);

  metrics::Snapshot snapshot = profiler.snapshot();
  const metrics::HistogramSample* send =
      snapshot.find_histogram(prof::event_metric_name(des::EventType::kVirusSend));
  ASSERT_NE(send, nullptr);
  EXPECT_EQ(send->count, 2u);
  EXPECT_DOUBLE_EQ(send->sum, 8.0);
  const metrics::HistogramSample* read =
      snapshot.find_histogram(prof::event_metric_name(des::EventType::kPhoneRead));
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->count, 1u);
  const metrics::HistogramSample* generic =
      snapshot.find_histogram(prof::event_metric_name(des::EventType::kGeneric));
  ASSERT_NE(generic, nullptr);
  EXPECT_EQ(generic->count, 0u);
}

TEST(Profiler, ScopedPhaseRecordsOneSampleAndNullIsANoOp) {
  prof::Profiler profiler;
  {
    prof::ScopedPhase phase(&profiler, prof::Phase::kBuild);
  }
  {
    prof::ScopedPhase ignored(nullptr, prof::Phase::kRun);  // must not crash
  }
  metrics::Snapshot snapshot = profiler.snapshot();
  const metrics::HistogramSample* build =
      snapshot.find_histogram(prof::phase_metric_name(prof::Phase::kBuild));
  ASSERT_NE(build, nullptr);
  EXPECT_EQ(build->count, 1u);
  EXPECT_GE(build->sum, 0.0);
  const metrics::HistogramSample* run =
      snapshot.find_histogram(prof::phase_metric_name(prof::Phase::kRun));
  ASSERT_NE(run, nullptr);
  EXPECT_EQ(run->count, 0u);
}

TEST(Profiler, NestedScopesAccountTheOuterSpanAsAtLeastTheInner) {
  prof::Profiler profiler;
  {
    prof::ScopedPhase outer(&profiler, prof::Phase::kRun);
    {
      prof::ScopedPhase inner(&profiler, prof::Phase::kCollect);
      // Busy-wait so the inner span is reliably nonzero on any clock.
      auto until = std::chrono::steady_clock::now() + std::chrono::milliseconds(2);
      while (std::chrono::steady_clock::now() < until) {
      }
    }
  }
  metrics::Snapshot snapshot = profiler.snapshot();
  const metrics::HistogramSample* outer =
      snapshot.find_histogram(prof::phase_metric_name(prof::Phase::kRun));
  const metrics::HistogramSample* inner =
      snapshot.find_histogram(prof::phase_metric_name(prof::Phase::kCollect));
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_GT(inner->sum, 0.0);
  EXPECT_GE(outer->sum, inner->sum);
}

TEST(Profiler, SnapshotsMergeCommutatively) {
  prof::Profiler a;
  a.record_event(des::EventType::kVirusSend, 2.0);
  a.record_phase(prof::Phase::kBuild, 10.0);
  prof::Profiler b;
  b.record_event(des::EventType::kVirusSend, 100.0);
  b.record_event(des::EventType::kBluetoothScan, 1.0);
  b.record_phase(prof::Phase::kRun, 50.0);

  metrics::Snapshot ab = a.snapshot();
  ab.merge(b.snapshot());
  metrics::Snapshot ba = b.snapshot();
  ba.merge(a.snapshot());
  EXPECT_EQ(ab, ba);

  const metrics::HistogramSample* send =
      ab.find_histogram(prof::event_metric_name(des::EventType::kVirusSend));
  ASSERT_NE(send, nullptr);
  EXPECT_EQ(send->count, 2u);
  EXPECT_DOUBLE_EQ(send->sum, 102.0);
}

// ---- Scheduler integration ----------------------------------------------

TEST(Profiler, SchedulerAttributesExecutedEventsToTheirTypes) {
  prof::Profiler profiler;
  des::Scheduler scheduler;
  scheduler.set_event_timer(&profiler);
  int fired = 0;
  for (int i = 0; i < 5; ++i) {
    scheduler.schedule_at(SimTime::minutes(static_cast<double>(i)), des::EventType::kVirusSend,
                          [&fired] { ++fired; });
  }
  scheduler.schedule_at(SimTime::minutes(10.0), [&fired] { ++fired; });  // untyped -> kGeneric
  scheduler.run_to_quiescence();
  ASSERT_EQ(fired, 6);

  metrics::Snapshot snapshot = profiler.snapshot();
  const metrics::HistogramSample* send =
      snapshot.find_histogram(prof::event_metric_name(des::EventType::kVirusSend));
  ASSERT_NE(send, nullptr);
  EXPECT_EQ(send->count, 5u);
  const metrics::HistogramSample* generic =
      snapshot.find_histogram(prof::event_metric_name(des::EventType::kGeneric));
  ASSERT_NE(generic, nullptr);
  EXPECT_EQ(generic->count, 1u);
}

// ---- Quantile estimation ------------------------------------------------

metrics::HistogramSample sample_histogram() {
  metrics::HistogramSample h;
  h.name = "test";
  h.upper_bounds = {1.0, 2.0, 4.0};
  h.bucket_counts = {0, 10, 0, 0};  // all ten samples in (1, 2]
  h.count = 10;
  h.sum = 15.0;
  h.min = 1.2;
  h.max = 1.9;
  return h;
}

TEST(ProfileIo, HistogramQuantileInterpolatesInsideTheWinningBucket) {
  metrics::HistogramSample h = sample_histogram();
  double p50 = prof::histogram_quantile(h, 0.5);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, 2.0);
  EXPECT_LE(prof::histogram_quantile(h, 0.1), p50);
  EXPECT_LE(p50, prof::histogram_quantile(h, 0.9));
}

TEST(ProfileIo, HistogramQuantileHandlesEmptyAndOverflow) {
  metrics::HistogramSample empty;
  empty.upper_bounds = {1.0};
  empty.bucket_counts = {0, 0};
  EXPECT_DOUBLE_EQ(prof::histogram_quantile(empty, 0.5), 0.0);

  metrics::HistogramSample overflow;
  overflow.name = "overflow";
  overflow.upper_bounds = {1.0};
  overflow.bucket_counts = {0, 4};  // everything past the last bound
  overflow.count = 4;
  overflow.sum = 40.0;
  overflow.min = 8.0;
  overflow.max = 12.0;
  EXPECT_DOUBLE_EQ(prof::histogram_quantile(overflow, 0.99), 12.0);
}

// ---- Profile document ---------------------------------------------------

TEST(ProfileIo, ProfileToJsonRequiresProfilingData) {
  metrics::ReportInfo info;
  info.scenario = "empty";
  info.replications = 1;
  info.threads = 1;
  metrics::Snapshot no_prof_data;
  EXPECT_THROW((void)prof::profile_to_json(info, no_prof_data), std::invalid_argument);
}

TEST(ProfileIo, ProfileDocumentCarriesPhasesEventsAndIdentity) {
  prof::Profiler profiler;
  profiler.record_event(des::EventType::kVirusSend, 10.0);
  profiler.record_event(des::EventType::kPhoneRead, 30.0);
  profiler.record_phase(prof::Phase::kRun, 5.0);

  metrics::ReportInfo info;
  info.scenario = "prof-test";
  info.replications = 3;
  info.threads = 2;
  info.master_seed = 7;
  json::Value profile = prof::profile_to_json(info, profiler.snapshot());
  const json::Object& root = profile.as_object();

  EXPECT_EQ(root.at("type").as_string(), "mvsim-profile");
  EXPECT_EQ(root.at("scenario").as_string(), "prof-test");
  EXPECT_DOUBLE_EQ(root.at("replications").as_number(), 3.0);
  // The eager catalogue puts every event type in the document; sorting
  // is by total time descending, so the read (30us) outranks the send
  // (10us) and both outrank the zero-count rest.
  const json::Array& events = root.at("events").as_array();
  ASSERT_EQ(events.size(), des::kEventTypeCount);
  EXPECT_EQ(events[0].as_object().at("name").as_string(), "phone_read");
  EXPECT_EQ(events[1].as_object().at("name").as_string(), "virus_send");
  EXPECT_DOUBLE_EQ(root.at("event_wall_ms").as_number(), 0.04);

  std::ostringstream report;
  prof::write_profile_report(profile, report, 1);
  EXPECT_NE(report.str().find("phone_read"), std::string::npos);
  EXPECT_EQ(report.str().find("virus_send"), std::string::npos) << "--top 1 must truncate";
}

}  // namespace
}  // namespace mvsim
