// Unit tests for src/config: durations, scenario JSON bindings,
// results export.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "config/duration.h"
#include "config/results_io.h"
#include "config/scenario_io.h"
#include "core/presets.h"
#include "core/runner.h"

namespace mvsim::config {
namespace {

TEST(Duration, ParsesEveryUnit) {
  EXPECT_EQ(parse_duration("90s"), SimTime::seconds(90.0));
  EXPECT_EQ(parse_duration("30min"), SimTime::minutes(30.0));
  EXPECT_EQ(parse_duration("30m"), SimTime::minutes(30.0));
  EXPECT_EQ(parse_duration("6h"), SimTime::hours(6.0));
  EXPECT_EQ(parse_duration("6hr"), SimTime::hours(6.0));
  EXPECT_EQ(parse_duration("1.5d"), SimTime::days(1.5));
  EXPECT_EQ(parse_duration("2 days"), SimTime::days(2.0));
  EXPECT_EQ(parse_duration("  45 min  "), SimTime::minutes(45.0));
  EXPECT_EQ(parse_duration("0h"), SimTime::zero());
}

TEST(Duration, RejectsGarbage) {
  EXPECT_THROW((void)parse_duration(""), std::invalid_argument);
  EXPECT_THROW((void)parse_duration("30"), std::invalid_argument);
  EXPECT_THROW((void)parse_duration("fast"), std::invalid_argument);
  EXPECT_THROW((void)parse_duration("30 fortnights"), std::invalid_argument);
  EXPECT_THROW((void)parse_duration("h30"), std::invalid_argument);
}

TEST(Duration, FormatsWithNaturalUnits) {
  EXPECT_EQ(format_duration(SimTime::days(2.0)), "2d");
  EXPECT_EQ(format_duration(SimTime::hours(6.0)), "6h");
  EXPECT_EQ(format_duration(SimTime::minutes(30.0)), "30min");
  EXPECT_EQ(format_duration(SimTime::seconds(90.0)), "90s");
  EXPECT_EQ(format_duration(SimTime::hours(36.0)), "36h") << "1.5d is not integral in days";
  EXPECT_EQ(format_duration(SimTime::zero()), "0min");
}

TEST(Duration, FormatParseRoundTrip) {
  for (SimTime t : {SimTime::minutes(1.0), SimTime::minutes(90.0), SimTime::hours(24.0),
                    SimTime::days(18.0), SimTime::seconds(10.0)}) {
    EXPECT_EQ(parse_duration(format_duration(t)), t);
  }
}

TEST(ScenarioIo, DefaultScenarioRoundTrips) {
  core::ScenarioConfig original;
  core::ScenarioConfig round = scenario_from_json(to_json(original));
  EXPECT_EQ(round.name, original.name);
  EXPECT_EQ(round.population, original.population);
  EXPECT_DOUBLE_EQ(round.susceptible_fraction, original.susceptible_fraction);
  EXPECT_EQ(round.horizon, original.horizon);
  EXPECT_EQ(round.virus.name, original.virus.name);
  EXPECT_EQ(round.virus.budget, original.virus.budget);
  EXPECT_EQ(round.responses.enabled_count(), 0);
}

TEST(ScenarioIo, EveryFigurePresetRoundTrips) {
  std::vector<core::ScenarioConfig> presets;
  for (const auto& profile : virus::paper_virus_suite()) {
    presets.push_back(core::baseline_scenario(profile));
  }
  presets.push_back(core::fig2_scan_scenario(SimTime::hours(6.0)));
  presets.push_back(core::fig3_detection_scenario(0.95));
  presets.push_back(core::fig4_education_scenario(virus::virus2(), 0.20));
  presets.push_back(core::fig5_immunization_scenario(SimTime::hours(24.0), SimTime::hours(6.0)));
  presets.push_back(core::fig6_monitoring_scenario(SimTime::minutes(15.0)));
  presets.push_back(core::fig7_blacklist_scenario(10));

  for (const auto& preset : presets) {
    core::ScenarioConfig round = scenario_from_json(to_json(preset));
    EXPECT_EQ(json::stringify(to_json(round), 0), json::stringify(to_json(preset), 0))
        << preset.name << ": JSON round-trip must be a fixed point";
    EXPECT_EQ(round.responses.enabled_count(), preset.responses.enabled_count());
    EXPECT_EQ(round.virus.targeting, preset.virus.targeting);
    EXPECT_EQ(round.horizon, preset.horizon);
  }
}

TEST(ScenarioIo, VirusPresetKeySeedsProfile) {
  core::ScenarioConfig config = scenario_from_text(R"({
    "virus": {"preset": "virus3"},
    "horizon": "25h",
    "sample_step": "15min"
  })");
  EXPECT_EQ(config.virus.name, "Virus 3");
  EXPECT_EQ(config.virus.targeting, virus::TargetingMode::kRandomDialing);
}

TEST(ScenarioIo, PresetWithOverrides) {
  core::ScenarioConfig config = scenario_from_text(R"({
    "virus": {"preset": "virus1", "min_message_gap": "45min", "budget_limit": 10}
  })");
  EXPECT_EQ(config.virus.min_message_gap, SimTime::minutes(45.0));
  EXPECT_EQ(config.virus.budget_limit, 10u);
  EXPECT_EQ(config.virus.budget, virus::BudgetKind::kPerReboot) << "non-overridden keys kept";
}

TEST(ScenarioIo, ResponsesDecodeFromJson) {
  core::ScenarioConfig config = scenario_from_text(R"({
    "responses": {
      "gateway_scan": {"activation_delay": "12h"},
      "monitoring": {"forced_wait": "15min", "window_message_threshold": 9},
      "user_education": {"eventual_acceptance": 0.1}
    }
  })");
  ASSERT_TRUE(config.responses.gateway_scan.has_value());
  EXPECT_EQ(config.responses.gateway_scan->activation_delay, SimTime::hours(12.0));
  ASSERT_TRUE(config.responses.monitoring.has_value());
  EXPECT_EQ(config.responses.monitoring->forced_wait, SimTime::minutes(15.0));
  EXPECT_EQ(config.responses.monitoring->window_message_threshold, 9u);
  ASSERT_TRUE(config.responses.user_education.has_value());
  EXPECT_DOUBLE_EQ(config.responses.user_education->eventual_acceptance, 0.1);
  EXPECT_FALSE(config.responses.blacklist.has_value());
}

TEST(ScenarioIo, ProximityChannelRoundTrips) {
  core::ScenarioConfig original;
  original.proximity = core::ProximityChannelConfig{};
  original.proximity->grid_width = 8;
  original.proximity->scan_interval_mean = SimTime::minutes(45.0);
  core::ScenarioConfig round = scenario_from_json(to_json(original));
  ASSERT_TRUE(round.proximity.has_value());
  EXPECT_EQ(round.proximity->grid_width, 8u);
  EXPECT_EQ(round.proximity->scan_interval_mean, SimTime::minutes(45.0));

  core::ScenarioConfig no_proximity = scenario_from_json(to_json(core::ScenarioConfig{}));
  EXPECT_FALSE(no_proximity.proximity.has_value());

  core::ScenarioConfig from_text = scenario_from_text(
      R"({"proximity": {"grid_width": 4, "grid_height": 4, "dwell_mean": "20min"}})");
  ASSERT_TRUE(from_text.proximity.has_value());
  EXPECT_EQ(from_text.proximity->dwell_mean, SimTime::minutes(20.0));
  EXPECT_THROW(
      (void)scenario_from_text(R"({"proximity": {"cell_count": 9}})"),
      std::invalid_argument);
}

TEST(ScenarioIo, UnknownKeysAreRejectedWithPath) {
  try {
    (void)scenario_from_text(R"({"populaton": 500})");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("$.populaton"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("unknown key"), std::string::npos);
  }
  EXPECT_THROW((void)scenario_from_text(R"({"virus": {"presset": "virus1"}})"),
               std::invalid_argument);
  EXPECT_THROW((void)scenario_from_text(R"({"responses": {"gateway_scan": {"delay": "6h"}}})"),
               std::invalid_argument);
}

TEST(ScenarioIo, TypeErrorsCarryPath) {
  try {
    (void)scenario_from_text(R"({"population": "lots"})");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("$.population"), std::string::npos);
  }
  EXPECT_THROW((void)scenario_from_text(R"({"read_delay_mean": 60})"), std::invalid_argument)
      << "durations must be unit-tagged strings";
  EXPECT_THROW((void)scenario_from_text(R"({"virus": {"targeting": "telepathy"}})"),
               std::invalid_argument);
  EXPECT_THROW((void)scenario_from_text(R"({"virus": {"preset": "virus9"}})"),
               std::invalid_argument);
  EXPECT_THROW((void)scenario_from_text(R"({"population": 12.5})"), std::invalid_argument);
}

TEST(ScenarioIo, DecodedScenarioIsValidated) {
  // Structurally fine JSON, semantically invalid config.
  EXPECT_THROW((void)scenario_from_text(R"({"population": 1})"), std::invalid_argument);
  EXPECT_THROW((void)scenario_from_text(R"({"eventual_acceptance": 0.9})"),
               std::invalid_argument);
}

TEST(ScenarioIo, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/mvsim_scenario_test.json";
  core::ScenarioConfig original = core::fig6_monitoring_scenario(SimTime::minutes(30.0));
  save_scenario_file(original, path);
  core::ScenarioConfig loaded = load_scenario_file(path);
  EXPECT_EQ(json::stringify(to_json(loaded), 0), json::stringify(to_json(original), 0));
  std::remove(path.c_str());
}

TEST(ScenarioIo, MissingFileThrows) {
  EXPECT_THROW((void)load_scenario_file("/nonexistent/path/scenario.json"),
               std::runtime_error);
}

TEST(ScenarioIo, SharedSeedRoundTrips) {
  core::ScenarioConfig config;
  config.topology.shared_seed = 0xFEED;
  json::Value encoded = to_json(config);
  core::ScenarioConfig decoded = scenario_from_json(encoded);
  ASSERT_TRUE(decoded.topology.shared_seed.has_value());
  EXPECT_EQ(*decoded.topology.shared_seed, 0xFEEDu);

  core::ScenarioConfig plain;
  json::Value plain_encoded = to_json(plain);
  EXPECT_FALSE(scenario_from_json(plain_encoded).topology.shared_seed.has_value())
      << "unset shared_seed must stay unset through a round trip";
}

TEST(ResultsIo, SummaryJsonHasTheHeadlineNumbers) {
  core::ScenarioConfig config = core::baseline_scenario(virus::virus1());
  config.population = 150;
  config.topology.mean_degree = 15.0;
  config.horizon = SimTime::days(3.0);
  core::RunnerOptions options;
  options.replications = 3;
  core::ExperimentResult result = core::run_experiment(config, options);

  json::Value summary = results_to_json(config, result);
  const json::Object& o = summary.as_object();
  EXPECT_EQ(o.at("replications").as_number(), 3.0);
  EXPECT_GT(o.at("final_infections").as_object().at("mean").as_number(), 0.0);
  EXPECT_TRUE(o.at("hours_to_plateau_fraction").is_object());
  EXPECT_DOUBLE_EQ(o.at("expected_unrestrained_plateau").as_number(), 48.0);
  // The summary must itself be valid JSON end-to-end.
  EXPECT_NO_THROW((void)json::parse(json::stringify(summary, 2)));
}

TEST(ResultsIo, CurveCsvHasHeaderAndGridRows) {
  core::ScenarioConfig config = core::baseline_scenario(virus::virus1());
  config.population = 120;
  config.topology.mean_degree = 12.0;
  config.horizon = SimTime::hours(10.0);
  core::RunnerOptions options;
  options.replications = 2;
  core::ExperimentResult result = core::run_experiment(config, options);

  std::ostringstream out;
  write_curve_csv(result, out);
  std::istringstream lines(out.str());
  std::string header;
  std::getline(lines, header);
  EXPECT_EQ(header, "hours,mean_infected,stddev,ci95,min,max");
  int rows = 0;
  for (std::string line; std::getline(lines, line);) ++rows;
  EXPECT_EQ(rows, 11) << "grid 0..10h at 1h step";
}

}  // namespace
}  // namespace mvsim::config
