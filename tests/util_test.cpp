// Unit tests for src/util: SimTime, CSV writer, validation helper.
#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.h"
#include "util/logging.h"
#include "util/sim_time.h"
#include "util/validation.h"

namespace mvsim {
namespace {

TEST(SimTime, UnitConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(SimTime::minutes(90.0).to_hours(), 1.5);
  EXPECT_DOUBLE_EQ(SimTime::hours(2.0).to_minutes(), 120.0);
  EXPECT_DOUBLE_EQ(SimTime::days(1.0).to_hours(), 24.0);
  EXPECT_DOUBLE_EQ(SimTime::seconds(90.0).to_minutes(), 1.5);
  EXPECT_DOUBLE_EQ(SimTime::hours(36.0).to_days(), 1.5);
}

TEST(SimTime, DefaultIsZero) {
  SimTime t;
  EXPECT_EQ(t, SimTime::zero());
  EXPECT_DOUBLE_EQ(t.to_minutes(), 0.0);
}

TEST(SimTime, ArithmeticBehavesLikeDurations) {
  SimTime t = SimTime::hours(1.0) + SimTime::minutes(30.0);
  EXPECT_DOUBLE_EQ(t.to_minutes(), 90.0);
  t -= SimTime::minutes(60.0);
  EXPECT_DOUBLE_EQ(t.to_minutes(), 30.0);
  EXPECT_DOUBLE_EQ((t * 4.0).to_hours(), 2.0);
  EXPECT_DOUBLE_EQ((2.0 * t).to_minutes(), 60.0);
  EXPECT_DOUBLE_EQ((SimTime::hours(1.0) / 2.0).to_minutes(), 30.0);
  EXPECT_DOUBLE_EQ(SimTime::hours(2.0) / SimTime::minutes(30.0), 4.0);
}

TEST(SimTime, ComparisonIsTotalOrder) {
  EXPECT_LT(SimTime::minutes(59.0), SimTime::hours(1.0));
  EXPECT_GT(SimTime::days(1.0), SimTime::hours(23.0));
  EXPECT_EQ(SimTime::hours(24.0), SimTime::days(1.0));
  EXPECT_LE(SimTime::zero(), SimTime::zero());
}

TEST(SimTime, InfinityPredicates) {
  EXPECT_FALSE(SimTime::infinity().is_finite());
  EXPECT_TRUE(SimTime::infinity().is_nonnegative());
  EXPECT_TRUE(SimTime::hours(1.0).is_finite());
  EXPECT_FALSE((SimTime::zero() - SimTime::hours(1.0)).is_nonnegative());
  EXPECT_LT(SimTime::days(10000.0), SimTime::infinity());
}

TEST(SimTime, MinMaxHelpers) {
  EXPECT_EQ(min(SimTime::hours(1.0), SimTime::minutes(30.0)), SimTime::minutes(30.0));
  EXPECT_EQ(max(SimTime::hours(1.0), SimTime::minutes(30.0)), SimTime::hours(1.0));
}

TEST(SimTime, ToStringPicksNaturalUnit) {
  EXPECT_EQ(SimTime::minutes(30.0).to_string(), "30.00 min");
  EXPECT_EQ(SimTime::hours(2.0).to_string(), "2.00 h");
  EXPECT_EQ(SimTime::days(3.0).to_string(), "3.00 d");
  EXPECT_EQ(SimTime::infinity().to_string(), "+inf");
}

TEST(CsvWriter, WritesHeaderAndRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"hours", "count"});
  csv.row(1.5, 12);
  csv.row(2.0, 13);
  EXPECT_EQ(out.str(), "hours,count\n1.5,12\n2,13\n");
  EXPECT_EQ(csv.rows_written(), 2);
}

TEST(CsvWriter, QuotesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::quote("plain"), "plain");
  EXPECT_EQ(CsvWriter::quote("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::quote("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::quote("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, MixedFieldTypes) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row("label", 3.25, 7, std::size_t{9});
  EXPECT_EQ(out.str(), "label,3.25,7,9\n");
}

TEST(ValidationErrors, CollectsAllProblems) {
  ValidationErrors errors("Widget");
  EXPECT_TRUE(errors.ok());
  EXPECT_FALSE(errors.require(false, "first"));
  EXPECT_TRUE(errors.require(true, "not recorded"));
  errors.add("second");
  EXPECT_FALSE(errors.ok());
  ASSERT_EQ(errors.problems().size(), 2u);
  EXPECT_EQ(errors.problems()[0], "Widget: first");
  EXPECT_EQ(errors.to_string(), "Widget: first; Widget: second");
}

TEST(ValidationErrors, ThrowIfInvalid) {
  ValidationErrors ok_errors("A");
  EXPECT_NO_THROW(ok_errors.throw_if_invalid());
  ValidationErrors bad("B");
  bad.add("boom");
  EXPECT_THROW(bad.throw_if_invalid(), std::invalid_argument);
}

TEST(ValidationErrors, MergeCombinesContexts) {
  ValidationErrors outer("Outer");
  ValidationErrors inner("Inner");
  inner.add("bad field");
  outer.merge(inner);
  ASSERT_EQ(outer.problems().size(), 1u);
  EXPECT_EQ(outer.problems()[0], "Inner: bad field");
}

TEST(Logger, RespectsLevel) {
  Logger& logger = Logger::global();
  LogLevel old_level = logger.level();
  logger.set_level(LogLevel::kError);
  logger.reset_counter();
  MVSIM_INFO() << "hidden";
  EXPECT_EQ(logger.lines_emitted(), 0);
  MVSIM_ERROR() << "shown";
  EXPECT_EQ(logger.lines_emitted(), 1);
  logger.set_level(old_level);
}

TEST(Logger, LevelNames) {
  EXPECT_STREQ(to_string(LogLevel::kTrace), "TRACE");
  EXPECT_STREQ(to_string(LogLevel::kError), "ERROR");
  EXPECT_STREQ(to_string(LogLevel::kOff), "OFF");
}

}  // namespace
}  // namespace mvsim
