// Unit + integration tests for src/mobility: grid occupancy, movement,
// and the Bluetooth worm extension.
#include <gtest/gtest.h>

#include <numeric>

#include "mobility/bluetooth.h"
#include "mobility/grid.h"
#include "mobility/movement.h"

namespace mvsim::mobility {
namespace {

TEST(MobilityGrid, PlaceAndQuery) {
  MobilityGrid grid(4, 4, 10);
  EXPECT_EQ(grid.cell_count(), 16u);
  grid.place(3, 5);
  EXPECT_EQ(grid.cell_of(3), 5u);
  EXPECT_EQ(grid.occupancy(5), 1u);
  ASSERT_EQ(grid.phones_in(5).size(), 1u);
  EXPECT_EQ(grid.phones_in(5)[0], 3u);
}

TEST(MobilityGrid, RejectsBadArguments) {
  EXPECT_THROW(MobilityGrid(0, 4, 10), std::invalid_argument);
  MobilityGrid grid(4, 4, 10);
  EXPECT_THROW(grid.place(10, 0), std::out_of_range);
  EXPECT_THROW(grid.place(0, 16), std::out_of_range);
  grid.place(0, 0);
  EXPECT_THROW(grid.place(0, 1), std::logic_error);
  EXPECT_THROW((void)grid.cell_of(1), std::out_of_range) << "unplaced phone";
  EXPECT_THROW((void)grid.phones_in(99), std::out_of_range);
}

TEST(MobilityGrid, UniformPlacementCoversEveryPhone) {
  MobilityGrid grid(8, 8, 200);
  rng::Stream stream(1);
  grid.place_all_uniform(stream);
  std::size_t total = 0;
  for (CellId c = 0; c < grid.cell_count(); ++c) total += grid.occupancy(c);
  EXPECT_EQ(total, 200u);
  EXPECT_DOUBLE_EQ(grid.mean_occupancy(), 200.0 / 64.0);
  EXPECT_GE(grid.max_occupancy(), 4u);
}

TEST(MobilityGrid, MoveToNeighbourPreservesOccupancyInvariant) {
  MobilityGrid grid(5, 5, 50);
  rng::Stream stream(2);
  grid.place_all_uniform(stream);
  for (int step = 0; step < 2000; ++step) {
    PhoneId phone = static_cast<PhoneId>(stream.uniform_index(50));
    CellId before = grid.cell_of(phone);
    grid.move_to_random_neighbour(phone, stream);
    CellId after = grid.cell_of(phone);
    ASSERT_NE(before, after) << "a move always changes cell on a >1x1 grid";
    // Torus 4-neighbourhood: cells differ in exactly one coordinate by 1 (mod 5).
    std::uint32_t bx = before % 5, by = before / 5, ax = after % 5, ay = after / 5;
    std::uint32_t dx = std::min((bx - ax + 5) % 5, (ax - bx + 5) % 5);
    std::uint32_t dy = std::min((by - ay + 5) % 5, (ay - by + 5) % 5);
    ASSERT_EQ(dx + dy, 1u);
  }
  std::size_t total = 0;
  for (CellId c = 0; c < grid.cell_count(); ++c) total += grid.occupancy(c);
  EXPECT_EQ(total, 50u) << "no phone lost or duplicated across 2000 moves";
}

TEST(MobilityGrid, SampleCoLocatedExcludesSelf) {
  MobilityGrid grid(2, 2, 3);
  grid.place(0, 0);
  grid.place(1, 0);
  grid.place(2, 1);
  rng::Stream stream(3);
  PhoneId out = 99;
  ASSERT_TRUE(grid.sample_co_located(0, stream, out));
  EXPECT_EQ(out, 1u);
  EXPECT_FALSE(grid.sample_co_located(2, stream, out)) << "alone in its cell";
}

TEST(MovementProcess, PhonesActuallyMove) {
  des::Scheduler scheduler;
  MobilityGrid grid(6, 6, 30);
  rng::Stream stream(4);
  grid.place_all_uniform(stream);
  MovementProcess movement(scheduler, grid, stream, SimTime::minutes(30.0));
  scheduler.run_until(SimTime::hours(10.0));
  // 30 phones x ~20 moves expected in 10 h.
  EXPECT_GT(movement.moves_performed(), 300u);
  EXPECT_LT(movement.moves_performed(), 1500u);
}

TEST(MovementProcess, RejectsNonPositiveDwell) {
  des::Scheduler scheduler;
  MobilityGrid grid(2, 2, 1);
  rng::Stream stream(5);
  grid.place_all_uniform(stream);
  EXPECT_THROW(MovementProcess(scheduler, grid, stream, SimTime::zero()),
               std::invalid_argument);
}

// ---- Bluetooth worm ----

BluetoothScenarioConfig small_bluetooth() {
  BluetoothScenarioConfig config;
  config.population = 200;
  config.grid_width = 7;
  config.grid_height = 7;
  config.horizon = SimTime::days(5.0);
  return config;
}

TEST(BluetoothConfig, DefaultsValidate) {
  EXPECT_TRUE(BluetoothScenarioConfig{}.validate().ok());
  EXPECT_DOUBLE_EQ(BluetoothScenarioConfig{}.expected_unrestrained_plateau(), 320.0);
}

TEST(BluetoothConfig, ValidationCatchesBadFields) {
  BluetoothScenarioConfig config = small_bluetooth();
  config.grid_width = 0;
  EXPECT_FALSE(config.validate().ok());
  config = small_bluetooth();
  config.scan_interval_mean = SimTime::zero();
  EXPECT_FALSE(config.validate().ok());
  config = small_bluetooth();
  config.eventual_acceptance = 0.9;
  EXPECT_FALSE(config.validate().ok());
  config = small_bluetooth();
  BluetoothImmunizationConfig immunization;
  immunization.detection_time = SimTime::minutes(-1.0);
  config.immunization = immunization;
  EXPECT_FALSE(config.validate().ok());
}

TEST(BluetoothSimulation, WormSpreadsThroughProximity) {
  BluetoothSimulation sim(small_bluetooth(), 77);
  BluetoothReplicationResult r = sim.run();
  EXPECT_GT(r.total_infected, 10u) << "the worm spreads";
  EXPECT_GT(r.push_attempts, r.total_infected) << "more offers than acceptances";
  // Plateau bounded by the consent model: 200 x 0.8 x 0.40 = 64.
  EXPECT_LE(r.total_infected, 80u);
}

TEST(BluetoothSimulation, DeterministicGivenSeed) {
  BluetoothScenarioConfig config = small_bluetooth();
  BluetoothReplicationResult a = BluetoothSimulation(config, 42).run();
  BluetoothReplicationResult b = BluetoothSimulation(config, 42).run();
  EXPECT_EQ(a.total_infected, b.total_infected);
  EXPECT_EQ(a.push_attempts, b.push_attempts);
}

TEST(BluetoothSimulation, SparserWorldSpreadsSlower) {
  BluetoothScenarioConfig dense = small_bluetooth();  // 7x7: ~4 phones/cell
  BluetoothScenarioConfig sparse = small_bluetooth();
  sparse.grid_width = 25;
  sparse.grid_height = 25;  // 0.32 phones/cell: encounters are rare
  BluetoothExperimentResult dense_result = run_bluetooth_experiment(dense, 4, 9);
  BluetoothExperimentResult sparse_result = run_bluetooth_experiment(sparse, 4, 9);
  // Compare early-growth speed (time to half the consent plateau of
  // 64): the final levels converge once both saturate, but a sparse
  // world takes distinctly longer to get there.
  SimTime dense_half = dense_result.curve.mean_first_time_at_or_above(32.0);
  SimTime sparse_half = sparse_result.curve.mean_first_time_at_or_above(32.0);
  EXPECT_LT(dense_half + SimTime::hours(6.0), sparse_half)
      << "proximity spread is density-limited";
}

TEST(BluetoothSimulation, EducationLowersThePlateau) {
  BluetoothScenarioConfig config = small_bluetooth();
  BluetoothExperimentResult base = run_bluetooth_experiment(config, 4, 10);
  response::UserEducationConfig education;
  education.eventual_acceptance = 0.10;
  config.user_education = education;
  BluetoothExperimentResult educated = run_bluetooth_experiment(config, 4, 10);
  EXPECT_LT(educated.final_infections.mean(), 0.6 * base.final_infections.mean());
}

TEST(BluetoothSimulation, ImmunizationStopsTheWorm) {
  BluetoothScenarioConfig config = small_bluetooth();
  BluetoothExperimentResult base = run_bluetooth_experiment(config, 4, 11);
  BluetoothImmunizationConfig immunization;
  immunization.detection_time = SimTime::hours(6.0);
  immunization.development_time = SimTime::hours(6.0);
  immunization.deployment_duration = SimTime::hours(1.0);
  config.immunization = immunization;
  BluetoothExperimentResult patched = run_bluetooth_experiment(config, 4, 11);
  EXPECT_LT(patched.final_infections.mean(), 0.8 * base.final_infections.mean());
  // After the rollout the curve must be flat: compare day 3 to final.
  EXPECT_NEAR(patched.curve.mean_at(SimTime::days(3.0)), patched.curve.final_mean(), 1.0);
}

TEST(BluetoothSimulation, RunTwiceThrows) {
  BluetoothSimulation sim(small_bluetooth(), 1);
  (void)sim.run();
  EXPECT_THROW((void)sim.run(), std::logic_error);
}

TEST(BluetoothExperiment, AggregatesReplications) {
  BluetoothExperimentResult result = run_bluetooth_experiment(small_bluetooth(), 3, 5);
  EXPECT_EQ(result.curve.replication_count(), 3u);
  EXPECT_EQ(result.final_infections.count(), 3u);
  EXPECT_THROW((void)run_bluetooth_experiment(small_bluetooth(), 0, 5), std::invalid_argument);
}

}  // namespace
}  // namespace mvsim::mobility
