// Tests for the streamed CSR construction path and the shared-graph
// cache: pinned pre-refactor fingerprints (the generators must emit
// byte-identical graphs and consume identical RNG draw counts through
// any internal restructuring), streamed-vs-materialized equivalence,
// and GraphCache reuse/rebuild/stream-restore semantics.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "graph/contact_graph.h"
#include "graph/csr_builder.h"
#include "graph/generators.h"
#include "graph/graph_cache.h"
#include "rng/stream.h"

namespace mvsim::graph {
namespace {

std::uint64_t fnv(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 0x100000001B3ull;
  }
  return h;
}

/// Order-sensitive digest of the full CSR content (degrees + sorted
/// contact lists). Two graphs with equal fingerprints are structurally
/// identical for the simulator's purposes.
std::uint64_t graph_fingerprint(const ContactGraph& g) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = fnv(h, g.node_count());
  h = fnv(h, g.edge_count());
  for (PhoneId p = 0; p < g.node_count(); ++p) {
    h = fnv(h, g.degree(p));
    for (PhoneId c : g.contacts(p)) h = fnv(h, c);
  }
  return h;
}

/// Recovers the (a < b) edge list from a built graph.
std::vector<ContactGraph::Edge> extract_edges(const ContactGraph& g) {
  std::vector<ContactGraph::Edge> edges;
  edges.reserve(g.edge_count());
  for (PhoneId a = 0; a < g.node_count(); ++a) {
    for (PhoneId b : g.contacts(a)) {
      if (a < b) edges.push_back({a, b});
    }
  }
  return edges;
}

// ---- Pinned pre-refactor fingerprints ----
//
// Captured at the materialized-edge-vector HEAD immediately before the
// streaming refactor. These pin BOTH the graph content and the RNG
// draw count: a generator change that alters either breaks the golden
// curves, and this test localizes the break to the generator.

TEST(GeneratorFingerprint, PowerLawDefaultMatchesPreRefactor) {
  PowerLawConfig plc;  // paper defaults: n=1000, mean 80, alpha 2
  rng::Stream s(0x9e3779b97f4a7c15ull);
  ContactGraph g = generate_power_law(plc, s);
  EXPECT_EQ(graph_fingerprint(g), 0xa22a8033c09d766full);
  EXPECT_EQ(s.draw_count(), 97615u);
}

TEST(GeneratorFingerprint, PowerLawJitterMatchesPreRefactor) {
  PowerLawConfig plc;
  plc.node_count = 2500;
  plc.target_mean_degree = 12.0;
  plc.alpha = 2.6;
  plc.locality_jitter = 0.08;
  rng::Stream s(42);
  ContactGraph g = generate_power_law(plc, s);
  EXPECT_EQ(graph_fingerprint(g), 0x87c158e91ae64c63ull);
  EXPECT_EQ(s.draw_count(), 37171u);
}

TEST(GeneratorFingerprint, ErdosRenyiMatchesPreRefactor) {
  rng::Stream s(7);
  ContactGraph g = generate_erdos_renyi(3000, 9.5, s);
  EXPECT_EQ(graph_fingerprint(g), 0x43eef0797687ed2full);
  EXPECT_EQ(s.draw_count(), 14311u);
}

TEST(GeneratorFingerprint, BarabasiAlbertMatchesPreRefactor) {
  rng::Stream s(1234567);
  ContactGraph g = generate_barabasi_albert(2000, 4, s);
  EXPECT_EQ(graph_fingerprint(g), 0x2c9b6f9818b4bc85ull);
  EXPECT_EQ(s.draw_count(), 8051u);
}

TEST(GeneratorFingerprint, RegularRingMatchesPreRefactor) {
  ContactGraph g = generate_regular_ring(1000, 8);
  EXPECT_EQ(graph_fingerprint(g), 0xd8b36e4814ed8de9ull);
}

// ---- Streamed vs materialized construction ----
//
// The generators stream edges through CsrBuilder (two passes, no O(E)
// edge vector). Rebuilding from the extracted edge list through the
// public span constructor — the materialized path — must produce an
// identical CSR.

TEST(StreamedCsr, PowerLawEqualsMaterializedRebuild) {
  PowerLawConfig plc;
  plc.node_count = 800;
  plc.target_mean_degree = 20.0;
  rng::Stream s(99);
  ContactGraph streamed = generate_power_law(plc, s);
  std::vector<ContactGraph::Edge> edges = extract_edges(streamed);
  ContactGraph rebuilt(streamed.node_count(), edges);
  EXPECT_EQ(graph_fingerprint(rebuilt), graph_fingerprint(streamed));
}

TEST(StreamedCsr, ErdosRenyiEqualsMaterializedRebuild) {
  rng::Stream s(5);
  ContactGraph streamed = generate_erdos_renyi(1200, 7.0, s);
  std::vector<ContactGraph::Edge> edges = extract_edges(streamed);
  ContactGraph rebuilt(streamed.node_count(), edges);
  EXPECT_EQ(graph_fingerprint(rebuilt), graph_fingerprint(streamed));
}

TEST(StreamedCsr, BuilderRejectsBadEdges) {
  CsrBuilder builder(10);
  EXPECT_THROW(builder.count_edge(3, 3), std::invalid_argument);  // self-loop
  EXPECT_THROW(builder.count_edge(0, 10), std::invalid_argument);  // out of range
}

TEST(StreamedCsr, BuilderRejectsDuplicateEdges) {
  CsrBuilder builder(4);
  builder.count_edge(0, 1);
  builder.count_edge(1, 0);
  builder.begin_fill();
  builder.fill_edge(0, 1);
  builder.fill_edge(1, 0);
  EXPECT_THROW(std::move(builder).finish(), std::invalid_argument);
}

TEST(StreamedCsr, EmptyBuilderYieldsEmptyGraph) {
  CsrBuilder builder(5);
  ContactGraph g = std::move(builder).finish();
  EXPECT_EQ(g.node_count(), 5u);
  EXPECT_EQ(g.edge_count(), 0u);
}

// ---- GraphCache ----

CachedGraph build_ring(PhoneId n, std::uint32_t k, std::uint64_t seed) {
  rng::Stream stream(seed);
  (void)stream.uniform01();  // consume one word so post-build state is distinctive
  auto g = std::make_shared<const ContactGraph>(generate_regular_ring(n, k));
  return {std::move(g), stream};
}

TEST(GraphCache, SameKeyReusesGraphObject) {
  GraphCache cache;
  GraphCacheKey key{123, 456};
  auto first = cache.get_or_build(key, [] { return build_ring(100, 4, 1); });
  auto second = cache.get_or_build(key, [] { return build_ring(100, 4, 1); });
  EXPECT_EQ(first->graph.get(), second->graph.get()) << "hit must share the same object";
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(GraphCache, DifferentSeedOrParamsRebuilds) {
  GraphCache cache;
  auto a = cache.get_or_build({1, 10}, [] { return build_ring(100, 4, 1); });
  auto b = cache.get_or_build({2, 10}, [] { return build_ring(100, 4, 2); });
  auto c = cache.get_or_build({1, 11}, [] { return build_ring(100, 6, 1); });
  EXPECT_NE(a->graph.get(), b->graph.get());
  EXPECT_NE(a->graph.get(), c->graph.get());
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(GraphCache, HitRestoresPostBuildStreamState) {
  GraphCache cache;
  GraphCacheKey key{77, 0};
  auto built = cache.get_or_build(key, [] { return build_ring(50, 4, 77); });
  auto hit = cache.get_or_build(key, [] { return build_ring(50, 4, 77); });
  // The cached stream must replay identically: same state, same
  // subsequent draws, same draw_count (rng.draws telemetry relies on
  // the count surviving the round-trip).
  rng::Stream replay_a = built->post_build_stream;
  rng::Stream replay_b = hit->post_build_stream;
  EXPECT_EQ(replay_a.draw_count(), replay_b.draw_count());
  for (int i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(replay_a.uniform01(), replay_b.uniform01());
  }
}

TEST(GraphCache, EvictsLeastRecentlyUsedAtCapacity) {
  GraphCache cache(2);
  auto a = cache.get_or_build({1, 0}, [] { return build_ring(10, 2, 1); });
  auto b = cache.get_or_build({2, 0}, [] { return build_ring(10, 2, 2); });
  (void)cache.get_or_build({1, 0}, [] { return build_ring(10, 2, 1); });  // touch a
  auto c = cache.get_or_build({3, 0}, [] { return build_ring(10, 2, 3); });  // evicts b
  EXPECT_EQ(cache.size(), 2u);
  auto a_again = cache.get_or_build({1, 0}, [] { return build_ring(10, 2, 1); });
  EXPECT_EQ(a_again->graph.get(), a->graph.get()) << "recently-used entry survived";
  auto b_again = cache.get_or_build({2, 0}, [] { return build_ring(10, 2, 2); });
  EXPECT_NE(b_again->graph.get(), b->graph.get()) << "LRU entry was evicted and rebuilt";
}

TEST(GraphCache, BuilderExceptionEvictsEntryAndRethrows) {
  GraphCache cache;
  GraphCacheKey key{9, 9};
  EXPECT_THROW(cache.get_or_build(key, []() -> CachedGraph {
    throw std::runtime_error("build failed");
  }), std::runtime_error);
  EXPECT_EQ(cache.size(), 0u) << "failed build must not poison the key";
  auto ok = cache.get_or_build(key, [] { return build_ring(10, 2, 9); });
  EXPECT_NE(ok->graph, nullptr);
}

}  // namespace
}  // namespace mvsim::graph
