// Unit tests for src/des: scheduler ordering, cancellation, sampler.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "des/sampler.h"
#include "des/scheduler.h"

namespace mvsim::des {
namespace {

TEST(Scheduler, StartsAtTimeZero) {
  Scheduler sched;
  EXPECT_EQ(sched.now(), SimTime::zero());
  EXPECT_EQ(sched.pending_count(), 0u);
}

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(SimTime::minutes(30.0), [&] { order.push_back(3); });
  sched.schedule_at(SimTime::minutes(10.0), [&] { order.push_back(1); });
  sched.schedule_at(SimTime::minutes(20.0), [&] { order.push_back(2); });
  sched.run_until(SimTime::hours(1.0));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, EqualTimesFireInScheduleOrder) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.schedule_at(SimTime::minutes(5.0), [&order, i] { order.push_back(i); });
  }
  sched.run_until(SimTime::minutes(5.0));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, ClockIsEventTimeDuringCallback) {
  Scheduler sched;
  SimTime observed;
  sched.schedule_at(SimTime::minutes(42.0), [&] { observed = sched.now(); });
  sched.run_until(SimTime::hours(2.0));
  EXPECT_EQ(observed, SimTime::minutes(42.0));
  EXPECT_EQ(sched.now(), SimTime::hours(2.0)) << "clock rests at the horizon";
}

TEST(Scheduler, ScheduleAfterIsRelative) {
  Scheduler sched;
  SimTime fired;
  sched.schedule_at(SimTime::minutes(10.0), [&] {
    sched.schedule_after(SimTime::minutes(5.0), [&] { fired = sched.now(); });
  });
  sched.run_until(SimTime::hours(1.0));
  EXPECT_EQ(fired, SimTime::minutes(15.0));
}

TEST(Scheduler, RejectsPastTimesAndNegativeDelays) {
  Scheduler sched;
  sched.schedule_at(SimTime::minutes(1.0), [] {});
  sched.run_until(SimTime::minutes(30.0));
  EXPECT_THROW(sched.schedule_at(SimTime::minutes(10.0), [] {}), std::invalid_argument);
  EXPECT_THROW(sched.schedule_after(SimTime::minutes(-1.0), [] {}), std::invalid_argument);
  EXPECT_THROW(sched.run_until(SimTime::minutes(10.0)), std::invalid_argument);
}

TEST(Scheduler, RejectsEmptyCallback) {
  Scheduler sched;
  EXPECT_THROW(sched.schedule_after(SimTime::zero(), Scheduler::Callback{}),
               std::invalid_argument);
}

TEST(Scheduler, RunUntilStopsBeforeLaterEvents) {
  Scheduler sched;
  int fired = 0;
  sched.schedule_at(SimTime::minutes(10.0), [&] { ++fired; });
  sched.schedule_at(SimTime::minutes(50.0), [&] { ++fired; });
  sched.run_until(SimTime::minutes(30.0));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.pending_count(), 1u);
  sched.run_until(SimTime::minutes(60.0));
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, EventExactlyAtHorizonFires) {
  Scheduler sched;
  bool fired = false;
  sched.schedule_at(SimTime::minutes(30.0), [&] { fired = true; });
  sched.run_until(SimTime::minutes(30.0));
  EXPECT_TRUE(fired);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler sched;
  bool fired = false;
  EventHandle h = sched.schedule_at(SimTime::minutes(5.0), [&] { fired = true; });
  EXPECT_TRUE(sched.pending(h));
  EXPECT_TRUE(sched.cancel(h));
  EXPECT_FALSE(sched.pending(h));
  sched.run_until(SimTime::hours(1.0));
  EXPECT_FALSE(fired);
  EXPECT_EQ(sched.cancelled_count(), 1u);
}

TEST(Scheduler, CancelTwiceReturnsFalse) {
  Scheduler sched;
  EventHandle h = sched.schedule_at(SimTime::minutes(5.0), [] {});
  EXPECT_TRUE(sched.cancel(h));
  EXPECT_FALSE(sched.cancel(h));
}

TEST(Scheduler, CancelAfterFireReturnsFalse) {
  Scheduler sched;
  EventHandle h = sched.schedule_at(SimTime::minutes(5.0), [] {});
  sched.run_until(SimTime::minutes(10.0));
  EXPECT_FALSE(sched.pending(h));
  EXPECT_FALSE(sched.cancel(h));
}

TEST(Scheduler, DefaultHandleIsInvalid) {
  Scheduler sched;
  EventHandle h;
  EXPECT_FALSE(h.valid());
  EXPECT_FALSE(sched.pending(h));
  EXPECT_FALSE(sched.cancel(h));
}

TEST(Scheduler, StaleHandleAfterSlotReuseIsInert) {
  Scheduler sched;
  bool second_fired = false;
  EventHandle first = sched.schedule_at(SimTime::minutes(1.0), [] {});
  sched.run_until(SimTime::minutes(2.0));  // first fires; its slot recycles
  EventHandle second = sched.schedule_at(SimTime::minutes(5.0), [&] { second_fired = true; });
  // Cancelling the stale first handle must not hit the recycled slot.
  EXPECT_FALSE(sched.cancel(first));
  EXPECT_TRUE(sched.pending(second));
  sched.run_until(SimTime::minutes(10.0));
  EXPECT_TRUE(second_fired);
}

TEST(Scheduler, CancelDuringCallbackOfSameTime) {
  Scheduler sched;
  bool late_fired = false;
  EventHandle victim;
  sched.schedule_at(SimTime::minutes(5.0), [&] { sched.cancel(victim); });
  victim = sched.schedule_at(SimTime::minutes(5.0), [&] { late_fired = true; });
  sched.run_until(SimTime::minutes(6.0));
  EXPECT_FALSE(late_fired) << "same-instant FIFO: earlier event cancels the later one";
}

TEST(Scheduler, EventsCanScheduleAtSameInstant) {
  Scheduler sched;
  int fired = 0;
  sched.schedule_at(SimTime::minutes(5.0), [&] {
    ++fired;
    sched.schedule_at(sched.now(), [&] { ++fired; });
  });
  sched.run_until(SimTime::minutes(5.0));
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, RunToQuiescenceDrainsChains) {
  Scheduler sched;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 100) sched.schedule_after(SimTime::minutes(1.0), chain);
  };
  sched.schedule_after(SimTime::zero(), chain);
  sched.run_to_quiescence();
  EXPECT_EQ(fired, 100);
  EXPECT_EQ(sched.pending_count(), 0u);
  EXPECT_EQ(sched.executed_count(), 100u);
}

TEST(Scheduler, PendingCountExcludesCancelled) {
  Scheduler sched;
  EventHandle h1 = sched.schedule_at(SimTime::minutes(1.0), [] {});
  sched.schedule_at(SimTime::minutes(2.0), [] {});
  EXPECT_EQ(sched.pending_count(), 2u);
  sched.cancel(h1);
  EXPECT_EQ(sched.pending_count(), 1u);
}

TEST(Scheduler, ManyEventsStressOrdering) {
  Scheduler sched;
  SimTime last = SimTime::zero();
  bool monotone = true;
  // Deterministic pseudo-random times via a little LCG.
  std::uint64_t state = 12345;
  for (int i = 0; i < 5000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    double t = static_cast<double>(state >> 40);
    sched.schedule_at(SimTime::minutes(t), [&, t] {
      if (sched.now() < last) monotone = false;
      last = sched.now();
      (void)t;
    });
  }
  sched.run_to_quiescence();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(sched.executed_count(), 5000u);
}

// ---------------------------------------------------------------------------
// Calendar-queue-specific stress: both implementations must agree with the
// documented contract (time order, FIFO tie-break, generation-checked
// cancellation) under workloads that exercise the wheel's slice serving,
// overflow list, width re-fit, and rotation logic.

TEST(Scheduler, SameInstantFifoStormBothImpls) {
  for (QueueImpl impl : {QueueImpl::kWheel, QueueImpl::kHeap}) {
    Scheduler sched(impl);
    std::vector<int> order;
    order.reserve(5000);
    // A huge same-time cohort lands in one wheel bucket and must come
    // back in exact schedule order despite LIFO bucket chaining.
    for (int i = 0; i < 5000; ++i) {
      sched.schedule_at(SimTime::minutes(30.0), [&order, i] { order.push_back(i); });
    }
    sched.run_to_quiescence();
    ASSERT_EQ(order.size(), 5000u);
    for (int i = 0; i < 5000; ++i) {
      ASSERT_EQ(order[static_cast<std::size_t>(i)], i) << "impl=" << static_cast<int>(impl);
    }
  }
}

TEST(Scheduler, FarHorizonEventsSpanManyRotations) {
  // Dense near-term traffic sets a small bucket width; the far events
  // then live many full wheel rotations (or the overflow list) away.
  Scheduler sched;
  std::vector<double> fired;
  for (int i = 0; i < 256; ++i) {
    double t = 1.0 + 0.001 * i;
    sched.schedule_at(SimTime::minutes(t), [&fired, t] { fired.push_back(t); });
  }
  const double far_minutes[] = {60.0, 24.0 * 60.0, 7.0 * 24.0 * 60.0, 365.0 * 24.0 * 60.0};
  for (double t : far_minutes) {
    sched.schedule_at(SimTime::minutes(t), [&fired, t] { fired.push_back(t); });
  }
  sched.run_to_quiescence();
  ASSERT_EQ(fired.size(), 260u);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
  EXPECT_EQ(fired.back(), 365.0 * 24.0 * 60.0);
}

TEST(Scheduler, CancelThenRescheduleReusesSlotSafely) {
  Scheduler sched;
  int fired = 0;
  EventHandle h = sched.schedule_at(SimTime::minutes(5.0), [&] { ++fired; });
  ASSERT_TRUE(sched.cancel(h));
  // The recycled slot gets a new generation; the old handle stays dead.
  EventHandle h2 = sched.schedule_at(SimTime::minutes(5.0), [&] { fired += 10; });
  EXPECT_FALSE(sched.cancel(h)) << "stale handle must not cancel the replacement";
  EXPECT_FALSE(sched.pending(h));
  EXPECT_TRUE(sched.pending(h2));
  sched.run_until(SimTime::minutes(6.0));
  EXPECT_EQ(fired, 10);
  // And again, from inside a callback at the same instant.
  EventHandle h3 = sched.schedule_at(SimTime::minutes(10.0), [&] { fired += 100; });
  sched.schedule_at(SimTime::minutes(10.0), [&] {
    // Runs first (FIFO would put h3 first, but h3 was scheduled first) —
    // so cancel-then-reschedule must target a *later* same-time event.
  });
  ASSERT_TRUE(sched.cancel(h3));
  EventHandle h4 = sched.schedule_at(SimTime::minutes(10.0), [&] { fired += 1000; });
  sched.run_until(SimTime::minutes(11.0));
  EXPECT_EQ(fired, 1010);
  EXPECT_FALSE(sched.cancel(h4));
}

TEST(Scheduler, RandomizedDifferentialWheelVsHeap) {
  // Drive both implementations through an identical random mix of
  // schedules and cancellations; the observable fire sequence (time,
  // tag) must match element-for-element. This is the strongest
  // equivalence check we have short of the golden-curve test.
  Scheduler wheel(QueueImpl::kWheel);
  Scheduler heap(QueueImpl::kHeap);
  std::vector<std::pair<double, int>> wheel_fired;
  std::vector<std::pair<double, int>> heap_fired;
  std::vector<EventHandle> wheel_handles;
  std::vector<EventHandle> heap_handles;

  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  auto next_rand = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };

  for (int i = 0; i < 20000; ++i) {
    std::uint64_t r = next_rand();
    if (r % 8 == 0 && !wheel_handles.empty()) {
      // Cancel the same (possibly stale) handle on both sides.
      std::size_t victim = r % wheel_handles.size();
      bool a = wheel.cancel(wheel_handles[victim]);
      bool b = heap.cancel(heap_handles[victim]);
      ASSERT_EQ(a, b) << "cancel outcome diverged at op " << i;
    } else {
      // Cluster delays to force same-instant ties (integer minutes) and
      // occasionally fling one far out to rotate the wheel. Relative
      // scheduling keeps times valid as the interleaved draining below
      // advances both clocks in lockstep.
      double t = static_cast<double>(r % 512);
      if (r % 97 == 0) t += 1.0e6;
      int tag = i;
      wheel_handles.push_back(wheel.schedule_after(
          SimTime::minutes(t), [&wheel_fired, t, tag] { wheel_fired.emplace_back(t, tag); }));
      heap_handles.push_back(heap.schedule_after(
          SimTime::minutes(t), [&heap_fired, t, tag] { heap_fired.emplace_back(t, tag); }));
    }
    // Interleave partial draining so cancellation hits both pending and
    // already-fired events, and the wheel serves from a live slice.
    if (r % 139 == 0) {
      SimTime upto = wheel.now() + SimTime::minutes(static_cast<double>(r % 256));
      wheel.run_until(upto);
      heap.run_until(upto);
    }
  }
  wheel.run_to_quiescence();
  heap.run_to_quiescence();
  ASSERT_EQ(wheel_fired.size(), heap_fired.size());
  for (std::size_t i = 0; i < wheel_fired.size(); ++i) {
    ASSERT_EQ(wheel_fired[i], heap_fired[i]) << "fire order diverged at index " << i;
  }
  EXPECT_EQ(wheel.executed_count(), heap.executed_count());
  EXPECT_EQ(wheel.cancelled_count(), heap.cancelled_count());
}

TEST(Scheduler, CancelledReclaimedEagerOnWheelLazyOnHeap) {
  // The wheel unlinks and recycles a cancelled record immediately; the
  // heap can only discard it when it surfaces at the top. Same results,
  // different reclamation timing — that difference is the metric's job.
  Scheduler wheel(QueueImpl::kWheel);
  Scheduler heap(QueueImpl::kHeap);
  std::vector<EventHandle> wh;
  std::vector<EventHandle> hh;
  for (int i = 0; i < 100; ++i) {
    double t = static_cast<double>(i + 1);
    wh.push_back(wheel.schedule_at(SimTime::minutes(t), [] {}));
    hh.push_back(heap.schedule_at(SimTime::minutes(t), [] {}));
  }
  for (int i = 0; i < 100; i += 2) {
    wheel.cancel(wh[static_cast<std::size_t>(i)]);
    heap.cancel(hh[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(wheel.cancelled_count(), 50u);
  EXPECT_EQ(wheel.cancelled_reclaimed_count(), 50u) << "wheel reclaims at cancel()";
  EXPECT_EQ(heap.cancelled_count(), 50u);
  EXPECT_EQ(heap.cancelled_reclaimed_count(), 0u) << "heap reclaims lazily at pop";
  wheel.run_to_quiescence();
  heap.run_to_quiescence();
  EXPECT_EQ(wheel.cancelled_reclaimed_count(), 50u);
  EXPECT_EQ(heap.cancelled_reclaimed_count(), 50u) << "drained heap has reclaimed everything";
  EXPECT_EQ(wheel.executed_count(), 50u);
  EXPECT_EQ(heap.executed_count(), 50u);
}

TEST(Scheduler, SteadyStateSchedulesWithoutAllocating) {
  // After warmup the schedule→fire→recycle cycle must be allocation-free:
  // the arena never grows a new chunk and every callback fits inline.
  Scheduler sched;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 64; ++i) {
      sched.schedule_after(SimTime::minutes(1.0 + i), [] {});
    }
    sched.run_to_quiescence();
  }
  const std::size_t warm_chunks = sched.arena_chunk_count();
  const std::uint64_t recycled_before = sched.arena_recycled_count();
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 64; ++i) {
      sched.schedule_after(SimTime::minutes(1.0 + i), [] {});
    }
    sched.run_to_quiescence();
  }
  EXPECT_EQ(sched.arena_chunk_count(), warm_chunks) << "arena grew in steady state";
  EXPECT_GT(sched.arena_recycled_count(), recycled_before) << "slots must be recycled";
  EXPECT_EQ(sched.callback_heap_fallback_count(), 0u)
      << "every hot-path callback must fit the inline buffer";
}

TEST(PeriodicSampler, SamplesOnGridIncludingZeroAndHorizon) {
  Scheduler sched;
  int value = 0;
  sched.schedule_at(SimTime::minutes(25.0), [&] { value = 7; });
  PeriodicSampler sampler(sched, SimTime::minutes(10.0), SimTime::minutes(40.0),
                          [&] { return static_cast<double>(value); });
  sched.run_until(SimTime::minutes(40.0));
  const auto& samples = sampler.samples();
  ASSERT_EQ(samples.size(), 5u);
  EXPECT_EQ(samples.front().first, SimTime::zero());
  EXPECT_EQ(samples.back().first, SimTime::minutes(40.0));
  EXPECT_DOUBLE_EQ(samples[2].second, 0.0);  // t=20, before the change
  EXPECT_DOUBLE_EQ(samples[3].second, 7.0);  // t=30, after the change
}

TEST(PeriodicSampler, RejectsBadArguments) {
  Scheduler sched;
  EXPECT_THROW(PeriodicSampler(sched, SimTime::zero(), SimTime::hours(1.0), [] { return 0.0; }),
               std::invalid_argument);
  EXPECT_THROW(PeriodicSampler(sched, SimTime::minutes(1.0), SimTime::minutes(-1.0),
                               [] { return 0.0; }),
               std::invalid_argument);
  EXPECT_THROW(PeriodicSampler(sched, SimTime::minutes(1.0), SimTime::hours(1.0), nullptr),
               std::invalid_argument);
}

}  // namespace
}  // namespace mvsim::des
