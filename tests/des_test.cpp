// Unit tests for src/des: scheduler ordering, cancellation, sampler.
#include <gtest/gtest.h>

#include <vector>

#include "des/sampler.h"
#include "des/scheduler.h"

namespace mvsim::des {
namespace {

TEST(Scheduler, StartsAtTimeZero) {
  Scheduler sched;
  EXPECT_EQ(sched.now(), SimTime::zero());
  EXPECT_EQ(sched.pending_count(), 0u);
}

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(SimTime::minutes(30.0), [&] { order.push_back(3); });
  sched.schedule_at(SimTime::minutes(10.0), [&] { order.push_back(1); });
  sched.schedule_at(SimTime::minutes(20.0), [&] { order.push_back(2); });
  sched.run_until(SimTime::hours(1.0));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, EqualTimesFireInScheduleOrder) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.schedule_at(SimTime::minutes(5.0), [&order, i] { order.push_back(i); });
  }
  sched.run_until(SimTime::minutes(5.0));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, ClockIsEventTimeDuringCallback) {
  Scheduler sched;
  SimTime observed;
  sched.schedule_at(SimTime::minutes(42.0), [&] { observed = sched.now(); });
  sched.run_until(SimTime::hours(2.0));
  EXPECT_EQ(observed, SimTime::minutes(42.0));
  EXPECT_EQ(sched.now(), SimTime::hours(2.0)) << "clock rests at the horizon";
}

TEST(Scheduler, ScheduleAfterIsRelative) {
  Scheduler sched;
  SimTime fired;
  sched.schedule_at(SimTime::minutes(10.0), [&] {
    sched.schedule_after(SimTime::minutes(5.0), [&] { fired = sched.now(); });
  });
  sched.run_until(SimTime::hours(1.0));
  EXPECT_EQ(fired, SimTime::minutes(15.0));
}

TEST(Scheduler, RejectsPastTimesAndNegativeDelays) {
  Scheduler sched;
  sched.schedule_at(SimTime::minutes(1.0), [] {});
  sched.run_until(SimTime::minutes(30.0));
  EXPECT_THROW(sched.schedule_at(SimTime::minutes(10.0), [] {}), std::invalid_argument);
  EXPECT_THROW(sched.schedule_after(SimTime::minutes(-1.0), [] {}), std::invalid_argument);
  EXPECT_THROW(sched.run_until(SimTime::minutes(10.0)), std::invalid_argument);
}

TEST(Scheduler, RejectsEmptyCallback) {
  Scheduler sched;
  EXPECT_THROW(sched.schedule_after(SimTime::zero(), Scheduler::Callback{}),
               std::invalid_argument);
}

TEST(Scheduler, RunUntilStopsBeforeLaterEvents) {
  Scheduler sched;
  int fired = 0;
  sched.schedule_at(SimTime::minutes(10.0), [&] { ++fired; });
  sched.schedule_at(SimTime::minutes(50.0), [&] { ++fired; });
  sched.run_until(SimTime::minutes(30.0));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.pending_count(), 1u);
  sched.run_until(SimTime::minutes(60.0));
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, EventExactlyAtHorizonFires) {
  Scheduler sched;
  bool fired = false;
  sched.schedule_at(SimTime::minutes(30.0), [&] { fired = true; });
  sched.run_until(SimTime::minutes(30.0));
  EXPECT_TRUE(fired);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler sched;
  bool fired = false;
  EventHandle h = sched.schedule_at(SimTime::minutes(5.0), [&] { fired = true; });
  EXPECT_TRUE(sched.pending(h));
  EXPECT_TRUE(sched.cancel(h));
  EXPECT_FALSE(sched.pending(h));
  sched.run_until(SimTime::hours(1.0));
  EXPECT_FALSE(fired);
  EXPECT_EQ(sched.cancelled_count(), 1u);
}

TEST(Scheduler, CancelTwiceReturnsFalse) {
  Scheduler sched;
  EventHandle h = sched.schedule_at(SimTime::minutes(5.0), [] {});
  EXPECT_TRUE(sched.cancel(h));
  EXPECT_FALSE(sched.cancel(h));
}

TEST(Scheduler, CancelAfterFireReturnsFalse) {
  Scheduler sched;
  EventHandle h = sched.schedule_at(SimTime::minutes(5.0), [] {});
  sched.run_until(SimTime::minutes(10.0));
  EXPECT_FALSE(sched.pending(h));
  EXPECT_FALSE(sched.cancel(h));
}

TEST(Scheduler, DefaultHandleIsInvalid) {
  Scheduler sched;
  EventHandle h;
  EXPECT_FALSE(h.valid());
  EXPECT_FALSE(sched.pending(h));
  EXPECT_FALSE(sched.cancel(h));
}

TEST(Scheduler, StaleHandleAfterSlotReuseIsInert) {
  Scheduler sched;
  bool second_fired = false;
  EventHandle first = sched.schedule_at(SimTime::minutes(1.0), [] {});
  sched.run_until(SimTime::minutes(2.0));  // first fires; its slot recycles
  EventHandle second = sched.schedule_at(SimTime::minutes(5.0), [&] { second_fired = true; });
  // Cancelling the stale first handle must not hit the recycled slot.
  EXPECT_FALSE(sched.cancel(first));
  EXPECT_TRUE(sched.pending(second));
  sched.run_until(SimTime::minutes(10.0));
  EXPECT_TRUE(second_fired);
}

TEST(Scheduler, CancelDuringCallbackOfSameTime) {
  Scheduler sched;
  bool late_fired = false;
  EventHandle victim;
  sched.schedule_at(SimTime::minutes(5.0), [&] { sched.cancel(victim); });
  victim = sched.schedule_at(SimTime::minutes(5.0), [&] { late_fired = true; });
  sched.run_until(SimTime::minutes(6.0));
  EXPECT_FALSE(late_fired) << "same-instant FIFO: earlier event cancels the later one";
}

TEST(Scheduler, EventsCanScheduleAtSameInstant) {
  Scheduler sched;
  int fired = 0;
  sched.schedule_at(SimTime::minutes(5.0), [&] {
    ++fired;
    sched.schedule_at(sched.now(), [&] { ++fired; });
  });
  sched.run_until(SimTime::minutes(5.0));
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, RunToQuiescenceDrainsChains) {
  Scheduler sched;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 100) sched.schedule_after(SimTime::minutes(1.0), chain);
  };
  sched.schedule_after(SimTime::zero(), chain);
  sched.run_to_quiescence();
  EXPECT_EQ(fired, 100);
  EXPECT_EQ(sched.pending_count(), 0u);
  EXPECT_EQ(sched.executed_count(), 100u);
}

TEST(Scheduler, PendingCountExcludesCancelled) {
  Scheduler sched;
  EventHandle h1 = sched.schedule_at(SimTime::minutes(1.0), [] {});
  sched.schedule_at(SimTime::minutes(2.0), [] {});
  EXPECT_EQ(sched.pending_count(), 2u);
  sched.cancel(h1);
  EXPECT_EQ(sched.pending_count(), 1u);
}

TEST(Scheduler, ManyEventsStressOrdering) {
  Scheduler sched;
  SimTime last = SimTime::zero();
  bool monotone = true;
  // Deterministic pseudo-random times via a little LCG.
  std::uint64_t state = 12345;
  for (int i = 0; i < 5000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    double t = static_cast<double>(state >> 40);
    sched.schedule_at(SimTime::minutes(t), [&, t] {
      if (sched.now() < last) monotone = false;
      last = sched.now();
      (void)t;
    });
  }
  sched.run_to_quiescence();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(sched.executed_count(), 5000u);
}

TEST(PeriodicSampler, SamplesOnGridIncludingZeroAndHorizon) {
  Scheduler sched;
  int value = 0;
  sched.schedule_at(SimTime::minutes(25.0), [&] { value = 7; });
  PeriodicSampler sampler(sched, SimTime::minutes(10.0), SimTime::minutes(40.0),
                          [&] { return static_cast<double>(value); });
  sched.run_until(SimTime::minutes(40.0));
  const auto& samples = sampler.samples();
  ASSERT_EQ(samples.size(), 5u);
  EXPECT_EQ(samples.front().first, SimTime::zero());
  EXPECT_EQ(samples.back().first, SimTime::minutes(40.0));
  EXPECT_DOUBLE_EQ(samples[2].second, 0.0);  // t=20, before the change
  EXPECT_DOUBLE_EQ(samples[3].second, 7.0);  // t=30, after the change
}

TEST(PeriodicSampler, RejectsBadArguments) {
  Scheduler sched;
  EXPECT_THROW(PeriodicSampler(sched, SimTime::zero(), SimTime::hours(1.0), [] { return 0.0; }),
               std::invalid_argument);
  EXPECT_THROW(PeriodicSampler(sched, SimTime::minutes(1.0), SimTime::minutes(-1.0),
                               [] { return 0.0; }),
               std::invalid_argument);
  EXPECT_THROW(PeriodicSampler(sched, SimTime::minutes(1.0), SimTime::hours(1.0), nullptr),
               std::invalid_argument);
}

}  // namespace
}  // namespace mvsim::des
