// Unit tests for src/rng: seeding, engine, samplers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "rng/seed.h"
#include "rng/stream.h"

namespace mvsim::rng {
namespace {

TEST(Seed, SplitMixAdvancesState) {
  std::uint64_t state = 42;
  std::uint64_t a = splitmix64_next(state);
  std::uint64_t b = splitmix64_next(state);
  EXPECT_NE(a, b);
  EXPECT_NE(state, 42u);
}

TEST(Seed, DeriveIsDeterministic) {
  EXPECT_EQ(derive_seed(1, 2), derive_seed(1, 2));
  EXPECT_EQ(derive_seed(1, 2, 3), derive_seed(1, 2, 3));
}

TEST(Seed, DeriveSeparatesIndices) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) seeds.insert(derive_seed(0xABCD, i));
  EXPECT_EQ(seeds.size(), 1000u) << "adjacent indices must not collide";
}

TEST(Seed, DeriveSeparatesMasters) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t m = 0; m < 1000; ++m) seeds.insert(derive_seed(m, 7));
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(Seed, TwoLevelDiffersFromOneLevel) {
  EXPECT_NE(derive_seed(1, 2, 3), derive_seed(1, 2));
  EXPECT_NE(derive_seed(1, 2, 3), derive_seed(1, 3, 2));
}

TEST(Xoshiro, DeterministicGivenSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256 a(123), b(124);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() != b()) ++differing;
  }
  EXPECT_GT(differing, 95);
}

TEST(Xoshiro, JumpChangesSequence) {
  Xoshiro256 a(9), b(9);
  b.jump();
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() != b()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(Stream, Uniform01InRangeWithPlausibleMean) {
  Stream s(7);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    double u = s.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Stream, UniformRespectsBounds) {
  Stream s(8);
  for (int i = 0; i < 1000; ++i) {
    double v = s.uniform(-3.0, 5.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 5.0);
  }
}

TEST(Stream, UniformIndexCoversRangeUniformly) {
  Stream s(9);
  std::vector<int> counts(10, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[s.uniform_index(10)];
  for (int c : counts) EXPECT_NEAR(c, kN / 10, 500);
}

TEST(Stream, UniformIndexOneAlwaysZero) {
  Stream s(10);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(s.uniform_index(1), 0u);
}

TEST(Stream, UniformIndexZeroThrows) {
  Stream s(11);
  EXPECT_THROW((void)s.uniform_index(0), std::invalid_argument);
}

TEST(Stream, BernoulliEdgeCases) {
  Stream s(12);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(s.bernoulli(0.0));
    EXPECT_TRUE(s.bernoulli(1.0));
    EXPECT_FALSE(s.bernoulli(-0.5));
    EXPECT_TRUE(s.bernoulli(1.5));
  }
}

TEST(Stream, BernoulliFrequencyMatchesP) {
  Stream s(13);
  constexpr int kN = 100000;
  int hits = 0;
  for (int i = 0; i < kN; ++i) hits += s.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Stream, ExponentialMeanAndPositivity) {
  Stream s(14);
  constexpr int kN = 100000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) {
    double v = s.exponential(5.0);
    ASSERT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kN, 5.0, 0.15);
}

TEST(Stream, ExponentialRejectsNonPositiveMean) {
  Stream s(15);
  EXPECT_THROW((void)s.exponential(0.0), std::invalid_argument);
  EXPECT_THROW((void)s.exponential(-1.0), std::invalid_argument);
}

TEST(Stream, SimTimeSamplersUseMinutes) {
  Stream s(16);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += s.exponential(SimTime::hours(1.0)).to_minutes();
  EXPECT_NEAR(sum / kN, 60.0, 2.5);
  for (int i = 0; i < 1000; ++i) {
    SimTime t = s.uniform(SimTime::minutes(10.0), SimTime::minutes(20.0));
    ASSERT_GE(t.to_minutes(), 10.0);
    ASSERT_LT(t.to_minutes(), 20.0);
  }
}

TEST(Stream, ShufflePreservesElements) {
  Stream s(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  s.shuffle(std::span<int>(v));
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Stream, ShuffleActuallyPermutes) {
  Stream s(18);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  s.shuffle(std::span<int>(v));
  int displaced = 0;
  for (int i = 0; i < 100; ++i) displaced += (v[static_cast<std::size_t>(i)] != i) ? 1 : 0;
  EXPECT_GT(displaced, 80);
}

TEST(Stream, SampleWithoutReplacementDistinctAndBounded) {
  Stream s(19);
  auto sample = s.sample_without_replacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<std::uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (auto v : sample) EXPECT_LT(v, 50u);
}

TEST(Stream, SampleWithoutReplacementFullRange) {
  Stream s(20);
  auto sample = s.sample_without_replacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(Stream, SampleWithoutReplacementRejectsOversample) {
  Stream s(21);
  EXPECT_THROW((void)s.sample_without_replacement(5, 6), std::invalid_argument);
}

TEST(PowerLawTable, SamplesWithinBounds) {
  Stream s(22);
  PowerLawTable table(2, 50, 2.0);
  for (int i = 0; i < 10000; ++i) {
    auto k = table.sample(s);
    ASSERT_GE(k, 2u);
    ASSERT_LE(k, 50u);
  }
}

TEST(PowerLawTable, EmpiricalMeanMatchesAnalytic) {
  Stream s(23);
  PowerLawTable table(1, 100, 2.0);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(table.sample(s));
  EXPECT_NEAR(sum / kN, table.mean(), table.mean() * 0.03);
}

TEST(PowerLawTable, HeavierAlphaMeansSmallerMean) {
  PowerLawTable shallow(1, 100, 1.5);
  PowerLawTable steep(1, 100, 3.0);
  EXPECT_GT(shallow.mean(), steep.mean());
}

TEST(PowerLawTable, LowValuesDominate) {
  Stream s(24);
  PowerLawTable table(1, 100, 2.0);
  int low = 0;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) low += (table.sample(s) <= 3) ? 1 : 0;
  // P(k<=3) = (1 + 1/4 + 1/9)/H(2,100) ~ 0.85
  EXPECT_GT(low, kN * 7 / 10);
}

TEST(PowerLawTable, RejectsBadBounds) {
  EXPECT_THROW(PowerLawTable(0, 10, 2.0), std::invalid_argument);
  EXPECT_THROW(PowerLawTable(5, 4, 2.0), std::invalid_argument);
}

TEST(PowerLawTable, DegenerateSingleValue) {
  Stream s(25);
  PowerLawTable table(7, 7, 2.5);
  EXPECT_DOUBLE_EQ(table.mean(), 7.0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.sample(s), 7u);
}

TEST(Stream, IndependentStreamsDiverge) {
  Stream a(derive_seed(99, 0)), b(derive_seed(99, 1));
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.uniform01() == b.uniform01()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

}  // namespace
}  // namespace mvsim::rng
