// Unit tests for src/response: the detectability monitor and all six
// response mechanisms in isolation.
#include <gtest/gtest.h>

#include "des/scheduler.h"
#include "net/gateway.h"
#include "response/blacklist.h"
#include "response/detectability.h"
#include "response/gateway_detection.h"
#include "response/gateway_scan.h"
#include "response/immunization.h"
#include "response/monitoring.h"
#include "response/suite.h"
#include "response/user_education.h"
#include "rng/stream.h"

namespace mvsim::response {
namespace {

net::MmsMessage infected(net::PhoneId sender) {
  net::MmsMessage m;
  m.sender = sender;
  m.recipients = {{sender + 1, true}};
  m.infected = true;
  return m;
}

net::MmsMessage clean(net::PhoneId sender) {
  net::MmsMessage m = infected(sender);
  m.infected = false;
  return m;
}

TEST(DetectabilityMonitor, FiresAtThreshold) {
  DetectabilityMonitor monitor(3);
  SimTime fired_at = SimTime::infinity();
  monitor.on_detected([&](SimTime t) { fired_at = t; });
  monitor.on_submitted(infected(0), SimTime::minutes(1.0));
  monitor.on_submitted(infected(0), SimTime::minutes(2.0));
  EXPECT_FALSE(monitor.detected());
  monitor.on_submitted(infected(0), SimTime::minutes(3.0));
  EXPECT_TRUE(monitor.detected());
  EXPECT_EQ(fired_at, SimTime::minutes(3.0));
  EXPECT_EQ(monitor.detected_at(), SimTime::minutes(3.0));
}

TEST(DetectabilityMonitor, IgnoresCleanMessages) {
  DetectabilityMonitor monitor(1);
  monitor.on_submitted(clean(0), SimTime::minutes(1.0));
  EXPECT_FALSE(monitor.detected());
  EXPECT_EQ(monitor.infected_messages_seen(), 0u);
}

TEST(DetectabilityMonitor, FiresOnlyOnce) {
  DetectabilityMonitor monitor(1);
  int fires = 0;
  monitor.on_detected([&](SimTime) { ++fires; });
  monitor.on_submitted(infected(0), SimTime::minutes(1.0));
  monitor.on_submitted(infected(0), SimTime::minutes(2.0));
  EXPECT_EQ(fires, 1);
}

TEST(DetectabilityMonitor, RegistrationAfterDetectionThrows) {
  DetectabilityMonitor monitor(1);
  monitor.on_submitted(infected(0), SimTime::minutes(1.0));
  EXPECT_THROW(monitor.on_detected([](SimTime) {}), std::logic_error);
}

TEST(DetectabilityMonitor, ZeroThresholdRejected) {
  EXPECT_THROW(DetectabilityMonitor(0), std::invalid_argument);
}

TEST(GatewayScan, InactiveUntilDelayElapses) {
  des::Scheduler scheduler;
  DetectabilityMonitor monitor(1);
  GatewayScanConfig config;
  config.activation_delay = SimTime::hours(6.0);
  GatewayScan scan(config, scheduler, monitor);

  EXPECT_EQ(scan.inspect(infected(0), scheduler.now()), net::DeliveryFilter::Decision::kDeliver);
  monitor.on_submitted(infected(0), scheduler.now());  // detect at t=0
  scheduler.run_until(SimTime::hours(5.9));
  EXPECT_FALSE(scan.active());
  EXPECT_EQ(scan.inspect(infected(0), scheduler.now()), net::DeliveryFilter::Decision::kDeliver);
  scheduler.run_until(SimTime::hours(6.0));
  EXPECT_TRUE(scan.active());
  EXPECT_EQ(scan.activated_at(), SimTime::hours(6.0));
  EXPECT_EQ(scan.inspect(infected(0), scheduler.now()), net::DeliveryFilter::Decision::kBlock);
  EXPECT_EQ(scan.messages_stopped(), 1u);
}

TEST(GatewayScan, NeverBlocksCleanTraffic) {
  des::Scheduler scheduler;
  DetectabilityMonitor monitor(1);
  GatewayScan scan(GatewayScanConfig{SimTime::zero()}, scheduler, monitor);
  monitor.on_submitted(infected(0), scheduler.now());
  scheduler.run_to_quiescence();
  EXPECT_TRUE(scan.active());
  EXPECT_EQ(scan.inspect(clean(0), scheduler.now()), net::DeliveryFilter::Decision::kDeliver);
}

TEST(GatewayScan, NeverActivatesWithoutDetection) {
  des::Scheduler scheduler;
  DetectabilityMonitor monitor(100);
  GatewayScan scan(GatewayScanConfig{SimTime::hours(1.0)}, scheduler, monitor);
  scheduler.run_until(SimTime::days(10.0));
  EXPECT_FALSE(scan.active());
}

TEST(GatewayScan, RejectsNegativeDelay) {
  des::Scheduler scheduler;
  DetectabilityMonitor monitor(1);
  GatewayScanConfig config;
  config.activation_delay = SimTime::minutes(-1.0);
  EXPECT_THROW(GatewayScan(config, scheduler, monitor), std::invalid_argument);
}

TEST(GatewayDetection, BlocksAtConfiguredAccuracy) {
  des::Scheduler scheduler;
  rng::Stream stream(3);
  DetectabilityMonitor monitor(1);
  GatewayDetectionConfig config;
  config.accuracy = 0.9;
  config.analysis_period = SimTime::zero();
  GatewayDetection detection(config, scheduler, stream, monitor);
  monitor.on_submitted(infected(0), scheduler.now());
  scheduler.run_to_quiescence();
  ASSERT_TRUE(detection.active());
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) (void)detection.inspect(infected(0), scheduler.now());
  double block_rate =
      static_cast<double>(detection.messages_stopped()) / static_cast<double>(kN);
  EXPECT_NEAR(block_rate, 0.9, 0.01);
  EXPECT_EQ(detection.messages_stopped() + detection.messages_missed(),
            static_cast<std::uint64_t>(kN));
}

TEST(GatewayDetection, PassesEverythingBeforeAnalysisEnds) {
  des::Scheduler scheduler;
  rng::Stream stream(4);
  DetectabilityMonitor monitor(1);
  GatewayDetectionConfig config;
  config.analysis_period = SimTime::hours(6.0);
  GatewayDetection detection(config, scheduler, stream, monitor);
  monitor.on_submitted(infected(0), scheduler.now());
  scheduler.run_until(SimTime::hours(3.0));
  EXPECT_FALSE(detection.active());
  EXPECT_EQ(detection.inspect(infected(0), scheduler.now()),
            net::DeliveryFilter::Decision::kDeliver);
}

TEST(GatewayDetection, PerfectAccuracyBlocksAll) {
  des::Scheduler scheduler;
  rng::Stream stream(5);
  DetectabilityMonitor monitor(1);
  GatewayDetectionConfig config;
  config.accuracy = 1.0;
  config.analysis_period = SimTime::zero();
  GatewayDetection detection(config, scheduler, stream, monitor);
  monitor.on_submitted(infected(0), scheduler.now());
  scheduler.run_to_quiescence();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(detection.inspect(infected(0), scheduler.now()),
              net::DeliveryFilter::Decision::kBlock);
  }
}

TEST(GatewayDetection, ConfigValidation) {
  GatewayDetectionConfig config;
  config.accuracy = 1.5;
  EXPECT_FALSE(config.validate().ok());
  config = GatewayDetectionConfig{};
  config.analysis_period = SimTime::minutes(-1.0);
  EXPECT_FALSE(config.validate().ok());
}

TEST(UserEducation, ProducesRequestedEventualAcceptance) {
  UserEducationConfig config;
  config.eventual_acceptance = 0.20;
  phone::ConsentModel model = apply_user_education(config);
  EXPECT_NEAR(model.eventual_acceptance_probability(), 0.20, 1e-9);
  config.eventual_acceptance = 0.10;
  EXPECT_NEAR(apply_user_education(config).eventual_acceptance_probability(), 0.10, 1e-9);
}

TEST(UserEducation, EducatedFactorIsLowerThanBaseline) {
  UserEducationConfig config;
  config.eventual_acceptance = 0.20;
  EXPECT_LT(apply_user_education(config).acceptance_factor(), phone::kPaperAcceptanceFactor);
}

TEST(UserEducation, ConfigValidation) {
  UserEducationConfig config;
  config.eventual_acceptance = 0.9;
  EXPECT_FALSE(config.validate().ok());
  config.eventual_acceptance = -0.1;
  EXPECT_FALSE(config.validate().ok());
}

TEST(Immunization, RollsOutUniformlyAfterDevelopment) {
  des::Scheduler scheduler;
  rng::Stream stream(6);
  DetectabilityMonitor monitor(1);
  ImmunizationConfig config;
  config.development_time = SimTime::hours(24.0);
  config.deployment_duration = SimTime::hours(6.0);
  std::vector<net::PhoneId> patched;
  Immunization immunization(config, scheduler, stream, monitor, {0, 1, 2, 3, 4},
                            [&](net::PhoneId id) { patched.push_back(id); });
  monitor.on_submitted(infected(9), scheduler.now());  // detect at t=0
  scheduler.run_until(SimTime::hours(23.9));
  EXPECT_FALSE(immunization.deployment_started());
  EXPECT_TRUE(patched.empty());
  scheduler.run_until(SimTime::hours(30.0));
  EXPECT_TRUE(immunization.deployment_started());
  EXPECT_EQ(patched.size(), 5u);
  EXPECT_EQ(immunization.patches_applied(), 5u);
  EXPECT_EQ(immunization.deployment_begins_at(), SimTime::hours(24.0));
  EXPECT_EQ(immunization.deployment_ends_at(), SimTime::hours(30.0));
}

TEST(Immunization, InstantDeploymentPatchesAtOnce) {
  des::Scheduler scheduler;
  rng::Stream stream(7);
  DetectabilityMonitor monitor(1);
  ImmunizationConfig config;
  config.development_time = SimTime::hours(1.0);
  config.deployment_duration = SimTime::zero();
  int patched = 0;
  Immunization immunization(config, scheduler, stream, monitor, {0, 1, 2},
                            [&](net::PhoneId) { ++patched; });
  monitor.on_submitted(infected(9), scheduler.now());
  scheduler.run_until(SimTime::hours(1.0));
  EXPECT_EQ(patched, 3);
}

TEST(Immunization, NoDetectionMeansNoPatches) {
  des::Scheduler scheduler;
  rng::Stream stream(8);
  DetectabilityMonitor monitor(100);
  int patched = 0;
  Immunization immunization(ImmunizationConfig{}, scheduler, stream, monitor, {0, 1},
                            [&](net::PhoneId) { ++patched; });
  scheduler.run_until(SimTime::days(30.0));
  EXPECT_EQ(patched, 0);
  EXPECT_FALSE(immunization.deployment_started());
}

TEST(Immunization, RequiresCallback) {
  des::Scheduler scheduler;
  rng::Stream stream(9);
  DetectabilityMonitor monitor(1);
  EXPECT_THROW(
      Immunization(ImmunizationConfig{}, scheduler, stream, monitor, {0}, nullptr),
      std::invalid_argument);
}

TEST(Monitoring, FlagsPhoneAboveThreshold) {
  MonitoringConfig config;
  config.window_message_threshold = 3;
  config.forced_wait = SimTime::minutes(15.0);
  Monitoring monitoring(config);
  SimTime t = SimTime::minutes(1.0);
  for (int i = 0; i < 3; ++i) monitoring.on_submitted(infected(7), t);
  EXPECT_FALSE(monitoring.is_flagged(7));
  EXPECT_EQ(monitoring.forced_min_gap(7, t), SimTime::zero());
  monitoring.on_submitted(infected(7), t);  // 4th message in the window
  EXPECT_TRUE(monitoring.is_flagged(7));
  EXPECT_EQ(monitoring.forced_min_gap(7, t), SimTime::minutes(15.0));
  EXPECT_EQ(monitoring.flagged_count(), 1u);
}

TEST(Monitoring, CountsCleanMessagesToo) {
  MonitoringConfig config;
  config.window_message_threshold = 2;
  Monitoring monitoring(config);
  SimTime t = SimTime::minutes(1.0);
  monitoring.on_submitted(clean(7), t);
  monitoring.on_submitted(clean(7), t);
  monitoring.on_submitted(clean(7), t);
  EXPECT_TRUE(monitoring.is_flagged(7)) << "monitoring cannot tell infected from clean";
}

TEST(Monitoring, WindowResetUnflagsWhenNotPermanent) {
  MonitoringConfig config;
  config.window_message_threshold = 1;
  config.observation_window = SimTime::hours(1.0);
  config.flag_is_permanent = false;
  Monitoring monitoring(config);
  monitoring.on_submitted(infected(7), SimTime::minutes(10.0));
  monitoring.on_submitted(infected(7), SimTime::minutes(11.0));
  EXPECT_TRUE(monitoring.is_flagged(7));
  // Next window: the flag clears.
  EXPECT_EQ(monitoring.forced_min_gap(7, SimTime::minutes(70.0)), SimTime::zero());
}

TEST(Monitoring, PermanentFlagSurvivesWindows) {
  MonitoringConfig config;
  config.window_message_threshold = 1;
  config.observation_window = SimTime::hours(1.0);
  Monitoring monitoring(config);
  monitoring.on_submitted(infected(7), SimTime::minutes(10.0));
  monitoring.on_submitted(infected(7), SimTime::minutes(11.0));
  EXPECT_EQ(monitoring.forced_min_gap(7, SimTime::hours(50.0)), config.forced_wait);
}

TEST(Monitoring, PerPhoneIsolation) {
  MonitoringConfig config;
  config.window_message_threshold = 2;
  Monitoring monitoring(config);
  SimTime t = SimTime::minutes(1.0);
  for (int i = 0; i < 5; ++i) monitoring.on_submitted(infected(1), t);
  EXPECT_TRUE(monitoring.is_flagged(1));
  EXPECT_FALSE(monitoring.is_flagged(2));
  EXPECT_FALSE(monitoring.is_blocked(1, t)) << "monitoring never blocks outright";
}

TEST(Monitoring, ConfigValidation) {
  MonitoringConfig config;
  config.window_message_threshold = 0;
  EXPECT_FALSE(config.validate().ok());
  config = MonitoringConfig{};
  config.observation_window = SimTime::zero();
  EXPECT_FALSE(config.validate().ok());
  config = MonitoringConfig{};
  config.forced_wait = SimTime::minutes(-5.0);
  EXPECT_FALSE(config.validate().ok());
}

TEST(Blacklist, BlocksAtThreshold) {
  BlacklistConfig config;
  config.message_threshold = 3;
  Blacklist blacklist(config);
  SimTime t = SimTime::minutes(1.0);
  blacklist.on_submitted(infected(5), t);
  blacklist.on_submitted(infected(5), t);
  EXPECT_FALSE(blacklist.is_blocked(5, t));
  blacklist.on_submitted(infected(5), t);
  EXPECT_TRUE(blacklist.is_blocked(5, t));
  EXPECT_TRUE(blacklist.is_blacklisted(5));
  EXPECT_EQ(blacklist.blacklisted_count(), 1u);
}

TEST(Blacklist, IgnoresCleanMessages) {
  BlacklistConfig config;
  config.message_threshold = 1;
  Blacklist blacklist(config);
  SimTime t = SimTime::minutes(1.0);
  for (int i = 0; i < 10; ++i) blacklist.on_submitted(clean(5), t);
  EXPECT_FALSE(blacklist.is_blacklisted(5)) << "blacklist counts only suspected messages";
}

TEST(Blacklist, InvalidRecipientsStillCount) {
  // A random-dialing virus's messages to dead numbers still transit the
  // provider's switch and count toward suspicion (paper §5.2).
  BlacklistConfig config;
  config.message_threshold = 2;
  Blacklist blacklist(config);
  net::MmsMessage m;
  m.sender = 5;
  m.recipients = {{0, false}};
  m.infected = true;
  SimTime t = SimTime::minutes(1.0);
  blacklist.on_submitted(m, t);
  blacklist.on_submitted(m, t);
  EXPECT_TRUE(blacklist.is_blacklisted(5));
}

TEST(Blacklist, NeverImposesGap) {
  Blacklist blacklist(BlacklistConfig{});
  EXPECT_EQ(blacklist.forced_min_gap(1, SimTime::zero()), SimTime::zero());
}

TEST(Blacklist, MultiRecipientMessageCountsOnce) {
  BlacklistConfig config;
  config.message_threshold = 3;
  Blacklist blacklist(config);
  net::MmsMessage burst;
  burst.sender = 5;
  burst.infected = true;
  for (net::PhoneId i = 0; i < 100; ++i) burst.recipients.push_back({i + 10, true});
  blacklist.on_submitted(burst, SimTime::zero());
  EXPECT_FALSE(blacklist.is_blacklisted(5))
      << "Virus 2's evasion: 100 recipients ride one counted message";
}

TEST(Blacklist, ConfigValidation) {
  BlacklistConfig config;
  config.message_threshold = 0;
  EXPECT_FALSE(config.validate().ok());
}

TEST(ResponseSuite, CountsEnabledMechanisms) {
  ResponseSuiteConfig suite = no_response();
  EXPECT_FALSE(suite.any_enabled());
  EXPECT_EQ(suite.enabled_count(), 0);
  suite.monitoring = MonitoringConfig{};
  suite.blacklist = BlacklistConfig{};
  EXPECT_TRUE(suite.any_enabled());
  EXPECT_EQ(suite.enabled_count(), 2);
}

TEST(ResponseSuite, ValidationAggregatesSubConfigs) {
  ResponseSuiteConfig suite;
  suite.detectability_threshold = 0;
  EXPECT_FALSE(suite.validate().ok());
  suite = ResponseSuiteConfig{};
  BlacklistConfig bad;
  bad.message_threshold = 0;
  suite.blacklist = bad;
  EXPECT_FALSE(suite.validate().ok());
}

}  // namespace
}  // namespace mvsim::response
