// Unit tests for src/response: the detectability monitor and every
// response mechanism in isolation.
//
// Mechanisms are constructed from their configs alone; each test wires
// the instance the way core::SimulationContext would — on_build with a
// BuildContext, plus a detector callback forwarding to
// on_detectability_crossed — but by hand, so a failure points at the
// mechanism rather than the dispatch layer.
#include <gtest/gtest.h>

#include "des/scheduler.h"
#include "net/gateway.h"
#include "response/blacklist.h"
#include "response/detectability.h"
#include "response/gateway_detection.h"
#include "response/gateway_scan.h"
#include "response/immunization.h"
#include "response/monitoring.h"
#include "response/rate_limiter.h"
#include "response/registry.h"
#include "response/suite.h"
#include "response/user_education.h"
#include "rng/stream.h"

namespace mvsim::response {
namespace {

net::MmsMessage infected(net::PhoneId sender) {
  net::MmsMessage m;
  m.sender = sender;
  m.recipients = {{sender + 1, true}};
  m.infected = true;
  return m;
}

net::MmsMessage clean(net::PhoneId sender) {
  net::MmsMessage m = infected(sender);
  m.infected = false;
  return m;
}

/// Wires `mechanism` to scheduler/stream/detector the way the core's
/// dispatch context would.
void wire(ResponseMechanism& mechanism, des::Scheduler& scheduler,
          DetectabilityMonitor& monitor, rng::Stream* stream = nullptr) {
  BuildContext build;
  build.scheduler = &scheduler;
  build.response_stream = stream;
  build.detector = &monitor;
  mechanism.on_build(build);
  monitor.on_detected([&mechanism](SimTime at) { mechanism.on_detectability_crossed(at); });
}

TEST(DetectabilityMonitor, FiresAtThreshold) {
  DetectabilityMonitor monitor(3);
  SimTime fired_at = SimTime::infinity();
  monitor.on_detected([&](SimTime t) { fired_at = t; });
  monitor.on_submitted(infected(0), SimTime::minutes(1.0));
  monitor.on_submitted(infected(0), SimTime::minutes(2.0));
  EXPECT_FALSE(monitor.detected());
  monitor.on_submitted(infected(0), SimTime::minutes(3.0));
  EXPECT_TRUE(monitor.detected());
  EXPECT_EQ(fired_at, SimTime::minutes(3.0));
  EXPECT_EQ(monitor.detected_at(), SimTime::minutes(3.0));
}

TEST(DetectabilityMonitor, IgnoresCleanMessages) {
  DetectabilityMonitor monitor(1);
  monitor.on_submitted(clean(0), SimTime::minutes(1.0));
  EXPECT_FALSE(monitor.detected());
  EXPECT_EQ(monitor.infected_messages_seen(), 0u);
}

TEST(DetectabilityMonitor, FiresOnlyOnce) {
  DetectabilityMonitor monitor(1);
  int fires = 0;
  monitor.on_detected([&](SimTime) { ++fires; });
  monitor.on_submitted(infected(0), SimTime::minutes(1.0));
  monitor.on_submitted(infected(0), SimTime::minutes(2.0));
  EXPECT_EQ(fires, 1);
}

TEST(DetectabilityMonitor, RegistrationAfterDetectionThrows) {
  DetectabilityMonitor monitor(1);
  monitor.on_submitted(infected(0), SimTime::minutes(1.0));
  EXPECT_THROW(monitor.on_detected([](SimTime) {}), std::logic_error);
}

TEST(DetectabilityMonitor, ZeroThresholdRejected) {
  EXPECT_THROW(DetectabilityMonitor(0), std::invalid_argument);
}

TEST(GatewayScan, InactiveUntilDelayElapses) {
  des::Scheduler scheduler;
  DetectabilityMonitor monitor(1);
  GatewayScanConfig config;
  config.activation_delay = SimTime::hours(6.0);
  GatewayScan scan(config);
  wire(scan, scheduler, monitor);

  EXPECT_EQ(scan.inspect(infected(0), scheduler.now()), net::DeliveryFilter::Decision::kDeliver);
  monitor.on_submitted(infected(0), scheduler.now());  // detect at t=0
  scheduler.run_until(SimTime::hours(5.9));
  EXPECT_FALSE(scan.active());
  EXPECT_EQ(scan.inspect(infected(0), scheduler.now()), net::DeliveryFilter::Decision::kDeliver);
  scheduler.run_until(SimTime::hours(6.0));
  EXPECT_TRUE(scan.active());
  EXPECT_EQ(scan.activated_at(), SimTime::hours(6.0));
  EXPECT_EQ(scan.inspect(infected(0), scheduler.now()), net::DeliveryFilter::Decision::kBlock);
  EXPECT_EQ(scan.messages_stopped(), 1u);
}

TEST(GatewayScan, NeverBlocksCleanTraffic) {
  des::Scheduler scheduler;
  DetectabilityMonitor monitor(1);
  GatewayScan scan(GatewayScanConfig{SimTime::zero()});
  wire(scan, scheduler, monitor);
  monitor.on_submitted(infected(0), scheduler.now());
  scheduler.run_to_quiescence();
  EXPECT_TRUE(scan.active());
  EXPECT_EQ(scan.inspect(clean(0), scheduler.now()), net::DeliveryFilter::Decision::kDeliver);
}

TEST(GatewayScan, NeverActivatesWithoutDetection) {
  des::Scheduler scheduler;
  DetectabilityMonitor monitor(100);
  GatewayScan scan(GatewayScanConfig{SimTime::hours(1.0)});
  wire(scan, scheduler, monitor);
  scheduler.run_until(SimTime::days(10.0));
  EXPECT_FALSE(scan.active());
}

TEST(GatewayScan, RejectsNegativeDelay) {
  GatewayScanConfig config;
  config.activation_delay = SimTime::minutes(-1.0);
  EXPECT_THROW(GatewayScan scan(config), std::invalid_argument);
}

TEST(GatewayScan, DetectabilityBeforeBuildThrows) {
  GatewayScan scan(GatewayScanConfig{});
  EXPECT_THROW(scan.on_detectability_crossed(SimTime::zero()), std::logic_error);
}

TEST(GatewayDetection, BlocksAtConfiguredAccuracy) {
  des::Scheduler scheduler;
  rng::Stream stream(3);
  DetectabilityMonitor monitor(1);
  GatewayDetectionConfig config;
  config.accuracy = 0.9;
  config.analysis_period = SimTime::zero();
  GatewayDetection detection(config);
  wire(detection, scheduler, monitor, &stream);
  monitor.on_submitted(infected(0), scheduler.now());
  scheduler.run_to_quiescence();
  ASSERT_TRUE(detection.active());
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) (void)detection.inspect(infected(0), scheduler.now());
  double block_rate =
      static_cast<double>(detection.messages_stopped()) / static_cast<double>(kN);
  EXPECT_NEAR(block_rate, 0.9, 0.01);
  EXPECT_EQ(detection.messages_stopped() + detection.messages_missed(),
            static_cast<std::uint64_t>(kN));
}

TEST(GatewayDetection, PassesEverythingBeforeAnalysisEnds) {
  des::Scheduler scheduler;
  rng::Stream stream(4);
  DetectabilityMonitor monitor(1);
  GatewayDetectionConfig config;
  config.analysis_period = SimTime::hours(6.0);
  GatewayDetection detection(config);
  wire(detection, scheduler, monitor, &stream);
  monitor.on_submitted(infected(0), scheduler.now());
  scheduler.run_until(SimTime::hours(3.0));
  EXPECT_FALSE(detection.active());
  EXPECT_EQ(detection.inspect(infected(0), scheduler.now()),
            net::DeliveryFilter::Decision::kDeliver);
}

TEST(GatewayDetection, PerfectAccuracyBlocksAll) {
  des::Scheduler scheduler;
  rng::Stream stream(5);
  DetectabilityMonitor monitor(1);
  GatewayDetectionConfig config;
  config.accuracy = 1.0;
  config.analysis_period = SimTime::zero();
  GatewayDetection detection(config);
  wire(detection, scheduler, monitor, &stream);
  monitor.on_submitted(infected(0), scheduler.now());
  scheduler.run_to_quiescence();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(detection.inspect(infected(0), scheduler.now()),
              net::DeliveryFilter::Decision::kBlock);
  }
}

TEST(GatewayDetection, ConfigValidation) {
  GatewayDetectionConfig config;
  config.accuracy = 1.5;
  EXPECT_FALSE(config.validate().ok());
  config = GatewayDetectionConfig{};
  config.analysis_period = SimTime::minutes(-1.0);
  EXPECT_FALSE(config.validate().ok());
}

TEST(UserEducation, ProducesRequestedEventualAcceptance) {
  UserEducationConfig config;
  config.eventual_acceptance = 0.20;
  phone::ConsentModel model = apply_user_education(config);
  EXPECT_NEAR(model.eventual_acceptance_probability(), 0.20, 1e-9);
  config.eventual_acceptance = 0.10;
  EXPECT_NEAR(apply_user_education(config).eventual_acceptance_probability(), 0.10, 1e-9);
}

TEST(UserEducation, EducatedFactorIsLowerThanBaseline) {
  UserEducationConfig config;
  config.eventual_acceptance = 0.20;
  EXPECT_LT(apply_user_education(config).acceptance_factor(), phone::kPaperAcceptanceFactor);
}

TEST(UserEducation, ConfigValidation) {
  UserEducationConfig config;
  config.eventual_acceptance = 0.9;
  EXPECT_FALSE(config.validate().ok());
  config.eventual_acceptance = -0.1;
  EXPECT_FALSE(config.validate().ok());
}

TEST(Immunization, RollsOutUniformlyAfterDevelopment) {
  des::Scheduler scheduler;
  rng::Stream stream(6);
  DetectabilityMonitor monitor(1);
  ImmunizationConfig config;
  config.development_time = SimTime::hours(24.0);
  config.deployment_duration = SimTime::hours(6.0);
  std::vector<net::PhoneId> patched;
  std::vector<net::PhoneId> targets = {0, 1, 2, 3, 4};
  Immunization immunization(config);
  BuildContext build;
  build.scheduler = &scheduler;
  build.response_stream = &stream;
  build.detector = &monitor;
  build.patch_targets = &targets;
  build.apply_patch = [&](net::PhoneId id) { patched.push_back(id); };
  immunization.on_build(build);
  monitor.on_detected([&](SimTime at) { immunization.on_detectability_crossed(at); });
  monitor.on_submitted(infected(9), scheduler.now());  // detect at t=0
  scheduler.run_until(SimTime::hours(23.9));
  EXPECT_FALSE(immunization.deployment_started());
  EXPECT_TRUE(patched.empty());
  scheduler.run_until(SimTime::hours(30.0));
  EXPECT_TRUE(immunization.deployment_started());
  EXPECT_EQ(patched.size(), 5u);
  EXPECT_EQ(immunization.patches_applied(), 5u);
  EXPECT_EQ(immunization.deployment_begins_at(), SimTime::hours(24.0));
  EXPECT_EQ(immunization.deployment_ends_at(), SimTime::hours(30.0));
}

TEST(Immunization, InstantDeploymentPatchesAtOnce) {
  des::Scheduler scheduler;
  rng::Stream stream(7);
  DetectabilityMonitor monitor(1);
  ImmunizationConfig config;
  config.development_time = SimTime::hours(1.0);
  config.deployment_duration = SimTime::zero();
  int patched = 0;
  std::vector<net::PhoneId> targets = {0, 1, 2};
  Immunization immunization(config);
  BuildContext build;
  build.scheduler = &scheduler;
  build.response_stream = &stream;
  build.patch_targets = &targets;
  build.apply_patch = [&](net::PhoneId) { ++patched; };
  immunization.on_build(build);
  monitor.on_detected([&](SimTime at) { immunization.on_detectability_crossed(at); });
  monitor.on_submitted(infected(9), scheduler.now());
  scheduler.run_until(SimTime::hours(1.0));
  EXPECT_EQ(patched, 3);
}

TEST(Immunization, NoDetectionMeansNoPatches) {
  des::Scheduler scheduler;
  rng::Stream stream(8);
  DetectabilityMonitor monitor(100);
  int patched = 0;
  std::vector<net::PhoneId> targets = {0, 1};
  Immunization immunization{ImmunizationConfig{}};
  BuildContext build;
  build.scheduler = &scheduler;
  build.response_stream = &stream;
  build.patch_targets = &targets;
  build.apply_patch = [&](net::PhoneId) { ++patched; };
  immunization.on_build(build);
  monitor.on_detected([&](SimTime at) { immunization.on_detectability_crossed(at); });
  scheduler.run_until(SimTime::days(30.0));
  EXPECT_EQ(patched, 0);
  EXPECT_FALSE(immunization.deployment_started());
}

TEST(Immunization, BuildRequiresCallbackAndTargets) {
  des::Scheduler scheduler;
  rng::Stream stream(9);
  std::vector<net::PhoneId> targets = {0};
  Immunization immunization{ImmunizationConfig{}};
  BuildContext no_callback;
  no_callback.scheduler = &scheduler;
  no_callback.response_stream = &stream;
  no_callback.patch_targets = &targets;
  EXPECT_THROW(immunization.on_build(no_callback), std::invalid_argument);
  BuildContext no_targets;
  no_targets.scheduler = &scheduler;
  no_targets.response_stream = &stream;
  no_targets.apply_patch = [](net::PhoneId) {};
  EXPECT_THROW(immunization.on_build(no_targets), std::invalid_argument);
}

TEST(Monitoring, FlagsPhoneAboveThreshold) {
  MonitoringConfig config;
  config.window_message_threshold = 3;
  config.forced_wait = SimTime::minutes(15.0);
  Monitoring monitoring(config);
  SimTime t = SimTime::minutes(1.0);
  for (int i = 0; i < 3; ++i) monitoring.on_message_submitted(infected(7), t);
  EXPECT_FALSE(monitoring.is_flagged(7));
  EXPECT_EQ(monitoring.forced_min_gap(7, t), SimTime::zero());
  monitoring.on_message_submitted(infected(7), t);  // 4th message in the window
  EXPECT_TRUE(monitoring.is_flagged(7));
  EXPECT_EQ(monitoring.forced_min_gap(7, t), SimTime::minutes(15.0));
  EXPECT_EQ(monitoring.flagged_count(), 1u);
}

TEST(Monitoring, CountsCleanMessagesToo) {
  MonitoringConfig config;
  config.window_message_threshold = 2;
  Monitoring monitoring(config);
  SimTime t = SimTime::minutes(1.0);
  monitoring.on_message_submitted(clean(7), t);
  monitoring.on_message_submitted(clean(7), t);
  monitoring.on_message_submitted(clean(7), t);
  EXPECT_TRUE(monitoring.is_flagged(7)) << "monitoring cannot tell infected from clean";
}

TEST(Monitoring, WindowResetUnflagsWhenNotPermanent) {
  MonitoringConfig config;
  config.window_message_threshold = 1;
  config.observation_window = SimTime::hours(1.0);
  config.flag_is_permanent = false;
  Monitoring monitoring(config);
  monitoring.on_message_submitted(infected(7), SimTime::minutes(10.0));
  monitoring.on_message_submitted(infected(7), SimTime::minutes(11.0));
  EXPECT_TRUE(monitoring.is_flagged(7));
  // Next window: the flag clears.
  EXPECT_EQ(monitoring.forced_min_gap(7, SimTime::minutes(70.0)), SimTime::zero());
}

TEST(Monitoring, PermanentFlagSurvivesWindows) {
  MonitoringConfig config;
  config.window_message_threshold = 1;
  config.observation_window = SimTime::hours(1.0);
  Monitoring monitoring(config);
  monitoring.on_message_submitted(infected(7), SimTime::minutes(10.0));
  monitoring.on_message_submitted(infected(7), SimTime::minutes(11.0));
  EXPECT_EQ(monitoring.forced_min_gap(7, SimTime::hours(50.0)), config.forced_wait);
}

TEST(Monitoring, PerPhoneIsolation) {
  MonitoringConfig config;
  config.window_message_threshold = 2;
  Monitoring monitoring(config);
  SimTime t = SimTime::minutes(1.0);
  for (int i = 0; i < 5; ++i) monitoring.on_message_submitted(infected(1), t);
  EXPECT_TRUE(monitoring.is_flagged(1));
  EXPECT_FALSE(monitoring.is_flagged(2));
  EXPECT_FALSE(monitoring.is_blocked(1, t)) << "monitoring never blocks outright";
}

TEST(Monitoring, ConfigValidation) {
  MonitoringConfig config;
  config.window_message_threshold = 0;
  EXPECT_FALSE(config.validate().ok());
  config = MonitoringConfig{};
  config.observation_window = SimTime::zero();
  EXPECT_FALSE(config.validate().ok());
  config = MonitoringConfig{};
  config.forced_wait = SimTime::minutes(-5.0);
  EXPECT_FALSE(config.validate().ok());
}

TEST(Blacklist, BlocksAtThreshold) {
  BlacklistConfig config;
  config.message_threshold = 3;
  Blacklist blacklist(config);
  SimTime t = SimTime::minutes(1.0);
  blacklist.on_message_submitted(infected(5), t);
  blacklist.on_message_submitted(infected(5), t);
  EXPECT_FALSE(blacklist.is_blocked(5, t));
  blacklist.on_message_submitted(infected(5), t);
  EXPECT_TRUE(blacklist.is_blocked(5, t));
  EXPECT_TRUE(blacklist.is_blacklisted(5));
  EXPECT_EQ(blacklist.blacklisted_count(), 1u);
}

TEST(Blacklist, IgnoresCleanMessages) {
  BlacklistConfig config;
  config.message_threshold = 1;
  Blacklist blacklist(config);
  SimTime t = SimTime::minutes(1.0);
  for (int i = 0; i < 10; ++i) blacklist.on_message_submitted(clean(5), t);
  EXPECT_FALSE(blacklist.is_blacklisted(5)) << "blacklist counts only suspected messages";
}

TEST(Blacklist, InvalidRecipientsStillCount) {
  // A random-dialing virus's messages to dead numbers still transit the
  // provider's switch and count toward suspicion (paper §5.2).
  BlacklistConfig config;
  config.message_threshold = 2;
  Blacklist blacklist(config);
  net::MmsMessage m;
  m.sender = 5;
  m.recipients = {{0, false}};
  m.infected = true;
  SimTime t = SimTime::minutes(1.0);
  blacklist.on_message_submitted(m, t);
  blacklist.on_message_submitted(m, t);
  EXPECT_TRUE(blacklist.is_blacklisted(5));
}

TEST(Blacklist, NeverImposesGap) {
  Blacklist blacklist{BlacklistConfig{}};
  EXPECT_EQ(blacklist.forced_min_gap(1, SimTime::zero()), SimTime::zero());
}

TEST(Blacklist, MultiRecipientMessageCountsOnce) {
  BlacklistConfig config;
  config.message_threshold = 3;
  Blacklist blacklist(config);
  net::MmsMessage burst;
  burst.sender = 5;
  burst.infected = true;
  for (net::PhoneId i = 0; i < 100; ++i) burst.recipients.push_back({i + 10, true});
  blacklist.on_message_submitted(burst, SimTime::zero());
  EXPECT_FALSE(blacklist.is_blacklisted(5))
      << "Virus 2's evasion: 100 recipients ride one counted message";
}

TEST(Blacklist, ConfigValidation) {
  BlacklistConfig config;
  config.message_threshold = 0;
  EXPECT_FALSE(config.validate().ok());
}

TEST(RateLimiter, HoldsUntilWindowRollsOver) {
  RateLimiterConfig config;
  config.max_messages_per_window = 3;
  config.window = SimTime::hours(1.0);
  RateLimiter limiter(config);
  SimTime t = SimTime::minutes(10.0);
  for (int i = 0; i < 2; ++i) limiter.on_message_submitted(infected(5), t);
  EXPECT_FALSE(limiter.is_at_cap(5, t));
  EXPECT_EQ(limiter.forced_min_gap(5, t), SimTime::zero());
  limiter.on_message_submitted(infected(5), t);  // 3rd: quota exhausted
  EXPECT_TRUE(limiter.is_at_cap(5, t));
  // Gap from the last send (t=10min) to the window boundary (60min).
  EXPECT_EQ(limiter.forced_min_gap(5, t), SimTime::minutes(50.0));
  // Next window: fresh quota.
  SimTime next = SimTime::minutes(70.0);
  EXPECT_FALSE(limiter.is_at_cap(5, next));
  EXPECT_EQ(limiter.forced_min_gap(5, next), SimTime::zero());
  EXPECT_EQ(limiter.phones_limited(), 1u);
  EXPECT_EQ(limiter.windows_capped(), 1u);
}

TEST(RateLimiter, NeverBlocksOutright) {
  RateLimiterConfig config;
  config.max_messages_per_window = 1;
  RateLimiter limiter(config);
  SimTime t = SimTime::minutes(1.0);
  for (int i = 0; i < 10; ++i) limiter.on_message_submitted(infected(5), t);
  EXPECT_FALSE(limiter.is_blocked(5, t)) << "rate limiting holds, never cuts service";
}

TEST(RateLimiter, PerPhoneQuotas) {
  RateLimiterConfig config;
  config.max_messages_per_window = 2;
  RateLimiter limiter(config);
  SimTime t = SimTime::minutes(5.0);
  limiter.on_message_submitted(infected(1), t);
  limiter.on_message_submitted(infected(1), t);
  EXPECT_TRUE(limiter.is_at_cap(1, t));
  EXPECT_FALSE(limiter.is_at_cap(2, t));
  EXPECT_EQ(limiter.forced_min_gap(2, t), SimTime::zero());
}

TEST(RateLimiter, CountsCleanTrafficToo) {
  RateLimiterConfig config;
  config.max_messages_per_window = 2;
  RateLimiter limiter(config);
  SimTime t = SimTime::minutes(5.0);
  limiter.on_message_submitted(clean(1), t);
  limiter.on_message_submitted(clean(1), t);
  EXPECT_TRUE(limiter.is_at_cap(1, t)) << "the cap applies to all traffic, not just infected";
}

TEST(RateLimiter, TickPrunesStaleRecords) {
  RateLimiterConfig config;
  config.max_messages_per_window = 1;
  config.window = SimTime::hours(1.0);
  RateLimiter limiter(config);
  limiter.on_message_submitted(infected(1), SimTime::minutes(5.0));
  EXPECT_TRUE(limiter.is_at_cap(1, SimTime::minutes(5.0)));
  limiter.on_tick(SimTime::hours(5.0));
  // The record is gone, but the ever-limited metric survives pruning.
  EXPECT_EQ(limiter.forced_min_gap(1, SimTime::hours(5.1)), SimTime::zero());
  EXPECT_EQ(limiter.phones_limited(), 1u);
}

TEST(RateLimiter, ContributesExtrasMetrics) {
  RateLimiterConfig config;
  config.max_messages_per_window = 1;
  RateLimiter limiter(config);
  limiter.on_message_submitted(infected(3), SimTime::minutes(1.0));
  ResponseMetrics metrics;
  limiter.contribute_metrics(metrics);
  ASSERT_EQ(metrics.extras.size(), 2u);
  EXPECT_EQ(metrics.extras[0].first, "phones_rate_limited");
  EXPECT_EQ(metrics.extras[0].second, 1u);
}

TEST(RateLimiter, ConfigValidation) {
  RateLimiterConfig config;
  config.max_messages_per_window = 0;
  EXPECT_FALSE(config.validate().ok());
  config = RateLimiterConfig{};
  config.window = SimTime::zero();
  EXPECT_FALSE(config.validate().ok());
}

TEST(ResponseSuite, CountsEnabledMechanisms) {
  ResponseSuiteConfig suite = no_response();
  EXPECT_FALSE(suite.any_enabled());
  EXPECT_EQ(suite.enabled_count(), 0);
  suite.monitoring = MonitoringConfig{};
  suite.blacklist = BlacklistConfig{};
  EXPECT_TRUE(suite.any_enabled());
  EXPECT_EQ(suite.enabled_count(), 2);
}

TEST(ResponseSuite, ValidationAggregatesSubConfigs) {
  ResponseSuiteConfig suite;
  suite.detectability_threshold = 0;
  EXPECT_FALSE(suite.validate().ok());
  suite = ResponseSuiteConfig{};
  BlacklistConfig bad;
  bad.message_threshold = 0;
  suite.blacklist = bad;
  EXPECT_FALSE(suite.validate().ok());
}

TEST(ResponseSuite, ConsentForSuiteHonorsEducation) {
  ResponseSuiteConfig suite = no_response();
  EXPECT_NEAR(consent_for_suite(suite, 0.40).eventual_acceptance_probability(), 0.40, 1e-9);
  UserEducationConfig education;
  education.eventual_acceptance = 0.10;
  suite.user_education = education;
  EXPECT_NEAR(consent_for_suite(suite, 0.40).eventual_acceptance_probability(), 0.10, 1e-9);
}

TEST(Registry, BuiltInsKeepPaperOrder) {
  const ResponseRegistry& registry = ResponseRegistry::built_ins();
  std::vector<std::string> names;
  for (const MechanismInfo& info : registry.mechanisms()) names.emplace_back(info.name);
  // Registration order is a contract: SimulationContext dispatches in
  // this order, and the golden tests pin it down.
  ASSERT_GE(names.size(), 7u);
  EXPECT_EQ(names[0], "gateway_scan");
  EXPECT_EQ(names[1], "gateway_detection");
  EXPECT_EQ(names[2], "user_education");
  EXPECT_EQ(names[3], "immunization");
  EXPECT_EQ(names[4], "monitoring");
  EXPECT_EQ(names[5], "blacklist");
  EXPECT_EQ(names[6], "rate_limiter");
}

TEST(Registry, FindAndDuplicateRejection) {
  const ResponseRegistry& built_ins = ResponseRegistry::built_ins();
  ASSERT_NE(built_ins.find("blacklist"), nullptr);
  EXPECT_EQ(built_ins.find("no_such_mechanism"), nullptr);

  ResponseRegistry registry;
  registry.register_mechanism(*built_ins.find("blacklist"));
  EXPECT_THROW(registry.register_mechanism(*built_ins.find("blacklist")),
               std::invalid_argument);
}

TEST(Registry, BuildEnabledSkipsStandingConditions) {
  ResponseSuiteConfig suite = no_response();
  suite.user_education = UserEducationConfig{};
  suite.blacklist = BlacklistConfig{};
  auto built = ResponseRegistry::built_ins().build_enabled(suite);
  // user_education builds no event-hook object; only blacklist does.
  ASSERT_EQ(built.size(), 1u);
  EXPECT_STREQ(built[0]->name(), "blacklist");
}

TEST(Registry, MechanismNamesMatchRegistryKeys) {
  // Every buildable mechanism must report the name it is registered
  // under — the registry key doubles as ResponseMechanism::name().
  ResponseSuiteConfig all;
  all.gateway_scan = GatewayScanConfig{};
  all.gateway_detection = GatewayDetectionConfig{};
  all.user_education = UserEducationConfig{};
  all.immunization = ImmunizationConfig{};
  all.monitoring = MonitoringConfig{};
  all.blacklist = BlacklistConfig{};
  all.rate_limiter = RateLimiterConfig{};
  for (const MechanismInfo& info : ResponseRegistry::built_ins().mechanisms()) {
    auto mechanism = info.build(all);
    if (mechanism) {
      EXPECT_STREQ(mechanism->name(), info.name);
    }
  }
}

}  // namespace
}  // namespace mvsim::response
