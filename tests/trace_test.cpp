// Unit tests for src/trace: the bounded event buffer, causal-link
// integrity of recorded simulations, transmission-tree analytics and
// the JSONL / Chrome trace_event exporters (lossless round-trips).
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "core/presets.h"
#include "core/scenario.h"
#include "core/simulation.h"
#include "trace/analysis.h"
#include "trace/export.h"
#include "trace/trace.h"

namespace mvsim::trace {
namespace {

core::ScenarioConfig traced_scenario() {
  core::ScenarioConfig config;
  config.name = "trace-test";
  config.population = 150;
  config.topology.mean_degree = 12.0;
  config.virus = virus::virus1();
  config.horizon = SimTime::hours(72.0);
  config.sample_step = SimTime::hours(1.0);
  return config;
}

Event make_event(double hours, EventKind kind, PhoneId phone) {
  Event event;
  event.time = SimTime::hours(hours);
  event.kind = kind;
  event.phone = phone;
  return event;
}

TEST(EventKindNames, RoundTripThroughStrings) {
  for (EventKind kind :
       {EventKind::kMessageSent, EventKind::kMessageBlocked, EventKind::kMessageDelivered,
        EventKind::kInfection, EventKind::kPatchApplied, EventKind::kReboot,
        EventKind::kDetectabilityCrossed, EventKind::kMechanismAction}) {
    EventKind parsed = EventKind::kInfection;
    ASSERT_TRUE(event_kind_from_string(to_string(kind), parsed)) << to_string(kind);
    EXPECT_EQ(parsed, kind);
  }
  EventKind parsed = EventKind::kInfection;
  EXPECT_FALSE(event_kind_from_string("not-a-kind", parsed));
}

TEST(TraceBufferTest, CountsAndTimeQueries) {
  TraceBuffer buffer;
  buffer.record(make_event(1.0, EventKind::kInfection, 7));
  buffer.record(make_event(2.0, EventKind::kDetectabilityCrossed, kInvalidPhoneId));
  buffer.record(make_event(3.0, EventKind::kInfection, 9));
  EXPECT_EQ(buffer.count(EventKind::kInfection), 2u);
  EXPECT_EQ(buffer.count(EventKind::kDetectabilityCrossed), 1u);
  EXPECT_EQ(buffer.first_time(EventKind::kInfection), SimTime::hours(1.0));
  EXPECT_EQ(buffer.last_time(EventKind::kInfection), SimTime::hours(3.0));
  EXPECT_EQ(buffer.first_time(EventKind::kPatchApplied), SimTime::infinity());
  EXPECT_EQ(buffer.last_time(EventKind::kPatchApplied), SimTime::infinity());
  buffer.clear();
  EXPECT_TRUE(buffer.events().empty());
  EXPECT_EQ(buffer.recorded(), 0u);
}

TEST(TraceBufferTest, CsvExport) {
  TraceBuffer buffer;
  Event infection = make_event(1.0, EventKind::kInfection, 7);
  infection.peer = 3;
  infection.message = 12;
  infection.detail = "mms";
  buffer.record(infection);
  buffer.record(make_event(2.0, EventKind::kDetectabilityCrossed, kInvalidPhoneId));
  std::ostringstream out;
  buffer.write_csv(out);
  EXPECT_EQ(out.str(),
            "hours,kind,phone,peer,message,value,detail,shard\n"
            "1,infection,7,3,12,0,mms,\n"
            "2,detected,,,,0,,\n");
}

TEST(TraceBufferTest, BoundedCaptureDropsAndCounts) {
  TraceBuffer buffer(3);
  for (int i = 0; i < 5; ++i) {
    buffer.record(make_event(static_cast<double>(i), EventKind::kInfection,
                             static_cast<PhoneId>(i)));
  }
  EXPECT_EQ(buffer.capacity(), 3u);
  ASSERT_EQ(buffer.events().size(), 3u);
  EXPECT_EQ(buffer.dropped(), 2u);
  EXPECT_EQ(buffer.recorded(), 5u);
  // The kept prefix is the *earliest* events — the ones that explain
  // how the outbreak started.
  EXPECT_EQ(buffer.events().back().phone, 2u);
  buffer.clear();
  EXPECT_EQ(buffer.dropped(), 0u);
  EXPECT_EQ(buffer.capacity(), 3u) << "clear() keeps the capacity";
}

TEST(TraceBufferTest, MergeShardsOrdersByTimeThenShardAndConservesCounts) {
  // Two shard buffers plus a coordinator (kNoShard) buffer. The merge
  // must interleave by time; at equal times the lower shard id wins and
  // kNoShard sorts last; within one buffer the recorded order is kept.
  TraceBuffer shard0(10);
  shard0.set_shard(0);
  shard0.record(make_event(1.0, EventKind::kInfection, 1));
  shard0.record(make_event(3.0, EventKind::kInfection, 2));
  TraceBuffer shard1(10);
  shard1.set_shard(1);
  shard1.record(make_event(1.0, EventKind::kInfection, 3));
  shard1.record(make_event(2.0, EventKind::kInfection, 4));
  TraceBuffer engine(10);  // no shard: coordinator events
  engine.record(make_event(1.0, EventKind::kDetectabilityCrossed, kInvalidPhoneId));

  std::vector<const TraceBuffer*> buffers = {&shard1, &shard0, &engine};
  TraceBuffer merged = TraceBuffer::merge_shards(buffers);
  ASSERT_EQ(merged.events().size(), 5u);
  std::vector<PhoneId> phones;
  for (const Event& e : merged.events()) phones.push_back(e.phone);
  // t=1: shard 0, shard 1, then the coordinator; t=2: shard 1; t=3: shard 0.
  EXPECT_EQ(phones, (std::vector<PhoneId>{1, 3, kInvalidPhoneId, 4, 2}));
  EXPECT_EQ(merged.events()[0].shard, 0u);
  EXPECT_EQ(merged.events()[1].shard, 1u);
  EXPECT_EQ(merged.events()[2].shard, kNoShard);
  EXPECT_EQ(merged.capacity(), 30u) << "merged capacity = sum of inputs";
  EXPECT_EQ(merged.recorded(), 5u);
  EXPECT_EQ(merged.dropped(), 0u);
}

TEST(TraceBufferTest, MergeShardsSumsDropsAndSaturatesUnboundedCapacity) {
  TraceBuffer capped(1);
  capped.set_shard(0);
  capped.record(make_event(1.0, EventKind::kInfection, 1));
  capped.record(make_event(2.0, EventKind::kInfection, 2));  // dropped
  TraceBuffer unbounded = TraceBuffer::unbounded();
  unbounded.set_shard(1);
  unbounded.record(make_event(1.5, EventKind::kInfection, 3));

  std::vector<const TraceBuffer*> buffers = {&capped, &unbounded};
  TraceBuffer merged = TraceBuffer::merge_shards(buffers);
  EXPECT_EQ(merged.capacity(), TraceBuffer::unbounded().capacity())
      << "any unbounded input makes the merge unbounded";
  EXPECT_EQ(merged.dropped(), 1u);
  EXPECT_EQ(merged.recorded(), 3u) << "recorded() is conserved across the merge";
  ASSERT_EQ(merged.events().size(), 2u);
  EXPECT_EQ(merged.events()[0].phone, 1u);
  EXPECT_EQ(merged.events()[1].phone, 3u);
}

TEST(TraceBufferTest, RecordActionHelper) {
  TraceBuffer buffer;
  record_action(&buffer, SimTime::hours(5.0), "blacklist", "blacklisted", 42);
  ASSERT_EQ(buffer.events().size(), 1u);
  const Event& event = buffer.events().front();
  EXPECT_EQ(event.kind, EventKind::kMechanismAction);
  EXPECT_EQ(event.phone, 42u);
  EXPECT_EQ(event.detail, "blacklist:blacklisted");
  EXPECT_NO_THROW(record_action(nullptr, SimTime::zero(), "x", "y"));
}

// Every MMS infection must be explained by a prior delivery of the
// triggering message from the named infector, and every delivery by a
// prior submission — the causal chain the tentpole promises.
TEST(CausalIntegrity, InfectionsTraceBackToDeliveriesAndSends) {
  TraceBuffer buffer = TraceBuffer::unbounded();
  core::Simulation sim(traced_scenario(), 101, &buffer);
  core::ReplicationResult result = sim.run();
  ASSERT_GT(result.total_infected, 1u) << "outbreak fizzled; pick another seed";

  std::unordered_set<std::uint64_t> submitted;
  // delivery key: message id -> recipients seen so far.
  std::unordered_map<std::uint64_t, std::set<PhoneId>> delivered;
  std::unordered_set<PhoneId> infected;
  SimTime last = SimTime::zero();
  for (const Event& event : buffer.events()) {
    ASSERT_GE(event.time, last) << "trace must be time-ordered";
    last = event.time;
    switch (event.kind) {
      case EventKind::kMessageSent:
        EXPECT_TRUE(infected.count(event.phone))
            << "phone " << event.phone << " sent a virus message while not traced as infected";
        submitted.insert(event.message);
        break;
      case EventKind::kMessageDelivered:
        EXPECT_TRUE(submitted.count(event.message))
            << "delivery of message " << event.message << " without a prior submission";
        delivered[event.message].insert(event.phone);
        break;
      case EventKind::kMessageBlocked:
        EXPECT_TRUE(submitted.count(event.message));
        EXPECT_FALSE(event.detail.empty()) << "blocks must name the blocking mechanism";
        break;
      case EventKind::kInfection:
        if (event.detail == "seed") {
          EXPECT_EQ(event.peer, kInvalidPhoneId);
        } else if (event.detail == "mms") {
          EXPECT_TRUE(infected.count(event.peer))
              << "infector " << event.peer << " was never traced as infected";
          auto it = delivered.find(event.message);
          ASSERT_NE(it, delivered.end())
              << "infection via message " << event.message << " that was never delivered";
          EXPECT_TRUE(it->second.count(event.phone))
              << "message " << event.message << " was not delivered to victim " << event.phone;
        }
        infected.insert(event.phone);
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(infected.size(), result.total_infected);
}

TEST(Analysis, ReconstructsGenerationsAndAttribution) {
  // Hand-built tree: seed 0 infects 1 and 2 (gen 1); 1 infects 3
  // (gen 2). One message from 2 is blocked by "gateway-scan" with two
  // prospective recipients — a truncated chain. Phone 9's infector
  // never appears: an orphan root.
  std::vector<Event> events;
  Event seed = make_event(0.0, EventKind::kInfection, 0);
  seed.detail = "seed";
  events.push_back(seed);

  auto infect = [](double hours, PhoneId victim, PhoneId infector, std::uint64_t msg,
                   const char* channel) {
    Event e = make_event(hours, EventKind::kInfection, victim);
    e.peer = infector;
    e.message = msg;
    e.detail = channel;
    return e;
  };
  Event sent1 = make_event(0.5, EventKind::kMessageSent, 0);
  sent1.message = 1;
  sent1.value = 2;
  events.push_back(sent1);
  events.push_back(infect(1.0, 1, 0, 1, "mms"));
  events.push_back(infect(2.0, 2, 0, 1, "mms"));
  events.push_back(infect(6.0, 3, 1, 2, "mms"));
  events.push_back(infect(7.0, 9, 77, 3, "bluetooth"));  // infector 77 unknown

  Event blocked = make_event(8.0, EventKind::kMessageBlocked, 2);
  blocked.message = 4;
  blocked.value = 2;
  blocked.detail = "gateway-scan";
  events.push_back(blocked);
  Event detected = make_event(9.0, EventKind::kDetectabilityCrossed, kInvalidPhoneId);
  events.push_back(detected);

  TreeStats stats = analyze(events);
  EXPECT_EQ(stats.infections, 5u);
  EXPECT_EQ(stats.seeds, 1u);
  EXPECT_EQ(stats.orphans, 1u);
  EXPECT_EQ(stats.max_generation, 2u);
  EXPECT_EQ(stats.infections_via_mms, 3u);
  EXPECT_EQ(stats.infections_via_bluetooth, 1u);
  EXPECT_EQ(stats.detected_at, SimTime::hours(9.0));

  ASSERT_EQ(stats.generations.size(), 3u);
  EXPECT_EQ(stats.generations[0].infections, 2u);  // seed + orphan root
  EXPECT_EQ(stats.generations[1].infections, 2u);
  EXPECT_EQ(stats.generations[2].infections, 1u);
  // Gen 0 (seed + orphan) caused the two gen-1 infections: R = 1.0.
  EXPECT_DOUBLE_EQ(stats.generations[0].effective_r, 1.0);
  EXPECT_DOUBLE_EQ(stats.generations[1].effective_r, 0.5);
  EXPECT_DOUBLE_EQ(stats.generations[2].effective_r, 0.0);

  ASSERT_EQ(stats.mechanism_blocks.size(), 1u);
  EXPECT_EQ(stats.mechanism_blocks[0].mechanism, "gateway-scan");
  EXPECT_EQ(stats.mechanism_blocks[0].messages_blocked, 1u);
  EXPECT_EQ(stats.mechanism_blocks[0].chains_truncated, 1u)
      << "sender 2 is an infected tree node, so the block truncated a chain";
  EXPECT_EQ(stats.mechanism_blocks[0].recipients_spared, 2u);

  std::ostringstream report;
  write_report(stats, report);
  EXPECT_NE(report.str().find("gateway-scan"), std::string::npos);
  EXPECT_NE(report.str().find("generation"), std::string::npos);
}

TEST(Analysis, AgreesWithSimulationTotals) {
  TraceBuffer buffer = TraceBuffer::unbounded();
  core::ScenarioConfig config = traced_scenario();
  config.responses.gateway_scan = response::GatewayScanConfig{};
  core::Simulation sim(config, 202, &buffer);
  core::ReplicationResult result = sim.run();

  TreeStats stats = analyze(buffer.events());
  EXPECT_EQ(stats.infections, result.total_infected);
  EXPECT_EQ(stats.seeds, 1u);
  EXPECT_EQ(stats.orphans, 0u) << "an unbounded trace loses no infectors";
  EXPECT_EQ(stats.messages_sent, result.gateway.messages_submitted);
  EXPECT_EQ(stats.messages_blocked, result.gateway.messages_blocked);
  EXPECT_EQ(stats.detected_at, result.detected_at);
  if (result.gateway.messages_blocked > 0) {
    ASSERT_FALSE(stats.mechanism_blocks.empty());
    std::uint64_t attributed = 0;
    for (const MechanismBlockRow& row : stats.mechanism_blocks) {
      attributed += row.messages_blocked;
    }
    EXPECT_EQ(attributed, result.gateway.messages_blocked)
        << "every block must be attributed to exactly one mechanism";
  }
}

TEST(Export, JsonlRoundTripIsLossless) {
  TraceBuffer buffer(100);
  Event infection = make_event(1.25, EventKind::kInfection, 7);
  infection.peer = 3;
  infection.message = 12;
  infection.detail = "mms";
  buffer.record(infection);
  Event blocked = make_event(2.75, EventKind::kMessageBlocked, 3);
  blocked.message = 13;
  blocked.value = 4;
  blocked.detail = "blacklist";
  buffer.record(blocked);
  buffer.record(make_event(3.5, EventKind::kDetectabilityCrossed, kInvalidPhoneId));

  std::ostringstream out;
  write_jsonl(buffer, out);
  LoadedTrace loaded = read_trace(out.str());
  EXPECT_EQ(loaded.meta.capacity, 100u);
  EXPECT_EQ(loaded.meta.dropped, 0u);
  ASSERT_EQ(loaded.events.size(), buffer.events().size());
  for (std::size_t i = 0; i < loaded.events.size(); ++i) {
    EXPECT_EQ(loaded.events[i], buffer.events()[i]) << "event " << i;
  }
}

TEST(Export, ChromeTraceRoundTripIsLossless) {
  TraceBuffer buffer = TraceBuffer::unbounded();
  core::Simulation sim(traced_scenario(), 101, &buffer);
  (void)sim.run();
  ASSERT_GT(buffer.events().size(), 10u);

  std::ostringstream out;
  write_chrome_trace(buffer, out);
  LoadedTrace loaded = read_trace(out.str());
  EXPECT_EQ(loaded.meta.capacity, 0u) << "unbounded encodes as capacity 0";
  EXPECT_EQ(loaded.meta.dropped, 0u);
  ASSERT_EQ(loaded.events.size(), buffer.events().size());
  for (std::size_t i = 0; i < loaded.events.size(); ++i) {
    ASSERT_EQ(loaded.events[i], buffer.events()[i]) << "event " << i;
  }
}

TEST(Export, BothFormatsCarryDropCounts) {
  TraceBuffer buffer(2);
  for (int i = 0; i < 5; ++i) {
    buffer.record(make_event(static_cast<double>(i), EventKind::kInfection,
                             static_cast<PhoneId>(i)));
  }
  for (bool jsonl : {true, false}) {
    std::ostringstream out;
    if (jsonl) {
      write_jsonl(buffer, out);
    } else {
      write_chrome_trace(buffer, out);
    }
    LoadedTrace loaded = read_trace(out.str());
    EXPECT_EQ(loaded.meta.capacity, 2u);
    EXPECT_EQ(loaded.meta.dropped, 3u);
    EXPECT_EQ(loaded.events.size(), 2u);
  }
}

TEST(Export, RejectsMalformedInput) {
  EXPECT_THROW((void)read_trace(""), std::runtime_error);
  EXPECT_THROW((void)read_trace("{\"no\": \"events\"}\n{\"kind\": \"infection\"}\n"),
               std::runtime_error);  // second line lacks "t"
  EXPECT_THROW((void)read_trace("{\"t\": 1, \"kind\": \"warp-drive\"}\n"), std::runtime_error);
  EXPECT_THROW((void)read_trace_file("/nonexistent/trace.jsonl"), std::runtime_error);
}

// The golden tests pin bit-identical *results* under tracing; this
// pins the trace itself: same seed, same events, independent of the
// buffer's bound (the kept prefix matches).
TEST(Determinism, SameSeedSameTrace) {
  TraceBuffer full = TraceBuffer::unbounded();
  core::Simulation a(traced_scenario(), 303, &full);
  (void)a.run();
  TraceBuffer capped(50);
  core::Simulation b(traced_scenario(), 303, &capped);
  (void)b.run();
  ASSERT_EQ(capped.events().size(), 50u);
  EXPECT_EQ(capped.recorded(), full.recorded());
  for (std::size_t i = 0; i < capped.events().size(); ++i) {
    ASSERT_EQ(capped.events()[i], full.events()[i]) << "event " << i;
  }
}

}  // namespace
}  // namespace mvsim::trace
