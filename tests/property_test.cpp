// Property-based (parameterized) suites: invariants that must hold
// across whole parameter grids, not just hand-picked points.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <tuple>

#include <memory>

#include "core/presets.h"
#include "core/runner.h"
#include "core/scenario.h"
#include "des/scheduler.h"
#include "net/gateway.h"
#include "phone/phone.h"
#include "phone/phone_table.h"
#include "virus/sending_process.h"
#include "virus/targeting.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"
#include "graph/serialization.h"
#include "phone/consent.h"
#include "rng/seed.h"
#include "rng/stream.h"
#include "stats/time_series.h"
#include "virus/profile.h"

namespace mvsim {
namespace {

// ---- Graph generators: reciprocity, simplicity and degree targets
// must hold over sizes x densities x seeds. ----

using GraphParam = std::tuple<graph::PhoneId /*nodes*/, double /*mean degree*/,
                              std::uint64_t /*seed*/>;

class PowerLawProperties : public ::testing::TestWithParam<GraphParam> {};

TEST_P(PowerLawProperties, SimpleReciprocalAndOnTarget) {
  auto [nodes, mean_degree, seed] = GetParam();
  rng::Stream stream(seed);
  graph::PowerLawConfig config;
  config.node_count = nodes;
  config.target_mean_degree = mean_degree;
  graph::ContactGraph g = graph::generate_power_law(config, stream);

  EXPECT_EQ(g.node_count(), nodes);
  EXPECT_NEAR(g.average_degree(), mean_degree, mean_degree * 0.10);
  for (graph::PhoneId p = 0; p < nodes; ++p) {
    graph::PhoneId previous = 0;
    bool first = true;
    for (graph::PhoneId q : g.contacts(p)) {
      ASSERT_NE(q, p) << "self-loop";
      ASSERT_TRUE(first || q > previous) << "unsorted or duplicate contact";
      ASSERT_TRUE(g.connected(q, p)) << "non-reciprocal edge";
      previous = q;
      first = false;
    }
  }
}

TEST_P(PowerLawProperties, SerializationRoundTrips) {
  auto [nodes, mean_degree, seed] = GetParam();
  rng::Stream stream(seed ^ 0xF00D);
  graph::PowerLawConfig config;
  config.node_count = nodes;
  config.target_mean_degree = mean_degree;
  graph::ContactGraph g = graph::generate_power_law(config, stream);
  graph::ContactGraph round = graph::from_contact_list_string(graph::to_contact_list_string(g));
  EXPECT_EQ(round.edge_count(), g.edge_count());
  EXPECT_EQ(round.node_count(), g.node_count());
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndDensities, PowerLawProperties,
    ::testing::Combine(::testing::Values<graph::PhoneId>(200, 500, 1000),
                       ::testing::Values(8.0, 40.0, 80.0),
                       ::testing::Values<std::uint64_t>(1, 2)),
    [](const auto& param_info) {
      return "n" + std::to_string(std::get<0>(param_info.param)) + "_d" +
             std::to_string(static_cast<int>(std::get<1>(param_info.param))) + "_s" +
             std::to_string(std::get<2>(param_info.param));
    });

class ErdosRenyiProperties : public ::testing::TestWithParam<GraphParam> {};

TEST_P(ErdosRenyiProperties, SimpleReciprocalAndOnTarget) {
  auto [nodes, mean_degree, seed] = GetParam();
  rng::Stream stream(seed);
  graph::ContactGraph g = graph::generate_erdos_renyi(nodes, mean_degree, stream);
  EXPECT_NEAR(g.average_degree(), mean_degree, std::max(1.0, mean_degree * 0.10));
  for (graph::PhoneId p = 0; p < nodes; ++p) {
    for (graph::PhoneId q : g.contacts(p)) {
      ASSERT_TRUE(g.connected(q, p));
      ASSERT_NE(q, p);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndDensities, ErdosRenyiProperties,
    ::testing::Combine(::testing::Values<graph::PhoneId>(300, 1000),
                       ::testing::Values(5.0, 40.0, 80.0),
                       ::testing::Values<std::uint64_t>(3, 4)),
    [](const auto& param_info) {
      return "n" + std::to_string(std::get<0>(param_info.param)) + "_d" +
             std::to_string(static_cast<int>(std::get<1>(param_info.param))) + "_s" +
             std::to_string(std::get<2>(param_info.param));
    });

// ---- Consent solver: round-trips across the feasible target range. ----

class ConsentSolverProperty : public ::testing::TestWithParam<double> {};

TEST_P(ConsentSolverProperty, SolveThenEvaluateRoundTrips) {
  double target = GetParam();
  double af = phone::ConsentModel::solve_acceptance_factor(target);
  EXPECT_GE(af, 0.0);
  EXPECT_LT(af, 1.0);
  phone::ConsentModel model(af);
  EXPECT_NEAR(model.eventual_acceptance_probability(), target, 1e-9);
}

TEST_P(ConsentSolverProperty, PerMessageCurveIsMonotoneDecreasing) {
  double target = GetParam();
  phone::ConsentModel model = phone::ConsentModel::for_eventual_acceptance(target);
  for (int n = 1; n < 40; ++n) {
    EXPECT_GE(model.acceptance_probability(n), model.acceptance_probability(n + 1));
  }
}

INSTANTIATE_TEST_SUITE_P(TargetGrid, ConsentSolverProperty,
                         ::testing::Values(0.01, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70));

// ---- Scheduler: random workloads preserve order and lose no events. ----

class SchedulerFuzzProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerFuzzProperty, RandomScheduleCancelWorkload) {
  rng::Stream stream(GetParam());
  des::Scheduler sched;
  int fired = 0;
  int expected = 0;
  std::vector<des::EventHandle> handles;
  SimTime last = SimTime::zero();
  bool monotone = true;

  for (int i = 0; i < 2000; ++i) {
    SimTime at = SimTime::minutes(stream.uniform(0.0, 10000.0));
    handles.push_back(sched.schedule_at(at, [&] {
      if (sched.now() < last) monotone = false;
      last = sched.now();
      ++fired;
    }));
    ++expected;
    if (stream.bernoulli(0.3) && !handles.empty()) {
      auto victim = handles[static_cast<std::size_t>(stream.uniform_index(handles.size()))];
      if (sched.cancel(victim)) --expected;
    }
  }
  sched.run_to_quiescence();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(fired, expected) << "every non-cancelled event fires exactly once";
  EXPECT_EQ(sched.pending_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerFuzzProperty,
                         ::testing::Values<std::uint64_t>(11, 22, 33, 44, 55));

// ---- TimeSeries: resampling agrees with exact evaluation anywhere. ----

class TimeSeriesResampleProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TimeSeriesResampleProperty, ResampleMatchesAt) {
  rng::Stream stream(GetParam());
  stats::TimeSeries series;
  SimTime t = SimTime::zero();
  for (int i = 0; i < 200; ++i) {
    t += SimTime::minutes(stream.exponential(10.0));
    series.push(t, static_cast<double>(i + 1));
  }
  SimTime step = SimTime::minutes(stream.uniform(1.0, 60.0));
  SimTime horizon = SimTime::minutes(3000.0);
  auto grid = series.resample(step, horizon);
  for (const auto& point : grid) {
    ASSERT_DOUBLE_EQ(point.value, series.at(point.time));
  }
  ASSERT_EQ(grid.front().time, SimTime::zero());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimeSeriesResampleProperty,
                         ::testing::Values<std::uint64_t>(101, 202, 303, 404));

// ---- Virus budgets: no profile ever exceeds its allowance within a
// window, across the profile grid. ----

struct BudgetParam {
  virus::BudgetKind kind;
  std::uint32_t limit;
  double min_gap_minutes;
};

class VirusBudgetProperty : public ::testing::TestWithParam<BudgetParam> {};

TEST_P(VirusBudgetProperty, PerWindowSendsNeverExceedBudget) {
  const BudgetParam& param = GetParam();

  // Drive a single sending process in isolation and count its messages
  // per aligned 24-hour bucket through a gateway observer.
  des::Scheduler scheduler;
  rng::Stream virus_stream(777), user_stream(778), net_stream(779);
  net::Gateway gateway(scheduler, net_stream, SimTime::minutes(1.0));
  std::vector<int> per_window(8, 0);
  class WindowCounter final : public net::GatewayObserver {
   public:
    explicit WindowCounter(std::vector<int>& buckets) : buckets_(&buckets) {}
    void on_submitted(const net::MmsMessage&, SimTime now) override {
      auto bucket = static_cast<std::size_t>(now.to_days());
      if (bucket < buckets_->size()) ++(*buckets_)[bucket];
    }
    std::vector<int>* buckets_;
  } counter(per_window);
  gateway.add_observer(counter);

  phone::ConsentModel consent(0.468);
  phone::PhoneEnvironment phone_env;
  phone_env.scheduler = &scheduler;
  phone_env.user_stream = &user_stream;
  phone_env.consent = &consent;
  phone::PhoneTable phones(1, &phone_env);
  phones.set_susceptible(0, true);
  phones.force_infect(0);

  virus::VirusProfile profile = virus::virus1();
  profile.budget = param.kind;
  profile.budget_limit = param.limit == 0 ? 1 : param.limit;
  profile.min_message_gap = SimTime::minutes(param.min_gap_minutes);
  profile.align_first_burst = (param.kind == virus::BudgetKind::kPerDayAligned);

  virus::SendingEnvironment env;
  env.scheduler = &scheduler;
  env.virus_stream = &virus_stream;
  env.gateway = &gateway;
  std::vector<net::PhoneId> contacts{1, 2, 3, 4, 5, 6, 7, 8};
  virus::SendingProcess process(env, profile, phones, 0,
                                std::make_unique<virus::ContactListTargeter>(
                                    std::span<const net::PhoneId>(contacts), virus_stream));
  process.start();
  scheduler.run_until(SimTime::days(6.0));

  for (std::size_t day = 0; day < 6; ++day) {
    switch (param.kind) {
      case virus::BudgetKind::kPerDayAligned:
        ASSERT_LE(per_window[day], static_cast<int>(param.limit)) << "day " << day;
        break;
      case virus::BudgetKind::kPerReboot:
        // Exponential reboots can refill within a day, but the count is
        // still bounded by (reboots that day + 1) x limit; with mean
        // 24 h, 4 refills in one day has probability < 1e-3.
        ASSERT_LE(per_window[day], static_cast<int>(param.limit) * 5) << "day " << day;
        break;
      case virus::BudgetKind::kUnlimited: {
        // Only the gap bounds the rate.
        double slots_per_day = 24.0 * 60.0 / param.min_gap_minutes;
        ASSERT_LE(per_window[day], static_cast<int>(slots_per_day) + 1) << "day " << day;
        break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    BudgetGrid, VirusBudgetProperty,
    ::testing::Values(BudgetParam{virus::BudgetKind::kPerReboot, 10, 30.0},
                      BudgetParam{virus::BudgetKind::kPerReboot, 30, 30.0},
                      BudgetParam{virus::BudgetKind::kPerDayAligned, 10, 1.0},
                      BudgetParam{virus::BudgetKind::kPerDayAligned, 30, 1.0},
                      BudgetParam{virus::BudgetKind::kUnlimited, 0, 5.0}),
    [](const auto& param_info) { return "case" + std::to_string(param_info.index); });

// ---- Whole-simulation determinism across every virus preset. ----

class DeterminismProperty : public ::testing::TestWithParam<int> {};

TEST_P(DeterminismProperty, SameSeedSameTrajectory) {
  const auto suite = virus::paper_virus_suite();
  const auto& profile = suite[static_cast<std::size_t>(GetParam())];
  core::ScenarioConfig config;
  config.population = 150;
  config.topology.mean_degree = 15.0;
  config.virus = profile;
  config.horizon = min(core::paper_horizon_for(profile), SimTime::days(3.0));

  core::Simulation a(config, 4242), b(config, 4242);
  core::ReplicationResult ra = a.run(), rb = b.run();
  EXPECT_EQ(ra.total_infected, rb.total_infected) << profile.name;
  EXPECT_EQ(ra.gateway.messages_submitted, rb.gateway.messages_submitted) << profile.name;
  EXPECT_EQ(ra.gateway.recipients_delivered, rb.gateway.recipients_delivered) << profile.name;
}

INSTANTIATE_TEST_SUITE_P(AllViruses, DeterminismProperty, ::testing::Values(0, 1, 2, 3),
                         [](const auto& param_info) {
                           return "virus" + std::to_string(param_info.param + 1);
                         });

// ---- Infection count is monotone nondecreasing in every run. ----

class MonotoneInfectionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MonotoneInfectionProperty, CurveNeverDecreases) {
  core::ScenarioConfig config;
  config.population = 200;
  config.topology.mean_degree = 20.0;
  config.virus = virus::virus3();
  config.horizon = SimTime::hours(25.0);
  core::Simulation sim(config, GetParam());
  core::ReplicationResult r = sim.run();
  double last = 0.0;
  for (const auto& point : r.infections.points()) {
    ASSERT_GE(point.value, last);
    ASSERT_GE(point.time, SimTime::zero());
    last = point.value;
  }
  EXPECT_LE(last, 200.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonotoneInfectionProperty,
                         ::testing::Values<std::uint64_t>(1, 2, 3, 4, 5, 6));

// ---- Seed derivation: no collisions across a replication x component
// grid of realistic size. ----

TEST(SeedLattice, NoCollisionsOnReplicationComponentGrid) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t rep = 0; rep < 200; ++rep) {
    for (std::uint64_t component = 1; component <= 6; ++component) {
      seen.insert(rng::derive_seed(rng::derive_seed(0xBEEF, rep), component));
    }
  }
  EXPECT_EQ(seen.size(), 1200u);
}

}  // namespace
}  // namespace mvsim
