// Tests for src/obs: the NDJSON stats stream — header schema, sample
// records, thread-safety of interleaved writers, and the three-way
// contract between RunStream::sample_fields(), the keys an emitted
// record actually carries, and the field table in
// docs/observability.md.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/stats_stream.h"
#include "util/json.h"

namespace mvsim::obs {
namespace {

RunSample sharded_sample() {
  RunSample sample;
  sample.replication = 3;
  sample.time = SimTime::minutes(90.0);
  sample.infected = 17;
  sample.patched = 4;
  sample.messages_blocked = 9;
  sample.events_executed = 1234;
  sample.events_per_sec = 5000.5;
  sample.queue_depth = 42;
  sample.mailbox_sent = 11;
  sample.mailbox_received = 10;
  ShardSample shard0;
  shard0.shard = 0;
  shard0.events_executed = 700;
  shard0.queue_depth = 30;
  shard0.barrier_wait_ms = 0.25;
  ShardSample shard1;
  shard1.shard = 1;
  shard1.events_executed = 534;
  shard1.queue_depth = 12;
  shard1.barrier_wait_ms = 0.0;
  sample.shards = {shard0, shard1};
  return sample;
}

std::vector<std::string> object_keys(const json::Object& object) {
  std::vector<std::string> keys;
  for (const auto& [key, value] : object.entries()) keys.push_back(key);
  return keys;
}

TEST(RunStreamTest, HeaderCarriesSchemaVersionAndFieldLists) {
  std::ostringstream out;
  RunStream stream(out);
  stream.write_header("unit-scenario", 8, 4);
  json::Value doc = json::parse(out.str());
  const json::Object& root = doc.as_object();
  EXPECT_EQ(root.at("type").as_string(), "mvsim-stats");
  EXPECT_EQ(root.at("version").as_number(), static_cast<double>(RunStream::kVersion));
  EXPECT_EQ(root.at("scenario").as_string(), "unit-scenario");
  EXPECT_EQ(root.at("replications").as_number(), 8.0);
  EXPECT_EQ(root.at("shards").as_number(), 4.0);
  const json::Array& fields = root.at("fields").as_array();
  ASSERT_EQ(fields.size(), RunStream::sample_fields().size());
  for (std::size_t i = 0; i < fields.size(); ++i) {
    EXPECT_EQ(fields[i].as_string(), RunStream::sample_fields()[i]);
  }
  const json::Array& shard_fields = root.at("shard_fields").as_array();
  ASSERT_EQ(shard_fields.size(), RunStream::shard_fields().size());
  for (std::size_t i = 0; i < shard_fields.size(); ++i) {
    EXPECT_EQ(shard_fields[i].as_string(), RunStream::shard_fields()[i]);
  }
}

TEST(RunStreamTest, SampleRecordKeysMatchTheDeclaredSchemaExactly) {
  // The contract's first two legs: every emitted sample carries exactly
  // sample_fields(), in order, and every shard entry exactly
  // shard_fields() — serial samples included (empty shards array, zero
  // mailboxes), so consumers never need per-engine parsing.
  std::ostringstream out;
  RunStream stream(out);
  stream.write_sample(sharded_sample());
  RunSample serial;
  serial.replication = 0;
  serial.time = SimTime::minutes(30.0);
  stream.write_sample(serial);
  EXPECT_EQ(stream.samples_written(), 2u);

  std::istringstream lines(out.str());
  std::string line;
  int parsed = 0;
  while (std::getline(lines, line)) {
    json::Value doc = json::parse(line);
    const json::Object& record = doc.as_object();
    EXPECT_EQ(object_keys(record), RunStream::sample_fields()) << line;
    EXPECT_EQ(record.at("type").as_string(), "sample");
    for (const json::Value& entry : record.at("shards").as_array()) {
      EXPECT_EQ(object_keys(entry.as_object()), RunStream::shard_fields()) << line;
    }
    ++parsed;
  }
  EXPECT_EQ(parsed, 2);
}

TEST(RunStreamTest, ShardedSampleValuesRoundTrip) {
  std::ostringstream out;
  RunStream stream(out);
  stream.write_sample(sharded_sample());
  json::Value doc = json::parse(out.str());
  const json::Object& record = doc.as_object();
  EXPECT_EQ(record.at("rep").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(record.at("t_min").as_number(), 90.0);
  EXPECT_EQ(record.at("infected").as_number(), 17.0);
  EXPECT_EQ(record.at("patched").as_number(), 4.0);
  EXPECT_EQ(record.at("blocked").as_number(), 9.0);
  EXPECT_EQ(record.at("events").as_number(), 1234.0);
  EXPECT_DOUBLE_EQ(record.at("events_per_sec").as_number(), 5000.5);
  EXPECT_EQ(record.at("queue").as_number(), 42.0);
  EXPECT_EQ(record.at("mailbox_sent").as_number(), 11.0);
  EXPECT_EQ(record.at("mailbox_received").as_number(), 10.0);
  const json::Array& shards = record.at("shards").as_array();
  ASSERT_EQ(shards.size(), 2u);
  EXPECT_EQ(shards[0].as_object().at("shard").as_number(), 0.0);
  EXPECT_EQ(shards[0].as_object().at("events").as_number(), 700.0);
  EXPECT_DOUBLE_EQ(shards[0].as_object().at("barrier_wait_ms").as_number(), 0.25);
  EXPECT_EQ(shards[1].as_object().at("queue").as_number(), 12.0);
}

TEST(RunStreamTest, ConcurrentWritersInterleaveWholeLines) {
  // Replications on parallel workers share one stream; the mutex must
  // keep every line intact (parseable, correct schema) under load.
  std::ostringstream out;
  RunStream stream(out);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&stream, t] {
      for (int i = 0; i < kPerThread; ++i) {
        RunSample sample;
        sample.replication = t;
        sample.time = SimTime::minutes(static_cast<double>(i));
        stream.write_sample(sample);
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  EXPECT_EQ(stream.samples_written(), static_cast<std::uint64_t>(kThreads * kPerThread));

  std::istringstream lines(out.str());
  std::string line;
  int parsed = 0;
  while (std::getline(lines, line)) {
    json::Value doc = json::parse(line);
    EXPECT_EQ(object_keys(doc.as_object()), RunStream::sample_fields());
    ++parsed;
  }
  EXPECT_EQ(parsed, kThreads * kPerThread);
}

// The contract's third leg: every field the stream emits is documented
// (backticked) in docs/observability.md, so the docs, the header's
// "fields" array and the records can never drift apart silently.
TEST(RunStreamDocs, EveryStreamFieldIsDocumented) {
#ifndef MVSIM_SOURCE_DIR
  GTEST_SKIP() << "MVSIM_SOURCE_DIR not defined";
#else
  std::ifstream file(std::string(MVSIM_SOURCE_DIR) + "/docs/observability.md");
  ASSERT_TRUE(file.is_open()) << "docs/observability.md missing";
  std::stringstream buffer;
  buffer << file.rdbuf();
  const std::string doc = buffer.str();
  for (const std::string& field : RunStream::sample_fields()) {
    EXPECT_NE(doc.find("`" + field + "`"), std::string::npos)
        << field << " is in RunStream::sample_fields() but not documented";
  }
  for (const std::string& field : RunStream::shard_fields()) {
    EXPECT_NE(doc.find("`" + field + "`"), std::string::npos)
        << field << " is in RunStream::shard_fields() but not documented";
  }
  EXPECT_NE(doc.find("\"type\":\"mvsim-stats\""), std::string::npos)
      << "the docs must show the header record";
#endif
}

}  // namespace
}  // namespace mvsim::obs
