// Tests for src/obs: the NDJSON stats stream, run manifests, the
// experiment ledger, the sweep stream and the outcome comparison —
// header/record schemas, thread-safety of interleaved writers, and
// the three-way contracts between the canonical field lists, the keys
// emitted records actually carry, and the tables in
// docs/observability.md.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/manifest.h"
#include "obs/report.h"
#include "obs/stats_stream.h"
#include "obs/sweep_stream.h"
#include "util/json.h"

namespace mvsim::obs {
namespace {

RunSample sharded_sample() {
  RunSample sample;
  sample.replication = 3;
  sample.time = SimTime::minutes(90.0);
  sample.infected = 17;
  sample.patched = 4;
  sample.messages_blocked = 9;
  sample.events_executed = 1234;
  sample.events_per_sec = 5000.5;
  sample.queue_depth = 42;
  sample.mailbox_sent = 11;
  sample.mailbox_received = 10;
  ShardSample shard0;
  shard0.shard = 0;
  shard0.events_executed = 700;
  shard0.queue_depth = 30;
  shard0.barrier_wait_ms = 0.25;
  ShardSample shard1;
  shard1.shard = 1;
  shard1.events_executed = 534;
  shard1.queue_depth = 12;
  shard1.barrier_wait_ms = 0.0;
  sample.shards = {shard0, shard1};
  return sample;
}

std::vector<std::string> object_keys(const json::Object& object) {
  std::vector<std::string> keys;
  for (const auto& [key, value] : object.entries()) keys.push_back(key);
  return keys;
}

TEST(RunStreamTest, HeaderCarriesSchemaVersionProvenanceAndFieldLists) {
  std::ostringstream out;
  RunStream stream(out);
  stream.write_header({"unit-scenario", "00aabbccddeeff11", 8, 4});
  json::Value doc = json::parse(out.str());
  const json::Object& root = doc.as_object();
  EXPECT_EQ(root.at("type").as_string(), "mvsim-stats");
  EXPECT_EQ(root.at("version").as_number(), static_cast<double>(RunStream::kVersion));
  EXPECT_EQ(RunStream::kVersion, 2) << "bumping the schema version needs a docs update";
  EXPECT_EQ(root.at("scenario").as_string(), "unit-scenario");
  EXPECT_EQ(root.at("scenario_hash").as_string(), "00aabbccddeeff11");
  EXPECT_EQ(root.at("git_sha").as_string(), build_info().git_sha);
  EXPECT_EQ(root.at("replications").as_number(), 8.0);
  EXPECT_EQ(root.at("shards").as_number(), 4.0);
  const json::Array& fields = root.at("fields").as_array();
  ASSERT_EQ(fields.size(), RunStream::sample_fields().size());
  for (std::size_t i = 0; i < fields.size(); ++i) {
    EXPECT_EQ(fields[i].as_string(), RunStream::sample_fields()[i]);
  }
  const json::Array& shard_fields = root.at("shard_fields").as_array();
  ASSERT_EQ(shard_fields.size(), RunStream::shard_fields().size());
  for (std::size_t i = 0; i < shard_fields.size(); ++i) {
    EXPECT_EQ(shard_fields[i].as_string(), RunStream::shard_fields()[i]);
  }
}

TEST(RunStreamTest, SampleRecordKeysMatchTheDeclaredSchemaExactly) {
  // The contract's first two legs: every emitted sample carries exactly
  // sample_fields(), in order, and every shard entry exactly
  // shard_fields() — serial samples included (empty shards array, zero
  // mailboxes), so consumers never need per-engine parsing.
  std::ostringstream out;
  RunStream stream(out);
  stream.write_sample(sharded_sample());
  RunSample serial;
  serial.replication = 0;
  serial.time = SimTime::minutes(30.0);
  stream.write_sample(serial);
  EXPECT_EQ(stream.samples_written(), 2u);

  std::istringstream lines(out.str());
  std::string line;
  int parsed = 0;
  while (std::getline(lines, line)) {
    json::Value doc = json::parse(line);
    const json::Object& record = doc.as_object();
    EXPECT_EQ(object_keys(record), RunStream::sample_fields()) << line;
    EXPECT_EQ(record.at("type").as_string(), "sample");
    for (const json::Value& entry : record.at("shards").as_array()) {
      EXPECT_EQ(object_keys(entry.as_object()), RunStream::shard_fields()) << line;
    }
    ++parsed;
  }
  EXPECT_EQ(parsed, 2);
}

TEST(RunStreamTest, ShardedSampleValuesRoundTrip) {
  std::ostringstream out;
  RunStream stream(out);
  stream.write_sample(sharded_sample());
  json::Value doc = json::parse(out.str());
  const json::Object& record = doc.as_object();
  EXPECT_EQ(record.at("rep").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(record.at("t_min").as_number(), 90.0);
  EXPECT_EQ(record.at("infected").as_number(), 17.0);
  EXPECT_EQ(record.at("patched").as_number(), 4.0);
  EXPECT_EQ(record.at("blocked").as_number(), 9.0);
  EXPECT_EQ(record.at("events").as_number(), 1234.0);
  EXPECT_DOUBLE_EQ(record.at("events_per_sec").as_number(), 5000.5);
  EXPECT_EQ(record.at("queue").as_number(), 42.0);
  EXPECT_EQ(record.at("mailbox_sent").as_number(), 11.0);
  EXPECT_EQ(record.at("mailbox_received").as_number(), 10.0);
  const json::Array& shards = record.at("shards").as_array();
  ASSERT_EQ(shards.size(), 2u);
  EXPECT_EQ(shards[0].as_object().at("shard").as_number(), 0.0);
  EXPECT_EQ(shards[0].as_object().at("events").as_number(), 700.0);
  EXPECT_DOUBLE_EQ(shards[0].as_object().at("barrier_wait_ms").as_number(), 0.25);
  EXPECT_EQ(shards[1].as_object().at("queue").as_number(), 12.0);
}

TEST(RunStreamTest, ConcurrentWritersInterleaveWholeLines) {
  // Replications on parallel workers share one stream; the mutex must
  // keep every line intact (parseable, correct schema) under load.
  std::ostringstream out;
  RunStream stream(out);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&stream, t] {
      for (int i = 0; i < kPerThread; ++i) {
        RunSample sample;
        sample.replication = t;
        sample.time = SimTime::minutes(static_cast<double>(i));
        stream.write_sample(sample);
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  EXPECT_EQ(stream.samples_written(), static_cast<std::uint64_t>(kThreads * kPerThread));

  std::istringstream lines(out.str());
  std::string line;
  int parsed = 0;
  while (std::getline(lines, line)) {
    json::Value doc = json::parse(line);
    EXPECT_EQ(object_keys(doc.as_object()), RunStream::sample_fields());
    ++parsed;
  }
  EXPECT_EQ(parsed, kThreads * kPerThread);
}

// The contract's third leg: every field the stream emits is documented
// (backticked) in docs/observability.md, so the docs, the header's
// "fields" array and the records can never drift apart silently.
TEST(RunStreamDocs, EveryStreamFieldIsDocumented) {
#ifndef MVSIM_SOURCE_DIR
  GTEST_SKIP() << "MVSIM_SOURCE_DIR not defined";
#else
  std::ifstream file(std::string(MVSIM_SOURCE_DIR) + "/docs/observability.md");
  ASSERT_TRUE(file.is_open()) << "docs/observability.md missing";
  std::stringstream buffer;
  buffer << file.rdbuf();
  const std::string doc = buffer.str();
  for (const std::string& field : RunStream::sample_fields()) {
    EXPECT_NE(doc.find("`" + field + "`"), std::string::npos)
        << field << " is in RunStream::sample_fields() but not documented";
  }
  for (const std::string& field : RunStream::shard_fields()) {
    EXPECT_NE(doc.find("`" + field + "`"), std::string::npos)
        << field << " is in RunStream::shard_fields() but not documented";
  }
  EXPECT_NE(doc.find("\"type\":\"mvsim-stats\""), std::string::npos)
      << "the docs must show the header record";
#endif
}

// ---------------------------------------------------------------------------
// Run manifests & the experiment ledger
// ---------------------------------------------------------------------------

RunManifest sample_manifest() {
  RunManifest manifest;
  manifest.scenario = "unit-scenario";
  manifest.scenario_hash = "00aabbccddeeff11";
  manifest.seed = "18446744073709551615";  // u64 max: must survive as a string
  manifest.replications = 8;
  manifest.threads = 4;
  manifest.shards = 2;
  manifest.shard_window_min = 2.5;
  manifest.build = build_info();
  manifest.phases.run_seconds = 1.75;
  manifest.phases.write_seconds = 0.125;
  manifest.peak_rss = 123456789;
  manifest.artifacts = {{"metrics", "/tmp/m.json"}, {"stats-stream", "-"}};
  manifest.outcome.final_infected_mean = 512.5;
  manifest.outcome.final_infected_ci95 = 12.25;
  manifest.outcome.peak_infected_mean = 512.5;
  manifest.outcome.time_to_peak_h = 18.5;
  manifest.outcome.patched_mean = 100.0;
  manifest.outcome.messages_blocked_mean = 42.0;
  manifest.outcome.total_events = 987654;
  return manifest;
}

std::string temp_path(const char* tag) {
  return "/tmp/mvsim_obs_test_" + std::string(tag) + "_" + std::to_string(::getpid());
}

TEST(ManifestTest, JsonRoundTripPreservesEveryField) {
  RunManifest original = sample_manifest();
  SweepInfo sweep;
  sweep.parameter = "gateway_scan.activation_delay_h";
  sweep.value = 6.0;
  sweep.index = 2;
  sweep.count = 5;
  original.sweep = sweep;

  RunManifest copy = manifest_from_json(json::parse(json::stringify(to_json(original), 0)));
  EXPECT_EQ(copy.scenario, original.scenario);
  EXPECT_EQ(copy.scenario_hash, original.scenario_hash);
  EXPECT_EQ(copy.seed, "18446744073709551615");
  EXPECT_EQ(copy.replications, 8);
  EXPECT_EQ(copy.threads, 4);
  EXPECT_EQ(copy.shards, 2u);
  EXPECT_DOUBLE_EQ(copy.shard_window_min, 2.5);
  EXPECT_EQ(copy.build.git_sha, original.build.git_sha);
  EXPECT_EQ(copy.build.compiler, original.build.compiler);
  EXPECT_EQ(copy.build.build_type, original.build.build_type);
  EXPECT_DOUBLE_EQ(copy.phases.run_seconds, 1.75);
  EXPECT_DOUBLE_EQ(copy.phases.write_seconds, 0.125);
  EXPECT_EQ(copy.peak_rss, 123456789u);
  ASSERT_EQ(copy.artifacts.size(), 2u);
  EXPECT_EQ(copy.artifacts[0].kind, "metrics");
  EXPECT_EQ(copy.artifacts[1].path, "-");
  EXPECT_DOUBLE_EQ(copy.outcome.final_infected_mean, 512.5);
  EXPECT_DOUBLE_EQ(copy.outcome.final_infected_ci95, 12.25);
  EXPECT_DOUBLE_EQ(copy.outcome.time_to_peak_h, 18.5);
  EXPECT_DOUBLE_EQ(copy.outcome.patched_mean, 100.0);
  EXPECT_DOUBLE_EQ(copy.outcome.messages_blocked_mean, 42.0);
  EXPECT_EQ(copy.outcome.total_events, 987654u);
  ASSERT_TRUE(copy.sweep.has_value());
  EXPECT_EQ(copy.sweep->parameter, sweep.parameter);
  EXPECT_DOUBLE_EQ(copy.sweep->value, 6.0);
  EXPECT_EQ(copy.sweep->index, 2);
  EXPECT_EQ(copy.sweep->count, 5);
}

TEST(ManifestTest, EmittedKeysMatchTheCataloguesExactly) {
  // The contract's first leg: a manifest always carries exactly
  // manifest_fields(), in order, with each nested block carrying its
  // own catalogue — `sweep` included (null outside sweeps), so ledger
  // consumers never need conditional parsing.
  json::Value doc = to_json(sample_manifest());
  const json::Object& root = doc.as_object();
  EXPECT_EQ(object_keys(root), manifest_fields());
  EXPECT_EQ(object_keys(root.at("build").as_object()), build_fields());
  EXPECT_EQ(object_keys(root.at("phases").as_object()), phase_fields());
  EXPECT_EQ(object_keys(root.at("outcome").as_object()), outcome_fields());
  EXPECT_TRUE(root.at("sweep").is_null());
  for (const json::Value& artifact : root.at("artifacts").as_array()) {
    EXPECT_EQ(object_keys(artifact.as_object()), artifact_fields());
  }

  RunManifest swept = sample_manifest();
  swept.sweep = SweepInfo{"p", 1.0, 0, 2};
  json::Value swept_doc = to_json(swept);
  EXPECT_EQ(object_keys(swept_doc.as_object().at("sweep").as_object()), sweep_fields());
}

TEST(ManifestTest, RejectsMalformedDocuments) {
  EXPECT_THROW((void)manifest_from_json(json::parse("[1,2]")), std::runtime_error);
  EXPECT_THROW((void)manifest_from_json(json::parse(R"({"type":"not-a-manifest"})")),
               std::runtime_error);
  json::Value doc = to_json(sample_manifest());
  doc.as_object().set("version", json::Value(999));
  EXPECT_THROW((void)manifest_from_json(doc), std::runtime_error);
  json::Value missing = to_json(sample_manifest());
  missing.as_object().set("outcome", json::Value(nullptr));
  EXPECT_THROW((void)manifest_from_json(missing), std::runtime_error);
}

TEST(ManifestTest, BuildInfoIsStamped) {
  const BuildInfo info = build_info();
  EXPECT_FALSE(info.git_sha.empty());
  EXPECT_FALSE(info.compiler.empty());
  EXPECT_FALSE(info.build_type.empty());
}

TEST(ManifestTest, Fnv1aMatchesKnownVectors) {
  EXPECT_EQ(fnv1a_hex(""), "cbf29ce484222325");
  EXPECT_EQ(fnv1a_hex("a"), "af63dc4c8601ec8c");
  EXPECT_EQ(fnv1a_hex("mvsim"), fnv1a_hex("mvsim"));
  EXPECT_NE(fnv1a_hex("mvsim"), fnv1a_hex("mvsin"));
}

TEST(LedgerTest, ConcurrentAppendersInterleaveWholeRecords) {
  // Parallel runs share one ledger file; O_APPEND single-write appends
  // must keep every NDJSON line intact (parseable, right scenario set)
  // under concurrency — the file analogue of the stream's mutex.
  const std::string path = temp_path("ledger");
  std::remove(path.c_str());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&path, t] {
      for (int i = 0; i < kPerThread; ++i) {
        RunManifest manifest = sample_manifest();
        manifest.scenario = "writer-" + std::to_string(t) + "-" + std::to_string(i);
        ASSERT_TRUE(append_to_ledger(path, manifest));
      }
    });
  }
  for (std::thread& writer : writers) writer.join();

  std::vector<RunManifest> manifests = read_ledger_file(path);
  EXPECT_EQ(manifests.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (const RunManifest& manifest : manifests) {
    EXPECT_EQ(manifest.scenario.rfind("writer-", 0), 0u) << manifest.scenario;
    EXPECT_EQ(manifest.seed, "18446744073709551615");
  }
  std::remove(path.c_str());
}

TEST(LedgerTest, ReadNamesTheOffendingLine) {
  const std::string path = temp_path("ledger_bad");
  {
    std::ofstream file(path);
    file << json::stringify(to_json(sample_manifest()), 0) << "\n\n{not json}\n";
  }
  try {
    (void)read_ledger_file(path);
    FAIL() << "expected a parse failure";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
  }
  std::remove(path.c_str());
  EXPECT_THROW((void)read_ledger_file("/no/such/dir/ledger.ndjson"), std::runtime_error);
}

// The contract's third leg for manifests: every field in the catalogues
// is documented (backticked) in docs/observability.md.
TEST(ManifestDocs, EveryManifestFieldIsDocumented) {
#ifndef MVSIM_SOURCE_DIR
  GTEST_SKIP() << "MVSIM_SOURCE_DIR not defined";
#else
  std::ifstream file(std::string(MVSIM_SOURCE_DIR) + "/docs/observability.md");
  ASSERT_TRUE(file.is_open()) << "docs/observability.md missing";
  std::stringstream buffer;
  buffer << file.rdbuf();
  const std::string doc = buffer.str();
  auto expect_documented = [&doc](const std::vector<std::string>& fields, const char* list) {
    for (const std::string& field : fields) {
      EXPECT_NE(doc.find("`" + field + "`"), std::string::npos)
          << field << " is in " << list << " but not documented";
    }
  };
  expect_documented(manifest_fields(), "manifest_fields()");
  expect_documented(build_fields(), "build_fields()");
  expect_documented(phase_fields(), "phase_fields()");
  expect_documented(outcome_fields(), "outcome_fields()");
  expect_documented(sweep_fields(), "sweep_fields()");
  expect_documented(artifact_fields(), "artifact_fields()");
  EXPECT_NE(doc.find("\"type\":\"mvsim-manifest\""), std::string::npos)
      << "the docs must show the manifest record";
#endif
}

// ---------------------------------------------------------------------------
// Sweep stream
// ---------------------------------------------------------------------------

TEST(SweepStreamTest, HeaderAndRecordsCarryTheDeclaredSchema) {
  std::ostringstream out;
  SweepStream stream(out);
  SweepStreamHeader header;
  header.parameter = "gateway_scan.activation_delay_h";
  header.scenario = "unit-scenario";
  header.scenario_hash = "00aabbccddeeff11";
  header.points = 4;
  header.replications = 3;
  stream.write_header(header);
  SweepPointRecord started;
  started.type = "point-started";
  started.index = 0;
  started.count = 4;
  started.value = 2.0;
  stream.write_point(started);
  SweepPointRecord finished = started;
  finished.type = "point-finished";
  finished.wall_seconds = 0.5;
  finished.eta_seconds = 1.5;
  finished.final_infected_mean = 321.0;
  finished.total_events = 4242;
  stream.write_point(finished);
  EXPECT_EQ(stream.records_written(), 2u);

  std::istringstream lines(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  json::Value head = json::parse(line);
  const json::Object& root = head.as_object();
  EXPECT_EQ(root.at("type").as_string(), "mvsim-sweep");
  EXPECT_EQ(root.at("version").as_number(), static_cast<double>(SweepStream::kVersion));
  EXPECT_EQ(root.at("parameter").as_string(), header.parameter);
  EXPECT_EQ(root.at("scenario").as_string(), "unit-scenario");
  EXPECT_EQ(root.at("scenario_hash").as_string(), "00aabbccddeeff11");
  EXPECT_EQ(root.at("git_sha").as_string(), build_info().git_sha);
  EXPECT_EQ(root.at("points").as_number(), 4.0);
  EXPECT_EQ(root.at("replications").as_number(), 3.0);
  const json::Array& fields = root.at("fields").as_array();
  ASSERT_EQ(fields.size(), SweepStream::point_fields().size());
  for (std::size_t i = 0; i < fields.size(); ++i) {
    EXPECT_EQ(fields[i].as_string(), SweepStream::point_fields()[i]);
  }

  int records = 0;
  while (std::getline(lines, line)) {
    json::Value doc = json::parse(line);
    EXPECT_EQ(object_keys(doc.as_object()), SweepStream::point_fields()) << line;
    ++records;
  }
  EXPECT_EQ(records, 2);
}

TEST(SweepStreamDocs, EverySweepFieldIsDocumented) {
#ifndef MVSIM_SOURCE_DIR
  GTEST_SKIP() << "MVSIM_SOURCE_DIR not defined";
#else
  std::ifstream file(std::string(MVSIM_SOURCE_DIR) + "/docs/observability.md");
  ASSERT_TRUE(file.is_open()) << "docs/observability.md missing";
  std::stringstream buffer;
  buffer << file.rdbuf();
  const std::string doc = buffer.str();
  for (const std::string& field : SweepStream::point_fields()) {
    EXPECT_NE(doc.find("`" + field + "`"), std::string::npos)
        << field << " is in SweepStream::point_fields() but not documented";
  }
  EXPECT_NE(doc.find("\"type\":\"mvsim-sweep\""), std::string::npos)
      << "the docs must show the sweep header record";
#endif
}

// ---------------------------------------------------------------------------
// Outcome comparison (`mvsim report --compare`)
// ---------------------------------------------------------------------------

const OutcomeDelta* find_row(const OutcomeComparison& comparison, const std::string& metric) {
  for (const OutcomeDelta& row : comparison.rows) {
    if (row.metric == metric) return &row;
  }
  return nullptr;
}

TEST(CompareTest, IdenticalOutcomesAreAllOkWithZeroChange) {
  RunManifest manifest = sample_manifest();
  OutcomeComparison comparison = compare_outcomes(manifest, manifest);
  // Every outcome field is compared except the CI half-width (a
  // precision figure, not an outcome).
  ASSERT_EQ(comparison.rows.size(), outcome_fields().size() - 1);
  EXPECT_EQ(comparison.regressions, 0);
  for (const OutcomeDelta& row : comparison.rows) {
    EXPECT_EQ(row.verdict, "OK") << row.metric;
    EXPECT_DOUBLE_EQ(row.change, 0.0) << row.metric;
  }
  const std::string rendered = render_comparison(manifest, manifest, comparison, 0.05);
  EXPECT_NE(rendered.find("report-compare: no regressions"), std::string::npos);
  EXPECT_EQ(rendered.find("note: scenario hashes differ"), std::string::npos);
}

TEST(CompareTest, DirectionsNormalizeSoNegativeMeansWorse) {
  RunManifest baseline = sample_manifest();
  RunManifest current = sample_manifest();
  // Fewer infections and more patches are improvements; an earlier
  // peak is a regression.
  current.outcome.final_infected_mean = baseline.outcome.final_infected_mean / 2.0;
  current.outcome.patched_mean = baseline.outcome.patched_mean * 2.0;
  current.outcome.time_to_peak_h = baseline.outcome.time_to_peak_h / 2.0;
  OutcomeComparison comparison = compare_outcomes(baseline, current);
  EXPECT_EQ(find_row(comparison, "final_infected_mean")->verdict, "IMPROVED");
  EXPECT_DOUBLE_EQ(find_row(comparison, "final_infected_mean")->change, 1.0);
  EXPECT_EQ(find_row(comparison, "patched_mean")->verdict, "IMPROVED");
  EXPECT_EQ(find_row(comparison, "time_to_peak_h")->verdict, "REGRESSED");
  EXPECT_DOUBLE_EQ(find_row(comparison, "time_to_peak_h")->change, -0.5);
  EXPECT_EQ(comparison.regressions, 1);

  // The reverse comparison flips the verdicts.
  OutcomeComparison reversed = compare_outcomes(current, baseline);
  EXPECT_EQ(find_row(reversed, "final_infected_mean")->verdict, "REGRESSED");
  EXPECT_EQ(find_row(reversed, "patched_mean")->verdict, "REGRESSED");
  EXPECT_EQ(find_row(reversed, "time_to_peak_h")->verdict, "IMPROVED");
}

TEST(CompareTest, ThresholdGatesTheVerdictFlip) {
  RunManifest baseline = sample_manifest();
  RunManifest current = sample_manifest();
  current.outcome.patched_mean = baseline.outcome.patched_mean * 1.04;  // +4%
  EXPECT_EQ(find_row(compare_outcomes(baseline, current, 0.05), "patched_mean")->verdict, "OK");
  EXPECT_EQ(find_row(compare_outcomes(baseline, current, 0.02), "patched_mean")->verdict,
            "IMPROVED");
  current.outcome.patched_mean = baseline.outcome.patched_mean * 0.90;  // -10%
  EXPECT_EQ(find_row(compare_outcomes(baseline, current, 0.05), "patched_mean")->verdict,
            "REGRESSED");
  EXPECT_EQ(find_row(compare_outcomes(baseline, current, 0.15), "patched_mean")->verdict, "OK");
}

TEST(CompareTest, NeutralMetricsReportChangeButNeverRegress) {
  RunManifest baseline = sample_manifest();
  RunManifest current = sample_manifest();
  current.outcome.messages_blocked_mean = baseline.outcome.messages_blocked_mean * 10.0;
  current.outcome.total_events = baseline.outcome.total_events / 10;
  OutcomeComparison comparison = compare_outcomes(baseline, current);
  EXPECT_EQ(find_row(comparison, "messages_blocked_mean")->verdict, "OK");
  EXPECT_GT(find_row(comparison, "messages_blocked_mean")->change, 1.0);
  EXPECT_EQ(find_row(comparison, "total_events")->verdict, "OK");
  EXPECT_LT(find_row(comparison, "total_events")->change, 0.0);
  EXPECT_EQ(comparison.regressions, 0);
}

TEST(CompareTest, DifferingScenarioHashesAreCalledOut) {
  RunManifest baseline = sample_manifest();
  RunManifest current = sample_manifest();
  current.scenario_hash = "ffffffffffffffff";
  OutcomeComparison comparison = compare_outcomes(baseline, current);
  const std::string rendered = render_comparison(baseline, current, comparison, 0.05);
  EXPECT_NE(rendered.find("note: scenario hashes differ"), std::string::npos);
}

}  // namespace
}  // namespace mvsim::obs
