// Unit tests for src/util/json.h: value model, parser, writer.
#include <gtest/gtest.h>

#include "util/json.h"

namespace mvsim::json {
namespace {

TEST(JsonValue, KindsAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(nullptr).is_null());
  EXPECT_TRUE(Value(true).as_bool());
  EXPECT_DOUBLE_EQ(Value(3.5).as_number(), 3.5);
  EXPECT_DOUBLE_EQ(Value(7).as_number(), 7.0);
  EXPECT_EQ(Value("hi").as_string(), "hi");
  EXPECT_TRUE(Value(Array{}).is_array());
  EXPECT_TRUE(Value(Object{}).is_object());
}

TEST(JsonValue, WrongKindAccessThrows) {
  Value v(3.5);
  EXPECT_THROW((void)v.as_string(), std::runtime_error);
  EXPECT_THROW((void)v.as_bool(), std::runtime_error);
  EXPECT_THROW((void)v.as_array(), std::runtime_error);
  EXPECT_THROW((void)Value("x").as_number(), std::runtime_error);
}

TEST(JsonObject, PreservesInsertionOrderAndOverwrites) {
  Object o;
  o.set("z", Value(1));
  o.set("a", Value(2));
  o.set("z", Value(3));
  ASSERT_EQ(o.size(), 2u);
  EXPECT_EQ(o.entries()[0].first, "z");
  EXPECT_EQ(o.entries()[1].first, "a");
  EXPECT_DOUBLE_EQ(o.at("z").as_number(), 3.0);
  EXPECT_TRUE(o.contains("a"));
  EXPECT_FALSE(o.contains("missing"));
  EXPECT_EQ(o.find("missing"), nullptr);
  EXPECT_THROW((void)o.at("missing"), std::out_of_range);
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_TRUE(parse("true").as_bool());
  EXPECT_FALSE(parse("false").as_bool());
  EXPECT_DOUBLE_EQ(parse("0").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(parse("-12.5").as_number(), -12.5);
  EXPECT_DOUBLE_EQ(parse("1e3").as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(parse("2.5E-2").as_number(), 0.025);
  EXPECT_EQ(parse("\"abc\"").as_string(), "abc");
}

TEST(JsonParse, NestedStructures) {
  Value v = parse(R"({
    "name": "fig2",
    "delays": [6, 12, 24],
    "nested": {"enabled": true, "ratio": 0.25},
    "note": null
  })");
  const Object& o = v.as_object();
  EXPECT_EQ(o.at("name").as_string(), "fig2");
  const Array& delays = o.at("delays").as_array();
  ASSERT_EQ(delays.size(), 3u);
  EXPECT_DOUBLE_EQ(delays[1].as_number(), 12.0);
  EXPECT_TRUE(o.at("nested").as_object().at("enabled").as_bool());
  EXPECT_TRUE(o.at("note").is_null());
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse(R"("a\"b")").as_string(), "a\"b");
  EXPECT_EQ(parse(R"("a\\b")").as_string(), "a\\b");
  EXPECT_EQ(parse(R"("line\nbreak\ttab")").as_string(), "line\nbreak\ttab");
  EXPECT_EQ(parse(R"("A")").as_string(), "A");
  EXPECT_EQ(parse(R"("é")").as_string(), "\xc3\xa9");   // é in UTF-8
  EXPECT_EQ(parse(R"("€")").as_string(), "\xe2\x82\xac");  // €
}

TEST(JsonParse, ErrorsCarryPosition) {
  try {
    (void)parse("{\n  \"a\": tru\n}");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_GT(e.column(), 1);
  }
}

TEST(JsonParse, RejectsMalformedDocuments) {
  EXPECT_THROW((void)parse(""), ParseError);
  EXPECT_THROW((void)parse("{"), ParseError);
  EXPECT_THROW((void)parse("[1,]"), ParseError);
  EXPECT_THROW((void)parse("{\"a\" 1}"), ParseError);
  EXPECT_THROW((void)parse("{\"a\": 1,}"), ParseError);
  EXPECT_THROW((void)parse("01"), ParseError);
  EXPECT_THROW((void)parse("1."), ParseError);
  EXPECT_THROW((void)parse("1e"), ParseError);
  EXPECT_THROW((void)parse("\"unterminated"), ParseError);
  EXPECT_THROW((void)parse("\"bad\\q\""), ParseError);
  EXPECT_THROW((void)parse("nul"), ParseError);
  EXPECT_THROW((void)parse("true false"), ParseError) << "trailing garbage";
  EXPECT_THROW((void)parse("{\"a\":1, \"a\":2}"), ParseError) << "duplicate key";
  EXPECT_THROW((void)parse("\"\\ud800\""), ParseError) << "surrogate";
}

TEST(JsonStringify, CompactAndPretty) {
  Object o;
  o.set("n", Value(1));
  Array a;
  a.push_back(Value(true));
  a.push_back(Value("x"));
  o.set("list", Value(std::move(a)));
  Value v{std::move(o)};
  EXPECT_EQ(stringify(v, 0), R"({"n":1,"list":[true,"x"]})");
  std::string pretty = stringify(v, 2);
  EXPECT_NE(pretty.find("\n  \"n\": 1"), std::string::npos);
}

TEST(JsonStringify, EmptyContainers) {
  EXPECT_EQ(stringify(Value(Array{}), 2), "[]");
  EXPECT_EQ(stringify(Value(Object{}), 2), "{}");
  EXPECT_EQ(stringify(Value(), 2), "null");
}

TEST(JsonStringify, NumbersRoundTripShortest) {
  EXPECT_EQ(stringify(Value(42.0), 0), "42");
  EXPECT_EQ(stringify(Value(-7.0), 0), "-7");
  EXPECT_EQ(stringify(Value(0.25), 0), "0.25");
  EXPECT_EQ(stringify(Value(1.0 / 3.0), 0),
            stringify(parse(stringify(Value(1.0 / 3.0), 0)), 0))
      << "serialized doubles reparse to the same value";
}

TEST(JsonStringify, EscapesStrings) {
  EXPECT_EQ(stringify(Value("a\"b\\c\n"), 0), R"("a\"b\\c\n")");
  EXPECT_EQ(stringify(Value(std::string("ctrl\x01")), 0), "\"ctrl\\u0001\"");
}

TEST(JsonRoundTrip, ParseStringifyParse) {
  const char* doc = R"({"name":"x","values":[1,2.5,-3],"flags":{"on":true,"off":false},"z":null})";
  Value first = parse(doc);
  Value second = parse(stringify(first, 0));
  EXPECT_EQ(stringify(first, 0), stringify(second, 0));
  EXPECT_EQ(stringify(first, 0), doc);
}

TEST(JsonRoundTrip, PrettyOutputReparses) {
  Value v = parse(R"({"a":[{"b":1},{"c":[true,null]}]})");
  Value round = parse(stringify(v, 4));
  EXPECT_EQ(stringify(v, 0), stringify(round, 0));
}

}  // namespace
}  // namespace mvsim::json
