// Unit tests for src/cli: argument handling, preset registry, and the
// run/preset/validate commands end to end (through the library entry
// point, no subprocesses).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cli/cli.h"
#include "cli/preset_registry.h"
#include "config/scenario_io.h"
#include "metrics/report.h"
#include "obs/manifest.h"
#include "util/json.h"

namespace mvsim::cli {
namespace {

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult invoke(std::vector<std::string> args) {
  std::ostringstream out, err;
  int code = run_cli(args, out, err);
  return {code, out.str(), err.str()};
}

/// Writes a small, fast scenario file and returns its path. The name is
/// unique per process: ctest registers each TEST as its own process and
/// may run them concurrently, so a shared path would race with the
/// std::remove() each test ends with.
std::string write_small_scenario() {
  static const std::string unique =
      std::to_string(static_cast<long long>(::getpid()));
  std::string path = ::testing::TempDir() + "/mvsim_cli_scenario_" + unique + ".json";
  std::ofstream file(path);
  file << R"({
    "name": "cli-test",
    "population": 120,
    "topology": {"mean_degree": 12},
    "virus": {"preset": "virus1"},
    "horizon": "24h"
  })";
  return path;
}

TEST(PresetRegistry, ListsAllPresets) {
  auto presets = list_presets();
  EXPECT_EQ(presets.size(), 11u);
  EXPECT_EQ(presets[0].name, "virus1-baseline");
  for (const auto& entry : presets) {
    EXPECT_FALSE(entry.description.empty()) << entry.name;
    EXPECT_TRUE(find_preset(entry.name).has_value()) << entry.name;
  }
}

TEST(PresetRegistry, UnknownNameIsNullopt) {
  EXPECT_FALSE(find_preset("virus9-baseline").has_value());
  EXPECT_FALSE(find_preset("").has_value());
}

TEST(PresetRegistry, PresetsAreValidScenarios) {
  for (const auto& entry : list_presets()) {
    auto preset = find_preset(entry.name);
    ASSERT_TRUE(preset.has_value());
    EXPECT_TRUE(preset->validate().ok()) << entry.name;
  }
}

TEST(Cli, NoArgsPrintsUsageAndFails) {
  CliResult r = invoke({});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.out.find("usage:"), std::string::npos);
}

TEST(Cli, HelpSucceeds) {
  EXPECT_EQ(invoke({"help"}).code, 0);
  EXPECT_EQ(invoke({"--help"}).code, 0);
  EXPECT_NE(invoke({"-h"}).out.find("mvsim run"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
  CliResult r = invoke({"launch-missiles"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, PresetsCommandListsNames) {
  CliResult r = invoke({"presets"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("virus3-baseline"), std::string::npos);
  EXPECT_NE(r.out.find("fig6-monitoring"), std::string::npos);
}

TEST(Cli, PresetCommandEmitsLoadableJson) {
  CliResult r = invoke({"preset", "fig7-blacklist"});
  ASSERT_EQ(r.code, 0) << r.err;
  core::ScenarioConfig config = config::scenario_from_text(r.out);
  EXPECT_TRUE(config.responses.blacklist.has_value());
  EXPECT_EQ(config.virus.name, "Virus 3");
}

TEST(Cli, MarketSharePresetRoundTripsSharedSeed) {
  CliResult r = invoke({"preset", "market-share"});
  ASSERT_EQ(r.code, 0) << r.err;
  core::ScenarioConfig config = config::scenario_from_text(r.out);
  ASSERT_TRUE(config.topology.shared_seed.has_value());
  EXPECT_EQ(*config.topology.shared_seed, 0x6d61726b6574ull);
  EXPECT_DOUBLE_EQ(config.susceptible_fraction, 0.30);
  EXPECT_DOUBLE_EQ(config.topology.mean_degree, 8.0);
}

TEST(Cli, PresetCommandRejectsUnknown) {
  CliResult r = invoke({"preset", "nope"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown preset"), std::string::npos);
}

TEST(Cli, PresetCommandWantsExactlyOneArg) {
  EXPECT_EQ(invoke({"preset"}).code, 1);
  EXPECT_EQ(invoke({"preset", "a", "b"}).code, 1);
}

TEST(Cli, RunScenarioFileProducesSummary) {
  std::string path = write_small_scenario();
  CliResult r = invoke({"run", path, "--reps", "2", "--seed", "7"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("scenario: cli-test"), std::string::npos);
  EXPECT_NE(r.out.find("final infections:"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, RunIsDeterministicGivenSeed) {
  std::string path = write_small_scenario();
  CliResult a = invoke({"run", path, "--reps", "2", "--seed", "55"});
  CliResult b = invoke({"run", path, "--reps", "2", "--seed", "55"});
  EXPECT_EQ(a.out, b.out);
  CliResult c = invoke({"run", path, "--reps", "2", "--seed", "56"});
  EXPECT_NE(a.out, c.out);
  std::remove(path.c_str());
}

TEST(Cli, RunEmitsCsvAndJsonToStdout) {
  std::string path = write_small_scenario();
  CliResult r = invoke(
      {"run", path, "--reps", "2", "--quiet", "--curve-csv", "-", "--summary-json", "-"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("hours,mean_infected"), std::string::npos);
  EXPECT_NE(r.out.find("\"final_infections\""), std::string::npos);
  EXPECT_EQ(r.out.find("scenario: cli-test"), std::string::npos) << "--quiet suppresses prose";
  std::remove(path.c_str());
}

TEST(Cli, RunWritesOutputFiles) {
  std::string scenario_path = write_small_scenario();
  std::string csv_path = ::testing::TempDir() + "/mvsim_cli_curve.csv";
  std::string json_path = ::testing::TempDir() + "/mvsim_cli_summary.json";
  CliResult r = invoke({"run", scenario_path, "--reps", "2", "--quiet", "--curve-csv", csv_path,
                        "--summary-json", json_path});
  ASSERT_EQ(r.code, 0) << r.err;
  std::ifstream csv(csv_path);
  ASSERT_TRUE(csv.good());
  std::string header;
  std::getline(csv, header);
  EXPECT_EQ(header, "hours,mean_infected,stddev,ci95,min,max");
  std::ifstream json_file(json_path);
  ASSERT_TRUE(json_file.good());
  std::remove(scenario_path.c_str());
  std::remove(csv_path.c_str());
  std::remove(json_path.c_str());
}

TEST(Cli, RunAcceptsPresetNames) {
  // Use the fastest preset at reduced reps to keep the test snappy.
  CliResult r = invoke({"run", "virus3-baseline", "--reps", "1", "--quiet"});
  EXPECT_EQ(r.code, 0) << r.err;
}

TEST(Cli, RunRejectsBadFlags) {
  std::string path = write_small_scenario();
  EXPECT_EQ(invoke({"run"}).code, 1);
  EXPECT_EQ(invoke({"run", path, "--reps"}).code, 1);
  EXPECT_EQ(invoke({"run", path, "--reps", "0"}).code, 1);
  EXPECT_EQ(invoke({"run", path, "--reps", "many"}).code, 1);
  EXPECT_EQ(invoke({"run", path, "--seed", "xyz"}).code, 1);
  EXPECT_EQ(invoke({"run", path, "--frobnicate"}).code, 1);
  std::remove(path.c_str());
}

TEST(Cli, RunDesImplSelectsQueueAndMatches) {
  // Both queue implementations must run, and — the scheduler's core
  // determinism contract — produce byte-identical output for the same
  // seed. The default (no flag) is the wheel.
  std::string path = write_small_scenario();
  CliResult wheel = invoke({"run", path, "--reps", "2", "--seed", "7", "--des-impl", "wheel"});
  CliResult heap = invoke({"run", path, "--reps", "2", "--seed", "7", "--des-impl", "heap"});
  CliResult dflt = invoke({"run", path, "--reps", "2", "--seed", "7"});
  EXPECT_EQ(wheel.code, 0) << wheel.err;
  EXPECT_EQ(heap.code, 0) << heap.err;
  EXPECT_EQ(wheel.out, heap.out);
  EXPECT_EQ(wheel.out, dflt.out);
  std::remove(path.c_str());
}

TEST(Cli, RunRejectsBadDesImpl) {
  std::string path = write_small_scenario();
  CliResult r = invoke({"run", path, "--des-impl", "splay"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--des-impl"), std::string::npos);
  EXPECT_EQ(invoke({"run", path, "--des-impl"}).code, 1);
  std::remove(path.c_str());
}

TEST(Cli, UsageMentionsDesImpl) {
  CliResult r = invoke({"--help"});
  EXPECT_NE(r.out.find("--des-impl"), std::string::npos);
}

TEST(Cli, RunUnknownPresetMentionsPresets) {
  CliResult r = invoke({"run", "virus9-baseline"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("mvsim presets"), std::string::npos);
}

TEST(Cli, RunMissingFileFails) {
  CliResult r = invoke({"run", "/no/such/scenario.json"});
  EXPECT_EQ(r.code, 2);
  EXPECT_FALSE(r.err.empty());
}

TEST(Cli, CompareRunsMultipleTargets) {
  std::string path = write_small_scenario();
  CliResult r = invoke({"compare", path, path, "--reps", "2", "--seed", "3"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("scenario,final_infected"), std::string::npos);
  // Two identical targets at the same seed produce identical rows.
  EXPECT_NE(r.out.find("100.0%"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, CompareNeedsTwoTargets) {
  EXPECT_EQ(invoke({"compare"}).code, 1);
  EXPECT_EQ(invoke({"compare", "virus1-baseline"}).code, 1);
  EXPECT_EQ(invoke({"compare", "a", "b", "--reps"}).code, 1);
  EXPECT_EQ(invoke({"compare", "a", "b", "--reps", "0"}).code, 1);
}

TEST(Cli, RunThreadsFlagParses) {
  std::string path = write_small_scenario();
  EXPECT_EQ(invoke({"run", path, "--reps", "2", "--threads", "2", "--quiet"}).code, 0);
  EXPECT_EQ(invoke({"run", path, "--threads", "many"}).code, 1);
  EXPECT_EQ(invoke({"run", path, "--threads", "9999"}).code, 1);
  std::remove(path.c_str());
}

TEST(Cli, RunShardsFlagIsWorkerCountInvariant) {
  // The sharded engine's determinism contract: for a fixed seed and shard
  // count, the worker-thread count never changes the curves.
  std::string path = write_small_scenario();
  CliResult one = invoke({"run", path, "--reps", "2", "--seed", "9", "--shards", "2",
                          "--shard-workers", "1", "--quiet", "--summary-json", "-"});
  CliResult two = invoke({"run", path, "--reps", "2", "--seed", "9", "--shards", "2",
                          "--shard-workers", "2", "--quiet", "--summary-json", "-"});
  ASSERT_EQ(one.code, 0) << one.err;
  ASSERT_EQ(two.code, 0) << two.err;
  EXPECT_EQ(one.out, two.out);
  std::remove(path.c_str());
}

TEST(Cli, RunShardsOneMatchesSerialEngine) {
  // --shards 1 routes to the serial engine, so it must be byte-identical
  // to omitting the flag entirely.
  std::string path = write_small_scenario();
  CliResult serial = invoke({"run", path, "--reps", "2", "--seed", "4", "--quiet",
                             "--summary-json", "-"});
  CliResult one = invoke({"run", path, "--reps", "2", "--seed", "4", "--shards", "1",
                          "--quiet", "--summary-json", "-"});
  ASSERT_EQ(serial.code, 0) << serial.err;
  ASSERT_EQ(one.code, 0) << one.err;
  EXPECT_EQ(serial.out, one.out);
  std::remove(path.c_str());
}

TEST(Cli, RunRejectsBadShardFlags) {
  std::string path = write_small_scenario();
  EXPECT_EQ(invoke({"run", path, "--shards"}).code, 1);
  EXPECT_EQ(invoke({"run", path, "--shards", "0"}).code, 1);
  EXPECT_EQ(invoke({"run", path, "--shards", "many"}).code, 1);
  EXPECT_EQ(invoke({"run", path, "--shards", "9999"}).code, 1);
  EXPECT_EQ(invoke({"run", path, "--shard-window", "0"}).code, 1);
  EXPECT_EQ(invoke({"run", path, "--shard-window", "-5"}).code, 1);
  EXPECT_EQ(invoke({"run", path, "--shard-workers", "many"}).code, 1);
  std::remove(path.c_str());
}

TEST(Cli, RunShardsComposesWithTraceProfileAndStatsStream) {
  // The full shard observability stack in one invocation: merged
  // shard-stamped trace, merged profile with the shard-window series,
  // and an NDJSON stats stream — all from the same run.
  std::string scenario_path = write_small_scenario();
  std::string trace_path = ::testing::TempDir() + "/mvsim_cli_shard_trace.jsonl";
  std::string profile_path = ::testing::TempDir() + "/mvsim_cli_shard_profile.json";
  std::string stats_path = ::testing::TempDir() + "/mvsim_cli_shard_stats.ndjson";
  CliResult r = invoke({"run", scenario_path, "--reps", "2", "--quiet", "--shards", "2",
                        "--trace", trace_path, "--profile", profile_path, "--stats-stream",
                        stats_path, "--stats-period", "60"});
  ASSERT_EQ(r.code, 0) << r.err;

  std::ifstream trace_file(trace_path);
  ASSERT_TRUE(trace_file.good());
  std::ostringstream trace_text;
  trace_text << trace_file.rdbuf();
  EXPECT_NE(trace_text.str().find("\"type\":\"mvsim-trace\""), std::string::npos);
  EXPECT_NE(trace_text.str().find("\"shard\":"), std::string::npos)
      << "sharded trace events must carry their shard";
  CliResult analyzed = invoke({"trace-analyze", trace_path});
  ASSERT_EQ(analyzed.code, 0) << analyzed.err;
  EXPECT_NE(analyzed.out.find("shard 0:"), std::string::npos) << analyzed.out;
  EXPECT_NE(analyzed.out.find("cross-shard deliveries:"), std::string::npos);

  std::ifstream profile_file(profile_path);
  ASSERT_TRUE(profile_file.good());
  std::ostringstream profile_text;
  profile_text << profile_file.rdbuf();
  json::Value profile_doc = json::parse(profile_text.str());
  EXPECT_NE(profile_doc.as_object().find("shard_windows"), nullptr)
      << "sharded profiles must carry the per-window straggler summary";

  std::ifstream stats_file(stats_path);
  ASSERT_TRUE(stats_file.good());
  std::string header_line;
  std::getline(stats_file, header_line);
  EXPECT_NE(header_line.find("\"type\":\"mvsim-stats\""), std::string::npos) << header_line;
  std::string sample_line;
  std::getline(stats_file, sample_line);
  EXPECT_NE(sample_line.find("\"barrier_wait_ms\":"), std::string::npos) << sample_line;

  std::remove(scenario_path.c_str());
  std::remove(trace_path.c_str());
  std::remove(profile_path.c_str());
  std::remove(stats_path.c_str());
}

TEST(Cli, RunStatsStreamOnStdoutAndBadFlags) {
  std::string path = write_small_scenario();
  CliResult r = invoke({"run", path, "--reps", "1", "--quiet", "--stats-stream", "-",
                        "--stats-period", "120"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("\"type\":\"mvsim-stats\""), std::string::npos);
  EXPECT_NE(r.out.find("\"type\":\"sample\""), std::string::npos);
  EXPECT_EQ(invoke({"run", path, "--stats-stream"}).code, 1);
  EXPECT_EQ(invoke({"run", path, "--stats-stream", "-", "--stats-period", "0"}).code, 1);
  EXPECT_EQ(invoke({"run", path, "--stats-stream", "-", "--stats-period", "soon"}).code, 1);
  std::remove(path.c_str());
}

TEST(Cli, UsageMentionsShards) {
  CliResult r = invoke({"--help"});
  EXPECT_NE(r.out.find("--shards"), std::string::npos);
  EXPECT_NE(r.out.find("--shard-window"), std::string::npos);
  EXPECT_NE(r.out.find("--shard-workers"), std::string::npos);
  EXPECT_NE(r.out.find("--stats-stream"), std::string::npos);
  EXPECT_NE(r.out.find("--stats-period"), std::string::npos);
  EXPECT_EQ(r.out.find("not combinable with --trace"), std::string::npos)
      << "usage must not claim --shards rejects the observability flags";
}

TEST(Cli, RunEmitsMetricsJsonToStdout) {
  std::string path = write_small_scenario();
  CliResult r = invoke({"run", path, "--reps", "2", "--quiet", "--metrics", "-"});
  ASSERT_EQ(r.code, 0) << r.err;
  json::Value doc = json::parse(r.out);
  const json::Object& root = doc.as_object();
  EXPECT_EQ(root.at("schema_version").as_number(), 1.0);
  EXPECT_EQ(root.at("scenario").as_string(), "cli-test");
  EXPECT_EQ(root.at("replications").as_number(), 2.0);
  // Every emitted metric name must be in the documented catalogue.
  for (const auto& [name, value] : root.at("counters").as_object().entries()) {
    EXPECT_NE(metrics::schema_find(name), nullptr) << name;
  }
  for (const auto& [name, value] : root.at("gauges").as_object().entries()) {
    EXPECT_NE(metrics::schema_find(name), nullptr) << name;
  }
  for (const auto& [name, value] : root.at("histograms").as_object().entries()) {
    EXPECT_NE(metrics::schema_find(name), nullptr) << name;
  }
  EXPECT_GT(root.at("derived").as_object().at("events_processed").as_number(), 0.0);
  std::remove(path.c_str());
}

TEST(Cli, RunWritesMetricsCsvFile) {
  std::string scenario_path = write_small_scenario();
  std::string metrics_path = ::testing::TempDir() + "/mvsim_cli_metrics.csv";
  CliResult r =
      invoke({"run", scenario_path, "--reps", "2", "--quiet", "--metrics", metrics_path});
  ASSERT_EQ(r.code, 0) << r.err;
  std::ifstream file(metrics_path);
  ASSERT_TRUE(file.good());
  std::string header;
  std::getline(file, header);
  EXPECT_EQ(header, "metric,kind,field,value");
  std::remove(scenario_path.c_str());
  std::remove(metrics_path.c_str());
}

TEST(Cli, MetricsSchemaMatchesLibraryCatalogue) {
  CliResult r = invoke({"metrics-schema"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_EQ(r.out, json::stringify(metrics::schema_to_json(), 2) + "\n");
}

TEST(Cli, UsageMentionsMetricsSurface) {
  CliResult r = invoke({"help"});
  EXPECT_NE(r.out.find("--metrics"), std::string::npos);
  EXPECT_NE(r.out.find("metrics-schema"), std::string::npos);
}

TEST(Cli, RunWritesJsonlTraceAndAnalyzeReadsIt) {
  std::string scenario_path = write_small_scenario();
  std::string trace_path = ::testing::TempDir() + "/mvsim_cli_trace.jsonl";
  CliResult r = invoke({"run", scenario_path, "--reps", "2", "--quiet", "--trace", trace_path,
                        "--trace-rep", "1"});
  ASSERT_EQ(r.code, 0) << r.err;
  std::ifstream file(trace_path);
  ASSERT_TRUE(file.good());
  std::string meta_line;
  std::getline(file, meta_line);
  EXPECT_NE(meta_line.find("\"type\":\"mvsim-trace\""), std::string::npos) << meta_line;

  CliResult analyzed = invoke({"trace-analyze", trace_path});
  ASSERT_EQ(analyzed.code, 0) << analyzed.err;
  EXPECT_NE(analyzed.out.find("transmission tree"), std::string::npos);
  EXPECT_NE(analyzed.out.find("effective_R"), std::string::npos);
  std::remove(scenario_path.c_str());
  std::remove(trace_path.c_str());
}

TEST(Cli, RunWritesChromeTraceByDefaultExtension) {
  std::string scenario_path = write_small_scenario();
  std::string trace_path = ::testing::TempDir() + "/mvsim_cli_trace.json";
  CliResult r = invoke({"run", scenario_path, "--reps", "1", "--quiet", "--trace", trace_path});
  ASSERT_EQ(r.code, 0) << r.err;
  std::ifstream file(trace_path);
  ASSERT_TRUE(file.good());
  std::ostringstream content;
  content << file.rdbuf();
  json::Value doc = json::parse(content.str());
  const json::Object& root = doc.as_object();
  EXPECT_NE(root.find("traceEvents"), nullptr);
  EXPECT_NE(root.find("otherData"), nullptr);

  // trace-analyze auto-detects the Chrome format too.
  CliResult analyzed = invoke({"trace-analyze", trace_path});
  EXPECT_EQ(analyzed.code, 0) << analyzed.err;
  std::remove(scenario_path.c_str());
  std::remove(trace_path.c_str());
}

TEST(Cli, RunRejectsBadTraceFlags) {
  std::string path = write_small_scenario();
  EXPECT_EQ(invoke({"run", path, "--trace"}).code, 1);
  EXPECT_EQ(invoke({"run", path, "--reps", "2", "--trace", "t.jsonl", "--trace-rep", "2"}).code,
            1);
  EXPECT_EQ(invoke({"run", path, "--trace", "t.jsonl", "--trace-rep", "-1"}).code, 1);
  EXPECT_EQ(invoke({"run", path, "--trace", "t.jsonl", "--trace-cap", "lots"}).code, 1);
  std::remove(path.c_str());
}

TEST(Cli, TraceAnalyzeRejectsBadInput) {
  EXPECT_EQ(invoke({"trace-analyze"}).code, 1);
  EXPECT_EQ(invoke({"trace-analyze", "/no/such/trace.jsonl"}).code, 2);
  std::string path = ::testing::TempDir() + "/mvsim_cli_not_a_trace.json";
  std::ofstream(path) << "{ not json";
  EXPECT_EQ(invoke({"trace-analyze", path}).code, 2);
  std::remove(path.c_str());
}

TEST(Cli, UsageMentionsTraceSurface) {
  CliResult r = invoke({"help"});
  EXPECT_NE(r.out.find("--trace"), std::string::npos);
  EXPECT_NE(r.out.find("trace-analyze"), std::string::npos);
}

TEST(Cli, RunWritesProfileJsonAndProfileAnalyzeReadsIt) {
  std::string scenario_path = write_small_scenario();
  std::string profile_path = ::testing::TempDir() + "/mvsim_cli_profile.json";
  CliResult r =
      invoke({"run", scenario_path, "--reps", "2", "--quiet", "--profile", profile_path});
  ASSERT_EQ(r.code, 0) << r.err;

  std::ifstream file(profile_path);
  ASSERT_TRUE(file.good());
  std::ostringstream content;
  content << file.rdbuf();
  json::Value doc = json::parse(content.str());
  const json::Object& root = doc.as_object();
  EXPECT_EQ(root.at("type").as_string(), "mvsim-profile");
  EXPECT_EQ(root.at("scenario").as_string(), "cli-test");
  EXPECT_DOUBLE_EQ(root.at("replications").as_number(), 2.0);
  EXPECT_FALSE(root.at("events").as_array().empty());
  EXPECT_GT(root.at("event_wall_ms").as_number(), 0.0);

  CliResult analyzed = invoke({"profile-analyze", profile_path, "--top", "3"});
  EXPECT_EQ(analyzed.code, 0) << analyzed.err;
  EXPECT_NE(analyzed.out.find("where the time goes"), std::string::npos);
  std::remove(scenario_path.c_str());
  std::remove(profile_path.c_str());
}

TEST(Cli, ProfileAnalyzeRejectsBadInput) {
  EXPECT_EQ(invoke({"profile-analyze"}).code, 1);
  EXPECT_EQ(invoke({"profile-analyze", "/no/such/profile.json"}).code, 2);
  EXPECT_EQ(invoke({"profile-analyze", "p.json", "--top", "0"}).code, 1);
  EXPECT_EQ(invoke({"profile-analyze", "p.json", "--top", "lots"}).code, 1);
  // A JSON file without the profile type marker is rejected cleanly.
  std::string path = ::testing::TempDir() + "/mvsim_cli_not_a_profile.json";
  std::ofstream(path) << R"({"type": "something-else"})";
  CliResult r = invoke({"profile-analyze", path});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("not an mvsim profile"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, RunProgressTicksOnStderr) {
  std::string path = write_small_scenario();
  CliResult r = invoke({"run", path, "--reps", "2", "--quiet", "--progress"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.err.find("rep 2/2"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("ev/s"), std::string::npos) << r.err;
  EXPECT_EQ(r.err.back(), '\n') << "ticker must finish its line";

  // Progress is observation-only: summary output matches a plain run.
  CliResult quiet = invoke({"run", path, "--reps", "2"});
  CliResult with_progress = invoke({"run", path, "--reps", "2", "--progress"});
  EXPECT_EQ(quiet.out, with_progress.out);
  std::remove(path.c_str());
}

TEST(Cli, RunReportsUnwritableOutputPaths) {
  std::string path = write_small_scenario();
  const char* kUnwritable = "/no/such/dir/mvsim_out.json";
  for (const char* flag : {"--metrics", "--trace", "--profile", "--curve-csv", "--summary-json",
                           "--stats-stream", "--manifest", "--ledger"}) {
    CliResult r = invoke({"run", path, "--reps", "1", "--quiet", flag, kUnwritable});
    EXPECT_EQ(r.code, 2) << flag;
    EXPECT_NE(r.err.find("cannot write"), std::string::npos) << flag << ": " << r.err;
    EXPECT_NE(r.err.find(kUnwritable), std::string::npos) << flag << ": " << r.err;
  }
  std::remove(path.c_str());
}

TEST(Cli, RunManifestRoundTripsThroughReport) {
  // The headline acceptance path: `mvsim run --manifest --ledger`
  // produces a record `mvsim report` reads back, with the ledger line
  // carrying the same outcome as the standalone manifest.
  std::string scenario_path = write_small_scenario();
  std::string manifest_path = ::testing::TempDir() + "/mvsim_cli_manifest_" +
                              std::to_string(static_cast<long long>(::getpid())) + ".json";
  std::string ledger_path = ::testing::TempDir() + "/mvsim_cli_ledger_" +
                            std::to_string(static_cast<long long>(::getpid())) + ".ndjson";
  std::remove(ledger_path.c_str());
  CliResult r = invoke({"run", scenario_path, "--reps", "2", "--seed", "7", "--quiet",
                        "--summary-json", "-", "--manifest", manifest_path, "--ledger",
                        ledger_path});
  ASSERT_EQ(r.code, 0) << r.err;

  obs::RunManifest manifest = obs::read_manifest_file(manifest_path);
  EXPECT_EQ(manifest.scenario, "cli-test");
  EXPECT_EQ(manifest.seed, "7");
  EXPECT_EQ(manifest.replications, 2);
  EXPECT_EQ(manifest.scenario_hash.size(), 16u);
  EXPECT_GT(manifest.outcome.final_infected_mean, 0.0);
  EXPECT_GT(manifest.outcome.total_events, 0u);
  EXPECT_GT(manifest.phases.run_seconds, 0.0);
  EXPECT_GT(manifest.peak_rss, 0u);
  ASSERT_EQ(manifest.artifacts.size(), 1u);
  EXPECT_EQ(manifest.artifacts[0].kind, "summary-json");
  EXPECT_EQ(manifest.artifacts[0].path, "-");
  EXPECT_FALSE(manifest.sweep.has_value());

  std::vector<obs::RunManifest> ledger = obs::read_ledger_file(ledger_path);
  ASSERT_EQ(ledger.size(), 1u);
  EXPECT_EQ(ledger[0].scenario_hash, manifest.scenario_hash);
  EXPECT_DOUBLE_EQ(ledger[0].outcome.final_infected_mean,
                   manifest.outcome.final_infected_mean);

  CliResult report = invoke({"report", manifest_path});
  ASSERT_EQ(report.code, 0) << report.err;
  EXPECT_NE(report.out.find("run: cli-test"), std::string::npos) << report.out;
  EXPECT_NE(report.out.find(manifest.scenario_hash), std::string::npos);
  EXPECT_NE(report.out.find("final infected"), std::string::npos);

  CliResult ledger_report = invoke({"report", "--ledger", ledger_path});
  ASSERT_EQ(ledger_report.code, 0) << ledger_report.err;
  EXPECT_NE(ledger_report.out.find("1 run(s)"), std::string::npos) << ledger_report.out;

  std::remove(scenario_path.c_str());
  std::remove(manifest_path.c_str());
  std::remove(ledger_path.c_str());
}

TEST(Cli, ManifestIsExecutionOnlyForTheSummary) {
  // Attaching --manifest must not change what the run computes or
  // prints — same contract every obs surface keeps.
  std::string scenario_path = write_small_scenario();
  std::string manifest_path = ::testing::TempDir() + "/mvsim_cli_manifest_inert_" +
                              std::to_string(static_cast<long long>(::getpid())) + ".json";
  CliResult plain = invoke({"run", scenario_path, "--reps", "2", "--seed", "11",
                            "--summary-json", "-", "--quiet"});
  CliResult with = invoke({"run", scenario_path, "--reps", "2", "--seed", "11",
                           "--summary-json", "-", "--quiet", "--manifest", manifest_path});
  ASSERT_EQ(plain.code, 0) << plain.err;
  ASSERT_EQ(with.code, 0) << with.err;
  EXPECT_EQ(plain.out, with.out);
  std::remove(scenario_path.c_str());
  std::remove(manifest_path.c_str());
}

TEST(Cli, SweepAppendsLedgerStreamsProgressAndFindsTheKnee) {
  std::string scenario_path = write_small_scenario();
  std::string ledger_path = ::testing::TempDir() + "/mvsim_cli_sweep_ledger_" +
                            std::to_string(static_cast<long long>(::getpid())) + ".ndjson";
  std::string stream_path = ::testing::TempDir() + "/mvsim_cli_sweep_stream_" +
                            std::to_string(static_cast<long long>(::getpid())) + ".ndjson";
  std::remove(ledger_path.c_str());
  // Weakest -> strongest: a *shorter* activation delay is the stronger
  // response, so the ladder descends.
  CliResult r = invoke({"sweep", scenario_path, "--param", "gateway_scan.activation_delay_h",
                        "--values", "24,12,6,2", "--reps", "1", "--seed", "5", "--ledger",
                        ledger_path, "--stream", stream_path});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("sweep: cli-test over gateway_scan.activation_delay_h"),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("knee:"), std::string::npos) << r.out;

  // One ledger line per point, each tagged with its sweep position.
  std::vector<obs::RunManifest> ledger = obs::read_ledger_file(ledger_path);
  ASSERT_EQ(ledger.size(), 4u);
  for (std::size_t i = 0; i < ledger.size(); ++i) {
    ASSERT_TRUE(ledger[i].sweep.has_value()) << i;
    EXPECT_EQ(ledger[i].sweep->parameter, "gateway_scan.activation_delay_h");
    EXPECT_EQ(ledger[i].sweep->index, static_cast<int>(i));
    EXPECT_EQ(ledger[i].sweep->count, 4);
    EXPECT_EQ(ledger[i].replications, 1);
  }
  EXPECT_DOUBLE_EQ(ledger[0].sweep->value, 24.0);
  EXPECT_DOUBLE_EQ(ledger[3].sweep->value, 2.0);
  // Different parameter values are different model inputs.
  EXPECT_NE(ledger[0].scenario_hash, ledger[3].scenario_hash);

  // The stream carries a header and a started+finished pair per point.
  std::ifstream stream_file(stream_path);
  ASSERT_TRUE(stream_file.good());
  std::string line;
  ASSERT_TRUE(std::getline(stream_file, line));
  EXPECT_NE(line.find("\"type\":\"mvsim-sweep\""), std::string::npos) << line;
  int started = 0, finished = 0;
  while (std::getline(stream_file, line)) {
    if (line.find("\"type\":\"point-started\"") != std::string::npos) ++started;
    if (line.find("\"type\":\"point-finished\"") != std::string::npos) ++finished;
  }
  EXPECT_EQ(started, 4);
  EXPECT_EQ(finished, 4);

  // The ledger report regroups the ladder and re-finds the knee.
  CliResult report = invoke({"report", "--ledger", ledger_path});
  ASSERT_EQ(report.code, 0) << report.err;
  EXPECT_NE(report.out.find("sweep gateway_scan.activation_delay_h (4 points):"),
            std::string::npos)
      << report.out;
  EXPECT_NE(report.out.find("knee:"), std::string::npos);

  std::remove(scenario_path.c_str());
  std::remove(ledger_path.c_str());
  std::remove(stream_path.c_str());
}

TEST(Cli, SweepListParamsAndBadFlags) {
  CliResult list = invoke({"sweep", "--list-params"});
  ASSERT_EQ(list.code, 0) << list.err;
  EXPECT_NE(list.out.find("gateway_scan.activation_delay_h"), std::string::npos);
  EXPECT_NE(list.out.find("blacklist.message_threshold"), std::string::npos);

  std::string path = write_small_scenario();
  EXPECT_EQ(invoke({"sweep"}).code, 1);
  EXPECT_EQ(invoke({"sweep", path, "--values", "1,2"}).code, 1) << "--param is required";
  CliResult unknown =
      invoke({"sweep", path, "--param", "no.such.knob", "--values", "1,2"});
  EXPECT_EQ(unknown.code, 1);
  EXPECT_NE(unknown.err.find("unknown parameter"), std::string::npos);
  EXPECT_NE(unknown.err.find("gateway_scan.activation_delay_h"), std::string::npos)
      << "the error must list the sweepable names";
  EXPECT_EQ(invoke({"sweep", path, "--param", "population", "--values", "500"}).code, 1)
      << "a ladder needs two values";
  EXPECT_EQ(invoke({"sweep", path, "--param", "population", "--values", "5,many"}).code, 1);
  EXPECT_EQ(invoke({"sweep", path, "--param", "population", "--values", "5,9", "--knee-fraction",
                    "1.5"})
                .code,
            1);
  CliResult unwritable = invoke({"sweep", path, "--param", "population", "--values", "100,200",
                                 "--ledger", "/no/such/dir/ledger.ndjson"});
  EXPECT_EQ(unwritable.code, 2);
  EXPECT_NE(unwritable.err.find("cannot write"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, ReportCompareVerdictsAndExitCodes) {
  // Two fixed-seed runs of the same scenario are outcome-identical:
  // every verdict OK at +0.0%, exit 0.
  std::string scenario_path = write_small_scenario();
  std::string a_path = ::testing::TempDir() + "/mvsim_cli_cmp_a_" +
                       std::to_string(static_cast<long long>(::getpid())) + ".json";
  std::string b_path = ::testing::TempDir() + "/mvsim_cli_cmp_b_" +
                       std::to_string(static_cast<long long>(::getpid())) + ".json";
  ASSERT_EQ(invoke({"run", scenario_path, "--reps", "2", "--seed", "42", "--quiet",
                    "--manifest", a_path})
                .code,
            0);
  ASSERT_EQ(invoke({"run", scenario_path, "--reps", "2", "--seed", "42", "--quiet",
                    "--manifest", b_path})
                .code,
            0);
  CliResult same = invoke({"report", "--compare", a_path, b_path});
  EXPECT_EQ(same.code, 0) << same.out;
  EXPECT_NE(same.out.find("report-compare: no regressions"), std::string::npos) << same.out;
  EXPECT_NE(same.out.find("OK        final_infected_mean"), std::string::npos) << same.out;
  EXPECT_EQ(same.out.find("REGRESSED"), std::string::npos) << same.out;

  // Hand-degrade the outcome: more infections and fewer patches past
  // any threshold must flip verdicts and the exit code.
  obs::RunManifest degraded = obs::read_manifest_file(a_path);
  degraded.outcome.final_infected_mean *= 4.0;
  degraded.outcome.peak_infected_mean *= 4.0;
  {
    std::ofstream file(b_path);
    file << json::stringify(obs::to_json(degraded), 2) << '\n';
  }
  CliResult worse = invoke({"report", "--compare", a_path, b_path});
  EXPECT_EQ(worse.code, 1) << worse.out;
  EXPECT_NE(worse.out.find("REGRESSED"), std::string::npos) << worse.out;
  EXPECT_NE(worse.out.find("regressed past"), std::string::npos) << worse.out;

  // A generous threshold waves the same delta through.
  CliResult lax = invoke({"report", "--compare", a_path, b_path, "--threshold", "0.99"});
  EXPECT_EQ(lax.code, 0) << lax.out;

  EXPECT_EQ(invoke({"report", "--compare", a_path}).code, 1);
  EXPECT_EQ(invoke({"report", "--compare", a_path, "/no/such/manifest.json"}).code, 2);
  EXPECT_EQ(invoke({"report", "--compare", a_path, b_path, "--threshold", "zero"}).code, 1);

  std::remove(scenario_path.c_str());
  std::remove(a_path.c_str());
  std::remove(b_path.c_str());
}

TEST(Cli, ReportRejectsBadInput) {
  EXPECT_EQ(invoke({"report"}).code, 1);
  EXPECT_EQ(invoke({"report", "/no/such/manifest.json"}).code, 2);
  EXPECT_EQ(invoke({"report", "--ledger"}).code, 1);
  EXPECT_EQ(invoke({"report", "--ledger", "/no/such/ledger.ndjson"}).code, 2);
  std::string path = ::testing::TempDir() + "/mvsim_cli_not_a_manifest.json";
  std::ofstream(path) << R"({"type": "something-else"})";
  CliResult r = invoke({"report", path});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("mvsim-manifest"), std::string::npos) << r.err;
  std::remove(path.c_str());
}

TEST(Cli, UsageMentionsManifestSweepAndReport) {
  CliResult r = invoke({"help"});
  EXPECT_NE(r.out.find("--manifest"), std::string::npos);
  EXPECT_NE(r.out.find("--ledger"), std::string::npos);
  EXPECT_NE(r.out.find("mvsim sweep"), std::string::npos);
  EXPECT_NE(r.out.find("mvsim report"), std::string::npos);
  EXPECT_NE(r.out.find("--list-params"), std::string::npos);
  EXPECT_NE(r.out.find("--compare"), std::string::npos);
}

TEST(Cli, ValidateAcceptsGoodFile) {
  std::string path = write_small_scenario();
  CliResult r = invoke({"validate", path});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("OK: cli-test"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, ValidateRejectsBadFile) {
  std::string path = ::testing::TempDir() + "/mvsim_cli_bad.json";
  std::ofstream(path) << R"({"population": 1})";
  CliResult r = invoke({"validate", path});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("population"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, ValidateRejectsUnparsableJson) {
  std::string path = ::testing::TempDir() + "/mvsim_cli_syntax.json";
  std::ofstream(path) << "{ not json";
  CliResult r = invoke({"validate", path});
  EXPECT_EQ(r.code, 2);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mvsim::cli
