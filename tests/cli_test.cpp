// Unit tests for src/cli: argument handling, preset registry, and the
// run/preset/validate commands end to end (through the library entry
// point, no subprocesses).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cli/cli.h"
#include "cli/preset_registry.h"
#include "config/scenario_io.h"
#include "metrics/report.h"
#include "util/json.h"

namespace mvsim::cli {
namespace {

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult invoke(std::vector<std::string> args) {
  std::ostringstream out, err;
  int code = run_cli(args, out, err);
  return {code, out.str(), err.str()};
}

/// Writes a small, fast scenario file and returns its path. The name is
/// unique per process: ctest registers each TEST as its own process and
/// may run them concurrently, so a shared path would race with the
/// std::remove() each test ends with.
std::string write_small_scenario() {
  static const std::string unique =
      std::to_string(static_cast<long long>(::getpid()));
  std::string path = ::testing::TempDir() + "/mvsim_cli_scenario_" + unique + ".json";
  std::ofstream file(path);
  file << R"({
    "name": "cli-test",
    "population": 120,
    "topology": {"mean_degree": 12},
    "virus": {"preset": "virus1"},
    "horizon": "24h"
  })";
  return path;
}

TEST(PresetRegistry, ListsAllPresets) {
  auto presets = list_presets();
  EXPECT_EQ(presets.size(), 11u);
  EXPECT_EQ(presets[0].name, "virus1-baseline");
  for (const auto& entry : presets) {
    EXPECT_FALSE(entry.description.empty()) << entry.name;
    EXPECT_TRUE(find_preset(entry.name).has_value()) << entry.name;
  }
}

TEST(PresetRegistry, UnknownNameIsNullopt) {
  EXPECT_FALSE(find_preset("virus9-baseline").has_value());
  EXPECT_FALSE(find_preset("").has_value());
}

TEST(PresetRegistry, PresetsAreValidScenarios) {
  for (const auto& entry : list_presets()) {
    auto preset = find_preset(entry.name);
    ASSERT_TRUE(preset.has_value());
    EXPECT_TRUE(preset->validate().ok()) << entry.name;
  }
}

TEST(Cli, NoArgsPrintsUsageAndFails) {
  CliResult r = invoke({});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.out.find("usage:"), std::string::npos);
}

TEST(Cli, HelpSucceeds) {
  EXPECT_EQ(invoke({"help"}).code, 0);
  EXPECT_EQ(invoke({"--help"}).code, 0);
  EXPECT_NE(invoke({"-h"}).out.find("mvsim run"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
  CliResult r = invoke({"launch-missiles"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, PresetsCommandListsNames) {
  CliResult r = invoke({"presets"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("virus3-baseline"), std::string::npos);
  EXPECT_NE(r.out.find("fig6-monitoring"), std::string::npos);
}

TEST(Cli, PresetCommandEmitsLoadableJson) {
  CliResult r = invoke({"preset", "fig7-blacklist"});
  ASSERT_EQ(r.code, 0) << r.err;
  core::ScenarioConfig config = config::scenario_from_text(r.out);
  EXPECT_TRUE(config.responses.blacklist.has_value());
  EXPECT_EQ(config.virus.name, "Virus 3");
}

TEST(Cli, MarketSharePresetRoundTripsSharedSeed) {
  CliResult r = invoke({"preset", "market-share"});
  ASSERT_EQ(r.code, 0) << r.err;
  core::ScenarioConfig config = config::scenario_from_text(r.out);
  ASSERT_TRUE(config.topology.shared_seed.has_value());
  EXPECT_EQ(*config.topology.shared_seed, 0x6d61726b6574ull);
  EXPECT_DOUBLE_EQ(config.susceptible_fraction, 0.30);
  EXPECT_DOUBLE_EQ(config.topology.mean_degree, 8.0);
}

TEST(Cli, PresetCommandRejectsUnknown) {
  CliResult r = invoke({"preset", "nope"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown preset"), std::string::npos);
}

TEST(Cli, PresetCommandWantsExactlyOneArg) {
  EXPECT_EQ(invoke({"preset"}).code, 1);
  EXPECT_EQ(invoke({"preset", "a", "b"}).code, 1);
}

TEST(Cli, RunScenarioFileProducesSummary) {
  std::string path = write_small_scenario();
  CliResult r = invoke({"run", path, "--reps", "2", "--seed", "7"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("scenario: cli-test"), std::string::npos);
  EXPECT_NE(r.out.find("final infections:"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, RunIsDeterministicGivenSeed) {
  std::string path = write_small_scenario();
  CliResult a = invoke({"run", path, "--reps", "2", "--seed", "55"});
  CliResult b = invoke({"run", path, "--reps", "2", "--seed", "55"});
  EXPECT_EQ(a.out, b.out);
  CliResult c = invoke({"run", path, "--reps", "2", "--seed", "56"});
  EXPECT_NE(a.out, c.out);
  std::remove(path.c_str());
}

TEST(Cli, RunEmitsCsvAndJsonToStdout) {
  std::string path = write_small_scenario();
  CliResult r = invoke(
      {"run", path, "--reps", "2", "--quiet", "--curve-csv", "-", "--summary-json", "-"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("hours,mean_infected"), std::string::npos);
  EXPECT_NE(r.out.find("\"final_infections\""), std::string::npos);
  EXPECT_EQ(r.out.find("scenario: cli-test"), std::string::npos) << "--quiet suppresses prose";
  std::remove(path.c_str());
}

TEST(Cli, RunWritesOutputFiles) {
  std::string scenario_path = write_small_scenario();
  std::string csv_path = ::testing::TempDir() + "/mvsim_cli_curve.csv";
  std::string json_path = ::testing::TempDir() + "/mvsim_cli_summary.json";
  CliResult r = invoke({"run", scenario_path, "--reps", "2", "--quiet", "--curve-csv", csv_path,
                        "--summary-json", json_path});
  ASSERT_EQ(r.code, 0) << r.err;
  std::ifstream csv(csv_path);
  ASSERT_TRUE(csv.good());
  std::string header;
  std::getline(csv, header);
  EXPECT_EQ(header, "hours,mean_infected,stddev,ci95,min,max");
  std::ifstream json_file(json_path);
  ASSERT_TRUE(json_file.good());
  std::remove(scenario_path.c_str());
  std::remove(csv_path.c_str());
  std::remove(json_path.c_str());
}

TEST(Cli, RunAcceptsPresetNames) {
  // Use the fastest preset at reduced reps to keep the test snappy.
  CliResult r = invoke({"run", "virus3-baseline", "--reps", "1", "--quiet"});
  EXPECT_EQ(r.code, 0) << r.err;
}

TEST(Cli, RunRejectsBadFlags) {
  std::string path = write_small_scenario();
  EXPECT_EQ(invoke({"run"}).code, 1);
  EXPECT_EQ(invoke({"run", path, "--reps"}).code, 1);
  EXPECT_EQ(invoke({"run", path, "--reps", "0"}).code, 1);
  EXPECT_EQ(invoke({"run", path, "--reps", "many"}).code, 1);
  EXPECT_EQ(invoke({"run", path, "--seed", "xyz"}).code, 1);
  EXPECT_EQ(invoke({"run", path, "--frobnicate"}).code, 1);
  std::remove(path.c_str());
}

TEST(Cli, RunDesImplSelectsQueueAndMatches) {
  // Both queue implementations must run, and — the scheduler's core
  // determinism contract — produce byte-identical output for the same
  // seed. The default (no flag) is the wheel.
  std::string path = write_small_scenario();
  CliResult wheel = invoke({"run", path, "--reps", "2", "--seed", "7", "--des-impl", "wheel"});
  CliResult heap = invoke({"run", path, "--reps", "2", "--seed", "7", "--des-impl", "heap"});
  CliResult dflt = invoke({"run", path, "--reps", "2", "--seed", "7"});
  EXPECT_EQ(wheel.code, 0) << wheel.err;
  EXPECT_EQ(heap.code, 0) << heap.err;
  EXPECT_EQ(wheel.out, heap.out);
  EXPECT_EQ(wheel.out, dflt.out);
  std::remove(path.c_str());
}

TEST(Cli, RunRejectsBadDesImpl) {
  std::string path = write_small_scenario();
  CliResult r = invoke({"run", path, "--des-impl", "splay"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--des-impl"), std::string::npos);
  EXPECT_EQ(invoke({"run", path, "--des-impl"}).code, 1);
  std::remove(path.c_str());
}

TEST(Cli, UsageMentionsDesImpl) {
  CliResult r = invoke({"--help"});
  EXPECT_NE(r.out.find("--des-impl"), std::string::npos);
}

TEST(Cli, RunUnknownPresetMentionsPresets) {
  CliResult r = invoke({"run", "virus9-baseline"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("mvsim presets"), std::string::npos);
}

TEST(Cli, RunMissingFileFails) {
  CliResult r = invoke({"run", "/no/such/scenario.json"});
  EXPECT_EQ(r.code, 2);
  EXPECT_FALSE(r.err.empty());
}

TEST(Cli, CompareRunsMultipleTargets) {
  std::string path = write_small_scenario();
  CliResult r = invoke({"compare", path, path, "--reps", "2", "--seed", "3"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("scenario,final_infected"), std::string::npos);
  // Two identical targets at the same seed produce identical rows.
  EXPECT_NE(r.out.find("100.0%"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, CompareNeedsTwoTargets) {
  EXPECT_EQ(invoke({"compare"}).code, 1);
  EXPECT_EQ(invoke({"compare", "virus1-baseline"}).code, 1);
  EXPECT_EQ(invoke({"compare", "a", "b", "--reps"}).code, 1);
  EXPECT_EQ(invoke({"compare", "a", "b", "--reps", "0"}).code, 1);
}

TEST(Cli, RunThreadsFlagParses) {
  std::string path = write_small_scenario();
  EXPECT_EQ(invoke({"run", path, "--reps", "2", "--threads", "2", "--quiet"}).code, 0);
  EXPECT_EQ(invoke({"run", path, "--threads", "many"}).code, 1);
  EXPECT_EQ(invoke({"run", path, "--threads", "9999"}).code, 1);
  std::remove(path.c_str());
}

TEST(Cli, RunShardsFlagIsWorkerCountInvariant) {
  // The sharded engine's determinism contract: for a fixed seed and shard
  // count, the worker-thread count never changes the curves.
  std::string path = write_small_scenario();
  CliResult one = invoke({"run", path, "--reps", "2", "--seed", "9", "--shards", "2",
                          "--shard-workers", "1", "--quiet", "--summary-json", "-"});
  CliResult two = invoke({"run", path, "--reps", "2", "--seed", "9", "--shards", "2",
                          "--shard-workers", "2", "--quiet", "--summary-json", "-"});
  ASSERT_EQ(one.code, 0) << one.err;
  ASSERT_EQ(two.code, 0) << two.err;
  EXPECT_EQ(one.out, two.out);
  std::remove(path.c_str());
}

TEST(Cli, RunShardsOneMatchesSerialEngine) {
  // --shards 1 routes to the serial engine, so it must be byte-identical
  // to omitting the flag entirely.
  std::string path = write_small_scenario();
  CliResult serial = invoke({"run", path, "--reps", "2", "--seed", "4", "--quiet",
                             "--summary-json", "-"});
  CliResult one = invoke({"run", path, "--reps", "2", "--seed", "4", "--shards", "1",
                          "--quiet", "--summary-json", "-"});
  ASSERT_EQ(serial.code, 0) << serial.err;
  ASSERT_EQ(one.code, 0) << one.err;
  EXPECT_EQ(serial.out, one.out);
  std::remove(path.c_str());
}

TEST(Cli, RunRejectsBadShardFlags) {
  std::string path = write_small_scenario();
  EXPECT_EQ(invoke({"run", path, "--shards"}).code, 1);
  EXPECT_EQ(invoke({"run", path, "--shards", "0"}).code, 1);
  EXPECT_EQ(invoke({"run", path, "--shards", "many"}).code, 1);
  EXPECT_EQ(invoke({"run", path, "--shards", "9999"}).code, 1);
  EXPECT_EQ(invoke({"run", path, "--shard-window", "0"}).code, 1);
  EXPECT_EQ(invoke({"run", path, "--shard-window", "-5"}).code, 1);
  EXPECT_EQ(invoke({"run", path, "--shard-workers", "many"}).code, 1);
  std::remove(path.c_str());
}

TEST(Cli, RunShardsComposesWithTraceProfileAndStatsStream) {
  // The full shard observability stack in one invocation: merged
  // shard-stamped trace, merged profile with the shard-window series,
  // and an NDJSON stats stream — all from the same run.
  std::string scenario_path = write_small_scenario();
  std::string trace_path = ::testing::TempDir() + "/mvsim_cli_shard_trace.jsonl";
  std::string profile_path = ::testing::TempDir() + "/mvsim_cli_shard_profile.json";
  std::string stats_path = ::testing::TempDir() + "/mvsim_cli_shard_stats.ndjson";
  CliResult r = invoke({"run", scenario_path, "--reps", "2", "--quiet", "--shards", "2",
                        "--trace", trace_path, "--profile", profile_path, "--stats-stream",
                        stats_path, "--stats-period", "60"});
  ASSERT_EQ(r.code, 0) << r.err;

  std::ifstream trace_file(trace_path);
  ASSERT_TRUE(trace_file.good());
  std::ostringstream trace_text;
  trace_text << trace_file.rdbuf();
  EXPECT_NE(trace_text.str().find("\"type\":\"mvsim-trace\""), std::string::npos);
  EXPECT_NE(trace_text.str().find("\"shard\":"), std::string::npos)
      << "sharded trace events must carry their shard";
  CliResult analyzed = invoke({"trace-analyze", trace_path});
  ASSERT_EQ(analyzed.code, 0) << analyzed.err;
  EXPECT_NE(analyzed.out.find("shard 0:"), std::string::npos) << analyzed.out;
  EXPECT_NE(analyzed.out.find("cross-shard deliveries:"), std::string::npos);

  std::ifstream profile_file(profile_path);
  ASSERT_TRUE(profile_file.good());
  std::ostringstream profile_text;
  profile_text << profile_file.rdbuf();
  json::Value profile_doc = json::parse(profile_text.str());
  EXPECT_NE(profile_doc.as_object().find("shard_windows"), nullptr)
      << "sharded profiles must carry the per-window straggler summary";

  std::ifstream stats_file(stats_path);
  ASSERT_TRUE(stats_file.good());
  std::string header_line;
  std::getline(stats_file, header_line);
  EXPECT_NE(header_line.find("\"type\":\"mvsim-stats\""), std::string::npos) << header_line;
  std::string sample_line;
  std::getline(stats_file, sample_line);
  EXPECT_NE(sample_line.find("\"barrier_wait_ms\":"), std::string::npos) << sample_line;

  std::remove(scenario_path.c_str());
  std::remove(trace_path.c_str());
  std::remove(profile_path.c_str());
  std::remove(stats_path.c_str());
}

TEST(Cli, RunStatsStreamOnStdoutAndBadFlags) {
  std::string path = write_small_scenario();
  CliResult r = invoke({"run", path, "--reps", "1", "--quiet", "--stats-stream", "-",
                        "--stats-period", "120"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("\"type\":\"mvsim-stats\""), std::string::npos);
  EXPECT_NE(r.out.find("\"type\":\"sample\""), std::string::npos);
  EXPECT_EQ(invoke({"run", path, "--stats-stream"}).code, 1);
  EXPECT_EQ(invoke({"run", path, "--stats-stream", "-", "--stats-period", "0"}).code, 1);
  EXPECT_EQ(invoke({"run", path, "--stats-stream", "-", "--stats-period", "soon"}).code, 1);
  std::remove(path.c_str());
}

TEST(Cli, UsageMentionsShards) {
  CliResult r = invoke({"--help"});
  EXPECT_NE(r.out.find("--shards"), std::string::npos);
  EXPECT_NE(r.out.find("--shard-window"), std::string::npos);
  EXPECT_NE(r.out.find("--shard-workers"), std::string::npos);
  EXPECT_NE(r.out.find("--stats-stream"), std::string::npos);
  EXPECT_NE(r.out.find("--stats-period"), std::string::npos);
  EXPECT_EQ(r.out.find("not combinable with --trace"), std::string::npos)
      << "usage must not claim --shards rejects the observability flags";
}

TEST(Cli, RunEmitsMetricsJsonToStdout) {
  std::string path = write_small_scenario();
  CliResult r = invoke({"run", path, "--reps", "2", "--quiet", "--metrics", "-"});
  ASSERT_EQ(r.code, 0) << r.err;
  json::Value doc = json::parse(r.out);
  const json::Object& root = doc.as_object();
  EXPECT_EQ(root.at("schema_version").as_number(), 1.0);
  EXPECT_EQ(root.at("scenario").as_string(), "cli-test");
  EXPECT_EQ(root.at("replications").as_number(), 2.0);
  // Every emitted metric name must be in the documented catalogue.
  for (const auto& [name, value] : root.at("counters").as_object().entries()) {
    EXPECT_NE(metrics::schema_find(name), nullptr) << name;
  }
  for (const auto& [name, value] : root.at("gauges").as_object().entries()) {
    EXPECT_NE(metrics::schema_find(name), nullptr) << name;
  }
  for (const auto& [name, value] : root.at("histograms").as_object().entries()) {
    EXPECT_NE(metrics::schema_find(name), nullptr) << name;
  }
  EXPECT_GT(root.at("derived").as_object().at("events_processed").as_number(), 0.0);
  std::remove(path.c_str());
}

TEST(Cli, RunWritesMetricsCsvFile) {
  std::string scenario_path = write_small_scenario();
  std::string metrics_path = ::testing::TempDir() + "/mvsim_cli_metrics.csv";
  CliResult r =
      invoke({"run", scenario_path, "--reps", "2", "--quiet", "--metrics", metrics_path});
  ASSERT_EQ(r.code, 0) << r.err;
  std::ifstream file(metrics_path);
  ASSERT_TRUE(file.good());
  std::string header;
  std::getline(file, header);
  EXPECT_EQ(header, "metric,kind,field,value");
  std::remove(scenario_path.c_str());
  std::remove(metrics_path.c_str());
}

TEST(Cli, MetricsSchemaMatchesLibraryCatalogue) {
  CliResult r = invoke({"metrics-schema"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_EQ(r.out, json::stringify(metrics::schema_to_json(), 2) + "\n");
}

TEST(Cli, UsageMentionsMetricsSurface) {
  CliResult r = invoke({"help"});
  EXPECT_NE(r.out.find("--metrics"), std::string::npos);
  EXPECT_NE(r.out.find("metrics-schema"), std::string::npos);
}

TEST(Cli, RunWritesJsonlTraceAndAnalyzeReadsIt) {
  std::string scenario_path = write_small_scenario();
  std::string trace_path = ::testing::TempDir() + "/mvsim_cli_trace.jsonl";
  CliResult r = invoke({"run", scenario_path, "--reps", "2", "--quiet", "--trace", trace_path,
                        "--trace-rep", "1"});
  ASSERT_EQ(r.code, 0) << r.err;
  std::ifstream file(trace_path);
  ASSERT_TRUE(file.good());
  std::string meta_line;
  std::getline(file, meta_line);
  EXPECT_NE(meta_line.find("\"type\":\"mvsim-trace\""), std::string::npos) << meta_line;

  CliResult analyzed = invoke({"trace-analyze", trace_path});
  ASSERT_EQ(analyzed.code, 0) << analyzed.err;
  EXPECT_NE(analyzed.out.find("transmission tree"), std::string::npos);
  EXPECT_NE(analyzed.out.find("effective_R"), std::string::npos);
  std::remove(scenario_path.c_str());
  std::remove(trace_path.c_str());
}

TEST(Cli, RunWritesChromeTraceByDefaultExtension) {
  std::string scenario_path = write_small_scenario();
  std::string trace_path = ::testing::TempDir() + "/mvsim_cli_trace.json";
  CliResult r = invoke({"run", scenario_path, "--reps", "1", "--quiet", "--trace", trace_path});
  ASSERT_EQ(r.code, 0) << r.err;
  std::ifstream file(trace_path);
  ASSERT_TRUE(file.good());
  std::ostringstream content;
  content << file.rdbuf();
  json::Value doc = json::parse(content.str());
  const json::Object& root = doc.as_object();
  EXPECT_NE(root.find("traceEvents"), nullptr);
  EXPECT_NE(root.find("otherData"), nullptr);

  // trace-analyze auto-detects the Chrome format too.
  CliResult analyzed = invoke({"trace-analyze", trace_path});
  EXPECT_EQ(analyzed.code, 0) << analyzed.err;
  std::remove(scenario_path.c_str());
  std::remove(trace_path.c_str());
}

TEST(Cli, RunRejectsBadTraceFlags) {
  std::string path = write_small_scenario();
  EXPECT_EQ(invoke({"run", path, "--trace"}).code, 1);
  EXPECT_EQ(invoke({"run", path, "--reps", "2", "--trace", "t.jsonl", "--trace-rep", "2"}).code,
            1);
  EXPECT_EQ(invoke({"run", path, "--trace", "t.jsonl", "--trace-rep", "-1"}).code, 1);
  EXPECT_EQ(invoke({"run", path, "--trace", "t.jsonl", "--trace-cap", "lots"}).code, 1);
  std::remove(path.c_str());
}

TEST(Cli, TraceAnalyzeRejectsBadInput) {
  EXPECT_EQ(invoke({"trace-analyze"}).code, 1);
  EXPECT_EQ(invoke({"trace-analyze", "/no/such/trace.jsonl"}).code, 2);
  std::string path = ::testing::TempDir() + "/mvsim_cli_not_a_trace.json";
  std::ofstream(path) << "{ not json";
  EXPECT_EQ(invoke({"trace-analyze", path}).code, 2);
  std::remove(path.c_str());
}

TEST(Cli, UsageMentionsTraceSurface) {
  CliResult r = invoke({"help"});
  EXPECT_NE(r.out.find("--trace"), std::string::npos);
  EXPECT_NE(r.out.find("trace-analyze"), std::string::npos);
}

TEST(Cli, RunWritesProfileJsonAndProfileAnalyzeReadsIt) {
  std::string scenario_path = write_small_scenario();
  std::string profile_path = ::testing::TempDir() + "/mvsim_cli_profile.json";
  CliResult r =
      invoke({"run", scenario_path, "--reps", "2", "--quiet", "--profile", profile_path});
  ASSERT_EQ(r.code, 0) << r.err;

  std::ifstream file(profile_path);
  ASSERT_TRUE(file.good());
  std::ostringstream content;
  content << file.rdbuf();
  json::Value doc = json::parse(content.str());
  const json::Object& root = doc.as_object();
  EXPECT_EQ(root.at("type").as_string(), "mvsim-profile");
  EXPECT_EQ(root.at("scenario").as_string(), "cli-test");
  EXPECT_DOUBLE_EQ(root.at("replications").as_number(), 2.0);
  EXPECT_FALSE(root.at("events").as_array().empty());
  EXPECT_GT(root.at("event_wall_ms").as_number(), 0.0);

  CliResult analyzed = invoke({"profile-analyze", profile_path, "--top", "3"});
  EXPECT_EQ(analyzed.code, 0) << analyzed.err;
  EXPECT_NE(analyzed.out.find("where the time goes"), std::string::npos);
  std::remove(scenario_path.c_str());
  std::remove(profile_path.c_str());
}

TEST(Cli, ProfileAnalyzeRejectsBadInput) {
  EXPECT_EQ(invoke({"profile-analyze"}).code, 1);
  EXPECT_EQ(invoke({"profile-analyze", "/no/such/profile.json"}).code, 2);
  EXPECT_EQ(invoke({"profile-analyze", "p.json", "--top", "0"}).code, 1);
  EXPECT_EQ(invoke({"profile-analyze", "p.json", "--top", "lots"}).code, 1);
  // A JSON file without the profile type marker is rejected cleanly.
  std::string path = ::testing::TempDir() + "/mvsim_cli_not_a_profile.json";
  std::ofstream(path) << R"({"type": "something-else"})";
  CliResult r = invoke({"profile-analyze", path});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("not an mvsim profile"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, RunProgressTicksOnStderr) {
  std::string path = write_small_scenario();
  CliResult r = invoke({"run", path, "--reps", "2", "--quiet", "--progress"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.err.find("rep 2/2"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("ev/s"), std::string::npos) << r.err;
  EXPECT_EQ(r.err.back(), '\n') << "ticker must finish its line";

  // Progress is observation-only: summary output matches a plain run.
  CliResult quiet = invoke({"run", path, "--reps", "2"});
  CliResult with_progress = invoke({"run", path, "--reps", "2", "--progress"});
  EXPECT_EQ(quiet.out, with_progress.out);
  std::remove(path.c_str());
}

TEST(Cli, RunReportsUnwritableOutputPaths) {
  std::string path = write_small_scenario();
  const char* kUnwritable = "/no/such/dir/mvsim_out.json";
  for (const char* flag : {"--metrics", "--trace", "--profile", "--curve-csv", "--summary-json",
                           "--stats-stream"}) {
    CliResult r = invoke({"run", path, "--reps", "1", "--quiet", flag, kUnwritable});
    EXPECT_EQ(r.code, 2) << flag;
    EXPECT_NE(r.err.find("cannot write"), std::string::npos) << flag << ": " << r.err;
    EXPECT_NE(r.err.find(kUnwritable), std::string::npos) << flag << ": " << r.err;
  }
  std::remove(path.c_str());
}

TEST(Cli, ValidateAcceptsGoodFile) {
  std::string path = write_small_scenario();
  CliResult r = invoke({"validate", path});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("OK: cli-test"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, ValidateRejectsBadFile) {
  std::string path = ::testing::TempDir() + "/mvsim_cli_bad.json";
  std::ofstream(path) << R"({"population": 1})";
  CliResult r = invoke({"validate", path});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("population"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, ValidateRejectsUnparsableJson) {
  std::string path = ::testing::TempDir() + "/mvsim_cli_syntax.json";
  std::ofstream(path) << "{ not json";
  CliResult r = invoke({"validate", path});
  EXPECT_EQ(r.code, 2);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mvsim::cli
