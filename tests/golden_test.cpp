// Golden-results regression guard for the simulation core.
//
// Fixed-seed runs of all paper presets (fig1-fig7) plus the dual-vector
// and defense-in-depth extensions must produce bit-identical results
// across refactors of the core/net/response wiring: the hashes below
// cover every per-replication infection step (time and value bit
// patterns), all gateway counters, response-mechanism counters and the
// aggregated mean curves. They were captured from the pre-refactor
// (hard-wired mechanism) implementation; the pluggable event-dispatch
// architecture must reproduce them exactly, at any worker-thread count.
//
// To regenerate after an *intentional* behavior change:
//   MVSIM_GOLDEN_PRINT=1 ./golden_test --gtest_filter='*OneThread*'
// and paste the printed table over kCases.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "config/scenario_io.h"
#include "core/presets.h"
#include "core/run_manifest.h"
#include "core/runner.h"
#include "metrics/registry.h"
#include "obs/manifest.h"
#include "obs/stats_stream.h"
#include "trace/trace.h"
#include "util/json.h"

namespace mvsim::core {
namespace {

class Fnv1a {
 public:
  void add_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xFFu;
      hash_ *= 1099511628211ULL;
    }
  }
  void add_double(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    add_u64(bits);
  }
  void add_time(SimTime t) { add_double(t.to_minutes()); }
  [[nodiscard]] std::uint64_t digest() const { return hash_; }

 private:
  std::uint64_t hash_ = 14695981039346656037ULL;
};

std::uint64_t hash_result(const ExperimentResult& result) {
  Fnv1a h;
  for (const auto& point : result.curve.grid()) {
    h.add_time(point.time);
    h.add_double(point.mean);
    h.add_double(point.stddev);
  }
  h.add_double(result.final_infections.mean());
  h.add_double(result.messages_submitted.mean());
  h.add_double(result.messages_blocked.mean());
  h.add_double(result.phones_blacklisted.mean());
  h.add_double(result.phones_flagged.mean());
  h.add_double(result.patches_applied.mean());
  h.add_double(result.bluetooth_push_attempts.mean());
  for (const ReplicationResult& r : result.replications) {
    // Every infection step: any event reordering or extra RNG draw
    // anywhere in the pipeline perturbs these.
    for (const auto& point : r.infections.points()) {
      h.add_time(point.time);
      h.add_double(point.value);
    }
    h.add_u64(r.total_infected);
    h.add_u64(r.immunized_healthy);
    h.add_u64(r.patched_infected);
    h.add_u64(r.phones_blacklisted);
    h.add_u64(r.phones_flagged);
    h.add_u64(r.bluetooth_push_attempts);
    h.add_u64(r.gateway.messages_submitted);
    h.add_u64(r.gateway.infected_messages_submitted);
    h.add_u64(r.gateway.messages_blocked);
    h.add_u64(r.gateway.recipients_delivered);
    h.add_u64(r.gateway.invalid_recipients_dropped);
    h.add_time(r.detected_at);
  }
  return h.digest();
}

ScenarioConfig dual_vector_scenario() {
  // The ext_dual_vector bench's headline configuration: Virus 1 with
  // the Bluetooth side channel, against the 6 h gateway scan.
  ScenarioConfig config = fig2_scan_scenario(SimTime::hours(6.0));
  config.name = "golden/dual-vector";
  config.proximity = ProximityChannelConfig{};
  return config;
}

ScenarioConfig defense_in_depth_scenario() {
  // All six paper mechanisms at default parameters against Virus 3,
  // as in examples/defense_in_depth.
  ScenarioConfig config = baseline_scenario(virus::virus3());
  config.name = "golden/defense-in-depth";
  config.responses.gateway_scan = response::GatewayScanConfig{};
  config.responses.gateway_detection = response::GatewayDetectionConfig{};
  config.responses.user_education = response::UserEducationConfig{};
  config.responses.immunization = response::ImmunizationConfig{};
  config.responses.monitoring = response::MonitoringConfig{};
  config.responses.blacklist = response::BlacklistConfig{};
  return config;
}

struct GoldenCase {
  const char* name;
  ScenarioConfig (*make)();
  std::uint64_t expected;
};

// Hashes captured from the pre-refactor implementation (see header).
const GoldenCase kCases[] = {
    {"fig1-baseline-virus1", [] { return baseline_scenario(virus::virus1()); },
     0x6df294e3dc67a7a9ULL},
    {"fig1-baseline-virus2", [] { return baseline_scenario(virus::virus2()); },
     0xe8de5d4d7a4f9d30ULL},
    {"fig1-baseline-virus3", [] { return baseline_scenario(virus::virus3()); },
     0x1d0e8008183d3e18ULL},
    {"fig1-baseline-virus4", [] { return baseline_scenario(virus::virus4()); },
     0xf6dba30ac6086b28ULL},
    {"fig2-scan", [] { return fig2_scan_scenario(SimTime::hours(6.0)); }, 0xffe798e9330234caULL},
    {"fig3-detection", [] { return fig3_detection_scenario(0.95); }, 0x3576a9394d01da26ULL},
    {"fig4-education", [] { return fig4_education_scenario(virus::virus1(), 0.20); },
     0x3fb8c0d600df63dcULL},
    {"fig5-immunization",
     [] { return fig5_immunization_scenario(SimTime::hours(24.0), SimTime::hours(6.0)); },
     0x3e77f8e54b85cf86ULL},
    {"fig6-monitoring", [] { return fig6_monitoring_scenario(SimTime::minutes(15.0)); },
     0x2d757cb846fecd19ULL},
    {"fig7-blacklist", [] { return fig7_blacklist_scenario(10); }, 0xaaf59c7917668736ULL},
    {"dual-vector", dual_vector_scenario, 0x182aa062cd5b1f93ULL},
    {"defense-in-depth", defense_in_depth_scenario, 0x3143da29b28f8fbeULL},
};

constexpr std::uint64_t kMasterSeed = 0x601d'2007'd5a7ULL;
constexpr int kReplications = 4;  // >= 4 so the threads=4 run really fans out

std::uint64_t case_hash(const GoldenCase& golden, int threads) {
  static std::map<std::string, std::uint64_t> cache;
  std::string key = std::string(golden.name) + "@" + std::to_string(threads);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  RunnerOptions options;
  options.replications = kReplications;
  options.master_seed = kMasterSeed;
  options.keep_replications = true;
  options.threads = threads;
  std::uint64_t digest = hash_result(run_experiment(golden.make(), options));
  cache.emplace(std::move(key), digest);
  return digest;
}

// ---- Sharded engine goldens ---------------------------------------------
//
// Sharded results are a DIFFERENT fixed point than the serial engine's
// (per-shard RNG streams, cross-shard latency floor — see
// docs/parallelism.md), so they get their own pinned hashes, at shards
// 2 and 4. dual-vector is excluded: proximity scenarios are rejected by
// the sharded engine (covered in shard_test.cpp). Captured with
// shard_workers = 1; ShardedSimulation's contract (verified in
// shard_test.cpp) makes any worker count bit-identical to that.
//
// To regenerate after an intentional behavior change:
//   MVSIM_GOLDEN_PRINT=1 ./golden_test --gtest_filter='*Sharded*'
struct ShardedGoldenCase {
  const char* name;
  std::uint64_t expected_at_2;
  std::uint64_t expected_at_4;
};

const ShardedGoldenCase kShardedCases[] = {
    {"fig1-baseline-virus1", 0xc1c3c9f92d0ffbc2ULL, 0xc47f34758a415ae0ULL},
    {"fig1-baseline-virus2", 0x7fa53405ab4e8459ULL, 0x4d29156f5347048aULL},
    {"fig1-baseline-virus3", 0x669130dbd92f8ff9ULL, 0xacff26d80392fcf5ULL},
    {"fig1-baseline-virus4", 0x3a9d010549ef88faULL, 0xd127e13f0dedc02eULL},
    {"fig2-scan", 0xf91a49f3b9f34b35ULL, 0x89459e6c0bf6ecd2ULL},
    {"fig3-detection", 0x9d1661f334f97c89ULL, 0xcbf321f1a746139dULL},
    {"fig4-education", 0x0b021e503c20e0e8ULL, 0xdb1705ad1723c679ULL},
    {"fig5-immunization", 0xc12b5036d6c30e68ULL, 0x93016afe1f0cbd07ULL},
    {"fig6-monitoring", 0x636693cec1306755ULL, 0xc1013b15237973ecULL},
    {"fig7-blacklist", 0x311af2219c5f9bc1ULL, 0x77485775458649beULL},
    {"defense-in-depth", 0x8326b71dd022bd79ULL, 0xe258cbd3ed06701eULL},
};

const GoldenCase* find_case(const char* name) {
  for (const GoldenCase& golden : kCases) {
    if (std::string(golden.name) == name) return &golden;
  }
  return nullptr;
}

std::uint64_t sharded_case_hash(const GoldenCase& golden, std::uint32_t shards) {
  RunnerOptions options;
  options.replications = kReplications;
  options.master_seed = kMasterSeed;
  options.keep_replications = true;
  options.threads = 1;
  options.shards = shards;
  options.shard_workers = 1;
  return hash_result(run_experiment(golden.make(), options));
}

TEST(GoldenResults, ShardedCurvesBitIdenticalAtTwoAndFourShards) {
  const bool print = std::getenv("MVSIM_GOLDEN_PRINT") != nullptr;
  for (const ShardedGoldenCase& sharded : kShardedCases) {
    const GoldenCase* golden = find_case(sharded.name);
    ASSERT_NE(golden, nullptr) << sharded.name;
    std::uint64_t at2 = sharded_case_hash(*golden, 2);
    std::uint64_t at4 = sharded_case_hash(*golden, 4);
    if (print) {
      std::printf("    {\"%s\", 0x%016llxULL, 0x%016llxULL},\n", sharded.name,
                  static_cast<unsigned long long>(at2), static_cast<unsigned long long>(at4));
      continue;
    }
    EXPECT_EQ(at2, sharded.expected_at_2)
        << sharded.name << " @2 shards: fixed-seed sharded results diverged";
    EXPECT_EQ(at4, sharded.expected_at_4)
        << sharded.name << " @4 shards: fixed-seed sharded results diverged";
  }
}

TEST(GoldenResults, PresetCurvesBitIdenticalAtOneThread) {
  const bool print = std::getenv("MVSIM_GOLDEN_PRINT") != nullptr;
  for (const GoldenCase& golden : kCases) {
    std::uint64_t digest = case_hash(golden, 1);
    if (print) {
      std::printf("    {\"%s\", ..., 0x%016llxULL},\n", golden.name,
                  static_cast<unsigned long long>(digest));
      continue;
    }
    EXPECT_EQ(digest, golden.expected) << golden.name << ": fixed-seed results diverged from "
                                       << "the pre-refactor implementation";
  }
}

TEST(GoldenResults, PresetCurvesBitIdenticalAtFourThreads) {
  for (const GoldenCase& golden : kCases) {
    EXPECT_EQ(case_hash(golden, 4), case_hash(golden, 1))
        << golden.name << ": results depend on the worker-thread count";
  }
}

// Tracing is observation-only: attaching a TraceBuffer must not change
// a single bit of any preset's results, at any thread count.
TEST(GoldenResults, PresetCurvesUnperturbedByTracing) {
  for (const GoldenCase& golden : kCases) {
    for (int threads : {1, 4}) {
      trace::TraceBuffer buffer;
      RunnerOptions options;
      options.replications = kReplications;
      options.master_seed = kMasterSeed;
      options.keep_replications = true;
      options.threads = threads;
      options.trace = &buffer;
      options.trace_replication = 1;
      std::uint64_t digest = hash_result(run_experiment(golden.make(), options));
      EXPECT_EQ(digest, case_hash(golden, 1))
          << golden.name << " @" << threads << " threads: tracing perturbed the results";
      EXPECT_GT(buffer.events().size(), 0u) << golden.name << ": traced replication was empty";
    }
  }
}

// Profiling and progress reporting are observation-only too: turning
// both on must leave every preset's results bit-identical, at any
// thread count, while still producing profile data and progress ticks.
TEST(GoldenResults, PresetCurvesUnperturbedByProfilingAndProgress) {
  for (const GoldenCase& golden : kCases) {
    for (int threads : {1, 4}) {
      RunnerOptions options;
      options.replications = kReplications;
      options.master_seed = kMasterSeed;
      options.keep_replications = true;
      options.threads = threads;
      options.profile = true;
      int updates = 0;
      options.progress = [&updates](const ProgressUpdate& update) {
        ++updates;
        EXPECT_EQ(update.replications_total, kReplications);
      };
      ExperimentResult result = run_experiment(golden.make(), options);
      EXPECT_EQ(hash_result(result), case_hash(golden, 1))
          << golden.name << " @" << threads
          << " threads: profiling/progress perturbed the results";
      EXPECT_EQ(updates, kReplications) << golden.name << ": progress updates missed";
      const metrics::HistogramSample* run_phase =
          result.metrics.find_histogram("prof.phase.run_ms");
      ASSERT_NE(run_phase, nullptr) << golden.name << ": no profile data in merged metrics";
      EXPECT_EQ(run_phase->count, static_cast<std::uint64_t>(kReplications));
    }
  }
}

// The stats stream and shard-aware trace/profile are observation-only
// like tracing and profiling: a serial run streaming telemetry samples
// (which steps run_until instead of running uninterrupted) must match
// the pinned serial hashes at any thread count, and a sharded run with
// the full observability stack attached (--trace + --profile +
// --stats-stream) must still land on the pinned sharded hashes.
TEST(GoldenResults, PresetCurvesUnperturbedByStreamAndShardTrace) {
  for (const GoldenCase& golden : kCases) {
    for (int threads : {1, 4}) {
      std::ostringstream sink;
      obs::RunStream stream(sink);
      RunnerOptions options;
      options.replications = kReplications;
      options.master_seed = kMasterSeed;
      options.keep_replications = true;
      options.threads = threads;
      options.stats_stream = &stream;
      options.stats_period = SimTime::hours(6.0);
      std::uint64_t digest = hash_result(run_experiment(golden.make(), options));
      EXPECT_EQ(digest, case_hash(golden, 1))
          << golden.name << " @" << threads << " threads: the stats stream perturbed the results";
      EXPECT_GT(stream.samples_written(), 0u) << golden.name << ": stream stayed empty";
    }
  }

  for (const ShardedGoldenCase& sharded : kShardedCases) {
    const GoldenCase* golden = find_case(sharded.name);
    ASSERT_NE(golden, nullptr) << sharded.name;
    for (std::uint32_t shards : {2u, 4u}) {
      trace::TraceBuffer buffer;
      std::ostringstream sink;
      obs::RunStream stream(sink);
      RunnerOptions options;
      options.replications = kReplications;
      options.master_seed = kMasterSeed;
      options.keep_replications = true;
      options.threads = 1;
      options.shards = shards;
      options.shard_workers = 1;
      options.trace = &buffer;
      options.trace_replication = 1;
      options.profile = true;
      options.stats_stream = &stream;
      options.stats_period = SimTime::hours(6.0);
      std::uint64_t digest = hash_result(run_experiment(golden->make(), options));
      EXPECT_EQ(digest, shards == 2 ? sharded.expected_at_2 : sharded.expected_at_4)
          << sharded.name << " @" << shards
          << " shards: shard-aware observability perturbed the results";
      EXPECT_GT(buffer.events().size(), 0u) << sharded.name << ": merged shard trace was empty";
      EXPECT_GT(stream.samples_written(), 0u) << sharded.name << ": stream stayed empty";
    }
  }
}

// Manifests and the ledger are built strictly AFTER a run finishes, so
// attaching them must leave every preset's results bit-identical — the
// same pinned hashes as a bare run, serial (threads 1 and 4) and
// sharded (K = 2 and 4) alike — while the manifest's outcome block
// faithfully mirrors the result it was built from and every ledger
// line survives a read-back.
TEST(GoldenResults, PresetCurvesUnperturbedByManifest) {
  const std::string ledger_path = ::testing::TempDir() + "/mvsim_golden_ledger_" +
                                  std::to_string(static_cast<long long>(::getpid())) +
                                  ".ndjson";
  std::remove(ledger_path.c_str());
  std::size_t appended = 0;
  auto attach = [&](const ScenarioConfig& config, const ExperimentResult& result,
                    std::uint32_t shards) {
    ManifestInputs inputs;
    inputs.scenario_hash = obs::fnv1a_hex(json::stringify(config::to_json(config), 0));
    inputs.seed = kMasterSeed;
    inputs.shards = shards;
    obs::RunManifest manifest = build_run_manifest(config, inputs, result);
    EXPECT_EQ(manifest.scenario, config.name);
    EXPECT_EQ(manifest.replications, kReplications);
    EXPECT_DOUBLE_EQ(manifest.outcome.final_infected_mean, result.final_infections.mean());
    EXPECT_DOUBLE_EQ(manifest.outcome.patched_mean, result.patches_applied.mean());
    EXPECT_DOUBLE_EQ(manifest.outcome.messages_blocked_mean, result.messages_blocked.mean());
    EXPECT_EQ(manifest.outcome.total_events,
              result.metrics.counter_value("des.events_executed"));
    EXPECT_GE(manifest.outcome.peak_infected_mean, 0.0);
    ASSERT_TRUE(obs::append_to_ledger(ledger_path, manifest)) << config.name;
    ++appended;
  };

  for (const GoldenCase& golden : kCases) {
    for (int threads : {1, 4}) {
      ScenarioConfig config = golden.make();
      RunnerOptions options;
      options.replications = kReplications;
      options.master_seed = kMasterSeed;
      options.keep_replications = true;
      options.threads = threads;
      ExperimentResult result = run_experiment(config, options);
      EXPECT_EQ(hash_result(result), case_hash(golden, 1))
          << golden.name << " @" << threads << " threads: the manifest surface perturbed "
          << "the results";
      attach(config, result, 1);
    }
  }

  for (const ShardedGoldenCase& sharded : kShardedCases) {
    const GoldenCase* golden = find_case(sharded.name);
    ASSERT_NE(golden, nullptr) << sharded.name;
    for (std::uint32_t shards : {2u, 4u}) {
      ScenarioConfig config = golden->make();
      RunnerOptions options;
      options.replications = kReplications;
      options.master_seed = kMasterSeed;
      options.keep_replications = true;
      options.threads = 1;
      options.shards = shards;
      options.shard_workers = 1;
      ExperimentResult result = run_experiment(config, options);
      EXPECT_EQ(hash_result(result), shards == 2 ? sharded.expected_at_2 : sharded.expected_at_4)
          << sharded.name << " @" << shards << " shards: the manifest surface perturbed "
          << "the results";
      attach(config, result, shards);
    }
  }

  std::vector<obs::RunManifest> ledger = obs::read_ledger_file(ledger_path);
  EXPECT_EQ(ledger.size(), appended);
  for (const obs::RunManifest& manifest : ledger) {
    EXPECT_EQ(manifest.seed, std::to_string(kMasterSeed));
    EXPECT_EQ(manifest.scenario_hash.size(), 16u) << manifest.scenario;
  }
  std::remove(ledger_path.c_str());
}

}  // namespace
}  // namespace mvsim::core
