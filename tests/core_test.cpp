// Unit tests for src/core: scenario validation, presets, simulation
// wiring and the replication runner.
#include <gtest/gtest.h>

#include <sstream>

#include "core/presets.h"
#include "core/runner.h"
#include "core/scenario.h"
#include "core/simulation.h"
#include "trace/trace.h"

namespace mvsim::core {
namespace {

/// Small, fast scenario used across these tests.
ScenarioConfig small_scenario() {
  ScenarioConfig config;
  config.name = "test-small";
  config.population = 120;
  config.topology.mean_degree = 12.0;
  config.virus = virus::virus1();
  config.horizon = SimTime::hours(48.0);
  config.sample_step = SimTime::hours(1.0);
  return config;
}

TEST(ScenarioConfig, DefaultsMatchThePaper) {
  ScenarioConfig config;
  EXPECT_EQ(config.population, 1000u);
  EXPECT_DOUBLE_EQ(config.susceptible_fraction, 0.8);
  EXPECT_DOUBLE_EQ(config.topology.mean_degree, 80.0);
  EXPECT_DOUBLE_EQ(config.eventual_acceptance, 0.40);
  EXPECT_EQ(config.initial_infected, 1u);
  EXPECT_DOUBLE_EQ(config.expected_unrestrained_plateau(), 320.0);
  EXPECT_TRUE(config.validate().ok()) << config.validate().to_string();
}

TEST(ScenarioConfig, ValidationCatchesBadFields) {
  ScenarioConfig config = small_scenario();
  config.population = 1;
  EXPECT_FALSE(config.validate().ok());

  config = small_scenario();
  config.susceptible_fraction = 0.0;
  EXPECT_FALSE(config.validate().ok());

  config = small_scenario();
  config.initial_infected = 0;
  EXPECT_FALSE(config.validate().ok());

  config = small_scenario();
  config.initial_infected = 1000;  // > susceptible count
  EXPECT_FALSE(config.validate().ok());

  config = small_scenario();
  config.topology.mean_degree = 500.0;  // >= population
  EXPECT_FALSE(config.validate().ok());

  config = small_scenario();
  config.eventual_acceptance = 0.9;
  EXPECT_FALSE(config.validate().ok());

  config = small_scenario();
  config.sample_step = config.horizon + SimTime::hours(1.0);
  EXPECT_FALSE(config.validate().ok());

  config = small_scenario();
  config.read_delay_mean = SimTime::zero();
  EXPECT_FALSE(config.validate().ok());

  config = small_scenario();
  config.virus.recipients_per_message = 0;  // nested virus validation
  EXPECT_FALSE(config.validate().ok());
}

TEST(ScenarioConfig, EducationOverridesPlateauExpectation) {
  ScenarioConfig config;
  response::UserEducationConfig education;
  education.eventual_acceptance = 0.20;
  config.responses.user_education = education;
  EXPECT_DOUBLE_EQ(config.expected_unrestrained_plateau(), 160.0);
}

TEST(Presets, HorizonsFollowThePaper) {
  EXPECT_EQ(paper_horizon_for(virus::virus1()), SimTime::days(18.0));
  EXPECT_EQ(paper_horizon_for(virus::virus2()), SimTime::days(10.0));
  EXPECT_EQ(paper_horizon_for(virus::virus3()), SimTime::hours(25.0));
  EXPECT_EQ(paper_horizon_for(virus::virus4()), SimTime::days(18.0));
}

TEST(Presets, AllFigureScenariosValidate) {
  for (const auto& profile : virus::paper_virus_suite()) {
    EXPECT_TRUE(baseline_scenario(profile).validate().ok());
    EXPECT_TRUE(fig4_education_scenario(profile, 0.20).validate().ok());
  }
  EXPECT_TRUE(fig2_scan_scenario(SimTime::hours(6.0)).validate().ok());
  EXPECT_TRUE(fig3_detection_scenario(0.95).validate().ok());
  EXPECT_TRUE(fig5_immunization_scenario(SimTime::hours(24.0), SimTime::hours(1.0))
                  .validate()
                  .ok());
  EXPECT_TRUE(fig6_monitoring_scenario(SimTime::minutes(15.0)).validate().ok());
  EXPECT_TRUE(fig7_blacklist_scenario(10).validate().ok());
}

TEST(Presets, FigureScenariosEnableTheRightMechanism) {
  EXPECT_TRUE(fig2_scan_scenario(SimTime::hours(6.0)).responses.gateway_scan.has_value());
  EXPECT_TRUE(fig3_detection_scenario(0.9).responses.gateway_detection.has_value());
  EXPECT_TRUE(fig4_education_scenario(virus::virus1(), 0.2)
                  .responses.user_education.has_value());
  EXPECT_TRUE(fig5_immunization_scenario(SimTime::hours(24.0), SimTime::hours(6.0))
                  .responses.immunization.has_value());
  EXPECT_TRUE(fig6_monitoring_scenario(SimTime::minutes(30.0)).responses.monitoring.has_value());
  EXPECT_TRUE(fig7_blacklist_scenario(20).responses.blacklist.has_value());
  for (const auto& profile : virus::paper_virus_suite()) {
    EXPECT_EQ(baseline_scenario(profile).responses.enabled_count(), 0);
  }
}

TEST(Simulation, ConstructionBuildsPopulation) {
  Simulation sim(small_scenario(), 1);
  EXPECT_EQ(sim.contact_graph().node_count(), 120u);
  EXPECT_EQ(sim.susceptible_count(), 96u);  // 80% of 120
  EXPECT_EQ(sim.infected_count(), 0u) << "patient zero infects at t=0, not before";
}

TEST(Simulation, PatientZeroInfectsAtTimeZero) {
  Simulation sim(small_scenario(), 1);
  sim.run_until(SimTime::zero());
  EXPECT_EQ(sim.infected_count(), 1u);
}

TEST(Simulation, InfectionsGrowOverTime) {
  Simulation sim(small_scenario(), 2);
  sim.run_until(SimTime::hours(12.0));
  auto early = sim.infected_count();
  sim.run_until(SimTime::hours(48.0));
  auto late = sim.infected_count();
  EXPECT_GE(late, early);
  EXPECT_GT(late, 1u) << "Virus 1 spreads within two days";
}

TEST(Simulation, RunReturnsConsistentResult) {
  Simulation sim(small_scenario(), 3);
  ReplicationResult r = sim.run();
  EXPECT_EQ(r.total_infected, static_cast<std::uint64_t>(r.infections.final_value()));
  EXPECT_GE(r.gateway.messages_submitted, r.total_infected - 1)
      << "every infection after patient zero took at least one message";
  EXPECT_TRUE(r.detected_at.is_finite());
}

TEST(Simulation, RunTwiceThrows) {
  Simulation sim(small_scenario(), 4);
  (void)sim.run();
  EXPECT_THROW((void)sim.run(), std::logic_error);
}

TEST(Simulation, DeterministicGivenSeed) {
  ScenarioConfig config = small_scenario();
  Simulation a(config, 42), b(config, 42);
  ReplicationResult ra = a.run(), rb = b.run();
  EXPECT_EQ(ra.total_infected, rb.total_infected);
  EXPECT_EQ(ra.gateway.messages_submitted, rb.gateway.messages_submitted);
  ASSERT_EQ(ra.infections.points().size(), rb.infections.points().size());
  for (std::size_t i = 0; i < ra.infections.points().size(); ++i) {
    EXPECT_EQ(ra.infections.points()[i].time, rb.infections.points()[i].time);
  }
}

TEST(Simulation, DifferentSeedsDiffer) {
  ScenarioConfig config = small_scenario();
  ReplicationResult ra = Simulation(config, 1).run();
  ReplicationResult rb = Simulation(config, 2).run();
  // Messages submitted is a high-entropy statistic; equality would be
  // astronomically unlikely for independent runs.
  EXPECT_NE(ra.gateway.messages_submitted, rb.gateway.messages_submitted);
}

TEST(Simulation, InvalidConfigThrowsOnConstruction) {
  ScenarioConfig config = small_scenario();
  config.population = 0;
  EXPECT_THROW(Simulation(config, 1), std::invalid_argument);
}

TEST(Simulation, NonSusceptiblePhonesNeverInfected) {
  ScenarioConfig config = small_scenario();
  config.horizon = SimTime::days(6.0);
  Simulation sim(config, 7);
  (void)sim.run();
  const phone::PhoneTable& phones = sim.phones();
  for (graph::PhoneId id = 0; id < config.population; ++id) {
    if (!phones.susceptible(id)) {
      EXPECT_NE(phones.state(id), phone::HealthState::kInfected);
    }
  }
}

TEST(Simulation, InfectedCountMatchesPhoneStates) {
  ScenarioConfig config = small_scenario();
  Simulation sim(config, 8);
  sim.run_until(SimTime::hours(36.0));
  std::uint64_t infected = 0;
  for (graph::PhoneId id = 0; id < config.population; ++id) {
    infected += sim.phones().infected(id) ? 1u : 0u;
  }
  EXPECT_EQ(infected, sim.infected_count());
}

TEST(Simulation, ProximityChannelValidation) {
  ScenarioConfig config = small_scenario();
  ProximityChannelConfig proximity;
  proximity.grid_width = 0;
  config.proximity = proximity;
  EXPECT_FALSE(config.validate().ok());
  config.proximity = ProximityChannelConfig{};
  config.proximity->dwell_mean = SimTime::zero();
  EXPECT_FALSE(config.validate().ok());
  config.proximity = ProximityChannelConfig{};
  EXPECT_TRUE(config.validate().ok());
}

TEST(Simulation, DualVectorSpreadsWithoutGatewayTraffic) {
  // Cripple the MMS arm entirely (scan active from t=0 via threshold 1
  // and zero delay): a single-vector virus stalls, the dual-vector one
  // keeps spreading over Bluetooth, invisibly to the gateway.
  ScenarioConfig config = small_scenario();
  config.horizon = SimTime::days(5.0);
  response::GatewayScanConfig scan;
  scan.activation_delay = SimTime::zero();
  config.responses.gateway_scan = scan;
  config.responses.detectability_threshold = 1;

  Simulation mms_only(config, 31);
  ReplicationResult single = mms_only.run();
  EXPECT_LE(single.total_infected, 3u) << "scan from t=0 stalls the MMS-only virus";

  config.proximity = ProximityChannelConfig{};
  config.proximity->grid_width = 6;
  config.proximity->grid_height = 6;  // ~3 phones/cell at population 120
  Simulation dual(config, 31);
  ReplicationResult result = dual.run();
  EXPECT_GT(result.total_infected, 10u) << "Bluetooth keeps spreading";
  EXPECT_GT(result.bluetooth_push_attempts, 100u);
  // Everything the gateway saw was blocked (except the very first
  // message, which races the zero-delay activation event); the
  // infections happened essentially entirely off-network.
  EXPECT_LE(result.gateway.recipients_delivered, 1u);
}

TEST(Simulation, DualVectorDeterministicGivenSeed) {
  ScenarioConfig config = small_scenario();
  config.proximity = ProximityChannelConfig{};
  ReplicationResult a = Simulation(config, 99).run();
  ReplicationResult b = Simulation(config, 99).run();
  EXPECT_EQ(a.total_infected, b.total_infected);
  EXPECT_EQ(a.bluetooth_push_attempts, b.bluetooth_push_attempts);
}

TEST(Simulation, SingleVectorReportsNoBluetoothActivity) {
  Simulation sim(small_scenario(), 5);
  EXPECT_EQ(sim.run().bluetooth_push_attempts, 0u);
}

TEST(Simulation, PatchSilencesBothVectors) {
  ScenarioConfig config = small_scenario();
  config.horizon = SimTime::days(6.0);
  config.proximity = ProximityChannelConfig{};
  config.proximity->grid_width = 6;
  config.proximity->grid_height = 6;
  response::ImmunizationConfig immunization;
  immunization.development_time = SimTime::hours(6.0);
  immunization.deployment_duration = SimTime::hours(1.0);
  config.responses.immunization = immunization;

  ScenarioConfig baseline = config;
  baseline.responses.immunization.reset();

  RunnerOptions options;
  options.replications = 4;
  ExperimentResult patched = run_experiment(config, options);
  ExperimentResult unpatched = run_experiment(baseline, options);
  EXPECT_LT(patched.final_infections.mean(), 0.7 * unpatched.final_infections.mean())
      << "the handset patch stops Bluetooth dissemination too";
}


TEST(EventTrace, RecordsInfectionsPatchesAndDetection) {
  ScenarioConfig config = small_scenario();
  config.horizon = SimTime::days(4.0);
  response::ImmunizationConfig immunization;
  immunization.development_time = SimTime::hours(12.0);
  immunization.deployment_duration = SimTime::hours(2.0);
  config.responses.immunization = immunization;

  trace::TraceBuffer trace;
  Simulation sim(config, 17, &trace);
  ReplicationResult r = sim.run();

  EXPECT_EQ(trace.count(trace::EventKind::kInfection), r.total_infected);
  EXPECT_EQ(trace.count(trace::EventKind::kPatchApplied),
            r.immunized_healthy + r.patched_infected);
  EXPECT_EQ(trace.count(trace::EventKind::kDetectabilityCrossed), 1u);
  EXPECT_EQ(trace.count(trace::EventKind::kMessageSent),
            r.gateway.messages_submitted);
  EXPECT_EQ(trace.first_time(trace::EventKind::kInfection), SimTime::zero())
      << "patient zero at t=0";
  EXPECT_EQ(trace.first_time(trace::EventKind::kDetectabilityCrossed), r.detected_at);
  // The rollout window brackets every patch event.
  SimTime first_patch = trace.first_time(trace::EventKind::kPatchApplied);
  SimTime last_patch = trace.last_time(trace::EventKind::kPatchApplied);
  EXPECT_GE(first_patch, r.detected_at + SimTime::hours(12.0));
  EXPECT_LE(last_patch, r.detected_at + SimTime::hours(14.0) + SimTime::minutes(1.0));
  // The immunization mechanism marks its rollout in the trace.
  bool rollout_marked = false;
  for (const trace::Event& event : trace.events()) {
    if (event.kind == trace::EventKind::kMechanismAction &&
        event.detail == "immunization:rollout_started") {
      rollout_marked = true;
    }
  }
  EXPECT_TRUE(rollout_marked);
}

TEST(EventTrace, EventsAreTimeOrdered) {
  ScenarioConfig config = small_scenario();
  trace::TraceBuffer trace;
  Simulation sim(config, 18, &trace);
  (void)sim.run();
  SimTime last = SimTime::zero();
  for (const trace::Event& event : trace.events()) {
    ASSERT_GE(event.time, last);
    last = event.time;
  }
  EXPECT_GT(trace.events().size(), 1u);
}

TEST(EventTrace, InfectionsCarryProvenance) {
  ScenarioConfig config = small_scenario();
  trace::TraceBuffer trace;
  Simulation sim(config, 20, &trace);
  (void)sim.run();
  std::size_t seeds = 0;
  std::size_t with_infector = 0;
  for (const trace::Event& event : trace.events()) {
    if (event.kind != trace::EventKind::kInfection) continue;
    if (event.detail == "seed") {
      ++seeds;
      EXPECT_EQ(event.peer, trace::kInvalidPhoneId);
    } else {
      EXPECT_EQ(event.detail, "mms") << "no Bluetooth channel in this scenario";
      EXPECT_NE(event.peer, trace::kInvalidPhoneId) << "MMS infection must name its infector";
      EXPECT_NE(event.message, trace::kInvalidMessageId);
      ++with_infector;
    }
  }
  EXPECT_EQ(seeds, config.initial_infected);
  EXPECT_GT(with_infector, 0u);
}

TEST(EventTrace, NullTraceIsFine) {
  Simulation sim(small_scenario(), 19, nullptr);
  EXPECT_NO_THROW((void)sim.run());
}

TEST(Runner, AggregatesRequestedReplications) {
  RunnerOptions options;
  options.replications = 4;
  ExperimentResult result = run_experiment(small_scenario(), options);
  EXPECT_EQ(result.curve.replication_count(), 4u);
  EXPECT_EQ(result.final_infections.count(), 4u);
  EXPECT_EQ(result.replications.size(), 4u);
  EXPECT_GT(result.final_infections.mean(), 0.0);
}

TEST(Runner, KeepReplicationsOffSavesMemory) {
  RunnerOptions options;
  options.replications = 2;
  options.keep_replications = false;
  ExperimentResult result = run_experiment(small_scenario(), options);
  EXPECT_TRUE(result.replications.empty());
  EXPECT_EQ(result.curve.replication_count(), 2u);
}

TEST(Runner, DeterministicGivenMasterSeed) {
  RunnerOptions options;
  options.replications = 3;
  options.master_seed = 99;
  ExperimentResult a = run_experiment(small_scenario(), options);
  ExperimentResult b = run_experiment(small_scenario(), options);
  EXPECT_DOUBLE_EQ(a.final_infections.mean(), b.final_infections.mean());
  EXPECT_DOUBLE_EQ(a.messages_submitted.mean(), b.messages_submitted.mean());
}

TEST(Runner, ReplicationsAreIndependent) {
  RunnerOptions options;
  options.replications = 6;
  ExperimentResult result = run_experiment(small_scenario(), options);
  // If replications shared RNG state wrongly, totals would be equal.
  bool any_different = false;
  for (std::size_t i = 1; i < result.replications.size(); ++i) {
    if (result.replications[i].gateway.messages_submitted !=
        result.replications[0].gateway.messages_submitted) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(Runner, RejectsBadOptionsAndConfigs) {
  RunnerOptions options;
  options.replications = 0;
  EXPECT_THROW((void)run_experiment(small_scenario(), options), std::invalid_argument);
  ScenarioConfig bad = small_scenario();
  bad.population = 0;
  EXPECT_THROW((void)run_experiment(bad, RunnerOptions{}), std::invalid_argument);
}

TEST(Runner, ParallelExecutionIsBitIdentical) {
  ScenarioConfig config = small_scenario();
  RunnerOptions serial;
  serial.replications = 6;
  serial.master_seed = 777;
  serial.threads = 1;
  RunnerOptions parallel = serial;
  parallel.threads = 4;

  ExperimentResult a = run_experiment(config, serial);
  ExperimentResult b = run_experiment(config, parallel);
  EXPECT_DOUBLE_EQ(a.final_infections.mean(), b.final_infections.mean());
  EXPECT_DOUBLE_EQ(a.final_infections.variance(), b.final_infections.variance());
  EXPECT_DOUBLE_EQ(a.messages_submitted.mean(), b.messages_submitted.mean());
  ASSERT_EQ(a.replications.size(), b.replications.size());
  for (std::size_t i = 0; i < a.replications.size(); ++i) {
    EXPECT_EQ(a.replications[i].total_infected, b.replications[i].total_infected)
        << "replication " << i << " must not depend on scheduling";
    EXPECT_EQ(a.replications[i].gateway.messages_submitted,
              b.replications[i].gateway.messages_submitted);
  }
}

TEST(Runner, ThreadsZeroMeansHardwareConcurrency) {
  ScenarioConfig config = small_scenario();
  RunnerOptions options;
  options.replications = 3;
  options.threads = 0;
  EXPECT_NO_THROW((void)run_experiment(config, options));
  options.threads = -1;
  EXPECT_THROW((void)run_experiment(config, options), std::invalid_argument);
}

TEST(GraphCacheIntegration, CachedRunIsBitIdenticalToUncached) {
  // The determinism contract of graph::GraphCache at the Simulation
  // level: with or without a cache, same seed => same curve, same
  // metrics, same rng.draws.
  ScenarioConfig config = small_scenario();
  graph::GraphCache cache;
  Simulation plain(config, 42);
  Simulation cached(config, 42, nullptr, nullptr, des::QueueImpl::kWheel, &cache);
  ReplicationResult a = plain.run();
  ReplicationResult b = cached.run();
  EXPECT_EQ(a.total_infected, b.total_infected);
  EXPECT_EQ(a.gateway.messages_submitted, b.gateway.messages_submitted);
  EXPECT_EQ(a.metrics.counter_value("rng.draws"), b.metrics.counter_value("rng.draws"));
  EXPECT_EQ(a.metrics.counter_value("des.events_executed"),
            b.metrics.counter_value("des.events_executed"));
}

TEST(GraphCacheIntegration, SharedSeedSharesOneGraphAcrossReplications) {
  ScenarioConfig config = small_scenario();
  config.topology.shared_seed = 0xABCDEF;
  graph::GraphCache cache;
  Simulation first(config, 1, nullptr, nullptr, des::QueueImpl::kWheel, &cache);
  Simulation second(config, 2, nullptr, nullptr, des::QueueImpl::kWheel, &cache);
  EXPECT_EQ(&first.contact_graph(), &second.contact_graph())
      << "replications under shared_seed must reuse one graph build";
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(GraphCacheIntegration, DistinctSeedsBuildDistinctGraphs) {
  ScenarioConfig config = small_scenario();  // no shared_seed
  graph::GraphCache cache;
  Simulation first(config, 1, nullptr, nullptr, des::QueueImpl::kWheel, &cache);
  Simulation second(config, 2, nullptr, nullptr, des::QueueImpl::kWheel, &cache);
  EXPECT_NE(&first.contact_graph(), &second.contact_graph());
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(GraphCacheIntegration, PrewarmOnlyActsUnderSharedSeed) {
  graph::GraphCache cache;
  ScenarioConfig config = small_scenario();
  EXPECT_FALSE(prewarm_shared_graph(config, cache));
  EXPECT_EQ(cache.size(), 0u);
  config.topology.shared_seed = 7;
  EXPECT_TRUE(prewarm_shared_graph(config, cache));
  EXPECT_EQ(cache.size(), 1u);
  // A replication then hits the prewarmed entry.
  Simulation sim(config, 5, nullptr, nullptr, des::QueueImpl::kWheel, &cache);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(GraphCacheIntegration, SharedSeedExperimentMatchesSerialAndParallel) {
  // The runner creates its own cache under shared_seed; results must
  // stay thread-count-invariant and deterministic.
  ScenarioConfig config = small_scenario();
  config.topology.shared_seed = 99;
  RunnerOptions serial;
  serial.replications = 4;
  serial.master_seed = 31337;
  serial.threads = 1;
  RunnerOptions parallel = serial;
  parallel.threads = 4;
  ExperimentResult a = run_experiment(config, serial);
  ExperimentResult b = run_experiment(config, parallel);
  ASSERT_EQ(a.replications.size(), b.replications.size());
  for (std::size_t i = 0; i < a.replications.size(); ++i) {
    EXPECT_EQ(a.replications[i].total_infected, b.replications[i].total_infected);
  }
}

TEST(Runner, BuildPhaseReportedSeparatelyUnderSharedSeed) {
  ScenarioConfig config = small_scenario();
  config.topology.shared_seed = 5;
  RunnerOptions options;
  options.replications = 2;
  int build_updates = 0;
  int rep_updates = 0;
  options.progress = [&](const ProgressUpdate& update) {
    if (update.build_phase) {
      ++build_updates;
      EXPECT_EQ(update.replications_done, 0);
      EXPECT_GE(update.build_seconds, 0.0);
    } else {
      ++rep_updates;
      EXPECT_GE(update.build_seconds, 0.0) << "build time stays visible on later updates";
    }
  };
  (void)run_experiment(config, options);
  EXPECT_EQ(build_updates, 1) << "exactly one build-phase update";
  EXPECT_EQ(rep_updates, 2);
}

TEST(Runner, EnvOverrideParsing) {
  // No env var set in the test environment: falls back.
  unsetenv("MVSIM_REPS");
  EXPECT_EQ(replications_from_env(7), 7);
  setenv("MVSIM_REPS", "12", 1);
  EXPECT_EQ(replications_from_env(7), 12);
  setenv("MVSIM_REPS", "0", 1);
  EXPECT_EQ(replications_from_env(7), 1) << "clamped to >= 1";
  setenv("MVSIM_REPS", "garbage", 1);
  EXPECT_EQ(replications_from_env(7), 7);
  setenv("MVSIM_REPS", "12x", 1);
  EXPECT_EQ(replications_from_env(7), 7);
  unsetenv("MVSIM_REPS");
}

}  // namespace
}  // namespace mvsim::core
