// Unit tests for src/net: message helpers and the Gateway's
// observer/filter/delivery semantics.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "des/scheduler.h"
#include "net/gateway.h"
#include "net/message.h"
#include "rng/stream.h"

namespace mvsim::net {
namespace {

MmsMessage infected_message(PhoneId sender, std::vector<DialedRecipient> recipients) {
  MmsMessage m;
  m.sender = sender;
  m.recipients = std::move(recipients);
  m.infected = true;
  return m;
}

TEST(MmsMessage, ValidRecipientCount) {
  MmsMessage m;
  m.recipients = {{1, true}, {0, false}, {2, true}, {0, false}};
  EXPECT_EQ(m.valid_recipient_count(), 2u);
  EXPECT_EQ(MmsMessage{}.valid_recipient_count(), 0u);
}

class RecordingObserver final : public GatewayObserver {
 public:
  void on_submitted(const MmsMessage& message, SimTime) override {
    submitted.push_back(message.sequence);
  }
  void on_blocked(const MmsMessage& message, const char* blocked_by, SimTime) override {
    blocked.push_back(message.sequence);
    blocked_by_names.emplace_back(blocked_by);
  }
  std::vector<std::uint64_t> submitted;
  std::vector<std::uint64_t> blocked;
  std::vector<std::string> blocked_by_names;
};

class BlockInfectedFilter final : public DeliveryFilter {
 public:
  Decision inspect(const MmsMessage& message, SimTime) override {
    ++inspected;
    return message.infected ? Decision::kBlock : Decision::kDeliver;
  }
  const char* name() const override { return "block-infected"; }
  int inspected = 0;
};

class AllowAllFilter final : public DeliveryFilter {
 public:
  Decision inspect(const MmsMessage&, SimTime) override {
    ++inspected;
    return Decision::kDeliver;
  }
  const char* name() const override { return "allow-all"; }
  int inspected = 0;
};

struct GatewayFixture {
  des::Scheduler scheduler;
  rng::Stream stream{77};
  Gateway gateway{scheduler, stream, SimTime::minutes(1.0)};
  std::vector<std::pair<PhoneId, std::uint64_t>> delivered;

  GatewayFixture() {
    gateway.set_delivery_callback([this](PhoneId recipient, const MmsMessage& message) {
      delivered.emplace_back(recipient, message.sequence);
    });
  }
};

TEST(Gateway, AssignsMonotoneSequenceNumbers) {
  GatewayFixture fx;
  RecordingObserver obs;
  fx.gateway.add_observer(obs);
  fx.gateway.submit(infected_message(0, {{1, true}}));
  fx.gateway.submit(infected_message(0, {{2, true}}));
  fx.gateway.submit(infected_message(0, {{3, true}}));
  ASSERT_EQ(obs.submitted.size(), 3u);
  EXPECT_EQ(obs.submitted, (std::vector<std::uint64_t>{0, 1, 2}));
}

TEST(Gateway, DeliversToAllValidRecipientsAfterDelay) {
  GatewayFixture fx;
  fx.gateway.submit(infected_message(0, {{1, true}, {2, true}, {9, false}}));
  EXPECT_TRUE(fx.delivered.empty()) << "delivery is asynchronous";
  fx.scheduler.run_to_quiescence();
  ASSERT_EQ(fx.delivered.size(), 2u);
  EXPECT_EQ(fx.delivered[0].first, 1u);
  EXPECT_EQ(fx.delivered[1].first, 2u);
  EXPECT_GT(fx.scheduler.now(), SimTime::zero()) << "transit took nonzero time";
}

TEST(Gateway, CountersTrackSubmissionsAndDeliveries) {
  GatewayFixture fx;
  fx.gateway.submit(infected_message(0, {{1, true}, {9, false}}));
  MmsMessage clean;
  clean.sender = 1;
  clean.recipients = {{2, true}};
  clean.infected = false;
  fx.gateway.submit(std::move(clean));
  fx.scheduler.run_to_quiescence();
  const GatewayCounters& c = fx.gateway.counters();
  EXPECT_EQ(c.messages_submitted, 2u);
  EXPECT_EQ(c.infected_messages_submitted, 1u);
  EXPECT_EQ(c.messages_blocked, 0u);
  EXPECT_EQ(c.recipients_delivered, 2u);
  EXPECT_EQ(c.invalid_recipients_dropped, 1u);
}

TEST(Gateway, FilterBlocksAndObserversSeeIt) {
  GatewayFixture fx;
  RecordingObserver obs;
  BlockInfectedFilter filter;
  fx.gateway.add_observer(obs);
  fx.gateway.add_filter(filter);
  fx.gateway.submit(infected_message(0, {{1, true}}));
  fx.scheduler.run_to_quiescence();
  EXPECT_TRUE(fx.delivered.empty());
  EXPECT_EQ(obs.submitted.size(), 1u) << "observers see the submission before filtering";
  EXPECT_EQ(obs.blocked.size(), 1u);
  ASSERT_EQ(obs.blocked_by_names.size(), 1u);
  EXPECT_EQ(obs.blocked_by_names[0], "block-infected")
      << "on_blocked must name the filter that blocked";
  EXPECT_EQ(fx.gateway.counters().messages_blocked, 1u);
}

TEST(Gateway, FilterChainStopsAtFirstBlock) {
  GatewayFixture fx;
  BlockInfectedFilter first;
  AllowAllFilter second;
  fx.gateway.add_filter(first);
  fx.gateway.add_filter(second);
  fx.gateway.submit(infected_message(0, {{1, true}}));
  EXPECT_EQ(first.inspected, 1);
  EXPECT_EQ(second.inspected, 0) << "later filters must not run after a block";
}

TEST(Gateway, CleanMessagePassesBlockInfectedFilter) {
  GatewayFixture fx;
  BlockInfectedFilter filter;
  fx.gateway.add_filter(filter);
  MmsMessage clean;
  clean.sender = 0;
  clean.recipients = {{1, true}};
  fx.gateway.submit(std::move(clean));
  fx.scheduler.run_to_quiescence();
  EXPECT_EQ(fx.delivered.size(), 1u);
}

TEST(Gateway, AllInvalidRecipientsMeansNoDeliveryEvent) {
  GatewayFixture fx;
  fx.gateway.submit(infected_message(0, {{0, false}, {0, false}}));
  fx.scheduler.run_to_quiescence();
  EXPECT_TRUE(fx.delivered.empty());
  EXPECT_EQ(fx.gateway.counters().invalid_recipients_dropped, 2u);
  EXPECT_EQ(fx.gateway.counters().messages_submitted, 1u);
}

TEST(Gateway, NoCallbackIsTolerated) {
  des::Scheduler scheduler;
  rng::Stream stream(5);
  Gateway gateway(scheduler, stream, SimTime::minutes(1.0));
  gateway.submit(infected_message(0, {{1, true}}));
  scheduler.run_to_quiescence();
  EXPECT_EQ(gateway.counters().messages_submitted, 1u);
}

TEST(Gateway, RejectsNonPositiveDelay) {
  des::Scheduler scheduler;
  rng::Stream stream(6);
  EXPECT_THROW(Gateway(scheduler, stream, SimTime::zero()), std::invalid_argument);
}

TEST(Gateway, ManyMessagesAllDeliveredOnce) {
  GatewayFixture fx;
  for (PhoneId i = 0; i < 100; ++i) {
    fx.gateway.submit(infected_message(0, {{i + 1, true}}));
  }
  fx.scheduler.run_to_quiescence();
  EXPECT_EQ(fx.delivered.size(), 100u);
  EXPECT_EQ(fx.gateway.counters().recipients_delivered, 100u);
}

}  // namespace
}  // namespace mvsim::net
