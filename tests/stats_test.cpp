// Unit tests for src/stats: time series, aggregation, summaries.
#include <gtest/gtest.h>

#include <sstream>

#include "stats/aggregate.h"
#include "stats/quantiles.h"
#include "stats/summary.h"
#include "stats/time_series.h"

namespace mvsim::stats {
namespace {

TEST(TimeSeries, EmptySeriesReturnsInitialValue) {
  TimeSeries s(3.0);
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.at(SimTime::zero()), 3.0);
  EXPECT_DOUBLE_EQ(s.at(SimTime::hours(100.0)), 3.0);
  EXPECT_DOUBLE_EQ(s.final_value(), 3.0);
  EXPECT_DOUBLE_EQ(s.max_value(), 3.0);
}

TEST(TimeSeries, StepSemantics) {
  TimeSeries s;
  s.push(SimTime::minutes(10.0), 1.0);
  s.push(SimTime::minutes(20.0), 2.0);
  EXPECT_DOUBLE_EQ(s.at(SimTime::minutes(9.9)), 0.0);
  EXPECT_DOUBLE_EQ(s.at(SimTime::minutes(10.0)), 1.0);  // right-continuous
  EXPECT_DOUBLE_EQ(s.at(SimTime::minutes(15.0)), 1.0);
  EXPECT_DOUBLE_EQ(s.at(SimTime::minutes(20.0)), 2.0);
  EXPECT_DOUBLE_EQ(s.at(SimTime::minutes(99.0)), 2.0);
}

TEST(TimeSeries, EqualTimePushOverwrites) {
  TimeSeries s;
  s.push(SimTime::minutes(5.0), 1.0);
  s.push(SimTime::minutes(5.0), 2.0);
  EXPECT_EQ(s.points().size(), 1u);
  EXPECT_DOUBLE_EQ(s.at(SimTime::minutes(5.0)), 2.0);
}

TEST(TimeSeries, RejectsTimeTravel) {
  TimeSeries s;
  s.push(SimTime::minutes(10.0), 1.0);
  EXPECT_THROW(s.push(SimTime::minutes(9.0), 2.0), std::invalid_argument);
}

TEST(TimeSeries, ResampleOnUniformGrid) {
  TimeSeries s;
  s.push(SimTime::minutes(25.0), 10.0);
  auto grid = s.resample(SimTime::minutes(10.0), SimTime::minutes(50.0));
  ASSERT_EQ(grid.size(), 6u);
  EXPECT_DOUBLE_EQ(grid[0].value, 0.0);   // t=0
  EXPECT_DOUBLE_EQ(grid[2].value, 0.0);   // t=20
  EXPECT_DOUBLE_EQ(grid[3].value, 10.0);  // t=30
  EXPECT_DOUBLE_EQ(grid[5].value, 10.0);  // t=50
  EXPECT_EQ(grid[5].time, SimTime::minutes(50.0));
}

TEST(TimeSeries, ResampleHorizonNotMultipleOfStep) {
  TimeSeries s;
  auto grid = s.resample(SimTime::minutes(7.0), SimTime::minutes(20.0));
  // 0, 7, 14 — 21 exceeds the horizon.
  ASSERT_EQ(grid.size(), 3u);
  EXPECT_EQ(grid.back().time, SimTime::minutes(14.0));
}

TEST(TimeSeries, ResampleValidatesArguments) {
  TimeSeries s;
  EXPECT_THROW((void)s.resample(SimTime::zero(), SimTime::hours(1.0)), std::invalid_argument);
  EXPECT_THROW((void)s.resample(SimTime::minutes(1.0), SimTime::minutes(-5.0)),
               std::invalid_argument);
}

TEST(TimeSeries, MaxAndFirstCrossing) {
  TimeSeries s;
  s.push(SimTime::minutes(10.0), 5.0);
  s.push(SimTime::minutes(20.0), 3.0);
  s.push(SimTime::minutes(30.0), 8.0);
  EXPECT_DOUBLE_EQ(s.max_value(), 8.0);
  EXPECT_EQ(s.first_time_at_or_above(4.0), SimTime::minutes(10.0));
  EXPECT_EQ(s.first_time_at_or_above(8.0), SimTime::minutes(30.0));
  EXPECT_EQ(s.first_time_at_or_above(9.0), SimTime::infinity());
  EXPECT_EQ(TimeSeries(5.0).first_time_at_or_above(4.0), SimTime::zero());
}

TEST(Accumulator, MeanVarianceMinMax) {
  Accumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(v);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.variance(), 4.571428, 1e-5);  // sample variance
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_GT(acc.ci95_half_width(), 0.0);
}

TEST(Accumulator, SingleSampleHasZeroSpread) {
  Accumulator acc;
  acc.add(3.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.ci95_half_width(), 0.0);
}

TEST(AggregatedSeries, MeanOfTwoReplications) {
  AggregatedSeries agg(SimTime::minutes(10.0), SimTime::minutes(30.0));
  TimeSeries a;
  a.push(SimTime::minutes(5.0), 10.0);
  TimeSeries b;
  b.push(SimTime::minutes(15.0), 20.0);
  agg.add_replication(a);
  agg.add_replication(b);
  EXPECT_EQ(agg.replication_count(), 2u);
  auto grid = agg.grid();
  ASSERT_EQ(grid.size(), 4u);
  EXPECT_DOUBLE_EQ(grid[0].mean, 0.0);           // t=0: 0, 0
  EXPECT_DOUBLE_EQ(grid[1].mean, 5.0);           // t=10: 10, 0
  EXPECT_DOUBLE_EQ(grid[2].mean, 15.0);          // t=20: 10, 20
  EXPECT_DOUBLE_EQ(grid[3].mean, 15.0);          // t=30
  EXPECT_DOUBLE_EQ(agg.final_mean(), 15.0);
  EXPECT_DOUBLE_EQ(grid[2].min, 10.0);
  EXPECT_DOUBLE_EQ(grid[2].max, 20.0);
}

TEST(AggregatedSeries, MeanAtRoundsToNearestCell) {
  AggregatedSeries agg(SimTime::minutes(10.0), SimTime::minutes(30.0));
  TimeSeries a;
  a.push(SimTime::minutes(10.0), 4.0);
  agg.add_replication(a);
  EXPECT_DOUBLE_EQ(agg.mean_at(SimTime::minutes(12.0)), 4.0);
  EXPECT_DOUBLE_EQ(agg.mean_at(SimTime::minutes(4.0)), 0.0);
  EXPECT_DOUBLE_EQ(agg.mean_at(SimTime::hours(99.0)), 4.0);  // clamps to last
}

TEST(AggregatedSeries, FirstTimeAtOrAbove) {
  AggregatedSeries agg(SimTime::minutes(10.0), SimTime::minutes(40.0));
  TimeSeries a;
  a.push(SimTime::minutes(20.0), 10.0);
  agg.add_replication(a);
  EXPECT_EQ(agg.mean_first_time_at_or_above(5.0), SimTime::minutes(20.0));
  EXPECT_EQ(agg.mean_first_time_at_or_above(11.0), SimTime::infinity());
}

TEST(AggregatedSeries, ValidatesConstruction) {
  EXPECT_THROW(AggregatedSeries(SimTime::zero(), SimTime::hours(1.0)), std::invalid_argument);
  EXPECT_THROW(AggregatedSeries(SimTime::minutes(1.0), SimTime::minutes(-1.0)),
               std::invalid_argument);
}

TEST(PrintFigureTable, EmitsHoursAndCurves) {
  AggregatedSeries base(SimTime::hours(1.0), SimTime::hours(2.0));
  TimeSeries a;
  a.push(SimTime::hours(1.0), 5.0);
  base.add_replication(a);
  AggregatedSeries other(SimTime::hours(1.0), SimTime::hours(2.0));
  other.add_replication(TimeSeries{});

  std::ostringstream out;
  print_figure_table(out, "Test Figure", {{"Baseline", &base}, {"Other", &other}},
                     SimTime::hours(1.0));
  std::string text = out.str();
  EXPECT_NE(text.find("== Test Figure =="), std::string::npos);
  EXPECT_NE(text.find("Hours,Baseline,Other"), std::string::npos);
  EXPECT_NE(text.find("1.0,5.0,0.0"), std::string::npos);
}

TEST(PrintFigureTable, RejectsMismatchedGrids) {
  AggregatedSeries a(SimTime::hours(1.0), SimTime::hours(2.0));
  AggregatedSeries b(SimTime::hours(1.0), SimTime::hours(3.0));
  std::ostringstream out;
  EXPECT_THROW(print_figure_table(out, "x", {{"a", &a}, {"b", &b}}, SimTime::hours(1.0)),
               std::invalid_argument);
  EXPECT_THROW(print_figure_table(out, "x", {}, SimTime::hours(1.0)), std::invalid_argument);
}

TEST(PrintCurveSummaries, MentionsEachCurve) {
  AggregatedSeries base(SimTime::hours(1.0), SimTime::hours(4.0));
  TimeSeries a;
  a.push(SimTime::hours(1.0), 2.0);
  a.push(SimTime::hours(3.0), 10.0);
  base.add_replication(a);
  std::ostringstream out;
  print_curve_summaries(out, {{"MyCurve", &base}});
  EXPECT_NE(out.str().find("MyCurve"), std::string::npos);
  EXPECT_NE(out.str().find("final=10.0"), std::string::npos);
}

TEST(FinalLevelRatio, ComputesAndHandlesZeroBaseline) {
  AggregatedSeries base(SimTime::hours(1.0), SimTime::hours(1.0));
  TimeSeries a;
  a.push(SimTime::hours(0.5), 100.0);
  base.add_replication(a);
  AggregatedSeries quarter(SimTime::hours(1.0), SimTime::hours(1.0));
  TimeSeries b;
  b.push(SimTime::hours(0.5), 25.0);
  quarter.add_replication(b);
  EXPECT_DOUBLE_EQ(final_level_ratio(quarter, base), 0.25);

  AggregatedSeries zero(SimTime::hours(1.0), SimTime::hours(1.0));
  zero.add_replication(TimeSeries{});
  EXPECT_DOUBLE_EQ(final_level_ratio(base, zero), 0.0);
}


TEST(QuantileSeries, MedianAndBandsOfKnownReplications) {
  QuantileSeries q(SimTime::minutes(10.0), SimTime::minutes(20.0));
  for (double level : {10.0, 20.0, 30.0, 40.0, 50.0}) {
    TimeSeries s;
    s.push(SimTime::minutes(5.0), level);
    q.add_replication(s);
  }
  EXPECT_EQ(q.replication_count(), 5u);
  EXPECT_DOUBLE_EQ(q.quantile_at(SimTime::minutes(10.0), 0.5), 30.0);
  EXPECT_DOUBLE_EQ(q.quantile_at(SimTime::minutes(10.0), 0.0), 10.0);
  EXPECT_DOUBLE_EQ(q.quantile_at(SimTime::minutes(10.0), 1.0), 50.0);
  EXPECT_DOUBLE_EQ(q.quantile_at(SimTime::minutes(10.0), 0.25), 20.0);
  EXPECT_DOUBLE_EQ(q.quantile_at(SimTime::zero(), 0.5), 0.0) << "before the step";
}

TEST(QuantileSeries, InterpolatesBetweenOrderStatistics) {
  QuantileSeries q(SimTime::minutes(10.0), SimTime::minutes(10.0));
  for (double level : {0.0, 100.0}) {
    TimeSeries s;
    s.push(SimTime::minutes(1.0), level);
    q.add_replication(s);
  }
  EXPECT_DOUBLE_EQ(q.quantile_at(SimTime::minutes(10.0), 0.5), 50.0);
  EXPECT_DOUBLE_EQ(q.quantile_at(SimTime::minutes(10.0), 0.75), 75.0);
}

TEST(QuantileSeries, BandCoversGridAndIsOrdered) {
  QuantileSeries q(SimTime::minutes(10.0), SimTime::minutes(30.0));
  for (int rep = 0; rep < 9; ++rep) {
    TimeSeries s;
    s.push(SimTime::minutes(5.0 + rep), 10.0 * rep);
    q.add_replication(s);
  }
  auto band = q.band(0.1, 0.9);
  ASSERT_EQ(band.size(), 4u);
  for (const auto& point : band) {
    EXPECT_LE(point.lower, point.median);
    EXPECT_LE(point.median, point.upper);
  }
  EXPECT_EQ(band.front().time, SimTime::zero());
  EXPECT_EQ(band.back().time, SimTime::minutes(30.0));
  auto median = q.median_curve();
  ASSERT_EQ(median.size(), 4u);
  EXPECT_DOUBLE_EQ(median[3].value, band[3].median);
}

TEST(QuantileSeries, FractionAtOrBelow) {
  QuantileSeries q(SimTime::minutes(10.0), SimTime::minutes(10.0));
  for (double level : {10.0, 20.0, 30.0, 40.0}) {
    TimeSeries s;
    s.push(SimTime::minutes(1.0), level);
    q.add_replication(s);
  }
  EXPECT_DOUBLE_EQ(q.fraction_at_or_below(SimTime::minutes(10.0), 20.0), 0.5);
  EXPECT_DOUBLE_EQ(q.fraction_at_or_below(SimTime::minutes(10.0), 5.0), 0.0);
  EXPECT_DOUBLE_EQ(q.fraction_at_or_below(SimTime::minutes(10.0), 100.0), 1.0);
}

TEST(QuantileSeries, Validation) {
  EXPECT_THROW(QuantileSeries(SimTime::zero(), SimTime::hours(1.0)), std::invalid_argument);
  QuantileSeries q(SimTime::minutes(10.0), SimTime::minutes(10.0));
  EXPECT_THROW((void)q.quantile_at(SimTime::zero(), 0.5), std::logic_error) << "no reps yet";
  TimeSeries s;
  q.add_replication(s);
  EXPECT_THROW((void)q.quantile_at(SimTime::zero(), 1.5), std::invalid_argument);
  EXPECT_THROW((void)q.band(0.9, 0.1), std::invalid_argument);
}

}  // namespace
}  // namespace mvsim::stats
