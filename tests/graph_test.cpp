// Unit tests for src/graph: ContactGraph invariants, generators,
// stats, NGCE-style serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/contact_graph.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"
#include "graph/serialization.h"
#include "rng/stream.h"

namespace mvsim::graph {
namespace {

ContactGraph triangle() {
  std::vector<ContactGraph::Edge> edges{{0, 1}, {1, 2}, {2, 0}};
  return ContactGraph(3, edges);
}

TEST(ContactGraph, EmptyGraphHasNoEdges) {
  ContactGraph g(5);
  EXPECT_EQ(g.node_count(), 5u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_TRUE(g.contacts(0).empty());
  EXPECT_DOUBLE_EQ(g.average_degree(), 0.0);
}

TEST(ContactGraph, AdjacencyIsReciprocal) {
  ContactGraph g = triangle();
  for (PhoneId a = 0; a < 3; ++a) {
    for (PhoneId b : g.contacts(a)) {
      EXPECT_TRUE(g.connected(b, a)) << a << "<->" << b;
    }
  }
}

TEST(ContactGraph, ContactsAreSorted) {
  std::vector<ContactGraph::Edge> edges{{0, 3}, {0, 1}, {0, 2}};
  ContactGraph g(4, edges);
  auto list = g.contacts(0);
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0], 1u);
  EXPECT_EQ(list[1], 2u);
  EXPECT_EQ(list[2], 3u);
}

TEST(ContactGraph, ConnectedQueries) {
  ContactGraph g = triangle();
  EXPECT_TRUE(g.connected(0, 1));
  EXPECT_FALSE(ContactGraph(3, std::vector<ContactGraph::Edge>{{0, 1}}).connected(0, 2));
}

TEST(ContactGraph, RejectsSelfLoops) {
  std::vector<ContactGraph::Edge> edges{{1, 1}};
  EXPECT_THROW(ContactGraph(3, edges), std::invalid_argument);
}

TEST(ContactGraph, RejectsDuplicateEdgesEitherOrientation) {
  std::vector<ContactGraph::Edge> dup1{{0, 1}, {0, 1}};
  EXPECT_THROW(ContactGraph(3, dup1), std::invalid_argument);
  std::vector<ContactGraph::Edge> dup2{{0, 1}, {1, 0}};
  EXPECT_THROW(ContactGraph(3, dup2), std::invalid_argument);
}

TEST(ContactGraph, RejectsOutOfRangeEndpoints) {
  std::vector<ContactGraph::Edge> edges{{0, 3}};
  EXPECT_THROW(ContactGraph(3, edges), std::invalid_argument);
}

TEST(ContactGraph, OutOfRangeQueriesThrow) {
  ContactGraph g = triangle();
  EXPECT_THROW((void)g.contacts(3), std::out_of_range);
  EXPECT_THROW((void)g.degree(7), std::out_of_range);
  EXPECT_THROW((void)g.connected(0, 9), std::out_of_range);
}

TEST(ContactGraph, AverageDegreeCountsBothEndpoints) {
  ContactGraph g = triangle();
  EXPECT_DOUBLE_EQ(g.average_degree(), 2.0);
}

TEST(PowerLawGenerator, HitsTargetMeanDegree) {
  rng::Stream stream(31);
  PowerLawConfig config;
  config.node_count = 1000;
  config.target_mean_degree = 80.0;
  ContactGraph g = generate_power_law(config, stream);
  EXPECT_EQ(g.node_count(), 1000u);
  EXPECT_NEAR(g.average_degree(), 80.0, 80.0 * 0.05);
}

TEST(PowerLawGenerator, ProducesHeavyTail) {
  rng::Stream stream(32);
  PowerLawConfig config;
  config.node_count = 1000;
  config.target_mean_degree = 80.0;
  ContactGraph g = generate_power_law(config, stream);
  DegreeStats stats = degree_stats(g);
  // A heavy-tailed degree sequence has stddev comparable to the mean
  // and a max far above it (an ER graph would have stddev ~ sqrt(80)).
  EXPECT_GT(stats.stddev, 40.0);
  EXPECT_GT(static_cast<double>(stats.max), 2.5 * stats.mean);
}

TEST(PowerLawGenerator, GraphIsSimpleAndReciprocal) {
  rng::Stream stream(33);
  PowerLawConfig config;
  config.node_count = 500;
  config.target_mean_degree = 40.0;
  ContactGraph g = generate_power_law(config, stream);
  // ContactGraph's constructor enforces simplicity; verify reciprocity.
  for (PhoneId p = 0; p < g.node_count(); ++p) {
    for (PhoneId q : g.contacts(p)) {
      ASSERT_TRUE(g.connected(q, p));
      ASSERT_NE(q, p);
    }
  }
}

TEST(PowerLawGenerator, DeterministicGivenSeed) {
  PowerLawConfig config;
  config.node_count = 300;
  config.target_mean_degree = 20.0;
  rng::Stream s1(44), s2(44);
  ContactGraph a = generate_power_law(config, s1);
  ContactGraph b = generate_power_law(config, s2);
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (PhoneId p = 0; p < a.node_count(); ++p) {
    auto la = a.contacts(p);
    auto lb = b.contacts(p);
    ASSERT_EQ(std::vector<PhoneId>(la.begin(), la.end()),
              std::vector<PhoneId>(lb.begin(), lb.end()));
  }
}

TEST(PowerLawGenerator, ValidatesConfig) {
  rng::Stream stream(35);
  PowerLawConfig bad;
  bad.node_count = 1;
  EXPECT_THROW((void)generate_power_law(bad, stream), std::invalid_argument);
  bad = PowerLawConfig{};
  bad.target_mean_degree = 0.0;
  EXPECT_THROW((void)generate_power_law(bad, stream), std::invalid_argument);
  bad = PowerLawConfig{};
  bad.alpha = -1.0;
  EXPECT_THROW((void)generate_power_law(bad, stream), std::invalid_argument);
  bad = PowerLawConfig{};
  bad.min_degree = 0;
  EXPECT_THROW((void)generate_power_law(bad, stream), std::invalid_argument);
  bad = PowerLawConfig{};
  bad.max_degree = 2000;  // >= node_count
  EXPECT_THROW((void)generate_power_law(bad, stream), std::invalid_argument);
}

TEST(ErdosRenyi, HitsTargetMeanDegree) {
  rng::Stream stream(36);
  ContactGraph g = generate_erdos_renyi(1000, 80.0, stream);
  EXPECT_NEAR(g.average_degree(), 80.0, 80.0 * 0.05);
}

TEST(ErdosRenyi, DegreeSpreadIsNarrow) {
  rng::Stream stream(37);
  ContactGraph g = generate_erdos_renyi(1000, 80.0, stream);
  DegreeStats stats = degree_stats(g);
  // Binomial degrees: stddev ~ sqrt(80) ~ 9.
  EXPECT_LT(stats.stddev, 15.0);
}

TEST(ErdosRenyi, SparseGraphIsPossible) {
  rng::Stream stream(38);
  ContactGraph g = generate_erdos_renyi(200, 2.0, stream);
  EXPECT_NEAR(g.average_degree(), 2.0, 1.0);
}

TEST(ErdosRenyi, RejectsBadParameters) {
  rng::Stream stream(39);
  EXPECT_THROW((void)generate_erdos_renyi(1, 1.0, stream), std::invalid_argument);
  EXPECT_THROW((void)generate_erdos_renyi(100, 0.0, stream), std::invalid_argument);
  EXPECT_THROW((void)generate_erdos_renyi(100, 100.0, stream), std::invalid_argument);
}

TEST(RegularRing, EveryPhoneHasExactlyK) {
  ContactGraph g = generate_regular_ring(100, 6);
  for (PhoneId p = 0; p < 100; ++p) EXPECT_EQ(g.degree(p), 6u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 6.0);
}

TEST(RegularRing, NeighboursAreLocal) {
  ContactGraph g = generate_regular_ring(100, 4);
  EXPECT_TRUE(g.connected(0, 1));
  EXPECT_TRUE(g.connected(0, 2));
  EXPECT_TRUE(g.connected(0, 98));
  EXPECT_FALSE(g.connected(0, 50));
}

TEST(RegularRing, RejectsBadParameters) {
  EXPECT_THROW((void)generate_regular_ring(2, 2), std::invalid_argument);
  EXPECT_THROW((void)generate_regular_ring(10, 3), std::invalid_argument);
  EXPECT_THROW((void)generate_regular_ring(10, 10), std::invalid_argument);
}


TEST(BarabasiAlbert, MeanDegreeNearTwiceM) {
  rng::Stream stream(50);
  ContactGraph g = generate_barabasi_albert(1000, 40, stream);
  EXPECT_EQ(g.node_count(), 1000u);
  EXPECT_NEAR(g.average_degree(), 80.0, 80.0 * 0.08);
}

TEST(BarabasiAlbert, ProducesHubsAndIsConnected) {
  rng::Stream stream(51);
  ContactGraph g = generate_barabasi_albert(1000, 10, stream);
  DegreeStats stats = degree_stats(g);
  EXPECT_GE(stats.min, 10u) << "every arrival brings m edges";
  EXPECT_GT(static_cast<double>(stats.max), 5.0 * stats.mean) << "preferential hubs";
  ComponentStats components = component_stats(g);
  EXPECT_EQ(components.component_count, 1u) << "attachment keeps the graph connected";
}

TEST(BarabasiAlbert, GraphIsSimpleAndReciprocal) {
  rng::Stream stream(52);
  ContactGraph g = generate_barabasi_albert(400, 6, stream);
  for (PhoneId p = 0; p < g.node_count(); ++p) {
    for (PhoneId q : g.contacts(p)) {
      ASSERT_NE(q, p);
      ASSERT_TRUE(g.connected(q, p));
    }
  }
}

TEST(BarabasiAlbert, DeterministicGivenSeed) {
  rng::Stream s1(53), s2(53);
  ContactGraph a = generate_barabasi_albert(300, 5, s1);
  ContactGraph b = generate_barabasi_albert(300, 5, s2);
  EXPECT_EQ(a.edge_count(), b.edge_count());
  for (PhoneId p = 0; p < a.node_count(); ++p) {
    auto la = a.contacts(p);
    auto lb = b.contacts(p);
    ASSERT_EQ(std::vector<PhoneId>(la.begin(), la.end()),
              std::vector<PhoneId>(lb.begin(), lb.end()));
  }
}

TEST(BarabasiAlbert, RejectsBadParameters) {
  rng::Stream stream(54);
  EXPECT_THROW((void)generate_barabasi_albert(100, 0, stream), std::invalid_argument);
  EXPECT_THROW((void)generate_barabasi_albert(5, 5, stream), std::invalid_argument);
  EXPECT_THROW((void)generate_barabasi_albert(5, 9, stream), std::invalid_argument);
}

TEST(GraphStats, DegreeStatsOnKnownGraph) {
  std::vector<ContactGraph::Edge> edges{{0, 1}, {0, 2}, {0, 3}};  // star
  ContactGraph g(4, edges);
  DegreeStats stats = degree_stats(g);
  EXPECT_EQ(stats.min, 1u);
  EXPECT_EQ(stats.max, 3u);
  EXPECT_DOUBLE_EQ(stats.mean, 1.5);
  ASSERT_GE(stats.histogram.size(), 4u);
  EXPECT_EQ(stats.histogram[1], 3u);
  EXPECT_EQ(stats.histogram[3], 1u);
}

TEST(GraphStats, ComponentsOfDisconnectedGraph) {
  std::vector<ContactGraph::Edge> edges{{0, 1}, {2, 3}, {3, 4}};
  ContactGraph g(6, edges);  // {0,1}, {2,3,4}, {5}
  ComponentStats stats = component_stats(g);
  EXPECT_EQ(stats.component_count, 3u);
  EXPECT_EQ(stats.largest_size, 3u);
  EXPECT_DOUBLE_EQ(stats.largest_fraction, 0.5);
  auto labels = component_labels(g);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[2], labels[4]);
  EXPECT_NE(labels[0], labels[2]);
  EXPECT_NE(labels[5], labels[0]);
}

TEST(GraphStats, DensePowerLawGraphIsNearlyConnected) {
  rng::Stream stream(40);
  PowerLawConfig config;
  config.node_count = 1000;
  config.target_mean_degree = 80.0;
  ContactGraph g = generate_power_law(config, stream);
  ComponentStats stats = component_stats(g);
  EXPECT_GT(stats.largest_fraction, 0.99);
}

TEST(GraphStats, ClusteringOfTriangleIsOne) {
  EXPECT_DOUBLE_EQ(global_clustering_coefficient(triangle()), 1.0);
}

TEST(GraphStats, ClusteringOfStarIsZero) {
  std::vector<ContactGraph::Edge> edges{{0, 1}, {0, 2}, {0, 3}};
  ContactGraph g(4, edges);
  EXPECT_DOUBLE_EQ(global_clustering_coefficient(g), 0.0);
}

TEST(GraphStats, RingLatticeIsHighlyClustered) {
  ContactGraph g = generate_regular_ring(100, 6);
  EXPECT_GT(global_clustering_coefficient(g), 0.5);
}

TEST(Serialization, RoundTripsExactly) {
  rng::Stream stream(41);
  PowerLawConfig config;
  config.node_count = 200;
  config.target_mean_degree = 12.0;
  ContactGraph original = generate_power_law(config, stream);
  ContactGraph parsed = from_contact_list_string(to_contact_list_string(original));
  ASSERT_EQ(parsed.node_count(), original.node_count());
  ASSERT_EQ(parsed.edge_count(), original.edge_count());
  for (PhoneId p = 0; p < original.node_count(); ++p) {
    auto a = original.contacts(p);
    auto b = parsed.contacts(p);
    ASSERT_EQ(std::vector<PhoneId>(a.begin(), a.end()), std::vector<PhoneId>(b.begin(), b.end()));
  }
}

TEST(Serialization, AcceptsCommentsAndBlankLines) {
  ContactGraph g = from_contact_list_string(
      "# header comment\n"
      "0: 1 2\n"
      "\n"
      "1: 0   # trailing comment\n"
      "2: 0\n");
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);
}

TEST(Serialization, AcceptsEmptyContactList) {
  ContactGraph g = from_contact_list_string("0: 1\n1: 0\n2:\n");
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_TRUE(g.contacts(2).empty());
}

TEST(Serialization, RejectsNonReciprocalLists) {
  EXPECT_THROW((void)from_contact_list_string("0: 1\n1:\n"), std::invalid_argument);
}

TEST(Serialization, RejectsSelfLoop) {
  EXPECT_THROW((void)from_contact_list_string("0: 0\n"), std::invalid_argument);
}

TEST(Serialization, RejectsDuplicateDefinition) {
  EXPECT_THROW((void)from_contact_list_string("0: 1\n1: 0\n0: 1\n"), std::invalid_argument);
}

TEST(Serialization, RejectsMissingPhone) {
  // Phone 1 never defined though referenced.
  EXPECT_THROW((void)from_contact_list_string("0: 2\n2: 0\n"), std::invalid_argument);
}

TEST(Serialization, RejectsUnknownReference) {
  EXPECT_THROW((void)from_contact_list_string("0: 5\n"), std::invalid_argument);
}

TEST(Serialization, RejectsGarbage) {
  EXPECT_THROW((void)from_contact_list_string("zero: 1\n"), std::invalid_argument);
  EXPECT_THROW((void)from_contact_list_string("0 1 2\n"), std::invalid_argument);
  EXPECT_THROW((void)from_contact_list_string("0: 1 banana\n"), std::invalid_argument);
}

}  // namespace
}  // namespace mvsim::graph
