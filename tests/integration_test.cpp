// Integration tests: full simulations asserting the paper's qualitative
// claims on reduced populations (fast enough for CI; the bench binaries
// reproduce the full-scale figures).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>

#include "core/presets.h"
#include "core/runner.h"
#include "core/simulation.h"

namespace mvsim::core {
namespace {

/// Paper-shaped scenario scaled down 4x for test speed: 250 phones,
/// mean contact-list size 20.
ScenarioConfig scaled_scenario(const virus::VirusProfile& profile) {
  ScenarioConfig config = baseline_scenario(profile);
  config.population = 250;
  config.topology.mean_degree = 20.0;
  return config;
}

ExperimentResult run(const ScenarioConfig& config, int reps = 5, std::uint64_t seed = 7777) {
  RunnerOptions options;
  options.replications = reps;
  options.master_seed = seed;
  return run_experiment(config, options);
}

TEST(Baseline, AllVirusesApproachTheExpectedPlateau) {
  // 250 x 0.8 x 0.40 = 80 expected infections at saturation.
  for (const auto& profile : virus::paper_virus_suite()) {
    ScenarioConfig config = scaled_scenario(profile);
    if (profile.name == "Virus 4") config.horizon = SimTime::days(24.0);  // slowest to settle
    ExperimentResult result = run(config);
    EXPECT_NEAR(result.final_infections.mean(), config.expected_unrestrained_plateau(),
                config.expected_unrestrained_plateau() * 0.25)
        << profile.name;
  }
}

TEST(Baseline, VirusSpeedOrderingMatchesFigure1) {
  // Time for the mean curve to reach half the expected plateau:
  // Virus 3 fastest, Virus 2 next, Viruses 1 and 4 slowest.
  //
  // The Virus 1 / Virus 2 ordering depends on the ratio of contact-list
  // size to population (Virus 1's pace is set by how long one pass over
  // the list takes), so this test runs at the paper's full scale —
  // which is cheap, a Virus 1 replication is ~0.1 s.
  std::map<std::string, SimTime> half_time;
  for (const auto& profile : virus::paper_virus_suite()) {
    // Each virus keeps its own paper horizon (running Virus 3's
    // unlimited firehose for 18 days would only burn CPU; it crosses
    // the half-plateau within its first day).
    ScenarioConfig config = baseline_scenario(profile);
    config.sample_step = SimTime::minutes(30.0);
    ExperimentResult result = run(config, 3);
    half_time[profile.name] =
        result.curve.mean_first_time_at_or_above(config.expected_unrestrained_plateau() / 2.0);
  }
  // Virus 1 and Virus 2 have statistically overlapping half-times (in
  // the paper as well: Virus 2 hits 135 infections at ~2 days, about
  // when Virus 1 does); the robust orderings are 3 << {1,2} << 4.
  EXPECT_LT(half_time["Virus 3"], half_time["Virus 2"]);
  EXPECT_LT(half_time["Virus 3"], half_time["Virus 1"]);
  EXPECT_LT(half_time["Virus 1"], half_time["Virus 4"]);
  EXPECT_LT(half_time["Virus 2"], half_time["Virus 4"]);
  EXPECT_LT(half_time["Virus 3"], SimTime::hours(24.0)) << "Virus 3 saturates within a day";
}

TEST(Baseline, Virus2CurveIsStepLike) {
  // Between day boundaries the aligned-burst virus gains little; across
  // a boundary it jumps. Compare growth in the two halves of day 2.
  ScenarioConfig config = scaled_scenario(virus::virus2());
  config.sample_step = SimTime::hours(1.0);
  ExperimentResult result = run(config, 8);
  double start_day2 = result.curve.mean_at(SimTime::hours(24.0));
  double mid_day2 = result.curve.mean_at(SimTime::hours(30.0));
  double end_day2 = result.curve.mean_at(SimTime::hours(47.0));
  double burst_growth = mid_day2 - start_day2;   // includes the day-2 burst wave
  double quiet_growth = end_day2 - mid_day2;     // budget exhausted: near-flat
  EXPECT_GT(burst_growth, 4.0 * std::max(quiet_growth, 0.5))
      << "growth concentrates right after each 24-hour boundary";
}

TEST(GatewayScanStudy, PromptResponseContainsVirus1) {
  ScenarioConfig baseline = scaled_scenario(virus::virus1());
  ExperimentResult base = run(baseline);

  auto scan_config = [&](SimTime delay) {
    ScenarioConfig c = baseline;
    response::GatewayScanConfig scan;
    scan.activation_delay = delay;
    c.responses.gateway_scan = scan;
    return c;
  };
  ExperimentResult fast = run(scan_config(SimTime::hours(6.0)));
  ExperimentResult slow = run(scan_config(SimTime::hours(24.0)));

  EXPECT_LT(fast.final_infections.mean(), slow.final_infections.mean());
  // At the test's reduced scale (contact lists of 20) the virus re-spams
  // each contact 4x faster than at paper scale, so the 24-hour response
  // contains less than the paper's 25%; the full-scale bench reproduces
  // the paper's ratios.
  EXPECT_LT(slow.final_infections.mean(), 0.75 * base.final_infections.mean());
  EXPECT_LT(fast.final_infections.mean(), 0.25 * base.final_infections.mean())
      << "6-hour signature turnaround contains the infection to a small fraction";
}

TEST(GatewayScanStudy, ScanCannotCatchVirus3) {
  ScenarioConfig config = scaled_scenario(virus::virus3());
  response::GatewayScanConfig scan;
  scan.activation_delay = SimTime::hours(6.0);
  config.responses.gateway_scan = scan;
  ExperimentResult with_scan = run(config);
  ExperimentResult base = run(scaled_scenario(virus::virus3()));
  EXPECT_GT(with_scan.final_infections.mean(), 0.85 * base.final_infections.mean())
      << "Virus 3 penetrates the population before any 6-hour response";
}

TEST(DetectionStudy, HigherAccuracySlowsVirus2More) {
  auto detection_config = [&](double accuracy) {
    ScenarioConfig c = scaled_scenario(virus::virus2());
    response::GatewayDetectionConfig detection;
    detection.accuracy = accuracy;
    c.responses.gateway_detection = detection;
    return c;
  };
  ExperimentResult base = run(scaled_scenario(virus::virus2()));
  ExperimentResult lax = run(detection_config(0.80));
  ExperimentResult strict = run(detection_config(0.99));

  // Virus 2's step curve snaps level-crossings to day boundaries, so
  // compare infection levels at a fixed instant instead of
  // time-to-level: three days in, stricter detection = fewer infected.
  SimTime probe = SimTime::days(3.0);
  EXPECT_LT(strict.curve.mean_at(probe), 0.5 * base.curve.mean_at(probe));
  EXPECT_LT(strict.curve.mean_at(probe), lax.curve.mean_at(probe));
  // The strict detector blocks a larger *fraction* of traffic (its
  // absolute count is lower only because it suppresses the epidemic
  // that generates the traffic).
  double strict_fraction = strict.messages_blocked.mean() / strict.messages_submitted.mean();
  double lax_fraction = lax.messages_blocked.mean() / lax.messages_submitted.mean();
  EXPECT_GT(strict_fraction, lax_fraction);
  EXPECT_GT(strict.final_infections.mean(), 0.0) << "the detector slows, not stops";
}

TEST(EducationStudy, PlateauScalesWithEventualAcceptance) {
  for (const auto& profile : {virus::virus1(), virus::virus3()}) {
    ScenarioConfig config = scaled_scenario(profile);
    config.horizon = SimTime::days(18.0);
    ExperimentResult base = run(config);

    ScenarioConfig educated = config;
    response::UserEducationConfig education;
    education.eventual_acceptance = 0.20;
    educated.responses.user_education = education;
    ExperimentResult half = run(educated);

    education.eventual_acceptance = 0.10;
    educated.responses.user_education = education;
    ExperimentResult quarter = run(educated);

    EXPECT_LT(half.final_infections.mean(), 0.75 * base.final_infections.mean())
        << profile.name;
    EXPECT_LT(quarter.final_infections.mean(), half.final_infections.mean()) << profile.name;
  }
}

TEST(ImmunizationStudy, FasterPatchingMeansFewerInfections) {
  auto immunization_config = [&](SimTime dev, SimTime deploy) {
    ScenarioConfig c = scaled_scenario(virus::virus4());
    response::ImmunizationConfig immunization;
    immunization.development_time = dev;
    immunization.deployment_duration = deploy;
    c.responses.immunization = immunization;
    return c;
  };
  ExperimentResult base = run(scaled_scenario(virus::virus4()));
  ExperimentResult fast_dev = run(immunization_config(SimTime::hours(24.0), SimTime::hours(1.0)));
  ExperimentResult slow_dev = run(immunization_config(SimTime::hours(48.0), SimTime::hours(1.0)));

  EXPECT_LT(fast_dev.final_infections.mean(), slow_dev.final_infections.mean());
  EXPECT_LT(slow_dev.final_infections.mean(), base.final_infections.mean());
  // Every susceptible phone eventually gets the patch.
  EXPECT_NEAR(fast_dev.patches_applied.mean(), 200.0, 1.0);
}

TEST(ImmunizationStudy, PatchedPopulationEndsUpImmunizedOrSilenced) {
  ScenarioConfig config = scaled_scenario(virus::virus1());
  response::ImmunizationConfig immunization;
  immunization.development_time = SimTime::hours(24.0);
  immunization.deployment_duration = SimTime::hours(6.0);
  config.responses.immunization = immunization;
  Simulation sim(config, 123);
  ReplicationResult r = sim.run();
  const phone::PhoneTable& phones = sim.phones();
  for (graph::PhoneId id = 0; id < config.population; ++id) {
    if (phones.susceptible(id)) {
      EXPECT_TRUE(phones.patched(id)) << "susceptible phone " << id << " missed the rollout";
    }
  }
  EXPECT_EQ(r.immunized_healthy + r.patched_infected, 200u);
}

TEST(MonitoringStudy, ForcedWaitSlowsVirus3) {
  ScenarioConfig base_config = scaled_scenario(virus::virus3());
  base_config.sample_step = SimTime::minutes(15.0);
  ExperimentResult base = run(base_config);

  auto monitoring_config = [&](SimTime wait) {
    ScenarioConfig c = base_config;
    response::MonitoringConfig monitoring;
    monitoring.forced_wait = wait;
    c.responses.monitoring = monitoring;
    return c;
  };
  ExperimentResult wait15 = run(monitoring_config(SimTime::minutes(15.0)));
  ExperimentResult wait60 = run(monitoring_config(SimTime::minutes(60.0)));

  double level = 0.5 * base.final_infections.mean();
  SimTime t_base = base.curve.mean_first_time_at_or_above(level);
  SimTime t_15 = wait15.curve.mean_first_time_at_or_above(level);
  EXPECT_LT(t_base + SimTime::hours(2.0), t_15)
      << "monitoring buys hours against the rapid virus";
  EXPECT_LE(wait60.curve.mean_at(SimTime::hours(12.0)), wait15.curve.mean_at(SimTime::hours(12.0)))
      << "longer forced waits slow the spread at least as much";
  EXPECT_GT(wait15.phones_flagged.mean(), 0.0);
}

TEST(MonitoringStudy, SelfThrottledVirusesSlipUnderMonitoring) {
  // Viruses 1 and 4 never even trip the detector (<= 2 messages/hour).
  for (const auto& profile : {virus::virus1(), virus::virus4()}) {
    ScenarioConfig config = scaled_scenario(profile);
    config.responses.monitoring = response::MonitoringConfig{};
    ExperimentResult result = run(config, 3);
    EXPECT_DOUBLE_EQ(result.phones_flagged.mean(), 0.0)
        << profile.name << " sends at most ~2 messages/hour, under the 5/hour threshold";
  }
  // Virus 2's burst can be flagged, but a 30-minute forced wait barely
  // constrains a virus that needs only 30 sends per day: the infection
  // outcome matches the unmonitored baseline (paper: "ineffectual").
  ScenarioConfig config = scaled_scenario(virus::virus2());
  ExperimentResult base = run(config, 4);
  config.responses.monitoring = response::MonitoringConfig{};
  ExperimentResult monitored = run(config, 4);
  EXPECT_GT(monitored.final_infections.mean(), 0.85 * base.final_infections.mean());
}

TEST(BlacklistStudy, LowThresholdSuppressesVirus3) {
  ScenarioConfig base_config = scaled_scenario(virus::virus3());
  ExperimentResult base = run(base_config);

  auto blacklist_config = [&](std::uint32_t threshold) {
    ScenarioConfig c = base_config;
    response::BlacklistConfig blacklist;
    blacklist.message_threshold = threshold;
    c.responses.blacklist = blacklist;
    return c;
  };
  ExperimentResult strict = run(blacklist_config(10));
  ExperimentResult lax = run(blacklist_config(40));

  EXPECT_LT(strict.final_infections.mean(), 0.5 * base.final_infections.mean());
  EXPECT_LT(strict.final_infections.mean(), lax.final_infections.mean());
  EXPECT_GT(strict.phones_blacklisted.mean(), 0.0);
}

TEST(BlacklistStudy, Virus2EvadesBlacklisting) {
  // The evasion needs contact lists larger than the daily message
  // budget (then each counted message carries several recipients), so
  // this test keeps the paper's mean degree of 80.
  ScenarioConfig config = scaled_scenario(virus::virus2());
  config.topology.mean_degree = 80.0;
  response::BlacklistConfig blacklist;
  blacklist.message_threshold = 10;
  config.responses.blacklist = blacklist;
  ExperimentResult with_blacklist = run(config);
  ScenarioConfig base_config = scaled_scenario(virus::virus2());
  base_config.topology.mean_degree = 80.0;
  ExperimentResult base = run(base_config);
  EXPECT_GT(with_blacklist.final_infections.mean(), 0.8 * base.final_infections.mean())
      << "multi-recipient messages defeat per-message counting (paper §5.2)";
}

TEST(DefenseInDepth, CombiningMechanismsBeatsEither) {
  // Paper §6 future work: a slowing mechanism (monitoring) buys time
  // for a stopping mechanism (gateway scan) against the fast virus.
  ScenarioConfig base_config = scaled_scenario(virus::virus3());
  ExperimentResult base = run(base_config);

  ScenarioConfig scan_only = base_config;
  response::GatewayScanConfig scan;
  scan.activation_delay = SimTime::hours(6.0);
  scan_only.responses.gateway_scan = scan;
  ExperimentResult only_scan = run(scan_only);

  ScenarioConfig combined = scan_only;
  response::MonitoringConfig monitoring;
  monitoring.forced_wait = SimTime::minutes(30.0);
  combined.responses.monitoring = monitoring;
  ExperimentResult both = run(combined);

  EXPECT_LT(both.final_infections.mean(), 0.7 * only_scan.final_infections.mean());
  EXPECT_LT(both.final_infections.mean(), 0.7 * base.final_infections.mean());
}

TEST(Scaling, DoublingPopulationScalesThePlateau) {
  // Paper §5.3: "results scale nicely to larger population sizes".
  ScenarioConfig small = scaled_scenario(virus::virus1());
  ScenarioConfig big = small;
  big.population = 500;
  ExperimentResult small_result = run(small, 4);
  ExperimentResult big_result = run(big, 4);
  double small_fraction = small_result.final_infections.mean() / 250.0;
  double big_fraction = big_result.final_infections.mean() / 500.0;
  EXPECT_NEAR(small_fraction, big_fraction, 0.08)
      << "penetration fraction is population-invariant";
}

}  // namespace
}  // namespace mvsim::core
