// Combined-mechanism suite test: all six paper mechanisms (plus the
// rate-limiter extension) enabled in ONE simulation.
//
// The paper only evaluates mechanisms in isolation; this test pins
// down what the pluggable architecture must guarantee when they stack:
// activation ordering follows each mechanism's configured delay from
// the shared detectability instant, and every mechanism's counters are
// its own (enabling the others does not bleed into them).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/presets.h"
#include "core/simulation.h"
#include "response/blacklist.h"
#include "response/gateway_detection.h"
#include "response/gateway_scan.h"
#include "response/immunization.h"
#include "response/monitoring.h"
#include "response/rate_limiter.h"
#include "response/suite.h"
#include "virus/profile.h"

namespace mvsim::core {
namespace {

/// Virus 3 (random dialer, ~60 msgs/hour) with every mechanism on,
/// activation delays staggered so the ordering is observable.
ScenarioConfig everything_scenario() {
  ScenarioConfig config = baseline_scenario(virus::virus3());
  config.name = "everything";

  response::GatewayScanConfig scan;
  scan.activation_delay = SimTime::hours(2.0);
  config.responses.gateway_scan = scan;

  response::GatewayDetectionConfig detection;
  detection.accuracy = 0.95;
  detection.analysis_period = SimTime::hours(1.0);
  config.responses.gateway_detection = detection;

  response::UserEducationConfig education;
  education.eventual_acceptance = 0.20;
  config.responses.user_education = education;

  response::ImmunizationConfig immunization;
  immunization.development_time = SimTime::hours(4.0);
  immunization.deployment_duration = SimTime::hours(1.0);
  config.responses.immunization = immunization;

  // The two dissemination-point throttles interact when stacked: each
  // caps the send rate the other observes. Parameters are chosen so
  // both still trip against Virus 3 (~1 msg/min): monitoring flags at
  // the 6th in-window message and its 5-minute forced wait still lets
  // a flagged phone accumulate the 8 in-window messages the rate
  // limiter needs.
  response::MonitoringConfig monitoring;
  monitoring.forced_wait = SimTime::minutes(5.0);
  config.responses.monitoring = monitoring;
  config.responses.blacklist = response::BlacklistConfig{};
  response::RateLimiterConfig rate_limiter;
  rate_limiter.max_messages_per_window = 8;
  config.responses.rate_limiter = rate_limiter;

  config.horizon = SimTime::hours(12.0);
  return config;
}

template <typename Mechanism>
const Mechanism& mechanism_as(const Simulation& simulation, const char* name) {
  const response::ResponseMechanism* found = simulation.responses().find(name);
  EXPECT_NE(found, nullptr) << name << " not built";
  const auto* typed = dynamic_cast<const Mechanism*>(found);
  EXPECT_NE(typed, nullptr) << name << " has unexpected concrete type";
  return *typed;
}

TEST(ResponseSuiteSimulation, AllMechanismsBuildAndEducationStaysStanding) {
  ScenarioConfig config = everything_scenario();
  EXPECT_EQ(config.responses.enabled_count(), 7);
  Simulation simulation(config, /*replication_seed=*/42);
  // user_education is a standing condition folded into the consent
  // model; the six event-driven mechanisms become hook objects.
  EXPECT_EQ(simulation.responses().mechanisms().size(), 6u);
  EXPECT_EQ(simulation.responses().find("user_education"), nullptr);
}

TEST(ResponseSuiteSimulation, ActivationFollowsConfiguredDelaysFromOneDetection) {
  ScenarioConfig config = everything_scenario();
  Simulation simulation(config, /*replication_seed=*/42);
  ReplicationResult result = simulation.run();

  // Virus 3 floods the gateway, so the threshold is crossed early.
  ASSERT_TRUE(result.detected_at.is_finite());
  SimTime detected = result.detected_at;

  const auto& scan = mechanism_as<response::GatewayScan>(simulation, "gateway_scan");
  const auto& detection =
      mechanism_as<response::GatewayDetection>(simulation, "gateway_detection");
  const auto& immunization =
      mechanism_as<response::Immunization>(simulation, "immunization");

  // Each mechanism measures its own delay from the SAME detectability
  // instant; with 1h < 2h < 4h the activations are strictly ordered.
  EXPECT_TRUE(detection.active());
  EXPECT_TRUE(scan.active());
  EXPECT_EQ(scan.activated_at(), detected + SimTime::hours(2.0));
  EXPECT_TRUE(immunization.deployment_started());
  EXPECT_EQ(immunization.deployment_begins_at(), detected + SimTime::hours(4.0));
  EXPECT_LT(scan.activated_at(), immunization.deployment_begins_at());
  EXPECT_EQ(immunization.deployment_ends_at(),
            immunization.deployment_begins_at() + SimTime::hours(1.0));
}

TEST(ResponseSuiteSimulation, CountersDoNotInterfere) {
  ScenarioConfig config = everything_scenario();
  Simulation simulation(config, /*replication_seed=*/42);
  ReplicationResult result = simulation.run();

  const auto& scan = mechanism_as<response::GatewayScan>(simulation, "gateway_scan");
  const auto& detection =
      mechanism_as<response::GatewayDetection>(simulation, "gateway_detection");
  const auto& monitoring = mechanism_as<response::Monitoring>(simulation, "monitoring");
  const auto& blacklist = mechanism_as<response::Blacklist>(simulation, "blacklist");
  const auto& limiter = mechanism_as<response::RateLimiter>(simulation, "rate_limiter");

  // Standard result fields map 1:1 onto the owning mechanism's counters.
  EXPECT_EQ(result.phones_flagged, monitoring.flagged_count());
  EXPECT_EQ(result.phones_blacklisted, blacklist.blacklisted_count());

  // The rate limiter reports through extras without displacing anyone.
  auto extra = std::find_if(result.response_extras.begin(), result.response_extras.end(),
                            [](const auto& e) { return e.first == "phones_rate_limited"; });
  ASSERT_NE(extra, result.response_extras.end());
  EXPECT_EQ(extra->second, limiter.phones_limited());

  // Virus 3 is loud enough to trip every dissemination-point counter.
  EXPECT_GT(result.phones_flagged, 0u);
  EXPECT_GT(result.phones_blacklisted, 0u);
  EXPECT_GT(extra->second, 0u);

  // Both gateway filters act once active, and their per-mechanism stop
  // counts add up to exactly the gateway's blocked total — nothing is
  // double-counted across the filter chain.
  EXPECT_GT(result.gateway.messages_blocked, 0u);
  EXPECT_EQ(scan.messages_stopped() + detection.messages_stopped(),
            result.gateway.messages_blocked);
}

TEST(ResponseSuiteSimulation, SuiteRunBeatsEveryCurveMilestone) {
  // Sanity: with everything enabled the outbreak must be contained far
  // below the unrestrained plateau (~800 susceptible phones).
  ScenarioConfig config = everything_scenario();
  Simulation simulation(config, /*replication_seed=*/7);
  ReplicationResult result = simulation.run();
  EXPECT_LT(result.total_infected, 400u);
  EXPECT_GT(result.total_infected, 0u);
}

}  // namespace
}  // namespace mvsim::core
