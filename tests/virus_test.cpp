// Unit tests for src/virus: profiles, targeting, and the sending
// process under budgets, policies and piggybacking.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "des/scheduler.h"
#include "net/gateway.h"
#include "phone/phone.h"
#include "phone/phone_table.h"
#include "rng/stream.h"
#include "virus/profile.h"
#include "virus/sending_process.h"
#include "virus/targeting.h"

namespace mvsim::virus {
namespace {

TEST(VirusProfile, PaperPresetsValidate) {
  for (const auto& profile : paper_virus_suite()) {
    EXPECT_TRUE(profile.validate().ok()) << profile.validate().to_string();
  }
}

TEST(VirusProfile, PresetParametersMatchPaper) {
  VirusProfile v1 = virus1();
  EXPECT_EQ(v1.targeting, TargetingMode::kContactList);
  EXPECT_EQ(v1.min_message_gap, SimTime::minutes(30.0));
  EXPECT_EQ(v1.recipients_per_message, 1u);
  EXPECT_EQ(v1.budget, BudgetKind::kPerReboot);
  EXPECT_EQ(v1.budget_limit, 30u);

  VirusProfile v2 = virus2();
  EXPECT_EQ(v2.min_message_gap, SimTime::minutes(1.0));
  EXPECT_EQ(v2.recipients_per_message, 100u);
  EXPECT_EQ(v2.budget, BudgetKind::kPerDayAligned);
  EXPECT_TRUE(v2.align_first_burst);
  EXPECT_TRUE(v2.one_pass_per_window);

  VirusProfile v3 = virus3();
  EXPECT_EQ(v3.targeting, TargetingMode::kRandomDialing);
  EXPECT_NEAR(v3.valid_number_fraction, 1.0 / 3.0, 1e-12);
  EXPECT_EQ(v3.budget, BudgetKind::kUnlimited);

  VirusProfile v4 = virus4();
  EXPECT_EQ(v4.dormancy, SimTime::hours(1.0));
  EXPECT_EQ(v4.trigger, SendTrigger::kPiggyback);
  EXPECT_EQ(v4.min_message_gap, SimTime::minutes(30.0));
}

TEST(VirusProfile, ValidationCatchesBadFields) {
  VirusProfile p = virus1();
  p.recipients_per_message = 0;
  EXPECT_FALSE(p.validate().ok());

  p = virus1();
  p.budget_limit = 0;
  EXPECT_FALSE(p.validate().ok());

  p = virus3();
  p.valid_number_fraction = 0.0;
  EXPECT_FALSE(p.validate().ok());

  p = virus1();
  p.min_message_gap = SimTime::zero();
  p.extra_gap_mean = SimTime::zero();
  EXPECT_FALSE(p.validate().ok()) << "zero-delay send loop must be rejected";

  p = virus1();
  p.align_first_burst = true;  // requires kPerDayAligned
  EXPECT_FALSE(p.validate().ok());

  p = virus4();
  p.legit_traffic_gap_mean = SimTime::zero();
  EXPECT_FALSE(p.validate().ok());

  p = virus1();
  p.name.clear();
  EXPECT_FALSE(p.validate().ok());
}

TEST(ContactListTargeter, CoversWholeListBeforeRepeating) {
  rng::Stream stream(11);
  std::vector<net::PhoneId> contacts{1, 2, 3, 4, 5};
  ContactListTargeter targeter(contacts, stream);
  std::set<net::PhoneId> seen;
  for (int i = 0; i < 5; ++i) {
    auto t = targeter.next_targets(1);
    ASSERT_EQ(t.size(), 1u);
    EXPECT_TRUE(t[0].valid);
    seen.insert(t[0].phone);
  }
  EXPECT_EQ(seen.size(), 5u) << "one full pass touches every contact exactly once";
}

TEST(ContactListTargeter, BatchNeverExceedsContactList) {
  rng::Stream stream(12);
  std::vector<net::PhoneId> contacts{1, 2, 3};
  ContactListTargeter targeter(contacts, stream);
  auto t = targeter.next_targets(100);
  EXPECT_EQ(t.size(), 3u);
  std::set<net::PhoneId> unique;
  for (const auto& r : t) unique.insert(r.phone);
  EXPECT_EQ(unique.size(), 3u) << "no duplicate recipients within one message";
}

TEST(ContactListTargeter, CyclesIndefinitely) {
  rng::Stream stream(13);
  std::vector<net::PhoneId> contacts{1, 2};
  ContactListTargeter targeter(contacts, stream);
  for (int i = 0; i < 50; ++i) {
    auto t = targeter.next_targets(1);
    ASSERT_EQ(t.size(), 1u);
  }
}

TEST(ContactListTargeter, EmptyContactListYieldsNothing) {
  rng::Stream stream(14);
  ContactListTargeter targeter(std::span<const net::PhoneId>{}, stream);
  EXPECT_TRUE(targeter.next_targets(5).empty());
}

TEST(RandomDialTargeter, ValidFractionRoughlyRespected) {
  rng::Stream stream(15);
  RandomDialTargeter targeter(0, 1000, 1.0 / 3.0, stream);
  int valid = 0;
  constexpr int kN = 30000;
  auto targets = targeter.next_targets(kN);
  ASSERT_EQ(targets.size(), static_cast<std::size_t>(kN));
  for (const auto& t : targets) valid += t.valid ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(valid) / kN, 1.0 / 3.0, 0.02);
}

TEST(RandomDialTargeter, NeverDialsSelfValidly) {
  rng::Stream stream(16);
  RandomDialTargeter targeter(7, 10, 1.0, stream);
  for (const auto& t : targeter.next_targets(5000)) {
    ASSERT_TRUE(t.valid);
    ASSERT_NE(t.phone, 7u);
    ASSERT_LT(t.phone, 10u);
  }
}

TEST(RandomDialTargeter, RejectsBadParameters) {
  rng::Stream stream(17);
  EXPECT_THROW(RandomDialTargeter(0, 1, 0.5, stream), std::invalid_argument);
  EXPECT_THROW(RandomDialTargeter(0, 10, 0.0, stream), std::invalid_argument);
  EXPECT_THROW(RandomDialTargeter(0, 10, 1.5, stream), std::invalid_argument);
}

// ---- SendingProcess ----

class GapPolicy final : public net::OutgoingMmsPolicy {
 public:
  bool is_blocked(net::PhoneId, SimTime) const override { return blocked; }
  SimTime forced_min_gap(net::PhoneId, SimTime) const override { return gap; }
  bool blocked = false;
  SimTime gap = SimTime::zero();
};

struct SendingFixture {
  des::Scheduler scheduler;
  rng::Stream virus_stream{91};
  rng::Stream user_stream{92};
  rng::Stream net_stream{93};
  net::Gateway gateway{scheduler, net_stream, SimTime::minutes(1.0)};
  phone::ConsentModel consent{0.468};
  phone::PhoneEnvironment phone_env;
  GapPolicy policy;
  SendingEnvironment env;

  std::unique_ptr<phone::PhoneTable> phones;

  SendingFixture() {
    phone_env.scheduler = &scheduler;
    phone_env.user_stream = &user_stream;
    phone_env.consent = &consent;
    phones = std::make_unique<phone::PhoneTable>(1, &phone_env);
    phones->set_susceptible(0, true);
    env.scheduler = &scheduler;
    env.virus_stream = &virus_stream;
    env.gateway = &gateway;
    env.policies = {&policy};
  }

  std::unique_ptr<Targeter> contact_targeter(std::vector<net::PhoneId> contacts) {
    return std::make_unique<ContactListTargeter>(contacts, virus_stream);
  }
};

TEST(SendingProcess, SendsImmediatelyAndRespectsMinGap) {
  SendingFixture fx;
  VirusProfile p = virus1();
  p.extra_gap_mean = SimTime::zero();  // exact cadence for the assertion
  fx.phones->force_infect(0);
  SendingProcess process(fx.env, p, *fx.phones, 0, fx.contact_targeter({1, 2, 3}));
  process.start();
  fx.scheduler.run_until(SimTime::minutes(89.0));
  // Sends at t=0, 30, 60 — the t=90 send hasn't happened yet.
  EXPECT_EQ(process.messages_sent(), 3u);
}

TEST(SendingProcess, PerRebootBudgetPausesUntilReboot) {
  SendingFixture fx;
  VirusProfile p = virus1();
  p.extra_gap_mean = SimTime::zero();
  p.budget_limit = 3;
  fx.phones->force_infect(0);
  SendingProcess process(fx.env, p, *fx.phones, 0, fx.contact_targeter({1, 2, 3, 4}));
  process.start();
  fx.scheduler.run_until(SimTime::hours(8.0));
  // Budget 3 per reboot; reboot intervals are uniform in [18 h, 30 h],
  // so by 8 h the process has sent exactly its first allotment.
  EXPECT_EQ(process.messages_sent(), 3u);
  fx.scheduler.run_until(SimTime::hours(40.0));
  EXPECT_GE(process.messages_sent(), 6u) << "the first reboot refilled the budget";
}

TEST(SendingProcess, OnePassPerWindowCoversListOncePerDay) {
  SendingFixture fx;
  VirusProfile p = virus2();  // 100 recipients/message, one pass per day
  p.extra_gap_mean = SimTime::zero();
  fx.phones->force_infect(0);

  std::uint64_t recipient_copies = 0;
  class CopyCounter final : public net::GatewayObserver {
   public:
    explicit CopyCounter(std::uint64_t& out) : out_(&out) {}
    void on_submitted(const net::MmsMessage& m, SimTime) override {
      *out_ += m.recipients.size();
    }
    std::uint64_t* out_;
  } counter(recipient_copies);
  fx.gateway.add_observer(counter);

  std::vector<net::PhoneId> contacts(80);
  for (net::PhoneId i = 0; i < 80; ++i) contacts[i] = i + 1;
  SendingProcess process(fx.env, p, *fx.phones, 0, fx.contact_targeter(contacts));
  process.start();

  fx.scheduler.run_until(SimTime::hours(23.9));
  // The pass over 80 contacts rides the full 30-message budget: ~3
  // recipients per message, all sent near the start of the period.
  EXPECT_GE(process.messages_sent(), 27u);
  EXPECT_LE(process.messages_sent(), 30u);
  EXPECT_EQ(recipient_copies, 80u) << "each contact addressed exactly once on day 0";
  fx.scheduler.run_until(SimTime::hours(47.9));
  EXPECT_EQ(recipient_copies, 160u) << "exactly one more pass on day 1";
}

TEST(SendingProcess, OnePassPerWindowWithSmallBudgetStopsAtListEnd) {
  SendingFixture fx;
  VirusProfile p = virus2();
  p.budget_limit = 3;  // pass spread over 3 messages: 3 + 3 + 1 contacts
  p.extra_gap_mean = SimTime::zero();
  fx.phones->force_infect(0);
  SendingProcess process(fx.env, p, *fx.phones, 0, fx.contact_targeter({1, 2, 3, 4, 5, 6, 7}));
  process.start();
  fx.scheduler.run_until(SimTime::hours(12.0));
  EXPECT_EQ(process.messages_sent(), 3u);
  fx.scheduler.run_until(SimTime::hours(26.0));
  EXPECT_EQ(process.messages_sent(), 6u) << "next pass after the period boundary";
}

TEST(SendingProcess, PerDayAlignedBudgetResetsAtBoundary) {
  SendingFixture fx;
  VirusProfile p = virus2();
  p.recipients_per_message = 1;
  p.budget_limit = 5;
  p.one_pass_per_window = false;  // budget semantics under test, not pass capping
  p.extra_gap_mean = SimTime::zero();
  fx.phones->force_infect(0);
  SendingProcess process(fx.env, p, *fx.phones, 0, fx.contact_targeter({1, 2, 3}));
  process.start();
  fx.scheduler.run_until(SimTime::hours(23.0));
  EXPECT_EQ(process.messages_sent(), 5u) << "first day's allotment only";
  fx.scheduler.run_until(SimTime::hours(25.0));
  EXPECT_EQ(process.messages_sent(), 10u) << "second allotment right after midnight";
}

TEST(SendingProcess, AlignFirstBurstHoldsUntilBoundary) {
  SendingFixture fx;
  VirusProfile p = virus2();
  p.recipients_per_message = 1;
  p.budget_limit = 5;
  p.one_pass_per_window = false;
  p.extra_gap_mean = SimTime::zero();
  // Infect mid-day: the first burst must wait for the next boundary.
  fx.scheduler.schedule_at(SimTime::hours(10.0), [&] { fx.phones->force_infect(0); });
  fx.scheduler.run_until(SimTime::hours(10.0));
  SendingProcess process(fx.env, p, *fx.phones, 0, fx.contact_targeter({1, 2, 3}));
  process.start();
  fx.scheduler.run_until(SimTime::hours(23.9));
  EXPECT_EQ(process.messages_sent(), 0u);
  fx.scheduler.run_until(SimTime::hours(24.5));
  EXPECT_EQ(process.messages_sent(), 5u);
}

TEST(SendingProcess, UnalignedStartSendsImmediately) {
  SendingFixture fx;
  VirusProfile p = virus2();
  p.align_first_burst = false;
  p.one_pass_per_window = false;
  p.recipients_per_message = 1;
  p.budget_limit = 5;
  p.extra_gap_mean = SimTime::zero();
  fx.scheduler.schedule_at(SimTime::hours(10.0), [&] { fx.phones->force_infect(0); });
  fx.scheduler.run_until(SimTime::hours(10.0));
  SendingProcess process(fx.env, p, *fx.phones, 0, fx.contact_targeter({1, 2, 3}));
  process.start();
  fx.scheduler.run_until(SimTime::hours(11.0));
  EXPECT_EQ(process.messages_sent(), 5u);
}

TEST(SendingProcess, BlockedPolicyStopsPermanently) {
  SendingFixture fx;
  fx.policy.blocked = true;
  VirusProfile p = virus1();
  fx.phones->force_infect(0);
  SendingProcess process(fx.env, p, *fx.phones, 0, fx.contact_targeter({1, 2}));
  process.start();
  fx.scheduler.run_until(SimTime::days(2.0));
  EXPECT_EQ(process.messages_sent(), 0u);
  EXPECT_FALSE(process.running());
}

TEST(SendingProcess, ForcedGapSlowsCadence) {
  SendingFixture fx;
  fx.policy.gap = SimTime::minutes(120.0);
  VirusProfile p = virus1();
  p.extra_gap_mean = SimTime::zero();
  fx.phones->force_infect(0);
  SendingProcess process(fx.env, p, *fx.phones, 0, fx.contact_targeter({1, 2, 3}));
  process.start();
  fx.scheduler.run_until(SimTime::minutes(239.0));
  // 2 h forced gap dominates the 30 min virus gap: sends at 0 and 120.
  EXPECT_EQ(process.messages_sent(), 2u);
}

TEST(SendingProcess, PatchStopsAtNextAttempt) {
  SendingFixture fx;
  VirusProfile p = virus1();
  p.extra_gap_mean = SimTime::zero();
  fx.phones->force_infect(0);
  SendingProcess process(fx.env, p, *fx.phones, 0, fx.contact_targeter({1, 2}));
  process.start();
  fx.scheduler.schedule_at(SimTime::minutes(45.0), [&] { fx.phones->apply_patch(0); });
  fx.scheduler.run_until(SimTime::days(1.0));
  EXPECT_EQ(process.messages_sent(), 2u) << "t=0 and t=30 only; patched before t=60";
  EXPECT_FALSE(process.running());
}

TEST(SendingProcess, PiggybackWaitsForDormancyAndLegitTraffic) {
  SendingFixture fx;
  VirusProfile p = virus4();
  fx.phones->force_infect(0);
  SendingProcess process(fx.env, p, *fx.phones, 0, fx.contact_targeter({1, 2, 3}));
  process.start();
  fx.scheduler.run_until(SimTime::hours(1.0));
  EXPECT_EQ(process.messages_sent(), 0u) << "dormant for the first hour";
  fx.scheduler.run_until(SimTime::days(2.0));
  EXPECT_GT(process.messages_sent(), 5u);
  // Mean legit gap is 2 h => roughly 12/day; allow a wide band.
  EXPECT_LT(process.messages_sent(), 40u);
}

TEST(SendingProcess, PiggybackHonorsMinGap) {
  SendingFixture fx;
  VirusProfile p = virus4();
  p.dormancy = SimTime::zero();
  p.legit_traffic_gap_mean = SimTime::minutes(1.0);  // chatty user
  p.min_message_gap = SimTime::minutes(30.0);
  fx.phones->force_infect(0);
  SendingProcess process(fx.env, p, *fx.phones, 0, fx.contact_targeter({1, 2, 3}));
  process.start();
  fx.scheduler.run_until(SimTime::hours(10.0));
  // Despite ~600 legit events, the 30-min gap caps sends at ~20.
  EXPECT_LE(process.messages_sent(), 21u);
  EXPECT_GE(process.messages_sent(), 15u);
}

TEST(SendingProcess, StopCancelsFutureSends) {
  SendingFixture fx;
  VirusProfile p = virus3();
  fx.phones->force_infect(0);
  auto targeter = std::make_unique<RandomDialTargeter>(0, 100, 1.0 / 3.0, fx.virus_stream);
  SendingProcess process(fx.env, p, *fx.phones, 0, std::move(targeter));
  process.start();
  fx.scheduler.run_until(SimTime::minutes(30.0));
  auto sent_before = process.messages_sent();
  EXPECT_GT(sent_before, 10u);
  process.stop();
  fx.scheduler.run_until(SimTime::hours(5.0));
  EXPECT_EQ(process.messages_sent(), sent_before);
}

TEST(SendingProcess, EmptyContactListStopsQuietly) {
  SendingFixture fx;
  VirusProfile p = virus1();
  fx.phones->force_infect(0);
  SendingProcess process(fx.env, p, *fx.phones, 0, fx.contact_targeter({}));
  process.start();
  fx.scheduler.run_until(SimTime::days(1.0));
  EXPECT_EQ(process.messages_sent(), 0u);
  EXPECT_FALSE(process.running());
}

TEST(SendingProcess, StartTwiceThrows) {
  SendingFixture fx;
  VirusProfile p = virus1();
  fx.phones->force_infect(0);
  SendingProcess process(fx.env, p, *fx.phones, 0, fx.contact_targeter({1}));
  process.start();
  EXPECT_THROW(process.start(), std::logic_error);
}

TEST(SendingProcess, Virus2MessageCarriesWholeContactList) {
  SendingFixture fx;
  std::size_t largest_recipient_list = 0;
  fx.gateway.set_delivery_callback([](net::PhoneId, const net::MmsMessage&) {});
  class CountObserver final : public net::GatewayObserver {
   public:
    explicit CountObserver(std::size_t& out) : out_(&out) {}
    void on_submitted(const net::MmsMessage& m, SimTime) override {
      *out_ = std::max(*out_, m.recipients.size());
    }
    std::size_t* out_;
  } observer(largest_recipient_list);
  fx.gateway.add_observer(observer);

  VirusProfile p = virus2();
  p.align_first_burst = false;
  p.one_pass_per_window = false;  // exercise the raw multi-recipient capability
  fx.phones->force_infect(0);
  std::vector<net::PhoneId> contacts(80);
  for (net::PhoneId i = 0; i < 80; ++i) contacts[i] = i + 1;
  SendingProcess process(fx.env, p, *fx.phones, 0, fx.contact_targeter(contacts));
  process.start();
  fx.scheduler.run_until(SimTime::hours(1.0));
  EXPECT_EQ(largest_recipient_list, 80u)
      << "up to 100 recipients per message covers the whole 80-contact list";
}

}  // namespace
}  // namespace mvsim::virus
