// The dissemination half of an infected phone (paper §4.1).
//
// One SendingProcess is attached to each phone the moment it becomes
// infected. It drives outgoing infected MMS messages under every
// constraint the paper describes:
//   * the virus's own minimum gap between messages,
//   * its self-imposed sending budget (per reboot / per aligned day),
//   * an initial dormancy period (Virus 4),
//   * piggybacking on legitimate traffic instead of an own timer,
//   * provider-side dissemination policies: a blocked phone
//     (blacklist) stops for good; a flagged phone (monitoring) has a
//     forced minimum gap merged into the virus's own gap.
// Patching an infected phone (immunization) also halts the process —
// it checks PhoneTable::propagation_stopped() before every send.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "des/scheduler.h"
#include "net/gateway.h"
#include "phone/phone_table.h"
#include "rng/stream.h"
#include "trace/trace.h"
#include "virus/profile.h"
#include "virus/targeting.h"

namespace mvsim::virus {

/// Shared (per-replication) wiring for all sending processes.
struct SendingEnvironment {
  des::Scheduler* scheduler = nullptr;
  rng::Stream* virus_stream = nullptr;
  net::Gateway* gateway = nullptr;
  /// Dissemination-point mechanisms, consulted before every send.
  std::vector<net::OutgoingMmsPolicy*> policies;
  /// Event capture (reboots), or nullptr when tracing is off.
  trace::TraceBuffer* trace = nullptr;
};

class SendingProcess {
 public:
  /// `host` indexes the infected phone in `phones`; `targeter` supplies
  /// recipients. The profile and table must outlive the process (the
  /// Simulation owns both).
  SendingProcess(const SendingEnvironment& env, const VirusProfile& profile,
                 const phone::PhoneTable& phones, phone::PhoneId host,
                 std::unique_ptr<Targeter> targeter);
  ~SendingProcess();
  SendingProcess(const SendingProcess&) = delete;
  SendingProcess& operator=(const SendingProcess&) = delete;

  /// Begin disseminating. Call exactly once, at infection time.
  void start();

  /// Permanently halt (patch landed, phone blacklisted, teardown).
  void stop();

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] std::uint64_t messages_sent() const { return messages_sent_; }

 private:
  void attempt_send();
  void send_now();
  void schedule_attempt_at(SimTime at);
  void schedule_next_active_attempt();
  void on_reboot();
  void schedule_reboot();
  void on_legit_traffic();
  void schedule_legit_traffic();

  /// Largest minimum gap any authority imposes right now (virus's own
  /// floor or monitoring's forced wait).
  [[nodiscard]] SimTime effective_min_gap() const;
  /// True when the current budget window has messages left; when false,
  /// `resume_at` is set for aligned windows (reboot windows resume via
  /// the reboot event instead).
  [[nodiscard]] bool budget_available(SimTime now, SimTime& resume_at);
  [[nodiscard]] bool blocked_by_policy(SimTime now) const;

  SendingEnvironment env_;
  const VirusProfile* profile_;
  const phone::PhoneTable* phones_;
  phone::PhoneId host_;
  std::unique_ptr<Targeter> targeter_;

  bool started_ = false;
  bool running_ = false;
  std::uint64_t messages_sent_ = 0;

  SimTime last_send_ = SimTime::infinity();  // infinity = never sent
  bool has_sent_ = false;

  // Budget bookkeeping.
  std::uint32_t sent_in_window_ = 0;
  std::size_t targets_sent_in_window_ = 0;  // for one_pass_per_window
  std::int64_t current_window_index_ = -1;  // for kPerDayAligned
  bool waiting_for_reboot_ = false;

  des::EventHandle pending_attempt_;
  des::EventHandle pending_reboot_;
  des::EventHandle pending_legit_;
};

}  // namespace mvsim::virus
