#include "virus/targeting.h"

#include <stdexcept>

namespace mvsim::virus {

ContactListTargeter::ContactListTargeter(std::span<const PhoneId> contacts, rng::Stream& stream)
    : contacts_(contacts.begin(), contacts.end()), stream_(&stream) {
  stream_->shuffle(std::span<PhoneId>(contacts_));
}

std::vector<DialedRecipient> ContactListTargeter::next_targets(std::uint32_t count) {
  std::vector<DialedRecipient> out;
  if (contacts_.empty()) return out;
  // One message never addresses the same contact twice, so a single
  // message covers at most the whole contact list.
  std::uint32_t take = count;
  if (take > contacts_.size()) take = static_cast<std::uint32_t>(contacts_.size());
  out.reserve(take);
  for (std::uint32_t i = 0; i < take; ++i) {
    if (cursor_ == contacts_.size()) {
      stream_->shuffle(std::span<PhoneId>(contacts_));
      cursor_ = 0;
    }
    out.push_back(DialedRecipient{contacts_[cursor_++], true});
  }
  return out;
}

RandomDialTargeter::RandomDialTargeter(PhoneId self, PhoneId population, double valid_fraction,
                                       rng::Stream& stream)
    : self_(self), population_(population), valid_fraction_(valid_fraction), stream_(&stream) {
  if (population < 2) throw std::invalid_argument("RandomDialTargeter: population must be >= 2");
  if (!(valid_fraction > 0.0) || valid_fraction > 1.0) {
    throw std::invalid_argument("RandomDialTargeter: valid_fraction must be in (0, 1]");
  }
}

std::vector<DialedRecipient> RandomDialTargeter::next_targets(std::uint32_t count) {
  std::vector<DialedRecipient> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (!stream_->bernoulli(valid_fraction_)) {
      out.push_back(DialedRecipient{0, false});
      continue;
    }
    // Uniform over live subscribers other than the dialer itself.
    auto pick = static_cast<PhoneId>(stream_->uniform_index(population_ - 1));
    if (pick >= self_) ++pick;
    out.push_back(DialedRecipient{pick, true});
  }
  return out;
}

}  // namespace mvsim::virus
