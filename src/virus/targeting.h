// Target selection strategies (paper §4.1: "the propagation process can
// identify new target phones either by using the contact lists of
// infected phones or by randomly selecting mobile phone numbers").
#pragma once

#include <span>
#include <vector>

#include "net/message.h"
#include "rng/stream.h"

namespace mvsim::virus {

using net::DialedRecipient;
using net::PhoneId;

/// Common interface: produce the recipient list of the next message.
class Targeter {
 public:
  virtual ~Targeter() = default;
  /// Up to `count` recipients (fewer only if the source has none at all).
  [[nodiscard]] virtual std::vector<DialedRecipient> next_targets(std::uint32_t count) = 0;
  /// Number of distinct destinations the targeter can produce before it
  /// must repeat one (SIZE_MAX when effectively unbounded, e.g. random
  /// dialing). Used by one-pass-per-window viruses.
  [[nodiscard]] virtual std::size_t universe_size() const = 0;
};

/// Round-robin over a shuffled copy of the infected phone's contact
/// list, reshuffling after each full pass. The cycle repeats forever:
/// real MMS worms (CommWarrior) keep re-spamming the same contacts, and
/// the paper's plateau math (eventual acceptance 0.40) depends on every
/// contact receiving "enough" messages.
class ContactListTargeter final : public Targeter {
 public:
  ContactListTargeter(std::span<const PhoneId> contacts, rng::Stream& stream);

  [[nodiscard]] std::vector<DialedRecipient> next_targets(std::uint32_t count) override;
  [[nodiscard]] std::size_t universe_size() const override { return contacts_.size(); }

  [[nodiscard]] std::size_t contact_count() const { return contacts_.size(); }

 private:
  std::vector<PhoneId> contacts_;
  std::size_t cursor_ = 0;
  rng::Stream* stream_;
};

/// Dials uniformly random numbers in the mobile prefix; a dialed number
/// is a live subscriber with probability `valid_fraction`, in which
/// case it maps to a uniformly random phone other than the sender.
class RandomDialTargeter final : public Targeter {
 public:
  RandomDialTargeter(PhoneId self, PhoneId population, double valid_fraction,
                     rng::Stream& stream);

  [[nodiscard]] std::vector<DialedRecipient> next_targets(std::uint32_t count) override;
  [[nodiscard]] std::size_t universe_size() const override { return SIZE_MAX; }

 private:
  PhoneId self_;
  PhoneId population_;
  double valid_fraction_;
  rng::Stream* stream_;
};

}  // namespace mvsim::virus
