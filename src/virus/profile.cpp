#include "virus/profile.h"

namespace mvsim::virus {

ValidationErrors VirusProfile::validate() const {
  ValidationErrors errors("VirusProfile(" + name + ")");
  errors.require(!name.empty(), "name must not be empty");
  if (targeting == TargetingMode::kRandomDialing) {
    errors.require(valid_number_fraction > 0.0 && valid_number_fraction <= 1.0,
                   "valid_number_fraction must be in (0, 1]");
  }
  errors.require(min_message_gap >= SimTime::zero(), "min_message_gap must be >= 0");
  errors.require(extra_gap_mean >= SimTime::zero(), "extra_gap_mean must be >= 0");
  errors.require(min_message_gap + extra_gap_mean > SimTime::zero(),
                 "gap floor and jitter cannot both be zero (zero-delay send loop)");
  errors.require(recipients_per_message >= 1, "recipients_per_message must be >= 1");
  if (budget != BudgetKind::kUnlimited) {
    errors.require(budget_limit >= 1, "budget_limit must be >= 1");
    errors.require(budget_window > SimTime::zero(), "budget_window must be positive");
  }
  errors.require(dormancy >= SimTime::zero(), "dormancy must be >= 0");
  if (align_first_burst) {
    errors.require(budget == BudgetKind::kPerDayAligned,
                   "align_first_burst requires a kPerDayAligned budget");
  }
  if (one_pass_per_window) {
    errors.require(budget == BudgetKind::kPerDayAligned,
                   "one_pass_per_window requires a kPerDayAligned budget");
    errors.require(targeting == TargetingMode::kContactList,
                   "one_pass_per_window requires contact-list targeting");
  }
  if (trigger == SendTrigger::kPiggyback) {
    errors.require(legit_traffic_gap_mean > SimTime::zero(),
                   "legit_traffic_gap_mean must be positive for piggyback viruses");
  }
  return errors;
}

VirusProfile virus1() {
  VirusProfile p;
  p.name = "Virus 1";
  p.targeting = TargetingMode::kContactList;
  p.min_message_gap = SimTime::minutes(30.0);
  p.extra_gap_mean = SimTime::minutes(5.0);
  p.recipients_per_message = 1;
  p.budget = BudgetKind::kPerReboot;
  p.budget_limit = 30;
  p.budget_window = SimTime::hours(24.0);  // mean time between reboots
  p.dormancy = SimTime::zero();
  p.trigger = SendTrigger::kActive;
  return p;
}

VirusProfile virus2() {
  VirusProfile p;
  p.name = "Virus 2";
  p.targeting = TargetingMode::kContactList;
  p.min_message_gap = SimTime::minutes(1.0);
  p.extra_gap_mean = SimTime::seconds(10.0);
  p.recipients_per_message = 100;
  p.budget = BudgetKind::kPerDayAligned;
  p.budget_limit = 30;
  p.budget_window = SimTime::hours(24.0);
  p.align_first_burst = true;
  p.one_pass_per_window = true;
  p.dormancy = SimTime::zero();
  p.trigger = SendTrigger::kActive;
  return p;
}

VirusProfile virus3() {
  VirusProfile p;
  p.name = "Virus 3";
  p.targeting = TargetingMode::kRandomDialing;
  p.valid_number_fraction = 1.0 / 3.0;
  p.min_message_gap = SimTime::minutes(1.0);
  p.extra_gap_mean = SimTime::seconds(10.0);
  p.recipients_per_message = 1;
  p.budget = BudgetKind::kUnlimited;
  p.dormancy = SimTime::zero();
  p.trigger = SendTrigger::kActive;
  return p;
}

VirusProfile virus4() {
  VirusProfile p;
  p.name = "Virus 4";
  p.targeting = TargetingMode::kContactList;
  p.min_message_gap = SimTime::minutes(30.0);
  p.extra_gap_mean = SimTime::zero();  // the legit-traffic process supplies the randomness
  p.recipients_per_message = 1;
  p.budget = BudgetKind::kUnlimited;
  p.dormancy = SimTime::hours(1.0);
  p.trigger = SendTrigger::kPiggyback;
  p.legit_traffic_gap_mean = SimTime::hours(2.0);
  return p;
}

std::array<VirusProfile, 4> paper_virus_suite() {
  return {virus1(), virus2(), virus3(), virus4()};
}

}  // namespace mvsim::virus
