// Parameterized virus behavior (paper §4.1-§4.2).
//
// VirusProfile captures every knob the paper's "highly parameterized"
// Möbius model exposes for the attacker: how targets are picked, how
// often messages go out, how many recipients per message, what sending
// budget the virus imposes on itself, dormancy, and whether sending is
// active or piggybacks on legitimate traffic. The four illustrative
// viruses of §4.2 are provided as presets.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "util/sim_time.h"
#include "util/validation.h"

namespace mvsim::virus {

/// How the virus picks its next victims (§4.1: contact lists of
/// infected phones, or randomly selected mobile phone numbers).
enum class TargetingMode : std::uint8_t {
  kContactList,
  kRandomDialing,
};

/// Self-imposed throttle on outgoing infected messages.
enum class BudgetKind : std::uint8_t {
  kUnlimited,       ///< Virus 3: no daily limit
  kPerReboot,       ///< Virus 1: N messages between phone reboots
  kPerDayAligned,   ///< Virus 2: N messages per 24-hour period (period
                    ///< boundaries shared by all phones, which produces
                    ///< the paper's step-like Virus 2 curve)
};

/// When the virus actually transmits.
enum class SendTrigger : std::uint8_t {
  kActive,     ///< sends on its own timer as soon as allowed
  kPiggyback,  ///< Virus 4: rides the phone's legitimate MMS activity
};

struct VirusProfile {
  std::string name = "custom";

  TargetingMode targeting = TargetingMode::kContactList;
  /// Fraction of randomly dialed numbers that are live subscribers
  /// (paper: one third for the French numbering plan). Only used when
  /// targeting == kRandomDialing.
  double valid_number_fraction = 1.0 / 3.0;

  /// Minimum wait the virus observes between consecutive messages.
  SimTime min_message_gap = SimTime::minutes(30.0);
  /// Mean of the random extra wait added on top of the minimum gap
  /// ("at least 30 minutes" is a floor, not a cadence). Exponential.
  SimTime extra_gap_mean = SimTime::minutes(5.0);

  /// Maximum recipients addressed by one MMS (Virus 2: up to 100).
  std::uint32_t recipients_per_message = 1;

  BudgetKind budget = BudgetKind::kUnlimited;
  /// Message allowance per budget window (ignored for kUnlimited).
  std::uint32_t budget_limit = 30;
  /// Window length for kPerDayAligned; also the mean time between
  /// reboots for kPerReboot (paper: ~24 hours, exponential).
  SimTime budget_window = SimTime::hours(24.0);
  /// kPerDayAligned only: a newly infected phone holds its first burst
  /// until the start of the next aligned period. This reproduces the
  /// paper's Virus 2 dynamics — "those 30 messages are all sent very
  /// near the start of each 24-hour period", which makes each period
  /// one infection generation and yields the step-like curve of Fig. 1.
  bool align_first_burst = false;
  /// kPerDayAligned + kContactList only: within one period the virus
  /// addresses each contact at most once, pausing until the next
  /// period once the whole list is covered. Without this, a
  /// multi-recipient burst re-spams every contact ~30x per day and the
  /// consent curve saturates within two days — incompatible with the
  /// paper's 10-day Virus 2 time scale and with Figure 3, where a
  /// 95%-accurate filter visibly starves the spread (only possible if
  /// per-contact message volume is ~1/day).
  bool one_pass_per_window = false;

  /// Time between infection and the first propagation attempt
  /// (Virus 4: one hour; zero for the others, which begin
  /// "immediately").
  SimTime dormancy = SimTime::zero();

  SendTrigger trigger = SendTrigger::kActive;
  /// Mean gap between legitimate MMS events the piggybacking virus
  /// rides (paper gives no number; see DESIGN.md substitutions).
  SimTime legit_traffic_gap_mean = SimTime::hours(2.0);

  [[nodiscard]] ValidationErrors validate() const;
};

/// Virus 1 (§4.2): contact list, >=30 min gap, single recipient,
/// 30 messages per reboot, immediate start. CommWarrior-like.
[[nodiscard]] VirusProfile virus1();

/// Virus 2: contact list, >=1 min gap, up to 100 recipients/message,
/// 30 messages per aligned 24-hour period — aggressive and bursty.
[[nodiscard]] VirusProfile virus2();

/// Virus 3: random dialing (1/3 valid), >=1 min gap, single recipient,
/// no budget — the rapid spreader.
[[nodiscard]] VirusProfile virus3();

/// Virus 4: stealthy — 1 h dormancy, piggybacks on legitimate traffic,
/// >=30 min gap, contact list, single recipient.
[[nodiscard]] VirusProfile virus4();

/// The standard suite in paper order {virus1..virus4}.
[[nodiscard]] std::array<VirusProfile, 4> paper_virus_suite();

}  // namespace mvsim::virus
