#include "virus/sending_process.h"

#include <cmath>
#include <stdexcept>

namespace mvsim::virus {

SendingProcess::SendingProcess(const SendingEnvironment& env, const VirusProfile& profile,
                               const phone::PhoneTable& phones, phone::PhoneId host,
                               std::unique_ptr<Targeter> targeter)
    : env_(env), profile_(&profile), phones_(&phones), host_(host),
      targeter_(std::move(targeter)) {
  if (env_.scheduler == nullptr || env_.virus_stream == nullptr || env_.gateway == nullptr) {
    throw std::invalid_argument("SendingProcess: environment is incomplete");
  }
  if (!targeter_) throw std::invalid_argument("SendingProcess: null targeter");
  profile.validate().throw_if_invalid();
}

SendingProcess::~SendingProcess() { stop(); }

void SendingProcess::start() {
  if (started_) throw std::logic_error("SendingProcess::start called twice");
  started_ = true;
  running_ = true;

  if (profile_->budget == BudgetKind::kPerReboot) schedule_reboot();

  if (profile_->trigger == SendTrigger::kPiggyback) {
    // The virus only ever transmits alongside the phone's legitimate
    // MMS activity, and not before the dormancy period has elapsed.
    pending_legit_ = env_.scheduler->schedule_after(
        profile_->dormancy + env_.virus_stream->exponential(profile_->legit_traffic_gap_mean),
        des::EventType::kVirusLegitTraffic, [this] { on_legit_traffic(); });
  } else {
    SimTime first = env_.scheduler->now() + profile_->dormancy;
    if (profile_->align_first_burst) {
      // Virus 2 semantics: bursts happen at the start of each aligned
      // period, so a phone infected mid-period waits for the next
      // boundary before its first burst.
      double windows = std::ceil(first / profile_->budget_window);
      first = max(first, profile_->budget_window * windows);
    }
    schedule_attempt_at(first);
  }
}

void SendingProcess::stop() {
  if (!running_) return;
  running_ = false;
  env_.scheduler->cancel(pending_attempt_);
  env_.scheduler->cancel(pending_reboot_);
  env_.scheduler->cancel(pending_legit_);
}

SimTime SendingProcess::effective_min_gap() const {
  SimTime gap = profile_->min_message_gap;
  const SimTime now = env_.scheduler->now();
  for (net::OutgoingMmsPolicy* policy : env_.policies) {
    gap = max(gap, policy->forced_min_gap(host_, now));
  }
  return gap;
}

bool SendingProcess::blocked_by_policy(SimTime now) const {
  for (net::OutgoingMmsPolicy* policy : env_.policies) {
    if (policy->is_blocked(host_, now)) return true;
  }
  return false;
}

bool SendingProcess::budget_available(SimTime now, SimTime& resume_at) {
  switch (profile_->budget) {
    case BudgetKind::kUnlimited:
      return true;
    case BudgetKind::kPerReboot:
      if (sent_in_window_ < profile_->budget_limit) return true;
      resume_at = SimTime::infinity();  // resumed by the reboot event
      return false;
    case BudgetKind::kPerDayAligned: {
      auto window = static_cast<std::int64_t>(std::floor(now / profile_->budget_window));
      if (window != current_window_index_) {
        current_window_index_ = window;
        sent_in_window_ = 0;
        targets_sent_in_window_ = 0;
      }
      resume_at = profile_->budget_window * static_cast<double>(window + 1);
      if (sent_in_window_ >= profile_->budget_limit) return false;
      if (profile_->one_pass_per_window &&
          targets_sent_in_window_ >= targeter_->universe_size()) {
        // Whole contact list covered this period: wait for the next one.
        return false;
      }
      return true;
    }
  }
  return true;
}

void SendingProcess::schedule_attempt_at(SimTime at) {
  env_.scheduler->cancel(pending_attempt_);
  pending_attempt_ = env_.scheduler->schedule_at(max(at, env_.scheduler->now()),
                                                 des::EventType::kVirusSend,
                                                 [this] { attempt_send(); });
}

void SendingProcess::schedule_next_active_attempt() {
  SimTime gap = effective_min_gap();
  if (profile_->extra_gap_mean > SimTime::zero()) {
    gap += env_.virus_stream->exponential(profile_->extra_gap_mean);
  }
  schedule_attempt_at(env_.scheduler->now() + gap);
}

void SendingProcess::attempt_send() {
  if (!running_) return;
  const SimTime now = env_.scheduler->now();

  // A patch on an infected phone halts dissemination (paper §3.2);
  // a blacklisted phone has its MMS service cut (paper §3.3).
  if (phones_->propagation_stopped(host_) || blocked_by_policy(now)) {
    stop();
    return;
  }

  // Monitoring may have imposed a forced wait after this attempt was
  // scheduled; re-check the gap against the *current* policy state.
  if (has_sent_) {
    SimTime earliest = last_send_ + effective_min_gap();
    if (now < earliest) {
      schedule_attempt_at(earliest);
      return;
    }
  }

  SimTime resume_at = SimTime::infinity();
  if (!budget_available(now, resume_at)) {
    if (profile_->budget == BudgetKind::kPerReboot) {
      waiting_for_reboot_ = true;  // the reboot event will resume us
    } else {
      schedule_attempt_at(resume_at);
    }
    return;
  }

  send_now();
  if (running_) schedule_next_active_attempt();
}

void SendingProcess::send_now() {
  std::uint32_t request = profile_->recipients_per_message;
  if (profile_->one_pass_per_window) {
    // Spread one pass over the contact list across the period's whole
    // message budget (the paper's Virus 2 sends its full allotment of
    // 30 messages each day, so a message carries ~list/30 recipients,
    // "up to 100" for hub phones), and never re-address a contact
    // within the period.
    std::size_t universe = targeter_->universe_size();
    std::size_t remaining =
        universe > targets_sent_in_window_ ? universe - targets_sent_in_window_ : 0;
    std::uint32_t budget_left =
        profile_->budget_limit > sent_in_window_ ? profile_->budget_limit - sent_in_window_ : 1;
    auto per_message = static_cast<std::uint32_t>(
        (remaining + budget_left - 1) / std::max<std::uint32_t>(budget_left, 1));
    request = std::clamp<std::uint32_t>(per_message, 1, request);
    if (remaining < request) request = static_cast<std::uint32_t>(remaining);
    if (request == 0) return;  // defensive; budget_available gates this
  }
  auto recipients = targeter_->next_targets(request);
  if (recipients.empty()) {
    // A phone with an empty contact list has nobody to infect; the
    // process stays alive only in the sense that it never sends.
    stop();
    return;
  }
  const std::size_t message_recipient_count = recipients.size();
  net::MmsMessage message;
  message.sender = host_;
  message.recipients = std::move(recipients);
  message.infected = true;
  env_.gateway->submit(std::move(message));

  last_send_ = env_.scheduler->now();
  has_sent_ = true;
  ++messages_sent_;
  ++sent_in_window_;
  targets_sent_in_window_ += message_recipient_count;
}

void SendingProcess::schedule_reboot() {
  // "The time between phone reboots is on average approximately 24
  // hours": modeled as uniform in [0.75, 1.25] x the window. A phone's
  // reboot cycle is routine (nightly charge, habitual power-cycling),
  // not memoryless — and a heavy-tailed cycle would let the per-reboot
  // budget refill several times in one day, which the paper's
  // "30 messages per day"-style prose clearly excludes.
  pending_reboot_ = env_.scheduler->schedule_after(
      env_.virus_stream->uniform(profile_->budget_window * 0.75, profile_->budget_window * 1.25),
      des::EventType::kVirusReboot, [this] { on_reboot(); });
}

void SendingProcess::on_reboot() {
  if (!running_) return;
  if (env_.trace != nullptr) {
    trace::Event event;
    event.time = env_.scheduler->now();
    event.kind = trace::EventKind::kReboot;
    event.phone = host_;
    env_.trace->record(std::move(event));
  }
  sent_in_window_ = 0;
  if (waiting_for_reboot_) {
    waiting_for_reboot_ = false;
    // Resume sending, still honoring the inter-message gap.
    SimTime earliest = has_sent_ ? last_send_ + effective_min_gap() : env_.scheduler->now();
    schedule_attempt_at(earliest);
  }
  schedule_reboot();
}

void SendingProcess::schedule_legit_traffic() {
  pending_legit_ = env_.scheduler->schedule_after(
      env_.virus_stream->exponential(profile_->legit_traffic_gap_mean),
      des::EventType::kVirusLegitTraffic, [this] { on_legit_traffic(); });
}

void SendingProcess::on_legit_traffic() {
  if (!running_) return;
  const SimTime now = env_.scheduler->now();

  if (phones_->propagation_stopped(host_) || blocked_by_policy(now)) {
    stop();
    return;
  }

  // Ride this legitimate message only if the virus's gap (and any
  // monitoring-forced wait) has elapsed and budget remains; otherwise
  // skip it and wait for the next legitimate send.
  bool gap_ok = !has_sent_ || now >= last_send_ + effective_min_gap();
  SimTime resume_at = SimTime::infinity();
  bool budget_ok = budget_available(now, resume_at);
  if (gap_ok && budget_ok) send_now();
  if (running_) schedule_legit_traffic();
}

}  // namespace mvsim::virus
