// Profile document IO: the `mvsim run --profile` JSON and the
// `mvsim profile-analyze` "where the time goes" report.
//
// A profile document is a self-describing view over the experiment's
// merged metrics snapshot: run identity, the three phase histograms,
// and one entry per event type with count / total / mean / estimated
// p50/p90 / share-of-event-time. Schema (profile_version 1, only
// grows):
//   { "type": "mvsim-profile", "profile_version": 1,
//     "scenario": ..., "replications": N, "threads": T,
//     "master_seed": S,
//     "replication_wall_ms": <sum over replications>,
//     "event_wall_ms": <sum over event types>,
//     "phases": { "<name>": {count,total_ms,mean_ms,p50_ms,p90_ms,max_ms} },
//     "shard_windows": {count,total_us,mean_us,p50_us,p90_us,max_us},
//        (sharded runs only; omitted when no shard windows were timed)
//     "events": [ {"name","count","total_ms","mean_us","p50_us",
//                  "p90_us","max_us","share"} ... sorted by total desc ] }
#pragma once

#include <iosfwd>
#include <string>

#include "metrics/registry.h"
#include "metrics/report.h"
#include "util/json.h"

namespace mvsim::prof {

/// Estimated quantile (q in [0,1]) from a histogram's buckets, by
/// linear interpolation inside the winning bucket; the overflow bucket
/// reports the observed max. 0 for an empty histogram. An estimate,
/// not an exact order statistic — fine for a "where the time goes"
/// table, and cheap enough to compute per report.
[[nodiscard]] double histogram_quantile(const metrics::HistogramSample& histogram, double q);

/// Builds the profile document from an experiment's merged snapshot
/// (must contain the `prof.*` series, i.e. the run had profiling on).
/// Throws std::invalid_argument when the snapshot has no profile data.
[[nodiscard]] json::Value profile_to_json(const metrics::ReportInfo& info,
                                          const metrics::Snapshot& snapshot);

/// Parses a profile document produced by profile_to_json (validates
/// the "type" marker and version). Throws std::runtime_error on
/// malformed input.
[[nodiscard]] json::Value read_profile_file(const std::string& path);

/// The human-readable top-N table: phases, then event types sorted by
/// total time descending (top_n <= 0 prints all), then the coverage
/// line (event time as a fraction of the run phase).
void write_profile_report(const json::Value& profile, std::ostream& out, int top_n = 0);

}  // namespace mvsim::prof
