#include "prof/profile_io.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "prof/profiler.h"

namespace mvsim::prof {

namespace {

constexpr int kProfileVersion = 1;

/// Shared histogram summary fields; `unit` suffixes the keys so the
/// document reads without a legend ("total_ms", "p90_us", ...).
void set_histogram_summary(json::Object& out, const metrics::HistogramSample& h,
                           const char* unit) {
  auto key = [unit](const char* stem) { return std::string(stem) + "_" + unit; };
  out.set("count", json::Value(h.count));
  out.set(key("total"), json::Value(h.sum));
  out.set(key("mean"), json::Value(h.count > 0 ? h.sum / static_cast<double>(h.count) : 0.0));
  out.set(key("p50"), json::Value(histogram_quantile(h, 0.50)));
  out.set(key("p90"), json::Value(histogram_quantile(h, 0.90)));
  out.set(key("max"), json::Value(h.max));
}

double number_or_zero(const json::Object& object, const std::string& key) {
  const json::Value* value = object.find(key);
  return value != nullptr && value->is_number() ? value->as_number() : 0.0;
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

}  // namespace

double histogram_quantile(const metrics::HistogramSample& histogram, double q) {
  if (histogram.count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(histogram.count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < histogram.bucket_counts.size(); ++i) {
    const std::uint64_t in_bucket = histogram.bucket_counts[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      if (i >= histogram.upper_bounds.size()) return histogram.max;  // overflow bucket
      const double lower = i == 0 ? std::min(histogram.min, histogram.upper_bounds[0])
                                  : histogram.upper_bounds[i - 1];
      const double upper = histogram.upper_bounds[i];
      const double into = (rank - static_cast<double>(cumulative)) /
                          static_cast<double>(in_bucket);
      return lower + (upper - lower) * std::clamp(into, 0.0, 1.0);
    }
    cumulative += in_bucket;
  }
  return histogram.max;
}

json::Value profile_to_json(const metrics::ReportInfo& info,
                            const metrics::Snapshot& snapshot) {
  struct EventRow {
    const char* name;
    const metrics::HistogramSample* histogram;
  };
  std::vector<EventRow> rows;
  double event_wall_ms = 0.0;
  for (std::size_t i = 0; i < des::kEventTypeCount; ++i) {
    const des::EventType type = static_cast<des::EventType>(i);
    const metrics::HistogramSample* h =
        snapshot.find_histogram(event_metric_name(type));
    if (h == nullptr) continue;
    rows.push_back({des::to_string(type), h});
    event_wall_ms += h->sum / 1000.0;  // histogram is microseconds
  }
  if (rows.empty()) {
    throw std::invalid_argument(
        "profile_to_json: snapshot has no prof.* series (was the run profiled?)");
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const EventRow& a, const EventRow& b) {
                     return a.histogram->sum > b.histogram->sum;
                   });

  json::Object root;
  root.set("type", json::Value("mvsim-profile"));
  root.set("profile_version", json::Value(kProfileVersion));
  root.set("scenario", json::Value(info.scenario));
  root.set("replications", json::Value(info.replications));
  root.set("threads", json::Value(info.threads));
  root.set("master_seed", json::Value(info.master_seed));

  const metrics::HistogramSample* wall =
      snapshot.find_histogram("timing.replication_wall_ms");
  root.set("replication_wall_ms",
           wall != nullptr ? json::Value(wall->sum) : json::Value(nullptr));
  root.set("event_wall_ms", json::Value(event_wall_ms));

  json::Object phases;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const Phase phase = static_cast<Phase>(i);
    const metrics::HistogramSample* h = snapshot.find_histogram(phase_metric_name(phase));
    if (h == nullptr) continue;
    json::Object entry;
    set_histogram_summary(entry, *h, "ms");
    phases.set(to_string(phase), json::Value(std::move(entry)));
  }
  root.set("phases", json::Value(std::move(phases)));

  // Sharded runs only: the per-shard lockstep-window distribution. A
  // serial profile's histogram exists but is empty — omit it there.
  if (const metrics::HistogramSample* shard_windows =
          snapshot.find_histogram("prof.shard.window_us");
      shard_windows != nullptr && shard_windows->count > 0) {
    json::Object entry;
    set_histogram_summary(entry, *shard_windows, "us");
    root.set("shard_windows", json::Value(std::move(entry)));
  }

  json::Array events;
  for (const EventRow& row : rows) {
    const metrics::HistogramSample& h = *row.histogram;
    json::Object entry;
    entry.set("name", json::Value(row.name));
    entry.set("count", json::Value(h.count));
    entry.set("total_ms", json::Value(h.sum / 1000.0));
    entry.set("mean_us",
              json::Value(h.count > 0 ? h.sum / static_cast<double>(h.count) : 0.0));
    entry.set("p50_us", json::Value(histogram_quantile(h, 0.50)));
    entry.set("p90_us", json::Value(histogram_quantile(h, 0.90)));
    entry.set("max_us", json::Value(h.max));
    entry.set("share",
              json::Value(event_wall_ms > 0.0 ? (h.sum / 1000.0) / event_wall_ms : 0.0));
    events.emplace_back(std::move(entry));
  }
  root.set("events", json::Value(std::move(events)));
  return json::Value(std::move(root));
}

json::Value read_profile_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot open profile file '" + path + "'");
  std::ostringstream buffer;
  buffer << file.rdbuf();
  json::Value doc = json::parse(buffer.str());
  const json::Object& root = doc.as_object();
  const json::Value* type = root.find("type");
  if (type == nullptr || !type->is_string() || type->as_string() != "mvsim-profile") {
    throw std::runtime_error("'" + path + "' is not an mvsim profile (missing type marker)");
  }
  if (root.at("profile_version").as_number() > kProfileVersion) {
    throw std::runtime_error("'" + path + "' uses a newer profile_version than this build");
  }
  return doc;
}

void write_profile_report(const json::Value& profile, std::ostream& out, int top_n) {
  const json::Object& root = profile.as_object();
  out << "profile: " << root.at("scenario").as_string() << " ("
      << root.at("replications").as_number() << " replication(s), "
      << root.at("threads").as_number() << " thread(s))\n";

  const json::Object& phases = root.at("phases").as_object();
  if (!phases.empty()) {
    out << "-- phases (wall-clock across replications) --\n";
    for (const auto& [name, value] : phases.entries()) {
      const json::Object& phase = value.as_object();
      char line[160];
      std::snprintf(line, sizeof line, "  %-10s %10.2f ms total, %8.2f ms mean\n",
                    name.c_str(), number_or_zero(phase, "total_ms"),
                    number_or_zero(phase, "mean_ms"));
      out << line;
    }
  }

  if (const json::Value* shard_windows = root.find("shard_windows");
      shard_windows != nullptr && shard_windows->is_object()) {
    const json::Object& windows = shard_windows->as_object();
    const double mean = number_or_zero(windows, "mean_us");
    const double max = number_or_zero(windows, "max_us");
    out << "-- shard windows (per-shard lockstep window wall-clock) --\n";
    char line[200];
    std::snprintf(line, sizeof line,
                  "  %10.0f windows, %8.2f us p50, %8.2f us p90, %8.2f us max, "
                  "imbalance %.2fx\n",
                  number_or_zero(windows, "count"), number_or_zero(windows, "p50_us"),
                  number_or_zero(windows, "p90_us"), max, mean > 0.0 ? max / mean : 0.0);
    out << line;
  }

  const json::Array& events = root.at("events").as_array();
  const double event_wall_ms = number_or_zero(root, "event_wall_ms");
  out << "-- where the time goes (event loop) --\n";
  out << "  event type                     count   total ms  share    mean us     p90 us\n";
  int printed = 0;
  for (const json::Value& value : events) {
    if (top_n > 0 && printed >= top_n) break;
    const json::Object& event = value.as_object();
    if (event.at("count").as_number() == 0.0 && event_wall_ms > 0.0) continue;
    char line[200];
    std::snprintf(line, sizeof line, "  %-26s %10.0f %10.2f %5.1f%% %10.2f %10.2f\n",
                  event.at("name").as_string().c_str(), event.at("count").as_number(),
                  number_or_zero(event, "total_ms"), 100.0 * number_or_zero(event, "share"),
                  number_or_zero(event, "mean_us"), number_or_zero(event, "p90_us"));
    out << line;
    ++printed;
  }
  // Event time is a decomposition of the run phase (the event loop),
  // not of the whole replication (build dominates small runs); fall
  // back to replication wall-clock for profiles without phase data.
  const json::Value* run_phase = phases.find("run");
  double denominator = 0.0;
  const char* denominator_label = "run-phase";
  if (run_phase != nullptr && run_phase->is_object()) {
    denominator = number_or_zero(run_phase->as_object(), "total_ms");
  }
  if (denominator <= 0.0) {
    const json::Value* wall = root.find("replication_wall_ms");
    if (wall != nullptr && wall->is_number()) denominator = wall->as_number();
    denominator_label = "replication";
  }
  if (denominator > 0.0) {
    out << "coverage: " << fmt(event_wall_ms, 2) << " ms attributed to events of "
        << fmt(denominator, 2) << " ms " << denominator_label << " wall-clock ("
        << fmt(100.0 * event_wall_ms / denominator, 1) << "%)\n";
  }
}

}  // namespace mvsim::prof
