// Hot-path profiler: per-event-type and per-phase wall-clock
// attribution for one replication.
//
// One Profiler belongs to one replication (same ownership discipline
// as metrics::Registry: per-thread, no locks). It implements
// des::EventTimer, so attaching it to a Scheduler times every executed
// event and attributes the cost to the event's type; ScopedPhase
// attributes coarser spans (simulation build, event loop, result
// collection). All measurements land in metrics::Registry histograms
// under `prof.*` names, which buys three properties for free:
//   * snapshots merge commutatively across replications (the runner's
//     replication-order merge stays thread-count-invariant in
//     structure; the VALUES are wall-clock and machine-dependent);
//   * profiles ride the existing `--metrics` report and schema;
//   * the profile JSON writer (profile_io.h) is just a view over a
//     Snapshot, so `mvsim profile-analyze` works on merged data.
//
// Profiling is OBSERVATION-ONLY: it reads clocks and nothing else, so
// fixed-seed runs are bit-identical with profiling on or off (pinned
// by tests/golden_test.cpp).
#pragma once

#include <array>
#include <chrono>
#include <cstddef>

#include "des/event_type.h"
#include "metrics/registry.h"

namespace mvsim::prof {

/// Coarse replication phases timed by the runner.
enum class Phase : std::uint8_t { kBuild = 0, kRun, kCollect };

inline constexpr std::size_t kPhaseCount = static_cast<std::size_t>(Phase::kCollect) + 1;

/// Stable name, used to build the `prof.phase.<name>_ms` metric.
[[nodiscard]] inline const char* to_string(Phase phase) {
  switch (phase) {
    case Phase::kBuild: return "build";
    case Phase::kRun: return "run";
    case Phase::kCollect: return "collect";
  }
  return "unknown";
}

/// `prof.event.<type>` histogram name for an event type.
[[nodiscard]] const char* event_metric_name(des::EventType type);
/// `prof.phase.<phase>_ms` histogram name for a phase.
[[nodiscard]] const char* phase_metric_name(Phase phase);

class Profiler final : public des::EventTimer {
 public:
  /// Eagerly registers every `prof.event.*` and `prof.phase.*`
  /// histogram, so a snapshot always carries the full fixed catalogue
  /// (zero counts included) and merged profiles never hit a
  /// missing-name asymmetry.
  Profiler();

  /// des::EventTimer: one executed scheduler event of `type` took
  /// `micros` microseconds of wall-clock.
  void record_event(des::EventType type, double micros) override;

  /// One completed phase span of `millis` milliseconds.
  void record_phase(Phase phase, double millis);

  /// Sharded engine only: one shard finished one lockstep window in
  /// `micros` microseconds of wall-clock. The `prof.shard.window_us`
  /// distribution exposes window imbalance — a wide spread means some
  /// windows (i.e. some shards) consistently straggle behind the
  /// barrier. Serial profiles keep the histogram at zero count.
  void record_shard_window(double micros);

  /// The profile so far, as ordinary metrics (merge with other
  /// replications' snapshots freely — histogram merging is commutative
  /// and associative).
  [[nodiscard]] metrics::Snapshot snapshot() const { return registry_.snapshot(); }

 private:
  metrics::Registry registry_;
  std::array<metrics::Histogram*, des::kEventTypeCount> event_histograms_{};
  std::array<metrics::Histogram*, kPhaseCount> phase_histograms_{};
  metrics::Histogram* shard_window_histogram_ = nullptr;
};

/// RAII phase timer: records the elapsed wall-clock into `profiler`
/// on destruction. Null profiler = no-op (so call sites need no
/// branching). Scopes nest freely — each scope accounts its own full
/// span, so an outer scope's total includes its inner scopes' time.
class ScopedPhase {
 public:
  ScopedPhase(Profiler* profiler, Phase phase)
      : profiler_(profiler), phase_(phase), started_(std::chrono::steady_clock::now()) {}
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;
  ~ScopedPhase() {
    if (profiler_ == nullptr) return;
    profiler_->record_phase(
        phase_, std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                          started_)
                    .count());
  }

 private:
  Profiler* profiler_;
  Phase phase_;
  std::chrono::steady_clock::time_point started_;
};

}  // namespace mvsim::prof
