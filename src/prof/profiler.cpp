#include "prof/profiler.h"

#include <span>

namespace mvsim::prof {

namespace {

// Bucket bounds are fixed so profiles from any two runs merge
// structurally (the values themselves are machine-dependent).
// Per-event durations are microseconds: most events are sub-10us, a
// slow delivery fan-out can reach milliseconds.
constexpr std::array<double, 8> kEventMicrosBounds = {0.25, 1.0,   4.0,    16.0,
                                                      64.0, 256.0, 1024.0, 8192.0};
// Phase spans are milliseconds, same scale as timing.replication_wall_ms.
constexpr std::array<double, 7> kPhaseMsBounds = {1.0,   5.0,    25.0,   100.0,
                                                  500.0, 2500.0, 10000.0};
// Shard-window execution spans are microseconds: a window is tens of
// events on a quiet shard, tens of thousands on a saturated one.
constexpr std::array<double, 7> kShardWindowMicrosBounds = {10.0,    100.0,     1000.0, 10000.0,
                                                            100000.0, 1000000.0, 10000000.0};

constexpr const char* kShardWindowMetricName = "prof.shard.window_us";

constexpr const char* kEventMetricNames[des::kEventTypeCount] = {
    "prof.event.generic",
    "prof.event.seed_infection",
    "prof.event.phone_read",
    "prof.event.virus_send",
    "prof.event.virus_legit_traffic",
    "prof.event.virus_reboot",
    "prof.event.message_delivery",
    "prof.event.bluetooth_scan",
    "prof.event.mobility_move",
    "prof.event.response_activation",
    "prof.event.response_patch",
    "prof.event.response_tick",
    "prof.event.sample",
};

constexpr const char* kPhaseMetricNames[kPhaseCount] = {
    "prof.phase.build_ms",
    "prof.phase.run_ms",
    "prof.phase.collect_ms",
};

}  // namespace

const char* event_metric_name(des::EventType type) {
  return kEventMetricNames[static_cast<std::size_t>(type)];
}

const char* phase_metric_name(Phase phase) {
  return kPhaseMetricNames[static_cast<std::size_t>(phase)];
}

Profiler::Profiler() {
  for (std::size_t i = 0; i < des::kEventTypeCount; ++i) {
    event_histograms_[i] = &registry_.histogram(kEventMetricNames[i], kEventMicrosBounds);
  }
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    phase_histograms_[i] = &registry_.histogram(kPhaseMetricNames[i], kPhaseMsBounds);
  }
  shard_window_histogram_ = &registry_.histogram(kShardWindowMetricName, kShardWindowMicrosBounds);
}

void Profiler::record_event(des::EventType type, double micros) {
  event_histograms_[static_cast<std::size_t>(type)]->record(micros);
}

void Profiler::record_phase(Phase phase, double millis) {
  phase_histograms_[static_cast<std::size_t>(phase)]->record(millis);
}

void Profiler::record_shard_window(double micros) { shard_window_histogram_->record(micros); }

}  // namespace mvsim::prof
