#include "des/sampler.h"

#include <stdexcept>

namespace mvsim::des {

PeriodicSampler::PeriodicSampler(Scheduler& scheduler, SimTime period, SimTime horizon,
                                 Probe probe)
    : scheduler_(&scheduler), period_(period), horizon_(horizon), probe_(std::move(probe)) {
  if (!(period > SimTime::zero())) {
    throw std::invalid_argument("PeriodicSampler: period must be positive");
  }
  if (!horizon.is_nonnegative()) {
    throw std::invalid_argument("PeriodicSampler: horizon must be nonnegative");
  }
  if (!probe_) throw std::invalid_argument("PeriodicSampler: empty probe");
  samples_.reserve(static_cast<std::size_t>(horizon / period) + 2);
  scheduler_->schedule_at(scheduler_->now(), EventType::kSample, [this] { take_sample(); });
}

void PeriodicSampler::take_sample() {
  samples_.emplace_back(scheduler_->now(), probe_());
  SimTime next = scheduler_->now() + period_;
  if (next <= horizon_) {
    scheduler_->schedule_at(next, EventType::kSample, [this] { take_sample(); });
  }
}

}  // namespace mvsim::des
