// Discrete-event scheduler.
//
// This is the substrate that replaces the Möbius simulation solver used
// by the paper: a single-threaded event loop over a calendar queue
// (timing wheel) with arena-pooled event records and eager
// cancellation. Determinism guarantees:
//   * events fire in nondecreasing time order;
//   * events scheduled for the same instant fire in scheduling order
//     (FIFO tie-break via a monotone sequence number);
//   * cancellation is O(1) and never perturbs the order of the rest.
//
// Two queue implementations live behind the same contract (see
// QueueImpl): the calendar queue is the default hot path; the original
// binary heap with lazy cancellation is kept for one release as an A/B
// reference (`mvsim run --des-impl heap`) and as the oracle for the
// randomized differential test in des_test. Both fire bit-identical
// event orders; they differ only in cost and in *when* a cancelled
// event's storage is reclaimed (see cancelled_reclaimed_count()).
//
// Event storage: records live in an EventArena (chunked pool +
// freelist) and callbacks are EventFn (inline small-buffer storage), so
// in steady state scheduling an event performs zero heap allocations —
// see docs/architecture.md, "Scheduler internals & event lifetime".
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "des/calendar_queue.h"
#include "des/event_arena.h"
#include "des/event_fn.h"
#include "des/event_type.h"
#include "util/sim_time.h"

namespace mvsim::des {

/// Opaque handle to a scheduled event; used to cancel it.
///
/// Handles are generation-checked: a handle left over from an event
/// that already fired (or was cancelled) is safely ignored.
class EventHandle {
 public:
  EventHandle() = default;
  [[nodiscard]] bool valid() const { return id_ != 0; }

 private:
  friend class Scheduler;
  EventHandle(std::uint64_t id, std::uint64_t generation) : id_(id), generation_(generation) {}
  std::uint64_t id_ = 0;
  std::uint64_t generation_ = 0;
};

/// Which priority-queue structure backs the scheduler.
enum class QueueImpl : std::uint8_t {
  kWheel,  ///< calendar queue, eager cancellation (default)
  kHeap,   ///< binary heap, lazy cancellation (legacy A/B reference)
};

class Scheduler {
 public:
  using Callback = EventFn;

  explicit Scheduler(QueueImpl impl = QueueImpl::kWheel) : impl_(impl) {}
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] QueueImpl impl() const { return impl_; }

  /// Current simulation time. Starts at zero.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `fn` to run at absolute time `at` (must be >= now()).
  /// `type` tags the event for per-event-type profiling; it never
  /// affects ordering or results.
  ///
  /// The template overload constructs the callable directly inside the
  /// pooled event record (no intermediate EventFn, no buffer copy);
  /// the Callback overload accepts a pre-built EventFn.
  template <typename F, typename = std::enable_if_t<
                            !std::is_same_v<std::decay_t<F>, EventFn> &&
                            std::is_invocable_v<std::decay_t<F>&>>>
  EventHandle schedule_at(SimTime at, EventType type, F&& fn) {
    if (!(at >= now_)) throw_past_deadline(at);
    if constexpr (std::is_constructible_v<bool, const std::decay_t<F>&>) {
      if (!static_cast<bool>(fn)) throw_empty_callback();
    }
    const std::uint32_t id = arena_.allocate();
    EventRecord& rec = arena_[id];
    rec.fn.assign(std::forward<F>(fn));
    if (!rec.fn.is_inline()) ++heap_fallbacks_;
    return finish_schedule(rec, id, at, type);
  }
  EventHandle schedule_at(SimTime at, EventType type, Callback fn) {
    if (!(at >= now_)) throw_past_deadline(at);
    if (!fn) throw_empty_callback();
    if (!fn.is_inline()) ++heap_fallbacks_;
    const std::uint32_t id = arena_.allocate();
    EventRecord& rec = arena_[id];
    rec.fn = std::move(fn);
    return finish_schedule(rec, id, at, type);
  }
  template <typename F>
  EventHandle schedule_at(SimTime at, F&& fn) {
    return schedule_at(at, EventType::kGeneric, std::forward<F>(fn));
  }

  /// Schedule `fn` to run `delay` from now (delay must be >= 0).
  template <typename F>
  EventHandle schedule_after(SimTime delay, EventType type, F&& fn) {
    if (!delay.is_nonnegative()) throw_negative_delay(delay);
    return schedule_at(now_ + delay, type, std::forward<F>(fn));
  }
  template <typename F>
  EventHandle schedule_after(SimTime delay, F&& fn) {
    return schedule_after(delay, EventType::kGeneric, std::forward<F>(fn));
  }

  /// Attach (or detach, with nullptr) a per-event wall-clock sink.
  /// While attached, every executed callback is timed and reported as
  /// record_event(type, microseconds). Costs two clock reads per event,
  /// so leave it off except under `--profile`.
  void set_event_timer(EventTimer* timer) { timer_ = timer; }

  /// Cancel a pending event. Returns true if the event was still
  /// pending; false if it already fired, was already cancelled, or the
  /// handle is empty. Under the wheel the queue entry and the pooled
  /// record are reclaimed immediately; the heap reclaims lazily when
  /// the entry's timestamp pops.
  bool cancel(EventHandle handle);

  /// True if the handle refers to a still-pending event.
  [[nodiscard]] bool pending(EventHandle handle) const;

  /// Run events until the queue is empty or the next event is after
  /// `until`; the clock then rests at min(until, last event time...) —
  /// specifically, the clock is advanced to `until` on return so that
  /// now() reflects the full simulated horizon.
  void run_until(SimTime until);

  /// Run every remaining event (use with care: processes to quiescence).
  void run_to_quiescence();

  /// Number of events currently pending (cancelled entries excluded).
  [[nodiscard]] std::size_t pending_count() const { return live_events_; }

  /// Total events executed since construction.
  [[nodiscard]] std::uint64_t executed_count() const { return executed_; }
  /// Total events cancelled since construction.
  [[nodiscard]] std::uint64_t cancelled_count() const { return cancelled_; }
  /// Total events ever scheduled (executed + cancelled + pending).
  [[nodiscard]] std::uint64_t scheduled_count() const { return scheduled_; }
  /// High-water mark of pending_count() — the queue-depth peak the
  /// telemetry report exposes as `des.queue_depth_peak`.
  [[nodiscard]] std::size_t peak_pending_count() const { return peak_pending_; }

  /// Cancelled events whose queue entry and pooled record have been
  /// reclaimed (the telemetry report's
  /// `des.scheduler.cancelled_reclaimed`). The wheel reclaims at
  /// cancel() time, so this tracks cancelled_count() exactly; the heap
  /// reclaims lazily, so it lags until the stale entry pops.
  [[nodiscard]] std::uint64_t cancelled_reclaimed_count() const { return cancelled_reclaimed_; }

  // ---- Allocation introspection (see bench/micro_scheduler.cpp) ----

  /// Chunks backing the event pool; constant in steady state.
  [[nodiscard]] std::size_t arena_chunk_count() const { return arena_.chunk_count(); }
  /// Event records served from the freelist instead of fresh slots.
  [[nodiscard]] std::uint64_t arena_recycled_count() const { return arena_.recycled_count(); }
  /// Callbacks too large for EventFn's inline buffer (each one costs a
  /// heap allocation; in-tree callbacks never hit this).
  [[nodiscard]] std::uint64_t callback_heap_fallback_count() const { return heap_fallbacks_; }

 private:
  struct HeapEntry {
    SimTime at;
    std::uint64_t seq;  // FIFO tie-break for equal times
    std::uint32_t id;
    std::uint64_t generation;
    // Min-heap by (at, seq): priority_queue is a max-heap, so invert.
    friend bool operator<(const HeapEntry& a, const HeapEntry& b) {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  // Cold throw paths, kept out of line so the inlined schedule fast
  // path stays small.
  [[noreturn]] void throw_past_deadline(SimTime at) const;
  [[noreturn]] static void throw_empty_callback();
  [[noreturn]] static void throw_negative_delay(SimTime delay);

  /// Common tail of schedule_at once the record's callback is set.
  EventHandle finish_schedule(EventRecord& rec, std::uint32_t id, SimTime at, EventType type) {
    rec.at = at;
    rec.type = type;
    rec.live = true;
    const std::uint64_t seq = next_seq_++;
    if (impl_ == QueueImpl::kWheel) {
      wheel_.insert(at.to_minutes(), seq, id);
    } else {
      heap_.push(HeapEntry{at, seq, id, rec.generation});
    }
    ++live_events_;
    ++scheduled_;
    if (live_events_ > peak_pending_) peak_pending_ = live_events_;
    return EventHandle{id, rec.generation};
  }

  /// Pops and runs the next live event at or before `*limit` (no bound
  /// when null); returns false when none qualifies.
  bool fire_next(const SimTime* limit);
  /// Fires one record in place: invalidates handles, invokes, recycles.
  void fire(EventRecord& rec, std::uint32_t id);

  QueueImpl impl_;
  SimTime now_ = SimTime::zero();
  CalendarQueue wheel_;
  std::priority_queue<HeapEntry> heap_;
  EventArena arena_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_events_ = 0;
  std::size_t peak_pending_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t cancelled_reclaimed_ = 0;
  std::uint64_t scheduled_ = 0;
  std::uint64_t heap_fallbacks_ = 0;
  EventTimer* timer_ = nullptr;  // non-owning, may be null
};

}  // namespace mvsim::des
