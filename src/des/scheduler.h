// Discrete-event scheduler.
//
// This is the substrate that replaces the Möbius simulation solver used
// by the paper: a single-threaded event loop over a binary heap with
// lazy cancellation. Determinism guarantees:
//   * events fire in nondecreasing time order;
//   * events scheduled for the same instant fire in scheduling order
//     (FIFO tie-break via a monotone sequence number);
//   * cancellation is O(1) and never perturbs the order of the rest.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "des/event_type.h"
#include "util/sim_time.h"

namespace mvsim::des {

/// Opaque handle to a scheduled event; used to cancel it.
///
/// Handles are generation-checked: a handle left over from an event
/// that already fired (or was cancelled) is safely ignored.
class EventHandle {
 public:
  EventHandle() = default;
  [[nodiscard]] bool valid() const { return id_ != 0; }

 private:
  friend class Scheduler;
  EventHandle(std::uint64_t id, std::uint64_t generation) : id_(id), generation_(generation) {}
  std::uint64_t id_ = 0;
  std::uint64_t generation_ = 0;
};

class Scheduler {
 public:
  using Callback = std::function<void()>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulation time. Starts at zero.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `fn` to run at absolute time `at` (must be >= now()).
  /// `type` tags the event for per-event-type profiling; it never
  /// affects ordering or results.
  EventHandle schedule_at(SimTime at, EventType type, Callback fn);
  EventHandle schedule_at(SimTime at, Callback fn) {
    return schedule_at(at, EventType::kGeneric, std::move(fn));
  }

  /// Schedule `fn` to run `delay` from now (delay must be >= 0).
  EventHandle schedule_after(SimTime delay, EventType type, Callback fn);
  EventHandle schedule_after(SimTime delay, Callback fn) {
    return schedule_after(delay, EventType::kGeneric, std::move(fn));
  }

  /// Attach (or detach, with nullptr) a per-event wall-clock sink.
  /// While attached, every executed callback is timed and reported as
  /// record_event(type, microseconds). Costs two clock reads per event,
  /// so leave it off except under `--profile`.
  void set_event_timer(EventTimer* timer) { timer_ = timer; }

  /// Cancel a pending event. Returns true if the event was still
  /// pending; false if it already fired, was already cancelled, or the
  /// handle is empty.
  bool cancel(EventHandle handle);

  /// True if the handle refers to a still-pending event.
  [[nodiscard]] bool pending(EventHandle handle) const;

  /// Run events until the queue is empty or the next event is after
  /// `until`; the clock then rests at min(until, last event time...) —
  /// specifically, the clock is advanced to `until` on return so that
  /// now() reflects the full simulated horizon.
  void run_until(SimTime until);

  /// Run every remaining event (use with care: processes to quiescence).
  void run_to_quiescence();

  /// Number of events currently pending (cancelled entries excluded).
  [[nodiscard]] std::size_t pending_count() const { return live_events_; }

  /// Total events executed since construction.
  [[nodiscard]] std::uint64_t executed_count() const { return executed_; }
  /// Total events cancelled since construction.
  [[nodiscard]] std::uint64_t cancelled_count() const { return cancelled_; }
  /// Total events ever scheduled (executed + cancelled + pending).
  [[nodiscard]] std::uint64_t scheduled_count() const { return scheduled_; }
  /// High-water mark of pending_count() — the queue-depth peak the
  /// telemetry report exposes as `des.queue_depth_peak`.
  [[nodiscard]] std::size_t peak_pending_count() const { return peak_pending_; }

 private:
  struct Record {
    Callback fn;
    std::uint64_t generation = 0;  // bumped on fire/cancel to invalidate handles
    bool live = false;
    EventType type = EventType::kGeneric;
  };

  struct HeapEntry {
    SimTime at;
    std::uint64_t seq;  // FIFO tie-break for equal times
    std::uint64_t id;
    std::uint64_t generation;
    // Min-heap by (at, seq): priority_queue is a max-heap, so invert.
    friend bool operator<(const HeapEntry& a, const HeapEntry& b) {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Pops and runs the top live event; returns false if queue empty.
  bool step();

  std::uint64_t allocate_record(Callback fn, EventType type);

  SimTime now_ = SimTime::zero();
  std::priority_queue<HeapEntry> queue_;
  std::vector<Record> records_;       // index = id - 1
  std::vector<std::uint64_t> free_;   // recycled record slots
  std::uint64_t next_seq_ = 0;
  std::size_t live_events_ = 0;
  std::size_t peak_pending_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t scheduled_ = 0;
  EventTimer* timer_ = nullptr;  // non-owning, may be null
};

}  // namespace mvsim::des
