// Pooled storage for scheduler event records.
//
// EventArena is a chunked bump allocator with freelist recycling: slots
// are handed out from fixed-size chunks, recycled through a freelist
// when events fire or are cancelled, and never returned to the heap
// until the arena dies. Two properties matter to the scheduler:
//
//   * Record addresses are stable for the arena's lifetime (chunks are
//     never moved or released), so a callback can run in place while
//     it schedules new events — even if that allocates a fresh chunk.
//   * In steady state (live-event count at or below the high-water
//     mark) allocate/release touch only the freelist: zero heap
//     allocations per scheduled event. chunk_count() exposes the proof.
//
// Ids are 1-based so a zero id (default EventHandle) is never valid.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "des/event_fn.h"
#include "des/event_type.h"
#include "util/sim_time.h"

namespace mvsim::des {

/// One pooled event. `at` is kept here so eager cancellation can find
/// the calendar bucket without a second lookup structure.
struct EventRecord {
  EventFn fn;
  SimTime at = SimTime::zero();
  std::uint64_t generation = 0;  // bumped on fire/cancel to invalidate handles
  EventType type = EventType::kGeneric;
  bool live = false;
};

class EventArena {
 public:
  static constexpr std::size_t kChunkSize = 256;

  EventArena() = default;
  EventArena(const EventArena&) = delete;
  EventArena& operator=(const EventArena&) = delete;

  /// Returns a 1-based slot id, recycling released slots first.
  std::uint32_t allocate() {
    if (!free_.empty()) {
      const std::uint32_t id = free_.back();
      free_.pop_back();
      ++recycled_;
      return id;
    }
    const std::size_t index = high_water_++;
    if (index == chunks_.size() * kChunkSize) {
      chunks_.push_back(std::make_unique<EventRecord[]>(kChunkSize));
    }
    return static_cast<std::uint32_t>(index + 1);
  }

  /// Returns a slot to the freelist. The caller resets the record's
  /// callback first; the slot's generation survives for handle checks.
  void release(std::uint32_t id) { free_.push_back(id); }

  [[nodiscard]] EventRecord& operator[](std::uint32_t id) {
    const std::size_t index = id - 1;
    return chunks_[index / kChunkSize][index % kChunkSize];
  }
  [[nodiscard]] const EventRecord& operator[](std::uint32_t id) const {
    const std::size_t index = id - 1;
    return chunks_[index / kChunkSize][index % kChunkSize];
  }

  /// Slots ever allocated (the bump high-water mark); valid ids are
  /// 1..size().
  [[nodiscard]] std::size_t size() const { return high_water_; }
  /// Chunks currently backing the pool. Constant while the live-event
  /// count stays under a previously reached peak — the zero-allocation
  /// steady-state witness.
  [[nodiscard]] std::size_t chunk_count() const { return chunks_.size(); }
  /// Allocations served from the freelist instead of fresh slots.
  [[nodiscard]] std::uint64_t recycled_count() const { return recycled_; }

 private:
  std::vector<std::unique_ptr<EventRecord[]>> chunks_;
  std::vector<std::uint32_t> free_;
  std::size_t high_water_ = 0;
  std::uint64_t recycled_ = 0;
};

}  // namespace mvsim::des
