// Calendar-queue priority structure for the DES hot path.
//
// An unsorted-bucket calendar queue (Brown 1988): simulated time is cut
// into fixed-width slices, slice k lands in bucket k mod N, and a
// cursor walks the slices in order. Insert is an O(1) list push;
// popping works slice-at-a-time — when the cursor reaches an occupied
// slice, its entries are extracted in one pass, sorted once by
// (at, seq), and served from a scratch buffer, so each entry is touched
// O(log k) times instead of rescanned on every pop. Against the
// O(log n) sift of a binary heap both ends are O(1) amortized, which is
// why this workload's bounded, clustered horizons (sub-minute message
// hops, 30-min scan waits, 24-h reboots) favor it.
//
// Buckets are intrusive singly-linked lists threaded through an
// index-based node pool (the shape McSim uses for its event queue):
// insert, remove, extraction and rebuilds relink indices and never
// allocate once the pool has grown to the live-entry peak, so the queue
// adds nothing to the scheduler's per-event allocation budget.
//
// Ordering contract (identical to the heap it replaces): entries pop in
// nondecreasing (at, seq) order, seq being the scheduler's monotone
// FIFO tie-break. Removal by (at, id) is eager — the entry leaves its
// bucket (or the serving buffer) immediately, which is what fixes the
// lazy-cancellation memory growth of the heap.
//
// Out-of-range times (SimTime::infinity(), or anything whose slice
// index would overflow the cursor) are parked in an overflow list that
// is only consulted when the calendar proper is empty; rebuilds
// reclassify it, so a width change can never reorder overflow entries
// ahead of calendar ones.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mvsim::des {

class CalendarQueue {
 public:
  /// What peek() exposes of the minimum entry.
  struct Entry {
    double at = 0.0;
    std::uint64_t seq = 0;
    std::uint32_t id = 0;
  };

  CalendarQueue();

  /// O(1). `at` must be >= 0 (the scheduler's now() floor); +infinity
  /// is allowed and lands in the overflow list.
  void insert(double at, std::uint64_t seq, std::uint32_t id) {
    cursor_valid_ = false;
    ++size_;
    if (!in_calendar_range(at)) {
      insert_overflow(at, seq, id);
      return;
    }
    const std::uint64_t abs = abs_bucket_of(at);
    if (slice_active_ && abs <= slice_abs_) {
      // The entry competes with (or precedes) the slice being served;
      // keep the serving buffer authoritative for its slice.
      insert_into_slice(at, seq, id, abs);
      return;
    }
    // peek() may have walked the cursor past `at` while hunting for a
    // minimum that run_until() then declined to pop; rewind so the new
    // entry cannot be skipped.
    if (abs < current_abs_) current_abs_ = abs;
    link(abs, at, seq, id);
    ++calendar_size_;
    if (calendar_size_ > bucket_grow_limit_) grow();
  }

  /// Eagerly removes the entry inserted with this (at, id). Returns
  /// false if no such entry is pending.
  bool remove(double at, std::uint32_t id);

  /// Minimum entry by (at, seq), or nullptr when empty. The location is
  /// cached, so an immediately following pop_front() is O(1).
  [[nodiscard]] const Entry* peek() {
    if (slice_active_) {
      if (slice_pos_ < slice_.size()) return &slice_[slice_pos_];
      finish_slice();
    }
    return peek_slow();
  }

  /// Removes the minimum entry (re-peeking if needed). No-op on an
  /// empty queue.
  void pop_front() {
    if (slice_active_ && slice_pos_ < slice_.size()) {
      ++slice_pos_;
      --calendar_size_;
      --size_;
      return;
    }
    pop_front_slow();
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  // Geometry introspection for tests and benches.
  [[nodiscard]] std::size_t bucket_count() const { return heads_.size(); }
  [[nodiscard]] double bucket_width() const { return width_; }
  [[nodiscard]] std::size_t overflow_size() const { return overflow_size_; }
  [[nodiscard]] std::uint64_t rebuild_count() const { return rebuilds_; }
  /// Pool slots ever created; constant in steady state (the queue's
  /// zero-allocation witness, alongside EventArena::chunk_count()).
  [[nodiscard]] std::size_t node_pool_size() const { return pool_.size() - 1; }

 private:
  /// Index-based list node; `next` is a pool index, 0 = end of list.
  struct Node {
    double at = 0.0;
    std::uint64_t seq = 0;
    std::uint64_t abs_bucket = 0;  // floor(at * inv_width) at link time
    std::uint32_t id = 0;
    std::uint32_t next = 0;
  };

  /// Starting bucket count (power of two). Generous on purpose: the
  /// grow trigger fires at 2 entries/bucket, so a small start would
  /// rebuild twice while a replication warms up — 4 KiB of heads buys
  /// rebuild-free filling up to 2048 pending events.
  static constexpr std::size_t kMinBuckets = 1024;
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 20;
  /// Slice indices at or beyond this go to the overflow list: guards
  /// the double -> uint64 cast and keeps +infinity out of the calendar.
  static constexpr double kMaxAbsBucket = 9.0e15;

  [[nodiscard]] bool in_calendar_range(double at) const {
    // NaN and +infinity fail the comparison and fall to overflow.
    return at * inv_width_ < kMaxAbsBucket;
  }
  [[nodiscard]] std::uint64_t abs_bucket_of(double at) const {
    return static_cast<std::uint64_t>(at * inv_width_);
  }

  std::uint32_t alloc_node();
  void free_node(std::uint32_t node) { free_nodes_.push_back(node); }
  void link(std::uint64_t abs, double at, std::uint64_t seq, std::uint32_t id);
  void insert_overflow(double at, std::uint64_t seq, std::uint32_t id);
  void insert_into_slice(double at, std::uint64_t seq, std::uint32_t id, std::uint64_t abs);
  /// Unlinks `node` from the list rooted at `*head`, where `prev` is
  /// its predecessor (0 = it is the head), and recycles it.
  void unlink(std::uint32_t* head, std::uint32_t prev, std::uint32_t node);
  bool remove_from_list(std::uint32_t* head, std::uint32_t id);
  /// Drops the (exhausted) serving buffer and advances the cursor.
  void finish_slice();
  /// Puts the unserved tail of the serving buffer back into its bucket.
  void abandon_slice();
  /// Cursor hunt: find the next occupied slice, extract and sort it.
  [[nodiscard]] const Entry* peek_slow();
  [[nodiscard]] const Entry* scan_overflow();
  void pop_front_slow();
  void grow();
  /// Re-buckets every entry (calendar, slice and overflow) with a width
  /// re-fit to the live span and `new_bucket_count` buckets.
  void rebuild(std::size_t new_bucket_count);

  std::vector<Node> pool_;  // index 0 unused (null)
  std::vector<std::uint32_t> free_nodes_;
  std::vector<std::uint32_t> heads_;  // per-bucket list heads
  std::uint32_t overflow_head_ = 0;
  std::size_t overflow_size_ = 0;
  std::size_t mask_ = 0;                // heads_.size() - 1
  std::size_t bucket_grow_limit_ = 0;   // 2 * heads_.size(), cached
  double width_ = 1.0;                  // minutes per slice; re-fit on rebuild
  double inv_width_ = 1.0;
  std::uint64_t current_abs_ = 0;       // slice the next hunt scans first
  std::size_t size_ = 0;                // calendar + slice + overflow entries
  std::size_t calendar_size_ = 0;       // entries in buckets + serving buffer
  std::uint64_t rebuilds_ = 0;

  // Slice serving buffer: the extracted, sorted entries of slice
  // `slice_abs_`; slice_[slice_pos_..] are still pending.
  std::vector<Entry> slice_;
  std::vector<Entry> rebuild_scratch_;  // reused across rebuilds
  std::size_t slice_pos_ = 0;
  std::uint64_t slice_abs_ = 0;
  bool slice_active_ = false;

  // Overflow peek cache (calendar-empty regime only).
  bool cursor_valid_ = false;
  std::uint32_t cursor_prev_ = 0;
  std::uint32_t cursor_node_ = 0;
  Entry cursor_entry_{};
};

}  // namespace mvsim::des
