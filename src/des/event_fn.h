// Small-buffer callback type for scheduler events.
//
// EventFn replaces std::function<void()> on the DES hot path. The
// callable is stored in a fixed inline buffer whenever it fits, so
// scheduling an event copies a few words instead of touching the heap;
// oversized callables fall back to a heap box (the scheduler counts
// those — see Scheduler::callback_heap_fallback_count — so benches can
// prove the fast path stays allocation-free). Move-only, like the
// event records that own it.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace mvsim::des {

class EventFn {
 public:
  /// Inline capture budget. 64 bytes covers every in-tree callback,
  /// including a gateway delivery capturing an MmsMessage by value.
  static constexpr std::size_t kInlineCapacity = 64;

  /// True when a decayed callable type is stored inline (no heap box).
  template <typename D>
  static constexpr bool fits_inline = sizeof(D) <= kInlineCapacity &&
                                      alignof(D) <= alignof(std::max_align_t) &&
                                      std::is_nothrow_move_constructible_v<D>;

  EventFn() noexcept = default;

  /// Implicit, like std::function. An empty function-like payload (a
  /// default-constructed std::function, a null function pointer)
  /// produces an empty EventFn so the scheduler's empty-callback guard
  /// keeps firing at schedule time rather than at invoke time.
  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> && std::is_invocable_v<D&>>>
  // NOLINTNEXTLINE(google-explicit-constructor)
  EventFn(F&& fn) {
    if constexpr (std::is_constructible_v<bool, const D&>) {
      if (!static_cast<bool>(fn)) return;
    }
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      vtable_ = &InlineOps<D>::kVTable;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(fn)));
      vtable_ = &BoxedOps<D>::kVTable;
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  /// Replaces the held callable, constructing the new one in place —
  /// the zero-copy path Scheduler::schedule_at uses to build a callback
  /// directly inside a pooled event record. Throws nothing once the
  /// old callable is destroyed only if D's construction is nothrow;
  /// callers pass lambdas, for which construction is a move.
  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> && std::is_invocable_v<D&>>>
  void assign(F&& fn) {
    reset();
    if constexpr (std::is_constructible_v<bool, const D&>) {
      if (!static_cast<bool>(fn)) return;
    }
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      vtable_ = &InlineOps<D>::kVTable;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(fn)));
      vtable_ = &BoxedOps<D>::kVTable;
    }
  }

  [[nodiscard]] explicit operator bool() const noexcept { return vtable_ != nullptr; }

  void operator()() { vtable_->invoke(storage_); }

  /// Destroys the held callable (and its heap box, if any).
  void reset() noexcept {
    if (vtable_ != nullptr) {
      if (!vtable_->trivial) vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  /// True when the callable (if any) lives in the inline buffer.
  [[nodiscard]] bool is_inline() const noexcept {
    return vtable_ == nullptr || vtable_->inline_stored;
  }

 private:
  struct VTable {
    void (*invoke)(void* state);
    void (*relocate)(void* from, void* to) noexcept;  // move-construct into `to`, destroy `from`
    void (*destroy)(void* state) noexcept;
    bool inline_stored;
    /// Inline, trivially copyable, trivially destructible: moves are a
    /// plain memcpy and reset() skips the destroy call. This is the
    /// no-indirect-call path every capture-light in-tree callback takes.
    bool trivial;
  };

  template <typename D>
  struct InlineOps {
    static D* self(void* state) noexcept { return std::launder(reinterpret_cast<D*>(state)); }
    static void invoke(void* state) { (*self(state))(); }
    static void relocate(void* from, void* to) noexcept {
      D* source = self(from);
      ::new (to) D(std::move(*source));
      source->~D();
    }
    static void destroy(void* state) noexcept { self(state)->~D(); }
    static constexpr VTable kVTable{&invoke, &relocate, &destroy, true,
                                    std::is_trivially_copyable_v<D> &&
                                        std::is_trivially_destructible_v<D>};
  };

  template <typename D>
  struct BoxedOps {
    static D*& box(void* state) noexcept { return *std::launder(reinterpret_cast<D**>(state)); }
    static void invoke(void* state) { (*box(state))(); }
    static void relocate(void* from, void* to) noexcept {
      ::new (to) D*(box(from));  // steal the box pointer
    }
    static void destroy(void* state) noexcept { delete box(state); }
    static constexpr VTable kVTable{&invoke, &relocate, &destroy, false, false};
  };

  void move_from(EventFn& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ != nullptr) {
      if (vtable_->trivial) {
        // The whole buffer is copied regardless of the callable's real
        // size; the fixed length lets the compiler emit straight-line
        // wide moves instead of an indirect relocate call.
        std::memcpy(storage_, other.storage_, kInlineCapacity);
      } else {
        vtable_->relocate(other.storage_, storage_);
      }
      other.vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
  const VTable* vtable_ = nullptr;
};

}  // namespace mvsim::des
