#include "des/scheduler.h"

#include <chrono>
#include <stdexcept>
#include <utility>

namespace mvsim::des {

void Scheduler::throw_past_deadline(SimTime at) const {
  throw std::invalid_argument("Scheduler::schedule_at: time " + at.to_string() +
                              " is before now " + now_.to_string());
}

void Scheduler::throw_empty_callback() {
  throw std::invalid_argument("Scheduler::schedule_at: empty callback");
}

void Scheduler::throw_negative_delay(SimTime delay) {
  throw std::invalid_argument("Scheduler::schedule_after: negative delay " + delay.to_string());
}

bool Scheduler::cancel(EventHandle handle) {
  if (!pending(handle)) return false;
  const std::uint32_t id = static_cast<std::uint32_t>(handle.id_);
  EventRecord& rec = arena_[id];
  rec.live = false;
  rec.fn.reset();  // drop captures now, whatever the queue impl
  ++rec.generation;  // invalidate any copies of the handle
  --live_events_;
  ++cancelled_;
  if (impl_ == QueueImpl::kWheel) {
    // Eager reclamation: pull the entry out of its bucket and recycle
    // the record immediately instead of letting it linger until its
    // timestamp pops (the heap's lazy behavior, which let cancel-heavy
    // workloads grow the queue without bound).
    if (wheel_.remove(rec.at.to_minutes(), id)) {
      arena_.release(id);
      ++cancelled_reclaimed_;
    }
  }
  // Heap: the entry stays; fire_next() discards it lazily when it pops.
  return true;
}

bool Scheduler::pending(EventHandle handle) const {
  if (!handle.valid() || handle.id_ > arena_.size()) return false;
  const EventRecord& rec = arena_[static_cast<std::uint32_t>(handle.id_)];
  return rec.live && rec.generation == handle.generation_;
}

void Scheduler::fire(EventRecord& rec, std::uint32_t id) {
  const EventType type = rec.type;
  rec.live = false;
  ++rec.generation;
  --live_events_;
  ++executed_;
  // The callback runs in place: record addresses are chunk-stable and
  // the slot is only recycled after the invoke, so the callback may
  // freely schedule (even growing the arena) or cancel other events.
  if (timer_ != nullptr) {
    const auto started = std::chrono::steady_clock::now();
    rec.fn();
    timer_->record_event(
        type, std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                        started)
                  .count());
  } else {
    rec.fn();
  }
  rec.fn.reset();
  arena_.release(id);
}

bool Scheduler::fire_next(const SimTime* limit) {
  if (impl_ == QueueImpl::kWheel) {
    const CalendarQueue::Entry* top = wheel_.peek();
    if (top == nullptr) return false;
    const std::uint32_t id = top->id;
    EventRecord& rec = arena_[id];
    if (limit != nullptr && rec.at > *limit) return false;
    wheel_.pop_front();
    now_ = rec.at;  // the exact SimTime, not the wheel's double key
    fire(rec, id);
    return true;
  }
  while (!heap_.empty()) {
    const HeapEntry top = heap_.top();
    EventRecord& rec = arena_[top.id];
    if (!rec.live || rec.generation != top.generation) {
      // Lazily discard a cancelled/stale entry and reclaim the slot.
      heap_.pop();
      if (!rec.live) {
        arena_.release(top.id);
        ++cancelled_reclaimed_;
      }
      continue;
    }
    if (limit != nullptr && top.at > *limit) return false;
    heap_.pop();
    now_ = top.at;
    fire(rec, top.id);
    return true;
  }
  return false;
}

void Scheduler::run_until(SimTime until) {
  if (!(until >= now_)) {
    throw std::invalid_argument("Scheduler::run_until: horizon " + until.to_string() +
                                " is before now " + now_.to_string());
  }
  while (fire_next(&until)) {
  }
  now_ = until;
}

void Scheduler::run_to_quiescence() {
  while (fire_next(nullptr)) {
  }
}

}  // namespace mvsim::des
