#include "des/scheduler.h"

#include <chrono>
#include <stdexcept>
#include <utility>

namespace mvsim::des {

std::uint64_t Scheduler::allocate_record(Callback fn, EventType type) {
  std::uint64_t id;
  if (!free_.empty()) {
    id = free_.back();
    free_.pop_back();
  } else {
    records_.emplace_back();
    id = records_.size();  // ids are 1-based so that a default handle is invalid
  }
  Record& rec = records_[id - 1];
  rec.fn = std::move(fn);
  rec.live = true;
  rec.type = type;
  return id;
}

EventHandle Scheduler::schedule_at(SimTime at, EventType type, Callback fn) {
  if (!(at >= now_)) {
    throw std::invalid_argument("Scheduler::schedule_at: time " + at.to_string() +
                                " is before now " + now_.to_string());
  }
  if (!fn) throw std::invalid_argument("Scheduler::schedule_at: empty callback");
  std::uint64_t id = allocate_record(std::move(fn), type);
  std::uint64_t generation = records_[id - 1].generation;
  queue_.push(HeapEntry{at, next_seq_++, id, generation});
  ++live_events_;
  ++scheduled_;
  if (live_events_ > peak_pending_) peak_pending_ = live_events_;
  return EventHandle{id, generation};
}

EventHandle Scheduler::schedule_after(SimTime delay, EventType type, Callback fn) {
  if (!delay.is_nonnegative()) {
    throw std::invalid_argument("Scheduler::schedule_after: negative delay " + delay.to_string());
  }
  return schedule_at(now_ + delay, type, std::move(fn));
}

bool Scheduler::cancel(EventHandle handle) {
  if (!pending(handle)) return false;
  Record& rec = records_[handle.id_ - 1];
  rec.live = false;
  rec.fn = nullptr;
  ++rec.generation;  // invalidate any copies of the handle
  --live_events_;
  ++cancelled_;
  // The heap entry stays; step() skips it when its generation mismatches.
  return true;
}

bool Scheduler::pending(EventHandle handle) const {
  if (!handle.valid() || handle.id_ > records_.size()) return false;
  const Record& rec = records_[handle.id_ - 1];
  return rec.live && rec.generation == handle.generation_;
}

bool Scheduler::step() {
  while (!queue_.empty()) {
    HeapEntry top = queue_.top();
    Record& rec = records_[top.id - 1];
    if (!rec.live || rec.generation != top.generation) {
      // Lazily discard a cancelled/stale entry and reclaim the slot.
      queue_.pop();
      if (!rec.live) free_.push_back(top.id);
      continue;
    }
    queue_.pop();
    now_ = top.at;
    Callback fn = std::move(rec.fn);
    const EventType type = rec.type;
    rec.live = false;
    rec.fn = nullptr;
    ++rec.generation;
    free_.push_back(top.id);
    --live_events_;
    ++executed_;
    if (timer_ != nullptr) {
      const auto started = std::chrono::steady_clock::now();
      fn();
      timer_->record_event(
          type, std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                          started)
                    .count());
    } else {
      fn();
    }
    return true;
  }
  return false;
}

void Scheduler::run_until(SimTime until) {
  if (!(until >= now_)) {
    throw std::invalid_argument("Scheduler::run_until: horizon " + until.to_string() +
                                " is before now " + now_.to_string());
  }
  while (!queue_.empty()) {
    HeapEntry top = queue_.top();
    const Record& rec = records_[top.id - 1];
    if (!rec.live || rec.generation != top.generation) {
      queue_.pop();
      if (!rec.live) free_.push_back(top.id);
      continue;
    }
    if (top.at > until) break;
    step();
  }
  now_ = until;
}

void Scheduler::run_to_quiescence() {
  while (step()) {
  }
}

}  // namespace mvsim::des
