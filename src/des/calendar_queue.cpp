#include "des/calendar_queue.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mvsim::des {

namespace {
/// Strict (at, seq) order — the scheduler's determinism contract. A
/// function object (not a function pointer) so std::sort/upper_bound
/// inline the comparison.
struct EntryEarlier {
  bool operator()(const CalendarQueue::Entry& a, const CalendarQueue::Entry& b) const {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }
};
constexpr EntryEarlier entry_earlier{};
}  // namespace

CalendarQueue::CalendarQueue()
    : heads_(kMinBuckets, 0), mask_(kMinBuckets - 1), bucket_grow_limit_(kMinBuckets * 2) {
  pool_.emplace_back();  // index 0 is the null node
}

std::uint32_t CalendarQueue::alloc_node() {
  if (!free_nodes_.empty()) {
    const std::uint32_t node = free_nodes_.back();
    free_nodes_.pop_back();
    return node;
  }
  pool_.emplace_back();
  return static_cast<std::uint32_t>(pool_.size() - 1);
}

void CalendarQueue::link(std::uint64_t abs, double at, std::uint64_t seq, std::uint32_t id) {
  const std::uint32_t node = alloc_node();
  Node& n = pool_[node];
  n.at = at;
  n.seq = seq;
  n.abs_bucket = abs;
  n.id = id;
  std::uint32_t& head = heads_[static_cast<std::size_t>(abs & mask_)];
  n.next = head;
  head = node;
}

void CalendarQueue::insert_overflow(double at, std::uint64_t seq, std::uint32_t id) {
  const std::uint32_t node = alloc_node();
  Node& n = pool_[node];
  n.at = at;
  n.seq = seq;
  n.abs_bucket = 0;
  n.id = id;
  n.next = overflow_head_;
  overflow_head_ = node;
  ++overflow_size_;
}

void CalendarQueue::insert_into_slice(double at, std::uint64_t seq, std::uint32_t id,
                                      std::uint64_t abs) {
  if (abs < slice_abs_) {
    // Earlier than the slice being served (run_until() declined the
    // slice and the clock rests before it): put the unserved tail back
    // into its bucket and fall through to a plain insert.
    abandon_slice();
    if (abs < current_abs_) current_abs_ = abs;
    link(abs, at, seq, id);
    ++calendar_size_;
    if (calendar_size_ > bucket_grow_limit_) grow();
    return;
  }
  // Same slice as the serving buffer: merge into the sorted unserved
  // tail. A new entry's seq is the largest so far, so it can never
  // land before slice_pos_.
  const Entry entry{at, seq, id};
  const auto begin = slice_.begin() + static_cast<std::ptrdiff_t>(slice_pos_);
  slice_.insert(std::upper_bound(begin, slice_.end(), entry, entry_earlier), entry);
  ++calendar_size_;
}

void CalendarQueue::unlink(std::uint32_t* head, std::uint32_t prev, std::uint32_t node) {
  if (prev == 0) {
    *head = pool_[node].next;
  } else {
    pool_[prev].next = pool_[node].next;
  }
  free_node(node);
}

bool CalendarQueue::remove_from_list(std::uint32_t* head, std::uint32_t id) {
  std::uint32_t prev = 0;
  for (std::uint32_t node = *head; node != 0; node = pool_[node].next) {
    if (pool_[node].id == id) {
      unlink(head, prev, node);
      return true;
    }
    prev = node;
  }
  return false;
}

bool CalendarQueue::remove(double at, std::uint32_t id) {
  if (!in_calendar_range(at)) {
    if (!remove_from_list(&overflow_head_, id)) return false;
    --overflow_size_;
    --size_;
    cursor_valid_ = false;
    return true;
  }
  const std::uint64_t abs = abs_bucket_of(at);
  if (slice_active_ && abs == slice_abs_) {
    for (std::size_t i = slice_pos_; i < slice_.size(); ++i) {
      if (slice_[i].id == id) {
        slice_.erase(slice_.begin() + static_cast<std::ptrdiff_t>(i));
        --calendar_size_;
        --size_;
        return true;
      }
    }
    return false;
  }
  std::uint32_t* head = &heads_[static_cast<std::size_t>(abs & mask_)];
  if (!remove_from_list(head, id)) return false;
  --calendar_size_;
  --size_;
  cursor_valid_ = false;
  return true;
}

void CalendarQueue::finish_slice() {
  slice_.clear();
  slice_pos_ = 0;
  slice_active_ = false;
  ++current_abs_;  // everything in the served slice is gone
}

void CalendarQueue::abandon_slice() {
  for (std::size_t i = slice_pos_; i < slice_.size(); ++i) {
    link(slice_abs_, slice_[i].at, slice_[i].seq, slice_[i].id);
  }
  slice_.clear();
  slice_pos_ = 0;
  slice_active_ = false;
}

const CalendarQueue::Entry* CalendarQueue::peek_slow() {
  if (cursor_valid_) return &cursor_entry_;
  if (size_ == 0) return nullptr;
  if (calendar_size_ == 0) return scan_overflow();
  std::size_t probes = 0;
  for (;;) {
    std::uint32_t* head = &heads_[static_cast<std::size_t>(current_abs_ & mask_)];
    // Extract every entry of the current slice in one pass. The pool
    // pointer is hoisted because the push_backs below cannot alias it.
    Node* const pool = pool_.data();
    std::uint32_t prev = 0;
    std::uint32_t node = *head;
    while (node != 0) {
      Node& n = pool[node];
      const std::uint32_t next = n.next;
      if (n.abs_bucket == current_abs_) {
        slice_.push_back(Entry{n.at, n.seq, n.id});
        if (prev == 0) {
          *head = next;
        } else {
          pool[prev].next = next;
        }
        free_nodes_.push_back(node);
      } else {
        prev = node;
      }
      node = next;
    }
    if (!slice_.empty()) {
      // Inserts arrive in seq order and bucket pushes are LIFO, so the
      // extracted run is usually already sorted once reversed; fall
      // back to a real sort only when interleaved times broke the
      // pattern.
      std::reverse(slice_.begin(), slice_.end());
      if (!std::is_sorted(slice_.begin(), slice_.end(), entry_earlier)) {
        std::sort(slice_.begin(), slice_.end(), entry_earlier);
      }
      slice_active_ = true;
      slice_abs_ = current_abs_;
      slice_pos_ = 0;
      return &slice_[0];
    }
    ++current_abs_;
    if (++probes >= heads_.size()) {
      // A full rotation was empty: the pending entries are far in the
      // future. Jump the cursor straight to the earliest occupied
      // slice instead of spinning through empty ones.
      std::uint64_t min_abs = std::numeric_limits<std::uint64_t>::max();
      for (std::uint32_t h : heads_) {
        for (std::uint32_t walk = h; walk != 0; walk = pool_[walk].next) {
          min_abs = std::min(min_abs, pool_[walk].abs_bucket);
        }
      }
      current_abs_ = min_abs;  // calendar_size_ > 0 guarantees a hit
      probes = 0;
    }
  }
}

const CalendarQueue::Entry* CalendarQueue::scan_overflow() {
  std::uint32_t best = 0;
  std::uint32_t best_prev = 0;
  std::uint32_t prev = 0;
  for (std::uint32_t node = overflow_head_; node != 0; node = pool_[node].next) {
    const Node& n = pool_[node];
    if (best == 0 || n.at < pool_[best].at ||
        (n.at == pool_[best].at && n.seq < pool_[best].seq)) {
      best = node;
      best_prev = prev;
    }
    prev = node;
  }
  if (best == 0) return nullptr;
  cursor_valid_ = true;
  cursor_prev_ = best_prev;
  cursor_node_ = best;
  const Node& n = pool_[best];
  cursor_entry_ = Entry{n.at, n.seq, n.id};
  return &cursor_entry_;
}

void CalendarQueue::pop_front_slow() {
  if (peek() == nullptr) return;
  if (slice_active_ && slice_pos_ < slice_.size()) {
    ++slice_pos_;
    --calendar_size_;
    --size_;
    return;
  }
  // peek() resolved to the overflow cache.
  unlink(&overflow_head_, cursor_prev_, cursor_node_);
  --overflow_size_;
  --size_;
  cursor_valid_ = false;
}

void CalendarQueue::grow() {
  std::size_t target = heads_.size() * 4;
  if (target > kMaxBuckets) target = kMaxBuckets;
  if (target <= heads_.size()) {
    // At the cap: stop re-triggering; buckets just get denser.
    bucket_grow_limit_ = std::numeric_limits<std::size_t>::max();
    return;
  }
  rebuild(target);
}

void CalendarQueue::rebuild(std::size_t new_bucket_count) {
  ++rebuilds_;
  cursor_valid_ = false;

  // Collect every pending entry: bucket lists, the overflow list, and
  // the unserved tail of the serving buffer.
  rebuild_scratch_.clear();
  rebuild_scratch_.reserve(size_);
  for (std::uint32_t h : heads_) {
    for (std::uint32_t node = h; node != 0; node = pool_[node].next) {
      const Node& n = pool_[node];
      rebuild_scratch_.push_back(Entry{n.at, n.seq, n.id});
    }
  }
  for (std::uint32_t node = overflow_head_; node != 0; node = pool_[node].next) {
    const Node& n = pool_[node];
    rebuild_scratch_.push_back(Entry{n.at, n.seq, n.id});
  }
  if (slice_active_) {
    for (std::size_t i = slice_pos_; i < slice_.size(); ++i) {
      rebuild_scratch_.push_back(slice_[i]);
    }
    slice_.clear();
    slice_pos_ = 0;
    slice_active_ = false;
  }

  // Re-fit the slice width so the population spreads at roughly two
  // entries per slice (Brown's heuristic). Only finite times
  // participate; a degenerate span (a same-instant storm) keeps the
  // old width.
  double min_at = std::numeric_limits<double>::infinity();
  double max_at = -std::numeric_limits<double>::infinity();
  std::size_t finite = 0;
  for (const Entry& entry : rebuild_scratch_) {
    if (!std::isfinite(entry.at)) continue;
    ++finite;
    min_at = std::min(min_at, entry.at);
    max_at = std::max(max_at, entry.at);
  }
  if (finite >= 2 && max_at > min_at) {
    width_ = std::max((max_at - min_at) * 2.0 / static_cast<double>(finite), 1e-9);
    inv_width_ = 1.0 / width_;
  }

  // Reset the node pool wholesale (every node is relinked below; the
  // pool keeps its capacity, so this allocates nothing) and relink
  // under the new geometry. Overflow entries are reclassified too:
  // membership must always reflect the *current* width, or a shrinking
  // width could hide an early entry in overflow while later calendar
  // entries pop first.
  pool_.resize(1);
  free_nodes_.clear();
  heads_.assign(new_bucket_count, 0);
  mask_ = new_bucket_count - 1;
  bucket_grow_limit_ = new_bucket_count * 2;
  overflow_head_ = 0;
  overflow_size_ = 0;
  calendar_size_ = 0;
  for (const Entry& entry : rebuild_scratch_) {
    if (!in_calendar_range(entry.at)) {
      insert_overflow(entry.at, entry.seq, entry.id);
      continue;
    }
    link(abs_bucket_of(entry.at), entry.at, entry.seq, entry.id);
    ++calendar_size_;
  }
  current_abs_ = finite > 0 ? abs_bucket_of(min_at) : 0;
}

}  // namespace mvsim::des
