// Event-type tags for the discrete-event scheduler.
//
// Every scheduled callback carries one of these tags so the profiler
// can attribute wall-clock time to the kind of work an event does
// ("where does the time go: deliveries? phone reads? virus sends?").
// The catalogue is FIXED — prof::Profiler registers one histogram per
// tag eagerly, and metrics::schema() lists the same names — so adding
// a tag here means adding it to prof/profiler.cpp and the schema too
// (tests/prof_test.cpp holds the three together).
//
// Tags are observation-only: they never influence ordering, RNG draws
// or anything else the simulation computes.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mvsim::des {

enum class EventType : std::uint8_t {
  kGeneric = 0,         ///< untagged (tests, ad-hoc drivers)
  kSeedInfection,       ///< patient-zero force-infect at t=0
  kPhoneRead,           ///< a phone reading a received message
  kVirusSend,           ///< a virus dissemination attempt
  kVirusLegitTraffic,   ///< legitimate MMS traffic (piggyback viruses)
  kVirusReboot,         ///< per-reboot budget refresh
  kMessageDelivery,     ///< gateway delivering a message to recipients
  kBluetoothScan,       ///< proximity-channel scan / push attempt
  kMobilityMove,        ///< a phone moving on the mobility grid
  kResponseActivation,  ///< a response mechanism going live / deploying
  kResponsePatch,       ///< a patch arriving at one phone
  kResponseTick,        ///< a periodic response-mechanism tick
  kSample,              ///< a time-series sampling event
};

inline constexpr std::size_t kEventTypeCount =
    static_cast<std::size_t>(EventType::kSample) + 1;

/// Stable snake_case name, used to build the `prof.event.<name>` metric.
[[nodiscard]] inline const char* to_string(EventType type) {
  switch (type) {
    case EventType::kGeneric: return "generic";
    case EventType::kSeedInfection: return "seed_infection";
    case EventType::kPhoneRead: return "phone_read";
    case EventType::kVirusSend: return "virus_send";
    case EventType::kVirusLegitTraffic: return "virus_legit_traffic";
    case EventType::kVirusReboot: return "virus_reboot";
    case EventType::kMessageDelivery: return "message_delivery";
    case EventType::kBluetoothScan: return "bluetooth_scan";
    case EventType::kMobilityMove: return "mobility_move";
    case EventType::kResponseActivation: return "response_activation";
    case EventType::kResponsePatch: return "response_patch";
    case EventType::kResponseTick: return "response_tick";
    case EventType::kSample: return "sample";
  }
  return "unknown";
}

/// Sink for per-event wall-clock measurements. The scheduler calls
/// record_event() after each executed callback when a timer is
/// attached (see Scheduler::set_event_timer); prof::Profiler is the
/// production implementation. Implementations must not schedule
/// events or draw randomness — timing is observation-only.
class EventTimer {
 public:
  virtual void record_event(EventType type, double micros) = 0;

 protected:
  ~EventTimer() = default;
};

}  // namespace mvsim::des
