// Periodic metric sampler.
//
// The paper's figures plot infection count against hours; the sampler
// reproduces that by polling a probe function on a fixed grid. Samples
// are (time, value) pairs; the stats layer aggregates them across
// replications.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "des/scheduler.h"
#include "util/sim_time.h"

namespace mvsim::des {

class PeriodicSampler {
 public:
  using Probe = std::function<double()>;

  /// Polls `probe` at t = 0, period, 2*period, ... while the scheduler
  /// runs, up to and including `horizon` (inclusive when aligned).
  /// Must be constructed before the scheduler runs; registers its own
  /// events. `period` must be positive and `horizon` nonnegative.
  PeriodicSampler(Scheduler& scheduler, SimTime period, SimTime horizon, Probe probe);

  [[nodiscard]] const std::vector<std::pair<SimTime, double>>& samples() const {
    return samples_;
  }

 private:
  void take_sample();

  Scheduler* scheduler_;
  SimTime period_;
  SimTime horizon_;
  Probe probe_;
  std::vector<std::pair<SimTime, double>> samples_;
};

}  // namespace mvsim::des
