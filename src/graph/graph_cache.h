// Immutable shared-graph cache.
//
// Replications of one experiment regenerate the same contact graph
// when the topology seed and parameters coincide — at 10^6 phones the
// build dominates replication setup and the copies dominate memory.
// GraphCache builds each distinct (seed, params) graph once and hands
// out shared_ptr<const ContactGraph> to every requester.
//
// Determinism contract: the builder consumes randomness from the
// topology stream, and later draws (susceptible sampling, patient
// zero) continue from the post-build stream state. A cache entry
// therefore stores that post-build rng::Stream alongside the graph;
// on a hit the caller restores it and proceeds exactly as if it had
// built the graph itself — curves and rng.draws telemetry are
// byte-identical with the cache on or off.
//
// Thread-safe: concurrent requesters of the same key block on a
// shared future while the first one builds; distinct keys build
// concurrently.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>

#include "graph/contact_graph.h"
#include "rng/stream.h"

namespace mvsim::graph {

/// Identity of one graph build: the derived topology-stream seed plus
/// a hash of every generator-relevant parameter (kind, population,
/// mean degree, alpha, jitter). Equal keys ⇒ bit-identical builds.
struct GraphCacheKey {
  std::uint64_t seed = 0;
  std::uint64_t params_hash = 0;

  bool operator==(const GraphCacheKey&) const = default;
};

/// One cached build: the immutable graph and the generator stream
/// state immediately after construction.
struct CachedGraph {
  std::shared_ptr<const ContactGraph> graph;
  rng::Stream post_build_stream;
};

class GraphCache {
 public:
  /// `capacity` bounds the number of retained entries (LRU eviction;
  /// handed-out shared_ptrs keep evicted graphs alive until released).
  explicit GraphCache(std::size_t capacity = 8);

  using Builder = std::function<CachedGraph()>;

  /// Returns the cached build for `key`, invoking `builder` (outside
  /// the lock) if this is the first request. Concurrent requests for
  /// the same key share one build. A builder that throws evicts the
  /// entry and rethrows to every waiter.
  std::shared_ptr<const CachedGraph> get_or_build(const GraphCacheKey& key,
                                                  const Builder& builder);

  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    GraphCacheKey key;
    std::shared_future<std::shared_ptr<const CachedGraph>> future;
    std::uint64_t last_used = 0;
  };

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::list<Entry> entries_;
};

/// FNV-1a over an arbitrary byte-sized value list; the helper the
/// simulation uses to derive GraphCacheKey::params_hash from topology
/// parameters.
std::uint64_t hash_combine(std::uint64_t hash, std::uint64_t value);
inline constexpr std::uint64_t kHashSeed = 0xCBF2'9CE4'8422'2325ull;

}  // namespace mvsim::graph
