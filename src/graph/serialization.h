// NGCE-style contact-list file round-trip.
//
// The paper modified NGCE to emit a contact-list file that its Möbius
// model read back. We reproduce that interchange format so generated
// topologies can be saved, inspected, diffed and re-loaded:
//
//   # comment lines allowed
//   <phone-id>: <contact> <contact> ...
//
// Every phone appears exactly once (possibly with an empty list); the
// loader verifies reciprocity and rejects malformed input.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/contact_graph.h"

namespace mvsim::graph {

/// Writes the graph as one contact-list line per phone.
void write_contact_lists(const ContactGraph& graph, std::ostream& out);

/// Parses a contact-list stream. Throws std::invalid_argument with a
/// line-numbered message on malformed input, missing reciprocity,
/// self-loops or duplicate ids.
[[nodiscard]] ContactGraph read_contact_lists(std::istream& in);

/// Convenience: serialize to / parse from a string.
[[nodiscard]] std::string to_contact_list_string(const ContactGraph& graph);
[[nodiscard]] ContactGraph from_contact_list_string(const std::string& text);

}  // namespace mvsim::graph
