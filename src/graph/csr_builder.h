// Streaming CSR construction.
//
// Generators used to materialize a full O(E) edge vector and hand it
// to ContactGraph's two-pass constructor. CsrBuilder exposes those two
// passes directly so a generator can instead *emit* its edge sequence
// twice — count pass, then fill pass — and never own an edge list at
// all. For stochastic generators the second emission replays the first
// bit-identically by running the count pass on a copy of the RNG
// stream and the fill pass on the real one (rng::Stream is a value
// type; copying captures the exact mid-sequence state).
//
// Usage:
//   CsrBuilder b(n);
//   for (edge e : sequence) b.count_edge(e.a, e.b);   // pass 1
//   b.begin_fill();
//   for (edge e : sequence) b.fill_edge(e.a, e.b);    // same sequence
//   ContactGraph g = std::move(b).finish();
//
// finish() sorts each contact list and enforces the simple-graph
// invariants with the same std::invalid_argument contract as the
// ContactGraph edge-list constructor (self-loop, duplicate edge,
// endpoint out of range).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/contact_graph.h"

namespace mvsim::graph {

class CsrBuilder {
 public:
  explicit CsrBuilder(PhoneId node_count);

  /// Pass 1: tally one undirected edge. Validates endpoints eagerly so
  /// a bad edge is reported at its first appearance.
  void count_edge(PhoneId a, PhoneId b);

  /// Seals pass 1: prefix-sums the per-node counts and allocates the
  /// adjacency array (the only O(E) allocation of the build). Throws
  /// std::length_error if the graph needs more than 2^32-1 adjacency
  /// entries (the documented 32-bit offset limit).
  void begin_fill();

  /// Pass 2: place one undirected edge. The fill sequence must repeat
  /// the count sequence (checked: a mismatch overruns a node's slot
  /// range and throws std::logic_error).
  void fill_edge(PhoneId a, PhoneId b);

  /// Sorts every contact list, rejects duplicate edges, and adopts the
  /// arrays into a ContactGraph. Consumes the builder.
  [[nodiscard]] ContactGraph finish() &&;

 private:
  void check_edge(PhoneId a, PhoneId b) const;

  PhoneId node_count_;
  bool filling_ = false;
  std::uint64_t edge_count_ = 0;
  // During pass 1 this holds per-node degree counts at [p + 1]; after
  // begin_fill it is the final offset array, with cursor_ tracking each
  // node's next free adjacency slot.
  std::vector<std::uint32_t> offsets_;
  std::vector<std::uint32_t> cursor_;
  std::vector<PhoneId> adjacency_;
};

}  // namespace mvsim::graph
