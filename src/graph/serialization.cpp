#include "graph/serialization.h"

#include <algorithm>
#include <cstdint>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace mvsim::graph {

void write_contact_lists(const ContactGraph& graph, std::ostream& out) {
  out << "# mvsim contact lists: " << graph.node_count() << " phones, " << graph.edge_count()
      << " reciprocal links\n";
  for (PhoneId p = 0; p < graph.node_count(); ++p) {
    out << p << ':';
    for (PhoneId q : graph.contacts(p)) out << ' ' << q;
    out << '\n';
  }
}

ContactGraph read_contact_lists(std::istream& in) {
  std::vector<std::vector<PhoneId>> lists;
  std::vector<bool> defined;
  std::string line;
  long line_number = 0;

  auto fail = [&](const std::string& why) {
    throw std::invalid_argument("contact-list line " + std::to_string(line_number) + ": " + why);
  };

  while (std::getline(in, line)) {
    ++line_number;
    // Strip comments and whitespace-only lines.
    auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    auto colon = line.find(':');
    if (colon == std::string::npos) fail("missing ':'");
    std::uint64_t id = 0;
    try {
      std::size_t consumed = 0;
      id = std::stoull(line.substr(0, colon), &consumed);
      if (line.substr(0, colon).find_first_not_of(" \t", consumed) != std::string::npos) {
        fail("trailing characters in phone id");
      }
    } catch (const std::exception&) {
      fail("unparsable phone id");
    }
    if (id >= lists.size()) {
      lists.resize(id + 1);
      defined.resize(id + 1, false);
    }
    if (defined[id]) fail("phone " + std::to_string(id) + " defined twice");
    defined[id] = true;

    std::istringstream rest(line.substr(colon + 1));
    std::uint64_t contact = 0;
    while (rest >> contact) {
      if (contact == id) fail("self-loop at phone " + std::to_string(id));
      lists[id].push_back(static_cast<PhoneId>(contact));
    }
    if (!rest.eof()) fail("unparsable contact id");
  }

  const auto n = static_cast<PhoneId>(lists.size());
  for (PhoneId p = 0; p < n; ++p) {
    if (!defined[p]) {
      throw std::invalid_argument("contact-list file: phone " + std::to_string(p) +
                                  " missing (ids must be dense 0..n-1)");
    }
    for (PhoneId q : lists[p]) {
      if (q >= n) {
        throw std::invalid_argument("contact-list file: phone " + std::to_string(p) +
                                    " references unknown phone " + std::to_string(q));
      }
    }
  }

  // Build edges from the lower endpoint only, verifying reciprocity.
  std::vector<ContactGraph::Edge> edges;
  for (PhoneId p = 0; p < n; ++p) {
    std::sort(lists[p].begin(), lists[p].end());
    for (PhoneId q : lists[p]) {
      if (!std::binary_search(lists[q].begin(), lists[q].end(), p)) {
        // lists[q] may be unsorted if q > p; sort on demand.
        std::sort(lists[q].begin(), lists[q].end());
        if (!std::binary_search(lists[q].begin(), lists[q].end(), p)) {
          throw std::invalid_argument("contact-list file: link " + std::to_string(p) + "->" +
                                      std::to_string(q) + " is not reciprocal");
        }
      }
      if (p < q) edges.push_back({p, q});
    }
  }
  return ContactGraph(n, edges);
}

std::string to_contact_list_string(const ContactGraph& graph) {
  std::ostringstream out;
  write_contact_lists(graph, out);
  return out.str();
}

ContactGraph from_contact_list_string(const std::string& text) {
  std::istringstream in(text);
  return read_contact_lists(in);
}

}  // namespace mvsim::graph
