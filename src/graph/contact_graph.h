// Reciprocal contact-list graph.
//
// The paper's phones are connected by reciprocal contact lists ("if
// phone 22 is in the contact list of phone 83, then phone 83 is in the
// contact list of phone 22"), i.e. an undirected simple graph.
// ContactGraph enforces that invariant at construction: adjacency is
// symmetric, self-loop-free and duplicate-free by the time a graph is
// handed to the simulator.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace mvsim::graph {

using PhoneId = std::uint32_t;

/// "No phone": phone id 0 is a real phone, so fields that may be
/// unset (a trace event with no subject, an unknown infector) carry
/// this sentinel instead. No simulated population ever reaches 2^32-1
/// phones — ScenarioConfig validates far below that.
inline constexpr PhoneId kInvalidPhoneId = 0xFFFF'FFFFu;

class ContactGraph {
 public:
  /// An undirected edge; normalized so a <= b is not required on input.
  struct Edge {
    PhoneId a;
    PhoneId b;
  };

  /// Builds the graph from an edge list. Throws std::invalid_argument
  /// on self-loops, duplicate edges (in either orientation) or
  /// endpoints >= node_count.
  ContactGraph(PhoneId node_count, std::span<const Edge> edges);

  /// An empty graph (no edges) over `node_count` phones.
  explicit ContactGraph(PhoneId node_count);

  [[nodiscard]] PhoneId node_count() const { return static_cast<PhoneId>(offsets_.size() - 1); }
  [[nodiscard]] std::size_t edge_count() const { return adjacency_.size() / 2; }

  /// The contact list of `phone`, sorted ascending.
  [[nodiscard]] std::span<const PhoneId> contacts(PhoneId phone) const;

  [[nodiscard]] std::size_t degree(PhoneId phone) const { return contacts(phone).size(); }

  /// True if `a` and `b` are in each other's contact lists.
  [[nodiscard]] bool connected(PhoneId a, PhoneId b) const;

  [[nodiscard]] double average_degree() const;

 private:
  void check_node(PhoneId phone) const;

  // CSR layout: contacts of phone p are adjacency_[offsets_[p] .. offsets_[p+1]).
  std::vector<std::size_t> offsets_;
  std::vector<PhoneId> adjacency_;
};

}  // namespace mvsim::graph
