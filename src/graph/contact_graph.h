// Reciprocal contact-list graph.
//
// The paper's phones are connected by reciprocal contact lists ("if
// phone 22 is in the contact list of phone 83, then phone 83 is in the
// contact list of phone 22"), i.e. an undirected simple graph.
// ContactGraph enforces that invariant at construction: adjacency is
// symmetric, self-loop-free and duplicate-free by the time a graph is
// handed to the simulator.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/ids.h"

namespace mvsim::graph {

using mvsim::PhoneId;
using mvsim::kInvalidPhoneId;

class CsrBuilder;

class ContactGraph {
 public:
  /// An undirected edge; normalized so a <= b is not required on input.
  struct Edge {
    PhoneId a;
    PhoneId b;
  };

  /// Builds the graph from an edge list. Throws std::invalid_argument
  /// on self-loops, duplicate edges (in either orientation) or
  /// endpoints >= node_count. Generators avoid this path (they stream
  /// edges through CsrBuilder instead of materializing a list); it
  /// remains the construction route for deserialization and tests.
  ContactGraph(PhoneId node_count, std::span<const Edge> edges);

  /// An empty graph (no edges) over `node_count` phones.
  explicit ContactGraph(PhoneId node_count);

  [[nodiscard]] PhoneId node_count() const { return static_cast<PhoneId>(offsets_.size() - 1); }
  [[nodiscard]] std::size_t edge_count() const { return adjacency_.size() / 2; }

  /// The contact list of `phone`, sorted ascending.
  [[nodiscard]] std::span<const PhoneId> contacts(PhoneId phone) const;

  [[nodiscard]] std::size_t degree(PhoneId phone) const { return contacts(phone).size(); }

  /// True if `a` and `b` are in each other's contact lists.
  [[nodiscard]] bool connected(PhoneId a, PhoneId b) const;

  [[nodiscard]] double average_degree() const;

  /// Heap footprint of the CSR arrays, for the bytes-per-phone budget
  /// the scaling bench reports.
  [[nodiscard]] std::size_t memory_bytes() const {
    return offsets_.capacity() * sizeof(std::uint32_t) + adjacency_.capacity() * sizeof(PhoneId);
  }

 private:
  friend class CsrBuilder;

  /// Adopts fully-built CSR arrays (CsrBuilder::finish has already
  /// enforced the simple-graph invariants).
  ContactGraph(std::vector<std::uint32_t> offsets, std::vector<PhoneId> adjacency)
      : offsets_(std::move(offsets)), adjacency_(std::move(adjacency)) {}

  void check_node(PhoneId phone) const;

  // CSR layout: contacts of phone p are adjacency_[offsets_[p] .. offsets_[p+1]).
  // Offsets are 32-bit on purpose — the adjacency array holds 2*E
  // entries and CsrBuilder rejects graphs past 2^32-1 of them, which at
  // mean degree 80 is ~27M phones, far above any simulated population.
  // At 10^6 nodes this halves the index memory vs size_t offsets.
  std::vector<std::uint32_t> offsets_;
  std::vector<PhoneId> adjacency_;
};

}  // namespace mvsim::graph
