#include "graph/contact_graph.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "graph/csr_builder.h"

namespace mvsim::graph {

ContactGraph::ContactGraph(PhoneId node_count)
    : offsets_(static_cast<std::size_t>(node_count) + 1, 0) {}

ContactGraph::ContactGraph(PhoneId node_count, std::span<const Edge> edges)
    : ContactGraph([&] {
        CsrBuilder builder(node_count);
        for (const Edge& e : edges) builder.count_edge(e.a, e.b);
        builder.begin_fill();
        for (const Edge& e : edges) builder.fill_edge(e.a, e.b);
        return std::move(builder).finish();
      }()) {}

std::span<const PhoneId> ContactGraph::contacts(PhoneId phone) const {
  check_node(phone);
  return {adjacency_.data() + offsets_[phone],
          static_cast<std::size_t>(offsets_[phone + 1ULL] - offsets_[phone])};
}

bool ContactGraph::connected(PhoneId a, PhoneId b) const {
  check_node(a);
  check_node(b);
  auto list = contacts(a);
  return std::binary_search(list.begin(), list.end(), b);
}

double ContactGraph::average_degree() const {
  if (node_count() == 0) return 0.0;
  return static_cast<double>(adjacency_.size()) / static_cast<double>(node_count());
}

void ContactGraph::check_node(PhoneId phone) const {
  if (phone >= node_count()) {
    throw std::out_of_range("ContactGraph: phone " + std::to_string(phone) + " >= node count " +
                            std::to_string(node_count()));
  }
}

}  // namespace mvsim::graph
