#include "graph/contact_graph.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace mvsim::graph {

ContactGraph::ContactGraph(PhoneId node_count) : offsets_(node_count + 1ULL, 0) {}

ContactGraph::ContactGraph(PhoneId node_count, std::span<const Edge> edges)
    : offsets_(node_count + 1ULL, 0) {
  // Two-pass CSR build: count degrees, then fill.
  for (const Edge& e : edges) {
    if (e.a >= node_count || e.b >= node_count) {
      throw std::invalid_argument("ContactGraph: edge endpoint out of range (" +
                                  std::to_string(e.a) + "," + std::to_string(e.b) + ")");
    }
    if (e.a == e.b) {
      throw std::invalid_argument("ContactGraph: self-loop at phone " + std::to_string(e.a));
    }
    ++offsets_[e.a + 1ULL];
    ++offsets_[e.b + 1ULL];
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i) offsets_[i] += offsets_[i - 1];

  adjacency_.resize(edges.size() * 2);
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const Edge& e : edges) {
    adjacency_[cursor[e.a]++] = e.b;
    adjacency_[cursor[e.b]++] = e.a;
  }
  for (PhoneId p = 0; p < node_count; ++p) {
    auto begin = adjacency_.begin() + static_cast<std::ptrdiff_t>(offsets_[p]);
    auto end = adjacency_.begin() + static_cast<std::ptrdiff_t>(offsets_[p + 1ULL]);
    std::sort(begin, end);
    if (std::adjacent_find(begin, end) != end) {
      throw std::invalid_argument("ContactGraph: duplicate edge at phone " + std::to_string(p));
    }
  }
}

std::span<const PhoneId> ContactGraph::contacts(PhoneId phone) const {
  check_node(phone);
  return {adjacency_.data() + offsets_[phone], offsets_[phone + 1ULL] - offsets_[phone]};
}

bool ContactGraph::connected(PhoneId a, PhoneId b) const {
  check_node(a);
  check_node(b);
  auto list = contacts(a);
  return std::binary_search(list.begin(), list.end(), b);
}

double ContactGraph::average_degree() const {
  if (node_count() == 0) return 0.0;
  return static_cast<double>(adjacency_.size()) / static_cast<double>(node_count());
}

void ContactGraph::check_node(PhoneId phone) const {
  if (phone >= node_count()) {
    throw std::out_of_range("ContactGraph: phone " + std::to_string(phone) + " >= node count " +
                            std::to_string(node_count()));
  }
}

}  // namespace mvsim::graph
