#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <unordered_set>
#include <vector>

namespace mvsim::graph {

namespace {

/// Packs an undirected edge into one key for duplicate detection.
std::uint64_t edge_key(PhoneId a, PhoneId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

struct EdgeAccumulator {
  explicit EdgeAccumulator(std::size_t expected) { seen.reserve(expected * 2); }

  bool try_add(PhoneId a, PhoneId b) {
    if (a == b) return false;
    if (!seen.insert(edge_key(a, b)).second) return false;
    edges.push_back({a, b});
    return true;
  }

  bool contains(PhoneId a, PhoneId b) const { return seen.count(edge_key(a, b)) > 0; }

  void replace(std::size_t index, PhoneId a, PhoneId b) {
    const ContactGraph::Edge& old = edges[index];
    seen.erase(edge_key(old.a, old.b));
    seen.insert(edge_key(a, b));
    edges[index] = {a, b};
  }

  void remove(std::size_t index) {
    seen.erase(edge_key(edges[index].a, edges[index].b));
    edges[index] = edges.back();
    edges.pop_back();
  }

  std::vector<ContactGraph::Edge> edges;
  std::unordered_set<std::uint64_t> seen;
};

/// The bounded power-law pmf the degree sampler draws from, kept
/// locally so the scale calibration can evaluate clamped expectations.
struct DegreeLaw {
  DegreeLaw(std::uint64_t k_min, std::uint64_t k_max, double alpha) : k_min_(k_min) {
    double total = 0.0;
    pmf_.reserve(k_max - k_min + 1);
    for (std::uint64_t k = k_min; k <= k_max; ++k) {
      double w = std::pow(static_cast<double>(k), -alpha);
      pmf_.push_back(w);
      total += w;
    }
    for (double& p : pmf_) p /= total;
  }

  /// E[clamp(scale * K, 1, cap)] — strictly increasing in scale until
  /// every mass point saturates at the cap.
  [[nodiscard]] double clamped_mean(double scale, double cap) const {
    double expectation = 0.0;
    for (std::size_t i = 0; i < pmf_.size(); ++i) {
      double value = scale * static_cast<double>(k_min_ + i);
      expectation += pmf_[i] * std::clamp(value, 1.0, cap);
    }
    return expectation;
  }

  /// Smallest scale whose clamped mean reaches `target` (bisection).
  [[nodiscard]] double solve_scale(double target, double cap) const {
    double lo = 0.0, hi = 1.0;
    while (clamped_mean(hi, cap) < target && hi < 1e9) hi *= 2.0;
    for (int iter = 0; iter < 100; ++iter) {
      double mid = 0.5 * (lo + hi);
      if (clamped_mean(mid, cap) < target) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return 0.5 * (lo + hi);
  }

  std::uint64_t k_min_;
  std::vector<double> pmf_;
};

}  // namespace

ValidationErrors PowerLawConfig::validate() const {
  ValidationErrors errors("PowerLawConfig");
  errors.require(node_count >= 2, "node_count must be >= 2");
  errors.require(target_mean_degree > 0.0, "target_mean_degree must be positive");
  errors.require(target_mean_degree < static_cast<double>(node_count),
                 "target_mean_degree must be < node_count");
  errors.require(alpha > 0.0, "alpha must be positive");
  errors.require(min_degree >= 1, "min_degree must be >= 1");
  errors.require(locality_jitter >= 0.0, "locality_jitter must be >= 0");
  if (max_degree != 0) {
    errors.require(max_degree >= min_degree, "max_degree must be >= min_degree");
    errors.require(max_degree < node_count, "max_degree must be < node_count");
  }
  return errors;
}

ContactGraph generate_power_law(const PowerLawConfig& config, rng::Stream& stream) {
  config.validate().throw_if_invalid();
  const PhoneId n = config.node_count;
  std::uint32_t max_degree = config.max_degree;
  if (max_degree == 0) max_degree = std::max<std::uint32_t>(config.min_degree, n / 3);
  max_degree = std::min<std::uint32_t>(max_degree, n - 1);

  // Draw raw power-law degrees, then rescale so the expected mean hits
  // the target. Rescaling preserves the heavy-tailed *shape* — which is
  // all the paper relies on — while pinning the mean contact-list size
  // (80 in the paper's setup). The scale is calibrated against the
  // clamped expectation: naive scaling undershoots whenever the tail
  // would exceed the n-1 degree cap.
  rng::PowerLawTable table(config.min_degree, max_degree, config.alpha);
  DegreeLaw law(config.min_degree, max_degree, config.alpha);
  // max_degree caps the *final* contact-list size: nobody's address
  // book holds a third of the subscriber base. Without this cap the
  // scaled tail produces degree-(n-1) super-hubs that let a burst virus
  // cover the whole network in one generation.
  const double cap = static_cast<double>(max_degree);
  const double scale = law.solve_scale(config.target_mean_degree, cap);

  std::vector<std::uint32_t> degrees(n);
  for (auto& d : degrees) {
    double scaled = std::clamp(static_cast<double>(table.sample(stream)) * scale, 1.0, cap);
    // Stochastic rounding keeps the mean unbiased.
    auto floor_part = static_cast<std::uint32_t>(scaled);
    double frac = scaled - floor_part;
    std::uint32_t value = floor_part + (stream.bernoulli(frac) ? 1U : 0U);
    d = std::clamp<std::uint32_t>(value, 1U, max_degree);
  }

  // The stub count must be even for pairing.
  std::uint64_t stub_total = std::accumulate(degrees.begin(), degrees.end(), std::uint64_t{0});
  if (stub_total % 2 == 1) {
    auto bump = static_cast<std::size_t>(stream.uniform_index(n));
    if (degrees[bump] < n - 1) {
      ++degrees[bump];
    } else {
      --degrees[bump];
    }
    ++stub_total;  // parity flipped either way; value only used for reserve below
  }

  // Configuration model: one stub per degree unit, paired after either
  // a uniform shuffle (locality_jitter == 0) or a sort by ring position
  // plus positional noise. The latter pairs stubs of nearby phones, so
  // contact lists overlap locally and the graph acquires the triadic
  // clustering of real social networks while keeping the exact degree
  // sequence.
  std::vector<PhoneId> stubs;
  stubs.reserve(static_cast<std::size_t>(stub_total));
  for (PhoneId p = 0; p < n; ++p) {
    stubs.insert(stubs.end(), degrees[p], p);
  }
  if (config.locality_jitter <= 0.0) {
    stream.shuffle(std::span<PhoneId>(stubs));
  } else {
    std::vector<std::pair<double, PhoneId>> keyed;
    keyed.reserve(stubs.size());
    for (PhoneId p : stubs) {
      double position = static_cast<double>(p) / static_cast<double>(n);
      double key = position + config.locality_jitter * stream.uniform(-0.5, 0.5);
      key -= std::floor(key);  // wrap around the ring
      keyed.emplace_back(key, p);
    }
    std::sort(keyed.begin(), keyed.end());
    for (std::size_t i = 0; i < keyed.size(); ++i) stubs[i] = keyed[i].second;
  }

  EdgeAccumulator acc(stubs.size() / 2);
  std::vector<PhoneId> leftovers;  // stubs whose pairing collided
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    if (!acc.try_add(stubs[i], stubs[i + 1])) {
      leftovers.push_back(stubs[i]);
      leftovers.push_back(stubs[i + 1]);
    }
  }

  // Repair pass: rewire collided stub pairs through random edge swaps.
  // For leftover pair (u, v) pick an existing edge (x, y) and replace it
  // with (u, x) and (v, y) when all constraints hold. A bounded number
  // of attempts per pair keeps generation O(edges) with high probability;
  // irreparable pairs are dropped (shaves < 1% off the mean degree).
  constexpr int kMaxAttemptsPerPair = 64;
  for (std::size_t i = 0; i + 1 < leftovers.size(); i += 2) {
    PhoneId u = leftovers[i];
    PhoneId v = leftovers[i + 1];
    if (acc.try_add(u, v)) continue;
    bool repaired = false;
    for (int attempt = 0; attempt < kMaxAttemptsPerPair && !acc.edges.empty(); ++attempt) {
      auto index = static_cast<std::size_t>(stream.uniform_index(acc.edges.size()));
      ContactGraph::Edge e = acc.edges[index];
      PhoneId x = e.a, y = e.b;
      if (u == x || u == y || v == x || v == y) continue;
      if (acc.contains(u, x) || acc.contains(v, y)) continue;
      acc.replace(index, u, x);
      acc.try_add(v, y);  // cannot collide: checked above and (x,y) removed
      repaired = true;
      break;
    }
    if (!repaired) {
      // Drop the pair; realized degree of u and v falls short by one.
    }
  }

  // Exact-mean pass: collisions (dense graphs, hub-heavy sequences)
  // bleed a few percent of edges; top up with uniform random edges —
  // or trim — until the realized mean degree matches the target. The
  // correction is a small fraction of the edge set, so the power-law
  // shape is untouched.
  const auto target_edges = static_cast<std::size_t>(
      std::llround(config.target_mean_degree * static_cast<double>(n) / 2.0));
  std::uint64_t attempts = 0;
  const std::uint64_t max_attempts = 200ULL * (target_edges + 16);
  while (acc.edges.size() < target_edges && attempts++ < max_attempts) {
    auto a = static_cast<PhoneId>(stream.uniform_index(n));
    auto b = static_cast<PhoneId>(stream.uniform_index(n));
    acc.try_add(a, b);
  }
  while (acc.edges.size() > target_edges) {
    acc.remove(static_cast<std::size_t>(stream.uniform_index(acc.edges.size())));
  }

  return ContactGraph(n, acc.edges);
}

ContactGraph generate_erdos_renyi(PhoneId node_count, double target_mean_degree,
                                  rng::Stream& stream) {
  if (node_count < 2) throw std::invalid_argument("generate_erdos_renyi: node_count must be >= 2");
  if (!(target_mean_degree > 0.0) || target_mean_degree >= static_cast<double>(node_count)) {
    throw std::invalid_argument("generate_erdos_renyi: mean degree out of range");
  }
  // In G(n, p) the mean degree is p * (n - 1).
  const double p = target_mean_degree / static_cast<double>(node_count - 1);
  std::vector<ContactGraph::Edge> edges;
  edges.reserve(static_cast<std::size_t>(target_mean_degree) * node_count / 2 + 16);
  // Geometric skipping: iterate only over present edges, O(edges).
  const double log1mp = std::log1p(-p);
  std::uint64_t total_pairs = static_cast<std::uint64_t>(node_count) * (node_count - 1) / 2;
  std::uint64_t position = 0;
  while (true) {
    double u = stream.uniform01();
    auto skip = static_cast<std::uint64_t>(std::floor(std::log1p(-u) / log1mp));
    position += skip;
    if (position >= total_pairs) break;
    // Unrank `position` into (a, b), a < b: row a has (n-1-a) pairs.
    std::uint64_t remaining = position;
    PhoneId a = 0;
    std::uint64_t row = node_count - 1;
    while (remaining >= row) {
      remaining -= row;
      --row;
      ++a;
    }
    PhoneId b = static_cast<PhoneId>(a + 1 + remaining);
    edges.push_back({a, b});
    ++position;
  }
  return ContactGraph(node_count, edges);
}

ContactGraph generate_barabasi_albert(PhoneId node_count, std::uint32_t edges_per_node,
                                      rng::Stream& stream) {
  if (edges_per_node == 0) {
    throw std::invalid_argument("generate_barabasi_albert: edges_per_node must be >= 1");
  }
  if (node_count <= edges_per_node) {
    throw std::invalid_argument("generate_barabasi_albert: node_count must exceed edges_per_node");
  }
  // Seed graph: a clique over the first m+1 nodes, so every early node
  // has nonzero degree and attachment is well-defined.
  const std::uint32_t m = edges_per_node;
  EdgeAccumulator acc(static_cast<std::size_t>(node_count) * m);
  // The repeated-endpoints trick: sampling a uniform entry of this list
  // IS degree-proportional sampling.
  std::vector<PhoneId> endpoints;
  endpoints.reserve(2ULL * node_count * m);
  for (PhoneId a = 0; a <= m; ++a) {
    for (PhoneId b = a + 1; b <= m; ++b) {
      acc.try_add(a, b);
      endpoints.push_back(a);
      endpoints.push_back(b);
    }
  }
  for (PhoneId arrival = m + 1; arrival < node_count; ++arrival) {
    std::uint32_t attached = 0;
    // Rejection keeps targets distinct; with m far below the graph
    // size the expected retry count is negligible.
    std::uint32_t guard = 0;
    while (attached < m && guard++ < 100 * m) {
      PhoneId target = endpoints[static_cast<std::size_t>(stream.uniform_index(endpoints.size()))];
      if (acc.try_add(arrival, target)) {
        endpoints.push_back(arrival);
        endpoints.push_back(target);
        ++attached;
      }
    }
  }
  return ContactGraph(node_count, acc.edges);
}

ContactGraph generate_regular_ring(PhoneId node_count, std::uint32_t k) {
  if (node_count < 3) throw std::invalid_argument("generate_regular_ring: node_count must be >= 3");
  if (k % 2 != 0) throw std::invalid_argument("generate_regular_ring: k must be even");
  if (k >= node_count) throw std::invalid_argument("generate_regular_ring: k must be < node_count");
  std::vector<ContactGraph::Edge> edges;
  edges.reserve(static_cast<std::size_t>(node_count) * k / 2);
  for (PhoneId p = 0; p < node_count; ++p) {
    for (std::uint32_t offset = 1; offset <= k / 2; ++offset) {
      PhoneId q = static_cast<PhoneId>((p + offset) % node_count);
      edges.push_back({p, q});
    }
  }
  return ContactGraph(node_count, edges);
}

}  // namespace mvsim::graph
