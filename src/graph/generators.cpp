#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

#include "graph/csr_builder.h"

namespace mvsim::graph {

namespace {

/// Packs an undirected edge into one normalized key for duplicate
/// detection.
std::uint64_t edge_key(PhoneId a, PhoneId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

/// Open-addressing membership set for normalized edge keys.
///
/// std::unordered_set costs ~40 bytes per edge (node allocation +
/// bucket pointer); this flat table costs 8 bytes per slot at ~60%
/// peak load. Two keys can never occur as real edges — 0 is the
/// self-loop (0,0) and 2^64-1 the self-loop (max,max), both rejected
/// before insertion — so they serve as the empty and tombstone
/// markers and no separate occupancy bitmap is needed.
class FlatEdgeSet {
 public:
  explicit FlatEdgeSet(std::size_t expected) { rehash(slots_for(expected)); }

  bool insert(std::uint64_t key) {
    if (used_ + 1 > (slots_.size() * 3) / 5) rehash(slots_.size() * 2);
    std::size_t i = probe(key);
    if (slots_[i] == key) return false;
    if (slots_[i] == kEmpty) ++used_;  // reusing a tombstone keeps used_
    slots_[i] = key;
    ++size_;
    return true;
  }

  [[nodiscard]] bool contains(std::uint64_t key) const { return slots_[probe(key)] == key; }

  void erase(std::uint64_t key) {
    std::size_t i = probe(key);
    if (slots_[i] != key) return;
    slots_[i] = kTombstone;
    --size_;
  }

  [[nodiscard]] std::size_t size() const { return size_; }

  /// Releases the table (the CSR build that follows no longer needs
  /// membership queries).
  void free_memory() {
    slots_ = {};
    size_ = used_ = 0;
  }

 private:
  static constexpr std::uint64_t kEmpty = 0;                        // self-loop (0,0)
  static constexpr std::uint64_t kTombstone = ~std::uint64_t{0};    // self-loop (max,max)

  static std::size_t slots_for(std::size_t expected) {
    std::size_t n = 16;
    while (n * 3 < expected * 5) n *= 2;  // keep load below 60%
    return n;
  }

  static std::uint64_t mix(std::uint64_t x) {
    x ^= x >> 33;
    x *= 0xFF51'AFD7'ED55'8CCDull;
    x ^= x >> 33;
    x *= 0xC4CE'B9FE'1A85'EC53ull;
    x ^= x >> 33;
    return x;
  }

  /// Index of `key` if present, else of the slot where it would be
  /// inserted (first tombstone on the probe path, or the empty slot).
  [[nodiscard]] std::size_t probe(std::uint64_t key) const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(mix(key)) & mask;
    std::size_t first_tombstone = slots_.size();
    while (true) {
      if (slots_[i] == key) return i;
      if (slots_[i] == kEmpty) {
        return first_tombstone != slots_.size() ? first_tombstone : i;
      }
      if (slots_[i] == kTombstone && first_tombstone == slots_.size()) first_tombstone = i;
      i = (i + 1) & mask;
    }
  }

  void rehash(std::size_t new_slots) {
    std::vector<std::uint64_t> old = std::move(slots_);
    slots_.assign(std::max<std::size_t>(new_slots, 16), kEmpty);
    size_ = used_ = 0;
    for (std::uint64_t key : old) {
      if (key == kEmpty || key == kTombstone) continue;
      std::size_t i = probe(key);
      slots_[i] = key;
      ++size_;
      ++used_;
    }
  }

  std::vector<std::uint64_t> slots_;
  std::size_t size_ = 0;
  std::size_t used_ = 0;  ///< occupied + tombstoned (governs rehash)
};

/// The power-law generator's working edge set: an insertion-ordered,
/// orientation-preserving packed edge sequence (8 bytes/edge — the
/// repair pass reads edge endpoints asymmetrically, so orientation
/// matters) plus flat membership. Replaces the former
/// vector<Edge> + unordered_set pair (~48 bytes/edge) and is streamed
/// straight into CsrBuilder at the end — the O(E) ContactGraph::Edge
/// vector never exists.
class EdgeStore {
 public:
  explicit EdgeStore(std::size_t expected) : seen_(expected) { packed_.reserve(expected); }

  bool try_add(PhoneId a, PhoneId b) {
    if (a == b) return false;
    if (!seen_.insert(edge_key(a, b))) return false;
    packed_.push_back(pack(a, b));
    return true;
  }

  [[nodiscard]] bool contains(PhoneId a, PhoneId b) const {
    return seen_.contains(edge_key(a, b));
  }

  void replace(std::size_t index, PhoneId a, PhoneId b) {
    seen_.erase(edge_key(first(packed_[index]), second(packed_[index])));
    seen_.insert(edge_key(a, b));
    packed_[index] = pack(a, b);
  }

  void remove(std::size_t index) {
    seen_.erase(edge_key(first(packed_[index]), second(packed_[index])));
    packed_[index] = packed_.back();
    packed_.pop_back();
  }

  [[nodiscard]] std::size_t size() const { return packed_.size(); }
  [[nodiscard]] bool empty() const { return packed_.empty(); }
  [[nodiscard]] PhoneId a(std::size_t index) const { return first(packed_[index]); }
  [[nodiscard]] PhoneId b(std::size_t index) const { return second(packed_[index]); }

  /// Streams the accumulated edges into a ContactGraph; frees the
  /// membership table before allocating the CSR so the two never
  /// coexist at full size.
  [[nodiscard]] ContactGraph build(PhoneId node_count) {
    seen_.free_memory();
    CsrBuilder builder(node_count);
    for (std::uint64_t e : packed_) builder.count_edge(first(e), second(e));
    builder.begin_fill();
    for (std::uint64_t e : packed_) builder.fill_edge(first(e), second(e));
    return std::move(builder).finish();
  }

 private:
  static std::uint64_t pack(PhoneId a, PhoneId b) {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }
  static PhoneId first(std::uint64_t e) { return static_cast<PhoneId>(e >> 32); }
  static PhoneId second(std::uint64_t e) { return static_cast<PhoneId>(e & 0xFFFF'FFFFu); }

  std::vector<std::uint64_t> packed_;
  FlatEdgeSet seen_;
};

/// The bounded power-law pmf the degree sampler draws from, kept
/// locally so the scale calibration can evaluate clamped expectations.
struct DegreeLaw {
  DegreeLaw(std::uint64_t k_min, std::uint64_t k_max, double alpha) : k_min_(k_min) {
    double total = 0.0;
    pmf_.reserve(k_max - k_min + 1);
    for (std::uint64_t k = k_min; k <= k_max; ++k) {
      double w = std::pow(static_cast<double>(k), -alpha);
      pmf_.push_back(w);
      total += w;
    }
    for (double& p : pmf_) p /= total;
  }

  /// E[clamp(scale * K, 1, cap)] — strictly increasing in scale until
  /// every mass point saturates at the cap.
  [[nodiscard]] double clamped_mean(double scale, double cap) const {
    double expectation = 0.0;
    for (std::size_t i = 0; i < pmf_.size(); ++i) {
      double value = scale * static_cast<double>(k_min_ + i);
      expectation += pmf_[i] * std::clamp(value, 1.0, cap);
    }
    return expectation;
  }

  /// Smallest scale whose clamped mean reaches `target` (bisection).
  [[nodiscard]] double solve_scale(double target, double cap) const {
    double lo = 0.0, hi = 1.0;
    while (clamped_mean(hi, cap) < target && hi < 1e9) hi *= 2.0;
    for (int iter = 0; iter < 100; ++iter) {
      double mid = 0.5 * (lo + hi);
      if (clamped_mean(mid, cap) < target) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return 0.5 * (lo + hi);
  }

  std::uint64_t k_min_;
  std::vector<double> pmf_;
};

}  // namespace

ValidationErrors PowerLawConfig::validate() const {
  ValidationErrors errors("PowerLawConfig");
  errors.require(node_count >= 2, "node_count must be >= 2");
  errors.require(target_mean_degree > 0.0, "target_mean_degree must be positive");
  errors.require(target_mean_degree < static_cast<double>(node_count),
                 "target_mean_degree must be < node_count");
  errors.require(alpha > 0.0, "alpha must be positive");
  errors.require(min_degree >= 1, "min_degree must be >= 1");
  errors.require(locality_jitter >= 0.0, "locality_jitter must be >= 0");
  if (max_degree != 0) {
    errors.require(max_degree >= min_degree, "max_degree must be >= min_degree");
    errors.require(max_degree < node_count, "max_degree must be < node_count");
  }
  return errors;
}

ContactGraph generate_power_law(const PowerLawConfig& config, rng::Stream& stream) {
  config.validate().throw_if_invalid();
  const PhoneId n = config.node_count;
  std::uint32_t max_degree = config.max_degree;
  if (max_degree == 0) max_degree = std::max<std::uint32_t>(config.min_degree, n / 3);
  max_degree = std::min<std::uint32_t>(max_degree, n - 1);

  // Draw raw power-law degrees, then rescale so the expected mean hits
  // the target. Rescaling preserves the heavy-tailed *shape* — which is
  // all the paper relies on — while pinning the mean contact-list size
  // (80 in the paper's setup). The scale is calibrated against the
  // clamped expectation: naive scaling undershoots whenever the tail
  // would exceed the n-1 degree cap.
  rng::PowerLawTable table(config.min_degree, max_degree, config.alpha);
  DegreeLaw law(config.min_degree, max_degree, config.alpha);
  // max_degree caps the *final* contact-list size: nobody's address
  // book holds a third of the subscriber base. Without this cap the
  // scaled tail produces degree-(n-1) super-hubs that let a burst virus
  // cover the whole network in one generation.
  const double cap = static_cast<double>(max_degree);
  const double scale = law.solve_scale(config.target_mean_degree, cap);

  std::vector<std::uint32_t> degrees(n);
  for (auto& d : degrees) {
    double scaled = std::clamp(static_cast<double>(table.sample(stream)) * scale, 1.0, cap);
    // Stochastic rounding keeps the mean unbiased.
    auto floor_part = static_cast<std::uint32_t>(scaled);
    double frac = scaled - floor_part;
    std::uint32_t value = floor_part + (stream.bernoulli(frac) ? 1U : 0U);
    d = std::clamp<std::uint32_t>(value, 1U, max_degree);
  }

  // The stub count must be even for pairing.
  std::uint64_t stub_total = std::accumulate(degrees.begin(), degrees.end(), std::uint64_t{0});
  if (stub_total % 2 == 1) {
    auto bump = static_cast<std::size_t>(stream.uniform_index(n));
    if (degrees[bump] < n - 1) {
      ++degrees[bump];
    } else {
      --degrees[bump];
    }
    ++stub_total;  // parity flipped either way; value only used for reserve below
  }

  // Configuration model: one stub per degree unit, paired after either
  // a uniform shuffle (locality_jitter == 0) or a sort by ring position
  // plus positional noise. The latter pairs stubs of nearby phones, so
  // contact lists overlap locally and the graph acquires the triadic
  // clustering of real social networks while keeping the exact degree
  // sequence.
  std::vector<PhoneId> stubs;
  stubs.reserve(static_cast<std::size_t>(stub_total));
  for (PhoneId p = 0; p < n; ++p) {
    stubs.insert(stubs.end(), degrees[p], p);
  }
  if (config.locality_jitter <= 0.0) {
    stream.shuffle(std::span<PhoneId>(stubs));
  } else {
    std::vector<std::pair<double, PhoneId>> keyed;
    keyed.reserve(stubs.size());
    for (PhoneId p : stubs) {
      double position = static_cast<double>(p) / static_cast<double>(n);
      double key = position + config.locality_jitter * stream.uniform(-0.5, 0.5);
      key -= std::floor(key);  // wrap around the ring
      keyed.emplace_back(key, p);
    }
    std::sort(keyed.begin(), keyed.end());
    for (std::size_t i = 0; i < keyed.size(); ++i) stubs[i] = keyed[i].second;
  }

  EdgeStore acc(stubs.size() / 2);
  std::vector<PhoneId> leftovers;  // stubs whose pairing collided
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    if (!acc.try_add(stubs[i], stubs[i + 1])) {
      leftovers.push_back(stubs[i]);
      leftovers.push_back(stubs[i + 1]);
    }
  }
  stubs = {};

  // Repair pass: rewire collided stub pairs through random edge swaps.
  // For leftover pair (u, v) pick an existing edge (x, y) and replace it
  // with (u, x) and (v, y) when all constraints hold. A bounded number
  // of attempts per pair keeps generation O(edges) with high probability;
  // irreparable pairs are dropped (shaves < 1% off the mean degree).
  constexpr int kMaxAttemptsPerPair = 64;
  for (std::size_t i = 0; i + 1 < leftovers.size(); i += 2) {
    PhoneId u = leftovers[i];
    PhoneId v = leftovers[i + 1];
    if (acc.try_add(u, v)) continue;
    bool repaired = false;
    for (int attempt = 0; attempt < kMaxAttemptsPerPair && !acc.empty(); ++attempt) {
      auto index = static_cast<std::size_t>(stream.uniform_index(acc.size()));
      PhoneId x = acc.a(index), y = acc.b(index);
      if (u == x || u == y || v == x || v == y) continue;
      if (acc.contains(u, x) || acc.contains(v, y)) continue;
      acc.replace(index, u, x);
      acc.try_add(v, y);  // cannot collide: checked above and (x,y) removed
      repaired = true;
      break;
    }
    if (!repaired) {
      // Drop the pair; realized degree of u and v falls short by one.
    }
  }

  // Exact-mean pass: collisions (dense graphs, hub-heavy sequences)
  // bleed a few percent of edges; top up with uniform random edges —
  // or trim — until the realized mean degree matches the target. The
  // correction is a small fraction of the edge set, so the power-law
  // shape is untouched.
  const auto target_edges = static_cast<std::size_t>(
      std::llround(config.target_mean_degree * static_cast<double>(n) / 2.0));
  std::uint64_t attempts = 0;
  const std::uint64_t max_attempts = 200ULL * (target_edges + 16);
  while (acc.size() < target_edges && attempts++ < max_attempts) {
    auto a = static_cast<PhoneId>(stream.uniform_index(n));
    auto b = static_cast<PhoneId>(stream.uniform_index(n));
    acc.try_add(a, b);
  }
  while (acc.size() > target_edges) {
    acc.remove(static_cast<std::size_t>(stream.uniform_index(acc.size())));
  }

  return acc.build(n);
}

ContactGraph generate_erdos_renyi(PhoneId node_count, double target_mean_degree,
                                  rng::Stream& stream) {
  if (node_count < 2) throw std::invalid_argument("generate_erdos_renyi: node_count must be >= 2");
  if (!(target_mean_degree > 0.0) || target_mean_degree >= static_cast<double>(node_count)) {
    throw std::invalid_argument("generate_erdos_renyi: mean degree out of range");
  }
  // In G(n, p) the mean degree is p * (n - 1).
  const double p = target_mean_degree / static_cast<double>(node_count - 1);
  // Geometric skipping: iterate only over present edges, O(edges).
  const double log1mp = std::log1p(-p);
  const std::uint64_t total_pairs = static_cast<std::uint64_t>(node_count) * (node_count - 1) / 2;
  auto emit = [&](rng::Stream& s, auto&& sink) {
    std::uint64_t position = 0;
    while (true) {
      double u = s.uniform01();
      auto skip = static_cast<std::uint64_t>(std::floor(std::log1p(-u) / log1mp));
      position += skip;
      if (position >= total_pairs) break;
      // Unrank `position` into (a, b), a < b: row a has (n-1-a) pairs.
      std::uint64_t remaining = position;
      PhoneId a = 0;
      std::uint64_t row = node_count - 1;
      while (remaining >= row) {
        remaining -= row;
        --row;
        ++a;
      }
      PhoneId b = static_cast<PhoneId>(a + 1 + remaining);
      sink(a, b);
      ++position;
    }
  };

  // Clone-replay streaming: the count pass runs on a copy of the
  // stream, the fill pass on the real one — both see the identical
  // draw sequence and the caller-visible stream advances exactly as a
  // single pass would, so no edge list is ever materialized and the
  // RNG telemetry is unchanged.
  CsrBuilder builder(node_count);
  {
    rng::Stream counting = stream;
    emit(counting, [&](PhoneId a, PhoneId b) { builder.count_edge(a, b); });
  }
  builder.begin_fill();
  emit(stream, [&](PhoneId a, PhoneId b) { builder.fill_edge(a, b); });
  return std::move(builder).finish();
}

ContactGraph generate_barabasi_albert(PhoneId node_count, std::uint32_t edges_per_node,
                                      rng::Stream& stream) {
  if (edges_per_node == 0) {
    throw std::invalid_argument("generate_barabasi_albert: edges_per_node must be >= 1");
  }
  if (node_count <= edges_per_node) {
    throw std::invalid_argument("generate_barabasi_albert: node_count must exceed edges_per_node");
  }
  // Seed graph: a clique over the first m+1 nodes, so every early node
  // has nonzero degree and attachment is well-defined.
  const std::uint32_t m = edges_per_node;
  // The repeated-endpoints trick: sampling a uniform entry of this list
  // IS degree-proportional sampling. Consecutive pairs of the list are
  // exactly the accepted edges in insertion order, so it doubles as the
  // edge sequence for the CSR build and no separate edge vector exists.
  FlatEdgeSet seen(static_cast<std::size_t>(node_count) * m);
  std::vector<PhoneId> endpoints;
  endpoints.reserve(2ULL * node_count * m);
  auto try_add = [&](PhoneId a, PhoneId b) {
    if (a == b) return false;
    if (!seen.insert(edge_key(a, b))) return false;
    endpoints.push_back(a);
    endpoints.push_back(b);
    return true;
  };
  for (PhoneId a = 0; a <= m; ++a) {
    for (PhoneId b = a + 1; b <= m; ++b) try_add(a, b);
  }
  for (PhoneId arrival = m + 1; arrival < node_count; ++arrival) {
    std::uint32_t attached = 0;
    // Rejection keeps targets distinct; with m far below the graph
    // size the expected retry count is negligible.
    std::uint32_t guard = 0;
    while (attached < m && guard++ < 100 * m) {
      PhoneId target = endpoints[static_cast<std::size_t>(stream.uniform_index(endpoints.size()))];
      if (try_add(arrival, target)) ++attached;
    }
  }
  seen.free_memory();
  CsrBuilder builder(node_count);
  for (std::size_t i = 0; i + 1 < endpoints.size(); i += 2) {
    builder.count_edge(endpoints[i], endpoints[i + 1]);
  }
  builder.begin_fill();
  for (std::size_t i = 0; i + 1 < endpoints.size(); i += 2) {
    builder.fill_edge(endpoints[i], endpoints[i + 1]);
  }
  return std::move(builder).finish();
}

ContactGraph generate_regular_ring(PhoneId node_count, std::uint32_t k) {
  if (node_count < 3) throw std::invalid_argument("generate_regular_ring: node_count must be >= 3");
  if (k % 2 != 0) throw std::invalid_argument("generate_regular_ring: k must be even");
  if (k >= node_count) throw std::invalid_argument("generate_regular_ring: k must be < node_count");
  // Deterministic sequence: emit it twice straight into the builder.
  auto emit = [&](auto&& sink) {
    for (PhoneId p = 0; p < node_count; ++p) {
      for (std::uint32_t offset = 1; offset <= k / 2; ++offset) {
        PhoneId q = static_cast<PhoneId>((p + offset) % node_count);
        sink(p, q);
      }
    }
  };
  CsrBuilder builder(node_count);
  emit([&](PhoneId a, PhoneId b) { builder.count_edge(a, b); });
  builder.begin_fill();
  emit([&](PhoneId a, PhoneId b) { builder.fill_edge(a, b); });
  return std::move(builder).finish();
}

}  // namespace mvsim::graph
