#include "graph/graph_stats.h"

#include <algorithm>
#include <cmath>
#include <queue>

namespace mvsim::graph {

DegreeStats degree_stats(const ContactGraph& graph) {
  DegreeStats stats;
  const PhoneId n = graph.node_count();
  if (n == 0) return stats;
  stats.min = graph.degree(0);
  double sum = 0.0, sum_sq = 0.0;
  for (PhoneId p = 0; p < n; ++p) {
    std::size_t d = graph.degree(p);
    stats.min = std::min(stats.min, d);
    stats.max = std::max(stats.max, d);
    sum += static_cast<double>(d);
    sum_sq += static_cast<double>(d) * static_cast<double>(d);
    if (d >= stats.histogram.size()) stats.histogram.resize(d + 1, 0);
    ++stats.histogram[d];
  }
  stats.mean = sum / n;
  double variance = std::max(0.0, sum_sq / n - stats.mean * stats.mean);
  stats.stddev = std::sqrt(variance);
  return stats;
}

std::vector<std::uint32_t> component_labels(const ContactGraph& graph) {
  const PhoneId n = graph.node_count();
  constexpr std::uint32_t kUnvisited = ~0U;
  std::vector<std::uint32_t> labels(n, kUnvisited);
  std::uint32_t next_label = 0;
  std::queue<PhoneId> frontier;
  for (PhoneId start = 0; start < n; ++start) {
    if (labels[start] != kUnvisited) continue;
    labels[start] = next_label;
    frontier.push(start);
    while (!frontier.empty()) {
      PhoneId p = frontier.front();
      frontier.pop();
      for (PhoneId q : graph.contacts(p)) {
        if (labels[q] == kUnvisited) {
          labels[q] = next_label;
          frontier.push(q);
        }
      }
    }
    ++next_label;
  }
  return labels;
}

ComponentStats component_stats(const ContactGraph& graph) {
  ComponentStats stats;
  auto labels = component_labels(graph);
  if (labels.empty()) return stats;
  std::vector<std::size_t> sizes;
  for (std::uint32_t label : labels) {
    if (label >= sizes.size()) sizes.resize(label + 1ULL, 0);
    ++sizes[label];
  }
  stats.component_count = sizes.size();
  stats.largest_size = *std::max_element(sizes.begin(), sizes.end());
  stats.largest_fraction = static_cast<double>(stats.largest_size) /
                           static_cast<double>(graph.node_count());
  return stats;
}

double global_clustering_coefficient(const ContactGraph& graph) {
  const PhoneId n = graph.node_count();
  std::uint64_t closed = 0;  // ordered triangles (each triangle counted 6x)
  std::uint64_t triads = 0;  // ordered open+closed paths of length 2
  for (PhoneId p = 0; p < n; ++p) {
    auto list = graph.contacts(p);
    std::size_t d = list.size();
    if (d < 2) continue;
    triads += static_cast<std::uint64_t>(d) * (d - 1);
    for (std::size_t i = 0; i < d; ++i) {
      for (std::size_t j = i + 1; j < d; ++j) {
        if (graph.connected(list[i], list[j])) closed += 2;
      }
    }
  }
  if (triads == 0) return 0.0;
  return static_cast<double>(closed) / static_cast<double>(triads);
}

}  // namespace mvsim::graph
