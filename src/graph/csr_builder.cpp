#include "graph/csr_builder.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

namespace mvsim::graph {

CsrBuilder::CsrBuilder(PhoneId node_count) : node_count_(node_count) {
  offsets_.assign(static_cast<std::size_t>(node_count) + 1, 0);
}

void CsrBuilder::check_edge(PhoneId a, PhoneId b) const {
  if (a >= node_count_ || b >= node_count_) {
    throw std::invalid_argument("ContactGraph: edge endpoint out of range (" + std::to_string(a) +
                                "," + std::to_string(b) + ")");
  }
  if (a == b) {
    throw std::invalid_argument("ContactGraph: self-loop at phone " + std::to_string(a));
  }
}

void CsrBuilder::count_edge(PhoneId a, PhoneId b) {
  if (filling_) throw std::logic_error("CsrBuilder: count_edge after begin_fill");
  check_edge(a, b);
  ++offsets_[a + 1ULL];
  ++offsets_[b + 1ULL];
  ++edge_count_;
}

void CsrBuilder::begin_fill() {
  if (filling_) throw std::logic_error("CsrBuilder: begin_fill called twice");
  filling_ = true;
  if (2 * edge_count_ > std::numeric_limits<std::uint32_t>::max()) {
    throw std::length_error("CsrBuilder: adjacency exceeds 32-bit offset range");
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i) offsets_[i] += offsets_[i - 1];
  adjacency_.resize(static_cast<std::size_t>(2 * edge_count_));
  cursor_.assign(offsets_.begin(), offsets_.end() - 1);
}

void CsrBuilder::fill_edge(PhoneId a, PhoneId b) {
  if (!filling_) throw std::logic_error("CsrBuilder: fill_edge before begin_fill");
  check_edge(a, b);
  std::uint32_t slot_a = cursor_[a]++;
  std::uint32_t slot_b = cursor_[b]++;
  if (slot_a >= offsets_[a + 1ULL] || slot_b >= offsets_[b + 1ULL]) {
    throw std::logic_error("CsrBuilder: fill sequence does not match count sequence");
  }
  adjacency_[slot_a] = b;
  adjacency_[slot_b] = a;
}

ContactGraph CsrBuilder::finish() && {
  if (!filling_) {
    // A graph counted but never filled is only valid when empty.
    begin_fill();
  }
  for (PhoneId p = 0; p < node_count_; ++p) {
    if (cursor_[p] != offsets_[p + 1ULL]) {
      throw std::logic_error("CsrBuilder: fill sequence does not match count sequence");
    }
    auto begin = adjacency_.begin() + static_cast<std::ptrdiff_t>(offsets_[p]);
    auto end = adjacency_.begin() + static_cast<std::ptrdiff_t>(offsets_[p + 1ULL]);
    std::sort(begin, end);
    if (std::adjacent_find(begin, end) != end) {
      throw std::invalid_argument("ContactGraph: duplicate edge at phone " + std::to_string(p));
    }
  }
  cursor_ = {};
  return ContactGraph(std::move(offsets_), std::move(adjacency_));
}

}  // namespace mvsim::graph
