#include "graph/graph_cache.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace mvsim::graph {

GraphCache::GraphCache(std::size_t capacity) : capacity_(std::max<std::size_t>(capacity, 1)) {}

std::shared_ptr<const CachedGraph> GraphCache::get_or_build(const GraphCacheKey& key,
                                                            const Builder& builder) {
  std::promise<std::shared_ptr<const CachedGraph>> promise;
  std::shared_future<std::shared_ptr<const CachedGraph>> future;
  bool build_here = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (Entry& entry : entries_) {
      if (entry.key == key) {
        entry.last_used = ++tick_;
        ++hits_;
        future = entry.future;
        break;
      }
    }
    if (!future.valid()) {
      ++misses_;
      build_here = true;
      future = promise.get_future().share();
      // Evict least-recently-used completed entries first; an entry
      // still building is never evicted (evicting it would let a
      // concurrent requester start a duplicate build).
      while (entries_.size() >= capacity_) {
        auto victim = entries_.end();
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
          if (it->future.wait_for(std::chrono::seconds(0)) != std::future_status::ready) continue;
          if (victim == entries_.end() || it->last_used < victim->last_used) victim = it;
        }
        if (victim == entries_.end()) break;
        entries_.erase(victim);
      }
      entries_.push_back(Entry{key, future, ++tick_});
    }
  }

  if (build_here) {
    // Build outside the lock: distinct keys build concurrently, and
    // same-key requesters block on the shared future, not the mutex.
    try {
      promise.set_value(std::make_shared<const CachedGraph>(builder()));
    } catch (...) {
      promise.set_exception(std::current_exception());
      std::lock_guard<std::mutex> lock(mutex_);
      entries_.remove_if([&](const Entry& e) { return e.key == key; });
    }
  }
  return future.get();
}

std::uint64_t GraphCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t GraphCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::size_t GraphCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::uint64_t hash_combine(std::uint64_t hash, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xFF;
    hash *= 0x0000'0100'0000'01B3ull;
  }
  return hash;
}

}  // namespace mvsim::graph
