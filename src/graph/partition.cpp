#include "graph/partition.h"

#include <algorithm>
#include <stdexcept>

namespace mvsim::graph {

namespace {

std::uint64_t node_weight(const ContactGraph& graph, PhoneId id) {
  return 1 + static_cast<std::uint64_t>(graph.degree(id));
}

}  // namespace

Partition Partition::degree_balanced(const ContactGraph& graph, std::uint32_t shards) {
  const PhoneId n = graph.node_count();
  if (shards == 0) throw std::invalid_argument("Partition: shards must be >= 1");
  if (shards > n) throw std::invalid_argument("Partition: more shards than phones");

  // Total weight = N + 2E (each undirected edge contributes to both
  // endpoints' degrees).
  std::uint64_t total = 0;
  for (PhoneId id = 0; id < n; ++id) total += node_weight(graph, id);

  std::vector<PhoneId> bounds;
  bounds.reserve(shards + 1);
  bounds.push_back(0);

  // Greedy sweep: close shard s at the first node where the cumulative
  // weight reaches the ideal prefix (s+1) * total / shards, while
  // reserving at least one node for every remaining shard so no shard
  // ends up empty even when one hub dwarfs the whole budget.
  std::uint64_t cumulative = 0;
  PhoneId next = 0;
  for (std::uint32_t s = 0; s + 1 < shards; ++s) {
    const std::uint64_t target = total * (s + 1) / shards;
    const PhoneId last_allowed = n - (shards - 1 - s);  // leave 1 node per later shard
    PhoneId cut = next;
    while (cut < last_allowed) {
      cumulative += node_weight(graph, cut);
      ++cut;
      if (cumulative >= target) break;
    }
    cut = std::max<PhoneId>(cut, bounds.back() + 1);  // non-empty shard
    bounds.push_back(cut);
    next = cut;
  }
  bounds.push_back(n);
  return Partition(std::move(bounds));
}

Partition Partition::uniform(PhoneId node_count, std::uint32_t shards) {
  if (shards == 0) throw std::invalid_argument("Partition: shards must be >= 1");
  if (shards > node_count) throw std::invalid_argument("Partition: more shards than phones");
  std::vector<PhoneId> bounds;
  bounds.reserve(shards + 1);
  for (std::uint32_t s = 0; s <= shards; ++s) {
    bounds.push_back(static_cast<PhoneId>(
        static_cast<std::uint64_t>(node_count) * s / shards));
  }
  return Partition(std::move(bounds));
}

std::uint32_t Partition::shard_of(PhoneId id) const {
  auto it = std::upper_bound(bounds_.begin(), bounds_.end(), id);
  return static_cast<std::uint32_t>(it - bounds_.begin()) - 1;
}

double Partition::max_imbalance(const ContactGraph& graph) const {
  const std::uint32_t k = shard_count();
  std::uint64_t total = 0;
  double worst = 0.0;
  std::vector<std::uint64_t> weights(k, 0);
  for (std::uint32_t s = 0; s < k; ++s) {
    for (PhoneId id = bounds_[s]; id < bounds_[s + 1]; ++id) {
      weights[s] += node_weight(graph, id);
    }
    total += weights[s];
  }
  const double ideal = static_cast<double>(total) / static_cast<double>(k);
  for (std::uint32_t s = 0; s < k; ++s) {
    worst = std::max(worst, static_cast<double>(weights[s]) / ideal);
  }
  return worst;
}

}  // namespace mvsim::graph
