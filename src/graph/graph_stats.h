// Structural statistics over a ContactGraph.
//
// Used by property tests (degree targets, connectivity of generated
// topologies) and by the topology-ablation bench to report what kind of
// network each generator actually produced.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/contact_graph.h"

namespace mvsim::graph {

struct DegreeStats {
  std::size_t min = 0;
  std::size_t max = 0;
  double mean = 0.0;
  double stddev = 0.0;
  /// histogram[d] = number of phones with degree d.
  std::vector<std::size_t> histogram;
};

[[nodiscard]] DegreeStats degree_stats(const ContactGraph& graph);

struct ComponentStats {
  std::size_t component_count = 0;
  std::size_t largest_size = 0;
  /// Fraction of phones inside the largest connected component.
  double largest_fraction = 0.0;
};

[[nodiscard]] ComponentStats component_stats(const ContactGraph& graph);

/// component id per phone (ids are dense, 0-based, ordered by discovery).
[[nodiscard]] std::vector<std::uint32_t> component_labels(const ContactGraph& graph);

/// Global clustering coefficient (3 x triangles / open triads);
/// O(sum of degree^2) — fine at mvsim scales.
[[nodiscard]] double global_clustering_coefficient(const ContactGraph& graph);

}  // namespace mvsim::graph
