// Contact-graph generators.
//
// The paper generated its contact-list topology with the NGCE package
// (power-law random graph, 1000 nodes, mean contact-list size 80). We
// rebuild that capability from scratch: a configuration-model power-law
// generator whose degree sequence is tuned to a target mean degree,
// plus Erdős–Rényi and k-regular-ring generators used by the topology
// ablation bench.
#pragma once

#include <cstdint>

#include "graph/contact_graph.h"
#include "rng/stream.h"
#include "util/validation.h"

namespace mvsim::graph {

/// Parameters for the power-law (scale-free-ish) generator.
///
/// Degrees are drawn from a bounded discrete power law
/// P(k) ~ k^(-alpha) on [min_degree, max_degree]; the generator then
/// rescales the distribution's support sampling to hit `target_mean_degree`
/// in expectation, wires stubs configuration-model style, and repairs
/// self-loops/multi-edges by edge swaps.
struct PowerLawConfig {
  PhoneId node_count = 1000;
  double target_mean_degree = 80.0;
  double alpha = 2.0;           ///< power-law exponent (typical social range 2-3)
  std::uint32_t min_degree = 1; ///< floor before rescaling
  std::uint32_t max_degree = 0; ///< 0 = auto (node_count / 3)

  /// Social clustering knob. 0 = pure configuration model (edges
  /// globally random, clustering ~ degree/n). Positive values embed
  /// phones on a ring and pair contact-list stubs with positional
  /// noise of this width (as a fraction of the ring), so nearby phones
  /// share contacts — the triadic structure real address books have
  /// (friends' friends are friends). Smaller = more clustered;
  /// ~0.05-0.15 gives the 0.2-0.4 clustering typical of social graphs.
  double locality_jitter = 0.0;

  [[nodiscard]] ValidationErrors validate() const;
};

/// Power-law contact graph per PowerLawConfig. Deterministic given the
/// stream's seed. The realized mean degree is within a few percent of
/// target for node_count >= ~200 (property-tested).
[[nodiscard]] ContactGraph generate_power_law(const PowerLawConfig& config, rng::Stream& stream);

/// Erdős–Rényi G(n, p) with p chosen to hit `target_mean_degree`.
[[nodiscard]] ContactGraph generate_erdos_renyi(PhoneId node_count, double target_mean_degree,
                                                rng::Stream& stream);

/// Barabási–Albert preferential attachment: each arriving node links to
/// `edges_per_node` distinct existing nodes chosen with probability
/// proportional to degree. Produces a k^-3 tail organically (no degree
/// sequence is imposed); mean degree ~ 2 * edges_per_node. A second,
/// mechanistically different scale-free construction used to check that
/// the epidemic results do not hinge on the configuration-model recipe.
[[nodiscard]] ContactGraph generate_barabasi_albert(PhoneId node_count,
                                                    std::uint32_t edges_per_node,
                                                    rng::Stream& stream);

/// Ring lattice where every phone knows its k nearest neighbours
/// (k even). Fully deterministic; no randomness consumed.
[[nodiscard]] ContactGraph generate_regular_ring(PhoneId node_count, std::uint32_t k);

}  // namespace mvsim::graph
