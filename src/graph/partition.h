// Contiguous, degree-balanced partition of a contact graph.
//
// The sharded engine (docs/parallelism.md) assigns each worker shard a
// contiguous range of phone ids. Contiguity keeps ownership checks a
// two-comparison range test and lets per-shard state stay dense; the
// cut points are chosen so the per-shard *work estimate* — nodes plus
// incident edge endpoints, a proxy for the event traffic a shard will
// carry — is balanced even when the degree sequence is heavily skewed
// (power-law hubs). The partition is a pure function of the graph and
// the shard count, so a fixed (seed, shards) pair always yields the
// same ownership map — part of the determinism contract.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/contact_graph.h"

namespace mvsim::graph {

class Partition {
 public:
  struct Range {
    PhoneId begin = 0;
    PhoneId end = 0;  ///< exclusive
    [[nodiscard]] PhoneId size() const { return end - begin; }
  };

  /// Cuts [0, node_count) into `shards` contiguous ranges whose summed
  /// node weights (1 + degree) are as even as a left-to-right greedy
  /// sweep can make them. Every shard is non-empty; throws
  /// std::invalid_argument when shards == 0 or shards > node_count.
  static Partition degree_balanced(const ContactGraph& graph, std::uint32_t shards);

  /// Equal-width cut ignoring degrees (the degenerate balancer for
  /// graphs the caller knows are degree-uniform, and for tests).
  static Partition uniform(PhoneId node_count, std::uint32_t shards);

  [[nodiscard]] std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(bounds_.size() - 1);
  }
  [[nodiscard]] PhoneId node_count() const { return bounds_.back(); }
  [[nodiscard]] Range range(std::uint32_t shard) const {
    return {bounds_[shard], bounds_[shard + 1]};
  }

  /// Owner shard of `id` (binary search over the cut points; the shard
  /// count is small, ids must be < node_count()).
  [[nodiscard]] std::uint32_t shard_of(PhoneId id) const;

  /// Cut points: bounds()[s] .. bounds()[s+1] is shard s's range;
  /// size() == shard_count() + 1, front() == 0, back() == node_count.
  [[nodiscard]] const std::vector<PhoneId>& bounds() const { return bounds_; }

  /// Max over shards of weight(shard) / (total_weight / shards), where
  /// weight is the same 1 + degree estimate the balancer minimizes.
  /// 1.0 is a perfect split; tests pin an upper bound under skew.
  [[nodiscard]] double max_imbalance(const ContactGraph& graph) const;

 private:
  explicit Partition(std::vector<PhoneId> bounds) : bounds_(std::move(bounds)) {}

  std::vector<PhoneId> bounds_;
};

}  // namespace mvsim::graph
