// Sweep progress stream: schema-versioned NDJSON for `mvsim sweep`.
//
// A sweep is a ladder of experiments; while the stats stream narrates
// one run from the inside, the sweep stream narrates the ladder —
// one header line declaring the parameter and provenance, then one
// record when each point starts and one when it finishes (with the
// point's wall clock, the ladder ETA, and the point's headline
// outcome). Same discipline as obs::RunStream: whole flushed lines, a
// fixed record schema declared in the header, observation-only.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace mvsim::obs {

/// Header provenance for one sweep.
struct SweepStreamHeader {
  std::string parameter;      ///< sweepable parameter name
  std::string scenario;       ///< base scenario name
  std::string scenario_hash;  ///< hash of the base scenario JSON
  int points = 0;             ///< ladder length
  int replications = 0;       ///< per point
};

/// One progress record. `type` is "point-started" or "point-finished";
/// started records carry zeros for the wall/outcome fields (every
/// record emits every field, like stats-stream samples).
struct SweepPointRecord {
  std::string type;
  int index = 0;  ///< 0-based point index
  int count = 0;
  double value = 0.0;  ///< parameter value at this point
  double wall_seconds = 0.0;
  double eta_seconds = 0.0;  ///< remaining-ladder estimate
  double final_infected_mean = 0.0;
  std::uint64_t total_events = 0;
};

/// NDJSON writer: `{"type":"mvsim-sweep","version":1,...}` header,
/// then one SweepPointRecord per line. Thread-safe, flushed per line.
class SweepStream {
 public:
  static constexpr int kVersion = 1;

  explicit SweepStream(std::ostream& out) : out_(&out) {}

  SweepStream(const SweepStream&) = delete;
  SweepStream& operator=(const SweepStream&) = delete;

  /// Writes the header record (once, before any points). Build
  /// provenance (git SHA) is stamped from obs::build_info().
  void write_header(const SweepStreamHeader& header);

  /// Appends one progress record.
  void write_point(const SweepPointRecord& record);

  [[nodiscard]] std::uint64_t records_written() const { return records_written_; }

  /// Canonical record schema (tested three ways like the stats stream).
  [[nodiscard]] static const std::vector<std::string>& point_fields();

 private:
  std::ostream* out_;
  std::mutex mutex_;
  std::uint64_t records_written_ = 0;
};

}  // namespace mvsim::obs
