// Live run telemetry: a schema-versioned NDJSON time-series stream.
//
// Traces answer "what happened" after the fact and profiles answer
// "where did the wall-clock go"; the stats stream answers "how is the
// run doing right now". `mvsim run --stats-stream PATH|-` attaches a
// RunStream to the runner, which samples each replication every
// `--stats-period` simulated minutes (serial engine) or at window
// barriers (sharded engine) and appends one JSON object per line:
// infected / patched / blocked counts, events executed, wall-clock
// event rate, scheduler queue depth, and — for sharded runs — mailbox
// traffic plus a per-shard breakdown with barrier wait times, which
// names the straggler shard directly.
//
// Strictly observation-only: sampling never draws randomness,
// schedules events or mutates simulation state, so fixed-seed curves
// are bit-identical with the stream on or off (golden-pinned). The
// stream is thread-safe — replications running on parallel workers
// interleave whole lines, each tagged with its replication index.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "util/sim_time.h"

namespace mvsim::obs {

/// Per-shard slice of one sharded sample.
struct ShardSample {
  std::uint32_t shard = 0;
  std::uint64_t events_executed = 0;  ///< cumulative, this shard
  std::uint64_t queue_depth = 0;      ///< pending events right now
  /// Wall-clock ms this shard's window waited at the last barrier —
  /// the shard with ~zero wait is the straggler everyone else waited for.
  double barrier_wait_ms = 0.0;
};

/// One telemetry sample. Counters are cumulative since replication
/// start; gauges are instantaneous. Serial runs leave the mailbox
/// fields zero and `shards` empty.
struct RunSample {
  int replication = 0;
  SimTime time;
  std::uint64_t infected = 0;          ///< phones ever infected (cumulative)
  std::uint64_t patched = 0;           ///< phones patched or immunized
  std::uint64_t messages_blocked = 0;  ///< gateway blocks so far
  std::uint64_t events_executed = 0;   ///< DES events so far
  double events_per_sec = 0.0;         ///< wall-clock rate since rep start
  std::uint64_t queue_depth = 0;       ///< pending DES events right now
  std::uint64_t mailbox_sent = 0;      ///< cross-shard messages staged
  std::uint64_t mailbox_received = 0;  ///< cross-shard messages delivered
  std::vector<ShardSample> shards;
};

/// Provenance and shape of one stream, written as the header record.
/// `scenario_hash` is obs::fnv1a_hex over the canonical scenario JSON
/// (the same hash run manifests carry), so a stream file is
/// attributable to its exact model inputs on its own; the git SHA is
/// stamped from the build automatically.
struct StreamInfo {
  std::string scenario;
  std::string scenario_hash;
  int replications = 0;
  std::uint32_t shards = 1;
};

/// Serializes RunSamples as NDJSON onto one ostream. The first line is
/// a header record `{"type":"mvsim-stats","version":2,...}` whose
/// "fields" array is the sample schema; every subsequent line is a
/// sample record carrying exactly those fields. Lines are flushed as
/// they are written so `tail -f` (or a dashboard) sees them live.
class RunStream {
 public:
  /// v2 added the provenance fields (`scenario_hash`, `git_sha`) to
  /// the header; sample records are unchanged from v1.
  static constexpr int kVersion = 2;

  /// The stream writes to `out` for its whole lifetime; the caller
  /// keeps `out` alive and owns flushing/closing the underlying file.
  explicit RunStream(std::ostream& out) : out_(&out) {}

  RunStream(const RunStream&) = delete;
  RunStream& operator=(const RunStream&) = delete;

  /// Writes the header record. Call once, before any samples.
  void write_header(const StreamInfo& info);

  /// Appends one sample record (thread-safe; whole lines interleave).
  void write_sample(const RunSample& sample);

  [[nodiscard]] std::uint64_t samples_written() const { return samples_written_; }

  /// The canonical field lists — the header's "fields" array, every
  /// sample record's keys, and the table in docs/observability.md all
  /// come from (or are tested against) these.
  [[nodiscard]] static const std::vector<std::string>& sample_fields();
  [[nodiscard]] static const std::vector<std::string>& shard_fields();

 private:
  std::ostream* out_;
  std::mutex mutex_;
  std::uint64_t samples_written_ = 0;
};

}  // namespace mvsim::obs
