#include "obs/sweep_stream.h"

#include <ostream>
#include <utility>

#include "obs/manifest.h"
#include "util/json.h"

namespace mvsim::obs {

const std::vector<std::string>& SweepStream::point_fields() {
  static const std::vector<std::string> kFields = {
      "type",        "index",       "count",
      "value",       "wall_seconds", "eta_seconds",
      "final_infected_mean", "total_events"};
  return kFields;
}

void SweepStream::write_header(const SweepStreamHeader& header) {
  json::Object root;
  root.set("type", json::Value("mvsim-sweep"));
  root.set("version", json::Value(kVersion));
  root.set("parameter", json::Value(header.parameter));
  root.set("scenario", json::Value(header.scenario));
  root.set("scenario_hash", json::Value(header.scenario_hash));
  root.set("git_sha", json::Value(build_info().git_sha));
  root.set("points", json::Value(header.points));
  root.set("replications", json::Value(header.replications));
  json::Array fields;
  for (const std::string& field : point_fields()) fields.push_back(json::Value(field));
  root.set("fields", json::Value(std::move(fields)));

  std::lock_guard<std::mutex> lock(mutex_);
  *out_ << json::stringify(json::Value(std::move(root)), 0) << '\n';
  out_->flush();
}

void SweepStream::write_point(const SweepPointRecord& record) {
  json::Object root;
  root.set("type", json::Value(record.type));
  root.set("index", json::Value(record.index));
  root.set("count", json::Value(record.count));
  root.set("value", json::Value(record.value));
  root.set("wall_seconds", json::Value(record.wall_seconds));
  root.set("eta_seconds", json::Value(record.eta_seconds));
  root.set("final_infected_mean", json::Value(record.final_infected_mean));
  root.set("total_events", json::Value(record.total_events));

  std::lock_guard<std::mutex> lock(mutex_);
  *out_ << json::stringify(json::Value(std::move(root)), 0) << '\n';
  out_->flush();
  ++records_written_;
}

}  // namespace mvsim::obs
