#include "obs/report.h"

#include <cstdio>

namespace mvsim::obs {

namespace {

enum class Direction { kLowerBetter, kHigherBetter, kNeutral };

struct MetricSpec {
  const char* name;
  double RunOutcome::* field;
  Direction direction;
};

// total_events is handled separately (it is an integer field).
constexpr MetricSpec kMetrics[] = {
    {"final_infected_mean", &RunOutcome::final_infected_mean, Direction::kLowerBetter},
    {"peak_infected_mean", &RunOutcome::peak_infected_mean, Direction::kLowerBetter},
    {"time_to_peak_h", &RunOutcome::time_to_peak_h, Direction::kHigherBetter},
    {"patched_mean", &RunOutcome::patched_mean, Direction::kHigherBetter},
    {"messages_blocked_mean", &RunOutcome::messages_blocked_mean, Direction::kNeutral},
};

// Normalized change, < 0 = worse (bench_compare's convention). The
// zero cases are principled, not arbitrary: driving a lower-is-better
// metric to 0 from a positive baseline is a full win (+1), letting a
// higher-is-better metric rise from a 0 baseline likewise; two zeros
// are no change at all.
double normalized_change(double baseline, double current, Direction direction) {
  switch (direction) {
    case Direction::kLowerBetter:
      if (current > 0.0) return baseline / current - 1.0;
      return baseline > 0.0 ? 1.0 : 0.0;
    case Direction::kHigherBetter:
    case Direction::kNeutral:
      if (baseline > 0.0) return current / baseline - 1.0;
      return current > 0.0 ? 1.0 : 0.0;
  }
  return 0.0;
}

}  // namespace

OutcomeComparison compare_outcomes(const RunManifest& baseline, const RunManifest& current,
                                   double threshold) {
  OutcomeComparison comparison;
  auto add_row = [&](const char* name, double base, double curr, Direction direction) {
    OutcomeDelta row;
    row.metric = name;
    row.baseline = base;
    row.current = curr;
    row.change = normalized_change(base, curr, direction);
    row.verdict = "OK";
    if (direction != Direction::kNeutral) {
      if (row.change < -threshold) {
        row.verdict = "REGRESSED";
        ++comparison.regressions;
      } else if (row.change > threshold) {
        row.verdict = "IMPROVED";
      }
    }
    comparison.rows.push_back(std::move(row));
  };
  for (const MetricSpec& spec : kMetrics) {
    add_row(spec.name, baseline.outcome.*spec.field, current.outcome.*spec.field,
            spec.direction);
  }
  add_row("total_events", static_cast<double>(baseline.outcome.total_events),
          static_cast<double>(current.outcome.total_events), Direction::kNeutral);
  return comparison;
}

std::string render_comparison(const RunManifest& baseline, const RunManifest& current,
                              const OutcomeComparison& comparison, double threshold) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof line,
                "report-compare: '%s' (%s, seed %s) -> '%s' (%s, seed %s), threshold %.0f%%\n",
                baseline.scenario.c_str(), baseline.build.git_sha.c_str(),
                baseline.seed.c_str(), current.scenario.c_str(),
                current.build.git_sha.c_str(), current.seed.c_str(), threshold * 100.0);
  out += line;
  if (baseline.scenario_hash != current.scenario_hash) {
    out += "  note: scenario hashes differ — comparing different model inputs\n";
  }
  for (const OutcomeDelta& row : comparison.rows) {
    std::snprintf(line, sizeof line, "  %-9s %-22s %12.2f -> %-12.2f (%+.1f%%)\n",
                  row.verdict.c_str(), row.metric.c_str(), row.baseline, row.current,
                  row.change * 100.0);
    out += line;
  }
  if (comparison.regressions > 0) {
    std::snprintf(line, sizeof line, "report-compare: %d outcome(s) regressed past %.0f%%\n",
                  comparison.regressions, threshold * 100.0);
  } else {
    std::snprintf(line, sizeof line, "report-compare: no regressions\n");
  }
  out += line;
  return out;
}

}  // namespace mvsim::obs
