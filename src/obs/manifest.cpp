#include "obs/manifest.h"

#include <fcntl.h>
#include <sys/resource.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/version.h"

namespace mvsim::obs {

BuildInfo build_info() {
  BuildInfo info;
  info.git_sha = MVSIM_GIT_SHA;
  info.compiler = MVSIM_COMPILER;
  info.build_type = MVSIM_BUILD_TYPE;
  return info;
}

std::uint64_t peak_rss_bytes() {
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#ifdef __APPLE__
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
}

std::string fnv1a_hex(std::string_view text) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx", static_cast<unsigned long long>(hash));
  return buffer;
}

const std::vector<std::string>& manifest_fields() {
  static const std::vector<std::string> kFields = {
      "type",    "version",      "scenario",       "scenario_hash", "seed",
      "replications", "threads", "shards",         "shard_window_min",
      "build",   "phases",       "peak_rss_bytes", "artifacts",     "outcome",
      "sweep"};
  return kFields;
}

const std::vector<std::string>& phase_fields() {
  static const std::vector<std::string> kFields = {"run_seconds", "write_seconds"};
  return kFields;
}

const std::vector<std::string>& build_fields() {
  static const std::vector<std::string> kFields = {"git_sha", "compiler", "build_type"};
  return kFields;
}

const std::vector<std::string>& outcome_fields() {
  static const std::vector<std::string> kFields = {
      "final_infected_mean", "final_infected_ci95",   "peak_infected_mean",
      "time_to_peak_h",      "patched_mean",          "messages_blocked_mean",
      "total_events"};
  return kFields;
}

const std::vector<std::string>& sweep_fields() {
  static const std::vector<std::string> kFields = {"parameter", "value", "index", "count"};
  return kFields;
}

const std::vector<std::string>& artifact_fields() {
  static const std::vector<std::string> kFields = {"kind", "path"};
  return kFields;
}

json::Value to_json(const RunManifest& manifest) {
  json::Object root;
  root.set("type", json::Value("mvsim-manifest"));
  root.set("version", json::Value(RunManifest::kVersion));
  root.set("scenario", json::Value(manifest.scenario));
  root.set("scenario_hash", json::Value(manifest.scenario_hash));
  root.set("seed", json::Value(manifest.seed));
  root.set("replications", json::Value(manifest.replications));
  root.set("threads", json::Value(manifest.threads));
  root.set("shards", json::Value(manifest.shards));
  root.set("shard_window_min", json::Value(manifest.shard_window_min));
  json::Object build;
  build.set("git_sha", json::Value(manifest.build.git_sha));
  build.set("compiler", json::Value(manifest.build.compiler));
  build.set("build_type", json::Value(manifest.build.build_type));
  root.set("build", json::Value(std::move(build)));
  json::Object phases;
  phases.set("run_seconds", json::Value(manifest.phases.run_seconds));
  phases.set("write_seconds", json::Value(manifest.phases.write_seconds));
  root.set("phases", json::Value(std::move(phases)));
  root.set("peak_rss_bytes", json::Value(manifest.peak_rss));
  json::Array artifacts;
  for (const ManifestArtifact& artifact : manifest.artifacts) {
    json::Object entry;
    entry.set("kind", json::Value(artifact.kind));
    entry.set("path", json::Value(artifact.path));
    artifacts.push_back(json::Value(std::move(entry)));
  }
  root.set("artifacts", json::Value(std::move(artifacts)));
  json::Object outcome;
  outcome.set("final_infected_mean", json::Value(manifest.outcome.final_infected_mean));
  outcome.set("final_infected_ci95", json::Value(manifest.outcome.final_infected_ci95));
  outcome.set("peak_infected_mean", json::Value(manifest.outcome.peak_infected_mean));
  outcome.set("time_to_peak_h", json::Value(manifest.outcome.time_to_peak_h));
  outcome.set("patched_mean", json::Value(manifest.outcome.patched_mean));
  outcome.set("messages_blocked_mean", json::Value(manifest.outcome.messages_blocked_mean));
  outcome.set("total_events", json::Value(manifest.outcome.total_events));
  root.set("outcome", json::Value(std::move(outcome)));
  if (manifest.sweep.has_value()) {
    json::Object sweep;
    sweep.set("parameter", json::Value(manifest.sweep->parameter));
    sweep.set("value", json::Value(manifest.sweep->value));
    sweep.set("index", json::Value(manifest.sweep->index));
    sweep.set("count", json::Value(manifest.sweep->count));
    root.set("sweep", json::Value(std::move(sweep)));
  } else {
    root.set("sweep", json::Value(nullptr));
  }
  return json::Value(std::move(root));
}

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw std::runtime_error("manifest: " + message);
}

double number_at(const json::Object& object, const std::string& key) {
  const json::Value* value = object.find(key);
  if (value == nullptr || !value->is_number()) fail("missing numeric field '" + key + "'");
  return value->as_number();
}

std::string string_at(const json::Object& object, const std::string& key) {
  const json::Value* value = object.find(key);
  if (value == nullptr || !value->is_string()) fail("missing string field '" + key + "'");
  return value->as_string();
}

}  // namespace

RunManifest manifest_from_json(const json::Value& value) {
  if (!value.is_object()) fail("document is not a JSON object");
  const json::Object& root = value.as_object();
  if (string_at(root, "type") != "mvsim-manifest") fail("not an mvsim-manifest document");
  const int version = static_cast<int>(number_at(root, "version"));
  if (version != RunManifest::kVersion) {
    fail("unsupported manifest version " + std::to_string(version));
  }
  RunManifest manifest;
  manifest.scenario = string_at(root, "scenario");
  manifest.scenario_hash = string_at(root, "scenario_hash");
  manifest.seed = string_at(root, "seed");
  manifest.replications = static_cast<int>(number_at(root, "replications"));
  manifest.threads = static_cast<int>(number_at(root, "threads"));
  manifest.shards = static_cast<std::uint32_t>(number_at(root, "shards"));
  manifest.shard_window_min = number_at(root, "shard_window_min");
  const json::Value* build = root.find("build");
  if (build == nullptr || !build->is_object()) fail("missing build block");
  manifest.build.git_sha = string_at(build->as_object(), "git_sha");
  manifest.build.compiler = string_at(build->as_object(), "compiler");
  manifest.build.build_type = string_at(build->as_object(), "build_type");
  const json::Value* phases = root.find("phases");
  if (phases == nullptr || !phases->is_object()) fail("missing phases block");
  manifest.phases.run_seconds = number_at(phases->as_object(), "run_seconds");
  manifest.phases.write_seconds = number_at(phases->as_object(), "write_seconds");
  manifest.peak_rss = static_cast<std::uint64_t>(number_at(root, "peak_rss_bytes"));
  const json::Value* artifacts = root.find("artifacts");
  if (artifacts == nullptr || !artifacts->is_array()) fail("missing artifacts array");
  for (const json::Value& entry : artifacts->as_array()) {
    if (!entry.is_object()) fail("artifact entry is not an object");
    ManifestArtifact artifact;
    artifact.kind = string_at(entry.as_object(), "kind");
    artifact.path = string_at(entry.as_object(), "path");
    manifest.artifacts.push_back(std::move(artifact));
  }
  const json::Value* outcome = root.find("outcome");
  if (outcome == nullptr || !outcome->is_object()) fail("missing outcome block");
  const json::Object& o = outcome->as_object();
  manifest.outcome.final_infected_mean = number_at(o, "final_infected_mean");
  manifest.outcome.final_infected_ci95 = number_at(o, "final_infected_ci95");
  manifest.outcome.peak_infected_mean = number_at(o, "peak_infected_mean");
  manifest.outcome.time_to_peak_h = number_at(o, "time_to_peak_h");
  manifest.outcome.patched_mean = number_at(o, "patched_mean");
  manifest.outcome.messages_blocked_mean = number_at(o, "messages_blocked_mean");
  manifest.outcome.total_events = static_cast<std::uint64_t>(number_at(o, "total_events"));
  const json::Value* sweep = root.find("sweep");
  if (sweep != nullptr && !sweep->is_null()) {
    if (!sweep->is_object()) fail("sweep block is neither null nor an object");
    SweepInfo info;
    info.parameter = string_at(sweep->as_object(), "parameter");
    info.value = number_at(sweep->as_object(), "value");
    info.index = static_cast<int>(number_at(sweep->as_object(), "index"));
    info.count = static_cast<int>(number_at(sweep->as_object(), "count"));
    manifest.sweep = std::move(info);
  }
  return manifest;
}

RunManifest read_manifest_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("manifest: cannot read '" + path + "'");
  std::ostringstream text;
  text << file.rdbuf();
  try {
    return manifest_from_json(json::parse(text.str()));
  } catch (const std::exception& e) {
    throw std::runtime_error("manifest: '" + path + "': " + e.what());
  }
}

std::vector<RunManifest> read_ledger_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("ledger: cannot read '" + path + "'");
  std::vector<RunManifest> manifests;
  std::string line;
  int lineno = 0;
  while (std::getline(file, line)) {
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    try {
      manifests.push_back(manifest_from_json(json::parse(line)));
    } catch (const std::exception& e) {
      throw std::runtime_error("ledger: '" + path + "' line " + std::to_string(lineno) + ": " +
                               e.what());
    }
  }
  return manifests;
}

bool append_to_ledger(const std::string& path, const RunManifest& manifest) {
  // POSIX guarantees O_APPEND writes are atomic with respect to the
  // file offset, so emitting the whole line in one write() keeps
  // concurrent appenders from interleaving fragments — the ledger
  // analogue of the stats stream's whole-line mutex.
  std::string line = json::stringify(to_json(manifest), 0) + "\n";
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  std::size_t written = 0;
  bool ok = true;
  while (written < line.size()) {
    ssize_t n = ::write(fd, line.data() + written, line.size() - written);
    if (n <= 0) {
      ok = false;
      break;
    }
    written += static_cast<std::size_t>(n);
  }
  ::close(fd);
  return ok;
}

}  // namespace mvsim::obs
