#include "obs/stats_stream.h"

#include <ostream>
#include <utility>

#include "obs/manifest.h"
#include "util/json.h"

namespace mvsim::obs {

const std::vector<std::string>& RunStream::sample_fields() {
  static const std::vector<std::string> kFields = {
      "type",   "rep",          "t_min",         "infected", "patched",
      "blocked", "events",      "events_per_sec", "queue",    "mailbox_sent",
      "mailbox_received", "shards"};
  return kFields;
}

const std::vector<std::string>& RunStream::shard_fields() {
  static const std::vector<std::string> kFields = {"shard", "events", "queue",
                                                   "barrier_wait_ms"};
  return kFields;
}

void RunStream::write_header(const StreamInfo& info) {
  json::Object header;
  header.set("type", json::Value("mvsim-stats"));
  header.set("version", json::Value(kVersion));
  header.set("scenario", json::Value(info.scenario));
  header.set("scenario_hash", json::Value(info.scenario_hash));
  header.set("git_sha", json::Value(build_info().git_sha));
  header.set("replications", json::Value(info.replications));
  header.set("shards", json::Value(info.shards));
  json::Array fields;
  for (const std::string& field : sample_fields()) fields.push_back(json::Value(field));
  header.set("fields", json::Value(std::move(fields)));
  json::Array shard_field_names;
  for (const std::string& field : shard_fields()) {
    shard_field_names.push_back(json::Value(field));
  }
  header.set("shard_fields", json::Value(std::move(shard_field_names)));

  std::lock_guard<std::mutex> lock(mutex_);
  *out_ << json::stringify(json::Value(std::move(header)), 0) << '\n';
  out_->flush();
}

void RunStream::write_sample(const RunSample& sample) {
  // Every sample record carries every schema field — serial runs emit
  // zero mailboxes and an empty shards array rather than omitting the
  // keys, so consumers parse one shape regardless of engine.
  json::Object record;
  record.set("type", json::Value("sample"));
  record.set("rep", json::Value(sample.replication));
  record.set("t_min", json::Value(sample.time.to_minutes()));
  record.set("infected", json::Value(sample.infected));
  record.set("patched", json::Value(sample.patched));
  record.set("blocked", json::Value(sample.messages_blocked));
  record.set("events", json::Value(sample.events_executed));
  record.set("events_per_sec", json::Value(sample.events_per_sec));
  record.set("queue", json::Value(sample.queue_depth));
  record.set("mailbox_sent", json::Value(sample.mailbox_sent));
  record.set("mailbox_received", json::Value(sample.mailbox_received));
  json::Array shards;
  for (const ShardSample& shard : sample.shards) {
    json::Object entry;
    entry.set("shard", json::Value(shard.shard));
    entry.set("events", json::Value(shard.events_executed));
    entry.set("queue", json::Value(shard.queue_depth));
    entry.set("barrier_wait_ms", json::Value(shard.barrier_wait_ms));
    shards.push_back(json::Value(std::move(entry)));
  }
  record.set("shards", json::Value(std::move(shards)));

  std::lock_guard<std::mutex> lock(mutex_);
  *out_ << json::stringify(json::Value(std::move(record)), 0) << '\n';
  out_->flush();
  ++samples_written_;
}

}  // namespace mvsim::obs
