// Cross-run outcome comparison (`mvsim report --compare`).
//
// tools/bench_compare.py diffs two perf reports with normalized
// changes and OK/IMPROVED/REGRESSED verdicts; this is the same
// semantics applied to simulation outcomes. Each outcome metric has a
// direction (fewer infections is better, more patches is better, a
// later peak is better), changes are normalized so negative always
// means "got worse", and a change past the threshold flips the
// verdict. Neutral metrics (event counts, gateway blocks without
// context) are reported but never regress.
#pragma once

#include <string>
#include <vector>

#include "obs/manifest.h"

namespace mvsim::obs {

struct OutcomeDelta {
  std::string metric;       ///< outcome field name (see outcome_fields())
  double baseline = 0.0;
  double current = 0.0;
  /// Normalized change; < 0 always means "got worse". Neutral metrics
  /// report the raw relative change but keep the OK verdict.
  double change = 0.0;
  std::string verdict;      ///< OK | IMPROVED | REGRESSED
};

struct OutcomeComparison {
  std::vector<OutcomeDelta> rows;  ///< one per compared outcome metric
  int regressions = 0;
};

/// Compares the outcome blocks of two manifests. `threshold` is the
/// allowed fractional change before OK flips to IMPROVED/REGRESSED
/// (default 5% — outcome means at matched seeds are deterministic, so
/// the default mostly guards cross-seed comparisons against noise).
[[nodiscard]] OutcomeComparison compare_outcomes(const RunManifest& baseline,
                                                 const RunManifest& current,
                                                 double threshold = 0.05);

/// Renders the comparison as the human-readable table `mvsim report
/// --compare` prints (one verdict-labelled row per metric, plus a
/// provenance header and a closing regression count).
[[nodiscard]] std::string render_comparison(const RunManifest& baseline,
                                            const RunManifest& current,
                                            const OutcomeComparison& comparison,
                                            double threshold);

}  // namespace mvsim::obs
