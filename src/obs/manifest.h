// Run manifests and the experiment ledger: cross-run provenance.
//
// Metrics, traces, profiles and the stats stream each describe one
// run from the inside; the manifest describes the run from the
// outside — what ran (scenario name + content hash, seed, threads/
// shards/window), on what build (git SHA, compiler, build type),
// costing what (wall clock, peak RSS), leaving which artifacts on
// disk, and ending where (the outcome block: final/peak infections,
// time to peak, patches, blocks, events). `mvsim run --manifest PATH`
// writes one as a standalone JSON document; `--ledger PATH` appends
// the same record as one NDJSON line to an experiment ledger that
// accumulates across runs (append-safe under concurrent writers, like
// the stats stream). `mvsim report` reads either back.
//
// Like every obs surface this is observation-only: manifests are
// built from finished results and never feed back into a simulation,
// so fixed-seed curves are bit-identical with or without one attached
// (golden-pinned).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.h"

namespace mvsim::obs {

/// Build provenance from the generated obs/version.h (git SHA at
/// configure time, compiler id+version, CMake build type).
struct BuildInfo {
  std::string git_sha;
  std::string compiler;
  std::string build_type;
};

[[nodiscard]] BuildInfo build_info();

/// Peak resident set size of this process so far, in bytes (0 when
/// the platform cannot report it).
[[nodiscard]] std::uint64_t peak_rss_bytes();

/// FNV-1a 64-bit hash of `text`, as 16 lowercase hex digits. The
/// scenario content hash in manifests and stream headers is this over
/// the compact canonical scenario JSON — two runs share a hash iff
/// they ran the same model inputs.
[[nodiscard]] std::string fnv1a_hex(std::string_view text);

/// One artifact the run left on disk ("-" when it went to stdout).
struct ManifestArtifact {
  std::string kind;  ///< metrics | trace | profile | stats-stream | curve-csv | summary-json
  std::string path;
};

/// Where the run ended up — the outcome block `mvsim report --compare`
/// diffs between runs.
struct RunOutcome {
  double final_infected_mean = 0.0;
  double final_infected_ci95 = 0.0;
  /// Highest point of the mean infection curve (== final for monotone
  /// epidemics; the landmark the paper's figures eyeball).
  double peak_infected_mean = 0.0;
  double time_to_peak_h = 0.0;
  double patched_mean = 0.0;
  double messages_blocked_mean = 0.0;
  std::uint64_t total_events = 0;
};

/// Wall-clock phase breakdown of the run.
struct RunPhases {
  double run_seconds = 0.0;    ///< replications, including graph prewarm
  double write_seconds = 0.0;  ///< artifact serialization after the run
};

/// Present on manifests appended by `mvsim sweep`: which point of
/// which parameter ladder this run was.
struct SweepInfo {
  std::string parameter;
  double value = 0.0;
  int index = 0;  ///< 0-based position in the ladder
  int count = 0;  ///< ladder length
};

/// The versioned `"mvsim-manifest"` record. Every field is always
/// emitted (the `sweep` block is JSON null outside sweeps), so the
/// emitted keys match manifest_fields() exactly — the same three-way
/// contract the metrics report and stats stream keep with their docs.
struct RunManifest {
  static constexpr int kVersion = 1;

  std::string scenario;
  std::string scenario_hash;  ///< fnv1a_hex of the canonical scenario JSON
  /// Decimal string: a u64 seed above 2^53 would lose bits as a JSON
  /// double, and seeds must round-trip exactly to rerun a manifest.
  std::string seed;
  int replications = 0;
  int threads = 0;
  std::uint32_t shards = 1;
  double shard_window_min = 0.0;  ///< 0 = scenario delivery_delay_mean
  BuildInfo build;
  RunPhases phases;
  std::uint64_t peak_rss = 0;  ///< bytes, process peak at write time
  std::vector<ManifestArtifact> artifacts;
  RunOutcome outcome;
  std::optional<SweepInfo> sweep;
};

[[nodiscard]] json::Value to_json(const RunManifest& manifest);

/// Throws std::runtime_error naming the problem on anything that is
/// not a version-compatible mvsim-manifest document.
[[nodiscard]] RunManifest manifest_from_json(const json::Value& value);

/// Reads one manifest document (throws std::runtime_error on I/O or
/// schema problems).
[[nodiscard]] RunManifest read_manifest_file(const std::string& path);

/// Reads every line of an NDJSON ledger (skipping blank lines) as a
/// manifest; throws std::runtime_error naming the offending line.
[[nodiscard]] std::vector<RunManifest> read_ledger_file(const std::string& path);

/// Appends `manifest` to the ledger at `path` as one compact NDJSON
/// line. The line lands in a single O_APPEND write, so concurrent
/// appenders (parallel runs sharing one ledger) interleave whole
/// records, never fragments. Returns false when the path cannot be
/// opened or the write fails.
[[nodiscard]] bool append_to_ledger(const std::string& path, const RunManifest& manifest);

/// The canonical field lists — emitted keys and the tables in
/// docs/observability.md are tested against these (tests/obs_test.cpp).
[[nodiscard]] const std::vector<std::string>& manifest_fields();
[[nodiscard]] const std::vector<std::string>& build_fields();
[[nodiscard]] const std::vector<std::string>& phase_fields();
[[nodiscard]] const std::vector<std::string>& outcome_fields();
[[nodiscard]] const std::vector<std::string>& sweep_fields();
[[nodiscard]] const std::vector<std::string>& artifact_fields();

}  // namespace mvsim::obs
