#include "cli/cli.h"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <ostream>
#include <sstream>
#include <string_view>

#include "analysis/diminishing_returns.h"
#include "analysis/param_registry.h"
#include "analysis/sweep.h"
#include "cli/preset_registry.h"
#include "config/results_io.h"
#include "config/scenario_io.h"
#include "core/run_manifest.h"
#include "core/runner.h"
#include "metrics/report.h"
#include "obs/manifest.h"
#include "obs/report.h"
#include "obs/stats_stream.h"
#include "obs/sweep_stream.h"
#include "prof/profile_io.h"
#include "response/registry.h"
#include "trace/analysis.h"
#include "trace/export.h"
#include "trace/trace.h"
#include "util/json.h"

namespace mvsim::cli {

namespace {

constexpr const char* kUsage = R"(mvsim — mobile phone virus response simulator (DSN'07 reproduction)

usage:
  mvsim run <scenario.json | preset-name> [options]
      --reps N             replications (default 10)
      --seed N             master seed (default 3735928559)
      --threads N          worker threads (default: all cores; results identical)
      --curve-csv PATH     write the mean infection curve as CSV ('-' = stdout)
      --summary-json PATH  write the result summary as JSON ('-' = stdout)
      --metrics PATH       write the telemetry report ('-' = stdout; a path
                           ending in .csv selects CSV, anything else JSON;
                           see docs/observability.md)
      --trace PATH         record one replication's causal event trace
                           ('-' or a .jsonl path = JSONL, anything else =
                           Chrome trace JSON, loadable in Perfetto)
      --trace-rep N        which replication to trace (default 0)
      --trace-cap N        trace event capacity (default 1048576; 0 = unbounded)
      --profile PATH       time the event loop: write a per-event-type wall-clock
                           profile as JSON ('-' = stdout; results bit-identical,
                           see docs/observability.md)
      --des-impl NAME      scheduler queue: 'wheel' (calendar queue, default) or
                           'heap' (legacy binary heap); results bit-identical
      --shards N           partition the contact graph and run each replication on
                           N cooperating shard schedulers (default 1 = the serial
                           engine; N >= 2 changes results — see docs/parallelism.md;
                           composes with --trace, --profile and --stats-stream;
                           proximity scenarios are rejected)
      --shard-window MIN   synchronization window in simulated minutes (default:
                           the scenario's delivery_delay_mean; model-relevant,
                           like --shards)
      --shard-workers N    threads per sharded replication (default 0 = one per
                           shard; results identical for any value)
      --progress           live progress on stderr (replications done, events/sec,
                           ETA; with --shards also per-window progress); observation-only
      --stats-stream PATH  append live time-series telemetry as NDJSON ('-' =
                           stdout): infected/patched/blocked counts, events/sec,
                           queue depths, per-shard barrier waits; observation-only
                           (schema in docs/observability.md)
      --stats-period MIN   simulated minutes between stats samples (default 30;
                           sharded runs sample at the first window barrier at or
                           past each mark)
      --manifest PATH      write the run manifest as JSON ('-' = stdout): scenario
                           content hash, seed, build provenance, wall-clock phases,
                           peak RSS, artifact paths and the outcome block
                           (schema in docs/observability.md)
      --ledger PATH        append the manifest as one NDJSON line to an experiment
                           ledger (append-safe under concurrent runs)
      --quiet              suppress the human-readable summary
  mvsim sweep <scenario.json | preset-name> --param NAME --values V1,V2,...
              [--reps N] [--seed N] [--threads N] [--ledger PATH] [--stream PATH]
              [--knee-fraction F] [--progress]
                           run a parameter ladder: one experiment per value, a
                           manifest per point appended to the ledger, NDJSON sweep
                           progress on --stream, and the diminishing-returns knee
                           table (paper Sec. 5.3) on stdout
  mvsim sweep --list-params
                           list sweepable parameter names
  mvsim report <manifest.json>
                           single-run report from a manifest: provenance, outcome,
                           and the metrics/trace/profile artifacts it references
  mvsim report --ledger PATH [--knee-fraction F]
                           aggregate an experiment ledger: run table, sweep tables
                           with outcome-vs-parameter and knee detection
  mvsim report --compare <a.json> <b.json> [--threshold F]
                           diff two run manifests: normalized outcome deltas with
                           IMPROVED/REGRESSED/OK verdicts (exit 1 on regression,
                           default threshold 0.05)
  mvsim compare <a> <b> [...] [--reps N] [--seed N]
                           run several scenarios/presets, print a comparison table
  mvsim trace-analyze <file>
                           transmission-tree report from a --trace export
                           (generations, effective R, per-mechanism blocks)
  mvsim profile-analyze <file> [--top N]
                           "where the time goes" report from a --profile export
  mvsim preset <name>      print a preset scenario as JSON (edit & rerun)
  mvsim presets            list available presets
  mvsim mechanisms         list available response mechanisms (scenario "responses" keys)
  mvsim metrics-schema     print the telemetry metric catalogue as JSON
  mvsim validate <file>    parse and validate a scenario file
  mvsim help               this text
)";

struct RunOptions {
  std::string target;
  int replications = 10;
  std::uint64_t seed = 0xDEADBEEFULL;
  int threads = 0;
  std::string curve_csv;
  std::string summary_json;
  std::string metrics_path;
  std::string trace_path;
  int trace_replication = 0;
  std::size_t trace_capacity = trace::TraceBuffer::kDefaultCapacity;
  std::string profile_path;
  des::QueueImpl des_impl = des::QueueImpl::kWheel;
  std::uint32_t shards = 1;
  double shard_window_minutes = 0.0;  // 0 = scenario delivery_delay_mean
  int shard_workers = 0;
  bool progress = false;
  std::string stats_stream_path;
  double stats_period_minutes = 30.0;
  std::string manifest_path;
  std::string ledger_path;
  bool quiet = false;
};

bool parse_u64(const std::string& text, std::uint64_t& out) {
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

bool looks_like_file(const std::string& target) {
  return target.find('.') != std::string::npos || target.find('/') != std::string::npos;
}

int parse_run_options(const std::vector<std::string>& args, RunOptions& options,
                      std::ostream& err) {
  if (args.empty()) {
    err << "run: missing scenario file or preset name\n";
    return 1;
  }
  options.target = args[0];
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&](const char* flag) -> const std::string* {
      if (i + 1 >= args.size()) {
        err << flag << ": missing value\n";
        return nullptr;
      }
      return &args[++i];
    };
    if (arg == "--reps") {
      const std::string* v = next("--reps");
      if (v == nullptr) return 1;
      std::uint64_t reps = 0;
      if (!parse_u64(*v, reps) || reps == 0 || reps > 100000) {
        err << "--reps: expected a positive integer, got '" << *v << "'\n";
        return 1;
      }
      options.replications = static_cast<int>(reps);
    } else if (arg == "--seed") {
      const std::string* v = next("--seed");
      if (v == nullptr) return 1;
      if (!parse_u64(*v, options.seed)) {
        err << "--seed: expected an integer, got '" << *v << "'\n";
        return 1;
      }
    } else if (arg == "--threads") {
      const std::string* v = next("--threads");
      if (v == nullptr) return 1;
      std::uint64_t threads = 0;
      if (!parse_u64(*v, threads) || threads > 1024) {
        err << "--threads: expected an integer in [0, 1024], got '" << *v << "'\n";
        return 1;
      }
      options.threads = static_cast<int>(threads);
    } else if (arg == "--curve-csv") {
      const std::string* v = next("--curve-csv");
      if (v == nullptr) return 1;
      options.curve_csv = *v;
    } else if (arg == "--summary-json") {
      const std::string* v = next("--summary-json");
      if (v == nullptr) return 1;
      options.summary_json = *v;
    } else if (arg == "--metrics") {
      const std::string* v = next("--metrics");
      if (v == nullptr) return 1;
      options.metrics_path = *v;
    } else if (arg == "--trace") {
      const std::string* v = next("--trace");
      if (v == nullptr) return 1;
      options.trace_path = *v;
    } else if (arg == "--trace-rep") {
      const std::string* v = next("--trace-rep");
      if (v == nullptr) return 1;
      std::uint64_t rep = 0;
      if (!parse_u64(*v, rep) || rep > 100000) {
        err << "--trace-rep: expected a replication index, got '" << *v << "'\n";
        return 1;
      }
      options.trace_replication = static_cast<int>(rep);
    } else if (arg == "--trace-cap") {
      const std::string* v = next("--trace-cap");
      if (v == nullptr) return 1;
      std::uint64_t cap = 0;
      if (!parse_u64(*v, cap)) {
        err << "--trace-cap: expected an event count (0 = unbounded), got '" << *v << "'\n";
        return 1;
      }
      options.trace_capacity =
          cap == 0 ? std::numeric_limits<std::size_t>::max() : static_cast<std::size_t>(cap);
    } else if (arg == "--profile") {
      const std::string* v = next("--profile");
      if (v == nullptr) return 1;
      options.profile_path = *v;
    } else if (arg == "--des-impl") {
      const std::string* v = next("--des-impl");
      if (v == nullptr) return 1;
      if (*v == "wheel") {
        options.des_impl = des::QueueImpl::kWheel;
      } else if (*v == "heap") {
        options.des_impl = des::QueueImpl::kHeap;
      } else {
        err << "--des-impl: expected 'wheel' or 'heap', got '" << *v << "'\n";
        return 1;
      }
    } else if (arg == "--shards") {
      const std::string* v = next("--shards");
      if (v == nullptr) return 1;
      std::uint64_t shards = 0;
      if (!parse_u64(*v, shards) || shards == 0 || shards > 4096) {
        err << "--shards: expected an integer in [1, 4096], got '" << *v << "'\n";
        return 1;
      }
      options.shards = static_cast<std::uint32_t>(shards);
    } else if (arg == "--shard-window") {
      const std::string* v = next("--shard-window");
      if (v == nullptr) return 1;
      char* end = nullptr;
      double minutes = std::strtod(v->c_str(), &end);
      if (end != v->c_str() + v->size() || v->empty() || !(minutes > 0.0)) {
        err << "--shard-window: expected a positive number of simulated minutes, got '" << *v
            << "'\n";
        return 1;
      }
      options.shard_window_minutes = minutes;
    } else if (arg == "--shard-workers") {
      const std::string* v = next("--shard-workers");
      if (v == nullptr) return 1;
      std::uint64_t workers = 0;
      if (!parse_u64(*v, workers) || workers > 1024) {
        err << "--shard-workers: expected an integer in [0, 1024], got '" << *v << "'\n";
        return 1;
      }
      options.shard_workers = static_cast<int>(workers);
    } else if (arg == "--progress") {
      options.progress = true;
    } else if (arg == "--stats-stream") {
      const std::string* v = next("--stats-stream");
      if (v == nullptr) return 1;
      options.stats_stream_path = *v;
    } else if (arg == "--stats-period") {
      const std::string* v = next("--stats-period");
      if (v == nullptr) return 1;
      char* end = nullptr;
      double minutes = std::strtod(v->c_str(), &end);
      if (end != v->c_str() + v->size() || v->empty() || !(minutes > 0.0)) {
        err << "--stats-period: expected a positive number of simulated minutes, got '" << *v
            << "'\n";
        return 1;
      }
      options.stats_period_minutes = minutes;
    } else if (arg == "--manifest") {
      const std::string* v = next("--manifest");
      if (v == nullptr) return 1;
      options.manifest_path = *v;
    } else if (arg == "--ledger") {
      const std::string* v = next("--ledger");
      if (v == nullptr) return 1;
      options.ledger_path = *v;
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else {
      err << "run: unknown option '" << arg << "'\n";
      return 1;
    }
  }
  return 0;
}

int resolve_scenario(const std::string& target, core::ScenarioConfig& config,
                     std::ostream& err) {
  if (auto preset = find_preset(target)) {
    config = *preset;
    return 0;
  }
  if (!looks_like_file(target)) {
    err << "unknown preset '" << target << "' (see `mvsim presets`), and it does not look "
        << "like a file path\n";
    return 1;
  }
  try {
    config = config::load_scenario_file(target);
    return 0;
  } catch (const std::exception& e) {
    err << e.what() << '\n';
    return 2;
  }
}

int write_to(const std::string& path, const std::string& content, std::ostream& out,
             std::ostream& err) {
  if (path == "-") {
    out << content;
    return 0;
  }
  std::ofstream file(path);
  if (!file) {
    err << "cannot write '" << path << "'\n";
    return 2;
  }
  file << content;
  file.flush();
  if (!file) {
    // Opened but the write failed (disk full, stream error mid-write):
    // same contract as an unopenable path — report and fail.
    err << "cannot write '" << path << "'\n";
    return 2;
  }
  return 0;
}

/// Content hash of the model inputs: FNV-1a over the compact canonical
/// scenario JSON. Two runs share a hash iff they simulated the same
/// scenario — the provenance link manifests, ledgers and stream
/// headers all carry.
std::string scenario_hash_of(const core::ScenarioConfig& config) {
  return obs::fnv1a_hex(json::stringify(config::to_json(config), 0));
}

/// Fail-fast writability probe for paths written after the run (the
/// "unwritable path => exit 2" contract, without paying minutes of
/// simulation first). Append mode, so probing never truncates an
/// existing ledger. Returns 0 or the exit code.
int probe_writable(const std::string& path, std::ostream& err) {
  if (path.empty() || path == "-") return 0;
  std::ofstream probe(path, std::ios::app);
  if (!probe) {
    err << "cannot write '" << path << "'\n";
    return 2;
  }
  return 0;
}

/// Renders ProgressUpdate lines on `err` as a carriage-return ticker;
/// call finish() (newline) before printing anything else to `err`.
class ProgressTicker {
 public:
  explicit ProgressTicker(std::ostream& err) : err_(&err) {}

  void operator()(const core::ProgressUpdate& update) {
    char line[256];
    if (update.build_phase) {
      // One-time shared-graph build, reported on its own line so the
      // per-replication ETA below never includes it.
      std::snprintf(line, sizeof line, "\r%s: shared graph built in %.1fs   ",
                    update.label.c_str(), update.build_seconds);
      *err_ << line << '\n' << std::flush;
      return;
    }
    if (update.window_fraction > 0.0) {
      // Mid-replication window barrier of a sharded run: show how far
      // through the horizon the in-flight replication is.
      std::snprintf(line, sizeof line,
                    "\r%s: rep %d/%d +%.0f%% (%d shards), %.0f ev/s, ETA %.1fs   ",
                    update.label.c_str(), update.replications_done, update.replications_total,
                    update.window_fraction * 100.0, update.shards, update.events_per_sec,
                    update.eta_seconds);
    } else if (update.config_count > 1) {
      std::snprintf(line, sizeof line, "\r[%d/%d] %s: rep %d/%d, %.0f ev/s, ETA %.1fs   ",
                    update.config_index + 1, update.config_count, update.label.c_str(),
                    update.replications_done, update.replications_total, update.events_per_sec,
                    update.eta_seconds);
    } else {
      std::snprintf(line, sizeof line, "\r%s: rep %d/%d, %.0f ev/s, ETA %.1fs   ",
                    update.label.c_str(), update.replications_done, update.replications_total,
                    update.events_per_sec, update.eta_seconds);
    }
    *err_ << line << std::flush;
    ticked_ = true;
  }

  void finish() {
    if (ticked_) *err_ << '\n';
    ticked_ = false;
  }

 private:
  std::ostream* err_;
  bool ticked_ = false;
};

/// JSONL for '-' (streams line by line) and .jsonl paths; Chrome trace
/// JSON for everything else.
bool trace_path_is_jsonl(const std::string& path) {
  if (path == "-") return true;
  constexpr std::string_view kExt = ".jsonl";
  return path.size() >= kExt.size() &&
         path.compare(path.size() - kExt.size(), kExt.size(), kExt) == 0;
}

int command_run(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  RunOptions options;
  if (int rc = parse_run_options(args, options, err); rc != 0) return rc;

  core::ScenarioConfig scenario;
  if (int rc = resolve_scenario(options.target, scenario, err); rc != 0) return rc;
  const std::string scenario_hash = scenario_hash_of(scenario);

  // Manifest and ledger are written after the run; probe their paths
  // now so a typo'd directory fails in milliseconds, not minutes.
  if (int rc = probe_writable(options.manifest_path, err); rc != 0) return rc;
  if (int rc = probe_writable(options.ledger_path, err); rc != 0) return rc;

  if (options.trace_replication >= options.replications) {
    err << "--trace-rep: replication " << options.trace_replication << " does not exist (only "
        << options.replications << " replication(s))\n";
    return 1;
  }
  std::unique_ptr<trace::TraceBuffer> trace_buffer;
  core::RunnerOptions runner;
  runner.replications = options.replications;
  runner.master_seed = options.seed;
  runner.keep_replications = false;
  runner.threads = options.threads;
  if (!options.trace_path.empty()) {
    trace_buffer = std::make_unique<trace::TraceBuffer>(options.trace_capacity);
    runner.trace = trace_buffer.get();
    runner.trace_replication = options.trace_replication;
  }
  runner.profile = !options.profile_path.empty();
  runner.des_impl = options.des_impl;
  runner.shards = options.shards;
  if (options.shard_window_minutes > 0.0) {
    runner.shard_window = SimTime::minutes(options.shard_window_minutes);
  }
  runner.shard_workers = options.shard_workers;
  // The stream sink is opened (and its header written) before the run
  // starts, so an unwritable path fails fast instead of after minutes
  // of simulation.
  std::ofstream stats_file;
  std::unique_ptr<obs::RunStream> stats_stream;
  if (!options.stats_stream_path.empty()) {
    std::ostream* sink = &out;
    if (options.stats_stream_path != "-") {
      stats_file.open(options.stats_stream_path);
      if (!stats_file) {
        err << "cannot write '" << options.stats_stream_path << "'\n";
        return 2;
      }
      sink = &stats_file;
    }
    stats_stream = std::make_unique<obs::RunStream>(*sink);
    obs::StreamInfo stream_info;
    stream_info.scenario = scenario.name;
    stream_info.scenario_hash = scenario_hash;
    stream_info.replications = options.replications;
    stream_info.shards = options.shards;
    stats_stream->write_header(stream_info);
    runner.stats_stream = stats_stream.get();
    runner.stats_period = SimTime::minutes(options.stats_period_minutes);
  }
  ProgressTicker ticker(err);
  if (options.progress) {
    runner.progress = [&ticker](const core::ProgressUpdate& update) { ticker(update); };
  }
  const auto run_started = std::chrono::steady_clock::now();
  core::ExperimentResult result = core::run_experiment(scenario, runner);
  const auto run_finished = std::chrono::steady_clock::now();
  ticker.finish();

  std::vector<obs::ManifestArtifact> artifacts;
  if (!options.stats_stream_path.empty()) {
    artifacts.push_back({"stats-stream", options.stats_stream_path});
  }

  if (!options.quiet) {
    out << "scenario: " << scenario.name << "\n"
        << "replications: " << options.replications << " (seed " << options.seed << ")\n"
        << "final infections: " << result.final_infections.mean() << " +/- "
        << result.final_infections.ci95_half_width() << " (expected unrestrained plateau "
        << scenario.expected_unrestrained_plateau() << ")\n"
        << "messages submitted: " << result.messages_submitted.mean()
        << ", blocked: " << result.messages_blocked.mean() << "\n";
  }
  if (!options.summary_json.empty()) {
    std::string text = json::stringify(config::results_to_json(scenario, result), 2) + "\n";
    if (int rc = write_to(options.summary_json, text, out, err); rc != 0) return rc;
    artifacts.push_back({"summary-json", options.summary_json});
  }
  if (!options.curve_csv.empty()) {
    std::ostringstream csv;
    config::write_curve_csv(result, csv);
    if (int rc = write_to(options.curve_csv, csv.str(), out, err); rc != 0) return rc;
    artifacts.push_back({"curve-csv", options.curve_csv});
  }
  if (!options.metrics_path.empty()) {
    metrics::ReportInfo info;
    info.scenario = scenario.name;
    info.replications = options.replications;
    info.threads = result.threads_used;
    info.master_seed = options.seed;
    std::string text;
    bool csv = options.metrics_path.size() >= 4 &&
               options.metrics_path.compare(options.metrics_path.size() - 4, 4, ".csv") == 0;
    if (csv) {
      std::ostringstream report;
      metrics::write_report_csv(info, result.metrics, report);
      text = report.str();
    } else {
      text = json::stringify(metrics::report_to_json(info, result.metrics), 2) + "\n";
    }
    if (int rc = write_to(options.metrics_path, text, out, err); rc != 0) return rc;
    artifacts.push_back({"metrics", options.metrics_path});
  }
  if (!options.profile_path.empty()) {
    metrics::ReportInfo info;
    info.scenario = scenario.name;
    info.replications = options.replications;
    info.threads = result.threads_used;
    info.master_seed = options.seed;
    std::string text = json::stringify(prof::profile_to_json(info, result.metrics), 2) + "\n";
    if (int rc = write_to(options.profile_path, text, out, err); rc != 0) return rc;
    artifacts.push_back({"profile", options.profile_path});
  }
  if (trace_buffer != nullptr) {
    std::ostringstream text;
    if (trace_path_is_jsonl(options.trace_path)) {
      trace::write_jsonl(*trace_buffer, text);
    } else {
      trace::write_chrome_trace(*trace_buffer, text);
    }
    if (int rc = write_to(options.trace_path, text.str(), out, err); rc != 0) return rc;
    artifacts.push_back({"trace", options.trace_path});
    if (!options.quiet && trace_buffer->dropped() > 0) {
      err << "trace: capacity " << trace_buffer->capacity() << " reached, dropped "
          << trace_buffer->dropped() << " event(s); raise --trace-cap (0 = unbounded)\n";
    }
  }
  if (!options.manifest_path.empty() || !options.ledger_path.empty()) {
    core::ManifestInputs inputs;
    inputs.scenario_hash = scenario_hash;
    inputs.seed = options.seed;
    inputs.shards = options.shards;
    inputs.shard_window_min = options.shard_window_minutes;
    inputs.phases.run_seconds = std::chrono::duration<double>(run_finished - run_started).count();
    inputs.phases.write_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - run_finished).count();
    inputs.artifacts = std::move(artifacts);
    obs::RunManifest manifest = core::build_run_manifest(scenario, inputs, result);
    if (!options.manifest_path.empty()) {
      std::string text = json::stringify(obs::to_json(manifest), 2) + "\n";
      if (int rc = write_to(options.manifest_path, text, out, err); rc != 0) return rc;
    }
    if (!options.ledger_path.empty() && !obs::append_to_ledger(options.ledger_path, manifest)) {
      err << "cannot write '" << options.ledger_path << "'\n";
      return 2;
    }
  }
  return 0;
}

int command_trace_analyze(const std::vector<std::string>& args, std::ostream& out,
                          std::ostream& err) {
  if (args.size() != 1) {
    err << "trace-analyze: expected exactly one trace file (from `mvsim run --trace`)\n";
    return 1;
  }
  try {
    trace::LoadedTrace loaded = trace::read_trace_file(args[0]);
    trace::TreeStats stats = trace::analyze(loaded.events);
    stats.dropped = loaded.meta.dropped;
    trace::write_report(stats, out);
    return 0;
  } catch (const std::exception& e) {
    err << e.what() << '\n';
    return 2;
  }
}

int command_profile_analyze(const std::vector<std::string>& args, std::ostream& out,
                            std::ostream& err) {
  std::string path;
  int top_n = 0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--top") {
      if (i + 1 >= args.size()) {
        err << "--top: missing value\n";
        return 1;
      }
      std::uint64_t value = 0;
      if (!parse_u64(args[i + 1], value) || value == 0 || value > 1000) {
        err << "--top: expected a positive integer, got '" << args[i + 1] << "'\n";
        return 1;
      }
      top_n = static_cast<int>(value);
      ++i;
    } else if (path.empty()) {
      path = args[i];
    } else {
      err << "profile-analyze: unexpected argument '" << args[i] << "'\n";
      return 1;
    }
  }
  if (path.empty()) {
    err << "profile-analyze: expected a profile file (from `mvsim run --profile`)\n";
    return 1;
  }
  try {
    prof::write_profile_report(prof::read_profile_file(path), out, top_n);
    return 0;
  } catch (const std::exception& e) {
    err << e.what() << '\n';
    return 2;
  }
}

int command_compare(const std::vector<std::string>& args, std::ostream& out,
                    std::ostream& err) {
  std::vector<std::string> targets;
  int replications = 10;
  std::uint64_t seed = 0xDEADBEEFULL;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--reps" || args[i] == "--seed") {
      if (i + 1 >= args.size()) {
        err << args[i] << ": missing value\n";
        return 1;
      }
      std::uint64_t value = 0;
      if (!parse_u64(args[i + 1], value)) {
        err << args[i] << ": expected an integer, got '" << args[i + 1] << "'\n";
        return 1;
      }
      if (args[i] == "--reps") {
        if (value == 0) {
          err << "--reps: must be positive\n";
          return 1;
        }
        replications = static_cast<int>(value);
      } else {
        seed = value;
      }
      ++i;
    } else {
      targets.push_back(args[i]);
    }
  }
  if (targets.size() < 2) {
    err << "compare: need at least two scenarios or presets\n";
    return 1;
  }

  struct Row {
    std::string name;
    double final_mean;
    double final_ci;
    double messages;
  };
  std::vector<Row> rows;
  for (const std::string& target : targets) {
    core::ScenarioConfig scenario;
    if (int rc = resolve_scenario(target, scenario, err); rc != 0) return rc;
    core::RunnerOptions runner;
    runner.replications = replications;
    runner.master_seed = seed;
    runner.keep_replications = false;
    runner.threads = 0;
    core::ExperimentResult result = core::run_experiment(scenario, runner);
    rows.push_back({scenario.name, result.final_infections.mean(),
                    result.final_infections.ci95_half_width(),
                    result.messages_submitted.mean()});
  }

  double baseline = rows.front().final_mean;
  out << "scenario,final_infected,ci95,pct_of_first,messages_per_rep\n";
  for (const Row& row : rows) {
    char line[256];
    std::snprintf(line, sizeof line, "%s,%.1f,%.1f,%.1f%%,%.0f\n", row.name.c_str(),
                  row.final_mean, row.final_ci,
                  baseline > 0.0 ? 100.0 * row.final_mean / baseline : 0.0, row.messages);
    out << line;
  }
  return 0;
}

int command_preset(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  if (args.size() != 1) {
    err << "preset: expected exactly one preset name\n";
    return 1;
  }
  auto preset = find_preset(args[0]);
  if (!preset) {
    err << "unknown preset '" << args[0] << "' (see `mvsim presets`)\n";
    return 1;
  }
  out << json::stringify(config::to_json(*preset), 2) << '\n';
  return 0;
}

int command_presets(std::ostream& out) {
  for (const PresetEntry& entry : list_presets()) {
    out << "  " << entry.name;
    for (std::size_t pad = entry.name.size(); pad < 20; ++pad) out << ' ';
    out << entry.description << '\n';
  }
  return 0;
}

int command_mechanisms(std::ostream& out) {
  for (const response::MechanismInfo& info :
       response::ResponseRegistry::built_ins().mechanisms()) {
    out << "  " << info.name;
    for (std::size_t pad = std::string(info.name).size(); pad < 20; ++pad) out << ' ';
    out << info.summary << '\n';
  }
  return 0;
}

int command_metrics_schema(std::ostream& out) {
  out << json::stringify(metrics::schema_to_json(), 2) << '\n';
  return 0;
}

int command_validate(const std::vector<std::string>& args, std::ostream& out,
                     std::ostream& err) {
  if (args.size() != 1) {
    err << "validate: expected exactly one file path\n";
    return 1;
  }
  try {
    core::ScenarioConfig config = config::load_scenario_file(args[0]);
    out << "OK: " << config.name << " (" << config.population << " phones, virus '"
        << config.virus.name << "', " << config.responses.enabled_count()
        << " response mechanism(s))\n";
    return 0;
  } catch (const std::exception& e) {
    err << e.what() << '\n';
    return 2;
  }
}

bool parse_double(const std::string& text, double& out) {
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  return !text.empty() && end == text.c_str() + text.size();
}

/// Formats a sweep value the way per-point scenario names embed it
/// (compact, round-trippable for the ladders the paper uses).
std::string format_value(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%g", value);
  return buffer;
}

/// Prints the knee verdict as a stable greppable marker line.
void print_knee_marker(const analysis::DiminishingReturnsReport& report, std::ostream& out) {
  if (report.has_knee()) {
    const analysis::MarginalGain& step = report.gains[report.knee_index];
    char line[160];
    std::snprintf(line, sizeof line,
                  "knee: %s past %g (the step to %g earns %.2f avoided/unit)\n",
                  report.parameter_name.c_str(), step.from_parameter, step.to_parameter,
                  step.avoided_per_unit);
    out << line;
  } else if (report.returns_still_increasing()) {
    out << "knee: none (returns still increasing at the strongest setting studied)\n";
  } else {
    out << "knee: none (every step from the peak onward still pays off)\n";
  }
}

int command_sweep(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  if (!args.empty() && args[0] == "--list-params") {
    for (const analysis::SweepableParam& param : analysis::sweepable_params()) {
      out << "  " << param.name;
      for (std::size_t pad = std::string(param.name).size(); pad < 36; ++pad) out << ' ';
      out << param.description << " [" << param.unit << "]\n";
    }
    return 0;
  }
  if (args.empty()) {
    err << "sweep: missing scenario file or preset name\n";
    return 1;
  }
  const std::string target = args[0];
  std::string param_name;
  std::vector<double> values;
  int replications = 10;
  std::uint64_t seed = 0xDEADBEEFULL;
  int threads = 0;
  std::string ledger_path;
  std::string stream_path;
  double knee_fraction = 0.2;
  bool progress = false;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&](const char* flag) -> const std::string* {
      if (i + 1 >= args.size()) {
        err << flag << ": missing value\n";
        return nullptr;
      }
      return &args[++i];
    };
    if (arg == "--param") {
      const std::string* v = next("--param");
      if (v == nullptr) return 1;
      param_name = *v;
    } else if (arg == "--values") {
      const std::string* v = next("--values");
      if (v == nullptr) return 1;
      std::string token;
      std::istringstream list(*v);
      while (std::getline(list, token, ',')) {
        double value = 0.0;
        if (!parse_double(token, value)) {
          err << "--values: expected comma-separated numbers, got '" << token << "'\n";
          return 1;
        }
        values.push_back(value);
      }
    } else if (arg == "--reps") {
      const std::string* v = next("--reps");
      if (v == nullptr) return 1;
      std::uint64_t reps = 0;
      if (!parse_u64(*v, reps) || reps == 0 || reps > 100000) {
        err << "--reps: expected a positive integer, got '" << *v << "'\n";
        return 1;
      }
      replications = static_cast<int>(reps);
    } else if (arg == "--seed") {
      const std::string* v = next("--seed");
      if (v == nullptr) return 1;
      if (!parse_u64(*v, seed)) {
        err << "--seed: expected an integer, got '" << *v << "'\n";
        return 1;
      }
    } else if (arg == "--threads") {
      const std::string* v = next("--threads");
      if (v == nullptr) return 1;
      std::uint64_t count = 0;
      if (!parse_u64(*v, count) || count > 1024) {
        err << "--threads: expected an integer in [0, 1024], got '" << *v << "'\n";
        return 1;
      }
      threads = static_cast<int>(count);
    } else if (arg == "--ledger") {
      const std::string* v = next("--ledger");
      if (v == nullptr) return 1;
      ledger_path = *v;
    } else if (arg == "--stream") {
      const std::string* v = next("--stream");
      if (v == nullptr) return 1;
      stream_path = *v;
    } else if (arg == "--knee-fraction") {
      const std::string* v = next("--knee-fraction");
      if (v == nullptr) return 1;
      if (!parse_double(*v, knee_fraction) || !(knee_fraction > 0.0) || knee_fraction >= 1.0) {
        err << "--knee-fraction: expected a fraction in (0, 1), got '" << *v << "'\n";
        return 1;
      }
    } else if (arg == "--progress") {
      progress = true;
    } else {
      err << "sweep: unknown option '" << arg << "'\n";
      return 1;
    }
  }
  if (param_name.empty()) {
    err << "sweep: --param is required (see `mvsim sweep --list-params`)\n";
    return 1;
  }
  const analysis::SweepableParam* param = analysis::find_sweepable(param_name);
  if (param == nullptr) {
    err << "sweep: unknown parameter '" << param_name << "'; sweepable parameters:\n";
    for (const analysis::SweepableParam& entry : analysis::sweepable_params()) {
      err << "  " << entry.name << '\n';
    }
    return 1;
  }
  if (values.size() < 2) {
    err << "sweep: --values needs at least two comma-separated values\n";
    return 1;
  }

  core::ScenarioConfig base;
  if (int rc = resolve_scenario(target, base, err); rc != 0) return rc;
  const std::string base_hash = scenario_hash_of(base);
  if (int rc = probe_writable(ledger_path, err); rc != 0) return rc;

  std::ofstream stream_file;
  std::unique_ptr<obs::SweepStream> stream;
  if (!stream_path.empty()) {
    std::ostream* sink = &out;
    if (stream_path != "-") {
      stream_file.open(stream_path);
      if (!stream_file) {
        err << "cannot write '" << stream_path << "'\n";
        return 2;
      }
      sink = &stream_file;
    }
    stream = std::make_unique<obs::SweepStream>(*sink);
    obs::SweepStreamHeader header;
    header.parameter = param_name;
    header.scenario = base.name;
    header.scenario_hash = base_hash;
    header.points = static_cast<int>(values.size());
    header.replications = replications;
    stream->write_header(header);
  }

  core::RunnerOptions runner;
  runner.replications = replications;
  runner.master_seed = seed;
  runner.keep_replications = false;
  runner.threads = threads;

  auto make_scenario = [&](double value) {
    core::ScenarioConfig scenario = base;
    param->apply(scenario, value);
    scenario.name = base.name + "/" + param_name + "=" + format_value(value);
    return scenario;
  };

  const auto sweep_started = std::chrono::steady_clock::now();
  std::string ledger_error;
  analysis::SweepHooks hooks;
  hooks.point_started = [&](std::size_t index, std::size_t count, double value,
                            const core::ScenarioConfig& config) {
    (void)config;
    if (progress) {
      err << "[" << index + 1 << "/" << count << "] " << param_name << " = "
          << format_value(value) << "...\n";
    }
    if (stream != nullptr) {
      obs::SweepPointRecord record;
      record.type = "point-started";
      record.index = static_cast<int>(index);
      record.count = static_cast<int>(count);
      record.value = value;
      stream->write_point(record);
    }
  };
  hooks.point_finished = [&](std::size_t index, std::size_t count, double value,
                             const core::ScenarioConfig& config,
                             const core::ExperimentResult& result, double wall_seconds) {
    if (stream != nullptr) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - sweep_started)
              .count();
      obs::SweepPointRecord record;
      record.type = "point-finished";
      record.index = static_cast<int>(index);
      record.count = static_cast<int>(count);
      record.value = value;
      record.wall_seconds = wall_seconds;
      record.eta_seconds =
          elapsed / static_cast<double>(index + 1) * static_cast<double>(count - index - 1);
      record.final_infected_mean = result.final_infections.mean();
      record.total_events = result.metrics.counter_value("des.events_executed");
      stream->write_point(record);
    }
    if (!ledger_path.empty() && ledger_error.empty()) {
      core::ManifestInputs inputs;
      inputs.scenario_hash = scenario_hash_of(config);
      inputs.seed = seed;
      inputs.phases.run_seconds = wall_seconds;
      obs::SweepInfo info;
      info.parameter = param_name;
      info.value = value;
      info.index = static_cast<int>(index);
      info.count = static_cast<int>(count);
      inputs.sweep = std::move(info);
      obs::RunManifest manifest = core::build_run_manifest(config, inputs, result);
      if (!obs::append_to_ledger(ledger_path, manifest)) ledger_error = ledger_path;
    }
  };

  analysis::SweepResult sweep =
      analysis::run_sweep(param_name, values, make_scenario, runner, hooks);
  if (!ledger_error.empty()) {
    err << "cannot write '" << ledger_error << "'\n";
    return 2;
  }

  out << "sweep: " << base.name << " over " << param_name << " [" << param->unit << "], "
      << values.size() << " point(s) x " << replications << " replication(s) (seed " << seed
      << ")\n";
  for (const analysis::SweepPoint& point : sweep.points) {
    char line[160];
    std::snprintf(line, sizeof line, "  %-14s %10.1f +/- %-8.1f (blocked %.1f)\n",
                  format_value(point.parameter).c_str(),
                  point.result.final_infections.mean(),
                  point.result.final_infections.ci95_half_width(),
                  point.result.messages_blocked.mean());
    out << line;
  }
  const double baseline_final = sweep.points.front().result.final_infections.mean();
  analysis::DiminishingReturnsReport report =
      analysis::analyze_diminishing_returns(sweep, baseline_final, knee_fraction);
  out << '\n' << analysis::to_table(report);
  print_knee_marker(report, out);
  return 0;
}

/// Stitches the on-disk artifacts one manifest references into the
/// report: the metrics derived section, the trace attribution report
/// and the profile top-N. Missing or unreadable artifacts are noted
/// and skipped — a report must not fail because a run's side files
/// were cleaned up.
void report_artifacts(const obs::RunManifest& manifest, std::ostream& out) {
  for (const obs::ManifestArtifact& artifact : manifest.artifacts) {
    if (artifact.path == "-") continue;  // went to stdout, nothing on disk
    try {
      if (artifact.kind == "metrics") {
        std::ifstream file(artifact.path);
        if (!file) throw std::runtime_error("cannot read '" + artifact.path + "'");
        std::ostringstream text;
        text << file.rdbuf();
        const json::Value doc = json::parse(text.str());
        const json::Value* derived =
            doc.is_object() ? doc.as_object().find("derived") : nullptr;
        if (derived == nullptr || !derived->is_object()) {
          throw std::runtime_error("no derived section (CSV metrics are not stitched)");
        }
        out << "\n-- metrics (" << artifact.path << ") --\n";
        for (const auto& [key, value] : derived->as_object().entries()) {
          out << "  " << key << ": " << json::stringify(value, 0) << '\n';
        }
      } else if (artifact.kind == "trace") {
        trace::LoadedTrace loaded = trace::read_trace_file(artifact.path);
        trace::TreeStats stats = trace::analyze(loaded.events);
        stats.dropped = loaded.meta.dropped;
        out << "\n-- trace (" << artifact.path << ") --\n";
        trace::write_report(stats, out);
      } else if (artifact.kind == "profile") {
        out << "\n-- profile (" << artifact.path << ", top 5) --\n";
        prof::write_profile_report(prof::read_profile_file(artifact.path), out, 5);
      }
    } catch (const std::exception& e) {
      out << "\n-- " << artifact.kind << " (" << artifact.path << "): skipped: " << e.what()
          << " --\n";
    }
  }
}

void report_manifest(const obs::RunManifest& manifest, std::ostream& out) {
  char line[256];
  out << "run: " << manifest.scenario << " (scenario " << manifest.scenario_hash << ")\n"
      << "  seed " << manifest.seed << ", " << manifest.replications << " replication(s), "
      << manifest.threads << " thread(s), " << manifest.shards << " shard(s)\n"
      << "  build " << manifest.build.git_sha << " (" << manifest.build.compiler << ", "
      << manifest.build.build_type << ")\n";
  std::snprintf(line, sizeof line, "  phases: run %.2fs, write %.2fs; peak RSS %.1f MiB\n",
                manifest.phases.run_seconds, manifest.phases.write_seconds,
                static_cast<double>(manifest.peak_rss) / (1024.0 * 1024.0));
  out << line;
  if (manifest.sweep.has_value()) {
    out << "  sweep: " << manifest.sweep->parameter << " = " << format_value(manifest.sweep->value)
        << " (point " << manifest.sweep->index + 1 << "/" << manifest.sweep->count << ")\n";
  }
  const obs::RunOutcome& o = manifest.outcome;
  std::snprintf(line, sizeof line,
                "outcome:\n"
                "  final infected    %.1f +/- %.1f\n"
                "  peak infected     %.1f (at %.1f h)\n"
                "  patched           %.1f\n"
                "  messages blocked  %.1f\n"
                "  total events      %llu\n",
                o.final_infected_mean, o.final_infected_ci95, o.peak_infected_mean,
                o.time_to_peak_h, o.patched_mean, o.messages_blocked_mean,
                static_cast<unsigned long long>(o.total_events));
  out << line;
  if (!manifest.artifacts.empty()) {
    out << "artifacts:\n";
    for (const obs::ManifestArtifact& artifact : manifest.artifacts) {
      out << "  " << artifact.kind << " " << artifact.path << '\n';
    }
  }
}

int report_ledger(const std::string& path, double knee_fraction, std::ostream& out,
                  std::ostream& err) {
  std::vector<obs::RunManifest> manifests;
  try {
    manifests = obs::read_ledger_file(path);
  } catch (const std::exception& e) {
    err << e.what() << '\n';
    return 2;
  }
  if (manifests.empty()) {
    err << "ledger: '" << path << "' holds no runs\n";
    return 1;
  }
  out << "ledger: " << path << ", " << manifests.size() << " run(s)\n";
  char line[256];
  std::snprintf(line, sizeof line, "%-44s %6s %5s %10s %10s %12s\n", "scenario", "reps",
                "thr", "final", "patched", "events");
  out << line;
  for (const obs::RunManifest& manifest : manifests) {
    std::snprintf(line, sizeof line, "%-44s %6d %5d %10.1f %10.1f %12llu\n",
                  manifest.scenario.c_str(), manifest.replications, manifest.threads,
                  manifest.outcome.final_infected_mean, manifest.outcome.patched_mean,
                  static_cast<unsigned long long>(manifest.outcome.total_events));
    out << line;
  }
  // Sweep-tagged runs regroup into their ladders (insertion order, by
  // parameter name) so the report can re-run the knee analysis offline.
  std::vector<std::string> order;
  std::map<std::string, std::vector<std::pair<double, double>>> ladders;
  for (const obs::RunManifest& manifest : manifests) {
    if (!manifest.sweep.has_value()) continue;
    auto [it, inserted] = ladders.try_emplace(manifest.sweep->parameter);
    if (inserted) order.push_back(manifest.sweep->parameter);
    it->second.emplace_back(manifest.sweep->value, manifest.outcome.final_infected_mean);
  }
  for (const std::string& parameter : order) {
    const auto& points = ladders[parameter];
    if (points.size() < 2) continue;
    out << "\nsweep " << parameter << " (" << points.size() << " points):\n";
    analysis::DiminishingReturnsReport report =
        analysis::analyze_diminishing_returns(parameter, points, points.front().second,
                                              knee_fraction);
    out << analysis::to_table(report);
    print_knee_marker(report, out);
  }
  return 0;
}

int command_report(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  if (args.empty()) {
    err << "report: expected a manifest path, --ledger PATH, or --compare A B\n";
    return 1;
  }
  if (args[0] == "--compare") {
    std::vector<std::string> paths;
    double threshold = 0.05;
    for (std::size_t i = 1; i < args.size(); ++i) {
      if (args[i] == "--threshold") {
        if (i + 1 >= args.size()) {
          err << "--threshold: missing value\n";
          return 1;
        }
        if (!parse_double(args[++i], threshold) || !(threshold > 0.0)) {
          err << "--threshold: expected a positive fraction, got '" << args[i] << "'\n";
          return 1;
        }
      } else {
        paths.push_back(args[i]);
      }
    }
    if (paths.size() != 2) {
      err << "report --compare: expected exactly two manifest paths\n";
      return 1;
    }
    try {
      const obs::RunManifest baseline = obs::read_manifest_file(paths[0]);
      const obs::RunManifest current = obs::read_manifest_file(paths[1]);
      const obs::OutcomeComparison comparison =
          obs::compare_outcomes(baseline, current, threshold);
      out << obs::render_comparison(baseline, current, comparison, threshold);
      return comparison.regressions > 0 ? 1 : 0;
    } catch (const std::exception& e) {
      err << e.what() << '\n';
      return 2;
    }
  }
  if (args[0] == "--ledger") {
    std::string path;
    double knee_fraction = 0.2;
    for (std::size_t i = 1; i < args.size(); ++i) {
      if (args[i] == "--knee-fraction") {
        if (i + 1 >= args.size()) {
          err << "--knee-fraction: missing value\n";
          return 1;
        }
        if (!parse_double(args[++i], knee_fraction) || !(knee_fraction > 0.0) ||
            knee_fraction >= 1.0) {
          err << "--knee-fraction: expected a fraction in (0, 1), got '" << args[i] << "'\n";
          return 1;
        }
      } else if (path.empty()) {
        path = args[i];
      } else {
        err << "report --ledger: unexpected argument '" << args[i] << "'\n";
        return 1;
      }
    }
    if (path.empty()) {
      err << "report --ledger: missing ledger path\n";
      return 1;
    }
    return report_ledger(path, knee_fraction, out, err);
  }
  if (args.size() != 1) {
    err << "report: expected a single manifest path (or --ledger / --compare)\n";
    return 1;
  }
  try {
    const obs::RunManifest manifest = obs::read_manifest_file(args[0]);
    report_manifest(manifest, out);
    report_artifacts(manifest, out);
    return 0;
  } catch (const std::exception& e) {
    err << e.what() << '\n';
    return 2;
  }
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  if (args.empty() || args[0] == "help" || args[0] == "--help" || args[0] == "-h") {
    out << kUsage;
    return args.empty() ? 1 : 0;
  }
  const std::string& command = args[0];
  std::vector<std::string> rest(args.begin() + 1, args.end());
  try {
    if (command == "run") return command_run(rest, out, err);
    if (command == "sweep") return command_sweep(rest, out, err);
    if (command == "report") return command_report(rest, out, err);
    if (command == "compare") return command_compare(rest, out, err);
    if (command == "trace-analyze") return command_trace_analyze(rest, out, err);
    if (command == "profile-analyze") return command_profile_analyze(rest, out, err);
    if (command == "preset") return command_preset(rest, out, err);
    if (command == "presets") return command_presets(out);
    if (command == "mechanisms") return command_mechanisms(out);
    if (command == "metrics-schema") return command_metrics_schema(out);
    if (command == "validate") return command_validate(rest, out, err);
  } catch (const std::exception& e) {
    err << "error: " << e.what() << '\n';
    return 2;
  }
  err << "unknown command '" << command << "'\n\n" << kUsage;
  return 1;
}

}  // namespace mvsim::cli
