// Named scenario presets addressable from the command line.
//
// `mvsim run virus3-baseline` and `mvsim preset fig6-monitoring >
// my.json` both resolve through this registry; the names cover the
// paper's baselines and one representative configuration per figure.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/scenario.h"

namespace mvsim::cli {

struct PresetEntry {
  std::string name;
  std::string description;
};

/// All registered preset names with one-line descriptions, in display
/// order.
[[nodiscard]] std::vector<PresetEntry> list_presets();

/// Resolves a preset name; std::nullopt when unknown.
[[nodiscard]] std::optional<core::ScenarioConfig> find_preset(const std::string& name);

}  // namespace mvsim::cli
