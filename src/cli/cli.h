// Command-line driver, implemented as a library so it is unit-testable
// (the tools/mvsim binary is a three-line main).
//
// Commands:
//   mvsim run <scenario.json | preset-name> [--reps N] [--seed N]
//         [--curve-csv PATH] [--summary-json PATH] [--quiet]
//   mvsim preset <name>         print a preset as scenario JSON
//   mvsim presets               list preset names
//   mvsim validate <file>       parse + validate a scenario file
//   mvsim help
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mvsim::cli {

/// Runs one CLI invocation. `args` excludes the program name. Output
/// goes to `out`, diagnostics to `err`. Returns the process exit code
/// (0 success, 1 usage error, 2 runtime failure).
int run_cli(const std::vector<std::string>& args, std::ostream& out, std::ostream& err);

}  // namespace mvsim::cli
