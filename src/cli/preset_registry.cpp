#include "cli/preset_registry.h"

#include "core/presets.h"

namespace mvsim::cli {

namespace {

struct Registered {
  PresetEntry entry;
  core::ScenarioConfig (*make)();
};

const std::vector<Registered>& registry() {
  static const std::vector<Registered> presets = {
      {{"virus1-baseline", "Virus 1 (CommWarrior-like), no response — Figure 1"},
       [] { return core::baseline_scenario(virus::virus1()); }},
      {{"virus2-baseline", "Virus 2 (aggressive daily bursts), no response — Figure 1"},
       [] { return core::baseline_scenario(virus::virus2()); }},
      {{"virus3-baseline", "Virus 3 (rapid random dialer), no response — Figure 1"},
       [] { return core::baseline_scenario(virus::virus3()); }},
      {{"virus4-baseline", "Virus 4 (stealthy piggybacker), no response — Figure 1"},
       [] { return core::baseline_scenario(virus::virus4()); }},
      {{"fig2-scan", "Virus 1 vs gateway signature scan, 6 h turnaround — Figure 2"},
       [] { return core::fig2_scan_scenario(SimTime::hours(6.0)); }},
      {{"fig3-detection", "Virus 2 vs gateway detection at 0.95 accuracy — Figure 3"},
       [] { return core::fig3_detection_scenario(0.95); }},
      {{"fig4-education", "Virus 1 with eventual acceptance reduced to 0.20 — Figure 4"},
       [] { return core::fig4_education_scenario(virus::virus1(), 0.20); }},
      {{"fig5-immunization", "Virus 4 vs 24 h patch + 6 h rollout — Figure 5"},
       [] {
         return core::fig5_immunization_scenario(SimTime::hours(24.0), SimTime::hours(6.0));
       }},
      {{"fig6-monitoring", "Virus 3 vs monitoring with 15 min forced wait — Figure 6"},
       [] { return core::fig6_monitoring_scenario(SimTime::minutes(15.0)); }},
      {{"fig7-blacklist", "Virus 3 vs blacklisting at 10 messages — Figure 7"},
       [] { return core::fig7_blacklist_scenario(10); }},
      {{"market-share", "Virus 1 confined to a 0.30-share platform on a sparse shared graph"},
       [] { return core::market_share_scenario(0.30); }},
  };
  return presets;
}

}  // namespace

std::vector<PresetEntry> list_presets() {
  std::vector<PresetEntry> entries;
  entries.reserve(registry().size());
  for (const auto& preset : registry()) entries.push_back(preset.entry);
  return entries;
}

std::optional<core::ScenarioConfig> find_preset(const std::string& name) {
  for (const auto& preset : registry()) {
    if (preset.entry.name == name) return preset.make();
  }
  return std::nullopt;
}

}  // namespace mvsim::cli
