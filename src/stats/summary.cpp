#include "stats/summary.h"

#include <cstdio>
#include <stdexcept>

namespace mvsim::stats {

namespace {
std::string fixed(double v, int precision = 1) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}
}  // namespace

void print_figure_table(std::ostream& out, const std::string& title,
                        const std::vector<LabelledSeries>& curves, SimTime row_step) {
  if (curves.empty()) throw std::invalid_argument("print_figure_table: no curves");
  const AggregatedSeries& first = *curves.front().series;
  for (const auto& c : curves) {
    if (c.series == nullptr) throw std::invalid_argument("print_figure_table: null series");
    if (c.series->step() != first.step() || c.series->horizon() != first.horizon()) {
      throw std::invalid_argument("print_figure_table: curves on different grids");
    }
  }
  out << "== " << title << " ==\n";
  out << "Hours";
  for (const auto& c : curves) out << ',' << c.label;
  out << '\n';
  for (SimTime t = SimTime::zero(); t <= first.horizon(); t += row_step) {
    out << fixed(t.to_hours());
    for (const auto& c : curves) out << ',' << fixed(c.series->mean_at(t));
    out << '\n';
  }
}

void print_curve_summaries(std::ostream& out, const std::vector<LabelledSeries>& curves) {
  for (const auto& c : curves) {
    const AggregatedSeries& s = *c.series;
    double final_level = s.final_mean();
    SimTime half_time = s.mean_first_time_at_or_above(final_level / 2.0);
    out << "  " << c.label << ": final=" << fixed(final_level)
        << " infected, time-to-half-final="
        << (half_time.is_finite() ? fixed(half_time.to_hours()) + " h" : std::string("never"))
        << ", reps=" << s.replication_count() << '\n';
  }
}

double final_level_ratio(const AggregatedSeries& curve, const AggregatedSeries& baseline) {
  double base = baseline.final_mean();
  if (base == 0.0) return 0.0;
  return curve.final_mean() / base;
}

}  // namespace mvsim::stats
