#include "stats/time_series.h"

#include <algorithm>
#include <stdexcept>

namespace mvsim::stats {

void TimeSeries::push(SimTime time, double value) {
  if (!points_.empty() && time < points_.back().time) {
    throw std::invalid_argument("TimeSeries::push: time " + time.to_string() +
                                " is before last point " + points_.back().time.to_string());
  }
  if (!points_.empty() && time == points_.back().time) {
    points_.back().value = value;
    return;
  }
  points_.push_back({time, value});
}

double TimeSeries::at(SimTime time) const {
  // Last point with point.time <= time.
  auto it = std::upper_bound(points_.begin(), points_.end(), time,
                             [](SimTime t, const Point& p) { return t < p.time; });
  if (it == points_.begin()) return initial_value_;
  return std::prev(it)->value;
}

std::vector<TimeSeries::Point> TimeSeries::resample(SimTime step, SimTime horizon) const {
  if (!(step > SimTime::zero())) {
    throw std::invalid_argument("TimeSeries::resample: step must be positive");
  }
  if (!horizon.is_nonnegative()) {
    throw std::invalid_argument("TimeSeries::resample: horizon must be nonnegative");
  }
  std::vector<Point> grid;
  grid.reserve(static_cast<std::size_t>(horizon / step) + 2);
  // Walk the grid and the steps together: O(grid + points).
  std::size_t cursor = 0;
  double current = initial_value_;
  for (SimTime t = SimTime::zero();; t += step) {
    while (cursor < points_.size() && points_[cursor].time <= t) {
      current = points_[cursor].value;
      ++cursor;
    }
    grid.push_back({t, current});
    if (t + step > horizon) break;
  }
  return grid;
}

double TimeSeries::final_value() const {
  return points_.empty() ? initial_value_ : points_.back().value;
}

double TimeSeries::max_value() const {
  double best = initial_value_;
  for (const Point& p : points_) best = std::max(best, p.value);
  return best;
}

SimTime TimeSeries::first_time_at_or_above(double level) const {
  if (initial_value_ >= level) return SimTime::zero();
  for (const Point& p : points_) {
    if (p.value >= level) return p.time;
  }
  return SimTime::infinity();
}

}  // namespace mvsim::stats
