// Time series of a piecewise-constant (step) metric.
//
// Infection counts are step functions of time: they change only at
// event instants. TimeSeries stores the steps and supports exact
// evaluation at any time plus resampling onto a uniform grid (the form
// the paper's figures use).
#pragma once

#include <utility>
#include <vector>

#include "util/sim_time.h"

namespace mvsim::stats {

class TimeSeries {
 public:
  struct Point {
    SimTime time;
    double value;
  };

  TimeSeries() = default;

  /// Value before the first recorded point (defaults to 0).
  explicit TimeSeries(double initial_value) : initial_value_(initial_value) {}

  /// Record that the metric changed to `value` at `time`. Times must be
  /// nondecreasing; equal-time pushes overwrite (last-writer-wins,
  /// matching the step semantics of "state at the end of the instant").
  void push(SimTime time, double value);

  /// Metric value at `time` (step semantics: right-continuous).
  [[nodiscard]] double at(SimTime time) const;

  /// Resample onto a uniform grid 0, step, 2*step, ..., horizon.
  [[nodiscard]] std::vector<Point> resample(SimTime step, SimTime horizon) const;

  [[nodiscard]] const std::vector<Point>& points() const { return points_; }
  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] double initial_value() const { return initial_value_; }
  /// Value after the last step (initial value when empty).
  [[nodiscard]] double final_value() const;
  /// Largest value attained (considers the initial value).
  [[nodiscard]] double max_value() const;

  /// First time the series reaches `level` or above; SimTime::infinity()
  /// if it never does.
  [[nodiscard]] SimTime first_time_at_or_above(double level) const;

 private:
  double initial_value_ = 0.0;
  std::vector<Point> points_;
};

}  // namespace mvsim::stats
