// Quantile bands across replications.
//
// Mean curves (AggregatedSeries) hide the skew that epidemic processes
// have — a few die-out replications drag the mean well below the
// typical trajectory. QuantileSeries retains every replication's value
// per grid cell and reports medians and arbitrary percentile bands.
#pragma once

#include <vector>

#include "stats/time_series.h"
#include "util/sim_time.h"

namespace mvsim::stats {

class QuantileSeries {
 public:
  QuantileSeries(SimTime step, SimTime horizon);

  void add_replication(const TimeSeries& series);

  [[nodiscard]] std::size_t replication_count() const { return replications_; }
  [[nodiscard]] SimTime step() const { return step_; }
  [[nodiscard]] SimTime horizon() const { return horizon_; }

  /// Value of the q-quantile (q in [0, 1]) at the grid point nearest
  /// `time`. Linear interpolation between order statistics (type-7,
  /// the numpy/R default). Requires at least one replication.
  [[nodiscard]] double quantile_at(SimTime time, double q) const;

  /// Convenience: the median curve over the whole grid.
  [[nodiscard]] std::vector<TimeSeries::Point> median_curve() const;

  struct Band {
    SimTime time;
    double lower;
    double median;
    double upper;
  };

  /// (lower, median, upper) at every grid point.
  [[nodiscard]] std::vector<Band> band(double lower_q, double upper_q) const;

  /// Fraction of replications whose value at `time` is at or below
  /// `level` — e.g. the probability the outbreak is still contained.
  [[nodiscard]] double fraction_at_or_below(SimTime time, double level) const;

 private:
  [[nodiscard]] std::size_t cell_index(SimTime time) const;
  [[nodiscard]] double cell_quantile(std::size_t cell, double q) const;

  SimTime step_;
  SimTime horizon_;
  // cells_[i] = sorted-on-demand per-replication values at grid point i.
  std::vector<std::vector<double>> cells_;
  std::size_t replications_ = 0;
};

}  // namespace mvsim::stats
