#include "stats/quantiles.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mvsim::stats {

QuantileSeries::QuantileSeries(SimTime step, SimTime horizon) : step_(step), horizon_(horizon) {
  if (!(step > SimTime::zero())) {
    throw std::invalid_argument("QuantileSeries: step must be positive");
  }
  if (!horizon.is_nonnegative()) {
    throw std::invalid_argument("QuantileSeries: horizon must be nonnegative");
  }
  cells_.resize(static_cast<std::size_t>(horizon / step) + 1);
}

void QuantileSeries::add_replication(const TimeSeries& series) {
  auto grid = series.resample(step_, horizon_);
  if (grid.size() != cells_.size()) {
    throw std::invalid_argument("QuantileSeries: replication grid size mismatch");
  }
  for (std::size_t i = 0; i < grid.size(); ++i) {
    // Insert keeping the cell sorted (replication counts are small, and
    // keeping cells sorted makes every quantile query O(1) after O(n)
    // insertion).
    auto& cell = cells_[i];
    cell.insert(std::upper_bound(cell.begin(), cell.end(), grid[i].value), grid[i].value);
  }
  ++replications_;
}

std::size_t QuantileSeries::cell_index(SimTime time) const {
  auto index = static_cast<std::size_t>(time / step_ + 0.5);
  return std::min(index, cells_.size() - 1);
}

double QuantileSeries::cell_quantile(std::size_t cell_idx, double q) const {
  if (replications_ == 0) {
    throw std::logic_error("QuantileSeries: no replications added");
  }
  if (!(q >= 0.0) || !(q <= 1.0)) {
    throw std::invalid_argument("QuantileSeries: quantile must be in [0, 1]");
  }
  const auto& cell = cells_[cell_idx];
  if (cell.size() == 1) return cell.front();
  double position = q * static_cast<double>(cell.size() - 1);
  auto lower = static_cast<std::size_t>(position);
  double fraction = position - static_cast<double>(lower);
  if (lower + 1 >= cell.size()) return cell.back();
  return cell[lower] * (1.0 - fraction) + cell[lower + 1] * fraction;
}

double QuantileSeries::quantile_at(SimTime time, double q) const {
  return cell_quantile(cell_index(time), q);
}

std::vector<TimeSeries::Point> QuantileSeries::median_curve() const {
  std::vector<TimeSeries::Point> out;
  out.reserve(cells_.size());
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    out.push_back({step_ * static_cast<double>(i), cell_quantile(i, 0.5)});
  }
  return out;
}

std::vector<QuantileSeries::Band> QuantileSeries::band(double lower_q, double upper_q) const {
  if (lower_q > upper_q) {
    throw std::invalid_argument("QuantileSeries::band: lower_q > upper_q");
  }
  std::vector<Band> out;
  out.reserve(cells_.size());
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    out.push_back({step_ * static_cast<double>(i), cell_quantile(i, lower_q),
                   cell_quantile(i, 0.5), cell_quantile(i, upper_q)});
  }
  return out;
}

double QuantileSeries::fraction_at_or_below(SimTime time, double level) const {
  if (replications_ == 0) {
    throw std::logic_error("QuantileSeries: no replications added");
  }
  const auto& cell = cells_[cell_index(time)];
  auto it = std::upper_bound(cell.begin(), cell.end(), level);
  return static_cast<double>(it - cell.begin()) / static_cast<double>(cell.size());
}

}  // namespace mvsim::stats
