// Figure-oriented summary metrics and table printing.
//
// Benches reproduce each figure as a CSV-ish table of Hours vs mean
// infection count per configuration, followed by the shape metrics the
// paper's prose quotes (plateau level, time-to-level, ratios).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "stats/aggregate.h"
#include "util/sim_time.h"

namespace mvsim::stats {

/// One labelled curve of a figure (e.g. "24-Hour Delay").
struct LabelledSeries {
  std::string label;
  const AggregatedSeries* series = nullptr;
};

/// Prints a figure as a table: first column Hours, one column per curve,
/// rows every `row_step` (coarser than the aggregation grid is fine).
/// All series must share the aggregation grid.
void print_figure_table(std::ostream& out, const std::string& title,
                        const std::vector<LabelledSeries>& curves, SimTime row_step);

/// Per-curve one-line summaries (final level, peak, time to half-peak).
void print_curve_summaries(std::ostream& out, const std::vector<LabelledSeries>& curves);

/// Ratio of a curve's final mean to a baseline's final mean, as the
/// paper quotes ("contained to 25% of the baseline infection level").
[[nodiscard]] double final_level_ratio(const AggregatedSeries& curve,
                                       const AggregatedSeries& baseline);

}  // namespace mvsim::stats
