#include "stats/aggregate.h"

#include <cmath>
#include <stdexcept>

namespace mvsim::stats {

void Accumulator::add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double Accumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::ci95_half_width() const {
  if (count_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

AggregatedSeries::AggregatedSeries(SimTime step, SimTime horizon)
    : step_(step), horizon_(horizon) {
  if (!(step > SimTime::zero())) {
    throw std::invalid_argument("AggregatedSeries: step must be positive");
  }
  if (!horizon.is_nonnegative()) {
    throw std::invalid_argument("AggregatedSeries: horizon must be nonnegative");
  }
  std::size_t cells = static_cast<std::size_t>(horizon / step) + 1;
  cells_.resize(cells);
}

void AggregatedSeries::add_replication(const TimeSeries& series) {
  auto grid = series.resample(step_, horizon_);
  if (grid.size() != cells_.size()) {
    throw std::invalid_argument("AggregatedSeries: replication grid size mismatch");
  }
  for (std::size_t i = 0; i < grid.size(); ++i) cells_[i].add(grid[i].value);
  ++replications_;
}

std::vector<AggregatedSeries::GridPoint> AggregatedSeries::grid() const {
  std::vector<GridPoint> out;
  out.reserve(cells_.size());
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const Accumulator& acc = cells_[i];
    out.push_back({step_ * static_cast<double>(i), acc.mean(), acc.stddev(),
                   acc.ci95_half_width(), acc.min(), acc.max()});
  }
  return out;
}

double AggregatedSeries::final_mean() const {
  if (cells_.empty()) return 0.0;
  return cells_.back().mean();
}

double AggregatedSeries::mean_at(SimTime time) const {
  if (cells_.empty()) return 0.0;
  auto index = static_cast<std::size_t>(time / step_ + 0.5);
  if (index >= cells_.size()) index = cells_.size() - 1;
  return cells_[index].mean();
}

SimTime AggregatedSeries::mean_first_time_at_or_above(double level) const {
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].mean() >= level) return step_ * static_cast<double>(i);
  }
  return SimTime::infinity();
}

}  // namespace mvsim::stats
