// Cross-replication aggregation.
//
// The paper reports mean infection curves over simulation replications.
// AggregatedSeries collects one resampled curve per replication and
// exposes per-grid-point mean, standard deviation and a normal-theory
// 95% confidence half-width.
#pragma once

#include <cstddef>
#include <vector>

#include "stats/time_series.h"
#include "util/sim_time.h"

namespace mvsim::stats {

/// Streaming mean/variance accumulator (Welford).
class Accumulator {
 public:
  void add(double value);
  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  /// Half-width of the normal-approximation 95% CI on the mean.
  [[nodiscard]] double ci95_half_width() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Aggregates equal-grid replication curves.
class AggregatedSeries {
 public:
  /// All added curves must share (step, horizon).
  AggregatedSeries(SimTime step, SimTime horizon);

  /// Resamples `series` onto the grid and folds it in.
  void add_replication(const TimeSeries& series);

  struct GridPoint {
    SimTime time;
    double mean;
    double stddev;
    double ci95;
    double min;
    double max;
  };

  [[nodiscard]] std::vector<GridPoint> grid() const;
  [[nodiscard]] std::size_t replication_count() const { return replications_; }
  [[nodiscard]] SimTime step() const { return step_; }
  [[nodiscard]] SimTime horizon() const { return horizon_; }

  /// Mean of the curve's value at the horizon (the "plateau" if the
  /// epidemic has settled by then).
  [[nodiscard]] double final_mean() const;

  /// Mean value at the grid point nearest to `time`.
  [[nodiscard]] double mean_at(SimTime time) const;

  /// First grid time at which the mean curve reaches `level`;
  /// SimTime::infinity() if never.
  [[nodiscard]] SimTime mean_first_time_at_or_above(double level) const;

 private:
  SimTime step_;
  SimTime horizon_;
  std::vector<Accumulator> cells_;
  std::size_t replications_ = 0;
};

}  // namespace mvsim::stats
