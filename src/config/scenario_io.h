// Scenario <-> JSON bindings.
//
// Every knob of ScenarioConfig (including the virus profile and the
// response suite) maps to a JSON document, so experiments can live in
// version-controlled files and be driven by tools/mvsim. Decoding is
// strict: unknown keys are errors (catching typos like "acceptence"),
// absent keys take the C++ default, durations are unit-tagged strings
// ("30min", "6h"), and the decoded config is validate()d before being
// returned.
//
// Example scenario file:
//   {
//     "name": "fig2-like",
//     "population": 1000,
//     "virus": {"preset": "virus1", "min_message_gap": "45min"},
//     "responses": {"gateway_scan": {"activation_delay": "6h"}}
//   }
#pragma once

#include <string>

#include "core/scenario.h"
#include "util/json.h"

namespace mvsim::config {

[[nodiscard]] json::Value to_json(const core::ScenarioConfig& config);
[[nodiscard]] json::Value to_json(const virus::VirusProfile& profile);
[[nodiscard]] json::Value to_json(const response::ResponseSuiteConfig& suite);
[[nodiscard]] json::Value to_json(const core::TopologyConfig& topology);

/// Throws std::invalid_argument with a "$.path: reason" message on any
/// structural problem; the result has passed validate().
[[nodiscard]] core::ScenarioConfig scenario_from_json(const json::Value& value);
[[nodiscard]] virus::VirusProfile virus_from_json(const json::Value& value);
[[nodiscard]] response::ResponseSuiteConfig responses_from_json(const json::Value& value);
[[nodiscard]] core::TopologyConfig topology_from_json(const json::Value& value);

/// File helpers (throw std::runtime_error on I/O failure).
[[nodiscard]] core::ScenarioConfig load_scenario_file(const std::string& path);
void save_scenario_file(const core::ScenarioConfig& config, const std::string& path);

/// Parses a scenario from JSON text (convenience for tests/CLI).
[[nodiscard]] core::ScenarioConfig scenario_from_text(const std::string& text);

}  // namespace mvsim::config
