// Experiment results -> JSON / CSV export.
//
// The CLI writes results in two shapes: a JSON summary document (final
// levels, counters, per-claim metrics) and a CSV of the mean infection
// curve (one row per grid point) suitable for any plotting tool.
#pragma once

#include <iosfwd>
#include <string>

#include "core/runner.h"
#include "core/scenario.h"
#include "util/json.h"

namespace mvsim::config {

/// Summary document: scenario name, replication count, final
/// infections (mean/ci95/min/max), message counters, response
/// activity, time-to-level landmarks.
[[nodiscard]] json::Value results_to_json(const core::ScenarioConfig& scenario,
                                          const core::ExperimentResult& result);

/// Curve CSV: hours, mean, stddev, ci95, min, max.
void write_curve_csv(const core::ExperimentResult& result, std::ostream& out);

}  // namespace mvsim::config
