// Forwarder: duration parsing moved to util so lower layers (e.g. the
// response-mechanism registry's JSON bindings) can use it. Existing
// config-layer callers keep working through these aliases.
#pragma once

#include "util/duration.h"

namespace mvsim::config {

using util::format_duration;
using util::parse_duration;

}  // namespace mvsim::config
