#include "config/results_io.h"

#include <cstdio>
#include <ostream>

#include "config/duration.h"
#include "util/csv.h"

namespace mvsim::config {

namespace {
json::Value accumulator_to_json(const stats::Accumulator& acc) {
  json::Object o;
  o.set("mean", json::Value(acc.mean()));
  o.set("ci95", json::Value(acc.ci95_half_width()));
  o.set("min", json::Value(acc.min()));
  o.set("max", json::Value(acc.max()));
  return json::Value(std::move(o));
}
}  // namespace

json::Value results_to_json(const core::ScenarioConfig& scenario,
                            const core::ExperimentResult& result) {
  json::Object o;
  o.set("scenario", json::Value(scenario.name));
  o.set("replications", json::Value(result.curve.replication_count()));
  o.set("horizon", json::Value(format_duration(scenario.horizon)));
  o.set("expected_unrestrained_plateau",
        json::Value(scenario.expected_unrestrained_plateau()));
  o.set("final_infections", accumulator_to_json(result.final_infections));
  o.set("messages_submitted", accumulator_to_json(result.messages_submitted));
  o.set("messages_blocked", accumulator_to_json(result.messages_blocked));
  o.set("phones_flagged", accumulator_to_json(result.phones_flagged));
  o.set("phones_blacklisted", accumulator_to_json(result.phones_blacklisted));
  o.set("patches_applied", accumulator_to_json(result.patches_applied));
  for (const auto& [name, acc] : result.response_extras) {
    o.set(name, accumulator_to_json(acc));
  }

  // Time landmarks the paper's prose quotes: when the mean curve
  // crosses fractions of the expected unconstrained plateau.
  json::Object landmarks;
  double plateau = scenario.expected_unrestrained_plateau();
  for (double fraction : {0.25, 0.5, 0.75}) {
    SimTime t = result.curve.mean_first_time_at_or_above(plateau * fraction);
    char key[32];
    std::snprintf(key, sizeof key, "t_%.0f_percent", fraction * 100.0);
    landmarks.set(key, t.is_finite() ? json::Value(t.to_hours()) : json::Value(nullptr));
  }
  o.set("hours_to_plateau_fraction", json::Value(std::move(landmarks)));
  return json::Value(std::move(o));
}

void write_curve_csv(const core::ExperimentResult& result, std::ostream& out) {
  CsvWriter csv(out);
  csv.header({"hours", "mean_infected", "stddev", "ci95", "min", "max"});
  for (const auto& point : result.curve.grid()) {
    csv.row(point.time.to_hours(), point.mean, point.stddev, point.ci95, point.min, point.max);
  }
}

}  // namespace mvsim::config
