#include "config/scenario_io.h"

#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "config/duration.h"
#include "response/registry.h"
#include "util/json_decode.h"

namespace mvsim::config {

namespace {

using json::Array;
using json::Object;
using json::Value;
// The strict decoder lives in util/ so the response registry's JSON
// bindings (a layer below config) can share it.
using util::ObjectDecoder;

[[noreturn]] void fail(const std::string& path, const std::string& why) {
  util::decode_fail(path, why);
}

// ---- enum <-> string tables ----

const char* to_string(virus::TargetingMode mode) {
  switch (mode) {
    case virus::TargetingMode::kContactList: return "contact_list";
    case virus::TargetingMode::kRandomDialing: return "random_dialing";
  }
  return "?";
}

virus::TargetingMode targeting_from_string(const std::string& s, const std::string& path) {
  if (s == "contact_list") return virus::TargetingMode::kContactList;
  if (s == "random_dialing") return virus::TargetingMode::kRandomDialing;
  fail(path, "unknown targeting mode '" + s + "' (contact_list | random_dialing)");
}

const char* to_string(virus::BudgetKind kind) {
  switch (kind) {
    case virus::BudgetKind::kUnlimited: return "unlimited";
    case virus::BudgetKind::kPerReboot: return "per_reboot";
    case virus::BudgetKind::kPerDayAligned: return "per_day_aligned";
  }
  return "?";
}

virus::BudgetKind budget_from_string(const std::string& s, const std::string& path) {
  if (s == "unlimited") return virus::BudgetKind::kUnlimited;
  if (s == "per_reboot") return virus::BudgetKind::kPerReboot;
  if (s == "per_day_aligned") return virus::BudgetKind::kPerDayAligned;
  fail(path, "unknown budget kind '" + s + "' (unlimited | per_reboot | per_day_aligned)");
}

const char* to_string(virus::SendTrigger trigger) {
  switch (trigger) {
    case virus::SendTrigger::kActive: return "active";
    case virus::SendTrigger::kPiggyback: return "piggyback";
  }
  return "?";
}

virus::SendTrigger trigger_from_string(const std::string& s, const std::string& path) {
  if (s == "active") return virus::SendTrigger::kActive;
  if (s == "piggyback") return virus::SendTrigger::kPiggyback;
  fail(path, "unknown send trigger '" + s + "' (active | piggyback)");
}

core::TopologyConfig::Kind topology_kind_from_string(const std::string& s,
                                                     const std::string& path) {
  if (s == "power-law") return core::TopologyConfig::Kind::kPowerLaw;
  if (s == "erdos-renyi") return core::TopologyConfig::Kind::kErdosRenyi;
  if (s == "regular-ring") return core::TopologyConfig::Kind::kRegularRing;
  if (s == "barabasi-albert") return core::TopologyConfig::Kind::kBarabasiAlbert;
  fail(path, "unknown topology kind '" + s +
                 "' (power-law | erdos-renyi | regular-ring | barabasi-albert)");
}

virus::VirusProfile preset_by_name(const std::string& name, const std::string& path) {
  if (name == "virus1") return virus::virus1();
  if (name == "virus2") return virus::virus2();
  if (name == "virus3") return virus::virus3();
  if (name == "virus4") return virus::virus4();
  fail(path, "unknown virus preset '" + name + "' (virus1..virus4)");
}

virus::VirusProfile decode_virus(const Value& value, const std::string& path) {
  ObjectDecoder decoder(value, path);
  virus::VirusProfile profile;
  // A "preset" key seeds the profile; remaining keys override fields.
  if (const Value* preset = decoder.optional("preset")) {
    if (!preset->is_string()) fail(path + ".preset", "expected a string");
    profile = preset_by_name(preset->as_string(), path + ".preset");
  }
  profile.name = decoder.string("name", profile.name);
  if (const Value* v = decoder.optional("targeting")) {
    if (!v->is_string()) fail(path + ".targeting", "expected a string");
    profile.targeting = targeting_from_string(v->as_string(), path + ".targeting");
  }
  profile.valid_number_fraction =
      decoder.number("valid_number_fraction", profile.valid_number_fraction);
  profile.min_message_gap = decoder.duration("min_message_gap", profile.min_message_gap);
  profile.extra_gap_mean = decoder.duration("extra_gap_mean", profile.extra_gap_mean);
  profile.recipients_per_message =
      decoder.uint32("recipients_per_message", profile.recipients_per_message);
  if (const Value* v = decoder.optional("budget")) {
    if (!v->is_string()) fail(path + ".budget", "expected a string");
    profile.budget = budget_from_string(v->as_string(), path + ".budget");
  }
  profile.budget_limit = decoder.uint32("budget_limit", profile.budget_limit);
  profile.budget_window = decoder.duration("budget_window", profile.budget_window);
  profile.align_first_burst = decoder.boolean("align_first_burst", profile.align_first_burst);
  profile.one_pass_per_window =
      decoder.boolean("one_pass_per_window", profile.one_pass_per_window);
  profile.dormancy = decoder.duration("dormancy", profile.dormancy);
  if (const Value* v = decoder.optional("trigger")) {
    if (!v->is_string()) fail(path + ".trigger", "expected a string");
    profile.trigger = trigger_from_string(v->as_string(), path + ".trigger");
  }
  profile.legit_traffic_gap_mean =
      decoder.duration("legit_traffic_gap_mean", profile.legit_traffic_gap_mean);
  decoder.finish();
  return profile;
}

core::TopologyConfig decode_topology(const Value& value, const std::string& path) {
  ObjectDecoder decoder(value, path);
  core::TopologyConfig topology;
  if (const Value* v = decoder.optional("kind")) {
    if (!v->is_string()) fail(path + ".kind", "expected a string");
    topology.kind = topology_kind_from_string(v->as_string(), path + ".kind");
  }
  topology.mean_degree = decoder.number("mean_degree", topology.mean_degree);
  topology.alpha = decoder.number("alpha", topology.alpha);
  topology.locality_jitter = decoder.number("locality_jitter", topology.locality_jitter);
  if (decoder.has("shared_seed")) {
    topology.shared_seed = decoder.uint64("shared_seed", 0);
  }
  decoder.finish();
  return topology;
}

response::ResponseSuiteConfig decode_responses(const Value& value, const std::string& path) {
  ObjectDecoder decoder(value, path);
  response::ResponseSuiteConfig suite;
  suite.detectability_threshold =
      decoder.uint64("detectability_threshold", suite.detectability_threshold);
  // Each registered mechanism owns the binding for its sub-object, so
  // a new mechanism needs no change here.
  for (const response::MechanismInfo& info :
       response::ResponseRegistry::built_ins().mechanisms()) {
    if (const Value* v = decoder.optional(info.name)) {
      info.decode(*v, path + "." + info.name, suite);
    }
  }
  decoder.finish();
  return suite;
}

}  // namespace

json::Value to_json(const virus::VirusProfile& profile) {
  Object o;
  o.set("name", Value(profile.name));
  o.set("targeting", Value(to_string(profile.targeting)));
  if (profile.targeting == virus::TargetingMode::kRandomDialing) {
    o.set("valid_number_fraction", Value(profile.valid_number_fraction));
  }
  o.set("min_message_gap", Value(format_duration(profile.min_message_gap)));
  o.set("extra_gap_mean", Value(format_duration(profile.extra_gap_mean)));
  o.set("recipients_per_message", Value(profile.recipients_per_message));
  o.set("budget", Value(to_string(profile.budget)));
  if (profile.budget != virus::BudgetKind::kUnlimited) {
    o.set("budget_limit", Value(profile.budget_limit));
    o.set("budget_window", Value(format_duration(profile.budget_window)));
  }
  if (profile.align_first_burst) o.set("align_first_burst", Value(true));
  if (profile.one_pass_per_window) o.set("one_pass_per_window", Value(true));
  if (profile.dormancy > SimTime::zero()) {
    o.set("dormancy", Value(format_duration(profile.dormancy)));
  }
  o.set("trigger", Value(to_string(profile.trigger)));
  if (profile.trigger == virus::SendTrigger::kPiggyback) {
    o.set("legit_traffic_gap_mean", Value(format_duration(profile.legit_traffic_gap_mean)));
  }
  return Value(std::move(o));
}

json::Value to_json(const core::TopologyConfig& topology) {
  Object o;
  o.set("kind", Value(core::to_string(topology.kind)));
  o.set("mean_degree", Value(topology.mean_degree));
  if (topology.kind == core::TopologyConfig::Kind::kPowerLaw) {
    o.set("alpha", Value(topology.alpha));
    if (topology.locality_jitter > 0.0) {
      o.set("locality_jitter", Value(topology.locality_jitter));
    }
  }
  if (topology.shared_seed) {
    o.set("shared_seed", Value(static_cast<double>(*topology.shared_seed)));
  }
  return Value(std::move(o));
}

json::Value to_json(const response::ResponseSuiteConfig& suite) {
  Object o;
  o.set("detectability_threshold", Value(suite.detectability_threshold));
  for (const response::MechanismInfo& info :
       response::ResponseRegistry::built_ins().mechanisms()) {
    if (std::optional<Value> sub = info.encode(suite)) {
      o.set(info.name, std::move(*sub));
    }
  }
  return Value(std::move(o));
}

json::Value to_json(const core::ScenarioConfig& config) {
  Object o;
  o.set("name", Value(config.name));
  o.set("population", Value(config.population));
  o.set("susceptible_fraction", Value(config.susceptible_fraction));
  o.set("initial_infected", Value(config.initial_infected));
  o.set("topology", to_json(config.topology));
  o.set("eventual_acceptance", Value(config.eventual_acceptance));
  o.set("read_delay_mean", Value(format_duration(config.read_delay_mean)));
  o.set("decision_cutoff", Value(config.decision_cutoff));
  o.set("delivery_delay_mean", Value(format_duration(config.delivery_delay_mean)));
  o.set("virus", to_json(config.virus));
  if (config.proximity) {
    Object proximity;
    proximity.set("grid_width", Value(config.proximity->grid_width));
    proximity.set("grid_height", Value(config.proximity->grid_height));
    proximity.set("dwell_mean", Value(format_duration(config.proximity->dwell_mean)));
    proximity.set("scan_interval_mean",
                  Value(format_duration(config.proximity->scan_interval_mean)));
    o.set("proximity", Value(std::move(proximity)));
  }
  o.set("responses", to_json(config.responses));
  o.set("horizon", Value(format_duration(config.horizon)));
  o.set("sample_step", Value(format_duration(config.sample_step)));
  return Value(std::move(o));
}

virus::VirusProfile virus_from_json(const json::Value& value) {
  return decode_virus(value, "$.virus");
}

core::TopologyConfig topology_from_json(const json::Value& value) {
  return decode_topology(value, "$.topology");
}

response::ResponseSuiteConfig responses_from_json(const json::Value& value) {
  return decode_responses(value, "$.responses");
}

core::ScenarioConfig scenario_from_json(const json::Value& value) {
  ObjectDecoder decoder(value, "$");
  core::ScenarioConfig config;
  config.name = decoder.string("name", config.name);
  config.population =
      static_cast<graph::PhoneId>(decoder.uint32("population", config.population));
  config.susceptible_fraction =
      decoder.number("susceptible_fraction", config.susceptible_fraction);
  config.initial_infected = decoder.uint32("initial_infected", config.initial_infected);
  if (const Value* v = decoder.optional("topology")) {
    config.topology = decode_topology(*v, "$.topology");
  }
  config.eventual_acceptance =
      decoder.number("eventual_acceptance", config.eventual_acceptance);
  config.read_delay_mean = decoder.duration("read_delay_mean", config.read_delay_mean);
  config.decision_cutoff = decoder.integer("decision_cutoff", config.decision_cutoff);
  config.delivery_delay_mean =
      decoder.duration("delivery_delay_mean", config.delivery_delay_mean);
  if (const Value* v = decoder.optional("virus")) {
    config.virus = decode_virus(*v, "$.virus");
  }
  if (const Value* v = decoder.optional("proximity")) {
    ObjectDecoder sub(*v, "$.proximity");
    core::ProximityChannelConfig proximity;
    proximity.grid_width = sub.uint32("grid_width", proximity.grid_width);
    proximity.grid_height = sub.uint32("grid_height", proximity.grid_height);
    proximity.dwell_mean = sub.duration("dwell_mean", proximity.dwell_mean);
    proximity.scan_interval_mean =
        sub.duration("scan_interval_mean", proximity.scan_interval_mean);
    sub.finish();
    config.proximity = proximity;
  }
  if (const Value* v = decoder.optional("responses")) {
    config.responses = decode_responses(*v, "$.responses");
  }
  config.horizon = decoder.duration("horizon", config.horizon);
  config.sample_step = decoder.duration("sample_step", config.sample_step);
  decoder.finish();
  config.validate().throw_if_invalid();
  return config;
}

core::ScenarioConfig scenario_from_text(const std::string& text) {
  return scenario_from_json(json::parse(text));
}

core::ScenarioConfig load_scenario_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open scenario file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return scenario_from_text(buffer.str());
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

void save_scenario_file(const core::ScenarioConfig& config, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write scenario file '" + path + "'");
  out << json::stringify(to_json(config), 2) << '\n';
  if (!out) throw std::runtime_error("error writing scenario file '" + path + "'");
}

}  // namespace mvsim::config
