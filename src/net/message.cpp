#include "net/message.h"

#include <algorithm>

namespace mvsim::net {

std::size_t MmsMessage::valid_recipient_count() const {
  return static_cast<std::size_t>(std::count_if(recipients.begin(), recipients.end(),
                                                [](const DialedRecipient& r) { return r.valid; }));
}

}  // namespace mvsim::net
