// Per-shard-pair mailboxes for cross-shard MMS deliveries.
//
// Under the sharded engine (docs/parallelism.md) a gateway that routes
// a recipient owned by another shard does not touch the remote
// scheduler directly — schedulers are single-threaded. It pushes a
// CrossShardDelivery into the (source, destination) mailbox instead;
// the coordinator drains every mailbox at the next window barrier and
// schedules the deliveries into the destination shards' queues. The
// conservative-lookahead protocol guarantees each entry's timestamp is
// at or past the barrier it is drained at, so no shard ever receives
// an event in its past.
//
// Determinism: each (src, dst) box is appended by exactly one shard in
// that shard's execution order, and drain() visits boxes in ascending
// source order — so the delivery sequence a destination sees is a pure
// function of the per-shard event sequences, independent of worker
// thread interleaving.
#pragma once

#include <cstdint>
#include <vector>

#include "net/message.h"
#include "util/sim_time.h"

namespace mvsim::net {

/// One MMS copy bound for a phone on another shard. The full
/// MmsMessage is not shipped: the destination only needs the fields
/// that drive reception, dispatch and tracing provenance.
struct CrossShardDelivery {
  SimTime at;            ///< delivery timestamp (>= the next barrier)
  PhoneId recipient = kInvalidPhoneId;
  PhoneId sender = kInvalidPhoneId;
  std::uint64_t sequence = kInvalidMessageId;
  bool infected = false;
};

class ShardMailboxGrid {
 public:
  explicit ShardMailboxGrid(std::uint32_t shards);

  [[nodiscard]] std::uint32_t shard_count() const { return shards_; }

  /// Called by shard `src` (from its worker thread) while it executes a
  /// window. No synchronization: box (src, dst) is written only by src
  /// and read only at barriers.
  void push(std::uint32_t src, std::uint32_t dst, CrossShardDelivery delivery);

  /// Drains every box addressed to `dst` in ascending source order,
  /// invoking `fn(delivery)` per entry in push (FIFO) order, then
  /// clears the boxes (capacity retained). Barrier-context only.
  template <typename Fn>
  void drain_to(std::uint32_t dst, Fn&& fn) {
    for (std::uint32_t src = 0; src < shards_; ++src) {
      std::vector<CrossShardDelivery>& box = boxes_[index(src, dst)];
      for (const CrossShardDelivery& d : box) fn(d);
      drained_ += box.size();
      box.clear();
    }
  }

  /// Entries currently sitting in some box (cheap scan; barrier-context).
  [[nodiscard]] bool empty() const;

  /// Lifetime totals, for the shard.mailbox.* metrics. pushed_total()
  /// is barrier-context only: the per-source counters it sums are
  /// written by the worker threads between barriers.
  [[nodiscard]] std::uint64_t pushed_total() const;
  [[nodiscard]] std::uint64_t drained_total() const { return drained_; }

 private:
  [[nodiscard]] std::size_t index(std::uint32_t src, std::uint32_t dst) const {
    return static_cast<std::size_t>(src) * shards_ + dst;
  }

  std::uint32_t shards_;
  std::vector<std::vector<CrossShardDelivery>> boxes_;  // [src * K + dst]
  // Push counts are kept per source shard — each slot is written by
  // exactly one worker thread, so no atomics are needed.
  std::vector<std::uint64_t> pushed_by_src_;
  std::uint64_t drained_ = 0;
};

}  // namespace mvsim::net
