#include "net/gateway.h"

#include <stdexcept>
#include <utility>

namespace mvsim::net {

Gateway::Gateway(des::Scheduler& scheduler, rng::Stream& stream, SimTime delivery_delay_mean)
    : scheduler_(&scheduler), stream_(&stream), delivery_delay_mean_(delivery_delay_mean) {
  if (!(delivery_delay_mean > SimTime::zero())) {
    throw std::invalid_argument("Gateway: delivery_delay_mean must be positive");
  }
}

void Gateway::add_filter(DeliveryFilter& filter) { filters_.push_back(&filter); }

void Gateway::add_observer(GatewayObserver& observer) { observers_.push_back(&observer); }

void Gateway::set_delivery_callback(DeliveryCallback callback) {
  deliver_ = std::move(callback);
}

void Gateway::submit(MmsMessage message) {
  message.sequence = next_sequence_++;
  const SimTime now = scheduler_->now();

  ++counters_.messages_submitted;
  if (message.infected) ++counters_.infected_messages_submitted;
  for (GatewayObserver* obs : observers_) obs->on_submitted(message, now);

  for (DeliveryFilter* filter : filters_) {
    if (filter->inspect(message, now) == DeliveryFilter::Decision::kBlock) {
      ++counters_.messages_blocked;
      for (GatewayObserver* obs : observers_) obs->on_blocked(message, filter->name(), now);
      return;
    }
  }

  if (!deliver_) return;  // no subscriber (unit tests exercising counters only)

  // One transit event per message; recipients share the transit delay.
  // Invalid numbers are dropped here — the provider's switch discovers
  // at routing time that the dialed number has no subscriber.
  std::size_t valid = message.valid_recipient_count();
  counters_.invalid_recipients_dropped +=
      static_cast<std::uint64_t>(message.recipients.size() - valid);
  if (valid == 0) return;
  counters_.recipients_delivered += valid;

  SimTime delay = stream_->exponential(delivery_delay_mean_);

  // Sharded runs: recipients owned by other shards leave through the
  // router (mailbox + lookahead latency) and are struck from the local
  // transit event. The delay draw above happens either way, so the RNG
  // sequence — and with it the shards-1 golden gate — is unchanged.
  if (router_ != nullptr) {
    const SimTime remote_at = scheduler_->now() + delay + router_->remote_extra_latency();
    std::size_t local = 0;
    for (DialedRecipient& r : message.recipients) {
      if (!r.valid) continue;
      if (router_->route_remote(r.phone, message, remote_at)) {
        r.valid = false;  // claimed; the local event skips it
      } else {
        ++local;
      }
    }
    if (local == 0) return;
  }

  // The message moves into the event's inline storage (it fits EventFn's
  // buffer), so the transit event costs no allocation of its own — the
  // recipients vector just changes hands.
  scheduler_->schedule_after(delay, des::EventType::kMessageDelivery,
                             [this, msg = std::move(message)] {
    const SimTime at = scheduler_->now();
    for (const DialedRecipient& r : msg.recipients) {
      if (r.valid) {
        deliver_(r.phone, msg);
        for (GatewayObserver* obs : observers_) obs->on_delivered(r.phone, msg, at);
      }
    }
  });
}

}  // namespace mvsim::net
