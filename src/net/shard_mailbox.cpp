#include "net/shard_mailbox.h"

#include <stdexcept>

namespace mvsim::net {

ShardMailboxGrid::ShardMailboxGrid(std::uint32_t shards) : shards_(shards) {
  if (shards == 0) throw std::invalid_argument("ShardMailboxGrid: shards must be >= 1");
  boxes_.resize(static_cast<std::size_t>(shards) * shards);
  pushed_by_src_.assign(shards, 0);
}

void ShardMailboxGrid::push(std::uint32_t src, std::uint32_t dst, CrossShardDelivery delivery) {
  boxes_[index(src, dst)].push_back(delivery);
  ++pushed_by_src_[src];
}

std::uint64_t ShardMailboxGrid::pushed_total() const {
  std::uint64_t total = 0;
  for (std::uint64_t n : pushed_by_src_) total += n;
  return total;
}

bool ShardMailboxGrid::empty() const {
  for (const auto& box : boxes_) {
    if (!box.empty()) return false;
  }
  return true;
}

}  // namespace mvsim::net
