// MMS gateway: the service-provider infrastructure every message
// transits.
//
// The gateway is the paper's "point of reception" response location and
// also the vantage point from which a provider observes traffic (the
// "point of dissemination" mechanisms consume its per-send
// notifications). It is deliberately mechanism-agnostic: response
// mechanisms plug in as DeliveryFilters (may block a message in
// transit) and GatewayObservers (see every submission); the phone-side
// sending process consults OutgoingMmsPolicys (may delay or block a
// phone's sends at the source).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "des/scheduler.h"
#include "net/message.h"
#include "rng/stream.h"
#include "util/sim_time.h"

namespace mvsim::net {

/// A reception-point mechanism: decides whether a message in transit is
/// delivered. Filters run in registration order; the first Block wins.
class DeliveryFilter {
 public:
  virtual ~DeliveryFilter() = default;
  enum class Decision { kDeliver, kBlock };
  [[nodiscard]] virtual Decision inspect(const MmsMessage& message, SimTime now) = 0;
  [[nodiscard]] virtual const char* name() const = 0;
};

/// Observes every message submission (before filtering), delivery and
/// block. Dissemination-point mechanisms and the detectability monitor
/// are observers.
class GatewayObserver {
 public:
  virtual ~GatewayObserver() = default;
  /// A phone handed a message to the network (even if every recipient
  /// is an invalid number or a filter later blocks it).
  virtual void on_submitted(const MmsMessage& message, SimTime now) = 0;
  /// A filter blocked the message; `blocked_by` is the filter's name()
  /// (the mechanism's registry name), valid only for the call's duration.
  virtual void on_blocked(const MmsMessage& message, const char* blocked_by, SimTime now) {
    (void)message;
    (void)blocked_by;
    (void)now;
  }
  /// The message reached a valid recipient (once per recipient, at
  /// delivery time, after the transit delay).
  virtual void on_delivered(PhoneId recipient, const MmsMessage& message, SimTime now) {
    (void)recipient;
    (void)message;
    (void)now;
  }
};

/// A dissemination-point policy consulted by sending phones.
class OutgoingMmsPolicy {
 public:
  virtual ~OutgoingMmsPolicy() = default;
  /// True if `phone` is barred from sending MMS entirely (blacklist).
  [[nodiscard]] virtual bool is_blocked(PhoneId phone, SimTime now) const = 0;
  /// Extra minimum gap imposed between consecutive sends from `phone`
  /// (monitoring's forced wait); zero when the phone is not flagged.
  [[nodiscard]] virtual SimTime forced_min_gap(PhoneId phone, SimTime now) const = 0;
};

/// Routes recipients that live on another shard of a sharded run (see
/// docs/parallelism.md). The serial engine never sets one; with no
/// router the gateway behaves exactly as before.
class ShardRouter {
 public:
  virtual ~ShardRouter() = default;
  /// Extra transit latency every cross-shard recipient pays on top of
  /// the sampled delivery delay. This is the conservative-lookahead
  /// floor: it must be >= the synchronization window so a routed
  /// delivery can never land inside the window that produced it.
  [[nodiscard]] virtual SimTime remote_extra_latency() const = 0;
  /// Claims `recipient` if it is owned by another shard: the router
  /// enqueues the delivery (timestamped `deliver_at`) into that shard's
  /// mailbox and returns true; returns false for local recipients,
  /// which the gateway then delivers through its normal transit event.
  virtual bool route_remote(PhoneId recipient, const MmsMessage& message,
                            SimTime deliver_at) = 0;
};

/// Statistics the gateway keeps; exposed to metrics and tests.
struct GatewayCounters {
  std::uint64_t messages_submitted = 0;
  std::uint64_t infected_messages_submitted = 0;
  std::uint64_t messages_blocked = 0;
  std::uint64_t recipients_delivered = 0;
  std::uint64_t invalid_recipients_dropped = 0;
};

class Gateway {
 public:
  /// Called once per (message, valid recipient) at delivery time.
  using DeliveryCallback = std::function<void(PhoneId recipient, const MmsMessage& message)>;

  /// `delivery_delay_mean` models transit latency through the provider
  /// network (exponential); must be positive.
  Gateway(des::Scheduler& scheduler, rng::Stream& stream, SimTime delivery_delay_mean);

  /// Non-owning registration; callers keep the objects alive for the
  /// gateway's lifetime (the Simulation owns both).
  void add_filter(DeliveryFilter& filter);
  void add_observer(GatewayObserver& observer);

  void set_delivery_callback(DeliveryCallback callback);

  /// Sharded runs only: recipients the router claims are handed to it
  /// (bound for another shard's mailbox) instead of the local transit
  /// event. Null (the default) keeps the classic single-engine path.
  void set_shard_router(ShardRouter* router) { router_ = router; }

  /// A phone hands a message to the network. The gateway notifies
  /// observers, runs the filter chain and schedules delivery to each
  /// valid recipient after a random transit delay.
  void submit(MmsMessage message);

  [[nodiscard]] const GatewayCounters& counters() const { return counters_; }

 private:
  des::Scheduler* scheduler_;
  rng::Stream* stream_;
  SimTime delivery_delay_mean_;
  std::vector<DeliveryFilter*> filters_;
  std::vector<GatewayObserver*> observers_;
  DeliveryCallback deliver_;
  ShardRouter* router_ = nullptr;
  GatewayCounters counters_;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace mvsim::net
