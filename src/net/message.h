// MMS message model.
//
// The simulator only carries the virus's MMS traffic (the paper's model
// "does not track the delivery of legitimate messages"); a message is a
// sender, a recipient list and an infected flag. Virus 3 dials random
// numbers of which only a fraction are live subscribers, so recipients
// carry a validity bit — invalid numbers consume the sender's sending
// budget and count toward provider-side message counters, but deliver
// nowhere (exactly the property that makes blacklisting potent against
// random-dialing viruses, §5.2).
#pragma once

#include <cstdint>
#include <vector>

#include "util/ids.h"

namespace mvsim::net {

// Net-layer aliases of the one shared id vocabulary (util/ids.h);
// historically these were duplicate definitions twinned with
// graph::PhoneId.
using mvsim::PhoneId;
using mvsim::kInvalidPhoneId;
using mvsim::kInvalidMessageId;

/// One dialed destination of an MMS message.
struct DialedRecipient {
  PhoneId phone = 0;   ///< meaningful only when `valid`
  bool valid = true;   ///< false = dialed number is not a live subscriber
};

struct MmsMessage {
  PhoneId sender = 0;
  std::vector<DialedRecipient> recipients;
  bool infected = false;
  /// Monotone per-simulation sequence number (assigned by the Gateway).
  std::uint64_t sequence = 0;

  [[nodiscard]] std::size_t valid_recipient_count() const;
};

}  // namespace mvsim::net
