#include "core/runner.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>

#include "core/sharded_simulation.h"
#include "metrics/registry.h"
#include "obs/stats_stream.h"
#include "prof/profiler.h"
#include "rng/seed.h"

namespace mvsim::core {

namespace {

/// Serializes progress callbacks across workers and accumulates the
/// experiment-so-far counts they report. Mutex-guarded shared state is
/// fine here: one lock per completed replication, nothing on the event
/// loop's hot path.
class ProgressSink {
 public:
  ProgressSink(const RunnerOptions& options, const ScenarioConfig& config)
      : options_(&options),
        started_(std::chrono::steady_clock::now()) {
    update_.label = options.progress_label.empty() ? config.name : options.progress_label;
    update_.replications_total = options.replications;
    update_.config_index = options.progress_config_index;
    update_.config_count = options.progress_config_count;
    update_.shards = static_cast<int>(options.shards);
  }

  /// Reports the one-time shared-graph prewarm and restarts the
  /// replication clock, so `elapsed_seconds`/ETA cover only the
  /// replications themselves.
  void build_done(double build_seconds) {
    std::lock_guard<std::mutex> lock(mutex_);
    update_.build_seconds = build_seconds;
    update_.build_phase = true;
    options_->progress(update_);
    update_.build_phase = false;
    started_ = std::chrono::steady_clock::now();
  }

  void replication_done(const ReplicationResult& result) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++update_.replications_done;
    update_.events_executed += result.metrics.counter_value("des.events_executed");
    update_.window_fraction = 0.0;
    update_.window_events = 0;
    refresh_rates(0.0, 0);
    options_->progress(update_);
  }

  /// A sharded replication reached a window barrier. Throttled by wall
  /// clock (the window loop can tick thousands of times a second on
  /// small scenarios); meaningful when replications run one at a time
  /// (`threads` 1), which is the common shape for sharded runs.
  void window_tick(SimTime window_end, SimTime horizon, std::uint64_t events) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto now = std::chrono::steady_clock::now();
    if (std::chrono::duration<double>(now - last_window_emit_).count() < 0.25) return;
    last_window_emit_ = now;
    const double fraction = horizon > SimTime::zero() ? window_end / horizon : 0.0;
    update_.window_fraction = fraction;
    update_.window_events = events;
    refresh_rates(fraction, events);
    options_->progress(update_);
    update_.window_fraction = 0.0;
    update_.window_events = 0;
  }

 private:
  /// Recomputes elapsed / events-per-sec / ETA, counting a partially
  /// complete replication as `fraction` of one (so barrier stalls show
  /// up in the ETA as they happen).
  void refresh_rates(double fraction, std::uint64_t partial_events) {
    update_.elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - started_).count();
    update_.events_per_sec =
        update_.elapsed_seconds > 0.0
            ? static_cast<double>(update_.events_executed + partial_events) /
                  update_.elapsed_seconds
            : 0.0;
    const double done = static_cast<double>(update_.replications_done) + fraction;
    const double remaining = static_cast<double>(update_.replications_total) - done;
    update_.eta_seconds = done > 0.0 ? update_.elapsed_seconds / done * remaining : 0.0;
  }

  const RunnerOptions* options_;
  std::chrono::steady_clock::time_point started_;
  std::chrono::steady_clock::time_point last_window_emit_ = started_;
  std::mutex mutex_;
  ProgressUpdate update_;
};

/// Runs replications [0, count) into `slots`, pulling indices from a
/// shared counter. Each replication is a fully independent Simulation;
/// the only shared state is the index counter, the output slot owned
/// exclusively by the replication that claimed it, and the (mutex-
/// serialized) progress sink. Each replication is wall-clock timed
/// here (construction + run), feeding the runner's `timing.*` metrics;
/// under `options.profile` it additionally carries its own Profiler,
/// whose snapshot rides along in the replication's metrics.
void run_worker(const ScenarioConfig& config, const RunnerOptions& options, int count,
                std::atomic<int>& next, std::vector<ReplicationResult>& slots,
                ProgressSink* progress, graph::GraphCache* cache) {
  for (;;) {
    int rep = next.fetch_add(1, std::memory_order_relaxed);
    if (rep >= count) return;
    auto started = std::chrono::steady_clock::now();
    if (options.shards > 1) {
      ShardingOptions sharding;
      sharding.shards = options.shards;
      sharding.window = options.shard_window;
      sharding.worker_threads = options.shard_workers;
      // Same single-replication trace contract as the serial path; the
      // engine fans the buffer out into per-shard slices and merges
      // them back at collect().
      sharding.trace = rep == options.trace_replication ? options.trace : nullptr;
      sharding.profile = options.profile;
      // The engine profiles per-shard event costs; this profiler adds
      // the engine-level build/run phases (collect stays zero-count —
      // it is folded into ShardedSimulation::run()).
      std::unique_ptr<prof::Profiler> profiler;
      if (options.profile) profiler = std::make_unique<prof::Profiler>();

      std::optional<ShardedSimulation> sim;
      {
        prof::ScopedPhase phase(profiler.get(), prof::Phase::kBuild);
        sim.emplace(config,
                    rng::derive_seed(options.master_seed, static_cast<std::uint64_t>(rep)),
                    sharding, options.des_impl, cache);
      }
      if (progress != nullptr) {
        sim->set_window_observer(
            [progress](SimTime window_end, SimTime horizon, std::uint64_t events) {
              progress->window_tick(window_end, horizon, events);
            });
      }
      if (options.stats_stream != nullptr) {
        // Sample at the first barrier at or past each period mark (the
        // barrier grid is the only place the engine pauses).
        obs::RunStream* stream = options.stats_stream;
        const SimTime period = options.stats_period;
        auto next_sample = std::make_shared<SimTime>(period);
        sim->set_stats_observer(
            [stream, rep, period, next_sample,
             started](const ShardedSimulation::ShardWindowSample& w) {
              // Emit at each period mark, plus always on the final
              // window (horizon or early quiescence) so every
              // replication streams at least one sample.
              if (!w.last && w.window_end < *next_sample) return;
              while (*next_sample <= w.window_end) *next_sample = *next_sample + period;
              obs::RunSample sample;
              sample.replication = rep;
              sample.time = w.window_end;
              sample.infected = w.infected;
              sample.patched = w.patched;
              sample.messages_blocked = w.messages_blocked;
              sample.events_executed = w.events_executed;
              const double elapsed =
                  std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
                      .count();
              sample.events_per_sec =
                  elapsed > 0.0 ? static_cast<double>(w.events_executed) / elapsed : 0.0;
              sample.queue_depth = w.queue_depth;
              sample.mailbox_sent = w.mailbox_sent;
              sample.mailbox_received = w.mailbox_received;
              sample.shards.reserve(w.shards.size());
              for (std::size_t s = 0; s < w.shards.size(); ++s) {
                obs::ShardSample per;
                per.shard = static_cast<std::uint32_t>(s);
                per.events_executed = w.shards[s].events_executed;
                per.queue_depth = w.shards[s].queue_depth;
                per.barrier_wait_ms = w.shards[s].barrier_wait_ms;
                sample.shards.push_back(per);
              }
              stream->write_sample(sample);
            });
      }
      ReplicationResult result;
      {
        prof::ScopedPhase phase(profiler.get(), prof::Phase::kRun);
        result = sim->run();
      }
      if (profiler != nullptr) result.metrics.merge(profiler->snapshot());
      result.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - started).count();
      slots[static_cast<std::size_t>(rep)] = std::move(result);
      if (progress != nullptr) progress->replication_done(slots[static_cast<std::size_t>(rep)]);
      continue;
    }
    trace::TraceBuffer* trace = rep == options.trace_replication ? options.trace : nullptr;
    std::unique_ptr<prof::Profiler> profiler;
    if (options.profile) profiler = std::make_unique<prof::Profiler>();

    std::optional<Simulation> sim;
    {
      prof::ScopedPhase phase(profiler.get(), prof::Phase::kBuild);
      sim.emplace(config,
                  rng::derive_seed(options.master_seed, static_cast<std::uint64_t>(rep)), trace,
                  profiler.get(), options.des_impl, cache);
    }
    {
      prof::ScopedPhase phase(profiler.get(), prof::Phase::kRun);
      if (options.stats_stream == nullptr) {
        sim->run_until(config.horizon);
      } else {
        // Stepped run: run_until(a); run_until(b) executes the exact
        // event sequence of run_until(b), so sampling between steps is
        // bit-identical to an uninterrupted run (golden-pinned).
        obs::RunStream* stream = options.stats_stream;
        SimTime t = SimTime::zero();
        while (t < config.horizon) {
          t = min(t + options.stats_period, config.horizon);
          sim->run_until(t);
          obs::RunSample sample;
          sample.replication = rep;
          sample.time = t;
          sample.infected = sim->infected_count();
          sample.patched = sim->patched_infected() + sim->immunized_healthy();
          sample.messages_blocked = sim->gateway().counters().messages_blocked;
          sample.events_executed = sim->scheduler().executed_count();
          const double elapsed =
              std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
                  .count();
          sample.events_per_sec =
              elapsed > 0.0 ? static_cast<double>(sample.events_executed) / elapsed : 0.0;
          sample.queue_depth = sim->scheduler().pending_count();
          stream->write_sample(sample);
        }
      }
    }
    ReplicationResult result;
    {
      prof::ScopedPhase phase(profiler.get(), prof::Phase::kCollect);
      result = sim->result();
    }
    if (profiler != nullptr) result.metrics.merge(profiler->snapshot());
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - started).count();
    slots[static_cast<std::size_t>(rep)] = std::move(result);
    if (progress != nullptr) progress->replication_done(slots[static_cast<std::size_t>(rep)]);
  }
}

// Fixed bucket bounds so timing histograms from any two runs are
// structurally mergeable (values themselves are machine-dependent).
constexpr std::array<double, 7> kWallMsBounds = {1.0,    5.0,    25.0,   100.0,
                                                 500.0,  2500.0, 10000.0};
constexpr std::array<double, 7> kEventsPerSecBounds = {1e3, 1e4, 1e5, 5e5, 1e6, 5e6, 1e7};

/// Folds the per-replication snapshots (in replication order) and the
/// runner's own timing series into one experiment-level snapshot.
metrics::Snapshot merge_metrics(const std::vector<ReplicationResult>& slots,
                                double experiment_wall_seconds) {
  metrics::Registry timing;
  timing.counter("timing.replications").add(slots.size());
  timing.gauge("timing.experiment_wall_ms")
      .set(static_cast<std::uint64_t>(std::llround(experiment_wall_seconds * 1000.0)));
  auto& wall_ms = timing.histogram("timing.replication_wall_ms", kWallMsBounds);
  auto& throughput = timing.histogram("timing.events_per_sec", kEventsPerSecBounds);
  for (const ReplicationResult& r : slots) {
    wall_ms.record(r.wall_seconds * 1000.0);
    if (r.wall_seconds > 0.0) {
      throughput.record(static_cast<double>(r.metrics.counter_value("des.events_executed")) /
                        r.wall_seconds);
    }
  }

  metrics::Snapshot merged = timing.snapshot();
  for (const ReplicationResult& r : slots) merged.merge(r.metrics);
  return merged;
}

}  // namespace

ExperimentResult run_experiment(const ScenarioConfig& config, const RunnerOptions& options) {
  if (options.replications < 1) {
    throw std::invalid_argument("run_experiment: replications must be >= 1");
  }
  if (options.threads < 0) {
    throw std::invalid_argument("run_experiment: threads must be >= 0");
  }
  if (options.trace != nullptr &&
      (options.trace_replication < 0 || options.trace_replication >= options.replications)) {
    throw std::invalid_argument(
        "run_experiment: trace_replication must name one of the replications");
  }
  if (options.shards == 0) {
    throw std::invalid_argument("run_experiment: shards must be >= 1");
  }
  if (options.stats_stream != nullptr && !(options.stats_period > SimTime::zero())) {
    throw std::invalid_argument("run_experiment: stats_period must be positive");
  }
  if (options.shards > 1) {
    // Checked here, not in the worker: a worker-thread throw cannot be
    // caught by the caller. The sharded engine re-validates anyway.
    if (config.proximity) {
      throw std::invalid_argument(
          "run_experiment: proximity (Bluetooth) scenarios cannot run sharded — proximity "
          "contacts ignore the graph partition; use shards == 1");
    }
    if (options.shards > config.population) {
      throw std::invalid_argument("run_experiment: shards must be <= population");
    }
  }
  config.validate().throw_if_invalid();

  auto experiment_started = std::chrono::steady_clock::now();

  int thread_count = options.threads;
  if (thread_count == 0) {
    thread_count = static_cast<int>(std::thread::hardware_concurrency());
    if (thread_count < 1) thread_count = 1;
  }
  thread_count = std::min(thread_count, options.replications);

  std::vector<ReplicationResult> slots(static_cast<std::size_t>(options.replications));
  std::optional<ProgressSink> progress;
  if (options.progress) progress.emplace(options, config);
  ProgressSink* sink = progress ? &*progress : nullptr;

  // Cache policy: an explicit cache is always honored; otherwise one
  // is created only under topology.shared_seed, where replications
  // actually converge on the same key. (Without a shared seed every
  // replication has a distinct key, so a cache would just retain dead
  // graphs.)
  graph::GraphCache* cache = options.graph_cache;
  std::optional<graph::GraphCache> local_cache;
  if (cache == nullptr && config.topology.shared_seed) {
    local_cache.emplace();
    cache = &*local_cache;
  }
  if (cache != nullptr && config.topology.shared_seed) {
    // Build the shared graph once, up front, so (a) workers never race
    // to be the builder, and (b) the one-time build cost is reported
    // separately instead of skewing the first replication's ETA.
    auto build_started = std::chrono::steady_clock::now();
    prewarm_shared_graph(config, *cache);
    double build_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - build_started).count();
    if (sink != nullptr) sink->build_done(build_seconds);
  }

  if (thread_count <= 1) {
    std::atomic<int> next{0};
    run_worker(config, options, options.replications, next, slots, sink, cache);
  } else {
    std::atomic<int> next{0};
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(thread_count));
    for (int t = 0; t < thread_count; ++t) {
      workers.emplace_back(run_worker, std::cref(config), std::cref(options),
                           options.replications, std::ref(next), std::ref(slots), sink, cache);
    }
    for (std::thread& worker : workers) worker.join();
  }

  // Aggregation in replication order makes the result independent of
  // the scheduling above. Snapshot merging is commutative and
  // associative, so the merged metrics are thread-count-invariant too.
  double experiment_wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - experiment_started)
          .count();
  ExperimentResult result(stats::AggregatedSeries(config.sample_step, config.horizon));
  result.metrics = merge_metrics(slots, experiment_wall_seconds);
  result.threads_used = thread_count;
  for (ReplicationResult& r : slots) {
    result.curve.add_replication(r.infections);
    result.final_infections.add(static_cast<double>(r.total_infected));
    result.messages_submitted.add(static_cast<double>(r.gateway.messages_submitted));
    result.messages_blocked.add(static_cast<double>(r.gateway.messages_blocked));
    result.phones_blacklisted.add(static_cast<double>(r.phones_blacklisted));
    result.phones_flagged.add(static_cast<double>(r.phones_flagged));
    result.patches_applied.add(static_cast<double>(r.immunized_healthy + r.patched_infected));
    result.bluetooth_push_attempts.add(static_cast<double>(r.bluetooth_push_attempts));
    for (const auto& [name, value] : r.response_extras) {
      auto it = std::find_if(result.response_extras.begin(), result.response_extras.end(),
                             [&name = name](const auto& e) { return e.first == name; });
      if (it == result.response_extras.end()) {
        result.response_extras.emplace_back(name, stats::Accumulator());
        it = std::prev(result.response_extras.end());
      }
      it->second.add(static_cast<double>(value));
    }
    if (options.keep_replications) result.replications.push_back(std::move(r));
  }
  // A replication that never reported a name counts as 0 for it, so
  // every extra aggregates over the same replication count.
  for (auto& [name, acc] : result.response_extras) {
    while (acc.count() < static_cast<std::size_t>(options.replications)) acc.add(0.0);
  }
  return result;
}

namespace {

int int_from_env(const char* name, int fallback, long lo, long hi) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  long value = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return static_cast<int>(std::clamp(value, lo, hi));
}

}  // namespace

int replications_from_env(int fallback) {
  return int_from_env("MVSIM_REPS", fallback, 1L, 1000L);
}

int threads_from_env(int fallback) {
  return int_from_env("MVSIM_THREADS", fallback, 0L, 1024L);
}

}  // namespace mvsim::core
