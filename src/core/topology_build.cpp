#include "core/topology_build.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "graph/generators.h"
#include "rng/seed.h"

namespace mvsim::core {

graph::ContactGraph build_graph_for(const ScenarioConfig& config, rng::Stream& stream) {
  switch (config.topology.kind) {
    case TopologyConfig::Kind::kPowerLaw: {
      graph::PowerLawConfig plc;
      plc.node_count = config.population;
      plc.target_mean_degree = config.topology.mean_degree;
      plc.alpha = config.topology.alpha;
      plc.locality_jitter = config.topology.locality_jitter;
      return graph::generate_power_law(plc, stream);
    }
    case TopologyConfig::Kind::kErdosRenyi:
      return graph::generate_erdos_renyi(config.population, config.topology.mean_degree, stream);
    case TopologyConfig::Kind::kBarabasiAlbert: {
      auto m = static_cast<std::uint32_t>(std::llround(config.topology.mean_degree / 2.0));
      return graph::generate_barabasi_albert(config.population, std::max(1u, m), stream);
    }
    case TopologyConfig::Kind::kRegularRing: {
      auto k = static_cast<std::uint32_t>(std::llround(config.topology.mean_degree));
      if (k % 2 == 1) ++k;  // ring lattice needs an even neighbour count
      return graph::generate_regular_ring(config.population, k);
    }
  }
  throw std::logic_error("build_graph_for: unknown topology kind");
}

std::uint64_t topology_params_hash(const ScenarioConfig& config) {
  std::uint64_t h = graph::kHashSeed;
  h = graph::hash_combine(h, static_cast<std::uint64_t>(config.topology.kind));
  h = graph::hash_combine(h, config.population);
  h = graph::hash_combine(h, std::bit_cast<std::uint64_t>(config.topology.mean_degree));
  h = graph::hash_combine(h, std::bit_cast<std::uint64_t>(config.topology.alpha));
  h = graph::hash_combine(h, std::bit_cast<std::uint64_t>(config.topology.locality_jitter));
  return h;
}

std::uint64_t topology_build_seed(const ScenarioConfig& config, std::uint64_t replication_seed) {
  return config.topology.shared_seed
             ? rng::derive_seed(*config.topology.shared_seed, kTopologyStream)
             : rng::derive_seed(replication_seed, kTopologyStream);
}

graph::GraphCacheKey topology_cache_key(const ScenarioConfig& config,
                                        std::uint64_t replication_seed) {
  return {topology_build_seed(config, replication_seed), topology_params_hash(config)};
}

std::shared_ptr<const graph::ContactGraph> resolve_topology(const ScenarioConfig& config,
                                                            std::uint64_t replication_seed,
                                                            rng::Stream& topology_stream,
                                                            graph::GraphCache* graph_cache) {
  const bool shared = config.topology.shared_seed.has_value();
  if (graph_cache != nullptr) {
    auto entry = graph_cache->get_or_build(
        topology_cache_key(config, replication_seed), [&]() -> graph::CachedGraph {
          rng::Stream build_stream(topology_build_seed(config, replication_seed));
          auto built = std::make_shared<const graph::ContactGraph>(
              build_graph_for(config, build_stream));
          return {std::move(built), build_stream};
        });
    if (!shared) {
      // The per-replication topology stream must continue exactly
      // where a private build would have left it (susceptible
      // sampling and patient zero draw from it next); the cached
      // post-build state is that continuation point, and it also
      // carries the build's draw count so rng.draws telemetry is
      // unchanged on a hit.
      topology_stream = entry->post_build_stream;
    }
    return entry->graph;
  }
  if (shared) {
    // Shared topology without a cache: build from the decoupled seed
    // on a local stream, leaving the replication's topology stream
    // (which seeds susceptibility and patient zero) untouched.
    rng::Stream build_stream(topology_build_seed(config, replication_seed));
    return std::make_shared<const graph::ContactGraph>(build_graph_for(config, build_stream));
  }
  return std::make_shared<const graph::ContactGraph>(build_graph_for(config, topology_stream));
}

}  // namespace mvsim::core
