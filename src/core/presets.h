// Experiment presets: the paper's scenarios, one helper per figure.
//
// Each preset returns a fully-validated ScenarioConfig; the bench
// binaries sweep the single parameter their figure varies. Horizons
// follow §5.1: Viruses 1 and 4 are tracked over 18 days, Virus 2 over
// 10 days, Virus 3 over about a day.
#pragma once

#include <vector>

#include "core/scenario.h"
#include "virus/profile.h"

namespace mvsim::core {

/// Observation horizon the paper uses for each of the four viruses.
[[nodiscard]] SimTime paper_horizon_for(const virus::VirusProfile& profile);

/// Sampling step sized to the virus's time scale (fine for Virus 3).
[[nodiscard]] SimTime paper_sample_step_for(const virus::VirusProfile& profile);

/// Baseline scenario (no response mechanisms) for a given virus —
/// the Figure 1 setup.
[[nodiscard]] ScenarioConfig baseline_scenario(const virus::VirusProfile& profile);

/// Figure 2: gateway virus scan against Virus 1 with the given
/// signature activation delay.
[[nodiscard]] ScenarioConfig fig2_scan_scenario(SimTime activation_delay);

/// Figure 3: gateway detection algorithm against Virus 2 at the given
/// detection accuracy.
[[nodiscard]] ScenarioConfig fig3_detection_scenario(double accuracy);

/// Figure 4: user education lowering eventual acceptance, for any of
/// the four viruses.
[[nodiscard]] ScenarioConfig fig4_education_scenario(const virus::VirusProfile& profile,
                                                     double eventual_acceptance);

/// Figure 5: immunization against Virus 4 with the given development
/// time and rollout duration.
[[nodiscard]] ScenarioConfig fig5_immunization_scenario(SimTime development_time,
                                                        SimTime deployment_duration);

/// Figure 6: monitoring against Virus 3 with the given forced wait.
[[nodiscard]] ScenarioConfig fig6_monitoring_scenario(SimTime forced_wait);

/// Figure 7: blacklisting against Virus 3 at the given message
/// threshold.
[[nodiscard]] ScenarioConfig fig7_blacklist_scenario(std::uint32_t threshold);

/// Market-share experiment (extension): the virus targets a single
/// platform holding `share` of the handset market, so only that
/// fraction of phones is susceptible. On a sparse power-law contact
/// graph (mean degree 8, alpha 2.6 — message-book contacts rather
/// than the paper's dense address books) the susceptible subgraph
/// percolates only above a critical share, producing a sharp
/// discontinuity in final penetration as share crosses the threshold.
/// The topology uses a fixed shared seed so every replication (and
/// every point of a share sweep) reuses one cached graph and the
/// sweep isolates the share effect from topology noise.
[[nodiscard]] ScenarioConfig market_share_scenario(double share,
                                                   graph::PhoneId population = 20000);

}  // namespace mvsim::core
