// Replication runner: many independent runs of one scenario,
// aggregated into the mean curve the paper's figures plot.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/scenario.h"
#include "core/simulation.h"
#include "stats/aggregate.h"

namespace mvsim::obs {
class RunStream;
}

namespace mvsim::core {

struct ExperimentResult {
  /// Mean infected-count curve across replications (plus spread).
  stats::AggregatedSeries curve;
  /// Distribution of per-replication totals at the horizon.
  stats::Accumulator final_infections;
  stats::Accumulator messages_submitted;
  stats::Accumulator messages_blocked;
  stats::Accumulator phones_blacklisted;
  stats::Accumulator phones_flagged;
  stats::Accumulator patches_applied;
  stats::Accumulator bluetooth_push_attempts;
  /// Mechanism-specific counters (ReplicationResult::response_extras),
  /// aggregated by name in first-seen order. A replication that omits a
  /// name contributes 0 for it.
  std::vector<std::pair<std::string, stats::Accumulator>> response_extras;
  /// Replication snapshots merged in replication order, plus the
  /// runner's own `timing.*` series. All non-timing metrics are
  /// deterministic in (config, master_seed) and thread-count-invariant;
  /// `timing.*` is machine-dependent by nature (see
  /// docs/observability.md).
  metrics::Snapshot metrics;
  /// Worker threads actually used (RunnerOptions::threads after
  /// resolving 0 = hardware concurrency and clamping to the
  /// replication count). Informational only — results never depend on
  /// it.
  int threads_used = 1;
  /// Per-replication results, in replication order.
  std::vector<ReplicationResult> replications;

  explicit ExperimentResult(stats::AggregatedSeries aggregated) : curve(std::move(aggregated)) {}
};

/// One live progress observation, delivered after each replication
/// completes. Counts are cumulative over the experiment so far;
/// `config_index`/`config_count` situate the experiment inside a
/// multi-config driver (a sweep point, a figure series), both 0-based /
/// 1 for a standalone run.
struct ProgressUpdate {
  std::string label;               ///< scenario (or sweep-point) label
  int replications_done = 0;
  int replications_total = 0;
  std::uint64_t events_executed = 0;  ///< summed over completed replications
  double elapsed_seconds = 0.0;
  double events_per_sec = 0.0;        ///< events_executed / elapsed_seconds
  double eta_seconds = 0.0;           ///< naive: elapsed/done * remaining
  /// True for the one update emitted when a shared contact graph
  /// finished prewarming, before any replication ran. The build is
  /// one-time work, so `elapsed_seconds` (and thus the ETA) excludes
  /// it — first-replication ETAs are no longer skewed by it.
  bool build_phase = false;
  /// Wall-clock seconds the shared-graph prewarm took (0 when the
  /// scenario builds per-replication graphs).
  double build_seconds = 0.0;
  int config_index = 0;
  int config_count = 1;
  /// Shards per replication (RunnerOptions::shards; 1 = serial engine).
  int shards = 1;
  /// Sharded runs only: mid-replication updates emitted at window
  /// barriers (throttled to a few per second). `window_fraction` is the
  /// fraction of the horizon the in-flight replication has reached,
  /// `window_events` the events it has executed so far; both are 0 on
  /// ordinary end-of-replication updates. ETA and events/sec include
  /// the partial replication, so they account for barrier stalls as
  /// they happen instead of only between replications.
  double window_fraction = 0.0;
  std::uint64_t window_events = 0;
};

/// Invocations are serialized by the runner (never concurrent), in
/// completion order — which under threads is not replication order.
using ProgressReporter = std::function<void(const ProgressUpdate&)>;

struct RunnerOptions {
  int replications = 10;
  std::uint64_t master_seed = 0x5eed'0000'0001ULL;
  /// Keep the per-replication results (memory is tiny; on by default).
  bool keep_replications = true;
  /// Worker threads. Replications are independent simulations, so they
  /// parallelize perfectly; results are aggregated in replication order
  /// afterwards, so the outcome is bit-identical for any thread count.
  /// 0 = use the hardware concurrency.
  int threads = 1;
  /// When `trace` is non-null, the replication with this index records
  /// its causal event stream into it. One replication, not all: a trace
  /// is a microscope on a single run, and a shared buffer across
  /// workers would interleave unrelated runs. Tracing is
  /// observation-only — results are bit-identical with it on or off.
  int trace_replication = 0;
  trace::TraceBuffer* trace = nullptr;
  /// Attach a prof::Profiler to every replication: per-event-type
  /// wall-clock histograms plus build/run/collect phase timers, merged
  /// into ExperimentResult::metrics as the `prof.*` series. Like
  /// `timing.*` the values are machine-dependent; like tracing the
  /// instrumentation is observation-only, so profiled runs are
  /// bit-identical to unprofiled ones.
  bool profile = false;
  /// Scheduler queue implementation for every replication (`mvsim run
  /// --des-impl {wheel,heap}`). Both fire bit-identical event orders;
  /// the heap is the legacy A/B reference for the calendar queue.
  des::QueueImpl des_impl = des::QueueImpl::kWheel;
  /// Shared-graph cache. When non-null, every replication fetches its
  /// contact graph through this cache instead of building privately —
  /// byte-identical results either way (see graph::GraphCache). When
  /// null and the scenario sets topology.shared_seed, the runner
  /// creates a local cache for the experiment so the shared graph is
  /// built once, not once per replication.
  graph::GraphCache* graph_cache = nullptr;
  /// Shards per replication (`mvsim run --shards N`). 1 (default)
  /// routes through the classic serial Simulation, bit-identical to
  /// every release before sharding existed. >= 2 runs each replication
  /// on a ShardedSimulation: the contact graph is partitioned into
  /// `shards` contiguous degree-balanced ranges, each with its own
  /// scheduler and RNG streams, synchronized at window barriers.
  /// Results at >= 2 are a different (equally valid) sample path than
  /// the serial engine's — see docs/parallelism.md for the model and
  /// the determinism contract. Composes with `trace` (per-shard buffers
  /// merged deterministically), `profile` (per-shard profilers merged
  /// commutatively) and `stats_stream`; only proximity (Bluetooth)
  /// scenarios are rejected.
  std::uint32_t shards = 1;
  /// Synchronization-window width for sharded runs; zero = the
  /// scenario's delivery_delay_mean. Part of the model (cross-shard
  /// deliveries pay this much extra latency), so it changes results —
  /// unlike thread counts, which never do.
  SimTime shard_window = SimTime::zero();
  /// OS threads per sharded replication (0 = one per shard; 1 = inline
  /// on the worker). Never changes results. Composes multiplicatively
  /// with `threads`: total concurrency ~= threads * shard_workers.
  int shard_workers = 0;
  /// When non-null, every replication appends time-series telemetry
  /// samples to this stream (obs::RunStream is thread-safe; records are
  /// tagged with their replication index). Serial replications sample
  /// every `stats_period` of simulation time by stepping run_until —
  /// bit-identical to one uninterrupted run; sharded replications
  /// sample at the first window barrier at or past each period mark.
  /// Observation-only. The caller writes the stream header.
  obs::RunStream* stats_stream = nullptr;
  /// Simulation-time spacing between stats samples (`mvsim run
  /// --stats-period MIN`); must be positive when stats_stream is set.
  SimTime stats_period = SimTime::minutes(30);
  /// When set, called after every completed replication (serialized,
  /// in completion order). Observation-only.
  ProgressReporter progress;
  /// Label for ProgressUpdate::label; empty = the scenario's name.
  std::string progress_label;
  int progress_config_index = 0;
  int progress_config_count = 1;
};

/// Runs `options.replications` independent replications of `config`.
/// Replication i uses seed derive_seed(master_seed, i); the same
/// (config, options) pair always produces identical results, regardless
/// of `options.threads`.
[[nodiscard]] ExperimentResult run_experiment(const ScenarioConfig& config,
                                              const RunnerOptions& options = {});

/// Reads the replication count for benches from MVSIM_REPS (falls back
/// to `fallback`; clamped to [1, 1000]).
[[nodiscard]] int replications_from_env(int fallback);

/// Reads the worker-thread count for benches from MVSIM_THREADS (falls
/// back to `fallback`; clamped to [0, 1024], 0 = hardware concurrency).
/// Results are thread-count-invariant, so this only changes wall-clock.
[[nodiscard]] int threads_from_env(int fallback);

}  // namespace mvsim::core
