#include "core/presets.h"

namespace mvsim::core {

SimTime paper_horizon_for(const virus::VirusProfile& profile) {
  if (profile.name == "Virus 2") return SimTime::days(10.0);
  if (profile.name == "Virus 3") return SimTime::hours(25.0);
  return SimTime::days(18.0);  // Viruses 1 and 4, and the default for customs
}

SimTime paper_sample_step_for(const virus::VirusProfile& profile) {
  if (profile.name == "Virus 3") return SimTime::minutes(15.0);
  return SimTime::hours(1.0);
}

ScenarioConfig baseline_scenario(const virus::VirusProfile& profile) {
  ScenarioConfig config;
  config.name = "baseline/" + profile.name;
  config.virus = profile;
  config.horizon = paper_horizon_for(profile);
  config.sample_step = paper_sample_step_for(profile);
  return config;
}

ScenarioConfig fig2_scan_scenario(SimTime activation_delay) {
  ScenarioConfig config = baseline_scenario(virus::virus1());
  config.name = "fig2/scan-delay-" + activation_delay.to_string();
  response::GatewayScanConfig scan;
  scan.activation_delay = activation_delay;
  config.responses.gateway_scan = scan;
  return config;
}

ScenarioConfig fig3_detection_scenario(double accuracy) {
  ScenarioConfig config = baseline_scenario(virus::virus2());
  config.name = "fig3/detection-accuracy";
  response::GatewayDetectionConfig detection;
  detection.accuracy = accuracy;
  config.responses.gateway_detection = detection;
  return config;
}

ScenarioConfig fig4_education_scenario(const virus::VirusProfile& profile,
                                       double eventual_acceptance) {
  ScenarioConfig config = baseline_scenario(profile);
  config.name = "fig4/education/" + profile.name;
  response::UserEducationConfig education;
  education.eventual_acceptance = eventual_acceptance;
  config.responses.user_education = education;
  return config;
}

ScenarioConfig fig5_immunization_scenario(SimTime development_time,
                                          SimTime deployment_duration) {
  ScenarioConfig config = baseline_scenario(virus::virus4());
  config.name = "fig5/immunization";
  response::ImmunizationConfig immunization;
  immunization.development_time = development_time;
  immunization.deployment_duration = deployment_duration;
  config.responses.immunization = immunization;
  return config;
}

ScenarioConfig fig6_monitoring_scenario(SimTime forced_wait) {
  ScenarioConfig config = baseline_scenario(virus::virus3());
  config.name = "fig6/monitoring";
  response::MonitoringConfig monitoring;
  monitoring.forced_wait = forced_wait;
  config.responses.monitoring = monitoring;
  return config;
}

ScenarioConfig fig7_blacklist_scenario(std::uint32_t threshold) {
  ScenarioConfig config = baseline_scenario(virus::virus3());
  config.name = "fig7/blacklist";
  response::BlacklistConfig blacklist;
  blacklist.message_threshold = threshold;
  config.responses.blacklist = blacklist;
  return config;
}

ScenarioConfig market_share_scenario(double share, graph::PhoneId population) {
  ScenarioConfig config = baseline_scenario(virus::virus1());
  config.name = "ext/market-share";
  config.population = population;
  config.susceptible_fraction = share;
  // Five independent patient zeros: a single seed dies out with
  // probability well over one half even far above the percolation
  // threshold, burying the transition in extinction noise. Five seeds
  // make ignition near-certain whenever the susceptible subgraph
  // percolates, so mean penetration shows the discontinuity directly.
  config.initial_infected = 5;
  // Spread at mean degree 8 is an order of magnitude slower than at
  // the paper's 80, and slows further near criticality; 30 days lets
  // above-threshold epidemics reach their plateau.
  config.horizon = SimTime::days(30.0);
  // Sparse contact lists: at the paper's mean degree of 80 the
  // susceptible subgraph percolates at shares far below any real
  // market split, washing out the transition. Mean 8 with a light
  // hub tail (alpha 3) puts the critical share in the empirically
  // interesting 0.1-0.3 band.
  config.topology.mean_degree = 8.0;
  config.topology.alpha = 3.0;
  // One graph for the whole sweep: penetration then varies only with
  // share (and per-replication susceptibility/process noise), and the
  // graph cache amortizes the build across replications.
  config.topology.shared_seed = 0x6d61726b6574ull;  // "market"
  return config;
}

}  // namespace mvsim::core
