// ExperimentResult -> obs::RunManifest.
//
// The obs layer defines the manifest record but depends only on util,
// so it cannot see ScenarioConfig or ExperimentResult; this core-side
// builder closes the gap. Callers supply what only they know (the
// scenario content hash — computed from the config JSON, which lives
// in src/config above core — the seed, shard geometry, wall clock and
// artifact list); the builder fills everything derivable from the
// scenario and the finished result, including the whole outcome block
// and the build/RSS stamps.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/runner.h"
#include "core/scenario.h"
#include "obs/manifest.h"

namespace mvsim::core {

/// The caller-known inputs of one manifest.
struct ManifestInputs {
  std::string scenario_hash;  ///< obs::fnv1a_hex of the canonical scenario JSON
  std::uint64_t seed = 0;
  std::uint32_t shards = 1;
  double shard_window_min = 0.0;  ///< 0 = scenario delivery_delay_mean
  obs::RunPhases phases;
  std::vector<obs::ManifestArtifact> artifacts;
  std::optional<obs::SweepInfo> sweep;
};

/// Builds the manifest for one finished experiment. Observation-only:
/// reads the result, never the live simulation.
[[nodiscard]] obs::RunManifest build_run_manifest(const ScenarioConfig& config,
                                                  const ManifestInputs& inputs,
                                                  const ExperimentResult& result);

}  // namespace mvsim::core
