// Structured event trace of one replication.
//
// The aggregate curves answer "how many"; the trace answers "what
// happened when": each infection, each patch landing, the detection
// instant. Useful for debugging a scenario, for timeline narratives
// (examples/outbreak_timeline) and for exporting to external analysis.
// Tracing is opt-in (pass an EventTrace to the Simulation constructor)
// and costs one vector push per recorded event.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "graph/contact_graph.h"
#include "util/sim_time.h"

namespace mvsim::core {

enum class TraceEventKind : std::uint8_t {
  kInfection,      ///< a phone became infected (phone = victim)
  kPatchApplied,   ///< immunization patch landed (phone = target)
  kVirusDetected,  ///< the gateways crossed the detectability threshold
};

[[nodiscard]] const char* to_string(TraceEventKind kind);

struct TraceEvent {
  SimTime time;
  TraceEventKind kind;
  /// The phone concerned; meaningless for kVirusDetected (set to 0).
  graph::PhoneId phone;
};

class EventTrace {
 public:
  void record(SimTime time, TraceEventKind kind, graph::PhoneId phone);

  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
  [[nodiscard]] std::size_t count(TraceEventKind kind) const;
  /// First event of `kind`; SimTime::infinity() if none occurred.
  [[nodiscard]] SimTime first_time(TraceEventKind kind) const;
  [[nodiscard]] SimTime last_time(TraceEventKind kind) const;

  /// hours,kind,phone rows (events are already in time order — the
  /// simulation records them as they happen).
  void write_csv(std::ostream& out) const;

  void clear() { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace mvsim::core
