// Topology construction shared by the serial and sharded engines.
//
// Both engines must build byte-identical contact graphs from the same
// (config, replication seed) pair — the graph, the stream it consumes,
// and the GraphCache key all have to match or the sharded engine's
// initial conditions would silently drift from the serial ones. These
// helpers are that single source of truth (they used to live in
// simulation.cpp's anonymous namespace).
#pragma once

#include <cstdint>
#include <memory>

#include "core/scenario.h"
#include "graph/contact_graph.h"
#include "graph/graph_cache.h"
#include "rng/stream.h"

namespace mvsim::core {

/// Sub-stream indices under the replication seed; distinct constants
/// keep every component's randomness independent of the others. The
/// sharded engine derives per-shard streams one level deeper:
/// derive_seed(derive_seed(replication_seed, shard-tag), index).
enum StreamIndex : std::uint64_t {
  kTopologyStream = 1,
  kUserStream = 2,
  kVirusStream = 3,
  kNetStream = 4,
  kResponseStream = 5,
  kMobilityStream = 6,
  kProximityStream = 7,
};

/// Builds the configured topology, consuming randomness from `stream`.
graph::ContactGraph build_graph_for(const ScenarioConfig& config, rng::Stream& stream);

/// Hash of every generator-relevant parameter: two configs with equal
/// hashes (and equal seeds) run bit-identical builds.
std::uint64_t topology_params_hash(const ScenarioConfig& config);

/// The seed the topology stream is (re)built from. With shared_seed
/// set, it is decoupled from the replication seed so every replication
/// resolves to the same graph; susceptible sampling and patient zero
/// still draw from the per-replication topology stream either way.
std::uint64_t topology_build_seed(const ScenarioConfig& config, std::uint64_t replication_seed);

graph::GraphCacheKey topology_cache_key(const ScenarioConfig& config,
                                        std::uint64_t replication_seed);

/// The shared build-or-fetch step both engines run: resolves the
/// replication's graph, routing through `graph_cache` when provided.
/// `topology_stream` is the replication's topology stream (already
/// seeded from the replication seed); on return it is positioned
/// exactly where a private, uncached, unshared build would have left
/// it — the continuation point susceptible sampling and patient zero
/// draw from (see Simulation::build_topology for the cache-hit
/// restore contract).
std::shared_ptr<const graph::ContactGraph> resolve_topology(const ScenarioConfig& config,
                                                            std::uint64_t replication_seed,
                                                            rng::Stream& topology_stream,
                                                            graph::GraphCache* graph_cache);

}  // namespace mvsim::core
