// Sharded single-replication engine: one run on multiple cores.
//
// The serial Simulation executes a replication on one scheduler and
// therefore one core; at 10^6 phones that single thread is the
// wall-clock bound (ROADMAP item 2). ShardedSimulation partitions the
// contact graph into K contiguous, degree-balanced ranges
// (graph::Partition) and gives each shard its own des::Scheduler,
// gateway, RNG streams and response-mechanism instances. Shards
// advance in lockstep through fixed synchronization windows:
//
//   loop: run every shard to the window end (in parallel)
//         barrier: drain cross-shard mailboxes, sum detectability,
//                  tick progress
//
// Cross-shard MMS deliveries ride net::ShardMailboxGrid and pay a
// deterministic extra transit latency equal to the window width — the
// conservative lookahead that guarantees a drained entry can never
// land in a shard's past (no rollback needed). The full protocol,
// the determinism contract and the model-semantics notes (what changes
// at shards >= 2 and what does not) live in docs/parallelism.md.
//
// Determinism: fixed (config, seed, shards, window) ⇒ bit-identical
// results for ANY worker-thread count, including the inline
// single-thread mode. Results at shards >= 2 are a different (equally
// valid) sample path than the serial engine's — per-shard RNG streams
// and the cross-shard latency floor see to that — which is why the
// runner keeps `--shards 1` on the serial engine and the golden tests
// pin sharded curves separately.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/scenario.h"
#include "core/simulation.h"
#include "graph/graph_cache.h"
#include "graph/partition.h"
#include "net/shard_mailbox.h"
#include "phone/phone_table.h"
#include "rng/stream.h"
#include "stats/time_series.h"
#include "trace/trace.h"

namespace mvsim::core {

namespace detail {
struct ShardRuntime;
}

struct ShardingOptions {
  /// Worker shards (>= 2; a 1-shard run is just the serial engine, and
  /// the runner routes it there to keep the golden gate byte-exact).
  std::uint32_t shards = 2;
  /// Synchronization-window width; zero (default) resolves to the
  /// scenario's delivery_delay_mean. Part of the model at shards >= 2:
  /// cross-shard deliveries pay this much extra transit latency.
  SimTime window = SimTime::zero();
  /// OS threads executing the shards (0 = one per shard; 1 = inline
  /// serial execution on the calling thread). Never changes results.
  int worker_threads = 0;
  /// When non-null, the run records a causal trace into it: each shard
  /// fills a private buffer (capacity split evenly, trace->capacity()
  /// / shards each), message ids are namespaced by origin shard
  /// (trace::kShardMessageStride), and collect() replaces *trace with
  /// the deterministic (time, shard) merge of all shard buffers.
  /// Observation-only: results are bit-identical with tracing on or
  /// off, at any worker count.
  trace::TraceBuffer* trace = nullptr;
  /// Attach a prof::Profiler to every shard's scheduler (per-event
  /// wall-clock, plus the prof.shard.window_us per-window series);
  /// snapshots merge into the result metrics. Observation-only.
  bool profile = false;
};

class ShardedSimulation final {
 public:
  /// Called at each window barrier (from the coordinating thread):
  /// `window_end` is the simulated time just reached, `events` the
  /// events executed so far across all shards.
  using WindowObserver = std::function<void(SimTime window_end, SimTime horizon,
                                            std::uint64_t events)>;

  /// One telemetry sample per window barrier (obs::RunStream feeds on
  /// these). Counters are cumulative since construction; gauges are
  /// instantaneous at the barrier.
  struct ShardWindowSample {
    SimTime window_end;
    SimTime horizon;
    std::uint64_t events_executed = 0;   ///< all shards, cumulative
    std::uint64_t queue_depth = 0;       ///< pending events, all shards
    std::uint64_t infected = 0;          ///< phones ever infected (cumulative)
    std::uint64_t patched = 0;           ///< patched or immunized phones
    std::uint64_t messages_blocked = 0;  ///< gateway blocks, all shards
    std::uint64_t mailbox_sent = 0;      ///< cross-shard entries pushed
    std::uint64_t mailbox_received = 0;  ///< cross-shard entries drained
    /// Coordinator wait at this window's completion barrier (0 when
    /// the shards run inline on the calling thread).
    double barrier_wait_ms = 0.0;
    /// True on the run's final window — horizon reached or epidemic
    /// quiescent — so samplers can always emit a closing sample even
    /// when the run ends before the first period mark.
    bool last = false;
    struct PerShard {
      std::uint64_t events_executed = 0;
      std::uint64_t queue_depth = 0;
      /// Wall-clock ms between this shard finishing its window and the
      /// completion barrier releasing — the shard that waited least is
      /// the straggler the others stalled on. 0 when shards run inline.
      double barrier_wait_ms = 0.0;
    };
    std::vector<PerShard> shards;  ///< indexed by shard id
  };

  /// Called at each window barrier, after the mailbox exchange, from
  /// the coordinating thread. Observation-only by contract.
  using StatsObserver = std::function<void(const ShardWindowSample&)>;

  /// Validates `config` and the sharding options. Scenarios with a
  /// proximity (Bluetooth) channel are rejected: proximity contacts
  /// are global by construction and do not respect the partition.
  /// `des_impl` and `graph_cache` mean exactly what they do on the
  /// serial Simulation.
  ShardedSimulation(const ScenarioConfig& config, std::uint64_t replication_seed,
                    const ShardingOptions& options,
                    des::QueueImpl des_impl = des::QueueImpl::kWheel,
                    graph::GraphCache* graph_cache = nullptr);
  ~ShardedSimulation();
  ShardedSimulation(const ShardedSimulation&) = delete;
  ShardedSimulation& operator=(const ShardedSimulation&) = delete;

  void set_window_observer(WindowObserver observer) { window_observer_ = std::move(observer); }
  void set_stats_observer(StatsObserver observer) { stats_observer_ = std::move(observer); }

  /// Runs the window loop to the horizon and returns the merged
  /// result. May be called once.
  ReplicationResult run();

  // ---- Introspection for tests ----
  [[nodiscard]] std::uint32_t shard_count() const { return options_.shards; }
  [[nodiscard]] SimTime window() const { return window_; }
  [[nodiscard]] const graph::Partition& partition() const { return *partition_; }
  [[nodiscard]] const graph::ContactGraph& contact_graph() const { return *graph_; }

 private:
  friend struct detail::ShardRuntime;

  void build_shards(des::QueueImpl des_impl, graph::GraphCache* graph_cache);
  void seed_patient_zero();
  /// Barrier step: drains every mailbox into the destination shards'
  /// schedulers (deterministic source order).
  void exchange_mailboxes();
  /// Barrier step: sums per-shard infected-submission counts and, on
  /// the global threshold crossing, schedules force_detect into every
  /// shard at `window_end`.
  void check_detectability(SimTime window_end);
  [[nodiscard]] std::uint64_t events_executed_total() const;
  [[nodiscard]] bool quiescent() const;
  /// Builds the barrier-time telemetry sample for the stats observer.
  /// `barrier_release` is when the completion barrier opened (a default
  /// time_point in inline mode, zeroing the per-shard waits).
  [[nodiscard]] ShardWindowSample sample_window(
      SimTime window_end, double barrier_wait_ms,
      std::chrono::steady_clock::time_point barrier_release) const;
  /// Runs every shard (inline or via the worker pool) to `until`.
  void advance_shards(SimTime until);
  [[nodiscard]] ReplicationResult collect() const;

  ScenarioConfig config_;
  std::uint64_t replication_seed_;
  ShardingOptions options_;
  SimTime window_;
  int workers_ = 1;

  rng::Stream topology_stream_;
  std::shared_ptr<const graph::ContactGraph> graph_;
  std::unique_ptr<graph::Partition> partition_;
  phone::ConsentModel consent_;
  net::ShardMailboxGrid mailbox_;

  std::vector<std::unique_ptr<detail::ShardRuntime>> shards_;
  // unique_ptr for address stability, same contract as the serial
  // engine: decision events capture the table pointer.
  std::unique_ptr<phone::PhoneTable> phones_;
  std::vector<graph::PhoneId> susceptible_ids_;
  std::vector<std::unique_ptr<virus::SendingProcess>> processes_;  // index = phone id

  // Barrier-quantized global detectability (docs/parallelism.md).
  bool detectability_dispatched_ = false;
  SimTime detected_at_ = SimTime::infinity();

  WindowObserver window_observer_;
  StatsObserver stats_observer_;

  // Coordinator-level trace events (the detectability crossing); shard
  // kNoShard, merged after the per-shard buffers at collect().
  trace::TraceBuffer engine_trace_{1};

  // Engine-level telemetry (merged on top of the per-shard registries).
  std::uint64_t windows_stepped_ = 0;
  std::vector<double> barrier_wait_ms_;  // one sample per threaded window

  bool ran_ = false;
};

}  // namespace mvsim::core
