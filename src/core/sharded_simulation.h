// Sharded single-replication engine: one run on multiple cores.
//
// The serial Simulation executes a replication on one scheduler and
// therefore one core; at 10^6 phones that single thread is the
// wall-clock bound (ROADMAP item 2). ShardedSimulation partitions the
// contact graph into K contiguous, degree-balanced ranges
// (graph::Partition) and gives each shard its own des::Scheduler,
// gateway, RNG streams and response-mechanism instances. Shards
// advance in lockstep through fixed synchronization windows:
//
//   loop: run every shard to the window end (in parallel)
//         barrier: drain cross-shard mailboxes, sum detectability,
//                  tick progress
//
// Cross-shard MMS deliveries ride net::ShardMailboxGrid and pay a
// deterministic extra transit latency equal to the window width — the
// conservative lookahead that guarantees a drained entry can never
// land in a shard's past (no rollback needed). The full protocol,
// the determinism contract and the model-semantics notes (what changes
// at shards >= 2 and what does not) live in docs/parallelism.md.
//
// Determinism: fixed (config, seed, shards, window) ⇒ bit-identical
// results for ANY worker-thread count, including the inline
// single-thread mode. Results at shards >= 2 are a different (equally
// valid) sample path than the serial engine's — per-shard RNG streams
// and the cross-shard latency floor see to that — which is why the
// runner keeps `--shards 1` on the serial engine and the golden tests
// pin sharded curves separately.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/scenario.h"
#include "core/simulation.h"
#include "graph/graph_cache.h"
#include "graph/partition.h"
#include "net/shard_mailbox.h"
#include "phone/phone_table.h"
#include "rng/stream.h"
#include "stats/time_series.h"

namespace mvsim::core {

namespace detail {
struct ShardRuntime;
}

struct ShardingOptions {
  /// Worker shards (>= 2; a 1-shard run is just the serial engine, and
  /// the runner routes it there to keep the golden gate byte-exact).
  std::uint32_t shards = 2;
  /// Synchronization-window width; zero (default) resolves to the
  /// scenario's delivery_delay_mean. Part of the model at shards >= 2:
  /// cross-shard deliveries pay this much extra transit latency.
  SimTime window = SimTime::zero();
  /// OS threads executing the shards (0 = one per shard; 1 = inline
  /// serial execution on the calling thread). Never changes results.
  int worker_threads = 0;
};

class ShardedSimulation final {
 public:
  /// Called at each window barrier (from the coordinating thread):
  /// `window_end` is the simulated time just reached, `events` the
  /// events executed so far across all shards.
  using WindowObserver = std::function<void(SimTime window_end, SimTime horizon,
                                            std::uint64_t events)>;

  /// Validates `config` and the sharding options. Scenarios with a
  /// proximity (Bluetooth) channel are rejected: proximity contacts
  /// are global by construction and do not respect the partition.
  /// `des_impl` and `graph_cache` mean exactly what they do on the
  /// serial Simulation.
  ShardedSimulation(const ScenarioConfig& config, std::uint64_t replication_seed,
                    const ShardingOptions& options,
                    des::QueueImpl des_impl = des::QueueImpl::kWheel,
                    graph::GraphCache* graph_cache = nullptr);
  ~ShardedSimulation();
  ShardedSimulation(const ShardedSimulation&) = delete;
  ShardedSimulation& operator=(const ShardedSimulation&) = delete;

  void set_window_observer(WindowObserver observer) { window_observer_ = std::move(observer); }

  /// Runs the window loop to the horizon and returns the merged
  /// result. May be called once.
  ReplicationResult run();

  // ---- Introspection for tests ----
  [[nodiscard]] std::uint32_t shard_count() const { return options_.shards; }
  [[nodiscard]] SimTime window() const { return window_; }
  [[nodiscard]] const graph::Partition& partition() const { return *partition_; }
  [[nodiscard]] const graph::ContactGraph& contact_graph() const { return *graph_; }

 private:
  friend struct detail::ShardRuntime;

  void build_shards(des::QueueImpl des_impl, graph::GraphCache* graph_cache);
  void seed_patient_zero();
  /// Barrier step: drains every mailbox into the destination shards'
  /// schedulers (deterministic source order).
  void exchange_mailboxes();
  /// Barrier step: sums per-shard infected-submission counts and, on
  /// the global threshold crossing, schedules force_detect into every
  /// shard at `window_end`.
  void check_detectability(SimTime window_end);
  [[nodiscard]] std::uint64_t events_executed_total() const;
  [[nodiscard]] bool quiescent() const;
  /// Runs every shard (inline or via the worker pool) to `until`.
  void advance_shards(SimTime until);
  [[nodiscard]] ReplicationResult collect() const;

  ScenarioConfig config_;
  std::uint64_t replication_seed_;
  ShardingOptions options_;
  SimTime window_;
  int workers_ = 1;

  rng::Stream topology_stream_;
  std::shared_ptr<const graph::ContactGraph> graph_;
  std::unique_ptr<graph::Partition> partition_;
  phone::ConsentModel consent_;
  net::ShardMailboxGrid mailbox_;

  std::vector<std::unique_ptr<detail::ShardRuntime>> shards_;
  // unique_ptr for address stability, same contract as the serial
  // engine: decision events capture the table pointer.
  std::unique_ptr<phone::PhoneTable> phones_;
  std::vector<graph::PhoneId> susceptible_ids_;
  std::vector<std::unique_ptr<virus::SendingProcess>> processes_;  // index = phone id

  // Barrier-quantized global detectability (docs/parallelism.md).
  bool detectability_dispatched_ = false;
  SimTime detected_at_ = SimTime::infinity();

  WindowObserver window_observer_;

  // Engine-level telemetry (merged on top of the per-shard registries).
  std::uint64_t windows_stepped_ = 0;
  std::vector<double> barrier_wait_ms_;  // one sample per threaded window

  bool ran_ = false;
};

}  // namespace mvsim::core
