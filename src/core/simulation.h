// One simulation replication: wires the whole system together.
//
// Simulation owns the scheduler, the RNG streams, the contact graph
// (possibly shared with sibling replications through a GraphCache),
// the struct-of-arrays phone population table, the gateway, the virus
// sending processes and whatever response mechanisms the scenario
// enables, then runs the event loop to the horizon. One Simulation =
// one replication; the ReplicationRunner aggregates many.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include <string>
#include <utility>

#include "core/scenario.h"
#include "core/simulation_context.h"
#include "metrics/registry.h"
#include "des/scheduler.h"
#include "graph/contact_graph.h"
#include "graph/graph_cache.h"
#include "mobility/grid.h"
#include "mobility/movement.h"
#include "net/gateway.h"
#include "phone/phone_table.h"
#include "rng/stream.h"
#include "stats/time_series.h"
#include "trace/recorder.h"
#include "trace/trace.h"
#include "virus/sending_process.h"

namespace mvsim::core {

/// Everything a replication reports back.
struct ReplicationResult {
  /// Step series of the infected-phone count over time (the quantity
  /// every figure in the paper plots).
  stats::TimeSeries infections;
  std::uint64_t total_infected = 0;
  std::uint64_t immunized_healthy = 0;   ///< phones patched while healthy
  std::uint64_t patched_infected = 0;    ///< infected phones silenced by a patch
  std::uint64_t phones_blacklisted = 0;
  std::uint64_t phones_flagged = 0;
  /// Bluetooth infection offers made (dual-vector scenarios only);
  /// this traffic never transits the gateway.
  std::uint64_t bluetooth_push_attempts = 0;
  /// Mechanism-specific counters beyond the standard fields above,
  /// keyed by mechanism-chosen names (e.g. "phones_rate_limited").
  std::vector<std::pair<std::string, std::uint64_t>> response_extras;
  net::GatewayCounters gateway;
  /// When the virus crossed the detectability threshold (infinity if
  /// never, e.g. a virus contained before reaching it).
  SimTime detected_at = SimTime::infinity();
  /// Run telemetry (des/net/core/rng/response counters, see
  /// docs/observability.md). Deterministic in (scenario, seed);
  /// collection is observation-only and always on.
  metrics::Snapshot metrics;
  /// Wall-clock time this replication took (stamped by the runner;
  /// 0 when the Simulation was driven directly).
  double wall_seconds = 0.0;
};

class Simulation final : private phone::InfectionListener {
 public:
  /// Validates `config`; the replication seed makes runs reproducible
  /// and replications independent. When `trace` is non-null the whole
  /// causal event stream — message sent/blocked/delivered, infection
  /// (victim + infector + carrier message), patch, reboot, detectability
  /// crossing, mechanism actions — is recorded into it (the buffer must
  /// outlive the simulation). Tracing is observation-only: it never
  /// draws randomness or schedules events, so traced and untraced runs
  /// are bit-identical.
  ///
  /// When `event_timer` is non-null the scheduler reports each executed
  /// event's type and wall-clock duration to it (see des::EventTimer).
  /// Like tracing this is observation-only: timing never draws
  /// randomness or schedules events, so profiled runs are bit-identical
  /// to unprofiled ones.
  /// `des_impl` selects the scheduler's queue structure (see
  /// des::QueueImpl); both implementations fire bit-identical event
  /// orders, so this is a performance A/B escape hatch, not a modeling
  /// choice.
  ///
  /// When `graph_cache` is non-null the contact graph is fetched from
  /// (or built into) it instead of being built privately. The cache
  /// restores the exact post-build topology-stream state on a hit, so
  /// cached and uncached runs are byte-identical — including the
  /// rng.draws telemetry (see graph::GraphCache). The cache must
  /// outlive the simulation.
  Simulation(const ScenarioConfig& config, std::uint64_t replication_seed,
             trace::TraceBuffer* trace = nullptr, des::EventTimer* event_timer = nullptr,
             des::QueueImpl des_impl = des::QueueImpl::kWheel,
             graph::GraphCache* graph_cache = nullptr);
  ~Simulation() override;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Runs to the configured horizon and returns the result. May be
  /// called once.
  ReplicationResult run();

  // ---- Fine-grained access for tests and interactive drivers ----

  /// Advance the clock; run() is equivalent to run_until(horizon) +
  /// result(). Monotone across calls.
  void run_until(SimTime t);

  [[nodiscard]] ReplicationResult result() const;

  /// The replication's telemetry so far (also embedded in result()).
  [[nodiscard]] metrics::Snapshot collect_metrics() const;

  [[nodiscard]] SimTime now() const { return scheduler_.now(); }
  [[nodiscard]] std::uint64_t infected_count() const { return infected_count_; }
  /// Infected phones silenced by a patch so far.
  [[nodiscard]] std::uint64_t patched_infected() const { return patched_infected_; }
  /// Healthy phones immunized so far.
  [[nodiscard]] std::uint64_t immunized_healthy() const { return immunized_healthy_; }
  [[nodiscard]] const graph::ContactGraph& contact_graph() const { return *graph_; }
  /// The struct-of-arrays population state (health, susceptibility,
  /// inbox counts), indexed by PhoneId.
  [[nodiscard]] const phone::PhoneTable& phones() const { return *phones_; }
  [[nodiscard]] std::size_t susceptible_count() const { return susceptible_ids_.size(); }
  [[nodiscard]] const net::Gateway& gateway() const { return *gateway_; }
  [[nodiscard]] des::Scheduler& scheduler() { return scheduler_; }
  /// The response layer: detectability monitor + enabled mechanisms.
  [[nodiscard]] const SimulationContext& responses() const { return *context_; }

 private:
  void build_topology(graph::GraphCache* graph_cache);
  void build_phones();
  void build_responses();
  void build_proximity_channel();
  void seed_patient_zero();
  /// InfectionListener: the PhoneTable's exactly-once infection
  /// notification, carrying the provenance the trace layer records.
  void on_phone_infected(phone::PhoneId id, const phone::InfectionSource& source) override;
  void on_patch_applied(graph::PhoneId id);
  void schedule_bluetooth_scan(graph::PhoneId id);

  ScenarioConfig config_;
  std::uint64_t replication_seed_;

  // RNG streams — one per concern, all derived from the replication
  // seed, so no component's draws perturb another's sequence.
  rng::Stream topology_stream_;
  rng::Stream user_stream_;
  rng::Stream virus_stream_;
  rng::Stream net_stream_;
  rng::Stream response_stream_;
  rng::Stream mobility_stream_;
  rng::Stream proximity_stream_;

  des::Scheduler scheduler_;
  // Immutable once built; shared with sibling replications when a
  // GraphCache is in play.
  std::shared_ptr<const graph::ContactGraph> graph_;
  std::unique_ptr<net::Gateway> gateway_;

  phone::ConsentModel consent_;
  phone::PhoneEnvironment phone_env_;
  // unique_ptr for address stability: pending decision events capture
  // the table pointer (same contract the old never-reallocated phone
  // vector had).
  std::unique_ptr<phone::PhoneTable> phones_;
  std::vector<graph::PhoneId> susceptible_ids_;

  virus::SendingEnvironment sending_env_;
  std::vector<std::unique_ptr<virus::SendingProcess>> processes_;  // index = phone id

  // The response layer, behind the mechanism-agnostic dispatch
  // context; which mechanisms exist is the registry's business.
  std::unique_ptr<SimulationContext> context_;

  // Optional Bluetooth side channel (dual-vector viruses).
  std::unique_ptr<mobility::MobilityGrid> proximity_grid_;
  std::unique_ptr<mobility::MovementProcess> movement_;

  stats::TimeSeries infections_;
  std::uint64_t infected_count_ = 0;
  std::uint64_t patched_infected_ = 0;
  std::uint64_t immunized_healthy_ = 0;
  std::uint64_t bluetooth_push_attempts_ = 0;
  trace::TraceBuffer* trace_ = nullptr;  // non-owning, may be null
  /// Turns gateway observer callbacks into trace events; only built
  /// when trace_ is set.
  std::unique_ptr<trace::GatewayRecorder> recorder_;
  bool ran_ = false;
};

/// Builds (or fetches) the contact graph for `config` into `cache`
/// ahead of the replications. Only meaningful when
/// `config.topology.shared_seed` is set — that is the mode where every
/// replication resolves to the same cache key; without it each
/// replication derives its own topology seed and there is nothing to
/// share. Returns true when a shared graph was warmed. The runner uses
/// this to report the one-time build phase separately from
/// per-replication progress.
bool prewarm_shared_graph(const ScenarioConfig& config, graph::GraphCache& cache);

}  // namespace mvsim::core
