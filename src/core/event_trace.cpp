#include "core/event_trace.h"

#include <ostream>

#include "util/csv.h"

namespace mvsim::core {

const char* to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kInfection: return "infection";
    case TraceEventKind::kPatchApplied: return "patch";
    case TraceEventKind::kVirusDetected: return "detected";
  }
  return "?";
}

void EventTrace::record(SimTime time, TraceEventKind kind, graph::PhoneId phone) {
  events_.push_back({time, kind, phone});
}

std::size_t EventTrace::count(TraceEventKind kind) const {
  std::size_t n = 0;
  for (const TraceEvent& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

SimTime EventTrace::first_time(TraceEventKind kind) const {
  for (const TraceEvent& e : events_) {
    if (e.kind == kind) return e.time;
  }
  return SimTime::infinity();
}

SimTime EventTrace::last_time(TraceEventKind kind) const {
  SimTime last = SimTime::infinity();
  for (const TraceEvent& e : events_) {
    if (e.kind == kind) last = e.time;
  }
  return last;
}

void EventTrace::write_csv(std::ostream& out) const {
  CsvWriter csv(out);
  csv.header({"hours", "kind", "phone"});
  for (const TraceEvent& e : events_) {
    csv.row(e.time.to_hours(), to_string(e.kind), e.phone);
  }
}

}  // namespace mvsim::core
