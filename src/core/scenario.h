// Scenario configuration: everything that defines one experiment.
//
// A ScenarioConfig fully determines the stochastic process; together
// with a replication seed it fully determines a run. Defaults are the
// paper's setup (§4.1): 1000 phones, 80% susceptible, power-law contact
// lists with mean size 80, one initially infected phone, eventual
// acceptance probability 0.40.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "graph/contact_graph.h"
#include "response/suite.h"
#include "util/sim_time.h"
#include "util/validation.h"
#include "virus/profile.h"

namespace mvsim::core {

struct TopologyConfig {
  enum class Kind : std::uint8_t {
    kPowerLaw,       ///< the paper's NGCE-style power-law contact lists
    kErdosRenyi,     ///< ablation: homogeneous random topology
    kRegularRing,    ///< ablation: maximally clustered local topology
    kBarabasiAlbert, ///< ablation: preferential-attachment scale-free
  };
  Kind kind = Kind::kPowerLaw;
  /// Target mean contact-list size (paper: 80).
  double mean_degree = 80.0;
  /// Power-law exponent (kPowerLaw only).
  double alpha = 2.0;
  /// Social-clustering knob (kPowerLaw only); see
  /// graph::PowerLawConfig::locality_jitter. At the paper's density
  /// (mean degree 80 over 1000 phones) the hub-heavy degree sequence
  /// already yields clustering ~0.24 and the epidemic results are
  /// insensitive to this knob (quantified in bench/ablation_topology),
  /// so the default stays at the pure configuration model.
  double locality_jitter = 0.0;
  /// When set, every replication builds its contact graph from this
  /// seed instead of the per-replication topology seed — all
  /// replications then share one (cacheable, immutable) graph and
  /// vary only in susceptibility, patient zero and process noise.
  /// Unset (the default, and what every golden preset uses) keeps the
  /// historical behavior: a fresh graph per replication.
  std::optional<std::uint64_t> shared_seed;

  [[nodiscard]] ValidationErrors validate() const;
};

[[nodiscard]] const char* to_string(TopologyConfig::Kind kind);

/// Optional second propagation vector: the virus also pushes itself
/// over Bluetooth to phones in radio range (the real CommWarrior
/// spread over both MMS and Bluetooth). Proximity traffic never
/// transits the MMS gateway, so reception- and dissemination-point
/// mechanisms cannot see or stop it — quantifying that blind spot is
/// the point of the ext_dual_vector bench.
struct ProximityChannelConfig {
  std::uint32_t grid_width = 16;
  std::uint32_t grid_height = 16;
  /// Mean dwell time before a phone moves to an adjacent cell.
  SimTime dwell_mean = SimTime::minutes(30.0);
  /// Mean time between an infected phone's Bluetooth victim scans.
  SimTime scan_interval_mean = SimTime::minutes(60.0);

  [[nodiscard]] ValidationErrors validate() const;
};

struct ScenarioConfig {
  std::string name = "scenario";

  // -- Population (paper §4.1) --
  graph::PhoneId population = 1000;
  /// Fraction of phones running the vulnerable platform (paper: 0.8).
  double susceptible_fraction = 0.8;
  std::uint32_t initial_infected = 1;
  TopologyConfig topology;

  // -- User behavior (paper §4.4) --
  /// Eventual acceptance probability of the consent curve (paper
  /// baseline: 0.40, realized by Acceptance Factor 0.468). A
  /// user-education response overrides this.
  double eventual_acceptance = 0.40;
  /// Mean of the exponential inbox-to-decision delay.
  SimTime read_delay_mean = SimTime::minutes(60.0);
  /// Stop simulating decisions past this many received messages (the
  /// per-message acceptance probability is ~2^-n by then).
  int decision_cutoff = 40;

  // -- Network --
  /// Mean transit delay through the MMS gateway.
  SimTime delivery_delay_mean = SimTime::minutes(1.0);

  // -- Attack & defense --
  virus::VirusProfile virus = virus::virus1();
  /// When set, infected phones additionally spread over Bluetooth.
  std::optional<ProximityChannelConfig> proximity;
  response::ResponseSuiteConfig responses;

  // -- Observation --
  SimTime horizon = SimTime::hours(432.0);  // 18 days, Virus 1's scale
  SimTime sample_step = SimTime::hours(1.0);

  [[nodiscard]] ValidationErrors validate() const;

  /// Expected plateau of an unconstrained epidemic:
  /// population x susceptible_fraction x eventual_acceptance
  /// (the paper's 1000 x 0.8 x 0.40 = 320).
  [[nodiscard]] double expected_unrestrained_plateau() const;
};

}  // namespace mvsim::core
