#include "core/sharded_simulation.h"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <cmath>
#include <exception>
#include <stdexcept>
#include <thread>

#include "core/topology_build.h"
#include "prof/profiler.h"
#include "response/registry.h"
#include "rng/seed.h"
#include "trace/recorder.h"

namespace mvsim::core {

namespace {

/// Tag offset for per-shard seed derivation: shard s's streams hang off
/// derive_seed(replication_seed, kShardSeedTag + s, StreamIndex). The
/// offset keeps shard seeds far from the replication-level StreamIndex
/// values derived directly under the same replication seed.
constexpr std::uint64_t kShardSeedTag = 0x5aa4'd000'0000'0000ULL;

constexpr double kEventCountBounds[] = {1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8};
constexpr double kBarrierWaitBounds[] = {0.01, 0.1, 1.0, 10.0, 100.0, 1000.0};

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

namespace detail {

/// Everything one shard owns: scheduler, streams, gateway, response
/// layer, and the per-shard slices of the population bookkeeping. The
/// runtime is also the shard's ShardRouter (gateway recipients owned
/// elsewhere go to the mailbox grid) and its InfectionListener (the
/// PhoneTable notifies the owner shard, never a global object).
struct ShardRuntime final : public net::ShardRouter, public phone::InfectionListener {
  ShardRuntime(ShardedSimulation& owner_ref, std::uint32_t shard_index,
               graph::Partition::Range shard_range, std::uint64_t replication_seed,
               des::QueueImpl des_impl)
      : owner(&owner_ref),
        index(shard_index),
        range(shard_range),
        scheduler(des_impl),
        user_stream(rng::derive_seed(replication_seed, kShardSeedTag + shard_index, kUserStream)),
        virus_stream(
            rng::derive_seed(replication_seed, kShardSeedTag + shard_index, kVirusStream)),
        net_stream(rng::derive_seed(replication_seed, kShardSeedTag + shard_index, kNetStream)),
        response_stream(
            rng::derive_seed(replication_seed, kShardSeedTag + shard_index, kResponseStream)) {}

  // net::ShardRouter
  [[nodiscard]] SimTime remote_extra_latency() const override { return owner->window_; }
  bool route_remote(net::PhoneId recipient, const net::MmsMessage& message,
                    SimTime deliver_at) override {
    const std::uint32_t dst = owner->partition_->shard_of(recipient);
    if (dst == index) return false;
    owner->mailbox_.push(index, dst,
                         {deliver_at, recipient, message.sender, message.sequence,
                          message.infected});
    return true;
  }

  /// The shard whose gateway assigned `message`'s sequence number,
  /// offset into the trace-only id namespace (see kShardMessageStride);
  /// sentinel ids pass through untouched.
  [[nodiscard]] std::uint64_t trace_message_id(graph::PhoneId sender,
                                               std::uint64_t message) const {
    if (message == net::kInvalidMessageId) return message;
    return message + owner->partition_->shard_of(sender) * trace::kShardMessageStride;
  }

  // phone::InfectionListener — mirrors Simulation::on_phone_infected
  // minus the proximity branch the sharded engine rejects.
  void on_phone_infected(phone::PhoneId id, const phone::InfectionSource& source) override {
    ++infected_count;
    infection_times.push_back(scheduler.now());
    if (trace_buffer) {
      trace::Event event;
      event.time = scheduler.now();
      event.kind = trace::EventKind::kInfection;
      event.phone = id;
      event.peer = source.sender;
      // The carrier message was sequenced by its sender's shard.
      event.message = source.sender != graph::kInvalidPhoneId
                          ? trace_message_id(source.sender, source.message)
                          : source.message;
      event.detail = phone::to_string(source.channel);
      trace_buffer->record(std::move(event));
    }
    context->notify_infection(id, scheduler.now());

    const ScenarioConfig& config = owner->config_;
    std::unique_ptr<virus::Targeter> targeter;
    if (config.virus.targeting == virus::TargetingMode::kContactList) {
      targeter = std::make_unique<virus::ContactListTargeter>(owner->graph_->contacts(id),
                                                              virus_stream);
    } else {
      targeter = std::make_unique<virus::RandomDialTargeter>(
          id, config.population, config.virus.valid_number_fraction, virus_stream);
    }
    owner->processes_[id] = std::make_unique<virus::SendingProcess>(
        sending_env, config.virus, *owner->phones_, id, std::move(targeter));
    owner->processes_[id]->start();
  }

  void on_patch_applied(graph::PhoneId id) {
    bool was_infected = owner->phones_->infected(id);
    bool was_patched = owner->phones_->patched(id);
    owner->phones_->apply_patch(id);
    if (was_patched) return;
    if (trace_buffer) {
      trace::Event event;
      event.time = scheduler.now();
      event.kind = trace::EventKind::kPatchApplied;
      event.phone = id;
      trace_buffer->record(std::move(event));
    }
    context->notify_patch(id, scheduler.now());
    if (was_infected) {
      ++patched_infected;
      if (owner->processes_[id]) owner->processes_[id]->stop();
    } else if (owner->phones_->state(id) == phone::HealthState::kImmunized) {
      ++immunized_healthy;
    }
  }

  /// Schedules everything the coordinator staged at the last barrier:
  /// first the drained cross-shard deliveries (in drain order), then
  /// the detectability crossing — the same per-scheduler call order a
  /// coordinator-side schedule would produce, so results are
  /// bit-identical either way. Running it on the owning worker means
  /// the per-entry scheduling cost parallelizes across shards instead
  /// of serializing on the coordinator between barriers.
  void flush_staged() {
    for (const net::CrossShardDelivery& d : staged) {
      scheduler.schedule_at(d.at, des::EventType::kMessageDelivery, [this, d] {
        owner->phones_->receive_infected_message(
            d.recipient, {d.sender, d.sequence, phone::InfectionChannel::kMms});
        // Mirror the serial gateway's per-recipient on_delivered
        // dispatch so core.dispatch.* telemetry and any
        // delivery-subscribed mechanism see the same traffic.
        net::MmsMessage msg;
        msg.sender = d.sender;
        msg.sequence = d.sequence;
        msg.infected = d.infected;
        msg.recipients.push_back({d.recipient, true});
        context->on_delivered(d.recipient, msg, scheduler.now());
        // Cross-shard deliveries bypass this gateway (they arrive via
        // the mailbox), so the GatewayRecorder never sees them; record
        // the delivery here, under the ORIGIN shard's message id, so
        // the merged trace links the hop end-to-end.
        if (trace_buffer) {
          trace::Event event;
          event.time = scheduler.now();
          event.kind = trace::EventKind::kMessageDelivered;
          event.phone = d.recipient;
          event.peer = d.sender;
          event.message = trace_message_id(d.sender, d.sequence);
          trace_buffer->record(std::move(event));
        }
      });
    }
    staged.clear();
    if (has_pending_detect) {
      has_pending_detect = false;
      const SimTime at = pending_detect_at;
      scheduler.schedule_at(at, des::EventType::kResponseActivation,
                            [this, at] { context->detector().force_detect(at); });
    }
  }

  /// One lockstep window: flush what the coordinator staged, then run
  /// to the window end. Under --profile the window's wall-clock lands
  /// in prof.shard.window_us (its spread is the imbalance the barrier
  /// stalls on).
  void run_to(SimTime until) {
    flush_staged();
    if (profiler) {
      const auto begin = std::chrono::steady_clock::now();
      scheduler.run_until(until);
      window_finished = std::chrono::steady_clock::now();
      profiler->record_shard_window(
          std::chrono::duration<double, std::micro>(window_finished - begin).count());
    } else {
      scheduler.run_until(until);
      // The finish stamp feeds the stats stream's per-shard barrier
      // waits; skip the clock read when nobody consumes it.
      if (owner->stats_observer_) window_finished = std::chrono::steady_clock::now();
    }
  }

  /// Mirrors Simulation::collect_metrics for this shard's slice.
  [[nodiscard]] metrics::Snapshot collect_metrics() const {
    metrics::Registry reg;
    reg.counter("des.events_scheduled").add(scheduler.scheduled_count());
    reg.counter("des.events_executed").add(scheduler.executed_count());
    reg.counter("des.events_cancelled").add(scheduler.cancelled_count());
    reg.gauge("des.queue_depth_peak").set(scheduler.peak_pending_count());
    reg.counter("des.scheduler.cancelled_reclaimed").add(scheduler.cancelled_reclaimed_count());

    const net::GatewayCounters& gc = gateway->counters();
    reg.counter("net.messages_submitted").add(gc.messages_submitted);
    reg.counter("net.infected_messages_submitted").add(gc.infected_messages_submitted);
    reg.counter("net.messages_blocked").add(gc.messages_blocked);
    reg.counter("net.recipients_delivered").add(gc.recipients_delivered);
    reg.counter("net.invalid_recipients_dropped").add(gc.invalid_recipients_dropped);

    reg.counter("core.infections").add(infected_count);
    reg.counter("core.phones_immunized_healthy").add(immunized_healthy);
    reg.counter("core.phones_patched_infected").add(patched_infected);
    reg.counter("core.bluetooth_push_attempts").add(0);

    reg.counter("rng.draws").add(user_stream.draw_count() + virus_stream.draw_count() +
                                 net_stream.draw_count() + response_stream.draw_count());

    context->collect_metrics(reg);
    return reg.snapshot();
  }

  ShardedSimulation* owner;
  std::uint32_t index;
  graph::Partition::Range range;
  des::Scheduler scheduler;
  rng::Stream user_stream;
  rng::Stream virus_stream;
  rng::Stream net_stream;
  rng::Stream response_stream;

  std::unique_ptr<net::Gateway> gateway;
  phone::PhoneEnvironment env;
  virus::SendingEnvironment sending_env;
  std::unique_ptr<SimulationContext> context;
  std::vector<graph::PhoneId> patch_targets;  ///< owned susceptibles

  // Observability taps, built only when the run asked for them.
  std::unique_ptr<trace::TraceBuffer> owned_trace;  ///< this shard's slice
  trace::TraceBuffer* trace_buffer = nullptr;       ///< = owned_trace.get()
  std::unique_ptr<trace::GatewayRecorder> recorder;
  std::unique_ptr<prof::Profiler> profiler;

  std::vector<SimTime> infection_times;  ///< nondecreasing by construction
  std::uint64_t infected_count = 0;
  std::uint64_t patched_infected = 0;
  std::uint64_t immunized_healthy = 0;

  // Staged by the coordinator between barriers, consumed by the owning
  // worker at the next window start (flush_staged). The window barriers
  // order these accesses, so no synchronization is needed.
  std::vector<net::CrossShardDelivery> staged;
  bool has_pending_detect = false;
  SimTime pending_detect_at = SimTime::zero();

  /// When this shard finished its last window (written by the owning
  /// worker inside run_to, read by the coordinator after the barrier —
  /// the barrier orders the accesses).
  std::chrono::steady_clock::time_point window_finished{};
};

}  // namespace detail

using detail::ShardRuntime;

ShardedSimulation::ShardedSimulation(const ScenarioConfig& config,
                                     std::uint64_t replication_seed,
                                     const ShardingOptions& options, des::QueueImpl des_impl,
                                     graph::GraphCache* graph_cache)
    : config_(config),
      replication_seed_(replication_seed),
      options_(options),
      window_(options.window > SimTime::zero() ? options.window : config.delivery_delay_mean),
      topology_stream_(rng::derive_seed(replication_seed, kTopologyStream)),
      consent_(response::consent_for_suite(config.responses, config.eventual_acceptance)),
      mailbox_(std::max(1u, options.shards)) {
  config.validate().throw_if_invalid();
  if (options_.shards == 0) {
    throw std::invalid_argument("ShardedSimulation: shards must be >= 1");
  }
  if (config_.proximity) {
    throw std::invalid_argument(
        "ShardedSimulation: proximity (Bluetooth) scenarios are not shardable — "
        "proximity contacts ignore the graph partition; run with --shards 1");
  }
  if (!(window_ > SimTime::zero())) {
    throw std::invalid_argument("ShardedSimulation: window must be positive");
  }
  workers_ = options_.worker_threads > 0
                 ? std::min<int>(options_.worker_threads, static_cast<int>(options_.shards))
                 : static_cast<int>(options_.shards);

  build_shards(des_impl, graph_cache);
  seed_patient_zero();
}

ShardedSimulation::~ShardedSimulation() = default;

void ShardedSimulation::build_shards(des::QueueImpl des_impl, graph::GraphCache* graph_cache) {
  // Topology, susceptible sampling and patient zero consume the SAME
  // topology-stream sequence as the serial engine, so a sharded run
  // starts from the exact initial conditions (graph, susceptible set,
  // patient zeros) of the serial run with the same seed — only process
  // noise and cross-shard latency differ (docs/parallelism.md).
  graph_ = resolve_topology(config_, replication_seed_, topology_stream_, graph_cache);
  partition_ = std::make_unique<graph::Partition>(
      graph::Partition::degree_balanced(*graph_, options_.shards));

  shards_.reserve(options_.shards);
  for (std::uint32_t s = 0; s < options_.shards; ++s) {
    shards_.push_back(std::make_unique<ShardRuntime>(*this, s, partition_->range(s),
                                                     replication_seed_, des_impl));
  }

  std::vector<const phone::PhoneEnvironment*> envs;
  envs.reserve(options_.shards);
  for (auto& rt : shards_) {
    rt->gateway = std::make_unique<net::Gateway>(rt->scheduler, rt->net_stream,
                                                 config_.delivery_delay_mean);
    rt->gateway->set_shard_router(rt.get());
    rt->gateway->set_delivery_callback(
        [this](graph::PhoneId recipient, const net::MmsMessage& msg) {
          phones_->receive_infected_message(
              recipient, {msg.sender, msg.sequence, phone::InfectionChannel::kMms});
        });

    if (options_.trace != nullptr) {
      // Each shard records into a private slice of the requested
      // capacity; its gateway recorder registers first (before the
      // context's detector), same ordering contract as the serial
      // engine, with message ids offset into this shard's namespace.
      constexpr std::size_t kUnboundedCap = std::numeric_limits<std::size_t>::max();
      const std::size_t cap =
          options_.trace->capacity() == kUnboundedCap
              ? kUnboundedCap
              : std::max<std::size_t>(1, options_.trace->capacity() / options_.shards);
      rt->owned_trace = std::make_unique<trace::TraceBuffer>(cap);
      rt->owned_trace->set_shard(rt->index);
      rt->trace_buffer = rt->owned_trace.get();
      rt->recorder = std::make_unique<trace::GatewayRecorder>(
          *rt->trace_buffer, rt->index * trace::kShardMessageStride);
      rt->gateway->add_observer(*rt->recorder);
    }
    if (options_.profile) {
      rt->profiler = std::make_unique<prof::Profiler>();
      rt->scheduler.set_event_timer(rt->profiler.get());
    }

    rt->env.scheduler = &rt->scheduler;
    rt->env.user_stream = &rt->user_stream;
    rt->env.consent = &consent_;
    rt->env.read_delay_mean = config_.read_delay_mean;
    rt->env.decision_cutoff = config_.decision_cutoff;
    rt->env.listener = rt.get();
    envs.push_back(&rt->env);
  }
  phones_ = std::make_unique<phone::PhoneTable>(config_.population, std::move(envs),
                                                partition_->bounds());

  // Global susceptible sampling, bit-for-bit the serial engine's draws.
  auto susceptible_target = static_cast<std::uint64_t>(
      std::llround(config_.susceptible_fraction * static_cast<double>(config_.population)));
  auto chosen = topology_stream_.sample_without_replacement(config_.population,
                                                            susceptible_target);
  susceptible_ids_.reserve(chosen.size());
  std::vector<bool> susceptible(config_.population, false);
  for (auto id : chosen) susceptible[static_cast<std::size_t>(id)] = true;
  for (graph::PhoneId id = 0; id < config_.population; ++id) {
    if (!susceptible[id]) continue;
    phones_->set_susceptible(id, true);
    susceptible_ids_.push_back(id);
    shards_[partition_->shard_of(id)]->patch_targets.push_back(id);
  }
  processes_.resize(config_.population);

  for (auto& rt : shards_) {
    // Per-shard response layer: every mechanism's state is keyed by
    // sender or gateway, and a phone only ever submits through its
    // owner shard's gateway, so per-shard instances partition the
    // global mechanism state without changing its semantics. The
    // detectability monitor is the one global quantity — it runs
    // deferred, with the crossing decided at window barriers.
    rt->context = std::make_unique<SimulationContext>(
        config_.responses, response::ResponseRegistry::built_ins(), /*defer_detection=*/true);

    rt->sending_env.scheduler = &rt->scheduler;
    rt->sending_env.virus_stream = &rt->virus_stream;
    rt->sending_env.gateway = rt->gateway.get();
    rt->sending_env.trace = rt->trace_buffer;

    response::BuildContext build;
    build.scheduler = &rt->scheduler;
    build.response_stream = &rt->response_stream;
    build.patch_targets = &rt->patch_targets;
    build.trace = rt->trace_buffer;
    build.apply_patch = [rt = rt.get()](net::PhoneId id) { rt->on_patch_applied(id); };
    build.population = config_.population;
    rt->context->attach(*rt->gateway, rt->sending_env, std::move(build));
  }
}

void ShardedSimulation::seed_patient_zero() {
  // Same draws as Simulation::seed_patient_zero; the force-infect event
  // is scheduled into the owner shard's queue.
  auto picks = topology_stream_.sample_without_replacement(susceptible_ids_.size(),
                                                           config_.initial_infected);
  for (auto pick : picks) {
    graph::PhoneId id = susceptible_ids_[static_cast<std::size_t>(pick)];
    ShardRuntime* rt = shards_[partition_->shard_of(id)].get();
    rt->scheduler.schedule_at(SimTime::zero(), des::EventType::kSeedInfection,
                              [this, id] { phones_->force_infect(id); });
  }
}

void ShardedSimulation::exchange_mailboxes() {
  // Drain is cheap on purpose: the coordinator only stages the entries;
  // each destination's worker schedules them at its next window start
  // (ShardRuntime::flush_staged), keeping the serial section between
  // barriers O(entries copied) rather than O(entries scheduled).
  for (std::uint32_t dst = 0; dst < options_.shards; ++dst) {
    ShardRuntime* rt = shards_[dst].get();
    mailbox_.drain_to(
        dst, [rt](const net::CrossShardDelivery& d) { rt->staged.push_back(d); });
  }
}

void ShardedSimulation::check_detectability(SimTime window_end) {
  if (detectability_dispatched_) return;
  std::uint64_t seen = 0;
  for (const auto& rt : shards_) seen += rt->context->detector().infected_messages_seen();
  if (seen < config_.responses.detectability_threshold) return;
  detectability_dispatched_ = true;
  detected_at_ = window_end;
  if (options_.trace != nullptr) {
    // Coordinator-level event: the crossing is a global, barrier-
    // quantized decision, so it belongs to no shard (kNoShard).
    trace::Event event;
    event.time = window_end;
    event.kind = trace::EventKind::kDetectabilityCrossed;
    engine_trace_.record(std::move(event));
  }
  // The crossing executes as an event at the barrier time in every
  // shard, so mechanism reactions (scan activation, immunization
  // development, ...) are ordinary events on the owning scheduler. Like
  // the mailbox entries it is staged here and scheduled by the owning
  // worker at the next window start.
  for (auto& rt : shards_) {
    rt->has_pending_detect = true;
    rt->pending_detect_at = window_end;
  }
}

std::uint64_t ShardedSimulation::events_executed_total() const {
  std::uint64_t total = 0;
  for (const auto& rt : shards_) total += rt->scheduler.executed_count();
  return total;
}

ShardedSimulation::ShardWindowSample ShardedSimulation::sample_window(
    SimTime window_end, double barrier_wait_ms,
    std::chrono::steady_clock::time_point barrier_release) const {
  ShardWindowSample sample;
  sample.window_end = window_end;
  sample.horizon = config_.horizon;
  sample.barrier_wait_ms = barrier_wait_ms;
  sample.mailbox_sent = mailbox_.pushed_total();
  sample.mailbox_received = mailbox_.drained_total();
  const bool threaded = barrier_release != std::chrono::steady_clock::time_point{};
  sample.shards.reserve(shards_.size());
  for (const auto& rt : shards_) {
    ShardWindowSample::PerShard per;
    per.events_executed = rt->scheduler.executed_count();
    per.queue_depth = rt->scheduler.pending_count();
    if (threaded) {
      per.barrier_wait_ms = std::max(0.0, ms_between(rt->window_finished, barrier_release));
    }
    sample.events_executed += per.events_executed;
    sample.queue_depth += per.queue_depth;
    sample.infected += rt->infected_count;
    sample.patched += rt->patched_infected + rt->immunized_healthy;
    sample.messages_blocked += rt->gateway->counters().messages_blocked;
    sample.shards.push_back(per);
  }
  return sample;
}

bool ShardedSimulation::quiescent() const {
  for (const auto& rt : shards_) {
    if (rt->scheduler.pending_count() != 0) return false;
    if (!rt->staged.empty() || rt->has_pending_detect) return false;
  }
  return mailbox_.empty();
}

namespace {

/// Persistent worker pool for one run(): worker j owns shards j, j+W,
/// j+2W, ... (static assignment keeps per-shard cache state warm and
/// the execution schedule deterministic — not that determinism needs
/// it: shards share no mutable state within a window). Two barriers
/// frame each window; the main thread does the exchange work between
/// frames.
class WindowPool {
 public:
  WindowPool(std::vector<std::unique_ptr<ShardRuntime>>& shards, int workers)
      : shards_(shards),
        workers_(workers),
        start_(workers + 1),
        done_(workers + 1),
        errors_(static_cast<std::size_t>(workers)) {
    threads_.reserve(static_cast<std::size_t>(workers));
    for (int j = 0; j < workers; ++j) {
      threads_.emplace_back([this, j] { worker_loop(j); });
    }
  }

  ~WindowPool() {
    stop_ = true;
    start_.arrive_and_wait();  // release workers into the stop check
    for (auto& t : threads_) t.join();
  }

  /// Runs every shard to `until`; returns the milliseconds the main
  /// thread spent waiting on the completion barrier (the straggler
  /// stall the shard.barrier_wait_ms series reports).
  double run_window(SimTime until) {
    target_ = until;
    start_.arrive_and_wait();
    const auto wait_begin = std::chrono::steady_clock::now();
    done_.arrive_and_wait();
    const double waited = ms_between(wait_begin, std::chrono::steady_clock::now());
    for (auto& error : errors_) {
      if (error) {
        std::exception_ptr e = error;
        error = nullptr;
        std::rethrow_exception(e);
      }
    }
    return waited;
  }

 private:
  void worker_loop(int j) {
    while (true) {
      start_.arrive_and_wait();
      if (stop_) return;
      try {
        for (std::size_t s = static_cast<std::size_t>(j); s < shards_.size();
             s += static_cast<std::size_t>(workers_)) {
          shards_[s]->run_to(target_);
        }
      } catch (...) {
        errors_[static_cast<std::size_t>(j)] = std::current_exception();
      }
      done_.arrive_and_wait();
    }
  }

  std::vector<std::unique_ptr<ShardRuntime>>& shards_;
  int workers_;
  std::barrier<> start_;
  std::barrier<> done_;
  std::vector<std::exception_ptr> errors_;
  std::vector<std::thread> threads_;
  SimTime target_ = SimTime::zero();
  bool stop_ = false;
};

}  // namespace

void ShardedSimulation::advance_shards(SimTime until) {
  for (auto& rt : shards_) rt->run_to(until);
}

ReplicationResult ShardedSimulation::run() {
  if (ran_) throw std::logic_error("ShardedSimulation::run called twice");
  ran_ = true;

  std::unique_ptr<WindowPool> pool;
  if (workers_ > 1) pool = std::make_unique<WindowPool>(shards_, workers_);

  const SimTime horizon = config_.horizon;
  SimTime t = SimTime::zero();
  while (t < horizon) {
    const SimTime window_end = min(t + window_, horizon);
    double waited_ms = 0.0;
    std::chrono::steady_clock::time_point barrier_release{};
    if (pool) {
      waited_ms = pool->run_window(window_end);
      barrier_release = std::chrono::steady_clock::now();
      barrier_wait_ms_.push_back(waited_ms);
    } else {
      advance_shards(window_end);
    }
    t = window_end;
    ++windows_stepped_;
    exchange_mailboxes();
    check_detectability(window_end);
    if (window_observer_) window_observer_(window_end, horizon, events_executed_total());
    // Dead epidemic: no pending events anywhere and nothing in flight
    // between shards — every later window would be a no-op barrier.
    const bool quiet = quiescent();
    if (stats_observer_) {
      ShardWindowSample sample = sample_window(window_end, waited_ms, barrier_release);
      sample.last = quiet || !(window_end < horizon);
      stats_observer_(sample);
    }
    if (quiet) break;
  }
  pool.reset();

  // Tail pass (single-threaded; a handful of events at most): clocks
  // advance to the horizon, entries timestamped exactly at the horizon
  // fire — the serial engine would have fired those too — and whatever
  // they produce is exchanged and scheduled once more so it sits in the
  // queues just like any other never-reached post-horizon event.
  advance_shards(horizon);
  exchange_mailboxes();
  for (auto& rt : shards_) rt->flush_staged();

  return collect();
}

ReplicationResult ShardedSimulation::collect() const {
  ReplicationResult r;

  // K-way merge of the per-shard infection instants into one
  // cumulative step series (ties resolve lowest-shard-first; any fixed
  // rule works — the inputs are fixed per (seed, shards)).
  std::vector<std::size_t> cursor(shards_.size(), 0);
  std::uint64_t cumulative = 0;
  while (true) {
    std::size_t best = shards_.size();
    SimTime best_at = SimTime::infinity();
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      const auto& times = shards_[s]->infection_times;
      if (cursor[s] < times.size() && times[cursor[s]] < best_at) {
        best_at = times[cursor[s]];
        best = s;
      }
    }
    if (best == shards_.size()) break;
    ++cursor[best];
    ++cumulative;
    r.infections.push(best_at, static_cast<double>(cumulative));
  }

  response::ResponseMetrics merged;
  for (const auto& rt : shards_) {
    r.total_infected += rt->infected_count;
    r.immunized_healthy += rt->immunized_healthy;
    r.patched_infected += rt->patched_infected;

    response::ResponseMetrics m = rt->context->metrics();
    merged.phones_blacklisted += m.phones_blacklisted;
    merged.phones_flagged += m.phones_flagged;
    for (auto& [name, value] : m.extras) {
      auto it = std::find_if(merged.extras.begin(), merged.extras.end(),
                             [&name](const auto& e) { return e.first == name; });
      if (it == merged.extras.end()) {
        merged.extras.emplace_back(name, value);
      } else {
        it->second += value;
      }
    }

    const net::GatewayCounters& gc = rt->gateway->counters();
    r.gateway.messages_submitted += gc.messages_submitted;
    r.gateway.infected_messages_submitted += gc.infected_messages_submitted;
    r.gateway.messages_blocked += gc.messages_blocked;
    r.gateway.recipients_delivered += gc.recipients_delivered;
    r.gateway.invalid_recipients_dropped += gc.invalid_recipients_dropped;
  }
  r.phones_blacklisted = merged.phones_blacklisted;
  r.phones_flagged = merged.phones_flagged;
  r.response_extras = std::move(merged.extras);
  r.detected_at = detected_at_;

  // Per-shard telemetry merges exactly like per-replication telemetry
  // (commutative instruments), then the engine layers its own series
  // on top: the shard.* group and the build-time topology draws the
  // shards never see.
  metrics::Registry engine;
  engine.counter("rng.draws").add(topology_stream_.draw_count());
  engine.gauge("shard.count").set(options_.shards);
  engine.counter("shard.windows").add(windows_stepped_);
  engine.counter("shard.mailbox.sent").add(mailbox_.pushed_total());
  engine.counter("shard.mailbox.received").add(mailbox_.drained_total());
  auto& events_hist = engine.histogram("shard.events_executed", kEventCountBounds);
  for (const auto& rt : shards_) {
    events_hist.record(static_cast<double>(rt->scheduler.executed_count()));
  }
  auto& wait_hist = engine.histogram("shard.barrier_wait_ms", kBarrierWaitBounds);
  for (double ms : barrier_wait_ms_) wait_hist.record(ms);

  r.metrics = engine.snapshot();
  for (const auto& rt : shards_) {
    r.metrics.merge(rt->collect_metrics());
    // Profiler histograms merge commutatively, like any other
    // instrument — the merged profile is shard-order-independent.
    if (rt->profiler) r.metrics.merge(rt->profiler->snapshot());
  }

  if (options_.trace != nullptr) {
    // Deterministic (time, shard) merge of the per-shard buffers plus
    // the coordinator's own events; replaces the caller's buffer.
    std::vector<const trace::TraceBuffer*> buffers;
    buffers.reserve(shards_.size() + 1);
    for (const auto& rt : shards_) buffers.push_back(rt->trace_buffer);
    buffers.push_back(&engine_trace_);
    *options_.trace = trace::TraceBuffer::merge_shards(buffers);
  }
  return r;
}

}  // namespace mvsim::core
