#include "core/simulation.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "graph/generators.h"
#include "response/registry.h"
#include "rng/seed.h"

namespace mvsim::core {

namespace {
// Sub-stream indices under the replication seed; distinct constants
// keep every component's randomness independent of the others.
enum StreamIndex : std::uint64_t {
  kTopologyStream = 1,
  kUserStream = 2,
  kVirusStream = 3,
  kNetStream = 4,
  kResponseStream = 5,
  kMobilityStream = 6,
  kProximityStream = 7,
};

/// Builds the configured topology, consuming randomness from `stream`.
graph::ContactGraph build_graph_for(const ScenarioConfig& config, rng::Stream& stream) {
  switch (config.topology.kind) {
    case TopologyConfig::Kind::kPowerLaw: {
      graph::PowerLawConfig plc;
      plc.node_count = config.population;
      plc.target_mean_degree = config.topology.mean_degree;
      plc.alpha = config.topology.alpha;
      plc.locality_jitter = config.topology.locality_jitter;
      return graph::generate_power_law(plc, stream);
    }
    case TopologyConfig::Kind::kErdosRenyi:
      return graph::generate_erdos_renyi(config.population, config.topology.mean_degree, stream);
    case TopologyConfig::Kind::kBarabasiAlbert: {
      auto m = static_cast<std::uint32_t>(std::llround(config.topology.mean_degree / 2.0));
      return graph::generate_barabasi_albert(config.population, std::max(1u, m), stream);
    }
    case TopologyConfig::Kind::kRegularRing: {
      auto k = static_cast<std::uint32_t>(std::llround(config.topology.mean_degree));
      if (k % 2 == 1) ++k;  // ring lattice needs an even neighbour count
      return graph::generate_regular_ring(config.population, k);
    }
  }
  throw std::logic_error("build_graph_for: unknown topology kind");
}

/// Hash of every generator-relevant parameter: two configs with equal
/// hashes (and equal seeds) run bit-identical builds.
std::uint64_t topology_params_hash(const ScenarioConfig& config) {
  std::uint64_t h = graph::kHashSeed;
  h = graph::hash_combine(h, static_cast<std::uint64_t>(config.topology.kind));
  h = graph::hash_combine(h, config.population);
  h = graph::hash_combine(h, std::bit_cast<std::uint64_t>(config.topology.mean_degree));
  h = graph::hash_combine(h, std::bit_cast<std::uint64_t>(config.topology.alpha));
  h = graph::hash_combine(h, std::bit_cast<std::uint64_t>(config.topology.locality_jitter));
  return h;
}

/// The seed the topology stream is (re)built from. With shared_seed
/// set, it is decoupled from the replication seed so every replication
/// resolves to the same graph; susceptible sampling and patient zero
/// still draw from the per-replication topology stream either way.
std::uint64_t topology_build_seed(const ScenarioConfig& config, std::uint64_t replication_seed) {
  return config.topology.shared_seed
             ? rng::derive_seed(*config.topology.shared_seed, kTopologyStream)
             : rng::derive_seed(replication_seed, kTopologyStream);
}

graph::GraphCacheKey topology_cache_key(const ScenarioConfig& config,
                                        std::uint64_t replication_seed) {
  return {topology_build_seed(config, replication_seed), topology_params_hash(config)};
}

}  // namespace

Simulation::Simulation(const ScenarioConfig& config, std::uint64_t replication_seed,
                       trace::TraceBuffer* trace, des::EventTimer* event_timer,
                       des::QueueImpl des_impl, graph::GraphCache* graph_cache)
    : config_(config),
      replication_seed_(replication_seed),
      topology_stream_(rng::derive_seed(replication_seed, kTopologyStream)),
      user_stream_(rng::derive_seed(replication_seed, kUserStream)),
      virus_stream_(rng::derive_seed(replication_seed, kVirusStream)),
      net_stream_(rng::derive_seed(replication_seed, kNetStream)),
      response_stream_(rng::derive_seed(replication_seed, kResponseStream)),
      mobility_stream_(rng::derive_seed(replication_seed, kMobilityStream)),
      proximity_stream_(rng::derive_seed(replication_seed, kProximityStream)),
      scheduler_(des_impl),
      consent_(response::consent_for_suite(config.responses, config.eventual_acceptance)),
      trace_(trace) {
  config.validate().throw_if_invalid();
  scheduler_.set_event_timer(event_timer);

  build_topology(graph_cache);

  gateway_ = std::make_unique<net::Gateway>(scheduler_, net_stream_,
                                            config_.delivery_delay_mean);
  gateway_->set_delivery_callback([this](graph::PhoneId recipient, const net::MmsMessage& msg) {
    phones_->receive_infected_message(
        recipient, {msg.sender, msg.sequence, phone::InfectionChannel::kMms});
  });
  if (trace_ != nullptr) {
    // First observer on the gateway, so each submission's trace event
    // precedes any mechanism reaction to it. Observers are passive —
    // registering one more never perturbs RNG draws or event order.
    recorder_ = std::make_unique<trace::GatewayRecorder>(*trace_);
    gateway_->add_observer(*recorder_);
  }

  build_phones();
  build_responses();
  build_proximity_channel();
  seed_patient_zero();

  if (trace_ != nullptr) {
    context_->detector().on_detected([this](SimTime at) {
      trace::Event event;
      event.time = at;
      event.kind = trace::EventKind::kDetectabilityCrossed;
      trace_->record(std::move(event));
    });
  }
}

void Simulation::build_proximity_channel() {
  if (!config_.proximity) return;
  const ProximityChannelConfig& proximity = *config_.proximity;
  proximity_grid_ = std::make_unique<mobility::MobilityGrid>(
      proximity.grid_width, proximity.grid_height, config_.population);
  proximity_grid_->place_all_uniform(mobility_stream_);
  movement_ = std::make_unique<mobility::MovementProcess>(scheduler_, *proximity_grid_,
                                                          mobility_stream_,
                                                          proximity.dwell_mean);
}

void Simulation::schedule_bluetooth_scan(graph::PhoneId id) {
  scheduler_.schedule_after(
      proximity_stream_.exponential(config_.proximity->scan_interval_mean),
      des::EventType::kBluetoothScan, [this, id] {
        // A patch kills the worm outright. Blacklisting and monitoring
        // do NOT apply: the provider's MMS-side levers cannot touch
        // point-to-point Bluetooth transfers.
        if (phones_->propagation_stopped(id)) return;
        graph::PhoneId victim = 0;
        if (proximity_grid_->sample_co_located(id, proximity_stream_, victim)) {
          ++bluetooth_push_attempts_;
          phones_->receive_infected_message(
              victim, {id, net::kInvalidMessageId, phone::InfectionChannel::kBluetooth});
        }
        schedule_bluetooth_scan(id);
      });
}

Simulation::~Simulation() = default;

void Simulation::build_topology(graph::GraphCache* graph_cache) {
  const bool shared = config_.topology.shared_seed.has_value();
  if (graph_cache != nullptr) {
    auto entry = graph_cache->get_or_build(
        topology_cache_key(config_, replication_seed_), [&]() -> graph::CachedGraph {
          rng::Stream build_stream(topology_build_seed(config_, replication_seed_));
          auto built = std::make_shared<const graph::ContactGraph>(
              build_graph_for(config_, build_stream));
          return {std::move(built), build_stream};
        });
    graph_ = entry->graph;
    if (!shared) {
      // The per-replication topology stream must continue exactly
      // where a private build would have left it (susceptible
      // sampling and patient zero draw from it next); the cached
      // post-build state is that continuation point, and it also
      // carries the build's draw count so rng.draws telemetry is
      // unchanged on a hit.
      topology_stream_ = entry->post_build_stream;
    }
  } else if (shared) {
    // Shared topology without a cache: build from the decoupled seed
    // on a local stream, leaving the replication's topology stream
    // (which seeds susceptibility and patient zero) untouched.
    rng::Stream build_stream(topology_build_seed(config_, replication_seed_));
    graph_ = std::make_shared<const graph::ContactGraph>(build_graph_for(config_, build_stream));
  } else {
    graph_ = std::make_shared<const graph::ContactGraph>(
        build_graph_for(config_, topology_stream_));
  }
}

void Simulation::build_phones() {
  phone_env_.scheduler = &scheduler_;
  phone_env_.user_stream = &user_stream_;
  phone_env_.consent = &consent_;
  phone_env_.read_delay_mean = config_.read_delay_mean;
  phone_env_.decision_cutoff = config_.decision_cutoff;
  phone_env_.listener = this;

  phones_ = std::make_unique<phone::PhoneTable>(config_.population, &phone_env_);

  // "800 are randomly designated as susceptible": sample without
  // replacement from the whole population.
  auto susceptible_target = static_cast<std::uint64_t>(
      std::llround(config_.susceptible_fraction * static_cast<double>(config_.population)));
  auto chosen = topology_stream_.sample_without_replacement(config_.population,
                                                            susceptible_target);
  susceptible_ids_.reserve(chosen.size());
  std::vector<bool> susceptible(config_.population, false);
  for (auto id : chosen) susceptible[static_cast<std::size_t>(id)] = true;
  for (graph::PhoneId id = 0; id < config_.population; ++id) {
    if (!susceptible[id]) continue;
    phones_->set_susceptible(id, true);
    susceptible_ids_.push_back(id);
  }
  processes_.resize(config_.population);
}

void Simulation::build_responses() {
  // The registry decides which mechanisms exist; the context owns them
  // (plus the detectability monitor, which is harmless to build
  // unconditionally and useful for metrics) and dispatches every
  // simulation event to them. (user_education is folded into the
  // ConsentModel at construction — see response::consent_for_suite.)
  context_ = std::make_unique<SimulationContext>(config_.responses,
                                                 response::ResponseRegistry::built_ins());

  sending_env_.scheduler = &scheduler_;
  sending_env_.virus_stream = &virus_stream_;
  sending_env_.gateway = gateway_.get();
  sending_env_.trace = trace_;

  response::BuildContext build;
  build.scheduler = &scheduler_;
  build.response_stream = &response_stream_;
  build.patch_targets = &susceptible_ids_;
  build.apply_patch = [this](net::PhoneId id) { on_patch_applied(id); };
  build.population = config_.population;
  build.trace = trace_;
  context_->attach(*gateway_, sending_env_, std::move(build));
}

void Simulation::seed_patient_zero() {
  // Patient zero: uniformly random susceptible phones, infected at t=0.
  auto picks = topology_stream_.sample_without_replacement(susceptible_ids_.size(),
                                                           config_.initial_infected);
  for (auto pick : picks) {
    graph::PhoneId id = susceptible_ids_[static_cast<std::size_t>(pick)];
    scheduler_.schedule_at(SimTime::zero(), des::EventType::kSeedInfection,
                           [this, id] { phones_->force_infect(id); });
  }
}

void Simulation::on_phone_infected(phone::PhoneId id, const phone::InfectionSource& source) {
  ++infected_count_;
  infections_.push(scheduler_.now(), static_cast<double>(infected_count_));
  if (trace_ != nullptr) {
    trace::Event event;
    event.time = scheduler_.now();
    event.kind = trace::EventKind::kInfection;
    event.phone = id;
    event.peer = source.sender;
    event.message = source.message;
    event.detail = phone::to_string(source.channel);
    trace_->record(std::move(event));
  }
  context_->notify_infection(id, scheduler_.now());

  std::unique_ptr<virus::Targeter> targeter;
  if (config_.virus.targeting == virus::TargetingMode::kContactList) {
    targeter = std::make_unique<virus::ContactListTargeter>(graph_->contacts(id), virus_stream_);
  } else {
    targeter = std::make_unique<virus::RandomDialTargeter>(
        id, config_.population, config_.virus.valid_number_fraction, virus_stream_);
  }
  processes_[id] = std::make_unique<virus::SendingProcess>(sending_env_, config_.virus, *phones_,
                                                           id, std::move(targeter));
  processes_[id]->start();

  if (config_.proximity) {
    scheduler_.schedule_after(config_.virus.dormancy, des::EventType::kBluetoothScan,
                              [this, id] { schedule_bluetooth_scan(id); });
  }
}

void Simulation::on_patch_applied(graph::PhoneId id) {
  bool was_infected = phones_->infected(id);
  bool was_patched = phones_->patched(id);
  phones_->apply_patch(id);
  if (was_patched) return;
  if (trace_ != nullptr) {
    trace::Event event;
    event.time = scheduler_.now();
    event.kind = trace::EventKind::kPatchApplied;
    event.phone = id;
    trace_->record(std::move(event));
  }
  context_->notify_patch(id, scheduler_.now());
  if (was_infected) {
    ++patched_infected_;
    if (processes_[id]) processes_[id]->stop();  // stop immediately, not at next attempt
  } else if (phones_->state(id) == phone::HealthState::kImmunized) {
    ++immunized_healthy_;
  }
}

void Simulation::run_until(SimTime t) { scheduler_.run_until(t); }

ReplicationResult Simulation::run() {
  if (ran_) throw std::logic_error("Simulation::run called twice");
  ran_ = true;
  run_until(config_.horizon);
  return result();
}

ReplicationResult Simulation::result() const {
  ReplicationResult r;
  r.infections = infections_;
  r.total_infected = infected_count_;
  r.immunized_healthy = immunized_healthy_;
  r.patched_infected = patched_infected_;
  response::ResponseMetrics metrics = context_->metrics();
  r.phones_blacklisted = metrics.phones_blacklisted;
  r.phones_flagged = metrics.phones_flagged;
  r.response_extras = std::move(metrics.extras);
  r.bluetooth_push_attempts = bluetooth_push_attempts_;
  r.gateway = gateway_->counters();
  r.detected_at = context_->detector().detected_at();
  r.metrics = collect_metrics();
  return r;
}

metrics::Snapshot Simulation::collect_metrics() const {
  // Everything below is read-only: the registry is filled from
  // counters the components kept while running, so collecting metrics
  // can never perturb event order or RNG sequences (the golden tests
  // rely on this).
  metrics::Registry reg;
  reg.counter("des.events_scheduled").add(scheduler_.scheduled_count());
  reg.counter("des.events_executed").add(scheduler_.executed_count());
  reg.counter("des.events_cancelled").add(scheduler_.cancelled_count());
  reg.gauge("des.queue_depth_peak").set(scheduler_.peak_pending_count());
  reg.counter("des.scheduler.cancelled_reclaimed").add(scheduler_.cancelled_reclaimed_count());

  const net::GatewayCounters& gc = gateway_->counters();
  reg.counter("net.messages_submitted").add(gc.messages_submitted);
  reg.counter("net.infected_messages_submitted").add(gc.infected_messages_submitted);
  reg.counter("net.messages_blocked").add(gc.messages_blocked);
  reg.counter("net.recipients_delivered").add(gc.recipients_delivered);
  reg.counter("net.invalid_recipients_dropped").add(gc.invalid_recipients_dropped);

  reg.counter("core.infections").add(infected_count_);
  reg.counter("core.phones_immunized_healthy").add(immunized_healthy_);
  reg.counter("core.phones_patched_infected").add(patched_infected_);
  reg.counter("core.bluetooth_push_attempts").add(bluetooth_push_attempts_);

  std::uint64_t draws = topology_stream_.draw_count() + user_stream_.draw_count() +
                        virus_stream_.draw_count() + net_stream_.draw_count() +
                        response_stream_.draw_count() + mobility_stream_.draw_count() +
                        proximity_stream_.draw_count();
  reg.counter("rng.draws").add(draws);

  context_->collect_metrics(reg);
  return reg.snapshot();
}

bool prewarm_shared_graph(const ScenarioConfig& config, graph::GraphCache& cache) {
  if (!config.topology.shared_seed) return false;
  config.validate().throw_if_invalid();
  // The replication seed is irrelevant under shared_seed (the key is
  // derived from the shared seed alone); 0 stands in for it.
  (void)cache.get_or_build(topology_cache_key(config, 0), [&]() -> graph::CachedGraph {
    rng::Stream build_stream(topology_build_seed(config, 0));
    auto built =
        std::make_shared<const graph::ContactGraph>(build_graph_for(config, build_stream));
    return {std::move(built), build_stream};
  });
  return true;
}

}  // namespace mvsim::core
