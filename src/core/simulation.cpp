#include "core/simulation.h"

#include <cmath>
#include <stdexcept>

#include "core/topology_build.h"
#include "response/registry.h"
#include "rng/seed.h"

namespace mvsim::core {

Simulation::Simulation(const ScenarioConfig& config, std::uint64_t replication_seed,
                       trace::TraceBuffer* trace, des::EventTimer* event_timer,
                       des::QueueImpl des_impl, graph::GraphCache* graph_cache)
    : config_(config),
      replication_seed_(replication_seed),
      topology_stream_(rng::derive_seed(replication_seed, kTopologyStream)),
      user_stream_(rng::derive_seed(replication_seed, kUserStream)),
      virus_stream_(rng::derive_seed(replication_seed, kVirusStream)),
      net_stream_(rng::derive_seed(replication_seed, kNetStream)),
      response_stream_(rng::derive_seed(replication_seed, kResponseStream)),
      mobility_stream_(rng::derive_seed(replication_seed, kMobilityStream)),
      proximity_stream_(rng::derive_seed(replication_seed, kProximityStream)),
      scheduler_(des_impl),
      consent_(response::consent_for_suite(config.responses, config.eventual_acceptance)),
      trace_(trace) {
  config.validate().throw_if_invalid();
  scheduler_.set_event_timer(event_timer);

  build_topology(graph_cache);

  gateway_ = std::make_unique<net::Gateway>(scheduler_, net_stream_,
                                            config_.delivery_delay_mean);
  gateway_->set_delivery_callback([this](graph::PhoneId recipient, const net::MmsMessage& msg) {
    phones_->receive_infected_message(
        recipient, {msg.sender, msg.sequence, phone::InfectionChannel::kMms});
  });
  if (trace_ != nullptr) {
    // First observer on the gateway, so each submission's trace event
    // precedes any mechanism reaction to it. Observers are passive —
    // registering one more never perturbs RNG draws or event order.
    recorder_ = std::make_unique<trace::GatewayRecorder>(*trace_);
    gateway_->add_observer(*recorder_);
  }

  build_phones();
  build_responses();
  build_proximity_channel();
  seed_patient_zero();

  if (trace_ != nullptr) {
    context_->detector().on_detected([this](SimTime at) {
      trace::Event event;
      event.time = at;
      event.kind = trace::EventKind::kDetectabilityCrossed;
      trace_->record(std::move(event));
    });
  }
}

void Simulation::build_proximity_channel() {
  if (!config_.proximity) return;
  const ProximityChannelConfig& proximity = *config_.proximity;
  proximity_grid_ = std::make_unique<mobility::MobilityGrid>(
      proximity.grid_width, proximity.grid_height, config_.population);
  proximity_grid_->place_all_uniform(mobility_stream_);
  movement_ = std::make_unique<mobility::MovementProcess>(scheduler_, *proximity_grid_,
                                                          mobility_stream_,
                                                          proximity.dwell_mean);
}

void Simulation::schedule_bluetooth_scan(graph::PhoneId id) {
  scheduler_.schedule_after(
      proximity_stream_.exponential(config_.proximity->scan_interval_mean),
      des::EventType::kBluetoothScan, [this, id] {
        // A patch kills the worm outright. Blacklisting and monitoring
        // do NOT apply: the provider's MMS-side levers cannot touch
        // point-to-point Bluetooth transfers.
        if (phones_->propagation_stopped(id)) return;
        graph::PhoneId victim = 0;
        if (proximity_grid_->sample_co_located(id, proximity_stream_, victim)) {
          ++bluetooth_push_attempts_;
          phones_->receive_infected_message(
              victim, {id, net::kInvalidMessageId, phone::InfectionChannel::kBluetooth});
        }
        schedule_bluetooth_scan(id);
      });
}

Simulation::~Simulation() = default;

void Simulation::build_topology(graph::GraphCache* graph_cache) {
  graph_ = resolve_topology(config_, replication_seed_, topology_stream_, graph_cache);
}

void Simulation::build_phones() {
  phone_env_.scheduler = &scheduler_;
  phone_env_.user_stream = &user_stream_;
  phone_env_.consent = &consent_;
  phone_env_.read_delay_mean = config_.read_delay_mean;
  phone_env_.decision_cutoff = config_.decision_cutoff;
  phone_env_.listener = this;

  phones_ = std::make_unique<phone::PhoneTable>(config_.population, &phone_env_);

  // "800 are randomly designated as susceptible": sample without
  // replacement from the whole population.
  auto susceptible_target = static_cast<std::uint64_t>(
      std::llround(config_.susceptible_fraction * static_cast<double>(config_.population)));
  auto chosen = topology_stream_.sample_without_replacement(config_.population,
                                                            susceptible_target);
  susceptible_ids_.reserve(chosen.size());
  std::vector<bool> susceptible(config_.population, false);
  for (auto id : chosen) susceptible[static_cast<std::size_t>(id)] = true;
  for (graph::PhoneId id = 0; id < config_.population; ++id) {
    if (!susceptible[id]) continue;
    phones_->set_susceptible(id, true);
    susceptible_ids_.push_back(id);
  }
  processes_.resize(config_.population);
}

void Simulation::build_responses() {
  // The registry decides which mechanisms exist; the context owns them
  // (plus the detectability monitor, which is harmless to build
  // unconditionally and useful for metrics) and dispatches every
  // simulation event to them. (user_education is folded into the
  // ConsentModel at construction — see response::consent_for_suite.)
  context_ = std::make_unique<SimulationContext>(config_.responses,
                                                 response::ResponseRegistry::built_ins());

  sending_env_.scheduler = &scheduler_;
  sending_env_.virus_stream = &virus_stream_;
  sending_env_.gateway = gateway_.get();
  sending_env_.trace = trace_;

  response::BuildContext build;
  build.scheduler = &scheduler_;
  build.response_stream = &response_stream_;
  build.patch_targets = &susceptible_ids_;
  build.apply_patch = [this](net::PhoneId id) { on_patch_applied(id); };
  build.population = config_.population;
  build.trace = trace_;
  context_->attach(*gateway_, sending_env_, std::move(build));
}

void Simulation::seed_patient_zero() {
  // Patient zero: uniformly random susceptible phones, infected at t=0.
  auto picks = topology_stream_.sample_without_replacement(susceptible_ids_.size(),
                                                           config_.initial_infected);
  for (auto pick : picks) {
    graph::PhoneId id = susceptible_ids_[static_cast<std::size_t>(pick)];
    scheduler_.schedule_at(SimTime::zero(), des::EventType::kSeedInfection,
                           [this, id] { phones_->force_infect(id); });
  }
}

void Simulation::on_phone_infected(phone::PhoneId id, const phone::InfectionSource& source) {
  ++infected_count_;
  infections_.push(scheduler_.now(), static_cast<double>(infected_count_));
  if (trace_ != nullptr) {
    trace::Event event;
    event.time = scheduler_.now();
    event.kind = trace::EventKind::kInfection;
    event.phone = id;
    event.peer = source.sender;
    event.message = source.message;
    event.detail = phone::to_string(source.channel);
    trace_->record(std::move(event));
  }
  context_->notify_infection(id, scheduler_.now());

  std::unique_ptr<virus::Targeter> targeter;
  if (config_.virus.targeting == virus::TargetingMode::kContactList) {
    targeter = std::make_unique<virus::ContactListTargeter>(graph_->contacts(id), virus_stream_);
  } else {
    targeter = std::make_unique<virus::RandomDialTargeter>(
        id, config_.population, config_.virus.valid_number_fraction, virus_stream_);
  }
  processes_[id] = std::make_unique<virus::SendingProcess>(sending_env_, config_.virus, *phones_,
                                                           id, std::move(targeter));
  processes_[id]->start();

  if (config_.proximity) {
    scheduler_.schedule_after(config_.virus.dormancy, des::EventType::kBluetoothScan,
                              [this, id] { schedule_bluetooth_scan(id); });
  }
}

void Simulation::on_patch_applied(graph::PhoneId id) {
  bool was_infected = phones_->infected(id);
  bool was_patched = phones_->patched(id);
  phones_->apply_patch(id);
  if (was_patched) return;
  if (trace_ != nullptr) {
    trace::Event event;
    event.time = scheduler_.now();
    event.kind = trace::EventKind::kPatchApplied;
    event.phone = id;
    trace_->record(std::move(event));
  }
  context_->notify_patch(id, scheduler_.now());
  if (was_infected) {
    ++patched_infected_;
    if (processes_[id]) processes_[id]->stop();  // stop immediately, not at next attempt
  } else if (phones_->state(id) == phone::HealthState::kImmunized) {
    ++immunized_healthy_;
  }
}

void Simulation::run_until(SimTime t) { scheduler_.run_until(t); }

ReplicationResult Simulation::run() {
  if (ran_) throw std::logic_error("Simulation::run called twice");
  ran_ = true;
  run_until(config_.horizon);
  return result();
}

ReplicationResult Simulation::result() const {
  ReplicationResult r;
  r.infections = infections_;
  r.total_infected = infected_count_;
  r.immunized_healthy = immunized_healthy_;
  r.patched_infected = patched_infected_;
  response::ResponseMetrics metrics = context_->metrics();
  r.phones_blacklisted = metrics.phones_blacklisted;
  r.phones_flagged = metrics.phones_flagged;
  r.response_extras = std::move(metrics.extras);
  r.bluetooth_push_attempts = bluetooth_push_attempts_;
  r.gateway = gateway_->counters();
  r.detected_at = context_->detector().detected_at();
  r.metrics = collect_metrics();
  return r;
}

metrics::Snapshot Simulation::collect_metrics() const {
  // Everything below is read-only: the registry is filled from
  // counters the components kept while running, so collecting metrics
  // can never perturb event order or RNG sequences (the golden tests
  // rely on this).
  metrics::Registry reg;
  reg.counter("des.events_scheduled").add(scheduler_.scheduled_count());
  reg.counter("des.events_executed").add(scheduler_.executed_count());
  reg.counter("des.events_cancelled").add(scheduler_.cancelled_count());
  reg.gauge("des.queue_depth_peak").set(scheduler_.peak_pending_count());
  reg.counter("des.scheduler.cancelled_reclaimed").add(scheduler_.cancelled_reclaimed_count());

  const net::GatewayCounters& gc = gateway_->counters();
  reg.counter("net.messages_submitted").add(gc.messages_submitted);
  reg.counter("net.infected_messages_submitted").add(gc.infected_messages_submitted);
  reg.counter("net.messages_blocked").add(gc.messages_blocked);
  reg.counter("net.recipients_delivered").add(gc.recipients_delivered);
  reg.counter("net.invalid_recipients_dropped").add(gc.invalid_recipients_dropped);

  reg.counter("core.infections").add(infected_count_);
  reg.counter("core.phones_immunized_healthy").add(immunized_healthy_);
  reg.counter("core.phones_patched_infected").add(patched_infected_);
  reg.counter("core.bluetooth_push_attempts").add(bluetooth_push_attempts_);

  std::uint64_t draws = topology_stream_.draw_count() + user_stream_.draw_count() +
                        virus_stream_.draw_count() + net_stream_.draw_count() +
                        response_stream_.draw_count() + mobility_stream_.draw_count() +
                        proximity_stream_.draw_count();
  reg.counter("rng.draws").add(draws);

  context_->collect_metrics(reg);
  return reg.snapshot();
}

bool prewarm_shared_graph(const ScenarioConfig& config, graph::GraphCache& cache) {
  if (!config.topology.shared_seed) return false;
  config.validate().throw_if_invalid();
  // The replication seed is irrelevant under shared_seed (the key is
  // derived from the shared seed alone); 0 stands in for it. The
  // topology stream here is a throwaway: shared-seed resolution never
  // touches it.
  rng::Stream scratch(topology_build_seed(config, 0));
  (void)resolve_topology(config, 0, scratch, &cache);
  return true;
}

}  // namespace mvsim::core
