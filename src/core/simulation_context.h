// Event-dispatch layer between the simulation core and the response
// mechanisms.
//
// SimulationContext owns the detectability monitor and the set of
// mechanisms the registry built for the scenario, and it is the ONLY
// place that fans simulation events out to them: gateway traffic
// (submitted / blocked / delivered, via its GatewayObserver role),
// infection and patch events (via notify_*), the detectability
// crossing, and periodic ticks. Dispatch is always in registration
// order — the order ResponseRegistry::built_ins() fixes — which the
// golden tests pin down as bit-identical to the pre-refactor wiring.
//
// The core interacts with mechanisms only through this class; it never
// names a concrete mechanism type.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "des/scheduler.h"
#include "metrics/registry.h"
#include "net/gateway.h"
#include "response/detectability.h"
#include "response/mechanism.h"
#include "response/registry.h"
#include "response/suite.h"
#include "virus/sending_process.h"

namespace mvsim::core {

class SimulationContext final : public net::GatewayObserver {
 public:
  /// Builds the detectability monitor and every enabled mechanism (in
  /// registry order). Nothing is wired yet — call attach().
  ///
  /// `defer_detection` puts the monitor in deferred (count-only) mode
  /// for per-shard contexts of a sharded run, where the crossing is a
  /// global decision the barrier coordinator makes (see
  /// response::DetectabilityMonitor and docs/parallelism.md).
  SimulationContext(const response::ResponseSuiteConfig& suite,
                    const response::ResponseRegistry& registry, bool defer_detection = false);

  /// Wires the built mechanisms into a simulation: registers the
  /// detector and this dispatcher as gateway observers, runs every
  /// mechanism's on_build, registers delivery-filter and
  /// outgoing-policy roles, and schedules recurring ticks. Call once.
  ///
  /// `build.detector` is filled in here; the other fields must be set
  /// by the caller.
  void attach(net::Gateway& gateway, virus::SendingEnvironment& sending_env,
              response::BuildContext build);

  /// A phone became infected / a patch landed; fans out to on_infection
  /// / on_patch.
  void notify_infection(net::PhoneId phone, SimTime now);
  void notify_patch(net::PhoneId phone, SimTime now);

  [[nodiscard]] response::DetectabilityMonitor& detector() { return *detector_; }
  [[nodiscard]] const response::DetectabilityMonitor& detector() const { return *detector_; }
  [[nodiscard]] const std::vector<std::unique_ptr<response::ResponseMechanism>>& mechanisms()
      const {
    return mechanisms_;
  }
  /// nullptr when no enabled mechanism has that name.
  [[nodiscard]] const response::ResponseMechanism* find(std::string_view name) const;

  /// Aggregates every mechanism's contribute_metrics().
  [[nodiscard]] response::ResponseMetrics metrics() const;

  /// Publishes the dispatch layer's own telemetry (`core.dispatch.*`)
  /// and every mechanism's `response.<name>.*` counters (via the
  /// on_metrics hook) into `registry`. Observation-only.
  void collect_metrics(metrics::Registry& registry) const;

  // GatewayObserver — forwards gateway traffic to every mechanism.
  void on_submitted(const net::MmsMessage& message, SimTime now) override;
  void on_blocked(const net::MmsMessage& message, const char* blocked_by, SimTime now) override;
  void on_delivered(net::PhoneId recipient, const net::MmsMessage& message,
                    SimTime now) override;

 private:
  void schedule_tick(response::ResponseMechanism* mechanism, SimTime period);
  /// One dispatched event fanning out to a hook's subscriber list;
  /// non-subscribers are counted as skipped virtual calls.
  void count_dispatch(std::size_t subscribers) {
    ++dispatch_events_;
    dispatch_hook_calls_ += subscribers;
    dispatch_hooks_skipped_ += mechanisms_.size() - subscribers;
  }

  std::unique_ptr<response::DetectabilityMonitor> detector_;
  std::vector<std::unique_ptr<response::ResponseMechanism>> mechanisms_;
  des::Scheduler* scheduler_ = nullptr;
  bool attached_ = false;

  // Per-hook subscriber lists, precomputed at attach() from each
  // mechanism's subscribed_hooks() mask (registration order preserved
  // within each list). Dispatch walks these instead of virtual-calling
  // every mechanism's (usually no-op) default hook.
  std::vector<response::ResponseMechanism*> submitted_subs_;
  std::vector<response::ResponseMechanism*> blocked_subs_;
  std::vector<response::ResponseMechanism*> delivered_subs_;
  std::vector<response::ResponseMechanism*> infection_subs_;
  std::vector<response::ResponseMechanism*> patch_subs_;
  std::vector<response::ResponseMechanism*> detect_subs_;

  // Telemetry (`core.dispatch.*`): events fanned out, total
  // mechanism-hook invocations, and hook calls the subscription masks
  // avoided. Plain counters; never feed back into the simulation.
  std::uint64_t dispatch_events_ = 0;
  std::uint64_t dispatch_hook_calls_ = 0;
  std::uint64_t dispatch_hooks_skipped_ = 0;
};

}  // namespace mvsim::core
