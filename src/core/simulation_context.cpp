#include "core/simulation_context.h"

#include <stdexcept>
#include <string>

namespace mvsim::core {

SimulationContext::SimulationContext(const response::ResponseSuiteConfig& suite,
                                     const response::ResponseRegistry& registry,
                                     bool defer_detection)
    : detector_(std::make_unique<response::DetectabilityMonitor>(suite.detectability_threshold,
                                                                 defer_detection)),
      mechanisms_(registry.build_enabled(suite)) {}

void SimulationContext::attach(net::Gateway& gateway, virus::SendingEnvironment& sending_env,
                               response::BuildContext build) {
  if (attached_) throw std::logic_error("SimulationContext::attach called twice");
  if (build.scheduler == nullptr) {
    throw std::invalid_argument("SimulationContext::attach: build.scheduler must be set");
  }
  attached_ = true;
  scheduler_ = build.scheduler;
  build.detector = detector_.get();

  // Observer order matters for event-for-event reproducibility: the
  // detector sees each submission first (so a mechanism reacting to
  // the same submission already observes detected()==true), then this
  // dispatcher fans out to mechanisms in registration order.
  gateway.add_observer(*detector_);
  detector_->on_detected([this](SimTime at) {
    count_dispatch(detect_subs_.size());
    for (auto* mechanism : detect_subs_) mechanism->on_detectability_crossed(at);
  });
  gateway.add_observer(*this);

  // Precompute per-hook subscriber lists; dispatch then walks only the
  // mechanisms whose overrides can do something with the event.
  for (auto& mechanism : mechanisms_) {
    const std::uint32_t mask = mechanism->subscribed_hooks();
    if (mask & response::hook::kMessageSubmitted) submitted_subs_.push_back(mechanism.get());
    if (mask & response::hook::kMessageBlocked) blocked_subs_.push_back(mechanism.get());
    if (mask & response::hook::kMessageDelivered) delivered_subs_.push_back(mechanism.get());
    if (mask & response::hook::kInfection) infection_subs_.push_back(mechanism.get());
    if (mask & response::hook::kPatch) patch_subs_.push_back(mechanism.get());
    if (mask & response::hook::kDetectabilityCrossed) detect_subs_.push_back(mechanism.get());
  }

  for (auto& mechanism : mechanisms_) mechanism->on_build(build);
  for (auto& mechanism : mechanisms_) {
    if (net::DeliveryFilter* filter = mechanism->as_delivery_filter()) {
      gateway.add_filter(*filter);
    }
  }
  for (auto& mechanism : mechanisms_) {
    if (net::OutgoingMmsPolicy* policy = mechanism->as_outgoing_policy()) {
      sending_env.policies.push_back(policy);
    }
  }
  for (auto& mechanism : mechanisms_) {
    SimTime period = mechanism->tick_period();
    if (period > SimTime::zero()) schedule_tick(mechanism.get(), period);
  }
}

void SimulationContext::schedule_tick(response::ResponseMechanism* mechanism, SimTime period) {
  scheduler_->schedule_after(period, des::EventType::kResponseTick,
                             [this, mechanism, period] {
    count_dispatch(1);
    mechanism->on_tick(scheduler_->now());
    schedule_tick(mechanism, period);
  });
}

void SimulationContext::notify_infection(net::PhoneId phone, SimTime now) {
  count_dispatch(infection_subs_.size());
  for (auto* mechanism : infection_subs_) mechanism->on_infection(phone, now);
}

void SimulationContext::notify_patch(net::PhoneId phone, SimTime now) {
  count_dispatch(patch_subs_.size());
  for (auto* mechanism : patch_subs_) mechanism->on_patch(phone, now);
}

const response::ResponseMechanism* SimulationContext::find(std::string_view name) const {
  for (const auto& mechanism : mechanisms_) {
    if (name == mechanism->name()) return mechanism.get();
  }
  return nullptr;
}

response::ResponseMetrics SimulationContext::metrics() const {
  response::ResponseMetrics metrics;
  for (const auto& mechanism : mechanisms_) mechanism->contribute_metrics(metrics);
  return metrics;
}

void SimulationContext::on_submitted(const net::MmsMessage& message, SimTime now) {
  count_dispatch(submitted_subs_.size());
  for (auto* mechanism : submitted_subs_) mechanism->on_message_submitted(message, now);
}

void SimulationContext::on_blocked(const net::MmsMessage& message, const char* blocked_by,
                                   SimTime now) {
  count_dispatch(blocked_subs_.size());
  for (auto* mechanism : blocked_subs_) mechanism->on_message_blocked(message, blocked_by, now);
}

void SimulationContext::on_delivered(net::PhoneId recipient, const net::MmsMessage& message,
                                     SimTime now) {
  count_dispatch(delivered_subs_.size());
  for (auto* mechanism : delivered_subs_) mechanism->on_message_delivered(recipient, message, now);
}

void SimulationContext::collect_metrics(metrics::Registry& registry) const {
  registry.counter("core.dispatch.events").add(dispatch_events_);
  registry.counter("core.dispatch.hook_calls").add(dispatch_hook_calls_);
  registry.counter("core.dispatch.hooks_skipped").add(dispatch_hooks_skipped_);
  for (const auto& mechanism : mechanisms_) mechanism->on_metrics(registry);
}

}  // namespace mvsim::core
