#include "core/run_manifest.h"

#include <cstdio>

namespace mvsim::core {

obs::RunManifest build_run_manifest(const ScenarioConfig& config, const ManifestInputs& inputs,
                                    const ExperimentResult& result) {
  obs::RunManifest manifest;
  manifest.scenario = config.name;
  manifest.scenario_hash = inputs.scenario_hash;
  char seed[24];
  std::snprintf(seed, sizeof seed, "%llu", static_cast<unsigned long long>(inputs.seed));
  manifest.seed = seed;
  manifest.replications = static_cast<int>(result.curve.replication_count());
  manifest.threads = result.threads_used;
  manifest.shards = inputs.shards;
  manifest.shard_window_min = inputs.shard_window_min;
  manifest.build = obs::build_info();
  manifest.phases = inputs.phases;
  manifest.peak_rss = obs::peak_rss_bytes();
  manifest.artifacts = inputs.artifacts;
  manifest.sweep = inputs.sweep;

  obs::RunOutcome& outcome = manifest.outcome;
  outcome.final_infected_mean = result.final_infections.mean();
  outcome.final_infected_ci95 = result.final_infections.ci95_half_width();
  // The peak of the mean curve; infection counts are cumulative, so
  // for most scenarios this equals the final level and the interesting
  // landmark is *when* the curve first reaches it.
  for (const auto& point : result.curve.grid()) {
    if (point.mean > outcome.peak_infected_mean) {
      outcome.peak_infected_mean = point.mean;
      outcome.time_to_peak_h = point.time.to_hours();
    }
  }
  outcome.patched_mean = result.patches_applied.mean();
  outcome.messages_blocked_mean = result.messages_blocked.mean();
  outcome.total_events = result.metrics.counter_value("des.events_executed");
  return manifest;
}

}  // namespace mvsim::core
