#include "core/scenario.h"

namespace mvsim::core {

const char* to_string(TopologyConfig::Kind kind) {
  switch (kind) {
    case TopologyConfig::Kind::kPowerLaw: return "power-law";
    case TopologyConfig::Kind::kErdosRenyi: return "erdos-renyi";
    case TopologyConfig::Kind::kRegularRing: return "regular-ring";
    case TopologyConfig::Kind::kBarabasiAlbert: return "barabasi-albert";
  }
  return "?";
}

ValidationErrors TopologyConfig::validate() const {
  ValidationErrors errors("TopologyConfig");
  errors.require(mean_degree >= 1.0, "mean_degree must be >= 1");
  if (kind == Kind::kPowerLaw) {
    errors.require(alpha > 0.0, "alpha must be positive");
    errors.require(locality_jitter >= 0.0, "locality_jitter must be >= 0");
  }
  return errors;
}

ValidationErrors ProximityChannelConfig::validate() const {
  ValidationErrors errors("ProximityChannelConfig");
  errors.require(grid_width >= 1 && grid_height >= 1, "grid dimensions must be positive");
  errors.require(dwell_mean > SimTime::zero(), "dwell_mean must be positive");
  errors.require(scan_interval_mean > SimTime::zero(), "scan_interval_mean must be positive");
  return errors;
}

ValidationErrors ScenarioConfig::validate() const {
  ValidationErrors errors("ScenarioConfig(" + name + ")");
  errors.require(population >= 2, "population must be >= 2");
  errors.require(susceptible_fraction > 0.0 && susceptible_fraction <= 1.0,
                 "susceptible_fraction must be in (0, 1]");
  errors.require(initial_infected >= 1, "initial_infected must be >= 1");
  auto susceptible =
      static_cast<std::uint32_t>(susceptible_fraction * static_cast<double>(population));
  errors.require(initial_infected <= susceptible,
                 "initial_infected exceeds the susceptible population");
  errors.require(topology.mean_degree < static_cast<double>(population),
                 "topology mean_degree must be < population");
  errors.merge(topology.validate());
  errors.require(eventual_acceptance >= 0.0 && eventual_acceptance <= 0.70,
                 "eventual_acceptance must be in [0, 0.70] (AF/2^n family limit)");
  errors.require(read_delay_mean > SimTime::zero(), "read_delay_mean must be positive");
  errors.require(decision_cutoff >= 1, "decision_cutoff must be >= 1");
  errors.require(delivery_delay_mean > SimTime::zero(), "delivery_delay_mean must be positive");
  errors.merge(virus.validate());
  if (proximity) errors.merge(proximity->validate());
  errors.merge(responses.validate());
  errors.require(horizon > SimTime::zero() && horizon.is_finite(),
                 "horizon must be finite and positive");
  errors.require(sample_step > SimTime::zero() && sample_step <= horizon,
                 "sample_step must be positive and <= horizon");
  return errors;
}

double ScenarioConfig::expected_unrestrained_plateau() const {
  double acceptance = responses.user_education ? responses.user_education->eventual_acceptance
                                               : eventual_acceptance;
  return static_cast<double>(population) * susceptible_fraction * acceptance;
}

}  // namespace mvsim::core
