// Trace exporters and loaders.
//
// Two on-disk formats, both lossless for every Event field:
//
//  * JSONL — one compact JSON object per line, preceded by a meta
//    record carrying the capture bounds (capacity, dropped). Greppable,
//    streamable, trivially consumed from any language.
//  * Chrome trace_event JSON — a {"traceEvents": [...]} document of
//    instant events on per-category tracks, loadable in Perfetto /
//    chrome://tracing for interactive timeline inspection. Timestamps
//    are microseconds of *simulation* time.
//
// `mvsim run --trace <path>` picks the format from the extension
// (.jsonl → JSONL, anything else → Chrome trace); read_trace()
// auto-detects when loading, so `mvsim trace-analyze` accepts either.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace mvsim::trace {

/// Capture bounds, round-tripped through both formats.
struct TraceMeta {
  std::uint64_t capacity = 0;  ///< 0 = unknown/unbounded
  std::uint64_t dropped = 0;
};

void write_jsonl(const TraceBuffer& buffer, std::ostream& out);
void write_chrome_trace(const TraceBuffer& buffer, std::ostream& out);

struct LoadedTrace {
  std::vector<Event> events;
  TraceMeta meta;
};

/// Parses either export format (auto-detected). Throws
/// std::runtime_error with a descriptive message on malformed input.
[[nodiscard]] LoadedTrace read_trace(const std::string& text);
/// Reads and parses `path`; throws std::runtime_error when unreadable.
[[nodiscard]] LoadedTrace read_trace_file(const std::string& path);

}  // namespace mvsim::trace
