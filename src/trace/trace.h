// Causal event trace of one replication.
//
// The aggregate curves answer "how many"; the trace answers "what
// happened, and because of what": every message submission, block
// (with the blocking mechanism's registry name), delivery, infection
// (victim *and* infector plus the triggering message id), patch,
// reboot, detectability crossing and mechanism state transition, in
// simulation-time order. On top of the raw events, trace/analysis.h
// reconstructs the transmission tree (generation depth, effective R
// per generation, per-mechanism chain truncation) and trace/export.h
// writes JSONL and Chrome trace_event files.
//
// Tracing is opt-in (pass a TraceBuffer to the Simulation constructor)
// and observation-only: recording never draws randomness, schedules
// events or mutates simulation state, so fixed-seed results are
// bit-identical with tracing on or off (the golden tests pin this
// down). Capture is bounded — past the configured event cap the buffer
// counts drops instead of growing, so tracing stays safe on large
// populations and long horizons.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "graph/contact_graph.h"
#include "net/message.h"
#include "util/sim_time.h"

namespace mvsim::trace {

using graph::kInvalidPhoneId;
using graph::PhoneId;
using net::kInvalidMessageId;

/// Sentinel for events recorded outside any shard (serial runs, and
/// coordinator-level events of a sharded run).
inline constexpr std::uint32_t kNoShard = 0xFFFF'FFFFu;

/// Trace-layer message-id namespacing for sharded runs. Gateway
/// sequence numbers are per-gateway, so two shards reuse the same raw
/// sequences; trace events from shard s offset them by
/// s * kShardMessageStride, making every traced message id globally
/// unique and its origin shard recoverable as `id / stride`. This is a
/// trace-only convention — the simulation itself never sees these ids
/// (sharded goldens are pinned against exactly that).
inline constexpr std::uint64_t kShardMessageStride = 1ULL << 48;

enum class EventKind : std::uint8_t {
  kMessageSent,      ///< phone handed a message to the gateway (phone = sender)
  kMessageBlocked,   ///< a delivery filter stopped it (detail = mechanism name)
  kMessageDelivered, ///< it reached a valid recipient (phone = recipient, peer = sender)
  kInfection,        ///< phone = victim, peer = infector, detail = channel
  kPatchApplied,     ///< immunization patch landed (phone = target)
  kReboot,           ///< an infected phone rebooted (refills per-reboot budgets)
  kDetectabilityCrossed,  ///< the gateways crossed the detectability threshold
  kMechanismAction,  ///< a mechanism changed state (detail = "mechanism:action")
};

[[nodiscard]] const char* to_string(EventKind kind);
/// Inverse of to_string; false when `text` names no kind.
[[nodiscard]] bool event_kind_from_string(std::string_view text, EventKind& out);

/// One traced event. Fields that do not apply to a kind keep their
/// invalid-sentinel defaults (and the exporters omit them).
struct Event {
  SimTime time;
  EventKind kind = EventKind::kInfection;
  /// The subject phone: sender / recipient / victim / patched phone.
  PhoneId phone = kInvalidPhoneId;
  /// The causal partner: the infector, or the sender of a delivery.
  PhoneId peer = kInvalidPhoneId;
  /// Gateway sequence number of the message concerned.
  std::uint64_t message = kInvalidMessageId;
  /// Kind-specific count: valid recipients for sent/blocked messages.
  std::uint32_t value = 0;
  /// Shard that recorded the event (kNoShard outside sharded runs).
  std::uint32_t shard = kNoShard;
  /// Kind-specific label: blocking mechanism, infection channel
  /// ("mms", "bluetooth", "seed") or "mechanism:action".
  std::string detail;

  friend bool operator==(const Event&, const Event&) = default;
};

/// Bounded, append-only event buffer for one replication.
class TraceBuffer {
 public:
  /// Default cap: ~10^6 events (~64 MB worst case) — plenty for every
  /// paper preset while keeping a runaway scenario's trace bounded.
  static constexpr std::size_t kDefaultCapacity = 1u << 20;

  /// `capacity` = maximum events kept; past it record() only counts.
  explicit TraceBuffer(std::size_t capacity = kDefaultCapacity);

  /// A buffer that never drops (capacity SIZE_MAX).
  [[nodiscard]] static TraceBuffer unbounded() {
    return TraceBuffer(std::numeric_limits<std::size_t>::max());
  }

  void record(Event event);

  /// Stamps every subsequently recorded event with `shard` (one buffer
  /// per shard in sharded runs; the default kNoShard leaves events
  /// untouched, so serial traces are unchanged).
  void set_shard(std::uint32_t shard) { shard_ = shard; }
  [[nodiscard]] std::uint32_t shard() const { return shard_; }

  /// Deterministic K-way merge of per-shard buffers into one
  /// causally-consistent trace, ordered by (time, within-buffer
  /// position, shard): each input is already time-ordered, ties across
  /// buffers resolve lowest-shard-first (kNoShard last), and ties
  /// within a buffer keep their recording order. The result's capacity
  /// and drop count are the sums of the inputs', so `recorded()` is
  /// conserved. Independent of how the inputs were produced — the
  /// worker-count invariance of merged sharded traces falls out of the
  /// per-shard buffers being worker-count-invariant themselves.
  [[nodiscard]] static TraceBuffer merge_shards(std::span<const TraceBuffer* const> buffers);

  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Events discarded because the buffer was full.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  /// Everything record() ever saw: events().size() + dropped().
  [[nodiscard]] std::uint64_t recorded() const { return events_.size() + dropped_; }

  [[nodiscard]] std::size_t count(EventKind kind) const;
  /// First event of `kind`; SimTime::infinity() if none occurred.
  [[nodiscard]] SimTime first_time(EventKind kind) const;
  [[nodiscard]] SimTime last_time(EventKind kind) const;

  /// hours,kind,phone,peer,message,value,detail,shard rows (events are
  /// already in time order — the simulation records them as they
  /// happen). Sentinel fields are left empty.
  void write_csv(std::ostream& out) const;

  /// Forgets events and the drop count; keeps the capacity.
  void clear() {
    events_.clear();
    dropped_ = 0;
  }

 private:
  std::vector<Event> events_;
  std::size_t capacity_;
  std::uint64_t dropped_ = 0;
  std::uint32_t shard_ = kNoShard;
};

/// Records a mechanism state transition as "<mechanism>:<action>".
/// Null `buffer` is a no-op, so mechanisms call this unconditionally.
void record_action(TraceBuffer* buffer, SimTime now, const char* mechanism, const char* action,
                   PhoneId phone = kInvalidPhoneId);

}  // namespace mvsim::trace
