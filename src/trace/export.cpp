#include "trace/export.h"

#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/json.h"

namespace mvsim::trace {

namespace {

constexpr int kFormatVersion = 1;

/// Chrome-trace track (tid) per event family; purely presentational.
int chrome_track(EventKind kind) {
  switch (kind) {
    case EventKind::kMessageSent:
    case EventKind::kMessageBlocked:
    case EventKind::kMessageDelivered:
      return 1;
    case EventKind::kInfection: return 2;
    case EventKind::kPatchApplied: return 3;
    case EventKind::kDetectabilityCrossed:
    case EventKind::kMechanismAction:
      return 4;
    case EventKind::kReboot: return 5;
  }
  return 0;
}

const char* chrome_track_name(int tid) {
  switch (tid) {
    case 1: return "messages";
    case 2: return "infections";
    case 3: return "patches";
    case 4: return "mechanisms";
    case 5: return "reboots";
  }
  return "?";
}

std::uint64_t exported_capacity(const TraceBuffer& buffer) {
  // SIZE_MAX means "unbounded"; the formats encode that as 0 so the
  // number survives the double-typed JSON layer.
  return buffer.capacity() == std::numeric_limits<std::size_t>::max()
             ? 0
             : static_cast<std::uint64_t>(buffer.capacity());
}

/// The event's payload fields, sentinels omitted. Shared by both
/// formats so a round-trip through either reconstructs the same Event.
json::Object event_fields(const Event& event) {
  json::Object fields;
  fields.set("t", json::Value(event.time.to_minutes()));
  fields.set("kind", json::Value(to_string(event.kind)));
  if (event.phone != kInvalidPhoneId) fields.set("phone", json::Value(event.phone));
  if (event.peer != kInvalidPhoneId) fields.set("peer", json::Value(event.peer));
  if (event.message != kInvalidMessageId) {
    fields.set("msg", json::Value(static_cast<double>(event.message)));
  }
  if (event.value != 0) fields.set("value", json::Value(event.value));
  if (event.shard != kNoShard) fields.set("shard", json::Value(event.shard));
  if (!event.detail.empty()) fields.set("detail", json::Value(event.detail));
  return fields;
}

Event event_from_fields(const json::Object& fields, const char* where) {
  Event event;
  const json::Value* t = fields.find("t");
  const json::Value* kind = fields.find("kind");
  if (t == nullptr || kind == nullptr) {
    throw std::runtime_error(std::string(where) + ": event record lacks \"t\" or \"kind\"");
  }
  event.time = SimTime::minutes(t->as_number());
  if (!event_kind_from_string(kind->as_string(), event.kind)) {
    throw std::runtime_error(std::string(where) + ": unknown event kind '" +
                             kind->as_string() + "'");
  }
  if (const json::Value* v = fields.find("phone")) {
    event.phone = static_cast<PhoneId>(v->as_number());
  }
  if (const json::Value* v = fields.find("peer")) {
    event.peer = static_cast<PhoneId>(v->as_number());
  }
  if (const json::Value* v = fields.find("msg")) {
    event.message = static_cast<std::uint64_t>(v->as_number());
  }
  if (const json::Value* v = fields.find("value")) {
    event.value = static_cast<std::uint32_t>(v->as_number());
  }
  if (const json::Value* v = fields.find("shard")) {
    event.shard = static_cast<std::uint32_t>(v->as_number());
  }
  if (const json::Value* v = fields.find("detail")) event.detail = v->as_string();
  return event;
}

TraceMeta meta_from_object(const json::Object& object) {
  TraceMeta meta;
  if (const json::Value* v = object.find("capacity")) {
    meta.capacity = static_cast<std::uint64_t>(v->as_number());
  }
  if (const json::Value* v = object.find("dropped")) {
    meta.dropped = static_cast<std::uint64_t>(v->as_number());
  }
  return meta;
}

LoadedTrace read_jsonl(const std::string& text) {
  LoadedTrace loaded;
  std::istringstream lines(text);
  std::string line;
  int lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    if (line.empty()) continue;
    json::Value value = json::parse(line);
    const json::Object& object = value.as_object();
    const json::Value* type = object.find("type");
    if (type != nullptr && type->as_string() == "mvsim-trace") {
      loaded.meta = meta_from_object(object);
      continue;
    }
    loaded.events.push_back(
        event_from_fields(object, ("jsonl line " + std::to_string(lineno)).c_str()));
  }
  return loaded;
}

LoadedTrace read_chrome(const json::Object& document) {
  LoadedTrace loaded;
  const json::Value* events = document.find("traceEvents");
  if (events == nullptr) {
    throw std::runtime_error("chrome trace: document lacks \"traceEvents\"");
  }
  if (const json::Value* other = document.find("otherData")) {
    loaded.meta = meta_from_object(other->as_object());
  }
  for (const json::Value& entry : events->as_array()) {
    const json::Object& object = entry.as_object();
    const json::Value* phase = object.find("ph");
    if (phase == nullptr || phase->as_string() != "i") continue;  // metadata etc.
    const json::Value* args = object.find("args");
    if (args == nullptr) throw std::runtime_error("chrome trace: instant event lacks args");
    loaded.events.push_back(event_from_fields(args->as_object(), "chrome traceEvents"));
  }
  return loaded;
}

}  // namespace

void write_jsonl(const TraceBuffer& buffer, std::ostream& out) {
  json::Object meta;
  meta.set("type", json::Value("mvsim-trace"));
  meta.set("version", json::Value(kFormatVersion));
  meta.set("capacity", json::Value(exported_capacity(buffer)));
  meta.set("dropped", json::Value(buffer.dropped()));
  out << json::stringify(json::Value(std::move(meta)), 0) << '\n';
  for (const Event& event : buffer.events()) {
    out << json::stringify(json::Value(event_fields(event)), 0) << '\n';
  }
}

void write_chrome_trace(const TraceBuffer& buffer, std::ostream& out) {
  json::Object other;
  other.set("generator", json::Value("mvsim"));
  other.set("version", json::Value(kFormatVersion));
  other.set("capacity", json::Value(exported_capacity(buffer)));
  other.set("dropped", json::Value(buffer.dropped()));

  json::Array events;
  json::Object process_name;
  process_name.set("name", json::Value("process_name"));
  process_name.set("ph", json::Value("M"));
  process_name.set("pid", json::Value(1));
  json::Object process_args;
  process_args.set("name", json::Value("mvsim"));
  process_name.set("args", json::Value(std::move(process_args)));
  events.push_back(json::Value(std::move(process_name)));
  for (int tid = 1; tid <= 5; ++tid) {
    json::Object thread_name;
    thread_name.set("name", json::Value("thread_name"));
    thread_name.set("ph", json::Value("M"));
    thread_name.set("pid", json::Value(1));
    thread_name.set("tid", json::Value(tid));
    json::Object thread_args;
    thread_args.set("name", json::Value(chrome_track_name(tid)));
    thread_name.set("args", json::Value(std::move(thread_args)));
    events.push_back(json::Value(std::move(thread_name)));
  }

  for (const Event& event : buffer.events()) {
    json::Object entry;
    // Blocks and mechanism actions read best when the slice itself
    // names the mechanism; args.kind stays authoritative for loading.
    const bool labeled = !event.detail.empty() && (event.kind == EventKind::kMessageBlocked ||
                                                   event.kind == EventKind::kMechanismAction);
    entry.set("name", labeled ? json::Value(event.detail) : json::Value(to_string(event.kind)));
    entry.set("ph", json::Value("i"));
    entry.set("s", json::Value("t"));
    // Microseconds of simulation time (trace viewers assume µs).
    entry.set("ts", json::Value(event.time.to_seconds() * 1e6));
    entry.set("pid", json::Value(1));
    entry.set("tid", json::Value(chrome_track(event.kind)));
    entry.set("args", json::Value(event_fields(event)));
    events.push_back(json::Value(std::move(entry)));
  }

  json::Object document;
  document.set("displayTimeUnit", json::Value("ms"));
  document.set("otherData", json::Value(std::move(other)));
  document.set("traceEvents", json::Value(std::move(events)));
  out << json::stringify(json::Value(std::move(document)), 1) << '\n';
}

LoadedTrace read_trace(const std::string& text) {
  // A JSONL export's first line is a complete JSON object of its own;
  // a Chrome trace's first line is the opening brace of a multi-line
  // document. Parse the first non-empty line to tell them apart.
  std::size_t start = text.find_first_not_of(" \t\r\n");
  if (start == std::string::npos) throw std::runtime_error("trace: empty input");
  std::size_t eol = text.find('\n', start);
  std::string first_line = text.substr(start, eol == std::string::npos ? eol : eol - start);
  try {
    json::Value value = json::parse(first_line);
    if (value.is_object() && value.as_object().find("traceEvents") == nullptr) {
      return read_jsonl(text.substr(start));
    }
  } catch (const json::ParseError&) {
    // Fall through: not a single-line document, so try the whole text.
  }
  return read_chrome(json::parse(text).as_object());
}

LoadedTrace read_trace_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("cannot read trace file '" + path + "'");
  std::ostringstream content;
  content << file.rdbuf();
  return read_trace(content.str());
}

}  // namespace mvsim::trace
